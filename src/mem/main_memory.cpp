#include "mem/main_memory.hpp"

#include <algorithm>

namespace esteem::mem {

cycle_t MainMemory::occupy_channel(cycle_t now) {
  const double t = static_cast<double>(now);
  const double wait = std::max(0.0, channel_free_at_ - t);
  channel_free_at_ = std::max(channel_free_at_, t) + cfg_.service_cycles;
  return static_cast<cycle_t>(wait);
}

cycle_t MainMemory::read(cycle_t now) {
  const cycle_t wait = occupy_channel(now);
  ++stats_.reads;
  stats_.queue_wait_cycles += wait;
  return cfg_.latency_cycles + wait;
}

void MainMemory::write(cycle_t now) {
  (void)occupy_channel(now);
  ++stats_.writes;
}

}  // namespace esteem::mem

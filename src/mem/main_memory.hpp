// Main-memory timing model: fixed access latency plus a single-channel
// bandwidth queue, as in the paper's setup (220 cycles, 10/15 GB/s, with
// "memory queue contention also modeled", §6.1).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace esteem::mem {

struct MainMemoryConfig {
  std::uint32_t latency_cycles = 220;
  /// Channel occupancy of one line transfer, in cycles (line_bytes / BW).
  double service_cycles = 12.8;
};

struct MainMemoryStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t queue_wait_cycles = 0;  ///< Total cycles reads waited in queue.

  std::uint64_t accesses() const noexcept { return reads + writes; }
};

/// Single-channel DRAM model. Reads return their completion latency (base
/// latency + queue wait); writebacks occupy channel bandwidth but do not
/// stall the requesting core.
class MainMemory {
 public:
  explicit MainMemory(const MainMemoryConfig& cfg) : cfg_(cfg) {}

  /// Demand read (cache-line fill). Returns total latency in cycles.
  cycle_t read(cycle_t now);

  /// Posted write (dirty-line writeback). Consumes bandwidth only.
  void write(cycle_t now);

  const MainMemoryStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

 private:
  /// Advances the channel clock by one service slot starting no earlier
  /// than `now`; returns the queue wait experienced.
  cycle_t occupy_channel(cycle_t now);

  MainMemoryConfig cfg_;
  MainMemoryStats stats_;
  double channel_free_at_ = 0.0;  // fractional service times accumulate
};

}  // namespace esteem::mem

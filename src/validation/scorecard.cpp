#include "validation/scorecard.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <sstream>

#include "common/table.hpp"

namespace esteem::validation {

namespace {

std::string f2(double v) { return fmt(v, 2); }

/// True when the Spearman requirement is satisfied. NaN means the
/// correlation was not computable (fewer than two workloads, or a constant
/// series); with matching workload sets that is a degenerate-but-consistent
/// state, not drift, so it passes.
bool spearman_ok(double rho, double min_rho) {
  return std::isnan(rho) || rho >= min_rho;
}

void add_drift_band(std::vector<BandCheck>& bands, const std::string& name,
                    double measured, double reference, double tol, bool relative) {
  bands.push_back({name, measured, reference, tol, relative});
}

}  // namespace

bool FigureScore::pass(const DriftTolerances& tol) const {
  if (!ran) return false;
  for (const SignClaim& c : paper_signs) {
    if (!c.agrees()) return false;
  }
  for (const BandCheck& b : paper_bands) {
    if (!b.pass()) return false;
  }
  if (!golden_found) return false;
  if (!workloads_match) return false;
  for (const BandCheck& b : drift_bands) {
    if (!b.pass()) return false;
  }
  return spearman_ok(spearman_vs_golden, tol.min_spearman);
}

bool Scorecard::golden_complete() const {
  for (const FigureScore& f : figures) {
    if (!f.golden_found) return false;
  }
  return true;
}

bool Scorecard::pass() const {
  for (const FigureScore& f : figures) {
    if (!f.pass(drift_tol)) return false;
  }
  for (const SignClaim& c : cross_claims) {
    if (!c.agrees()) return false;
  }
  return !figures.empty();
}

Scorecard build_scorecard(const std::vector<FigureResult>& results,
                          const GoldenFile* golden, bool enable_paper_checks,
                          const DriftTolerances& drift_tol,
                          const PaperTolerances& paper_tol) {
  Scorecard card;
  card.drift_tol = drift_tol;
  card.paper_tol = paper_tol;
  card.paper_checks_enabled = enable_paper_checks;
  if (!results.empty()) {
    card.scale_label = results.front().scale.label;
    card.fingerprint = scale_fingerprint(results.front().scale);
  }

  const GoldenScale* gscale =
      golden != nullptr ? golden->find_scale(card.fingerprint) : nullptr;

  std::map<std::string, double> esteem_energy;  // cross-claim lookup

  for (const FigureResult& r : results) {
    const FigureSpec& spec = *r.spec;
    FigureScore score;
    score.id = spec.id;
    score.title = spec.title;
    score.ran = r.sweep.ok();
    if (!score.ran && !r.sweep.errors.empty()) {
      score.error = r.sweep.errors.front().workload + "/" +
                    r.sweep.errors.front().technique + ": " +
                    r.sweep.errors.front().what;
    }
    if (!score.ran) {
      card.figures.push_back(std::move(score));
      continue;
    }

    score.measured = {r.esteem.energy_saving_pct, r.rpv.energy_saving_pct,
                      r.esteem.weighted_speedup, r.rpv.weighted_speedup,
                      r.esteem.rpki_decrease, r.rpv.rpki_decrease};
    score.mpki_increase = r.esteem.mpki_increase;
    score.active_ratio_pct = r.esteem.active_ratio_pct;
    esteem_energy[spec.id] = r.esteem.energy_saving_pct;

    if (enable_paper_checks) {
      // Directional claims. Weighted speedup is excluded: the paper's 1.09x
      // comes from contention its simulator models and ours compresses
      // (EXPERIMENTS.md note 1), so WS ~ 1.00 here carries no sign signal.
      score.paper_signs.push_back(
          {spec.id + ": ESTEEM saves more energy than RPV", true,
           r.esteem.energy_saving_pct > r.rpv.energy_saving_pct});
      score.paper_signs.push_back(
          {spec.id + ": ESTEEM cuts more refreshes than RPV", true,
           r.esteem.rpki_decrease > r.rpv.rpki_decrease});
      score.paper_signs.push_back(
          {spec.id + ": ESTEEM energy saving is positive", true,
           r.esteem.energy_saving_pct > 0.0});

      if (!spec.paper_averages_are_reference_only) {
        score.paper_bands.push_back({spec.id + ": ESTEEM energy saving vs paper",
                                     r.esteem.energy_saving_pct,
                                     spec.paper.esteem_energy_pct,
                                     paper_tol.energy_pct_rel, true});
        score.paper_bands.push_back({spec.id + ": RPV energy saving vs paper",
                                     r.rpv.energy_saving_pct,
                                     spec.paper.rpv_energy_pct,
                                     paper_tol.energy_pct_rel, true});
      }
    }

    const GoldenFigure* gf =
        gscale != nullptr ? gscale->find_figure(spec.id) : nullptr;
    score.golden_found = gf != nullptr;
    if (gf != nullptr) {
      add_drift_band(score.drift_bands, spec.id + ": ESTEEM energy saving %",
                     r.esteem.energy_saving_pct, gf->esteem_energy_pct,
                     drift_tol.energy_pct_abs, false);
      add_drift_band(score.drift_bands, spec.id + ": RPV energy saving %",
                     r.rpv.energy_saving_pct, gf->rpv_energy_pct,
                     drift_tol.energy_pct_abs, false);
      add_drift_band(score.drift_bands, spec.id + ": ESTEEM weighted speedup",
                     r.esteem.weighted_speedup, gf->esteem_ws, drift_tol.ws_abs,
                     false);
      add_drift_band(score.drift_bands, spec.id + ": RPV weighted speedup",
                     r.rpv.weighted_speedup, gf->rpv_ws, drift_tol.ws_abs, false);
      add_drift_band(score.drift_bands, spec.id + ": ESTEEM RPKI decrease",
                     r.esteem.rpki_decrease, gf->esteem_rpki_dec,
                     drift_tol.rpki_dec_rel, true);
      add_drift_band(score.drift_bands, spec.id + ": RPV RPKI decrease",
                     r.rpv.rpki_decrease, gf->rpv_rpki_dec,
                     drift_tol.rpki_dec_rel, true);
      add_drift_band(score.drift_bands, spec.id + ": ESTEEM MPKI increase",
                     r.esteem.mpki_increase, gf->esteem_mpki_inc,
                     drift_tol.mpki_inc_abs, false);
      add_drift_band(score.drift_bands, spec.id + ": ESTEEM active ratio %",
                     r.esteem.active_ratio_pct, gf->esteem_active_pct,
                     drift_tol.active_pct_abs, false);

      score.workloads_match = r.workloads() == gf->workloads;
      score.spearman_vs_golden =
          score.workloads_match
              ? spearman(r.esteem_energy_savings(), gf->esteem_energy_savings)
              : std::numeric_limits<double>::quiet_NaN();
      if (!score.workloads_match) score.spearman_vs_golden = -1.0;
    }

    card.figures.push_back(std::move(score));
  }

  if (enable_paper_checks) {
    auto have = [&](const char* id) { return esteem_energy.count(id) != 0; };
    if (have("fig3") && have("fig4")) {
      card.cross_claims.push_back(
          {"dual-core saves more than single-core (fig4 > fig3)", true,
           esteem_energy["fig4"] > esteem_energy["fig3"]});
    }
    if (have("fig3") && have("fig5")) {
      card.cross_claims.push_back(
          {"40us retention saves more than 50us (fig5 > fig3)", true,
           esteem_energy["fig5"] > esteem_energy["fig3"]});
    }
    if (have("fig4") && have("fig6")) {
      card.cross_claims.push_back(
          {"40us retention saves more than 50us, dual-core (fig6 > fig4)", true,
           esteem_energy["fig6"] > esteem_energy["fig4"]});
    }
  }

  return card;
}

GoldenScale to_golden(const std::vector<FigureResult>& results) {
  GoldenScale scale;
  if (!results.empty()) {
    scale.fingerprint = scale_fingerprint(results.front().scale);
    scale.label = results.front().scale.label;
  }
  for (const FigureResult& r : results) {
    if (!r.sweep.ok()) continue;  // never bake a partial figure into golden
    GoldenFigure f;
    f.id = r.spec->id;
    f.esteem_energy_pct = r.esteem.energy_saving_pct;
    f.rpv_energy_pct = r.rpv.energy_saving_pct;
    f.esteem_ws = r.esteem.weighted_speedup;
    f.rpv_ws = r.rpv.weighted_speedup;
    f.esteem_rpki_dec = r.esteem.rpki_decrease;
    f.rpv_rpki_dec = r.rpv.rpki_decrease;
    f.esteem_mpki_inc = r.esteem.mpki_increase;
    f.esteem_active_pct = r.esteem.active_ratio_pct;
    f.workloads = r.workloads();
    f.esteem_energy_savings = r.esteem_energy_savings();
    f.rpv_energy_savings = r.rpv_energy_savings();
    scale.figures.push_back(std::move(f));
  }
  return scale;
}

std::string golden_diff_text(const GoldenScale& before, const GoldenScale& after) {
  std::ostringstream os;
  auto diff = [&](const std::string& name, double b, double a) {
    if (b == a) return;
    char buf[160];
    std::snprintf(buf, sizeof buf, "  %-42s %12.4f -> %12.4f  (%+.4f)\n",
                  name.c_str(), b, a, a - b);
    os << buf;
  };
  for (const GoldenFigure& bf : before.figures) {
    const GoldenFigure* af = after.find_figure(bf.id);
    if (af == nullptr) {
      os << "  " << bf.id << ": removed\n";
      continue;
    }
    diff(bf.id + ".esteem_energy_pct", bf.esteem_energy_pct, af->esteem_energy_pct);
    diff(bf.id + ".rpv_energy_pct", bf.rpv_energy_pct, af->rpv_energy_pct);
    diff(bf.id + ".esteem_ws", bf.esteem_ws, af->esteem_ws);
    diff(bf.id + ".rpv_ws", bf.rpv_ws, af->rpv_ws);
    diff(bf.id + ".esteem_rpki_dec", bf.esteem_rpki_dec, af->esteem_rpki_dec);
    diff(bf.id + ".rpv_rpki_dec", bf.rpv_rpki_dec, af->rpv_rpki_dec);
    diff(bf.id + ".esteem_mpki_inc", bf.esteem_mpki_inc, af->esteem_mpki_inc);
    diff(bf.id + ".esteem_active_pct", bf.esteem_active_pct, af->esteem_active_pct);
    if (bf.workloads != af->workloads) os << "  " << bf.id << ": workload set changed\n";
    if (bf.esteem_energy_savings != af->esteem_energy_savings) {
      os << "  " << bf.id << ": per-workload ESTEEM energy series changed\n";
    }
    if (bf.rpv_energy_savings != af->rpv_energy_savings) {
      os << "  " << bf.id << ": per-workload RPV energy series changed\n";
    }
  }
  for (const GoldenFigure& af : after.figures) {
    if (before.find_figure(af.id) == nullptr) os << "  " << af.id << ": added\n";
  }
  return os.str();
}

namespace {

const char* tick(bool ok) { return ok ? "PASS" : "FAIL"; }

void render_figure_checks(std::ostringstream& os, const FigureScore& f,
                          const DriftTolerances& tol) {
  for (const SignClaim& c : f.paper_signs) {
    os << "  [" << tick(c.agrees()) << "] sign  " << c.name << '\n';
  }
  for (const BandCheck& b : f.paper_bands) {
    char buf[200];
    std::snprintf(buf, sizeof buf,
                  "  [%s] band  %s: measured %.2f vs paper %.2f (err %.1f%%, tol %.0f%%)\n",
                  tick(b.pass()), b.name.c_str(), b.measured, b.reference,
                  100.0 * b.error(), 100.0 * b.tol);
    os << buf;
  }
  if (!f.golden_found) {
    os << "  [FAIL] drift: no golden entry for this scale fingerprint\n";
    return;
  }
  for (const BandCheck& b : f.drift_bands) {
    char buf[220];
    if (b.relative) {
      std::snprintf(buf, sizeof buf,
                    "  [%s] drift %s: %.4f vs golden %.4f (err %.2f%%, tol %.0f%%)\n",
                    tick(b.pass()), b.name.c_str(), b.measured, b.reference,
                    100.0 * b.error(), 100.0 * b.tol);
    } else {
      std::snprintf(buf, sizeof buf,
                    "  [%s] drift %s: %.4f vs golden %.4f (|err| %.4f, tol %.2f)\n",
                    tick(b.pass()), b.name.c_str(), b.measured, b.reference,
                    b.error(), b.tol);
    }
    os << buf;
  }
  {
    const bool ok = f.workloads_match && spearman_ok(f.spearman_vs_golden,
                                                     tol.min_spearman);
    char buf[200];
    if (!f.workloads_match) {
      std::snprintf(buf, sizeof buf,
                    "  [FAIL] rank  %s: workload set differs from golden\n",
                    f.id.c_str());
    } else {
      std::snprintf(buf, sizeof buf,
                    "  [%s] rank  %s: Spearman vs golden %.3f (min %.2f)\n",
                    tick(ok), f.id.c_str(), f.spearman_vs_golden, tol.min_spearman);
    }
    os << buf;
  }
}

}  // namespace

std::string scorecard_text(const Scorecard& card) {
  std::ostringstream os;
  os << "Paper-fidelity scorecard — scale '" << card.scale_label << "' ("
     << card.fingerprint << ")\n";
  os << "Paper-shape checks: "
     << (card.paper_checks_enabled ? "enabled" : "skipped (non-bench scale)")
     << "\n\n";
  for (const FigureScore& f : card.figures) {
    os << f.title << " — " << (f.pass(card.drift_tol) ? "PASS" : "FAIL") << '\n';
    if (!f.ran) {
      os << "  [FAIL] sweep error: " << f.error << '\n';
      continue;
    }
    render_figure_checks(os, f, card.drift_tol);
    os << '\n';
  }
  if (!card.cross_claims.empty()) {
    os << "Cross-figure claims\n";
    for (const SignClaim& c : card.cross_claims) {
      os << "  [" << tick(c.agrees()) << "] " << c.name << '\n';
    }
    os << '\n';
  }
  os << "Overall: " << (card.pass() ? "PASS" : "FAIL") << '\n';
  return os.str();
}

std::string scorecard_markdown(const Scorecard& card) {
  std::ostringstream os;
  os << "| figure | sweep | paper shape | drift vs golden | rank (Spearman) | verdict |\n";
  os << "|---|---|---|---|---|---|\n";
  for (const FigureScore& f : card.figures) {
    std::size_t sign_fail = 0, band_fail = 0, drift_fail = 0;
    for (const SignClaim& c : f.paper_signs) sign_fail += c.agrees() ? 0 : 1;
    for (const BandCheck& b : f.paper_bands) band_fail += b.pass() ? 0 : 1;
    for (const BandCheck& b : f.drift_bands) drift_fail += b.pass() ? 0 : 1;

    os << "| " << f.id << " | " << (f.ran ? "ok" : "error") << " | ";
    if (!card.paper_checks_enabled) {
      os << "skipped";
    } else if (sign_fail + band_fail == 0) {
      os << "ok (" << f.paper_signs.size() << " signs, " << f.paper_bands.size()
         << " bands)";
    } else {
      os << sign_fail + band_fail << " failed";
    }
    os << " | ";
    if (!f.golden_found) {
      os << "no golden";
    } else if (drift_fail == 0) {
      os << "ok (" << f.drift_bands.size() << " bands)";
    } else {
      os << drift_fail << " failed";
    }
    os << " | ";
    if (!f.golden_found) {
      os << "—";
    } else if (!f.workloads_match) {
      os << "workloads differ";
    } else if (std::isnan(f.spearman_vs_golden)) {
      os << "n/a";
    } else {
      os << f2(f.spearman_vs_golden);
    }
    os << " | " << (f.pass(card.drift_tol) ? "**PASS**" : "**FAIL**") << " |\n";
  }
  if (!card.cross_claims.empty()) {
    os << "\nCross-figure claims:\n\n";
    for (const SignClaim& c : card.cross_claims) {
      os << "- " << (c.agrees() ? "✅" : "❌") << " " << c.name << "\n";
    }
  }
  os << "\nOverall: " << (card.pass() ? "**PASS**" : "**FAIL**") << "\n";
  return os.str();
}

}  // namespace esteem::validation

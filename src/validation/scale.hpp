// Run-scale policy shared by the bench harness and the paper-fidelity
// validator.
//
// The paper fast-forwards 10B instructions and measures 400M per benchmark
// with 10M-cycle reconfiguration intervals. Scaled runs shrink the measured
// instruction count and shrink the interval proportionally (times an
// interval factor compensating for the synthetic workloads' lower IPC — see
// DESIGN.md §5), so a run still spans the same ~40-80 reconfiguration
// intervals. A ScaleSpec pins every scale parameter; its fingerprint keys
// golden-file entries so measured results are only ever compared against a
// baseline recorded at the same scale.
#pragma once

#include <string>

#include "common/config.hpp"
#include "common/types.hpp"

namespace esteem::validation {

inline constexpr instr_t kPaperInstrPerCore = 400'000'000;
inline constexpr double kPaperIntervalCycles = 10'000'000.0;

/// Reconfiguration-churn damping used by all scaled runs: the paper's
/// proposed hysteresis extension (§7.2) with a 2-interval window, because at
/// scaled intervals a one-way flush is ~50x more expensive relative to the
/// interval than at the paper's 10M cycles.
inline constexpr std::uint32_t kScaledHysteresis = 2;
inline constexpr std::uint32_t kScaledShrinkConfirm = 2;

/// Everything that determines the inputs of a scaled figure run (except the
/// system configuration itself, which each figure derives from this).
struct ScaleSpec {
  std::string label = "bench";     ///< "bench" | "smoke" | "custom".
  instr_t instr_per_core = 8'000'000;
  instr_t warmup_per_core = 1'600'000;
  std::uint64_t seed = 42;
  /// ESTEEM_INTERVAL_FACTOR: lengthens the proportionally-scaled interval
  /// (see DESIGN.md §5).
  double interval_env_factor = 4.0;
  /// Sweep worker threads (0 = hardware concurrency). Not part of the
  /// fingerprint: serial and threaded sweeps are bit-identical.
  unsigned threads = 0;
  /// SMARTS-style statistical sampling (see docs/SAMPLING.md). Disabled for
  /// the exhaustive tiers; the "paper" tier enables it so 400M-instruction
  /// runs complete in minutes. Part of the fingerprint when enabled.
  SamplingConfig sampling;
};

/// The bench harness scale: ESTEEM_INSTR / ESTEEM_WARMUP / ESTEEM_SEED /
/// ESTEEM_INTERVAL_FACTOR / ESTEEM_THREADS with the historical defaults.
ScaleSpec bench_scale();

/// Pinned reduced scale for fast validation smokes (~300k instructions per
/// core). Deliberately ignores the ESTEEM_* environment so "smoke" always
/// means the same runs everywhere (CI and local).
ScaleSpec smoke_scale();

/// The paper's full measurement scale (400M instructions per core, 10M-cycle
/// intervals) made tractable by SMARTS sampling: 100 detailed 40k-instruction
/// windows per 4M-instruction period, functionally warmed in between.
/// Deliberately ignores the ESTEEM_* environment except ESTEEM_THREADS.
ScaleSpec paper_scale();

/// Canonical identity of a scale, e.g.
/// "v1;instr=300000;warmup=60000;seed=42;ifactor=4;hyst=2;shrink=2".
/// Golden entries are keyed by this string.
std::string scale_fingerprint(const ScaleSpec& scale);

/// Scales the 10M-cycle reconfiguration interval to `instr` instructions
/// (`interval_factor` expresses Table 3's 5M/15M rows as 0.5x/1.5x), floored
/// at one retention period so refresh accounting stays sane.
cycle_t scaled_interval(const SystemConfig& cfg, instr_t instr,
                        double env_factor, double interval_factor = 1.0);

/// Paper single-core / dual-core configurations with the scaled interval and
/// the churn damping applied.
SystemConfig scaled_single(const ScaleSpec& scale, double interval_factor = 1.0);
SystemConfig scaled_dual(const ScaleSpec& scale, double interval_factor = 1.0);

/// The scale banner every figure run prints (exact bench-binary format,
/// including the trailing blank line).
std::string scale_banner(const std::string& what, const SystemConfig& cfg,
                         instr_t instr, unsigned threads);

}  // namespace esteem::validation

#include "validation/scale.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/env.hpp"
#include "sim/task_pool.hpp"

namespace esteem::validation {

ScaleSpec bench_scale() {
  ScaleSpec s;
  s.label = "bench";
  s.instr_per_core = env_u64("ESTEEM_INSTR", 8'000'000);
  s.warmup_per_core = env_u64("ESTEEM_WARMUP", s.instr_per_core / 5);
  s.seed = env_u64("ESTEEM_SEED", 42);
  s.interval_env_factor = static_cast<double>(env_u64("ESTEEM_INTERVAL_FACTOR", 4));
  s.threads = static_cast<unsigned>(env_u64("ESTEEM_THREADS", 0));
  return s;
}

ScaleSpec smoke_scale() {
  ScaleSpec s;
  s.label = "smoke";
  s.instr_per_core = 300'000;
  s.warmup_per_core = 60'000;
  s.seed = 42;
  s.interval_env_factor = 4.0;
  s.threads = 0;
  return s;
}

ScaleSpec paper_scale() {
  ScaleSpec s;
  s.label = "paper";
  s.instr_per_core = kPaperInstrPerCore;
  s.warmup_per_core = kPaperInstrPerCore / 5;
  s.seed = 42;
  // The interval is already the paper's 10M cycles at this instruction count;
  // no synthetic-IPC compensation is layered on top.
  s.interval_env_factor = 1.0;
  s.threads = static_cast<unsigned>(env_u64("ESTEEM_THREADS", 0));
  s.sampling.enabled = true;
  s.sampling.window_instr = 40'000;
  s.sampling.detail_warm_instr = 10'000;
  s.sampling.ff_warm_instr = 200'000;
  s.sampling.cold_warm_instr = 2'000'000;
  s.sampling.period_instr = 4'000'000;  // 100 windows per 400M instructions
  return s;
}

std::string scale_fingerprint(const ScaleSpec& scale) {
  std::ostringstream os;
  os << "v1;instr=" << scale.instr_per_core << ";warmup=" << scale.warmup_per_core
     << ";seed=" << scale.seed << ";ifactor=" << scale.interval_env_factor
     << ";hyst=" << kScaledHysteresis << ";shrink=" << kScaledShrinkConfirm;
  // Appended only when sampling is on, so the exhaustive tiers' golden keys
  // (recorded before sampling existed) stay valid.
  if (scale.sampling.enabled) {
    os << ";sampling=" << scale.sampling.window_instr << '/'
       << scale.sampling.detail_warm_instr << '/' << scale.sampling.ff_warm_instr
       << '/' << scale.sampling.cold_warm_instr << '/' << scale.sampling.period_instr;
  }
  return os.str();
}

cycle_t scaled_interval(const SystemConfig& cfg, instr_t instr,
                        double env_factor, double interval_factor) {
  const double scale = static_cast<double>(instr) / kPaperInstrPerCore;
  const auto cycles = static_cast<cycle_t>(kPaperIntervalCycles * scale *
                                           env_factor * interval_factor);
  return std::max<cycle_t>(cycles, cfg.retention_cycles());
}

namespace {

SystemConfig apply_scale(SystemConfig cfg, const ScaleSpec& scale,
                         double interval_factor) {
  cfg.esteem.interval_cycles =
      scaled_interval(cfg, scale.instr_per_core, scale.interval_env_factor,
                      interval_factor);
  cfg.esteem.hysteresis_intervals = kScaledHysteresis;
  cfg.esteem.shrink_confirm_intervals = kScaledShrinkConfirm;
  cfg.sampling = scale.sampling;
  return cfg;
}

}  // namespace

SystemConfig scaled_single(const ScaleSpec& scale, double interval_factor) {
  return apply_scale(SystemConfig::single_core(), scale, interval_factor);
}

SystemConfig scaled_dual(const ScaleSpec& scale, double interval_factor) {
  return apply_scale(SystemConfig::dual_core(), scale, interval_factor);
}

std::string scale_banner(const std::string& what, const SystemConfig& cfg,
                         instr_t instr, unsigned threads) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "%s\n  scale: %llu instructions/core (paper: 400M), interval %llu cycles "
      "(paper: 10M), retention %.0f us, %u-core, L2 %.0f MB %u-way, %u modules, "
      "%u sweep worker thread(s)\n\n",
      what.c_str(), static_cast<unsigned long long>(instr),
      static_cast<unsigned long long>(cfg.esteem.interval_cycles),
      cfg.edram.retention_us, cfg.ncores,
      static_cast<double>(cfg.l2.geom.size_bytes) / (1024.0 * 1024.0),
      cfg.l2.geom.ways, cfg.esteem.modules,
      sim::TaskPool::resolve_threads(threads));
  return buf;
}

}  // namespace esteem::validation

// The paper's figure matrix as data: one FigureSpec per evaluation figure
// (Figures 3-6), with the §7.2 reported averages attached. The fig3-fig6
// bench binaries, the esteem_validate scorecard, and the generated results
// book all run the same specs through the memoized sweep scheduler, so
// "what the paper measured" lives in exactly one place.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/runner.hpp"
#include "validation/scale.hpp"

namespace esteem::validation {

/// Paper-reported §7.2 averages for one figure.
struct PaperAverages {
  double esteem_energy_pct;
  double rpv_energy_pct;
  double esteem_ws;
  double rpv_ws;
  double esteem_rpki_dec;
  double rpv_rpki_dec;
};

struct FigureSpec {
  std::string id;     ///< "fig3" .. "fig6".
  std::string title;  ///< Exact bench-binary title line.
  bool dual = false;
  double retention_us = 50.0;
  PaperAverages paper{};
  /// Whether the paper re-reports averages for this figure (§7.3 reports no
  /// new numbers for Figures 5-6, only that savings grow).
  bool paper_averages_are_reference_only = false;
  std::string claim;  ///< One-line paper claim, for the results book.
};

/// Figures 3-6 in paper order.
const std::vector<FigureSpec>& figure_matrix();

/// Looks a figure up by id; nullptr when unknown.
const FigureSpec* find_figure(const std::string& id);

struct FigureResult {
  const FigureSpec* spec = nullptr;
  SystemConfig config;
  ScaleSpec scale;
  sim::SweepResult sweep;
  sim::TechniqueComparison esteem;  ///< Sweep averages.
  sim::TechniqueComparison rpv;

  /// Per-workload series in row order (completed rows only).
  std::vector<std::string> workloads() const;
  std::vector<double> esteem_energy_savings() const;
  std::vector<double> rpv_energy_savings() const;
};

/// The system configuration a figure runs at the given scale (exactly the
/// construction the bench binaries historically used, including the
/// recompute-interval-after-retention-change order).
SystemConfig figure_config(const FigureSpec& spec, const ScaleSpec& scale);

/// Crash-safety options for run_figure (see sim/sweep_journal.hpp).
struct FigureRunOptions {
  /// When nonempty, each figure journals its completed rows to
  /// `<journal_dir>/<figure-id>.journal` as it runs.
  std::string journal_dir;
  /// Restore rows from an existing journal before running (a journal
  /// recorded by a different configuration is ignored with a warning — the
  /// figure then simply re-runs from scratch).
  bool resume = false;
};

/// Runs one figure through the memoized sweep scheduler. Summary averages
/// cover completed workloads (std::runtime_error only if every row failed);
/// callers that score the figure must gate on sweep.ok(). `mutate_config`
/// (optional) perturbs the configuration before the run — the validator's
/// deliberate-drift hook.
FigureResult run_figure(const FigureSpec& spec, const ScaleSpec& scale,
                        const std::function<void(SystemConfig&)>& mutate_config = {},
                        const FigureRunOptions& options = {});

/// The full text a fig3-fig6 bench binary prints for this result: scale
/// banner, per-workload figure report, and the paper-vs-measured summary
/// table (byte-identical to the pre-validation-layer bench output).
std::string figure_text(const FigureResult& result);

/// Bench entry point: run `id` at the bench (env) scale, print
/// figure_text, return the process exit code.
int figure_bench_main(const std::string& id);

/// Figure 2's two illustrated properties plus the run-average active ratio,
/// checked on the h264ref timeline.
struct Fig2Result {
  bool module_diversity = false;  ///< Modules reconfigured independently.
  bool ratio_changes = false;     ///< Active ratio varies over intervals.
  double avg_active_ratio = 0.0;
  std::size_t intervals = 0;
};

Fig2Result run_fig2(const ScaleSpec& scale);

}  // namespace esteem::validation

#include "validation/fidelity.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace esteem::validation {

std::vector<double> rank_with_ties(const std::vector<double>& v) {
  const std::size_t n = v.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });

  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    // Positions i..j (0-based) hold equal values: average of ranks i+1..j+1.
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double spearman(const std::vector<double>& a, const std::vector<double>& b) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  if (a.size() != b.size() || a.size() < 2) return kNaN;
  const std::vector<double> ra = rank_with_ties(a);
  const std::vector<double> rb = rank_with_ties(b);

  const double n = static_cast<double>(a.size());
  const double mean = (n + 1.0) / 2.0;  // ranks always average to (n+1)/2
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = ra[i] - mean;
    const double db = rb[i] - mean;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 || var_b == 0.0) return kNaN;  // constant side: undefined
  return cov / std::sqrt(var_a * var_b);
}

double sign_agreement(const std::vector<SignClaim>& claims) {
  if (claims.empty()) return 1.0;
  std::size_t agree = 0;
  for (const SignClaim& c : claims) agree += c.agrees() ? 1 : 0;
  return static_cast<double>(agree) / static_cast<double>(claims.size());
}

double BandCheck::error() const noexcept {
  return relative ? relative_error(measured, reference)
                  : std::fabs(measured - reference);
}

bool BandCheck::pass() const noexcept { return error() <= tol; }

double relative_error(double measured, double reference) {
  constexpr double kEps = 1e-12;
  return std::fabs(measured - reference) /
         std::max(std::fabs(reference), kEps);
}

}  // namespace esteem::validation

// RESULTS.md renderer: turns a measured figure matrix + scorecard into the
// committed results book — per-figure tables, ASCII bar charts, the §1/§5
// exact checks (Table 2 refresh share, Eq 1 overhead, Figure 2 timeline
// properties), and the exact commands that regenerate every number. The
// output is deterministic in the inputs (no timestamps), so regenerating at
// the same scale on the same code is byte-identical — which is what lets CI
// diff the committed book against a fresh render.
#pragma once

#include <string>
#include <vector>

#include "validation/figures.hpp"
#include "validation/scorecard.hpp"

namespace esteem::validation {

/// §1/§5 exact checks rendered into the book.
struct ExactChecks {
  double refresh_share_pct = 0.0;   ///< Table 2: refresh share of idle 4MB L2.
  double overhead_pct = 0.0;        ///< Eq 1 at the paper point (4MB/16w/16m).
  Fig2Result fig2;
};

/// Computes the exact checks (Figure 2 runs at `scale` through the memo
/// cache; the other two are closed-form).
ExactChecks run_exact_checks(const ScaleSpec& scale);

/// Renders the full results book.
std::string results_book_markdown(const std::vector<FigureResult>& results,
                                  const Scorecard& card,
                                  const ExactChecks& checks);

}  // namespace esteem::validation

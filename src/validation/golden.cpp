#include "validation/golden.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace esteem::validation {

namespace {

// ---------------------------------------------------------------------------
// Writer: stable key order, %.17g doubles so a load/save round-trip is exact.
// ---------------------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c; break;
    }
  }
  return out;
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void write_series(std::ostringstream& os, const char* key,
                  const std::vector<double>& v, const char* indent) {
  os << indent << '"' << key << "\": [";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) os << ", ";
    os << num(v[i]);
  }
  os << ']';
}

// ---------------------------------------------------------------------------
// Parser: a recursive-descent reader for the subset the writer emits.
// Unknown keys are skipped, so adding fields stays backward compatible
// within a golden version.
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  // JSON value parsed into a tagged tree (doubles, strings, arrays, objects).
  struct Value {
    enum class Kind { Number, String, Array, Object } kind = Kind::Number;
    double number = 0.0;
    std::string str;
    std::vector<Value> array;
    std::map<std::string, Value> object;

    const Value* find(const std::string& key) const {
      auto it = object.find(key);
      return it == object.end() ? nullptr : &it->second;
    }
  };

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    std::ostringstream os;
    os << "golden JSON parse error at byte " << pos_ << ": " << why;
    throw std::runtime_error(os.str());
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  Value value() {
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      Value v;
      v.kind = Value::Kind::String;
      v.str = string();
      return v;
    }
    return number();
  }

  Value object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::Object;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      std::string key = string();
      expect(':');
      v.object.emplace(std::move(key), value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::Array;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        default: fail("unsupported escape");
      }
    }
  }

  Value number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+' ||
          c == '.' || c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    Value v;
    v.kind = Value::Kind::Number;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("malformed number");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

double get_num(const Parser::Value& obj, const std::string& key) {
  const Parser::Value* v = obj.find(key);
  if (v == nullptr || v->kind != Parser::Value::Kind::Number) {
    throw std::runtime_error("golden JSON: missing numeric key '" + key + "'");
  }
  return v->number;
}

std::string get_str(const Parser::Value& obj, const std::string& key) {
  const Parser::Value* v = obj.find(key);
  if (v == nullptr || v->kind != Parser::Value::Kind::String) {
    throw std::runtime_error("golden JSON: missing string key '" + key + "'");
  }
  return v->str;
}

std::vector<double> get_series(const Parser::Value& obj, const std::string& key) {
  const Parser::Value* v = obj.find(key);
  if (v == nullptr || v->kind != Parser::Value::Kind::Array) {
    throw std::runtime_error("golden JSON: missing array key '" + key + "'");
  }
  std::vector<double> out;
  out.reserve(v->array.size());
  for (const Parser::Value& e : v->array) {
    if (e.kind != Parser::Value::Kind::Number) {
      throw std::runtime_error("golden JSON: non-numeric entry in '" + key + "'");
    }
    out.push_back(e.number);
  }
  return out;
}

std::vector<std::string> get_strings(const Parser::Value& obj,
                                     const std::string& key) {
  const Parser::Value* v = obj.find(key);
  if (v == nullptr || v->kind != Parser::Value::Kind::Array) {
    throw std::runtime_error("golden JSON: missing array key '" + key + "'");
  }
  std::vector<std::string> out;
  out.reserve(v->array.size());
  for (const Parser::Value& e : v->array) {
    if (e.kind != Parser::Value::Kind::String) {
      throw std::runtime_error("golden JSON: non-string entry in '" + key + "'");
    }
    out.push_back(e.str);
  }
  return out;
}

}  // namespace

const GoldenFigure* GoldenScale::find_figure(const std::string& id) const {
  for (const GoldenFigure& f : figures) {
    if (f.id == id) return &f;
  }
  return nullptr;
}

const GoldenScale* GoldenFile::find_scale(const std::string& fingerprint) const {
  for (const GoldenScale& s : scales) {
    if (s.fingerprint == fingerprint) return &s;
  }
  return nullptr;
}

void GoldenFile::upsert_scale(GoldenScale scale) {
  for (GoldenScale& s : scales) {
    if (s.fingerprint == scale.fingerprint) {
      s = std::move(scale);
      return;
    }
  }
  scales.push_back(std::move(scale));
}

std::string golden_to_json(const GoldenFile& file) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"version\": " << file.version << ",\n";
  os << "  \"generator\": \"" << json_escape(file.generator) << "\",\n";
  os << "  \"scales\": [";
  for (std::size_t si = 0; si < file.scales.size(); ++si) {
    const GoldenScale& s = file.scales[si];
    os << (si == 0 ? "\n" : ",\n");
    os << "    {\n";
    os << "      \"fingerprint\": \"" << json_escape(s.fingerprint) << "\",\n";
    os << "      \"label\": \"" << json_escape(s.label) << "\",\n";
    os << "      \"figures\": [";
    for (std::size_t fi = 0; fi < s.figures.size(); ++fi) {
      const GoldenFigure& f = s.figures[fi];
      os << (fi == 0 ? "\n" : ",\n");
      os << "        {\n";
      os << "          \"id\": \"" << json_escape(f.id) << "\",\n";
      os << "          \"esteem_energy_pct\": " << num(f.esteem_energy_pct) << ",\n";
      os << "          \"rpv_energy_pct\": " << num(f.rpv_energy_pct) << ",\n";
      os << "          \"esteem_ws\": " << num(f.esteem_ws) << ",\n";
      os << "          \"rpv_ws\": " << num(f.rpv_ws) << ",\n";
      os << "          \"esteem_rpki_dec\": " << num(f.esteem_rpki_dec) << ",\n";
      os << "          \"rpv_rpki_dec\": " << num(f.rpv_rpki_dec) << ",\n";
      os << "          \"esteem_mpki_inc\": " << num(f.esteem_mpki_inc) << ",\n";
      os << "          \"esteem_active_pct\": " << num(f.esteem_active_pct) << ",\n";
      os << "          \"workloads\": [";
      for (std::size_t wi = 0; wi < f.workloads.size(); ++wi) {
        if (wi != 0) os << ", ";
        os << '"' << json_escape(f.workloads[wi]) << '"';
      }
      os << "],\n";
      write_series(os, "esteem_energy_savings", f.esteem_energy_savings,
                   "          ");
      os << ",\n";
      write_series(os, "rpv_energy_savings", f.rpv_energy_savings, "          ");
      os << "\n        }";
    }
    os << "\n      ]\n";
    os << "    }";
  }
  os << "\n  ]\n";
  os << "}\n";
  return os.str();
}

GoldenFile golden_from_json(const std::string& json) {
  Parser parser(json);
  const Parser::Value root = parser.parse();
  if (root.kind != Parser::Value::Kind::Object) {
    throw std::runtime_error("golden JSON: document is not an object");
  }

  GoldenFile file;
  file.version = static_cast<int>(get_num(root, "version"));
  if (file.version != kGoldenVersion) {
    std::ostringstream os;
    os << "golden file version " << file.version << " does not match this "
       << "binary's golden schema version " << kGoldenVersion
       << "; regenerate with `esteem_validate --update-golden`";
    throw std::runtime_error(os.str());
  }
  file.generator = get_str(root, "generator");

  const Parser::Value* scales = root.find("scales");
  if (scales == nullptr || scales->kind != Parser::Value::Kind::Array) {
    throw std::runtime_error("golden JSON: missing 'scales' array");
  }
  for (const Parser::Value& sv : scales->array) {
    GoldenScale scale;
    scale.fingerprint = get_str(sv, "fingerprint");
    scale.label = get_str(sv, "label");
    const Parser::Value* figures = sv.find("figures");
    if (figures == nullptr || figures->kind != Parser::Value::Kind::Array) {
      throw std::runtime_error("golden JSON: missing 'figures' array");
    }
    for (const Parser::Value& fv : figures->array) {
      GoldenFigure fig;
      fig.id = get_str(fv, "id");
      fig.esteem_energy_pct = get_num(fv, "esteem_energy_pct");
      fig.rpv_energy_pct = get_num(fv, "rpv_energy_pct");
      fig.esteem_ws = get_num(fv, "esteem_ws");
      fig.rpv_ws = get_num(fv, "rpv_ws");
      fig.esteem_rpki_dec = get_num(fv, "esteem_rpki_dec");
      fig.rpv_rpki_dec = get_num(fv, "rpv_rpki_dec");
      fig.esteem_mpki_inc = get_num(fv, "esteem_mpki_inc");
      fig.esteem_active_pct = get_num(fv, "esteem_active_pct");
      fig.workloads = get_strings(fv, "workloads");
      fig.esteem_energy_savings = get_series(fv, "esteem_energy_savings");
      fig.rpv_energy_savings = get_series(fv, "rpv_energy_savings");
      scale.figures.push_back(std::move(fig));
    }
    file.scales.push_back(std::move(scale));
  }
  return file;
}

GoldenFile load_golden(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open golden file: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return golden_from_json(os.str());
}

void save_golden(const std::string& path, const GoldenFile& file) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write golden file: " + path);
  out << golden_to_json(file);
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace esteem::validation

// Fidelity metrics: the small statistics the paper-fidelity scorecard is
// built from. ESTEEM's claims are comparative (ESTEEM beats Refrint RPV on
// energy; savings grow with core count and shrink with retention), so
// fidelity is expressed as checked properties of *relative* metrics — sign
// agreement, rank correlation, tolerance bands — rather than absolute-value
// matching (see DESIGN.md §9 for the rationale).
#pragma once

#include <string>
#include <vector>

namespace esteem::validation {

/// Ranks of `v` (1-based), ties receiving the average of the ranks they
/// span — the standard Spearman tie treatment.
std::vector<double> rank_with_ties(const std::vector<double>& v);

/// Spearman rank-correlation coefficient of two paired samples, computed as
/// the Pearson correlation of their tie-averaged ranks. Returns NaN when the
/// sizes differ, fewer than two pairs exist, or either side is constant.
double spearman(const std::vector<double>& a, const std::vector<double>& b);

/// One directional claim: does the measurement point the way the reference
/// (the paper, or the golden baseline) says it should?
struct SignClaim {
  std::string name;
  bool expected = true;
  bool measured = false;

  bool agrees() const noexcept { return expected == measured; }
};

/// Fraction of claims that agree (1.0 for an empty list).
double sign_agreement(const std::vector<SignClaim>& claims);

/// Tolerance band on one scalar: passes when the measured value sits within
/// `tol` of the reference — relatively (|m-r| <= tol*|r|) or absolutely
/// (|m-r| <= tol).
struct BandCheck {
  std::string name;
  double measured = 0.0;
  double reference = 0.0;
  double tol = 0.0;
  bool relative = true;

  /// The error the band is judged on (relative or absolute per the flag).
  double error() const noexcept;
  bool pass() const noexcept;
};

/// |measured - reference| / |reference|, guarding reference == 0 with an
/// epsilon denominator so near-zero references read as large errors instead
/// of dividing by zero.
double relative_error(double measured, double reference);

}  // namespace esteem::validation

#include "validation/figures.hpp"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>

#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/sweep_journal.hpp"
#include "trace/workloads.hpp"

namespace esteem::validation {

const std::vector<FigureSpec>& figure_matrix() {
  static const std::vector<FigureSpec> kFigures = [] {
    std::vector<FigureSpec> f;
    // Paper §7.2: ESTEEM 25.82% / RPV 15.93% energy saving; WS 1.09 / 1.06;
    // RPKI decrease 467 / 161.
    f.push_back({"fig3", "Figure 3: single-core, 50us retention", false, 50.0,
                 {25.82, 15.93, 1.09, 1.06, 467.0, 161.0}, false,
                 "Single-core at 50 us retention: ESTEEM saves more energy "
                 "than Refrint RPV (25.82% vs 15.93% in the paper) while "
                 "cutting ~3x more refreshes."});
    // Paper §7.2: ESTEEM 32.63% / RPV 14.3%; WS 1.22 / 1.09; RPKI 511 / 134.
    f.push_back({"fig4", "Figure 4: dual-core, 50us retention", true, 50.0,
                 {32.63, 14.3, 1.22, 1.09, 511.0, 134.0}, false,
                 "Dual-core at 50 us retention: ESTEEM's advantage over RPV "
                 "widens with core count (32.63% vs 14.3% in the paper)."});
    // §7.3 reports no new averages, only that both techniques improve
    // further; the 50 us averages are shown for reference.
    f.push_back({"fig5",
                 "Figure 5: single-core, 40us retention (expect larger gains than Fig 3)",
                 false, 40.0, {25.82, 15.93, 1.09, 1.06, 467.0, 161.0}, true,
                 "Single-core at the reduced 40 us retention (§7.3): refresh "
                 "pressure grows, so both techniques save more than in "
                 "Figure 3."});
    f.push_back({"fig6",
                 "Figure 6: dual-core, 40us retention (expect larger gains than Fig 4)",
                 true, 40.0, {32.63, 14.3, 1.22, 1.09, 511.0, 134.0}, true,
                 "Dual-core at 40 us retention (§7.3): the heaviest refresh "
                 "load in the study; savings exceed Figure 4."});
    return f;
  }();
  return kFigures;
}

const FigureSpec* find_figure(const std::string& id) {
  for (const FigureSpec& f : figure_matrix()) {
    if (f.id == id) return &f;
  }
  return nullptr;
}

std::vector<std::string> FigureResult::workloads() const {
  std::vector<std::string> out;
  for (const sim::WorkloadRow& row : sweep.rows) {
    if (row.completed) out.push_back(row.workload);
  }
  return out;
}

namespace {

std::vector<double> energy_series(const sim::SweepResult& sweep,
                                  sim::Technique technique) {
  std::size_t slot = 0;
  for (; slot < sweep.techniques.size(); ++slot) {
    if (sweep.techniques[slot] == technique) break;
  }
  std::vector<double> out;
  if (slot == sweep.techniques.size()) return out;
  for (const sim::WorkloadRow& row : sweep.rows) {
    if (row.completed) out.push_back(row.comparisons[slot].energy_saving_pct);
  }
  return out;
}

}  // namespace

std::vector<double> FigureResult::esteem_energy_savings() const {
  return energy_series(sweep, sim::Technique::Esteem);
}

std::vector<double> FigureResult::rpv_energy_savings() const {
  return energy_series(sweep, sim::Technique::RefrintRPV);
}

SystemConfig figure_config(const FigureSpec& spec, const ScaleSpec& scale) {
  SystemConfig cfg = spec.dual ? scaled_dual(scale) : scaled_single(scale);
  if (spec.retention_us != 50.0) {
    // Historical bench construction order: scale at the default retention,
    // then change retention and recompute the interval (the retention floor
    // of scaled_interval differs between the two).
    cfg.edram.retention_us = spec.retention_us;
    cfg.esteem.interval_cycles =
        scaled_interval(cfg, scale.instr_per_core, scale.interval_env_factor);
  }
  return cfg;
}

FigureResult run_figure(const FigureSpec& spec, const ScaleSpec& scale,
                        const std::function<void(SystemConfig&)>& mutate_config,
                        const FigureRunOptions& options) {
  FigureResult result;
  result.spec = &spec;
  result.scale = scale;
  result.config = figure_config(spec, scale);
  if (mutate_config) {
    mutate_config(result.config);
    result.config.validate();
  }

  sim::SweepSpec sweep;
  sweep.config = result.config;
  sweep.workloads = spec.dual ? trace::dual_core_workloads()
                              : trace::single_core_workloads();
  sweep.techniques = {sim::Technique::Esteem, sim::Technique::RefrintRPV};
  sweep.instr_per_core = scale.instr_per_core;
  sweep.warmup_instr_per_core = scale.warmup_per_core;
  sweep.seed = scale.seed;
  sweep.threads = scale.threads;

  // Crash safety: one journal per figure next to the validator's output.
  // A resume restores completed rows bit-exactly; an incompatible journal
  // (different config/scale) is ignored so the figure re-runs cleanly.
  sim::SweepJournal journal;
  sim::ResumeLoad resume;
  if (!options.journal_dir.empty()) {
    const std::string path = options.journal_dir + "/" + spec.id + ".journal";
    if (options.resume) {
      resume = sim::load_resume_state(path, sweep);
      if (resume.ok) {
        sweep.resume = &resume.state;
        std::fprintf(stderr, "%s: resumed %zu row(s) from %s\n", spec.id.c_str(),
                     resume.state.rows.size(), path.c_str());
      } else {
        std::fprintf(stderr, "%s: not resuming (%s)\n", spec.id.c_str(),
                     resume.error.c_str());
      }
    }
    if (journal.open(path, sweep)) {
      sweep.journal = &journal;
    } else {
      std::fprintf(stderr, "%s: journaling disabled (%s)\n", spec.id.c_str(),
                   journal.last_error().c_str());
    }
  }

  result.sweep = sim::run_sweep(sweep);
  journal.close();
  bool any_completed = false;
  for (const sim::WorkloadRow& row : result.sweep.rows) {
    any_completed |= row.completed;
  }
  if (any_completed) {
    result.esteem = result.sweep.summary(sim::Technique::Esteem);
    result.rpv = result.sweep.summary(sim::Technique::RefrintRPV);
  }
  return result;
}

std::string figure_text(const FigureResult& result) {
  const FigureSpec& spec = *result.spec;
  std::ostringstream os;
  os << scale_banner(spec.title, result.config, result.scale.instr_per_core,
                     result.scale.threads);
  os << sim::figure_report(result.sweep, spec.title) << '\n';

  const PaperAverages& paper = spec.paper;
  TextTable summary;
  summary.set_header({"average metric", "paper", "measured"});
  summary.add_row({"ESTEEM energy saving %", fmt(paper.esteem_energy_pct, 2),
                   fmt(result.esteem.energy_saving_pct, 2)});
  summary.add_row({"RPV energy saving %", fmt(paper.rpv_energy_pct, 2),
                   fmt(result.rpv.energy_saving_pct, 2)});
  summary.add_row({"ESTEEM weighted speedup", fmt(paper.esteem_ws, 2),
                   fmt(result.esteem.weighted_speedup, 3)});
  summary.add_row({"RPV weighted speedup", fmt(paper.rpv_ws, 2),
                   fmt(result.rpv.weighted_speedup, 3)});
  summary.add_row({"ESTEEM RPKI decrease", fmt(paper.esteem_rpki_dec, 1),
                   fmt(result.esteem.rpki_decrease, 1)});
  summary.add_row({"RPV RPKI decrease", fmt(paper.rpv_rpki_dec, 1),
                   fmt(result.rpv.rpki_decrease, 1)});
  summary.add_row({"ESTEEM MPKI increase", "-", fmt(result.esteem.mpki_increase, 3)});
  summary.add_row({"ESTEEM active ratio %", "-", fmt(result.esteem.active_ratio_pct, 1)});

  os << "Summary vs. paper-reported averages (shape, not absolutes):\n"
     << summary.to_string() << '\n';
  return os.str();
}

int figure_bench_main(const std::string& id) {
  const FigureSpec* spec = find_figure(id);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown figure id '%s'\n", id.c_str());
    return 2;
  }
  const FigureResult result = run_figure(*spec, bench_scale());
  std::fputs(figure_text(result).c_str(), stdout);
  return result.sweep.ok() ? 0 : 3;
}

Fig2Result run_fig2(const ScaleSpec& scale) {
  sim::RunSpec spec;
  spec.config = scaled_single(scale);
  spec.technique = sim::Technique::Esteem;
  spec.workload = {"H2", {"h264ref"}};
  spec.instr_per_core = scale.instr_per_core;
  spec.warmup_instr_per_core = scale.warmup_per_core;
  spec.seed = scale.seed;
  spec.record_timeline = true;

  const std::shared_ptr<const sim::RunOutcome> out = sim::run_experiment_cached(spec);

  Fig2Result result;
  result.avg_active_ratio = out->raw.avg_active_ratio;
  result.intervals = out->raw.timeline.size();
  for (const auto& s : out->raw.timeline) {
    for (std::uint32_t w : s.module_ways) {
      result.module_diversity |= (w != s.module_ways.front());
    }
    result.ratio_changes |=
        (s.active_ratio != out->raw.timeline.front().active_ratio);
  }
  return result;
}

}  // namespace esteem::validation

// Paper-fidelity scorecard: turns the measured figure matrix into pass/fail
// checks along two axes.
//
//  1. Paper shape (bench scale only): the qualitative claims the paper makes
//     — ESTEEM beats Refrint RPV on energy saving and refresh reduction,
//     gains grow with core count (fig4 > fig3) and shrink with retention
//     (fig5 > fig3, fig6 > fig4) — plus tolerance bands on the §7.2 reported
//     averages. These are only meaningful near the bench scale: at very
//     small instruction budgets ESTEEM's reconfiguration intervals barely
//     fire and RPV can win (documented in EXPERIMENTS.md), so smoke-scale
//     runs skip this axis rather than encode a falsehood.
//
//  2. Golden drift (every scale): sweep averages, per-workload ESTEEM energy
//     rank order (Spearman), and workload sets compared against the
//     checked-in validation/golden.json entry for this exact scale
//     fingerprint. Tight tolerances — this axis answers "did my change move
//     the results", not "does the paper hold".
#pragma once

#include <string>
#include <vector>

#include "validation/fidelity.hpp"
#include "validation/figures.hpp"
#include "validation/golden.hpp"

namespace esteem::validation {

/// Drift tolerances (axis 2). Defaults are deliberately tight: the simulator
/// is deterministic, so honest no-op changes reproduce the golden values
/// exactly and any slack only exists to absorb cross-platform FP noise.
struct DriftTolerances {
  double energy_pct_abs = 0.75;   ///< percentage points
  double ws_abs = 0.01;
  double rpki_dec_rel = 0.02;
  double mpki_inc_abs = 0.05;
  double active_pct_abs = 1.0;    ///< percentage points
  double min_spearman = 0.95;     ///< vs golden per-workload energy ranks
};

/// Paper-band tolerances (axis 1, bench scale): how close the measured sweep
/// averages must sit to the §7.2 reported numbers. Wide by design — this is
/// a scaled-down trace-driven reproduction, not the paper's simulator. Only
/// energy saving is banded: absolute RPKI decrease scales inversely with the
/// instruction budget (50x fewer instructions -> ~50x more refreshes per
/// kilo-instruction), so the refresh claim is gated as a sign instead, and
/// weighted speedup is excluded entirely (EXPERIMENTS.md note 1).
struct PaperTolerances {
  double energy_pct_rel = 0.45;   ///< ±45% of the paper average
};

/// Score of one figure.
struct FigureScore {
  std::string id;
  std::string title;
  bool ran = false;              ///< False when the sweep had errors.
  std::string error;             ///< First sweep error, when !ran.

  // Axis 1 (empty at non-bench scales or when skipped).
  std::vector<SignClaim> paper_signs;
  std::vector<BandCheck> paper_bands;

  // Axis 2 (empty when the golden file has no entry for this scale).
  bool golden_found = false;
  std::vector<BandCheck> drift_bands;
  double spearman_vs_golden = 1.0;  ///< NaN when not computable.
  bool workloads_match = true;      ///< Golden and measured workload sets.

  // Raw measured averages, for reports.
  PaperAverages measured{};
  double mpki_increase = 0.0;
  double active_ratio_pct = 0.0;

  bool pass(const DriftTolerances& tol) const;
};

/// Whole-matrix scorecard.
struct Scorecard {
  std::string scale_label;
  std::string fingerprint;
  bool paper_checks_enabled = false;  ///< Axis 1 gated on (bench scale).
  std::vector<FigureScore> figures;
  /// Cross-figure paper claims (fig4>fig3 etc.), bench scale only.
  std::vector<SignClaim> cross_claims;
  DriftTolerances drift_tol;
  PaperTolerances paper_tol;

  bool golden_complete() const;  ///< Every figure had a golden entry.
  bool pass() const;
};

/// Scores a measured matrix. `golden` may be nullptr (no drift axis; the
/// scorecard then fails unless it is being built to create a golden).
/// `enable_paper_checks` should be true only near the bench scale.
Scorecard build_scorecard(const std::vector<FigureResult>& results,
                          const GoldenFile* golden, bool enable_paper_checks,
                          const DriftTolerances& drift_tol = {},
                          const PaperTolerances& paper_tol = {});

/// Converts a measured matrix into a golden entry for its scale.
GoldenScale to_golden(const std::vector<FigureResult>& results);

/// Human-readable diff between an existing golden entry and a freshly
/// measured replacement — printed by --update-golden so the change that is
/// about to be committed is visible. Empty string when identical.
std::string golden_diff_text(const GoldenScale& before, const GoldenScale& after);

/// Plain-text scorecard (terminal) and markdown scorecard (RESULTS.md).
std::string scorecard_text(const Scorecard& card);
std::string scorecard_markdown(const Scorecard& card);

}  // namespace esteem::validation

// Convenience re-export + string parsing for the technique enum.
#pragma once

#include <string_view>
#include <vector>

#include "cpu/technique.hpp"

namespace esteem::sim {

using cpu::Technique;
using cpu::to_string;

/// All techniques, baseline first.
std::vector<Technique> all_techniques();

/// Parses "baseline" / "periodic-valid" / "rpv" / "rpd" / "esteem".
/// Throws std::invalid_argument on unknown names.
Technique parse_technique(std::string_view name);

}  // namespace esteem::sim

// RunOutcome memoization shared by the sweep runner, the CLI, and every
// bench binary in the process.
//
// Key: a canonical byte-level fingerprint of everything that determines a
// run's result — the full SystemConfig, the workload spec, the technique,
// the seed, the instruction/warm-up budgets, and the timeline flag. The
// simulator is deterministic in these inputs, so a fingerprint match means
// the cached RunOutcome is bit-identical to what a fresh run would produce.
//
// Concurrency: the first requester of a key computes the run; concurrent
// requesters of the same key block on a shared_future instead of
// recomputing. Distinct keys never contend beyond the map lookup.
//
// Persistence (optional): pointing `ESTEEM_MEMO_DIR` at a directory (or
// calling set_disk_dir) spills every computed outcome to
// `esteem-memo-<hash>.bin` and reloads it in later processes, so
// regenerating a figure after the first run costs file reads, not
// simulation. Files carry a magic, a format version, and a CRC32 over the
// payload; a hash collision or a stale format reads as a plain miss, while
// a *damaged* file (truncated, bit-flipped, bad magic) is self-healing:
// it is quarantined to `<dir>/corrupt/`, counted in stats().quarantined
// and the `memo.quarantined` telemetry counter, and the outcome is
// transparently recomputed and re-stored. Delete the directory after
// changing simulator behaviour — the fingerprint hashes inputs, not code.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sim/experiment.hpp"

namespace esteem::sim {

/// Canonical fingerprint of a RunSpec (stable across processes).
std::string run_spec_fingerprint(const RunSpec& spec);

/// FNV-1a of the fingerprint — the short key used for disk filenames and
/// log lines.
std::uint64_t fingerprint_hash(const std::string& fingerprint);

/// FNV-1a over the canonical serialized form of a RunOutcome. Journal
/// records carry this digest so a resume can assert that a replayed row
/// matches what the interrupted process computed, bit for bit.
std::uint64_t outcome_digest(const RunOutcome& outcome);

struct RunCacheStats {
  std::uint64_t hits = 0;          ///< Served from the in-process map.
  std::uint64_t misses = 0;        ///< Keys that had to be resolved.
  std::uint64_t disk_hits = 0;     ///< Misses satisfied by a memo file.
  std::uint64_t disk_stores = 0;   ///< Outcomes spilled to disk.
  std::uint64_t quarantined = 0;   ///< Damaged memo files moved to corrupt/.
  std::uint64_t store_errors = 0;  ///< Failed write-then-rename spills.
  std::uint64_t store_fsync_errors = 0;  ///< Temp-file fsync failures.

  std::uint64_t lookups() const noexcept { return hits + misses; }
};

class RunCache {
 public:
  /// Process-wide instance; adopts ESTEEM_MEMO_DIR on first use.
  static RunCache& instance();

  RunCache() = default;
  RunCache(const RunCache&) = delete;
  RunCache& operator=(const RunCache&) = delete;

  /// Returns the memoized outcome for `spec`, computing it (at most once per
  /// key, even under concurrency) on a miss. Propagates the run's exception
  /// and leaves the key uncached so a later call can retry.
  std::shared_ptr<const RunOutcome> get_or_run(const RunSpec& spec);

  /// Drops every in-memory entry and zeroes the stats. Disk files survive.
  void clear();

  /// Zeroes the hit/miss/disk counters while keeping every cached entry.
  /// Benches and tools call this to scope the process-global counters to one
  /// invocation, so a second bench in the same process reports its own hit
  /// rate instead of inheriting the first one's history.
  void reset_stats();

  /// Enables ("" disables) on-disk persistence. The directory is created on
  /// first store.
  void set_disk_dir(std::string dir);
  std::string disk_dir() const;

  RunCacheStats stats() const;
  std::size_t entries() const;

 private:
  using OutcomePtr = std::shared_ptr<const RunOutcome>;

  bool load_from_disk(std::uint64_t hash, const std::string& fingerprint,
                      OutcomePtr& out) const;
  void store_to_disk(std::uint64_t hash, const std::string& fingerprint,
                     const RunOutcome& outcome);
  /// Moves a damaged memo file into `<dir>/corrupt/` (removes it when the
  /// move fails) and counts the event; the caller then recomputes.
  void quarantine_file(const std::string& dir, std::uint64_t hash,
                       const char* reason) const;
  /// Counts a failed spill (stats, telemetry, stderr).
  void note_store_error(const char* reason);

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_future<OutcomePtr>> map_;
  mutable RunCacheStats stats_;  ///< disk_hits ticks inside const load path.
  std::string disk_dir_;
};

}  // namespace esteem::sim

// Shared work-stealing task pool for the sweep layer.
//
// Each worker owns a deque: it pushes and pops its own work LIFO (so a
// baseline task's technique continuations run hot in cache on the thread
// that produced the baseline), and steals FIFO from other workers when its
// own deque drains (so the oldest — typically largest — pending work
// migrates to idle threads). Tasks may submit further tasks; the sweep
// scheduler uses exactly that to express the technique-depends-on-baseline
// edge without ever blocking a worker on a future.
//
// A pool resolved to <= 1 worker runs in *inline mode*: submit() executes
// the task immediately on the calling thread, recursively and in submission
// order. This gives a fully deterministic serial schedule with the same
// code path the threaded schedule uses — the determinism tests compare the
// two bit for bit.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace esteem::sim {

class TaskPool {
 public:
  /// `threads` = 0 resolves to hardware concurrency. A resolved count of
  /// <= 1 creates no worker threads (inline mode).
  explicit TaskPool(unsigned threads = 0);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Worker threads backing the pool (0 in inline mode).
  unsigned workers() const noexcept { return static_cast<unsigned>(threads_.size()); }
  bool inline_mode() const noexcept { return threads_.empty(); }

  /// Schedules `task`. In inline mode the task runs before submit returns.
  /// Tasks must not throw (wrap bodies that can; the sweep scheduler
  /// converts exceptions to RunError records before they reach the pool).
  void submit(std::function<void()> task);

  /// submit() wrapped in a packaged_task; the returned future carries the
  /// result or exception.
  template <typename F>
  auto async(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    submit([task]() { (*task)(); });
    return future;
  }

  /// Blocks until every submitted task (including tasks submitted by tasks)
  /// has finished. No-op in inline mode.
  void wait_idle();

  /// 0 -> hardware concurrency (>= 1).
  static unsigned resolve_threads(unsigned requested) noexcept;

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(unsigned self);
  bool try_pop(unsigned self, std::function<void()>& task);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> threads_;

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable idle_cv_;
  std::size_t pending_ = 0;  ///< Queued, not yet dequeued.
  std::size_t running_ = 0;  ///< Dequeued, still executing.
  bool stop_ = false;
  std::size_t submit_rr_ = 0;  ///< Round-robin cursor for external submits.
};

}  // namespace esteem::sim

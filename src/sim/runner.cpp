#include "sim/runner.hpp"

#include <atomic>
#include <future>
#include <latch>
#include <memory>
#include <optional>
#include <stdexcept>

#include "common/stats.hpp"
#include "resilience/shutdown.hpp"
#include "resilience/watchdog.hpp"
#include "sim/run_cache.hpp"
#include "sim/sweep_journal.hpp"
#include "sim/task_pool.hpp"
#include "telemetry/telemetry.hpp"

namespace esteem::sim {

namespace {

/// RAII wall-clock span for one sweep task (no-op when tracing is off):
/// pid kWallPid, one row per pool worker thread, so the task-pool schedule
/// is visible next to the simulated-time lanes in Perfetto.
class TaskSpan {
 public:
  explicit TaskSpan(std::string name)
      : trace_(telemetry::trace_sink()), name_(std::move(name)),
        t0_(trace_ != nullptr ? telemetry::TraceEmitter::wall_now_us() : 0.0) {
    if (telemetry::active()) telemetry::registry().counter("sweep.tasks").add();
  }
  ~TaskSpan() {
    if (trace_ == nullptr) return;
    trace_->complete(telemetry::TraceEmitter::kWallPid,
                     telemetry::TraceEmitter::wall_tid(), name_, t0_,
                     telemetry::TraceEmitter::wall_now_us() - t0_);
  }

 private:
  telemetry::TraceEmitter* trace_;
  std::string name_;
  double t0_;
};

/// Per-workload scheduling state. The baseline future is fulfilled exactly
/// once by the workload's baseline task; technique tasks are only submitted
/// after that, so their .get() never blocks a pool worker.
struct WorkloadTaskState {
  std::promise<std::shared_ptr<const RunOutcome>> baseline_promise;
  std::shared_future<std::shared_ptr<const RunOutcome>> baseline;
  std::optional<RunError> baseline_error;
  std::vector<std::optional<RunError>> technique_errors;
  /// Set when any of this workload's tasks was drained without running
  /// because shutdown was requested.
  std::atomic<bool> skipped{false};
  /// Set when the consecutive-error circuit breaker drained a task instead.
  std::atomic<bool> breaker_skipped{false};
  /// Technique tasks still outstanding; the task that takes it to zero
  /// journals the completed row (all sibling writes are visible to it via
  /// the acq_rel decrement).
  std::atomic<std::size_t> remaining{0};
};

/// [resilience] max_consecutive_errors: N run failures in a row (counted
/// after run_guarded exhausted its retries, reset by any success) trip the
/// breaker, and every task dispatched afterwards drains as breaker-skipped.
/// "Consecutive" is in task-completion order, which under threading is a
/// best-effort interleaving — good enough to tell "this config fails every
/// run" from "one workload is flaky", which is all the breaker is for.
struct CircuitBreaker {
  explicit CircuitBreaker(std::uint32_t threshold) : threshold_(threshold) {}

  bool tripped() const noexcept {
    return threshold_ != 0 && tripped_.load(std::memory_order_relaxed);
  }
  void note_success() noexcept {
    if (threshold_ != 0) consecutive_.store(0, std::memory_order_relaxed);
  }
  void note_error() noexcept {
    if (threshold_ == 0) return;
    if (consecutive_.fetch_add(1, std::memory_order_acq_rel) + 1 >= threshold_ &&
        !tripped_.exchange(true, std::memory_order_acq_rel) &&
        telemetry::active()) {
      telemetry::registry().counter("resilience.circuit_tripped").add();
    }
  }

 private:
  const std::uint32_t threshold_;
  std::atomic<std::uint32_t> consecutive_{0};
  std::atomic<bool> tripped_{false};
};

}  // namespace

RunSpec sweep_run_spec(const SweepSpec& spec, const trace::Workload& workload,
                       Technique technique) {
  RunSpec rs;
  rs.config = spec.config;
  rs.technique = technique;
  rs.workload = workload;
  rs.seed = spec.seed;
  rs.instr_per_core = spec.instr_per_core;
  rs.warmup_instr_per_core = spec.warmup_instr_per_core;
  return rs;
}

RunError current_exception_to_run_error(const std::string& workload,
                                        const std::string& technique) {
  try {
    throw;
  } catch (const resilience::DeadlineExceeded& e) {
    return RunError{workload, technique, e.what(), "deadline"};
  } catch (const std::exception& e) {
    return RunError{workload, technique, e.what(), "run"};
  } catch (...) {
    return RunError{workload, technique, "unknown exception", "run"};
  }
}

std::shared_ptr<const RunOutcome> run_guarded(const RunSpec& rs, const std::string& label,
                                              SweepJournal* journal) {
  const ResilienceConfig& rc = rs.config.resilience;
  const resilience::RetryPolicy policy{rc.max_retries, rc.backoff_ms};
  auto outcome = resilience::with_retries(
      policy,
      [&]() -> std::shared_ptr<const RunOutcome> {
        resilience::WatchdogGuard guard(label, rc.run_deadline_ms);
        auto out = run_experiment_cached(rs);
        if (guard.expired()) {
          // The outcome exists (and stays memoized for a future, more
          // generous attempt) but arrived past the budget: discard it so a
          // hung run fails the same way whether or not it ever returns.
          throw resilience::DeadlineExceeded(label, rc.run_deadline_ms);
        }
        return out;
      },
      [](std::uint32_t, std::uint64_t) {
        if (telemetry::active()) {
          telemetry::registry().counter("resilience.retries").add();
        }
      });
  if (journal != nullptr) {
    journal->append_run(fingerprint_hash(run_spec_fingerprint(rs)),
                        outcome_digest(*outcome));
  }
  return outcome;
}

SweepResult run_sweep(const SweepSpec& spec) {
  // Self-profiling: the sweep's wall time lands in the phase rollup printed
  // with the sweep summary and emitted in the esteem_bench JSON.
  telemetry::ScopedTimer sweep_timer(telemetry::profiler(), "sweep");
  if (spec.workloads.empty()) throw std::invalid_argument("run_sweep: no workloads");
  for (Technique t : spec.techniques) {
    if (t == Technique::BaselinePeriodicAll) {
      throw std::invalid_argument("run_sweep: baseline is implicit; do not list it");
    }
  }

  const std::size_t n_workloads = spec.workloads.size();
  const std::size_t n_techniques = spec.techniques.size();

  if (spec.resume != nullptr &&
      (spec.resume->sweep_hash != sweep_fingerprint_hash(spec) ||
       spec.resume->n_techniques != n_techniques)) {
    throw std::invalid_argument("run_sweep: resume state is for a different sweep");
  }

  SweepResult result;
  result.techniques = spec.techniques;
  result.rows.resize(n_workloads);

  // Every (workload, technique) cell has a preallocated slot written by
  // exactly one task, so the threaded schedule produces bit-identical rows
  // to the inline (threads = 1) schedule regardless of completion order.
  // Workloads found in the resume state are restored bit-exactly from their
  // journaled bytes and never scheduled.
  std::vector<std::unique_ptr<WorkloadTaskState>> states;
  states.reserve(n_workloads);
  std::size_t scheduled = 0;
  for (std::size_t i = 0; i < n_workloads; ++i) {
    WorkloadRow& row = result.rows[i];
    row.workload = spec.workloads[i].name;
    if (const auto* restored =
            spec.resume != nullptr ? spec.resume->find(row.workload) : nullptr) {
      row.comparisons = *restored;
      row.completed = true;
      row.resumed = true;
      states.push_back(nullptr);
      if (telemetry::active()) telemetry::registry().counter("sweep.resumed_rows").add();
      continue;
    }
    row.comparisons.assign(n_techniques, TechniqueComparison{});
    auto state = std::make_unique<WorkloadTaskState>();
    state->baseline = state->baseline_promise.get_future().share();
    state->technique_errors.resize(n_techniques);
    state->remaining.store(n_techniques, std::memory_order_relaxed);
    states.push_back(std::move(state));
    ++scheduled;
  }

  // One unit per scheduled task: baseline + every technique of the workload.
  // A failed (or shutdown-skipped) baseline retires its techniques' units
  // without scheduling them.
  std::latch done(static_cast<std::ptrdiff_t>(scheduled * (1 + n_techniques)));

  const unsigned resolved = TaskPool::resolve_threads(spec.threads);
  TaskPool pool(std::min<unsigned>(
      resolved, static_cast<unsigned>(scheduled * (1 + n_techniques))));

  CircuitBreaker breaker(spec.config.resilience.max_consecutive_errors);

  for (std::size_t wi = 0; wi < n_workloads; ++wi) {
    if (states[wi] == nullptr) continue;  // restored from the journal
    pool.submit([&spec, &result, &states, &pool, &done, &breaker, wi,
                 n_techniques] {
      const trace::Workload& workload = spec.workloads[wi];
      WorkloadTaskState& state = *states[wi];

      // Graceful shutdown: queued tasks drain without executing, so the
      // pool empties, completed rows stay journaled, and the caller reports
      // the sweep as interrupted. A tripped circuit breaker drains the same
      // way but marks the row breaker-skipped.
      if (resilience::shutdown_requested()) {
        state.skipped.store(true, std::memory_order_relaxed);
        state.baseline_promise.set_value(nullptr);
        done.count_down(static_cast<std::ptrdiff_t>(1 + n_techniques));
        return;
      }
      if (breaker.tripped()) {
        state.breaker_skipped.store(true, std::memory_order_relaxed);
        state.baseline_promise.set_value(nullptr);
        done.count_down(static_cast<std::ptrdiff_t>(1 + n_techniques));
        return;
      }
      const TaskSpan span("baseline:" + workload.name);

      std::shared_ptr<const RunOutcome> base;
      try {
        base = run_guarded(
            sweep_run_spec(spec, workload, Technique::BaselinePeriodicAll),
            "baseline:" + workload.name, spec.journal);
        breaker.note_success();
      } catch (...) {
        state.baseline_error =
            current_exception_to_run_error(workload.name, "baseline");
        breaker.note_error();
      }
      state.baseline_promise.set_value(base);  // null signals baseline failure
      if (base == nullptr) {
        done.count_down(static_cast<std::ptrdiff_t>(1 + n_techniques));
        return;
      }

      for (std::size_t ti = 0; ti < n_techniques; ++ti) {
        pool.submit([&spec, &result, &states, &done, &breaker, wi, ti] {
          const trace::Workload& wl = spec.workloads[wi];
          const Technique technique = spec.techniques[ti];
          WorkloadTaskState& st = *states[wi];
          if (resilience::shutdown_requested()) {
            st.skipped.store(true, std::memory_order_relaxed);
            st.remaining.fetch_sub(1, std::memory_order_acq_rel);
            done.count_down();
            return;
          }
          if (breaker.tripped()) {
            st.breaker_skipped.store(true, std::memory_order_relaxed);
            st.remaining.fetch_sub(1, std::memory_order_acq_rel);
            done.count_down();
            return;
          }
          const TaskSpan span(std::string(to_string(technique)) + ":" + wl.name);
          try {
            const std::shared_ptr<const RunOutcome> baseline = st.baseline.get();
            const std::shared_ptr<const RunOutcome> tech = run_guarded(
                sweep_run_spec(spec, wl, technique),
                std::string(to_string(technique)) + ":" + wl.name, spec.journal);
            result.rows[wi].comparisons[ti] = compare(wl.name, technique, *baseline, *tech);
            breaker.note_success();
          } catch (...) {
            st.technique_errors[ti] = current_exception_to_run_error(
                wl.name, std::string(to_string(technique)));
            breaker.note_error();
          }
          // The task that retires the workload's last technique journals the
          // row — but only a fully clean one, so an errored or interrupted
          // workload re-runs on resume.
          if (st.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
              spec.journal != nullptr &&
              !st.skipped.load(std::memory_order_relaxed) &&
              !st.breaker_skipped.load(std::memory_order_relaxed) &&
              !st.baseline_error) {
            bool clean = true;
            for (const std::optional<RunError>& e : st.technique_errors) {
              if (e) clean = false;
            }
            if (clean) spec.journal->append_row(result.rows[wi]);
          }
          done.count_down();
        });
      }
      done.count_down();
    });
  }
  done.wait();

  // Deterministic error report: workload order, first failing phase per
  // workload (baseline outranks techniques, techniques in spec order).
  // Shutdown-skipped workloads carry no error — they simply re-run on
  // resume.
  for (std::size_t wi = 0; wi < n_workloads; ++wi) {
    if (states[wi] == nullptr) continue;  // restored row, already completed
    WorkloadTaskState& state = *states[wi];
    if (state.skipped.load(std::memory_order_relaxed)) {
      result.rows[wi].skipped = true;
      result.interrupted = true;
      continue;
    }
    std::optional<RunError> first = std::move(state.baseline_error);
    for (std::size_t ti = 0; !first && ti < n_techniques; ++ti) {
      first = std::move(state.technique_errors[ti]);
    }
    if (state.breaker_skipped.load(std::memory_order_relaxed)) {
      // Breaker-skipped rows are not "interrupted": the errors that tripped
      // the breaker make the sweep exit 3, and the journal lets the rows
      // resume under a fixed config. A workload that errored *and* was then
      // breaker-skipped still reports its error — the trip must never
      // swallow the failures that caused it.
      result.rows[wi].skipped = true;
      result.circuit_broken = true;
      if (first) result.errors.push_back(std::move(*first));
      continue;
    }
    if (first) {
      result.errors.push_back(std::move(*first));
    } else {
      result.rows[wi].completed = true;
    }
  }
  if (resilience::shutdown_requested()) result.interrupted = true;
  return result;
}

TechniqueComparison SweepResult::summary(Technique t) const {
  std::size_t col = techniques.size();
  for (std::size_t i = 0; i < techniques.size(); ++i) {
    if (techniques[i] == t) col = i;
  }
  if (col == techniques.size()) {
    throw std::invalid_argument("summary: technique not in sweep");
  }

  std::vector<double> ws, fs, energy, rpki_base, rpki_tech, rpki_dec, mpki_base,
      mpki_tech, mpki_inc, active;
  for (const WorkloadRow& row : rows) {
    if (!row.completed) continue;  // errored rows carry no comparison data
    const TechniqueComparison& c = row.comparisons[col];
    ws.push_back(c.weighted_speedup);
    fs.push_back(c.fair_speedup);
    energy.push_back(c.energy_saving_pct);
    rpki_base.push_back(c.rpki_base);
    rpki_tech.push_back(c.rpki_tech);
    rpki_dec.push_back(c.rpki_decrease);
    mpki_base.push_back(c.mpki_base);
    mpki_tech.push_back(c.mpki_tech);
    mpki_inc.push_back(c.mpki_increase);
    active.push_back(c.active_ratio_pct);
  }
  if (ws.empty()) {
    throw std::runtime_error("summary: no workload completed");
  }

  TechniqueComparison s;
  s.workload = "average";
  s.technique = t;
  s.energy_saving_pct = mean(energy);
  s.weighted_speedup = geomean(ws);   // speedups average geometrically (§6.4)
  s.fair_speedup = geomean(fs);
  s.rpki_base = mean(rpki_base);
  s.rpki_tech = mean(rpki_tech);
  s.rpki_decrease = mean(rpki_dec);
  s.mpki_base = mean(mpki_base);
  s.mpki_tech = mean(mpki_tech);
  s.mpki_increase = mean(mpki_inc);
  s.active_ratio_pct = mean(active);
  return s;
}

}  // namespace esteem::sim

#include "sim/runner.hpp"

#include <atomic>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "common/stats.hpp"

namespace esteem::sim {

namespace {

/// Evaluates one workload into `row`. Exceptions never escape: a failure is
/// returned as a RunError so one bad workload cannot std::terminate a
/// multi-hour sweep from inside a worker thread.
std::optional<RunError> evaluate_workload(const SweepSpec& spec,
                                          const trace::Workload& workload,
                                          WorkloadRow& row) {
  row.workload = workload.name;
  std::string phase = "baseline";
  try {
    RunSpec base_spec;
    base_spec.config = spec.config;
    base_spec.technique = Technique::BaselinePeriodicAll;
    base_spec.workload = workload;
    base_spec.seed = spec.seed;
    base_spec.instr_per_core = spec.instr_per_core;
    base_spec.warmup_instr_per_core = spec.warmup_instr_per_core;

    const RunOutcome base = run_experiment(base_spec);

    for (Technique t : spec.techniques) {
      phase = std::string(to_string(t));
      RunSpec tech_spec = base_spec;
      tech_spec.technique = t;
      const RunOutcome tech = run_experiment(tech_spec);
      row.comparisons.push_back(compare(workload.name, t, base, tech));
    }
    row.completed = true;
    return std::nullopt;
  } catch (const std::exception& e) {
    return RunError{workload.name, phase, e.what()};
  } catch (...) {
    return RunError{workload.name, phase, "unknown exception"};
  }
}

}  // namespace

SweepResult run_sweep(const SweepSpec& spec) {
  if (spec.workloads.empty()) throw std::invalid_argument("run_sweep: no workloads");
  for (Technique t : spec.techniques) {
    if (t == Technique::BaselinePeriodicAll) {
      throw std::invalid_argument("run_sweep: baseline is implicit; do not list it");
    }
  }

  SweepResult result;
  result.techniques = spec.techniques;
  result.rows.resize(spec.workloads.size());

  unsigned threads = spec.threads != 0 ? spec.threads : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  threads = std::min<unsigned>(threads, static_cast<unsigned>(spec.workloads.size()));

  std::mutex errors_mutex;
  auto evaluate = [&](std::size_t i) {
    auto error = evaluate_workload(spec, spec.workloads[i], result.rows[i]);
    if (error) {
      const std::lock_guard<std::mutex> lock(errors_mutex);
      result.errors.push_back(std::move(*error));
    }
  };

  if (threads <= 1) {
    for (std::size_t i = 0; i < spec.workloads.size(); ++i) evaluate(i);
  } else {
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= spec.workloads.size()) return;
        evaluate(i);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  return result;
}

TechniqueComparison SweepResult::summary(Technique t) const {
  std::size_t col = techniques.size();
  for (std::size_t i = 0; i < techniques.size(); ++i) {
    if (techniques[i] == t) col = i;
  }
  if (col == techniques.size()) {
    throw std::invalid_argument("summary: technique not in sweep");
  }

  std::vector<double> ws, fs, energy, rpki_base, rpki_tech, rpki_dec, mpki_base,
      mpki_tech, mpki_inc, active;
  for (const WorkloadRow& row : rows) {
    if (!row.completed) continue;  // errored rows carry no comparison data
    const TechniqueComparison& c = row.comparisons[col];
    ws.push_back(c.weighted_speedup);
    fs.push_back(c.fair_speedup);
    energy.push_back(c.energy_saving_pct);
    rpki_base.push_back(c.rpki_base);
    rpki_tech.push_back(c.rpki_tech);
    rpki_dec.push_back(c.rpki_decrease);
    mpki_base.push_back(c.mpki_base);
    mpki_tech.push_back(c.mpki_tech);
    mpki_inc.push_back(c.mpki_increase);
    active.push_back(c.active_ratio_pct);
  }
  if (ws.empty()) {
    throw std::runtime_error("summary: no workload completed");
  }

  TechniqueComparison s;
  s.workload = "average";
  s.technique = t;
  s.energy_saving_pct = mean(energy);
  s.weighted_speedup = geomean(ws);   // speedups average geometrically (§6.4)
  s.fair_speedup = geomean(fs);
  s.rpki_base = mean(rpki_base);
  s.rpki_tech = mean(rpki_tech);
  s.rpki_decrease = mean(rpki_dec);
  s.mpki_base = mean(mpki_base);
  s.mpki_tech = mean(mpki_tech);
  s.mpki_increase = mean(mpki_inc);
  s.active_ratio_pct = mean(active);
  return s;
}

}  // namespace esteem::sim

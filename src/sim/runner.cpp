#include "sim/runner.hpp"

#include <future>
#include <latch>
#include <memory>
#include <optional>
#include <stdexcept>

#include "common/stats.hpp"
#include "sim/run_cache.hpp"
#include "sim/task_pool.hpp"
#include "telemetry/telemetry.hpp"

namespace esteem::sim {

namespace {

/// RAII wall-clock span for one sweep task (no-op when tracing is off):
/// pid kWallPid, one row per pool worker thread, so the task-pool schedule
/// is visible next to the simulated-time lanes in Perfetto.
class TaskSpan {
 public:
  explicit TaskSpan(std::string name)
      : trace_(telemetry::trace_sink()), name_(std::move(name)),
        t0_(trace_ != nullptr ? telemetry::TraceEmitter::wall_now_us() : 0.0) {
    if (telemetry::active()) telemetry::registry().counter("sweep.tasks").add();
  }
  ~TaskSpan() {
    if (trace_ == nullptr) return;
    trace_->complete(telemetry::TraceEmitter::kWallPid,
                     telemetry::TraceEmitter::wall_tid(), name_, t0_,
                     telemetry::TraceEmitter::wall_now_us() - t0_);
  }

 private:
  telemetry::TraceEmitter* trace_;
  std::string name_;
  double t0_;
};

/// Per-workload scheduling state. The baseline future is fulfilled exactly
/// once by the workload's baseline task; technique tasks are only submitted
/// after that, so their .get() never blocks a pool worker.
struct WorkloadTaskState {
  std::promise<std::shared_ptr<const RunOutcome>> baseline_promise;
  std::shared_future<std::shared_ptr<const RunOutcome>> baseline;
  std::optional<RunError> baseline_error;
  std::vector<std::optional<RunError>> technique_errors;
};

RunSpec make_run_spec(const SweepSpec& spec, const trace::Workload& workload,
                      Technique technique) {
  RunSpec rs;
  rs.config = spec.config;
  rs.technique = technique;
  rs.workload = workload;
  rs.seed = spec.seed;
  rs.instr_per_core = spec.instr_per_core;
  rs.warmup_instr_per_core = spec.warmup_instr_per_core;
  return rs;
}

RunError to_run_error(const std::string& workload, const std::string& phase) {
  try {
    throw;
  } catch (const std::exception& e) {
    return RunError{workload, phase, e.what()};
  } catch (...) {
    return RunError{workload, phase, "unknown exception"};
  }
}

}  // namespace

SweepResult run_sweep(const SweepSpec& spec) {
  // Self-profiling: the sweep's wall time lands in the phase rollup printed
  // with the sweep summary and emitted in the esteem_bench JSON.
  telemetry::ScopedTimer sweep_timer(telemetry::profiler(), "sweep");
  if (spec.workloads.empty()) throw std::invalid_argument("run_sweep: no workloads");
  for (Technique t : spec.techniques) {
    if (t == Technique::BaselinePeriodicAll) {
      throw std::invalid_argument("run_sweep: baseline is implicit; do not list it");
    }
  }

  const std::size_t n_workloads = spec.workloads.size();
  const std::size_t n_techniques = spec.techniques.size();

  SweepResult result;
  result.techniques = spec.techniques;
  result.rows.resize(n_workloads);

  // Every (workload, technique) cell has a preallocated slot written by
  // exactly one task, so the threaded schedule produces bit-identical rows
  // to the inline (threads = 1) schedule regardless of completion order.
  std::vector<std::unique_ptr<WorkloadTaskState>> states;
  states.reserve(n_workloads);
  for (std::size_t i = 0; i < n_workloads; ++i) {
    result.rows[i].workload = spec.workloads[i].name;
    result.rows[i].comparisons.assign(n_techniques, TechniqueComparison{});
    auto state = std::make_unique<WorkloadTaskState>();
    state->baseline = state->baseline_promise.get_future().share();
    state->technique_errors.resize(n_techniques);
    states.push_back(std::move(state));
  }

  // One unit per scheduled task: baseline + every technique of the workload.
  // A failed baseline retires its techniques' units without scheduling them.
  std::latch done(static_cast<std::ptrdiff_t>(n_workloads * (1 + n_techniques)));

  const unsigned resolved = TaskPool::resolve_threads(spec.threads);
  TaskPool pool(std::min<unsigned>(
      resolved, static_cast<unsigned>(n_workloads * (1 + n_techniques))));

  for (std::size_t wi = 0; wi < n_workloads; ++wi) {
    pool.submit([&spec, &result, &states, &pool, &done, wi, n_techniques] {
      const trace::Workload& workload = spec.workloads[wi];
      WorkloadTaskState& state = *states[wi];
      const TaskSpan span("baseline:" + workload.name);

      std::shared_ptr<const RunOutcome> base;
      try {
        base = run_experiment_cached(
            make_run_spec(spec, workload, Technique::BaselinePeriodicAll));
      } catch (...) {
        state.baseline_error = to_run_error(workload.name, "baseline");
      }
      state.baseline_promise.set_value(base);  // null signals baseline failure
      if (base == nullptr) {
        done.count_down(static_cast<std::ptrdiff_t>(1 + n_techniques));
        return;
      }

      for (std::size_t ti = 0; ti < n_techniques; ++ti) {
        pool.submit([&spec, &result, &states, &done, wi, ti] {
          const trace::Workload& wl = spec.workloads[wi];
          const Technique technique = spec.techniques[ti];
          WorkloadTaskState& st = *states[wi];
          const TaskSpan span(std::string(to_string(technique)) + ":" + wl.name);
          try {
            const std::shared_ptr<const RunOutcome> baseline = st.baseline.get();
            const std::shared_ptr<const RunOutcome> tech =
                run_experiment_cached(make_run_spec(spec, wl, technique));
            result.rows[wi].comparisons[ti] = compare(wl.name, technique, *baseline, *tech);
          } catch (...) {
            st.technique_errors[ti] =
                to_run_error(wl.name, std::string(to_string(technique)));
          }
          done.count_down();
        });
      }
      done.count_down();
    });
  }
  done.wait();

  // Deterministic error report: workload order, first failing phase per
  // workload (baseline outranks techniques, techniques in spec order).
  for (std::size_t wi = 0; wi < n_workloads; ++wi) {
    WorkloadTaskState& state = *states[wi];
    std::optional<RunError> first = std::move(state.baseline_error);
    for (std::size_t ti = 0; !first && ti < n_techniques; ++ti) {
      first = std::move(state.technique_errors[ti]);
    }
    if (first) {
      result.errors.push_back(std::move(*first));
    } else {
      result.rows[wi].completed = true;
    }
  }
  return result;
}

TechniqueComparison SweepResult::summary(Technique t) const {
  std::size_t col = techniques.size();
  for (std::size_t i = 0; i < techniques.size(); ++i) {
    if (techniques[i] == t) col = i;
  }
  if (col == techniques.size()) {
    throw std::invalid_argument("summary: technique not in sweep");
  }

  std::vector<double> ws, fs, energy, rpki_base, rpki_tech, rpki_dec, mpki_base,
      mpki_tech, mpki_inc, active;
  for (const WorkloadRow& row : rows) {
    if (!row.completed) continue;  // errored rows carry no comparison data
    const TechniqueComparison& c = row.comparisons[col];
    ws.push_back(c.weighted_speedup);
    fs.push_back(c.fair_speedup);
    energy.push_back(c.energy_saving_pct);
    rpki_base.push_back(c.rpki_base);
    rpki_tech.push_back(c.rpki_tech);
    rpki_dec.push_back(c.rpki_decrease);
    mpki_base.push_back(c.mpki_base);
    mpki_tech.push_back(c.mpki_tech);
    mpki_inc.push_back(c.mpki_increase);
    active.push_back(c.active_ratio_pct);
  }
  if (ws.empty()) {
    throw std::runtime_error("summary: no workload completed");
  }

  TechniqueComparison s;
  s.workload = "average";
  s.technique = t;
  s.energy_saving_pct = mean(energy);
  s.weighted_speedup = geomean(ws);   // speedups average geometrically (§6.4)
  s.fair_speedup = geomean(fs);
  s.rpki_base = mean(rpki_base);
  s.rpki_tech = mean(rpki_tech);
  s.rpki_decrease = mean(rpki_dec);
  s.mpki_base = mean(mpki_base);
  s.mpki_tech = mean(mpki_tech);
  s.mpki_increase = mean(mpki_inc);
  s.active_ratio_pct = mean(active);
  return s;
}

}  // namespace esteem::sim

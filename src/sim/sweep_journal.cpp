#include "sim/sweep_journal.hpp"

#include <cstdio>

#include "common/bytes.hpp"
#include "sim/run_cache.hpp"

namespace esteem::sim {

namespace {

void write_comparison(ByteWriter& w, const TechniqueComparison& c) {
  w.str(c.workload);
  w.u32(static_cast<std::uint32_t>(c.technique));
  w.f64(c.energy_saving_pct);
  w.f64(c.weighted_speedup);
  w.f64(c.fair_speedup);
  w.f64(c.rpki_base);
  w.f64(c.rpki_tech);
  w.f64(c.rpki_decrease);
  w.f64(c.mpki_base);
  w.f64(c.mpki_tech);
  w.f64(c.mpki_increase);
  w.f64(c.active_ratio_pct);
  w.u64(c.ecc_corrected_reads);
  w.u64(c.fault_refetches);
  w.u64(c.fault_data_loss);
  w.u64(c.fault_disabled_lines);
  w.f64(c.correction_rpki);
  w.u8(c.sampled ? 1 : 0);
  w.f64(c.energy_saving_ci);
  w.f64(c.weighted_speedup_ci);
  w.f64(c.rpki_tech_ci);
  w.f64(c.mpki_tech_ci);
  w.f64(c.active_ratio_ci);
}

bool read_comparison(ByteReader& rd, TechniqueComparison& c) {
  std::uint32_t technique = 0;
  std::uint8_t sampled = 0;
  // Rows written before the sampling fields fail to decode here and are
  // simply re-run on resume — the row codec is not versioned by design
  // (the journal header's sweep hash already pins the semantic config).
  const bool ok = rd.str(c.workload) && rd.u32(technique) &&
                  rd.f64(c.energy_saving_pct) && rd.f64(c.weighted_speedup) &&
                  rd.f64(c.fair_speedup) && rd.f64(c.rpki_base) &&
                  rd.f64(c.rpki_tech) && rd.f64(c.rpki_decrease) &&
                  rd.f64(c.mpki_base) && rd.f64(c.mpki_tech) &&
                  rd.f64(c.mpki_increase) && rd.f64(c.active_ratio_pct) &&
                  rd.u64(c.ecc_corrected_reads) && rd.u64(c.fault_refetches) &&
                  rd.u64(c.fault_data_loss) && rd.u64(c.fault_disabled_lines) &&
                  rd.f64(c.correction_rpki) && rd.u8(sampled) &&
                  rd.f64(c.energy_saving_ci) && rd.f64(c.weighted_speedup_ci) &&
                  rd.f64(c.rpki_tech_ci) && rd.f64(c.mpki_tech_ci) &&
                  rd.f64(c.active_ratio_ci);
  if (ok) {
    c.technique = static_cast<Technique>(technique);
    c.sampled = sampled != 0;
  }
  return ok;
}

}  // namespace

std::uint64_t sweep_fingerprint_hash(const SweepSpec& spec) {
  // Reuse the RunSpec fingerprint for the config/seed/budget part (an empty
  // workload contributes nothing workload-specific), then append the
  // technique list: two sweeps differing only in workloads hash equal.
  RunSpec rs;
  rs.config = spec.config;
  rs.technique = Technique::BaselinePeriodicAll;
  rs.seed = spec.seed;
  rs.instr_per_core = spec.instr_per_core;
  rs.warmup_instr_per_core = spec.warmup_instr_per_core;
  ByteWriter w;
  w.str(run_spec_fingerprint(rs));
  w.u64(spec.techniques.size());
  for (Technique t : spec.techniques) w.u32(static_cast<std::uint32_t>(t));
  return fingerprint_hash(w.take());
}

std::string encode_comparisons(const std::vector<TechniqueComparison>& comparisons) {
  ByteWriter w;
  w.u64(comparisons.size());
  for (const TechniqueComparison& c : comparisons) write_comparison(w, c);
  return w.take();
}

bool decode_comparisons(const std::string& bytes, std::size_t n_techniques,
                        std::vector<TechniqueComparison>& out) {
  ByteReader rd(bytes);
  std::uint64_t n = 0;
  if (!rd.u64(n) || n != n_techniques) return false;
  std::vector<TechniqueComparison> cs(n);
  for (TechniqueComparison& c : cs) {
    if (!read_comparison(rd, c)) return false;
  }
  if (!rd.done()) return false;
  out = std::move(cs);
  return true;
}

bool SweepJournal::open(const std::string& path, const SweepSpec& spec) {
  file_.set_domain("sweep");
  if (!file_.open(path, /*truncate=*/false)) return false;
  resilience::JournalRecord header;
  header.kind = "sweep";
  header.fields.emplace_back("hash", hex_u64(sweep_fingerprint_hash(spec)));
  header.fields.emplace_back("ntech", std::to_string(spec.techniques.size()));
  header.fields.emplace_back("seed", std::to_string(spec.seed));
  header.fields.emplace_back("instr", std::to_string(spec.instr_per_core));
  if (!file_.append(header)) {
    file_.close();
    return false;
  }
  return true;
}

bool SweepJournal::append_row(const WorkloadRow& row) {
  resilience::JournalRecord rec;
  rec.kind = "row";
  rec.fields.emplace_back("workload", row.workload);
  rec.fields.emplace_back("n", std::to_string(row.comparisons.size()));
  rec.fields.emplace_back("data", to_hex(encode_comparisons(row.comparisons)));
  return file_.append(rec);
}

bool SweepJournal::append_run(std::uint64_t fingerprint_hash, std::uint64_t digest) {
  resilience::JournalRecord rec;
  rec.kind = "run";
  rec.fields.emplace_back("fp", hex_u64(fingerprint_hash));
  rec.fields.emplace_back("digest", hex_u64(digest));
  return file_.append(rec);
}

ResumeLoad load_resume_state(const std::string& path, const SweepSpec& spec) {
  ResumeLoad result;
  const resilience::JournalLoadResult raw = resilience::JournalFile::load(path);
  if (!raw.exists) {
    result.error = "journal: cannot read " + path;
    return result;
  }

  const std::uint64_t want_hash = sweep_fingerprint_hash(spec);
  SweepResumeState state;
  state.sweep_hash = want_hash;
  state.n_techniques = spec.techniques.size();
  state.corrupt_lines = raw.corrupt_lines;
  bool saw_header = false;

  for (const resilience::JournalRecord& rec : raw.records) {
    if (rec.kind == "sweep") {
      std::uint64_t hash = 0;
      if (!parse_hex_u64(rec.field("hash"), hash) || hash != want_hash) {
        result.error =
            "journal: " + path + " records a different sweep (config, "
            "techniques, seed or budgets changed); refusing to resume";
        return result;
      }
      if (rec.field("ntech") != std::to_string(spec.techniques.size())) {
        result.error = "journal: " + path + " technique count mismatch";
        return result;
      }
      saw_header = true;
    } else if (rec.kind == "row") {
      const auto bytes = from_hex(rec.field("data"));
      std::vector<TechniqueComparison> cs;
      if (!bytes || rec.field("n") != std::to_string(spec.techniques.size()) ||
          !decode_comparisons(*bytes, spec.techniques.size(), cs)) {
        ++state.corrupt_lines;  // undecodable row: re-run that workload
        continue;
      }
      state.rows[rec.field("workload")] = std::move(cs);  // latest wins
    }
    // "run" audit records carry no resume state.
  }

  if (!saw_header) {
    result.error = "journal: " + path + " has no intact sweep header";
    return result;
  }
  result.ok = true;
  result.state = std::move(state);
  return result;
}

}  // namespace esteem::sim

#include "sim/task_pool.hpp"

#include <string>

#include "telemetry/telemetry.hpp"

namespace esteem::sim {

namespace {

// Identifies the pool/worker a thread belongs to so tasks submitted from
// inside a task land on the submitting worker's own deque (LIFO hot path)
// instead of round-robining through the external path.
thread_local TaskPool* tls_pool = nullptr;
thread_local unsigned tls_worker = 0;

}  // namespace

unsigned TaskPool::resolve_threads(unsigned requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

TaskPool::TaskPool(unsigned threads) {
  const unsigned n = resolve_threads(threads);
  if (n <= 1) return;  // inline mode
  queues_.reserve(n);
  for (unsigned i = 0; i < n; ++i) queues_.push_back(std::make_unique<Queue>());
  threads_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

TaskPool::~TaskPool() {
  if (inline_mode()) return;
  {
    const std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void TaskPool::submit(std::function<void()> task) {
  if (inline_mode()) {
    task();  // deterministic serial schedule: run in submission order
    return;
  }
  std::size_t target;
  {
    const std::lock_guard<std::mutex> lock(wake_mutex_);
    if (tls_pool == this) {
      target = tls_worker;
    } else {
      target = submit_rr_++ % queues_.size();
    }
    ++pending_;
  }
  {
    const std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

bool TaskPool::try_pop(unsigned self, std::function<void()>& task) {
  bool got = false;
  {
    // Own deque: LIFO, freshest work first (continuations stay cache-hot).
    Queue& q = *queues_[self];
    const std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.back());
      q.tasks.pop_back();
      got = true;
    }
  }
  for (std::size_t i = 1; !got && i < queues_.size(); ++i) {
    // Steal FIFO: the oldest queued work is the least cache-affine anyway.
    Queue& q = *queues_[(self + i) % queues_.size()];
    const std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
      got = true;
    }
  }
  if (got) {
    const std::lock_guard<std::mutex> lock(wake_mutex_);
    --pending_;
    ++running_;
  }
  return got;
}

void TaskPool::worker_loop(unsigned self) {
  tls_pool = this;
  tls_worker = self;
  if (telemetry::TraceEmitter* tr = telemetry::trace_sink()) {
    // Name this worker's wall-clock trace row after its pool index.
    tr->set_thread_name(telemetry::TraceEmitter::kWallPid,
                        telemetry::TraceEmitter::wall_tid(),
                        "pool worker " + std::to_string(self));
  }
  for (;;) {
    std::function<void()> task;
    if (try_pop(self, task)) {
      task();
      task = nullptr;  // release captures before the idle notification
      {
        const std::lock_guard<std::mutex> lock(wake_mutex_);
        --running_;
        if (pending_ == 0 && running_ == 0) idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    if (stop_) return;
    wake_cv_.wait(lock, [this] { return stop_ || pending_ > 0; });
    if (stop_) return;
  }
}

void TaskPool::wait_idle() {
  if (inline_mode()) return;
  std::unique_lock<std::mutex> lock(wake_mutex_);
  idle_cv_.wait(lock, [this] { return pending_ == 0 && running_ == 0; });
}

}  // namespace esteem::sim

// Evaluation metrics from paper §6.4.
#pragma once

#include <cstdint>
#include <span>

namespace esteem::sim {

/// Weighted speedup (Eq. 9): mean over cores of IPC_tech / IPC_base.
double weighted_speedup(std::span<const double> ipc_base,
                        std::span<const double> ipc_tech);

/// Fair speedup: harmonic mean over cores of IPC_tech / IPC_base (§6.4
/// mentions it tracks weighted speedup closely; we report it in benches).
double fair_speedup(std::span<const double> ipc_base, std::span<const double> ipc_tech);

/// Events per kilo-instruction (used for both MPKI and RPKI).
double per_kilo_instructions(std::uint64_t events, std::uint64_t instructions);

}  // namespace esteem::sim

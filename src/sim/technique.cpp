#include "sim/technique.hpp"

#include <stdexcept>
#include <string>

namespace esteem::sim {

std::vector<Technique> all_techniques() {
  return {Technique::BaselinePeriodicAll, Technique::PeriodicValid,
          Technique::RefrintRPV,          Technique::RefrintRPD,
          Technique::SmartRefresh,        Technique::EccExtended,
          Technique::CacheDecay,          Technique::Esteem};
}

Technique parse_technique(std::string_view name) {
  for (Technique t : all_techniques()) {
    if (to_string(t) == name) return t;
  }
  throw std::invalid_argument("unknown technique: " + std::string(name));
}

}  // namespace esteem::sim

// Sweep runner: evaluates a set of techniques over a set of workloads on a
// shared work-stealing task pool (sim/task_pool.hpp), scheduling at
// (workload x technique) granularity. Each technique task depends on its
// workload's baseline task through a future fulfilled by the baseline, so
// with enough cores the sweep's wall clock approaches the slowest single
// run instead of slowest_workload x (1 + |techniques|). Every run goes
// through the process-wide RunOutcome memo cache (sim/run_cache.hpp), so
// repeated sweeps — and other benches in the same process — never recompute
// an identical experiment.
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "sim/experiment.hpp"
#include "sim/technique.hpp"
#include "trace/workloads.hpp"

namespace esteem::sim {

class SweepJournal;
struct SweepResumeState;

struct SweepSpec {
  SystemConfig config;
  std::vector<trace::Workload> workloads;
  /// Techniques to compare against the baseline (do not list the baseline).
  std::vector<Technique> techniques{Technique::Esteem, Technique::RefrintRPV};
  std::uint64_t seed = 42;
  instr_t instr_per_core = 8'000'000;
  instr_t warmup_instr_per_core = 0;
  /// 0 = use hardware concurrency.
  unsigned threads = 0;
  /// Optional crash-safe journal (sim/sweep_journal.hpp): every completed
  /// workload row is appended (and fsync'd) the moment its last technique
  /// finishes. Not owned.
  SweepJournal* journal = nullptr;
  /// Optional resume state loaded from a prior journal: workloads found
  /// there are restored bit-exactly instead of re-run. Not owned.
  const SweepResumeState* resume = nullptr;
};

struct WorkloadRow {
  std::string workload;
  /// One slot per spec technique (always full-size). Slots are only
  /// meaningful when `completed` is true.
  std::vector<TechniqueComparison> comparisons;
  /// False when any of this workload's runs threw (see SweepResult::errors
  /// for the first failing phase).
  bool completed = false;
  /// True when the row was never evaluated because shutdown was requested
  /// mid-sweep; such rows carry no error and re-run on resume.
  bool skipped = false;
  /// True when the row was restored from a resume journal instead of run.
  bool resumed = false;
};

/// One failed workload evaluation, recorded instead of terminating the sweep.
struct RunError {
  std::string workload;
  std::string technique;  ///< Technique running when the exception escaped.
  std::string what;       ///< exception::what().
  /// Failure class: "run" for an exception escaping the simulation,
  /// "deadline" for a watchdog wall-clock overrun.
  std::string phase = "run";
};

struct SweepResult {
  std::vector<Technique> techniques;
  std::vector<WorkloadRow> rows;
  std::vector<RunError> errors;  ///< One entry per failed workload.
  /// True when a shutdown request (SIGINT/SIGTERM or request_shutdown())
  /// cut the sweep short; skipped rows mark the unevaluated workloads.
  bool interrupted = false;
  /// True when the [resilience] max_consecutive_errors circuit breaker
  /// tripped: the errors list holds the failures that tripped it and
  /// skipped rows mark the workloads never dispatched. Unlike
  /// `interrupted` this always comes with a non-empty errors list, so
  /// ok() is already false and the CLI exits 3 (workload errored).
  bool circuit_broken = false;

  bool ok() const noexcept { return errors.empty() && !interrupted; }

  /// Paper-style averages over completed workloads for one technique:
  /// speedups are geometric means; every other metric is an arithmetic mean
  /// (§6.4). Errored rows are skipped; throws std::runtime_error when no
  /// row completed.
  TechniqueComparison summary(Technique t) const;
};

/// Runs the sweep. Serial (threads = 1) and threaded schedules produce
/// bit-identical rows: every (workload, technique) cell is written by
/// exactly one task into a preallocated slot, and the simulation itself is
/// deterministic in the spec.
SweepResult run_sweep(const SweepSpec& spec);

/// The RunSpec a sweep cell evaluates — the single definition shared by the
/// in-process scheduler and the multi-process service worker, so a cell
/// computed anywhere is bit-identical to what run_sweep would produce.
RunSpec sweep_run_spec(const SweepSpec& spec, const trace::Workload& workload,
                       Technique technique);

/// run_experiment_cached under the sweep's resilience policy: a per-attempt
/// watchdog deadline (a late result is discarded and surfaces as
/// resilience::DeadlineExceeded), transient failures retried with capped
/// exponential backoff, and — when `journal` is non-null — a durable
/// (fingerprint -> outcome digest) audit record per completed run. Shared by
/// the in-process scheduler and the service worker.
std::shared_ptr<const RunOutcome> run_guarded(const RunSpec& spec,
                                              const std::string& label,
                                              SweepJournal* journal);

/// Maps the in-flight exception (rethrown internally) to a structured
/// RunError for `workload`/`technique` — phase "deadline" for watchdog
/// overruns, "run" otherwise. Call from a catch block only.
RunError current_exception_to_run_error(const std::string& workload,
                                        const std::string& technique);

}  // namespace esteem::sim

// Sweep runner: evaluates a set of techniques over a set of workloads,
// sharing one baseline run per workload, with optional thread-level
// parallelism across workloads.
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "sim/experiment.hpp"
#include "sim/technique.hpp"
#include "trace/workloads.hpp"

namespace esteem::sim {

struct SweepSpec {
  SystemConfig config;
  std::vector<trace::Workload> workloads;
  /// Techniques to compare against the baseline (do not list the baseline).
  std::vector<Technique> techniques{Technique::Esteem, Technique::RefrintRPV};
  std::uint64_t seed = 42;
  instr_t instr_per_core = 8'000'000;
  instr_t warmup_instr_per_core = 0;
  /// 0 = use hardware concurrency.
  unsigned threads = 0;
};

struct WorkloadRow {
  std::string workload;
  std::vector<TechniqueComparison> comparisons;  ///< One per spec technique.
  /// False when this workload's evaluation threw (comparisons is then
  /// incomplete — see SweepResult::errors for the cause).
  bool completed = false;
};

/// One failed workload evaluation, recorded instead of terminating the sweep.
struct RunError {
  std::string workload;
  std::string technique;  ///< Technique running when the exception escaped.
  std::string what;       ///< exception::what().
};

struct SweepResult {
  std::vector<Technique> techniques;
  std::vector<WorkloadRow> rows;
  std::vector<RunError> errors;  ///< One entry per failed workload.

  bool ok() const noexcept { return errors.empty(); }

  /// Paper-style averages over completed workloads for one technique:
  /// speedups are geometric means; every other metric is an arithmetic mean
  /// (§6.4). Errored rows are skipped; throws std::runtime_error when no
  /// row completed.
  TechniqueComparison summary(Technique t) const;
};

SweepResult run_sweep(const SweepSpec& spec);

}  // namespace esteem::sim

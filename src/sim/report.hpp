// Paper-style textual reports for sweep results.
#pragma once

#include <string>

#include "sim/runner.hpp"

namespace esteem::sim {

/// Per-workload figure-style report (Figures 3-6): energy saving, weighted
/// speedup and RPKI decrease for every technique, plus MPKI increase and
/// active ratio for ESTEEM. Ends with the average row.
std::string figure_report(const SweepResult& result, const std::string& title);

/// One Table 3 row: the technique summary for a given configuration label.
std::string table3_row_label(const std::string& label);

/// Writes the sweep to CSV (one row per workload x technique).
void write_csv(const SweepResult& result, const std::string& path);

}  // namespace esteem::sim

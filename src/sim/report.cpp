#include "sim/report.hpp"

#include <sstream>

#include "common/csv.hpp"
#include "common/table.hpp"

namespace esteem::sim {

std::string figure_report(const SweepResult& result, const std::string& title) {
  TextTable table;
  std::vector<std::string> header{"workload"};
  for (Technique t : result.techniques) {
    const std::string n{to_string(t)};
    header.push_back(n + ":energy%");
    header.push_back(n + ":WS");
    header.push_back(n + ":RPKIdec");
    if (t == Technique::Esteem) {
      header.push_back(n + ":MPKIinc");
      header.push_back(n + ":active%");
    }
  }
  table.set_header(std::move(header));

  auto emit = [&](const WorkloadRow& row) {
    std::vector<std::string> cells{row.workload};
    if (!row.completed) {
      // Errored workload: flag it instead of reading incomplete comparisons.
      // An interrupted (shutdown-skipped) workload was never evaluated.
      for (std::size_t i = 0; i < result.techniques.size(); ++i) {
        cells.push_back(row.skipped ? "SKIPPED" : "ERROR");
        cells.push_back("-");
        cells.push_back("-");
        if (result.techniques[i] == Technique::Esteem) {
          cells.push_back("-");
          cells.push_back("-");
        }
      }
      table.add_row(std::move(cells));
      return;
    }
    for (std::size_t i = 0; i < result.techniques.size(); ++i) {
      const TechniqueComparison& c = row.comparisons[i];
      // Sampled rows carry a 95% confidence half-interval on the headline
      // metrics; exhaustive rows render exactly as before.
      if (c.sampled) {
        cells.push_back(fmt(c.energy_saving_pct, 2) + "±" + fmt(c.energy_saving_ci, 2));
        cells.push_back(fmt(c.weighted_speedup, 3) + "±" + fmt(c.weighted_speedup_ci, 3));
      } else {
        cells.push_back(fmt(c.energy_saving_pct, 2));
        cells.push_back(fmt(c.weighted_speedup, 3));
      }
      cells.push_back(fmt(c.rpki_decrease, 1));
      if (result.techniques[i] == Technique::Esteem) {
        cells.push_back(fmt(c.mpki_increase, 3));
        cells.push_back(fmt(c.active_ratio_pct, 1));
      }
    }
    table.add_row(std::move(cells));
  };

  bool any_completed = false;
  for (const WorkloadRow& row : result.rows) {
    any_completed |= row.completed;
    emit(row);
  }

  if (any_completed) {
    WorkloadRow avg;
    avg.workload = "average";
    avg.completed = true;
    for (Technique t : result.techniques) avg.comparisons.push_back(result.summary(t));
    table.add_separator();
    emit(avg);
  }

  std::ostringstream os;
  os << title << '\n' << table.to_string();
  if (result.interrupted) {
    std::size_t skipped = 0;
    for (const WorkloadRow& row : result.rows) skipped += row.skipped ? 1 : 0;
    os << "interrupted: shutdown requested; " << skipped
       << " workload(s) skipped (resume with --resume)\n";
  }
  if (!result.errors.empty()) {
    os << "errors (" << result.errors.size() << "):\n";
    for (const RunError& e : result.errors) {
      os << "  " << e.workload << " [" << e.technique << "]: " << e.what << '\n';
    }
  }
  return os.str();
}

std::string table3_row_label(const std::string& label) { return label; }

void write_csv(const SweepResult& result, const std::string& path) {
  // CI columns appear only when at least one row came from a sampled run, so
  // exhaustive sweeps keep the exact pre-sampling byte layout (the goldens
  // and downstream parsers pin it).
  bool any_sampled = false;
  for (const WorkloadRow& row : result.rows) {
    if (!row.completed) continue;
    for (const TechniqueComparison& c : row.comparisons) any_sampled |= c.sampled;
  }

  CsvWriter csv(path);
  std::vector<std::string> header{"workload", "technique", "energy_saving_pct",
                                  "weighted_speedup", "fair_speedup", "rpki_base",
                                  "rpki_tech", "rpki_decrease", "mpki_base", "mpki_tech",
                                  "mpki_increase", "active_ratio_pct", "ecc_corrected_reads",
                                  "fault_refetches", "fault_data_loss",
                                  "fault_disabled_lines"};
  if (any_sampled) {
    header.insert(header.end(), {"energy_saving_ci", "weighted_speedup_ci", "rpki_tech_ci",
                                 "mpki_tech_ci", "active_ratio_ci"});
  }
  csv.write_row(header);
  for (const WorkloadRow& row : result.rows) {
    if (!row.completed) continue;  // errored rows are reported via errors
    for (const TechniqueComparison& c : row.comparisons) {
      std::vector<std::string> cells{row.workload, std::string(to_string(c.technique)),
                                     fmt(c.energy_saving_pct, 4), fmt(c.weighted_speedup, 4),
                                     fmt(c.fair_speedup, 4), fmt(c.rpki_base, 2),
                                     fmt(c.rpki_tech, 2), fmt(c.rpki_decrease, 2),
                                     fmt(c.mpki_base, 4), fmt(c.mpki_tech, 4),
                                     fmt(c.mpki_increase, 4), fmt(c.active_ratio_pct, 2),
                                     std::to_string(c.ecc_corrected_reads),
                                     std::to_string(c.fault_refetches),
                                     std::to_string(c.fault_data_loss),
                                     std::to_string(c.fault_disabled_lines)};
      if (any_sampled) {
        cells.push_back(fmt(c.energy_saving_ci, 4));
        cells.push_back(fmt(c.weighted_speedup_ci, 4));
        cells.push_back(fmt(c.rpki_tech_ci, 4));
        cells.push_back(fmt(c.mpki_tech_ci, 4));
        cells.push_back(fmt(c.active_ratio_ci, 4));
      }
      csv.write_row(cells);
    }
  }
}

}  // namespace esteem::sim

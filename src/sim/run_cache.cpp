#include "sim/run_cache.hpp"

#include <bit>
#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <utility>

#include "common/env.hpp"
#include "telemetry/telemetry.hpp"

namespace esteem::sim {

namespace {

/// Mirrors a memo lookup into the telemetry layer: `memo.hits`/`memo.misses`
/// counters plus a wall-clock instant on the requesting worker's trace row.
/// No-op (one relaxed load) when telemetry is off.
void note_lookup(bool hit, std::uint64_t hash) {
  if (!telemetry::active()) return;
  telemetry::registry().counter(hit ? "memo.hits" : "memo.misses").add();
  if (telemetry::TraceEmitter* tr = telemetry::trace_sink()) {
    char args[64];
    std::snprintf(args, sizeof args, "{\"key\":\"%016llx\"}",
                  static_cast<unsigned long long>(hash));
    tr->instant(telemetry::TraceEmitter::kWallPid, telemetry::TraceEmitter::wall_tid(),
                hit ? "memo hit" : "memo miss", telemetry::TraceEmitter::wall_now_us(),
                args);
  }
}

}  // namespace

namespace {

constexpr std::uint64_t kMemoMagic = 0x314F4D454D534525ULL;  // "%ESMEMO1"
// Bump whenever the fingerprint layout, the serialized RunOutcome layout, or
// simulator behaviour changes: stale memo files then read as misses.
// v2: EnergyScaleConfig joined the fingerprint.
constexpr std::uint32_t kMemoFormatVersion = 2;

/// Append-only byte writer with a fixed little-endian field encoding; the
/// same encoding produces both fingerprints and memo-file payloads.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { u64(v); }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u64(s.size());
    buf_.append(s);
  }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked reader over a memo-file payload; every getter reports
/// truncation instead of reading past the end.
class ByteReader {
 public:
  explicit ByteReader(const std::string& buf) : buf_(buf) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > buf_.size()) return false;
    v = static_cast<std::uint8_t>(buf_[pos_++]);
    return true;
  }
  bool u32(std::uint32_t& v) {
    std::uint64_t wide = 0;
    if (!u64(wide)) return false;
    v = static_cast<std::uint32_t>(wide);
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos_ + 8 > buf_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    v = std::bit_cast<double>(bits);
    return true;
  }
  bool str(std::string& s) {
    std::uint64_t n = 0;
    if (!u64(n) || pos_ + n > buf_.size()) return false;
    s.assign(buf_, pos_, n);
    pos_ += n;
    return true;
  }
  bool done() const noexcept { return pos_ == buf_.size(); }

 private:
  const std::string& buf_;
  std::size_t pos_ = 0;
};

void write_outcome(ByteWriter& w, const RunOutcome& o) {
  const cpu::RawRunResult& r = o.raw;
  w.u64(r.ipc.size());
  for (double v : r.ipc) w.f64(v);
  w.u64(r.instr_per_core);
  w.u64(r.total_instructions);
  w.u64(r.wall_cycles);

  const energy::EnergyCounters& c = r.counters;
  w.f64(c.seconds);
  w.f64(c.fa_seconds);
  w.u64(c.l2_hits);
  w.u64(c.l2_misses);
  w.u64(c.refreshes);
  w.u64(c.mm_accesses);
  w.u64(c.transitions);
  w.u64(c.ecc_corrections);

  const cpu::MemorySystemStats& m = r.mem_stats;
  w.u64(m.demand_l2_hits);
  w.u64(m.demand_l2_misses);
  w.u64(m.l2_writeback_accesses);
  w.u64(m.mm_writebacks);
  w.u64(m.reconfig_transitions);
  w.u64(m.reconfig_writebacks);

  w.u64(r.refreshes);
  w.u64(r.demand_misses);
  w.f64(r.avg_active_ratio);

  const edram::FaultCounters& f = r.faults;
  w.u64(f.scans);
  w.u64(f.corrected_lines);
  w.u64(f.corrected_reads);
  w.u64(f.refetches);
  w.u64(f.data_loss_events);
  w.u64(f.disabled_lines);
  w.u64(r.disabled_slots);

  w.u64(r.timeline.size());
  for (const cpu::IntervalSample& s : r.timeline) {
    w.u64(s.cycle);
    w.f64(s.active_ratio);
    w.u64(s.module_ways.size());
    for (std::uint32_t ways : s.module_ways) w.u32(ways);
  }

  const energy::EnergyBreakdown& e = o.energy;
  w.f64(e.leak_l2_j);
  w.f64(e.dyn_l2_j);
  w.f64(e.refresh_l2_j);
  w.f64(e.ecc_l2_j);
  w.f64(e.mm_j);
  w.f64(e.algo_j);
}

bool read_outcome(ByteReader& rd, RunOutcome& o) {
  cpu::RawRunResult& r = o.raw;
  std::uint64_t n = 0;
  if (!rd.u64(n)) return false;
  r.ipc.resize(n);
  for (double& v : r.ipc) {
    if (!rd.f64(v)) return false;
  }
  bool ok = rd.u64(r.instr_per_core) && rd.u64(r.total_instructions) &&
            rd.u64(r.wall_cycles);

  energy::EnergyCounters& c = r.counters;
  ok = ok && rd.f64(c.seconds) && rd.f64(c.fa_seconds) && rd.u64(c.l2_hits) &&
       rd.u64(c.l2_misses) && rd.u64(c.refreshes) && rd.u64(c.mm_accesses) &&
       rd.u64(c.transitions) && rd.u64(c.ecc_corrections);

  cpu::MemorySystemStats& m = r.mem_stats;
  ok = ok && rd.u64(m.demand_l2_hits) && rd.u64(m.demand_l2_misses) &&
       rd.u64(m.l2_writeback_accesses) && rd.u64(m.mm_writebacks) &&
       rd.u64(m.reconfig_transitions) && rd.u64(m.reconfig_writebacks);

  ok = ok && rd.u64(r.refreshes) && rd.u64(r.demand_misses) &&
       rd.f64(r.avg_active_ratio);

  edram::FaultCounters& f = r.faults;
  ok = ok && rd.u64(f.scans) && rd.u64(f.corrected_lines) &&
       rd.u64(f.corrected_reads) && rd.u64(f.refetches) &&
       rd.u64(f.data_loss_events) && rd.u64(f.disabled_lines) &&
       rd.u64(r.disabled_slots);
  if (!ok) return false;

  if (!rd.u64(n)) return false;
  r.timeline.resize(n);
  for (cpu::IntervalSample& s : r.timeline) {
    std::uint64_t ways = 0;
    if (!rd.u64(s.cycle) || !rd.f64(s.active_ratio) || !rd.u64(ways)) return false;
    s.module_ways.resize(ways);
    for (std::uint32_t& w : s.module_ways) {
      if (!rd.u32(w)) return false;
    }
  }

  energy::EnergyBreakdown& e = o.energy;
  return rd.f64(e.leak_l2_j) && rd.f64(e.dyn_l2_j) && rd.f64(e.refresh_l2_j) &&
         rd.f64(e.ecc_l2_j) && rd.f64(e.mm_j) && rd.f64(e.algo_j) && rd.done();
}

std::filesystem::path memo_path(const std::string& dir, std::uint64_t hash) {
  char name[40];
  std::snprintf(name, sizeof(name), "esteem-memo-%016llx.bin",
                static_cast<unsigned long long>(hash));
  return std::filesystem::path(dir) / name;
}

}  // namespace

std::string run_spec_fingerprint(const RunSpec& spec) {
  ByteWriter w;
  w.u32(kMemoFormatVersion);

  const SystemConfig& cfg = spec.config;
  w.u32(cfg.ncores);
  w.f64(cfg.freq_ghz);
  w.u64(cfg.l1.geom.size_bytes);
  w.u32(cfg.l1.geom.ways);
  w.u32(cfg.l1.geom.line_bytes);
  w.u32(cfg.l1.latency_cycles);
  w.u64(cfg.l2.geom.size_bytes);
  w.u32(cfg.l2.geom.ways);
  w.u32(cfg.l2.geom.line_bytes);
  w.u32(cfg.l2.latency_cycles);
  w.u32(cfg.l2.banks);
  w.u32(cfg.l2.access_occupancy_cycles);
  w.f64(cfg.l2.refresh_occupancy_cycles);
  w.f64(cfg.l2.queue_pressure);
  w.u32(cfg.mem.latency_cycles);
  w.f64(cfg.mem.bandwidth_gbps);
  w.f64(cfg.edram.retention_us);
  w.u32(cfg.edram.rpv_phases);
  w.u32(cfg.edram.ecc_correctable);
  w.f64(cfg.edram.ecc_target_line_failure);
  w.f64(cfg.edram.decay_interval_retentions);
  w.f64(cfg.energy.refresh_scale);
  w.f64(cfg.energy.dyn_scale);
  w.f64(cfg.energy.leak_scale);
  w.f64(cfg.esteem.alpha);
  w.u32(cfg.esteem.a_min);
  w.u32(cfg.esteem.modules);
  w.u64(cfg.esteem.interval_cycles);
  w.u32(cfg.esteem.sampling_ratio);
  w.u8(cfg.esteem.nonlru_guard ? 1 : 0);
  w.u64(cfg.esteem.min_leader_samples);
  w.f64(cfg.esteem.history_weight);
  w.u32(cfg.esteem.max_way_delta);
  w.u32(cfg.esteem.hysteresis_intervals);
  w.u32(cfg.esteem.shrink_confirm_intervals);
  w.u8(cfg.faults.enabled ? 1 : 0);
  w.u64(cfg.faults.seed);
  w.f64(cfg.faults.median_multiple);
  w.f64(cfg.faults.sigma);
  w.u32(cfg.faults.correction_latency_cycles);
  w.u32(cfg.faults.disable_threshold);
  w.u32(cfg.faults.max_tracked_extension);

  w.u32(static_cast<std::uint32_t>(spec.technique));
  w.str(spec.workload.name);
  w.u64(spec.workload.benchmarks.size());
  for (const std::string& b : spec.workload.benchmarks) w.str(b);
  w.u64(spec.seed);
  w.u64(spec.instr_per_core);
  w.u64(spec.warmup_instr_per_core);
  w.u8(spec.record_timeline ? 1 : 0);
  return w.take();
}

std::uint64_t fingerprint_hash(const std::string& fingerprint) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (unsigned char byte : fingerprint) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::shared_ptr<const RunOutcome> run_experiment_cached(const RunSpec& spec) {
  return RunCache::instance().get_or_run(spec);
}

RunCache& RunCache::instance() {
  static RunCache* cache = [] {
    auto* c = new RunCache();
    c->set_disk_dir(env_str("ESTEEM_MEMO_DIR", ""));
    return c;
  }();
  return *cache;
}

std::shared_ptr<const RunOutcome> RunCache::get_or_run(const RunSpec& spec) {
  const std::string fp = run_spec_fingerprint(spec);
  std::promise<OutcomePtr> promise;
  std::shared_future<OutcomePtr> future;
  bool owner = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(fp);
    if (it != map_.end()) {
      ++stats_.hits;
      future = it->second;
    } else {
      ++stats_.misses;
      owner = true;
      future = promise.get_future().share();
      map_.emplace(fp, future);
    }
  }
  if (telemetry::active()) note_lookup(/*hit=*/!owner, fingerprint_hash(fp));
  if (!owner) return future.get();  // blocks only while the owner computes

  try {
    const std::uint64_t hash = fingerprint_hash(fp);
    OutcomePtr outcome;
    if (!load_from_disk(hash, fp, outcome)) {
      outcome = std::make_shared<const RunOutcome>(run_experiment(spec));
      store_to_disk(hash, fp, *outcome);
    }
    promise.set_value(outcome);
    return outcome;
  } catch (...) {
    // Leave failures uncached: a retry recomputes instead of replaying the
    // stored exception forever. Waiters already holding the future still
    // observe this failure.
    promise.set_exception(std::current_exception());
    const std::lock_guard<std::mutex> lock(mutex_);
    map_.erase(fp);
    throw;
  }
}

void RunCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  stats_ = {};
}

void RunCache::reset_stats() {
  const std::lock_guard<std::mutex> lock(mutex_);
  stats_ = {};
}

void RunCache::set_disk_dir(std::string dir) {
  const std::lock_guard<std::mutex> lock(mutex_);
  disk_dir_ = std::move(dir);
}

std::string RunCache::disk_dir() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return disk_dir_;
}

RunCacheStats RunCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t RunCache::entries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

bool RunCache::load_from_disk(std::uint64_t hash, const std::string& fingerprint,
                              OutcomePtr& out) const {
  const std::string dir = disk_dir();
  if (dir.empty()) return false;

  std::ifstream in(memo_path(dir, hash), std::ios::binary);
  if (!in.good()) return false;
  std::string buf((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  ByteReader rd(buf);
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::string stored_fp;
  if (!rd.u64(magic) || magic != kMemoMagic) return false;
  if (!rd.u32(version) || version != kMemoFormatVersion) return false;
  if (!rd.str(stored_fp) || stored_fp != fingerprint) return false;  // collision/stale

  auto outcome = std::make_shared<RunOutcome>();
  if (!read_outcome(rd, *outcome)) return false;

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.disk_hits;
  }
  out = std::move(outcome);
  return true;
}

void RunCache::store_to_disk(std::uint64_t hash, const std::string& fingerprint,
                             const RunOutcome& outcome) {
  const std::string dir = disk_dir();
  if (dir.empty()) return;

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return;  // persistence is best-effort; the in-memory entry stands

  ByteWriter w;
  w.u64(kMemoMagic);
  w.u32(kMemoFormatVersion);
  w.str(fingerprint);
  write_outcome(w, outcome);
  const std::string payload = w.take();

  // Write-then-rename so concurrent bench processes never observe a torn
  // memo file.
  const std::filesystem::path final_path = memo_path(dir, hash);
  std::filesystem::path tmp = final_path;
  tmp += ".tmp";
  {
    std::ofstream outf(tmp, std::ios::binary | std::ios::trunc);
    if (!outf.good()) return;
    outf.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!outf.good()) return;
  }
  std::filesystem::rename(tmp, final_path, ec);
  if (!ec) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.disk_stores;
  }
}

}  // namespace esteem::sim

#include "sim/run_cache.hpp"

#include <atomic>
#include <bit>
#include <cerrno>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <utility>

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "chaos/file_ops.hpp"
#include "common/bytes.hpp"
#include "common/env.hpp"
#include "resilience/crc32.hpp"
#include "telemetry/telemetry.hpp"

namespace esteem::sim {

namespace {

/// Mirrors a memo lookup into the telemetry layer: `memo.hits`/`memo.misses`
/// counters plus a wall-clock instant on the requesting worker's trace row.
/// No-op (one relaxed load) when telemetry is off.
void note_lookup(bool hit, std::uint64_t hash) {
  if (!telemetry::active()) return;
  telemetry::registry().counter(hit ? "memo.hits" : "memo.misses").add();
  if (telemetry::TraceEmitter* tr = telemetry::trace_sink()) {
    char args[64];
    std::snprintf(args, sizeof args, "{\"key\":\"%016llx\"}",
                  static_cast<unsigned long long>(hash));
    tr->instant(telemetry::TraceEmitter::kWallPid, telemetry::TraceEmitter::wall_tid(),
                hit ? "memo hit" : "memo miss", telemetry::TraceEmitter::wall_now_us(),
                args);
  }
}

}  // namespace

namespace {

constexpr std::uint64_t kMemoMagic = 0x314F4D454D534525ULL;  // "%ESMEMO1"
// Bump whenever the fingerprint layout, the serialized RunOutcome layout, or
// simulator behaviour changes: stale memo files then read as misses.
// v2: EnergyScaleConfig joined the fingerprint.
// v3: CRC32 over the payload joined the header (self-healing memo files).
// v4: [sampling] joined the fingerprint; SamplingEstimates joined the outcome.
constexpr std::uint32_t kMemoFormatVersion = 4;

// Memo file layout: magic u64 | version u32 | crc u32 | payload, with the
// two u32s in the shared 8-byte encoding — a 24-byte header, then the
// CRC-protected payload (fingerprint string + serialized outcome).
constexpr std::size_t kMemoHeaderBytes = 24;

void write_estimate(ByteWriter& w, const sampling::Estimate& e) {
  w.f64(e.value);
  w.f64(e.half_ci);
}

bool read_estimate(ByteReader& rd, sampling::Estimate& e) {
  return rd.f64(e.value) && rd.f64(e.half_ci);
}

void write_outcome(ByteWriter& w, const RunOutcome& o) {
  const cpu::RawRunResult& r = o.raw;
  w.u64(r.ipc.size());
  for (double v : r.ipc) w.f64(v);
  w.u64(r.instr_per_core);
  w.u64(r.total_instructions);
  w.u64(r.wall_cycles);

  const energy::EnergyCounters& c = r.counters;
  w.f64(c.seconds);
  w.f64(c.fa_seconds);
  w.u64(c.l2_hits);
  w.u64(c.l2_misses);
  w.u64(c.refreshes);
  w.u64(c.mm_accesses);
  w.u64(c.transitions);
  w.u64(c.ecc_corrections);

  const cpu::MemorySystemStats& m = r.mem_stats;
  w.u64(m.demand_l2_hits);
  w.u64(m.demand_l2_misses);
  w.u64(m.l2_writeback_accesses);
  w.u64(m.mm_writebacks);
  w.u64(m.reconfig_transitions);
  w.u64(m.reconfig_writebacks);

  w.u64(r.refreshes);
  w.u64(r.demand_misses);
  w.f64(r.avg_active_ratio);

  const edram::FaultCounters& f = r.faults;
  w.u64(f.scans);
  w.u64(f.corrected_lines);
  w.u64(f.corrected_reads);
  w.u64(f.refetches);
  w.u64(f.data_loss_events);
  w.u64(f.disabled_lines);
  w.u64(r.disabled_slots);

  w.u64(r.timeline.size());
  for (const cpu::IntervalSample& s : r.timeline) {
    w.u64(s.cycle);
    w.f64(s.active_ratio);
    w.u64(s.module_ways.size());
    for (std::uint32_t ways : s.module_ways) w.u32(ways);
  }

  const energy::EnergyBreakdown& e = o.energy;
  w.f64(e.leak_l2_j);
  w.f64(e.dyn_l2_j);
  w.f64(e.refresh_l2_j);
  w.f64(e.ecc_l2_j);
  w.f64(e.mm_j);
  w.f64(e.algo_j);

  const sampling::SamplingEstimates& est = o.estimates;
  w.u8(est.enabled ? 1 : 0);
  if (est.enabled) {
    w.u64(est.windows);
    w.u64(est.window_instr);
    w.u64(est.detailed_instr);
    write_estimate(w, est.wall_cycles);
    w.u64(est.ipc.size());
    for (const sampling::Estimate& v : est.ipc) write_estimate(w, v);
    write_estimate(w, est.l2_hits);
    write_estimate(w, est.l2_misses);
    write_estimate(w, est.demand_hits);
    write_estimate(w, est.demand_misses);
    write_estimate(w, est.l2_writeback_accesses);
    write_estimate(w, est.mm_accesses);
    write_estimate(w, est.mm_writebacks);
    write_estimate(w, est.corrected_reads);
    write_estimate(w, est.refreshes);
    w.f64(est.fa_fraction);
    write_estimate(w, est.energy_j);
  }
}

bool read_outcome(ByteReader& rd, RunOutcome& o) {
  cpu::RawRunResult& r = o.raw;
  std::uint64_t n = 0;
  if (!rd.u64(n)) return false;
  r.ipc.resize(n);
  for (double& v : r.ipc) {
    if (!rd.f64(v)) return false;
  }
  bool ok = rd.u64(r.instr_per_core) && rd.u64(r.total_instructions) &&
            rd.u64(r.wall_cycles);

  energy::EnergyCounters& c = r.counters;
  ok = ok && rd.f64(c.seconds) && rd.f64(c.fa_seconds) && rd.u64(c.l2_hits) &&
       rd.u64(c.l2_misses) && rd.u64(c.refreshes) && rd.u64(c.mm_accesses) &&
       rd.u64(c.transitions) && rd.u64(c.ecc_corrections);

  cpu::MemorySystemStats& m = r.mem_stats;
  ok = ok && rd.u64(m.demand_l2_hits) && rd.u64(m.demand_l2_misses) &&
       rd.u64(m.l2_writeback_accesses) && rd.u64(m.mm_writebacks) &&
       rd.u64(m.reconfig_transitions) && rd.u64(m.reconfig_writebacks);

  ok = ok && rd.u64(r.refreshes) && rd.u64(r.demand_misses) &&
       rd.f64(r.avg_active_ratio);

  edram::FaultCounters& f = r.faults;
  ok = ok && rd.u64(f.scans) && rd.u64(f.corrected_lines) &&
       rd.u64(f.corrected_reads) && rd.u64(f.refetches) &&
       rd.u64(f.data_loss_events) && rd.u64(f.disabled_lines) &&
       rd.u64(r.disabled_slots);
  if (!ok) return false;

  if (!rd.u64(n)) return false;
  r.timeline.resize(n);
  for (cpu::IntervalSample& s : r.timeline) {
    std::uint64_t ways = 0;
    if (!rd.u64(s.cycle) || !rd.f64(s.active_ratio) || !rd.u64(ways)) return false;
    s.module_ways.resize(ways);
    for (std::uint32_t& w : s.module_ways) {
      if (!rd.u32(w)) return false;
    }
  }

  energy::EnergyBreakdown& e = o.energy;
  ok = rd.f64(e.leak_l2_j) && rd.f64(e.dyn_l2_j) && rd.f64(e.refresh_l2_j) &&
       rd.f64(e.ecc_l2_j) && rd.f64(e.mm_j) && rd.f64(e.algo_j);
  if (!ok) return false;

  sampling::SamplingEstimates& est = o.estimates;
  std::uint8_t sampled = 0;
  if (!rd.u8(sampled)) return false;
  est.enabled = sampled != 0;
  if (est.enabled) {
    ok = rd.u64(est.windows) && rd.u64(est.window_instr) &&
         rd.u64(est.detailed_instr) && read_estimate(rd, est.wall_cycles);
    if (!ok || !rd.u64(n)) return false;
    est.ipc.resize(n);
    for (sampling::Estimate& v : est.ipc) {
      if (!read_estimate(rd, v)) return false;
    }
    ok = read_estimate(rd, est.l2_hits) && read_estimate(rd, est.l2_misses) &&
         read_estimate(rd, est.demand_hits) &&
         read_estimate(rd, est.demand_misses) &&
         read_estimate(rd, est.l2_writeback_accesses) &&
         read_estimate(rd, est.mm_accesses) &&
         read_estimate(rd, est.mm_writebacks) &&
         read_estimate(rd, est.corrected_reads) &&
         read_estimate(rd, est.refreshes) && rd.f64(est.fa_fraction) &&
         read_estimate(rd, est.energy_j);
    if (!ok) return false;
  }
  return rd.done();
}

std::filesystem::path memo_path(const std::string& dir, std::uint64_t hash) {
  char name[40];
  std::snprintf(name, sizeof(name), "esteem-memo-%016llx.bin",
                static_cast<unsigned long long>(hash));
  return std::filesystem::path(dir) / name;
}

}  // namespace

std::uint64_t outcome_digest(const RunOutcome& outcome) {
  ByteWriter w;
  write_outcome(w, outcome);
  return fingerprint_hash(w.take());
}

std::string run_spec_fingerprint(const RunSpec& spec) {
  ByteWriter w;
  w.u32(kMemoFormatVersion);

  const SystemConfig& cfg = spec.config;
  w.u32(cfg.ncores);
  w.f64(cfg.freq_ghz);
  w.u64(cfg.l1.geom.size_bytes);
  w.u32(cfg.l1.geom.ways);
  w.u32(cfg.l1.geom.line_bytes);
  w.u32(cfg.l1.latency_cycles);
  w.u64(cfg.l2.geom.size_bytes);
  w.u32(cfg.l2.geom.ways);
  w.u32(cfg.l2.geom.line_bytes);
  w.u32(cfg.l2.latency_cycles);
  w.u32(cfg.l2.banks);
  w.u32(cfg.l2.access_occupancy_cycles);
  w.f64(cfg.l2.refresh_occupancy_cycles);
  w.f64(cfg.l2.queue_pressure);
  w.u32(cfg.mem.latency_cycles);
  w.f64(cfg.mem.bandwidth_gbps);
  w.f64(cfg.edram.retention_us);
  w.u32(cfg.edram.rpv_phases);
  w.u32(cfg.edram.ecc_correctable);
  w.f64(cfg.edram.ecc_target_line_failure);
  w.f64(cfg.edram.decay_interval_retentions);
  w.f64(cfg.energy.refresh_scale);
  w.f64(cfg.energy.dyn_scale);
  w.f64(cfg.energy.leak_scale);
  w.f64(cfg.esteem.alpha);
  w.u32(cfg.esteem.a_min);
  w.u32(cfg.esteem.modules);
  w.u64(cfg.esteem.interval_cycles);
  w.u32(cfg.esteem.sampling_ratio);
  w.u8(cfg.esteem.nonlru_guard ? 1 : 0);
  w.u64(cfg.esteem.min_leader_samples);
  w.f64(cfg.esteem.history_weight);
  w.u32(cfg.esteem.max_way_delta);
  w.u32(cfg.esteem.hysteresis_intervals);
  w.u32(cfg.esteem.shrink_confirm_intervals);
  w.u8(cfg.faults.enabled ? 1 : 0);
  w.u64(cfg.faults.seed);
  w.f64(cfg.faults.median_multiple);
  w.f64(cfg.faults.sigma);
  w.u32(cfg.faults.correction_latency_cycles);
  w.u32(cfg.faults.disable_threshold);
  w.u32(cfg.faults.max_tracked_extension);
  // [sampling] is semantic: it decides whether a run is exhaustive or
  // estimated, and with what schedule — different bytes out.
  w.u8(cfg.sampling.enabled ? 1 : 0);
  w.u64(cfg.sampling.window_instr);
  w.u64(cfg.sampling.detail_warm_instr);
  w.u64(cfg.sampling.ff_warm_instr);
  w.u64(cfg.sampling.cold_warm_instr);
  w.u64(cfg.sampling.period_instr);

  w.u32(static_cast<std::uint32_t>(spec.technique));
  w.str(spec.workload.name);
  w.u64(spec.workload.benchmarks.size());
  for (const std::string& b : spec.workload.benchmarks) w.str(b);
  w.u64(spec.seed);
  w.u64(spec.instr_per_core);
  w.u64(spec.warmup_instr_per_core);
  w.u8(spec.record_timeline ? 1 : 0);
  return w.take();
}

std::uint64_t fingerprint_hash(const std::string& fingerprint) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (unsigned char byte : fingerprint) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::shared_ptr<const RunOutcome> run_experiment_cached(const RunSpec& spec) {
  return RunCache::instance().get_or_run(spec);
}

RunCache& RunCache::instance() {
  static RunCache* cache = [] {
    auto* c = new RunCache();
    c->set_disk_dir(env_str("ESTEEM_MEMO_DIR", ""));
    return c;
  }();
  return *cache;
}

std::shared_ptr<const RunOutcome> RunCache::get_or_run(const RunSpec& spec) {
  const std::string fp = run_spec_fingerprint(spec);
  std::promise<OutcomePtr> promise;
  std::shared_future<OutcomePtr> future;
  bool owner = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(fp);
    if (it != map_.end()) {
      ++stats_.hits;
      future = it->second;
    } else {
      ++stats_.misses;
      owner = true;
      future = promise.get_future().share();
      map_.emplace(fp, future);
    }
  }
  if (telemetry::active()) note_lookup(/*hit=*/!owner, fingerprint_hash(fp));
  if (!owner) return future.get();  // blocks only while the owner computes

  try {
    const std::uint64_t hash = fingerprint_hash(fp);
    OutcomePtr outcome;
    if (!load_from_disk(hash, fp, outcome)) {
      outcome = std::make_shared<const RunOutcome>(run_experiment(spec));
      store_to_disk(hash, fp, *outcome);
    }
    promise.set_value(outcome);
    return outcome;
  } catch (...) {
    // Leave failures uncached: a retry recomputes instead of replaying the
    // stored exception forever. Waiters already holding the future still
    // observe this failure.
    promise.set_exception(std::current_exception());
    const std::lock_guard<std::mutex> lock(mutex_);
    map_.erase(fp);
    throw;
  }
}

void RunCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  stats_ = {};
}

void RunCache::reset_stats() {
  const std::lock_guard<std::mutex> lock(mutex_);
  stats_ = {};
}

void RunCache::set_disk_dir(std::string dir) {
  const std::lock_guard<std::mutex> lock(mutex_);
  disk_dir_ = std::move(dir);
}

std::string RunCache::disk_dir() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return disk_dir_;
}

RunCacheStats RunCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t RunCache::entries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

bool RunCache::load_from_disk(std::uint64_t hash, const std::string& fingerprint,
                              OutcomePtr& out) const {
  const std::string dir = disk_dir();
  if (dir.empty()) return false;

  std::ifstream in(memo_path(dir, hash), std::ios::binary);
  if (!in.good()) return false;  // no file: a plain miss, nothing to heal
  std::string buf((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();

  ByteReader rd(buf);
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t stored_crc = 0;
  if (!rd.u64(magic) || magic != kMemoMagic) {
    quarantine_file(dir, hash, "bad magic");
    return false;
  }
  if (!rd.u32(version)) {
    quarantine_file(dir, hash, "truncated header");
    return false;
  }
  if (version != kMemoFormatVersion) {
    // A stale format is expected after an upgrade, not damage: quarantine
    // still applies (the file can never load again) but the reason says so.
    quarantine_file(dir, hash, "stale format version");
    return false;
  }
  if (!rd.u32(stored_crc)) {
    quarantine_file(dir, hash, "truncated header");
    return false;
  }
  if (resilience::crc32(buf.data() + kMemoHeaderBytes, buf.size() - kMemoHeaderBytes) !=
      stored_crc) {
    quarantine_file(dir, hash, "payload checksum mismatch");
    return false;
  }

  std::string stored_fp;
  auto outcome = std::make_shared<RunOutcome>();
  if (!rd.str(stored_fp) || !read_outcome(rd, *outcome)) {
    // The CRC matched, so the bytes are what the writer produced — a decode
    // failure here means a writer/reader skew within one format version.
    quarantine_file(dir, hash, "undecodable payload");
    return false;
  }
  if (stored_fp != fingerprint) return false;  // hash collision: honest miss

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.disk_hits;
  }
  out = std::move(outcome);
  return true;
}

void RunCache::quarantine_file(const std::string& dir, std::uint64_t hash,
                               const char* reason) const {
  const std::filesystem::path bad = memo_path(dir, hash);
  const std::filesystem::path corral = std::filesystem::path(dir) / "corrupt";
  std::error_code ec;
  std::filesystem::create_directories(corral, ec);
  if (!ec) {
    // Unique destination per quarantining process: two processes (or two
    // quarantines of a rewritten file) must never race to the same target —
    // a pid+counter suffix keeps every piece of evidence and turns the
    // collision into two distinct files instead of an overwrite or an error.
    static std::atomic<std::uint64_t> quarantine_seq{0};
    const std::uint64_t seq = quarantine_seq.fetch_add(1, std::memory_order_relaxed);
#if defined(_WIN32)
    const long pid = 0;
#else
    const long pid = static_cast<long>(::getpid());
#endif
    char suffix[48];
    std::snprintf(suffix, sizeof suffix, ".%ld-%llu", pid,
                  static_cast<unsigned long long>(seq));
    std::filesystem::rename(bad, corral / (bad.filename().string() + suffix), ec);
  }
  if (ec) std::filesystem::remove(bad, ec);  // can't move it aside: drop it
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.quarantined;
  }
  if (telemetry::active()) {
    telemetry::registry().counter("memo.quarantined").add();
  }
  std::fprintf(stderr, "memo: quarantined %s (%s); recomputing\n",
               bad.filename().string().c_str(), reason);
}

void RunCache::store_to_disk(std::uint64_t hash, const std::string& fingerprint,
                             const RunOutcome& outcome) {
  const std::string dir = disk_dir();
  if (dir.empty()) return;

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return;  // persistence is best-effort; the in-memory entry stands

  ByteWriter payload_w;
  payload_w.str(fingerprint);
  write_outcome(payload_w, outcome);
  const std::string payload = payload_w.take();

  ByteWriter w;
  w.u64(kMemoMagic);
  w.u32(kMemoFormatVersion);
  w.u32(resilience::crc32(payload));
  const std::string file = w.take() + payload;

  // Write-then-fsync-then-rename so concurrent bench processes never
  // observe a torn memo file — and so a power loss right after the rename
  // cannot publish a page-cache-only file that truncates to the CRC-failing
  // case on the next boot.
  const std::filesystem::path final_path = memo_path(dir, hash);
  std::filesystem::path tmp = final_path;
  tmp += ".tmp";
#if defined(_WIN32)
  {
    std::ofstream outf(tmp, std::ios::binary | std::ios::trunc);
    if (!outf.good()) return;
    outf.write(file.data(), static_cast<std::streamsize>(file.size()));
    if (!outf.good()) {
      outf.close();
      std::filesystem::remove(tmp, ec);
      note_store_error("short write");
      return;
    }
  }
#else
  {
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return;
    std::size_t off = 0;
    while (off < file.size()) {
      const ssize_t n = chaos::px_write("memo.tmp.write", fd,
                                        file.data() + off, file.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        std::filesystem::remove(tmp, ec);
        note_store_error("short write");
        return;
      }
      off += static_cast<std::size_t>(n);
    }
    if (chaos::px_fsync("memo.tmp.fsync", fd) != 0) {
      // The bytes may or may not be durable; publishing them would trade a
      // recompute for a possible CRC quarantine after power loss. Drop the
      // temp file and keep the outcome in memory only.
      ::close(fd);
      std::filesystem::remove(tmp, ec);
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.store_fsync_errors;
      }
      if (telemetry::active()) {
        telemetry::registry().counter("memo.store_fsync_errors").add();
      }
      std::fprintf(stderr,
                   "memo: fsync failed (%s); outcome kept in memory only\n",
                   std::strerror(errno));
      return;
    }
    ::close(fd);
  }
#endif
  chaos::crashpoint("memo.crash.before_rename");
  chaos::px_rename("memo.rename", tmp, final_path, ec);
  if (ec) {
    // A failed rename used to be silently swallowed, stranding the .tmp
    // file. Clean it up and make the failure observable.
    std::error_code rm_ec;
    std::filesystem::remove(tmp, rm_ec);
    note_store_error(ec.message().c_str());
    return;
  }
  chaos::crashpoint("memo.crash.after_rename");
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.disk_stores;
}

void RunCache::note_store_error(const char* reason) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.store_errors;
  }
  if (telemetry::active()) {
    telemetry::registry().counter("memo.store_errors").add();
  }
  std::fprintf(stderr, "memo: store failed (%s); outcome kept in memory only\n",
               reason);
}

}  // namespace esteem::sim

// Experiment layer: runs one (workload, technique) simulation and computes
// the paper's comparison metrics against a paired baseline run (same
// workload, same seed, baseline technique).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "cpu/system.hpp"
#include "energy/energy_model.hpp"
#include "sampling/estimates.hpp"
#include "sim/technique.hpp"
#include "trace/workloads.hpp"

namespace esteem::sim {

struct RunSpec {
  SystemConfig config;
  Technique technique = Technique::BaselinePeriodicAll;
  trace::Workload workload;
  std::uint64_t seed = 42;
  instr_t instr_per_core = 8'000'000;
  /// Cache warm-up before measurement (paper: 10B-instruction fast-forward).
  instr_t warmup_instr_per_core = 0;
  bool record_timeline = false;
};

struct RunOutcome {
  cpu::RawRunResult raw;
  energy::EnergyBreakdown energy;
  /// Confidence intervals when the run was sampled ([sampling] enabled);
  /// `estimates.enabled == false` for exhaustive runs.
  sampling::SamplingEstimates estimates;
};

/// Telemetry label of a run — "<workload>.<technique>.s<seed>", sanitized
/// for file names. The interval series of a telemetry-enabled run lands in
/// <telemetry-dir>/<label>.intervals.jsonl.
std::string run_label(const RunSpec& spec);

/// Builds a System, runs it, evaluates the energy model. When the telemetry
/// hub is active this also records the per-interval time-series, emits
/// simulated-time trace spans, and publishes end-of-run aggregates into the
/// counter registry; with telemetry off the run is bit-identical and pays no
/// instrumentation cost.
RunOutcome run_experiment(const RunSpec& spec);

/// run_experiment through the process-wide RunCache (sim/run_cache.hpp):
/// identical specs are simulated once per process (or once ever, with
/// ESTEEM_MEMO_DIR persistence) and shared by pointer thereafter. The
/// simulator is deterministic in the spec, so a cached outcome is
/// bit-identical to a fresh run.
std::shared_ptr<const RunOutcome> run_experiment_cached(const RunSpec& spec);

/// Paper metrics for one technique vs. the paired baseline run (§6.4).
struct TechniqueComparison {
  std::string workload;
  Technique technique = Technique::Esteem;
  double energy_saving_pct = 0.0;  ///< Metric 1.
  double weighted_speedup = 1.0;   ///< Metric 2 (Eq. 9).
  double fair_speedup = 1.0;
  double rpki_base = 0.0;
  double rpki_tech = 0.0;
  double rpki_decrease = 0.0;      ///< Metric 3 (absolute).
  double mpki_base = 0.0;
  double mpki_tech = 0.0;
  double mpki_increase = 0.0;      ///< ESTEEM metric (absolute).
  double active_ratio_pct = 100.0; ///< ESTEEM metric (time-weighted F_A).

  // Resilience metrics of the technique run (all zero with faults disabled).
  std::uint64_t ecc_corrected_reads = 0;
  std::uint64_t fault_refetches = 0;       ///< Clean uncorrectable re-fetches.
  std::uint64_t fault_data_loss = 0;       ///< Dirty uncorrectable losses.
  std::uint64_t fault_disabled_lines = 0;  ///< Slots retired this run.
  double correction_rpki = 0.0;            ///< Corrected reads per kilo-instr.

  // Sampling: true when either paired run used the systematic-sampling
  // executor; the *_ci fields are 95% half-intervals for the corresponding
  // metric above (propagated from the per-run estimates — docs/SAMPLING.md).
  // All zero for exhaustive comparisons.
  bool sampled = false;
  double energy_saving_ci = 0.0;
  double weighted_speedup_ci = 0.0;
  double rpki_tech_ci = 0.0;
  double mpki_tech_ci = 0.0;
  double active_ratio_ci = 0.0;
};

TechniqueComparison compare(const std::string& workload, Technique technique,
                            const RunOutcome& baseline, const RunOutcome& tech);

/// Runs baseline + technique with paired seeds and compares.
TechniqueComparison run_and_compare(const RunSpec& technique_spec);

}  // namespace esteem::sim

#include "sim/metrics.hpp"

#include <stdexcept>

namespace esteem::sim {

namespace {
void check_sizes(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("speedup: per-core IPC vectors must match and be nonempty");
  }
}
}  // namespace

double weighted_speedup(std::span<const double> ipc_base,
                        std::span<const double> ipc_tech) {
  check_sizes(ipc_base, ipc_tech);
  double sum = 0.0;
  for (std::size_t i = 0; i < ipc_base.size(); ++i) {
    if (ipc_base[i] <= 0.0) throw std::invalid_argument("speedup: nonpositive base IPC");
    sum += ipc_tech[i] / ipc_base[i];
  }
  return sum / static_cast<double>(ipc_base.size());
}

double fair_speedup(std::span<const double> ipc_base, std::span<const double> ipc_tech) {
  check_sizes(ipc_base, ipc_tech);
  double denom = 0.0;
  for (std::size_t i = 0; i < ipc_base.size(); ++i) {
    if (ipc_tech[i] <= 0.0) throw std::invalid_argument("speedup: nonpositive tech IPC");
    denom += ipc_base[i] / ipc_tech[i];
  }
  return static_cast<double>(ipc_base.size()) / denom;
}

double per_kilo_instructions(std::uint64_t events, std::uint64_t instructions) {
  if (instructions == 0) return 0.0;
  return 1000.0 * static_cast<double>(events) / static_cast<double>(instructions);
}

}  // namespace esteem::sim

#include "sim/experiment.hpp"

#include "edram/ecc.hpp"
#include "energy/cacti_table.hpp"
#include "sim/metrics.hpp"
#include "sim/run_cache.hpp"
#include "telemetry/telemetry.hpp"

namespace esteem::sim {

std::string run_label(const RunSpec& spec) {
  return telemetry::sanitize_label(spec.workload.name + "." +
                                   std::string(to_string(spec.technique)) + ".s" +
                                   std::to_string(spec.seed));
}

namespace {

/// Publishes end-of-run aggregates into the global counter registry under
/// the dotted hierarchy (`l2.*`, `mm.*`, `faults.*`, `esteem.*`). Counters
/// sum across every run of the process; gauges carry the latest run.
void publish_run_counters(const RunSpec& spec, const RunOutcome& outcome) {
  telemetry::CounterRegistry& reg = telemetry::registry();
  const cpu::RawRunResult& r = outcome.raw;
  reg.counter("runs.completed").add();
  reg.counter("l2.demand_hits").add(r.mem_stats.demand_l2_hits);
  reg.counter("l2.demand_misses").add(r.mem_stats.demand_l2_misses);
  reg.counter("l2.refreshes").add(r.refreshes);
  reg.counter("l2.reconfig_transitions").add(r.mem_stats.reconfig_transitions);
  reg.counter("l2.reconfig_writebacks").add(r.mem_stats.reconfig_writebacks);
  reg.counter("mm.writebacks").add(r.mem_stats.mm_writebacks);
  reg.counter("faults.corrected_reads").add(r.faults.corrected_reads);
  reg.counter("faults.uncorrectable").add(r.faults.uncorrectable());
  reg.histogram("run.wall_cycles").observe(r.wall_cycles);
  reg.gauge("run.last_active_ratio").set(r.avg_active_ratio);
  if (spec.technique == Technique::Esteem) {
    const std::size_t modules = r.timeline.empty()
                                    ? 0
                                    : r.timeline.back().module_ways.size();
    for (std::size_t m = 0; m < modules; ++m) {
      reg.gauge("esteem.module" + std::to_string(m) + ".active_ways")
          .set(static_cast<double>(r.timeline.back().module_ways[m]));
    }
  }
}

}  // namespace

RunOutcome run_experiment(const RunSpec& spec) {
  telemetry::Telemetry& tel = telemetry::Telemetry::instance();

  // Per-run sink (null when telemetry is off): interval time-series columns
  // plus one simulated-time trace lane per ESTEEM module.
  const std::uint32_t modules =
      spec.technique == Technique::Esteem ? spec.config.esteem.modules : 0;
  std::unique_ptr<telemetry::RunSink> sink;
  std::string label;
  if (tel.active()) {
    label = run_label(spec);
    sink = tel.begin_run(label, spec.config.freq_ghz,
                         telemetry::interval_columns(modules), 1 + modules);
  }

  const double wall_t0 =
      sink && sink->trace ? telemetry::TraceEmitter::wall_now_us() : 0.0;

  cpu::System system(spec.config, spec.technique, spec.workload.benchmarks, spec.seed);

  cpu::RunOptions options;
  options.instr_per_core = spec.instr_per_core;
  options.warmup_instr_per_core = spec.warmup_instr_per_core;
  options.record_timeline = spec.record_timeline;
  options.seed = spec.seed;
  options.telemetry = sink.get();

  RunOutcome outcome;
  {
    telemetry::ScopedTimer t(tel.profiler(), "run.simulate");
    outcome.raw = system.run(options);
  }

  telemetry::ScopedTimer energy_timer(tel.profiler(), "run.energy");
  energy::EnergyModelParams params;
  params.l2 = energy::l2_energy_params(spec.config.l2.geom.size_bytes);
  params.refresh_scale = spec.config.energy.refresh_scale;
  params.dyn_scale = spec.config.energy.dyn_scale;
  params.l2.p_leak_watts *= spec.config.energy.leak_scale;
  if (spec.technique == Technique::EccExtended) {
    // ECC check bits enlarge the array: leakage and per-access energy grow
    // by the storage overhead.
    const double overhead = edram::ecc_storage_overhead(
        spec.config.l2.geom.line_bytes * 8, spec.config.edram.ecc_correctable);
    params.l2.p_leak_watts *= 1.0 + overhead;
    params.l2.e_dyn_nj_per_access *= 1.0 + overhead;
  }
  outcome.energy = energy::compute_energy(params, outcome.raw.counters);
  energy_timer.stop();

  if (sink) {
    if (sink->trace != nullptr) {
      sink->trace->complete(telemetry::TraceEmitter::kWallPid,
                            telemetry::TraceEmitter::wall_tid(), "simulate " + label,
                            wall_t0,
                            telemetry::TraceEmitter::wall_now_us() - wall_t0);
    }
    tel.end_run(*sink);
  }
  if (tel.active()) publish_run_counters(spec, outcome);
  return outcome;
}

TechniqueComparison compare(const std::string& workload, Technique technique,
                            const RunOutcome& baseline, const RunOutcome& tech) {
  TechniqueComparison c;
  c.workload = workload;
  c.technique = technique;
  c.energy_saving_pct = energy::percent_energy_saving(baseline.energy, tech.energy);
  c.weighted_speedup = weighted_speedup(baseline.raw.ipc, tech.raw.ipc);
  c.fair_speedup = fair_speedup(baseline.raw.ipc, tech.raw.ipc);

  const instr_t instr = baseline.raw.total_instructions;
  c.rpki_base = per_kilo_instructions(baseline.raw.refreshes, instr);
  c.rpki_tech = per_kilo_instructions(tech.raw.refreshes, instr);
  c.rpki_decrease = c.rpki_base - c.rpki_tech;
  c.mpki_base = per_kilo_instructions(baseline.raw.demand_misses, instr);
  c.mpki_tech = per_kilo_instructions(tech.raw.demand_misses, instr);
  c.mpki_increase = c.mpki_tech - c.mpki_base;
  c.active_ratio_pct = 100.0 * tech.raw.avg_active_ratio;
  c.ecc_corrected_reads = tech.raw.faults.corrected_reads;
  c.fault_refetches = tech.raw.faults.refetches;
  c.fault_data_loss = tech.raw.faults.data_loss_events;
  c.fault_disabled_lines = tech.raw.faults.disabled_lines;
  c.correction_rpki = per_kilo_instructions(tech.raw.faults.corrected_reads, instr);
  return c;
}

TechniqueComparison run_and_compare(const RunSpec& technique_spec) {
  RunSpec base_spec = technique_spec;
  base_spec.technique = Technique::BaselinePeriodicAll;
  base_spec.record_timeline = false;

  // Memoized: a series of run_and_compare calls over the same workload (the
  // ablation bench's variant grid) computes the baseline once.
  const std::shared_ptr<const RunOutcome> base = run_experiment_cached(base_spec);
  const std::shared_ptr<const RunOutcome> tech = run_experiment_cached(technique_spec);
  return compare(technique_spec.workload.name, technique_spec.technique, *base, *tech);
}

}  // namespace esteem::sim

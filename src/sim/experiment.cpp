#include "sim/experiment.hpp"

#include <cmath>

#include "edram/ecc.hpp"
#include "energy/cacti_table.hpp"
#include "sampling/sampled_run.hpp"
#include "sim/metrics.hpp"
#include "sim/run_cache.hpp"
#include "telemetry/telemetry.hpp"

namespace esteem::sim {

std::string run_label(const RunSpec& spec) {
  return telemetry::sanitize_label(spec.workload.name + "." +
                                   std::string(to_string(spec.technique)) + ".s" +
                                   std::to_string(spec.seed));
}

namespace {

/// Publishes end-of-run aggregates into the global counter registry under
/// the dotted hierarchy (`l2.*`, `mm.*`, `faults.*`, `esteem.*`). Counters
/// sum across every run of the process; gauges carry the latest run.
void publish_run_counters(const RunSpec& spec, const RunOutcome& outcome) {
  telemetry::CounterRegistry& reg = telemetry::registry();
  const cpu::RawRunResult& r = outcome.raw;
  reg.counter("runs.completed").add();
  reg.counter("l2.demand_hits").add(r.mem_stats.demand_l2_hits);
  reg.counter("l2.demand_misses").add(r.mem_stats.demand_l2_misses);
  reg.counter("l2.refreshes").add(r.refreshes);
  reg.counter("l2.reconfig_transitions").add(r.mem_stats.reconfig_transitions);
  reg.counter("l2.reconfig_writebacks").add(r.mem_stats.reconfig_writebacks);
  reg.counter("mm.writebacks").add(r.mem_stats.mm_writebacks);
  reg.counter("faults.corrected_reads").add(r.faults.corrected_reads);
  reg.counter("faults.uncorrectable").add(r.faults.uncorrectable());
  reg.histogram("run.wall_cycles").observe(r.wall_cycles);
  reg.gauge("run.last_active_ratio").set(r.avg_active_ratio);
  if (spec.technique == Technique::Esteem) {
    const std::size_t modules = r.timeline.empty()
                                    ? 0
                                    : r.timeline.back().module_ways.size();
    for (std::size_t m = 0; m < modules; ++m) {
      reg.gauge("esteem.module" + std::to_string(m) + ".active_ways")
          .set(static_cast<double>(r.timeline.back().module_ways[m]));
    }
  }
  if (outcome.estimates.enabled) {
    reg.counter("sampling.runs").add();
    reg.gauge("sampling.last_windows")
        .set(static_cast<double>(outcome.estimates.windows));
    reg.gauge("sampling.last_energy_rel_ci")
        .set(outcome.estimates.energy_j.relative());
    reg.gauge("sampling.last_wall_rel_ci")
        .set(outcome.estimates.wall_cycles.relative());
  }
}

/// 95% half-interval of total energy: perturbs each sampled counter by its
/// half-CI through the energy model and combines the deltas in quadrature
/// (the window estimates are close enough to independent, docs/SAMPLING.md).
sampling::Estimate energy_half_ci(const energy::EnergyModelParams& params,
                                  const energy::EnergyCounters& counters,
                                  const sampling::SamplingEstimates& est,
                                  double freq_ghz) {
  const double base = energy::compute_energy(params, counters).total_j();
  double var = 0.0;
  const auto probe = [&](const auto& mutate) {
    energy::EnergyCounters p = counters;
    mutate(p);
    const double d = energy::compute_energy(params, p).total_j() - base;
    var += d * d;
  };
  probe([&](energy::EnergyCounters& p) {
    p.l2_hits += static_cast<std::uint64_t>(est.l2_hits.half_ci + 0.5);
  });
  probe([&](energy::EnergyCounters& p) {
    p.l2_misses += static_cast<std::uint64_t>(est.l2_misses.half_ci + 0.5);
  });
  probe([&](energy::EnergyCounters& p) {
    p.mm_accesses += static_cast<std::uint64_t>(est.mm_accesses.half_ci + 0.5);
  });
  probe([&](energy::EnergyCounters& p) {
    p.refreshes += static_cast<std::uint64_t>(est.refreshes.half_ci + 0.5);
  });
  probe([&](energy::EnergyCounters& p) {
    p.ecc_corrections +=
        static_cast<std::uint64_t>(est.corrected_reads.half_ci + 0.5);
  });
  probe([&](energy::EnergyCounters& p) {
    // Wall-time uncertainty moves leakage and the F_A-weighted terms
    // together (F_A itself is a time ratio and cancels).
    const double dt = est.wall_cycles.half_ci / (freq_ghz * 1e9);
    p.seconds += dt;
    p.fa_seconds += dt * est.fa_fraction;
  });
  return sampling::Estimate{base, std::sqrt(var)};
}

/// Metric + CI view of one run that works for exhaustive runs too (CI 0).
sampling::Estimate energy_estimate(const RunOutcome& o) {
  return o.estimates.enabled ? o.estimates.energy_j
                             : sampling::Estimate{o.energy.total_j(), 0.0};
}

sampling::Estimate ipc_estimate(const RunOutcome& o, std::size_t core) {
  return o.estimates.enabled ? o.estimates.ipc[core]
                             : sampling::Estimate{o.raw.ipc[core], 0.0};
}

}  // namespace

RunOutcome run_experiment(const RunSpec& spec) {
  telemetry::Telemetry& tel = telemetry::Telemetry::instance();

  // Per-run sink (null when telemetry is off): interval time-series columns
  // plus one simulated-time trace lane per ESTEEM module.
  const std::uint32_t modules =
      spec.technique == Technique::Esteem ? spec.config.esteem.modules : 0;
  std::unique_ptr<telemetry::RunSink> sink;
  std::string label;
  if (tel.active()) {
    label = run_label(spec);
    sink = tel.begin_run(label, spec.config.freq_ghz,
                         telemetry::interval_columns(modules), 1 + modules);
  }

  const double wall_t0 =
      sink && sink->trace ? telemetry::TraceEmitter::wall_now_us() : 0.0;

  cpu::System system(spec.config, spec.technique, spec.workload.benchmarks, spec.seed);

  cpu::RunOptions options;
  options.instr_per_core = spec.instr_per_core;
  options.warmup_instr_per_core = spec.warmup_instr_per_core;
  options.record_timeline = spec.record_timeline;
  options.seed = spec.seed;
  options.telemetry = sink.get();

  RunOutcome outcome;
  {
    telemetry::ScopedTimer t(tel.profiler(), "run.simulate");
    if (spec.config.sampling.enabled) {
      sampling::SampledRunResult sampled =
          sampling::run_sampled(system, options, spec.config.sampling);
      outcome.raw = std::move(sampled.raw);
      outcome.estimates = std::move(sampled.estimates);
    } else {
      outcome.raw = system.run(options);
    }
  }

  telemetry::ScopedTimer energy_timer(tel.profiler(), "run.energy");
  energy::EnergyModelParams params;
  params.l2 = energy::l2_energy_params(spec.config.l2.geom.size_bytes);
  params.refresh_scale = spec.config.energy.refresh_scale;
  params.dyn_scale = spec.config.energy.dyn_scale;
  params.l2.p_leak_watts *= spec.config.energy.leak_scale;
  if (spec.technique == Technique::EccExtended) {
    // ECC check bits enlarge the array: leakage and per-access energy grow
    // by the storage overhead.
    const double overhead = edram::ecc_storage_overhead(
        spec.config.l2.geom.line_bytes * 8, spec.config.edram.ecc_correctable);
    params.l2.p_leak_watts *= 1.0 + overhead;
    params.l2.e_dyn_nj_per_access *= 1.0 + overhead;
  }
  outcome.energy = energy::compute_energy(params, outcome.raw.counters);
  if (outcome.estimates.enabled) {
    outcome.estimates.energy_j = energy_half_ci(
        params, outcome.raw.counters, outcome.estimates, spec.config.freq_ghz);
  }
  energy_timer.stop();

  if (sink) {
    if (sink->trace != nullptr) {
      sink->trace->complete(telemetry::TraceEmitter::kWallPid,
                            telemetry::TraceEmitter::wall_tid(), "simulate " + label,
                            wall_t0,
                            telemetry::TraceEmitter::wall_now_us() - wall_t0);
    }
    tel.end_run(*sink);
  }
  if (tel.active()) publish_run_counters(spec, outcome);
  return outcome;
}

TechniqueComparison compare(const std::string& workload, Technique technique,
                            const RunOutcome& baseline, const RunOutcome& tech) {
  TechniqueComparison c;
  c.workload = workload;
  c.technique = technique;
  c.energy_saving_pct = energy::percent_energy_saving(baseline.energy, tech.energy);
  c.weighted_speedup = weighted_speedup(baseline.raw.ipc, tech.raw.ipc);
  c.fair_speedup = fair_speedup(baseline.raw.ipc, tech.raw.ipc);

  const instr_t instr = baseline.raw.total_instructions;
  c.rpki_base = per_kilo_instructions(baseline.raw.refreshes, instr);
  c.rpki_tech = per_kilo_instructions(tech.raw.refreshes, instr);
  c.rpki_decrease = c.rpki_base - c.rpki_tech;
  c.mpki_base = per_kilo_instructions(baseline.raw.demand_misses, instr);
  c.mpki_tech = per_kilo_instructions(tech.raw.demand_misses, instr);
  c.mpki_increase = c.mpki_tech - c.mpki_base;
  c.active_ratio_pct = 100.0 * tech.raw.avg_active_ratio;

  c.sampled = baseline.estimates.enabled || tech.estimates.enabled;
  if (c.sampled) {
    // Energy saving = 100 * (1 - Et/Eb): relative errors of the two runs
    // combine in quadrature on the ratio.
    const sampling::Estimate eb = energy_estimate(baseline);
    const sampling::Estimate et = energy_estimate(tech);
    if (eb.value > 0.0 && et.value > 0.0) {
      const double ratio = et.value / eb.value;
      const double rel =
          std::sqrt(eb.relative() * eb.relative() + et.relative() * et.relative());
      c.energy_saving_ci = 100.0 * ratio * rel;
    }
    // Weighted speedup is the mean of per-core IPC ratios; each ratio's
    // relative error again combines the paired runs in quadrature.
    double ws_var = 0.0;
    const std::size_t ncores = tech.raw.ipc.size();
    for (std::size_t i = 0; i < ncores; ++i) {
      const sampling::Estimate ib = ipc_estimate(baseline, i);
      const sampling::Estimate it = ipc_estimate(tech, i);
      if (ib.value <= 0.0 || it.value <= 0.0) continue;
      const double ratio = it.value / ib.value;
      const double rel =
          std::sqrt(ib.relative() * ib.relative() + it.relative() * it.relative());
      ws_var += (ratio * rel) * (ratio * rel);
    }
    if (ncores > 0) {
      c.weighted_speedup_ci =
          std::sqrt(ws_var) / static_cast<double>(ncores);
    }
    if (tech.estimates.enabled && instr > 0) {
      c.rpki_tech_ci =
          1000.0 * tech.estimates.refreshes.half_ci / static_cast<double>(instr);
      c.mpki_tech_ci = 1000.0 * tech.estimates.demand_misses.half_ci /
                       static_cast<double>(instr);
    }
    // F_A is integrated on the run's own clock, so its ratio to elapsed time
    // carries no window-sampling variance (docs/SAMPLING.md) — CI 0.
  }

  c.ecc_corrected_reads = tech.raw.faults.corrected_reads;
  c.fault_refetches = tech.raw.faults.refetches;
  c.fault_data_loss = tech.raw.faults.data_loss_events;
  c.fault_disabled_lines = tech.raw.faults.disabled_lines;
  c.correction_rpki = per_kilo_instructions(tech.raw.faults.corrected_reads, instr);
  return c;
}

TechniqueComparison run_and_compare(const RunSpec& technique_spec) {
  RunSpec base_spec = technique_spec;
  base_spec.technique = Technique::BaselinePeriodicAll;
  base_spec.record_timeline = false;

  // Memoized: a series of run_and_compare calls over the same workload (the
  // ablation bench's variant grid) computes the baseline once.
  const std::shared_ptr<const RunOutcome> base = run_experiment_cached(base_spec);
  const std::shared_ptr<const RunOutcome> tech = run_experiment_cached(technique_spec);
  return compare(technique_spec.workload.name, technique_spec.technique, *base, *tech);
}

}  // namespace esteem::sim

#include "sim/experiment.hpp"

#include "edram/ecc.hpp"
#include "energy/cacti_table.hpp"
#include "sim/metrics.hpp"
#include "sim/run_cache.hpp"

namespace esteem::sim {

RunOutcome run_experiment(const RunSpec& spec) {
  cpu::System system(spec.config, spec.technique, spec.workload.benchmarks, spec.seed);

  cpu::RunOptions options;
  options.instr_per_core = spec.instr_per_core;
  options.warmup_instr_per_core = spec.warmup_instr_per_core;
  options.record_timeline = spec.record_timeline;
  options.seed = spec.seed;

  RunOutcome outcome;
  outcome.raw = system.run(options);

  energy::EnergyModelParams params;
  params.l2 = energy::l2_energy_params(spec.config.l2.geom.size_bytes);
  if (spec.technique == Technique::EccExtended) {
    // ECC check bits enlarge the array: leakage and per-access energy grow
    // by the storage overhead.
    const double overhead = edram::ecc_storage_overhead(
        spec.config.l2.geom.line_bytes * 8, spec.config.edram.ecc_correctable);
    params.l2.p_leak_watts *= 1.0 + overhead;
    params.l2.e_dyn_nj_per_access *= 1.0 + overhead;
  }
  outcome.energy = energy::compute_energy(params, outcome.raw.counters);
  return outcome;
}

TechniqueComparison compare(const std::string& workload, Technique technique,
                            const RunOutcome& baseline, const RunOutcome& tech) {
  TechniqueComparison c;
  c.workload = workload;
  c.technique = technique;
  c.energy_saving_pct = energy::percent_energy_saving(baseline.energy, tech.energy);
  c.weighted_speedup = weighted_speedup(baseline.raw.ipc, tech.raw.ipc);
  c.fair_speedup = fair_speedup(baseline.raw.ipc, tech.raw.ipc);

  const instr_t instr = baseline.raw.total_instructions;
  c.rpki_base = per_kilo_instructions(baseline.raw.refreshes, instr);
  c.rpki_tech = per_kilo_instructions(tech.raw.refreshes, instr);
  c.rpki_decrease = c.rpki_base - c.rpki_tech;
  c.mpki_base = per_kilo_instructions(baseline.raw.demand_misses, instr);
  c.mpki_tech = per_kilo_instructions(tech.raw.demand_misses, instr);
  c.mpki_increase = c.mpki_tech - c.mpki_base;
  c.active_ratio_pct = 100.0 * tech.raw.avg_active_ratio;
  c.ecc_corrected_reads = tech.raw.faults.corrected_reads;
  c.fault_refetches = tech.raw.faults.refetches;
  c.fault_data_loss = tech.raw.faults.data_loss_events;
  c.fault_disabled_lines = tech.raw.faults.disabled_lines;
  c.correction_rpki = per_kilo_instructions(tech.raw.faults.corrected_reads, instr);
  return c;
}

TechniqueComparison run_and_compare(const RunSpec& technique_spec) {
  RunSpec base_spec = technique_spec;
  base_spec.technique = Technique::BaselinePeriodicAll;
  base_spec.record_timeline = false;

  // Memoized: a series of run_and_compare calls over the same workload (the
  // ablation bench's variant grid) computes the baseline once.
  const std::shared_ptr<const RunOutcome> base = run_experiment_cached(base_spec);
  const std::shared_ptr<const RunOutcome> tech = run_experiment_cached(technique_spec);
  return compare(technique_spec.workload.name, technique_spec.technique, *base, *tech);
}

}  // namespace esteem::sim

// Crash-safe sweep journal: the sim-layer schema on top of the generic
// resilience::JournalFile (append-only, fsync'd, per-line CRC32 JSONL).
//
// The journal lives next to the sweep's output (`<out>.journal` by
// convention) and records, in completion order:
//
//   {"v":1,"kind":"sweep","hash":"<%016llx>","ntech":"2","seed":"42",...}
//   {"v":1,"kind":"run","fp":"<%016llx>","digest":"<%016llx>","crc":...}
//   {"v":1,"kind":"row","workload":"gamess","n":"2","data":"<hex>","crc":...}
//
// * `sweep` identifies the sweep: a hash over everything that determines a
//   row's bytes (config, techniques, seed, budgets) EXCEPT the workload
//   list, so a journal written while sweeping a subset of workloads can
//   seed a resume over a superset. A resume refuses a journal whose hash
//   differs — results from a different configuration must never leak in.
// * `run` is the audit trail: one (RunSpec fingerprint hash -> RunOutcome
//   digest) pair per simulation that completed.
// * `row` carries the full per-workload TechniqueComparison vector in the
//   canonical byte encoding (common/bytes.hpp), hex-armored. Restoring a
//   row replays these bytes, so a resumed sweep's CSV/report/summary is
//   bit-identical to an uninterrupted one.
//
// Torn tails (a crash mid-append) and flipped bits fail the line CRC and
// are skipped and counted — at most the in-flight row is lost, never the
// journal.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "resilience/journal_file.hpp"
#include "sim/runner.hpp"

namespace esteem::sim {

/// Stable identity of a sweep for resume matching (see file comment for why
/// the workload list is excluded).
std::uint64_t sweep_fingerprint_hash(const SweepSpec& spec);

/// Canonical byte encoding of one row's comparison vector (hex-armored into
/// `row` records); exposed for tests.
std::string encode_comparisons(const std::vector<TechniqueComparison>& comparisons);
bool decode_comparisons(const std::string& bytes, std::size_t n_techniques,
                        std::vector<TechniqueComparison>& out);

class SweepJournal {
 public:
  /// Opens `path` for appending and records the sweep header. An existing
  /// journal is extended, not truncated — resuming appends to the same file.
  bool open(const std::string& path, const SweepSpec& spec);
  void close() { file_.close(); }
  bool is_open() const { return file_.is_open(); }
  const std::string& path() const { return file_.path(); }
  std::string last_error() const { return file_.last_error(); }

  /// Appends one completed workload row (durable before return).
  bool append_row(const WorkloadRow& row);
  /// Appends one (fingerprint hash -> outcome digest) audit record.
  bool append_run(std::uint64_t fingerprint_hash, std::uint64_t digest);

 private:
  resilience::JournalFile file_;
};

/// Rows recovered from a journal, keyed by workload name.
struct SweepResumeState {
  std::uint64_t sweep_hash = 0;
  std::size_t n_techniques = 0;
  std::map<std::string, std::vector<TechniqueComparison>> rows;
  std::size_t corrupt_lines = 0;  ///< CRC-failed/undecodable lines skipped.

  const std::vector<TechniqueComparison>* find(const std::string& workload) const {
    const auto it = rows.find(workload);
    return it == rows.end() ? nullptr : &it->second;
  }
};

struct ResumeLoad {
  bool ok = false;
  SweepResumeState state;
  std::string error;  ///< Set when !ok (missing file, sweep mismatch, ...).
};

/// Loads a journal for resuming `spec`. Fails when the file is missing or
/// records a different sweep; damaged lines are skipped and counted, and a
/// later `row` for the same workload supersedes an earlier one.
ResumeLoad load_resume_state(const std::string& path, const SweepSpec& spec);

}  // namespace esteem::sim

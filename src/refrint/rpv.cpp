#include "refrint/rpv.hpp"

#include <numeric>
#include <stdexcept>

namespace esteem::refrint {

PolyphaseValidPolicy::PolyphaseValidPolicy(std::uint32_t sets, std::uint32_t ways,
                                           std::uint32_t phases, cycle_t retention_cycles)
    : sets_(sets), ways_(ways), phases_(phases), retention_(retention_cycles) {
  if (phases_ == 0) throw std::invalid_argument("Polyphase: phases must be >= 1");
  phase_len_ = retention_cycles / phases;
  next_boundary_ = phase_len_;
  if (phase_len_ == 0) throw std::invalid_argument("Polyphase: retention shorter than phase count");
  const std::size_t slots = static_cast<std::size_t>(sets_) * ways_;
  tag_.assign(slots, 0);
  live_.assign(slots, 0);
  phase_valid_.assign(phases_, 0);
  recent_.assign(phases_, 0);
}

std::uint64_t PolyphaseValidPolicy::advance(cycle_t now) {
  std::uint64_t refreshed = 0;
  while (next_boundary_ <= now) {
    // The boundary at time t opens phase `phase_of(t)`; lines tagged with
    // that phase were last touched/refreshed one retention period ago.
    const std::uint32_t p = phase_of(next_boundary_);
    const std::uint64_t n = refresh_due(p, next_boundary_);
    refreshed += n;
    recent_[recent_pos_] = n;
    recent_pos_ = (recent_pos_ + 1) % phases_;
    next_boundary_ += phase_len_;
  }
  return refreshed;
}

double PolyphaseValidPolicy::refresh_lines_per_period() const {
  return static_cast<double>(
      std::accumulate(recent_.begin(), recent_.end(), std::uint64_t{0}));
}

std::uint64_t PolyphaseValidPolicy::refresh_due(std::uint32_t p, cycle_t /*t*/) {
  // Refreshing leaves the lines tagged p, so they fall due again exactly one
  // retention period later.
  return phase_valid_[p];
}

void PolyphaseValidPolicy::on_fill(std::uint32_t set, std::uint32_t way, block_t /*blk*/,
                                   cycle_t now) {
  const std::size_t i = idx(set, way);
  const std::uint32_t p = phase_of(now);
  live_[i] = 1;
  tag_[i] = static_cast<std::uint8_t>(p);
  ++phase_valid_[p];
  ++valid_;
}

void PolyphaseValidPolicy::on_touch(std::uint32_t set, std::uint32_t way, cycle_t now) {
  const std::size_t i = idx(set, way);
  const std::uint32_t p = phase_of(now);
  --phase_valid_[tag_[i]];
  tag_[i] = static_cast<std::uint8_t>(p);
  ++phase_valid_[p];
}

void PolyphaseValidPolicy::on_invalidate(std::uint32_t set, std::uint32_t way,
                                         bool /*dirty*/, cycle_t /*now*/) {
  const std::size_t i = idx(set, way);
  live_[i] = 0;
  --phase_valid_[tag_[i]];
  --valid_;
}

PolyphaseDirtyPolicy::PolyphaseDirtyPolicy(cache::SetAssocCache& cache,
                                           std::uint32_t phases, cycle_t retention_cycles)
    : PolyphaseValidPolicy(cache.sets(), cache.ways(), phases, retention_cycles),
      cache_(cache) {}

std::uint64_t PolyphaseDirtyPolicy::refresh_due(std::uint32_t p, cycle_t t) {
  // Due dirty lines are refreshed; due clean lines are eagerly invalidated
  // so they never need refreshing again (their next use becomes a miss).
  std::uint64_t refreshed = 0;
  for (std::uint32_t s = 0; s < sets_; ++s) {
    for (std::uint32_t w = 0; w < ways_; ++w) {
      const std::size_t i = idx(s, w);
      if (!live_[i] || tag_[i] != p) continue;
      if (cache_.slot_dirty(s, w)) {
        ++refreshed;  // stays tagged p: due again next period
      } else {
        // Triggers on_invalidate back into this policy, keeping counts exact.
        cache_.invalidate_slot(s, w, t);
      }
    }
  }
  return refreshed;
}

}  // namespace esteem::refrint

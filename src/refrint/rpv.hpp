// Refrint polyphase refresh policies (Agrawal et al., HPCA 2013), the
// comparison technique of the paper (§6.2).
//
// The retention period is divided into P phases (the paper evaluates P=4).
// Each line remembers the phase in which it was last filled, touched, or
// refreshed. A line tagged with phase p is due for refresh at the start of
// the next phase-p window — exactly one retention period after the window
// in which it was last touched. Consequences:
//   * Only valid lines are ever refreshed.
//   * A line touched at least once per retention period keeps moving its tag
//     to the current phase, so scheduled refreshes for it are skipped ("on a
//     read or a write, a cache block is automatically refreshed").
//
// PolyphaseValidPolicy  = Refrint RPV (refresh every due valid line).
// PolyphaseDirtyPolicy  = Refrint RPD (refresh due dirty lines; eagerly
//                         invalidate due clean lines). The paper argues RPD
//                         over-invalidates (§6.2); we implement it for the
//                         ablation bench.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.hpp"
#include "common/types.hpp"
#include "edram/refresh_policy.hpp"

namespace esteem::refrint {

class PolyphaseValidPolicy : public edram::RefreshPolicy {
 public:
  PolyphaseValidPolicy(std::uint32_t sets, std::uint32_t ways, std::uint32_t phases,
                       cycle_t retention_cycles);

  std::uint64_t advance(cycle_t now) override;
  /// Refresh demand estimate: refreshes actually performed over the last
  /// full retention period (rolling window over the last P phase events).
  double refresh_lines_per_period() const override;
  const char* name() const override { return "refrint-rpv"; }

  void on_fill(std::uint32_t set, std::uint32_t way, block_t blk, cycle_t now) override;
  void on_touch(std::uint32_t set, std::uint32_t way, cycle_t now) override;
  void on_invalidate(std::uint32_t set, std::uint32_t way, bool dirty, cycle_t now) override;

  std::uint32_t phases() const noexcept { return phases_; }
  std::uint64_t valid_lines() const noexcept { return valid_; }
  std::uint64_t phase_count(std::uint32_t p) const { return phase_valid_[p]; }

 protected:
  /// Refreshes the lines due at a boundary opening phase `p` at time `t`;
  /// returns how many line refreshes were performed. Overridden by RPD.
  virtual std::uint64_t refresh_due(std::uint32_t p, cycle_t t);

  std::uint32_t phase_of(cycle_t now) const noexcept {
    return static_cast<std::uint32_t>((now / phase_len_) % phases_);
  }

  std::size_t idx(std::uint32_t set, std::uint32_t way) const noexcept {
    return static_cast<std::size_t>(set) * ways_ + way;
  }

  std::uint32_t sets_;
  std::uint32_t ways_;
  std::uint32_t phases_;
  cycle_t retention_;
  cycle_t phase_len_;
  cycle_t next_boundary_;

  std::vector<std::uint8_t> tag_;          ///< Last-touch phase per slot.
  std::vector<std::uint8_t> live_;         ///< Valid bit per slot (policy view).
  std::vector<std::uint64_t> phase_valid_; ///< Valid lines per phase tag.
  std::uint64_t valid_ = 0;

  std::vector<std::uint64_t> recent_;      ///< Refreshes at the last P boundaries.
  std::size_t recent_pos_ = 0;
};

class PolyphaseDirtyPolicy final : public PolyphaseValidPolicy {
 public:
  /// `cache` is the cache whose clean lines RPD eagerly invalidates; the
  /// policy must be registered as that cache's listener.
  PolyphaseDirtyPolicy(cache::SetAssocCache& cache, std::uint32_t phases,
                       cycle_t retention_cycles);

  const char* name() const override { return "refrint-rpd"; }

 protected:
  std::uint64_t refresh_due(std::uint32_t p, cycle_t t) override;

 private:
  cache::SetAssocCache& cache_;
};

}  // namespace esteem::refrint

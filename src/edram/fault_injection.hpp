// Retention-fault injection for the eDRAM LLC.
//
// The analytic ECC model (ecc.hpp) computes closed-form failure
// probabilities; this subsystem makes those failures *happen* so that
// ECC-extended refresh and graceful degradation can be stress-tested
// end-to-end (the evaluation style of Wilkerson et al. and Agrawal et al.).
//
// A deterministic per-line weak-cell map is sampled once from the lognormal
// CellRetentionModel (seeded, reproducible): for every (set, way) slot we
// record how many of its cells lose charge when the line goes k nominal
// retention periods without refresh, for k = 1..max_tracked_extension. At
// every refresh-interval expiry the injector classifies each valid line:
//
//   failed bits == 0           -> clean
//   0 < failed <= correctable  -> corrected   (reads pay an ECC penalty)
//   failed > correctable       -> detected-uncorrectable: clean lines are
//                                 silently invalidated (re-fetched from
//                                 memory on the next miss); dirty lines are
//                                 data-loss events. Slots that fail
//                                 repeatedly are disabled and remapped
//                                 (way-level capacity degradation).
//
// At the nominal refresh interval (extension 1) the weak tail lies ~10
// sigma below the median, so no cell ever decays and an enabled injector
// is metric-identical to a disabled one.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cache/cache.hpp"
#include "common/config.hpp"
#include "common/types.hpp"
#include "edram/ecc.hpp"

namespace esteem::edram {

/// Event counters over one measurement window. Disabled-line state is
/// physical and survives reset_counters(); the counters here are events.
struct FaultCounters {
  std::uint64_t scans = 0;              ///< Refresh epochs processed.
  std::uint64_t corrected_lines = 0;    ///< Line-epochs with 1..t failed bits.
  std::uint64_t corrected_reads = 0;    ///< Hits that paid the ECC decode penalty.
  std::uint64_t refetches = 0;          ///< Clean uncorrectable invalidations.
  std::uint64_t data_loss_events = 0;   ///< Dirty uncorrectable invalidations.
  std::uint64_t disabled_lines = 0;     ///< Slots retired this window.

  std::uint64_t uncorrectable() const noexcept {
    return refetches + data_loss_events;
  }
};

class FaultInjector {
 public:
  /// Samples the weak-cell map. `bits_per_line` must be < 65536.
  FaultInjector(const FaultConfig& cfg, std::uint32_t sets, std::uint32_t ways,
                std::uint32_t bits_per_line, const CellRetentionModel& model);

  /// Cells of slot (set, way) that decay within `extension` nominal
  /// retention periods (clamped to the tracked range).
  std::uint32_t failed_bits(std::uint32_t set, std::uint32_t way,
                            std::uint32_t extension) const;

  /// Called by the upper level when a fill drops an upper-level (L1) copy of
  /// `block`; returns true if that copy was dirty (so the loss of the line
  /// counts as data loss even when the L2 copy was clean).
  using DropHook = std::function<bool(block_t block, bool l2_dirty)>;

  /// One refresh-interval expiry over the whole cache: every valid line has
  /// gone `extension` nominal periods since its last charge restore.
  /// Classifies each line, invalidates uncorrectable ones (calling
  /// `on_drop`, e.g. for inclusion back-invalidation), and disables slots
  /// whose uncorrectable streak reaches the configured threshold.
  void on_refresh_epoch(cache::SetAssocCache& l2, std::uint32_t extension,
                        std::uint32_t correctable, cycle_t now,
                        const DropHook& on_drop);

  /// Access-path hook for an L2 hit on (set, way). Returns true (and counts
  /// a corrected read) when the line currently holds ECC-corrected bits, in
  /// which case the caller adds the correction latency.
  bool corrected_hit(std::uint32_t set, std::uint32_t way);

  /// Access-path hook for a fill into (set, way): fresh data means fully
  /// restored charge, so any stale corrected flag is cleared.
  void on_fill_slot(std::uint32_t set, std::uint32_t way);

  const FaultCounters& counters() const noexcept { return counters_; }

  /// Zeroes the event counters (measurement reset). Weak-cell map, failure
  /// streaks, and disabled slots are physical state and persist.
  void reset_counters() noexcept { counters_ = {}; }

  std::uint32_t max_tracked_extension() const noexcept { return max_ext_; }

  /// Total weak cells in the map that decay within `extension` periods
  /// (diagnostic; sums failed_bits over all slots).
  std::uint64_t total_weak_cells(std::uint32_t extension) const;

 private:
  std::size_t slot(std::uint32_t set, std::uint32_t way) const noexcept {
    return static_cast<std::size_t>(set) * ways_ + way;
  }

  std::uint32_t sets_;
  std::uint32_t ways_;
  std::uint32_t max_ext_;
  std::uint32_t disable_threshold_;

  /// fail_at_[slot * max_ext_ + (k-1)] = cells failing within k periods
  /// (cumulative in k).
  std::vector<std::uint16_t> fail_at_;
  std::vector<std::uint8_t> streak_;     ///< Consecutive uncorrectable epochs.
  std::vector<std::uint8_t> corrected_;  ///< Line currently holds corrected bits.

  FaultCounters counters_;
};

}  // namespace esteem::edram

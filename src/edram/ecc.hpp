// ECC-assisted refresh-period extension (paper §2 related work: Wilkerson
// et al. [45], Reviriego et al. [39]): adding multi-bit error correction to
// each line lets the cache refresh less often, tolerating the weak cells
// that lose charge first.
//
// Cell retention model: the nominal retention period (the one the paper
// refreshes at) is the guard-banded worst case; individual cell retention
// times are lognormally distributed well above it. Extending the refresh
// interval by factor k makes cells whose retention < k * nominal fail; a
// t-error-correcting code repairs up to t failed bits per line.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "edram/refresh_policy.hpp"

namespace esteem::edram {

/// Cell-retention distribution parameters (lognormal, relative to the
/// nominal guard-banded retention period).
struct CellRetentionModel {
  /// Median cell retention as a multiple of the nominal period. Guard bands
  /// put the weakest tail at ~1x, the median far higher.
  double median_multiple = 32.0;
  /// Sigma of ln(retention).
  double sigma = 0.35;
};

/// P(one cell's retention < extension * nominal).
double cell_failure_probability(double extension, const CellRetentionModel& model);

/// P(more than `correctable` of `bits_per_line` cells fail) — the residual
/// line-loss probability after ECC. Uses a numerically stable binomial tail.
double line_failure_probability(std::uint32_t bits_per_line, std::uint32_t correctable,
                                double extension, const CellRetentionModel& model);

/// Largest integer refresh-interval extension whose residual line-failure
/// probability stays below `target` for the given ECC strength. Returns 1
/// when no extension is safe.
std::uint32_t max_safe_extension(std::uint32_t bits_per_line, std::uint32_t correctable,
                                 double target, const CellRetentionModel& model,
                                 std::uint32_t limit = 16);

/// Storage overhead of a t-error-correcting BCH-style code on a line of
/// `data_bits` (approximate: t * ceil(log2(data_bits) + 1) check bits).
double ecc_storage_overhead(std::uint32_t data_bits, std::uint32_t correctable);

/// Periodic-valid refresh at an ECC-extended interval: refreshes valid
/// lines every `extension` nominal retention periods. The energy win is the
/// extension factor; the cost (ECC storage -> leakage/dynamic overhead) is
/// applied in the energy model by the caller via ecc_storage_overhead().
class EccRefreshPolicy final : public RefreshPolicy {
 public:
  EccRefreshPolicy(cycle_t nominal_retention_cycles, std::uint32_t extension);

  std::uint64_t advance(cycle_t now) override;
  double refresh_lines_per_period() const override;
  const char* name() const override { return "ecc-extended"; }

  void on_fill(std::uint32_t, std::uint32_t, block_t, cycle_t) override { ++valid_; }
  void on_touch(std::uint32_t, std::uint32_t, cycle_t) override {}
  void on_invalidate(std::uint32_t, std::uint32_t, bool, cycle_t) override { --valid_; }
  bool wants_touch() const noexcept override { return false; }  // stateless hits

  std::uint32_t extension() const noexcept { return extension_; }

 private:
  cycle_t nominal_retention_;
  std::uint32_t extension_;
  cycle_t next_boundary_;
  std::uint64_t valid_ = 0;
};

}  // namespace esteem::edram

#include "edram/fault_injection.hpp"

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace esteem::edram {

FaultInjector::FaultInjector(const FaultConfig& cfg, std::uint32_t sets,
                             std::uint32_t ways, std::uint32_t bits_per_line,
                             const CellRetentionModel& model)
    : sets_(sets),
      ways_(ways),
      max_ext_(cfg.max_tracked_extension),
      disable_threshold_(cfg.disable_threshold) {
  if (sets_ == 0 || ways_ == 0) {
    throw std::invalid_argument("fault injector: empty cache");
  }
  if (bits_per_line == 0 || bits_per_line > 0xFFFF) {
    throw std::invalid_argument("fault injector: bits per line must be in [1, 65535]");
  }
  if (max_ext_ == 0) {
    throw std::invalid_argument("fault injector: zero tracked extension");
  }

  const std::size_t slots = static_cast<std::size_t>(sets_) * ways_;
  fail_at_.assign(slots * max_ext_, 0);
  streak_.assign(slots, 0);
  corrected_.assign(slots, 0);

  // Per-extension cell-failure probabilities; p_k[max_ext_-1] caps the weak
  // tail we materialise (cells above it never decay within tracked range).
  std::vector<double> p_k(max_ext_);
  for (std::uint32_t k = 1; k <= max_ext_; ++k) {
    p_k[k - 1] = cell_failure_probability(static_cast<double>(k), model);
  }
  const double p_cap = p_k[max_ext_ - 1];
  if (p_cap <= 0.0) return;  // no cell is weak within the tracked range

  const double log1mp = std::log1p(-std::min(p_cap, 1.0 - 1e-15));
  for (std::size_t s = 0; s < slots; ++s) {
    // Independent deterministic stream per slot: the map depends only on
    // (seed, slot), not on sampling order or workload.
    std::uint64_t seed_state = cfg.seed + 0x9E3779B97F4A7C15ULL * (s + 1);
    Rng rng(splitmix64(seed_state));

    // Weak-cell positions via geometric skips: E[iterations] = bits * p_cap.
    double pos = -1.0;
    for (;;) {
      const double u = rng.uniform();
      pos += 1.0 + std::floor(std::log1p(-u) / log1mp);
      if (pos >= static_cast<double>(bits_per_line)) break;
      // This cell's retention quantile, uniform within the weak tail: it
      // starts failing at the smallest k with p_k >= u2.
      const double u2 = p_cap * rng.uniform();
      std::uint32_t fail_from = 1;
      while (fail_from <= max_ext_ && p_k[fail_from - 1] <= u2) ++fail_from;
      for (std::uint32_t k = fail_from; k <= max_ext_; ++k) {
        std::uint16_t& c = fail_at_[s * max_ext_ + (k - 1)];
        if (c < 0xFFFF) ++c;
      }
    }
  }
}

std::uint32_t FaultInjector::failed_bits(std::uint32_t set, std::uint32_t way,
                                         std::uint32_t extension) const {
  if (extension == 0) return 0;
  const std::uint32_t k = std::min(extension, max_ext_);
  return fail_at_[slot(set, way) * max_ext_ + (k - 1)];
}

void FaultInjector::on_refresh_epoch(cache::SetAssocCache& l2,
                                     std::uint32_t extension,
                                     std::uint32_t correctable, cycle_t now,
                                     const DropHook& on_drop) {
  ++counters_.scans;
  for (std::uint32_t set = 0; set < sets_; ++set) {
    for (std::uint32_t way = 0; way < ways_; ++way) {
      const std::size_t i = slot(set, way);
      if (l2.slot_disabled(set, way) || !l2.slot_valid(set, way)) {
        corrected_[i] = 0;
        continue;
      }
      const std::uint32_t failed = failed_bits(set, way, extension);
      if (failed == 0) {
        corrected_[i] = 0;
        streak_[i] = 0;
        continue;
      }
      if (failed <= correctable) {
        ++counters_.corrected_lines;
        corrected_[i] = 1;
        streak_[i] = 0;
        continue;
      }
      // Detected-uncorrectable: the line's content is gone. Clean lines can
      // be re-fetched from memory; dirty ones cannot.
      const block_t blk = l2.slot_block(set, way);
      const bool l2_dirty = l2.slot_dirty(set, way);
      l2.invalidate_slot(set, way, now);
      corrected_[i] = 0;
      const bool upper_dirty = on_drop ? on_drop(blk, l2_dirty) : false;
      if (l2_dirty || upper_dirty) {
        ++counters_.data_loss_events;
      } else {
        ++counters_.refetches;
      }
      if (streak_[i] < 0xFF) ++streak_[i];
      if (streak_[i] >= disable_threshold_) {
        if (l2.disable_slot(set, way, now)) ++counters_.disabled_lines;
      }
    }
  }
}

bool FaultInjector::corrected_hit(std::uint32_t set, std::uint32_t way) {
  if (way >= ways_ || corrected_[slot(set, way)] == 0) return false;
  ++counters_.corrected_reads;
  return true;
}

void FaultInjector::on_fill_slot(std::uint32_t set, std::uint32_t way) {
  if (way < ways_) corrected_[slot(set, way)] = 0;
}

std::uint64_t FaultInjector::total_weak_cells(std::uint32_t extension) const {
  std::uint64_t total = 0;
  for (std::uint32_t set = 0; set < sets_; ++set) {
    for (std::uint32_t way = 0; way < ways_; ++way) {
      total += failed_bits(set, way, extension);
    }
  }
  return total;
}

}  // namespace esteem::edram

#include "edram/smart_refresh.hpp"

#include <numeric>
#include <stdexcept>

namespace esteem::edram {

SmartRefreshPolicy::SmartRefreshPolicy(std::uint32_t sets, std::uint32_t ways,
                                       cycle_t retention_cycles,
                                       cycle_t check_period_cycles)
    : sets_(sets),
      ways_(ways),
      retention_(retention_cycles),
      check_period_(check_period_cycles),
      next_check_(check_period_cycles) {
  if (retention_ == 0) throw std::invalid_argument("SmartRefresh: zero retention");
  if (check_period_ == 0 || check_period_ > retention_) {
    throw std::invalid_argument("SmartRefresh: check period must be in [1, retention]");
  }
  const std::size_t slots = static_cast<std::size_t>(sets_) * ways_;
  live_.assign(slots, 0);
  last_touch_.assign(slots, 0);
  recent_.assign(std::max<cycle_t>(1, retention_ / check_period_), 0);
}

std::uint64_t SmartRefreshPolicy::advance(cycle_t now) {
  std::uint64_t refreshed = 0;
  while (next_check_ <= now) {
    // Refresh every valid line whose age will exceed the retention period
    // before the next check; refreshing resets its age clock.
    std::uint64_t this_check = 0;
    const cycle_t t = next_check_;
    for (std::size_t i = 0; i < live_.size(); ++i) {
      if (!live_[i]) continue;
      if (t + check_period_ - last_touch_[i] > retention_) {
        last_touch_[i] = t;
        ++this_check;
      }
    }
    refreshed += this_check;
    recent_[recent_pos_] = this_check;
    recent_pos_ = (recent_pos_ + 1) % recent_.size();
    next_check_ += check_period_;
  }
  return refreshed;
}

double SmartRefreshPolicy::refresh_lines_per_period() const {
  return static_cast<double>(
      std::accumulate(recent_.begin(), recent_.end(), std::uint64_t{0}));
}

void SmartRefreshPolicy::on_fill(std::uint32_t set, std::uint32_t way, block_t /*blk*/,
                                 cycle_t now) {
  const std::size_t i = idx(set, way);
  live_[i] = 1;
  last_touch_[i] = now;
  ++valid_;
}

void SmartRefreshPolicy::on_touch(std::uint32_t set, std::uint32_t way, cycle_t now) {
  last_touch_[idx(set, way)] = now;
}

void SmartRefreshPolicy::on_invalidate(std::uint32_t set, std::uint32_t way,
                                       bool /*dirty*/, cycle_t /*now*/) {
  live_[idx(set, way)] = 0;
  --valid_;
}

}  // namespace esteem::edram

#include "edram/retention.hpp"

#include <cmath>

namespace esteem::edram {

namespace {
// r(T) = A * exp(-k * T), fit through (60 C, 50 us) and (105 C, 40 us):
//   k = ln(50/40) / (105 - 60), A = 50 * exp(k * 60).
const double kDecay = std::log(50.0 / 40.0) / 45.0;
const double kScale = 50.0 * std::exp(kDecay * 60.0);
}  // namespace

double retention_us_at(double temperature_c) {
  return kScale * std::exp(-kDecay * temperature_c);
}

}  // namespace esteem::edram

// Glue between a refresh policy (energy-side refresh counting) and the bank
// timing model (performance-side refresh load).
#pragma once

#include <cstdint>

#include "cache/bank.hpp"
#include "common/types.hpp"
#include "edram/refresh_policy.hpp"

namespace esteem::edram {

class RefreshEngine {
 public:
  /// `banks` may be null for untimed (energy-only) simulations.
  RefreshEngine(RefreshPolicy& policy, cache::BankGroup* banks, double retention_cycles);

  /// Pumps the policy's refresh events up to `now`; accumulates N_R.
  void advance(cycle_t now);

  /// Re-derives the banks' refresh injection rate from the policy's current
  /// lines-per-period demand. Called at interval boundaries: the refresh
  /// load tracks the valid/active footprint at interval granularity.
  void sync_bank_load(cycle_t now);

  /// N_R accumulated since the last reset_window() (per-interval counter in
  /// the energy model, Eq. 6).
  std::uint64_t window_refreshes() const noexcept { return window_; }
  void reset_window() noexcept { window_ = 0; }

  std::uint64_t total_refreshes() const noexcept { return total_; }

  RefreshPolicy& policy() noexcept { return policy_; }

 private:
  RefreshPolicy& policy_;
  cache::BankGroup* banks_;
  double retention_cycles_;
  std::uint64_t window_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace esteem::edram

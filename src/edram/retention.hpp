// eDRAM retention-period model.
//
// Retention depends exponentially on temperature (paper §6.1, citing
// Agrawal et al.). We calibrate the exponential on the two operating points
// the paper uses: 40 us at 105 C (Barth et al.) and 50 us at 60 C (the
// paper's assumed working temperature).
#pragma once

namespace esteem::edram {

/// Retention period in microseconds at the given cell temperature (Celsius).
double retention_us_at(double temperature_c);

/// The paper's two evaluation points.
inline constexpr double kRetentionDefaultUs = 50.0;  // 60 C (§7.2)
inline constexpr double kRetentionReducedUs = 40.0;  // 105 C point (§7.3)

}  // namespace esteem::edram

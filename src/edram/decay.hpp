// Cache Decay adapted to eDRAM (Kaxiras, Hu & Martonosi, ISCA 2001 — paper
// §2 related work [22]): per-line idle counters turn off lines that have
// not been touched for a decay interval, exploiting the "dead time" between
// a line's last access and its eviction. On an eDRAM cache this saves both
// the line's leakage *and* its refreshes; the cost is an extra miss if the
// line was not actually dead (plus a writeback when it was dirty).
//
// This is the block-granularity alternative ESTEEM's §5 contrasts itself
// with ("does not require ... per-block counters to monitor cache access
// intensity"); we implement it as a comparison technique for the ablation
// bench.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.hpp"
#include "common/types.hpp"
#include "edram/refresh_policy.hpp"

namespace esteem::edram {

class CacheDecayPolicy final : public RefreshPolicy {
 public:
  /// Checks run every `check_period_cycles`; a valid line idle for at least
  /// `decay_interval_cycles` is turned off (dirty lines are reported via the
  /// cache's eviction path as the caller observes on_invalidate). Remaining
  /// valid lines refresh once per retention period.
  CacheDecayPolicy(cache::SetAssocCache& cache, cycle_t retention_cycles,
                   cycle_t decay_interval_cycles, cycle_t check_period_cycles);

  std::uint64_t advance(cycle_t now) override;
  double refresh_lines_per_period() const override {
    return static_cast<double>(valid_);
  }
  const char* name() const override { return "cache-decay"; }

  void on_fill(std::uint32_t set, std::uint32_t way, block_t blk, cycle_t now) override;
  void on_touch(std::uint32_t set, std::uint32_t way, cycle_t now) override;
  void on_invalidate(std::uint32_t set, std::uint32_t way, bool dirty,
                     cycle_t now) override;

  std::uint64_t valid_lines() const noexcept { return valid_; }
  /// Power-gating transitions performed so far (decay turn-offs plus the
  /// implied turn-on of the next fill into a decayed slot) — the N_L input
  /// of the energy model's E_Algo term.
  std::uint64_t transitions() const noexcept { return transitions_; }
  std::uint64_t decayed_lines() const noexcept { return decayed_; }
  /// Dirty lines flushed by decay (the caller charges memory writebacks).
  std::uint64_t decay_writebacks() const noexcept { return decay_writebacks_; }

  /// Fraction of the data array currently powered (valid or never-decayed
  /// slots); drives F_A in the energy model.
  double active_fraction() const noexcept;

 private:
  std::size_t idx(std::uint32_t set, std::uint32_t way) const noexcept {
    return static_cast<std::size_t>(set) * ways_ + way;
  }

  cache::SetAssocCache& cache_;
  std::uint32_t sets_;
  std::uint32_t ways_;
  cycle_t retention_;
  cycle_t decay_interval_;
  cycle_t check_period_;
  cycle_t next_check_;
  cycle_t next_refresh_;

  std::vector<std::uint8_t> live_;
  std::vector<std::uint8_t> powered_;  ///< Slot gate state (off after decay).
  std::vector<cycle_t> last_touch_;

  std::uint64_t valid_ = 0;
  std::uint64_t powered_count_ = 0;
  std::uint64_t transitions_ = 0;
  std::uint64_t decayed_ = 0;
  std::uint64_t decay_writebacks_ = 0;
  bool in_decay_sweep_ = false;
};

}  // namespace esteem::edram

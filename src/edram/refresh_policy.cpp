#include "edram/refresh_policy.hpp"

#include <stdexcept>

namespace esteem::edram {

PeriodicAllPolicy::PeriodicAllPolicy(std::uint64_t total_lines, cycle_t retention_cycles)
    : total_lines_(total_lines), retention_(retention_cycles), next_boundary_(retention_cycles) {
  if (retention_ == 0) throw std::invalid_argument("PeriodicAllPolicy: zero retention");
}

std::uint64_t PeriodicAllPolicy::advance(cycle_t now) {
  std::uint64_t refreshed = 0;
  if (now >= next_boundary_) {
    const cycle_t periods = (now - next_boundary_) / retention_ + 1;
    refreshed = periods * total_lines_;
    next_boundary_ += periods * retention_;
  }
  return refreshed;
}

PeriodicValidPolicy::PeriodicValidPolicy(cycle_t retention_cycles)
    : retention_(retention_cycles), next_boundary_(retention_cycles) {
  if (retention_ == 0) throw std::invalid_argument("PeriodicValidPolicy: zero retention");
}

std::uint64_t PeriodicValidPolicy::advance(cycle_t now) {
  // advance() is called before every cache mutation, so `valid_` is exact at
  // each boundary we process here.
  std::uint64_t refreshed = 0;
  while (now >= next_boundary_) {
    refreshed += valid_;
    next_boundary_ += retention_;
  }
  return refreshed;
}

}  // namespace esteem::edram

#include "edram/ecc.hpp"

#include <cmath>
#include <stdexcept>

namespace esteem::edram {

namespace {
/// Standard normal CDF.
double phi(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }
}  // namespace

double cell_failure_probability(double extension, const CellRetentionModel& model) {
  if (extension <= 0.0) throw std::invalid_argument("ecc: extension must be positive");
  if (model.median_multiple <= 0.0 || model.sigma <= 0.0) {
    throw std::invalid_argument("ecc: invalid retention model");
  }
  // retention ~ Lognormal(ln(median), sigma); fail iff retention < extension.
  const double z = (std::log(extension) - std::log(model.median_multiple)) / model.sigma;
  return phi(z);
}

double line_failure_probability(std::uint32_t bits_per_line, std::uint32_t correctable,
                                double extension, const CellRetentionModel& model) {
  if (bits_per_line == 0) throw std::invalid_argument("ecc: empty line");
  // A code that corrects every cell in the line can never lose it. Without
  // this guard the binomial loop below would take log() of a negative
  // coefficient for k > bits_per_line and return NaN.
  if (correctable >= bits_per_line) return 0.0;
  const double p = cell_failure_probability(extension, model);
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;

  // P(X > t) for X ~ Binomial(n, p), summed from the small side in log space.
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  double tail_complement = 0.0;  // P(X <= t)
  double log_coeff = 0.0;        // log C(n, 0)
  const double n = bits_per_line;
  for (std::uint32_t k = 0; k <= correctable; ++k) {
    if (k > 0) log_coeff += std::log((n - k + 1) / static_cast<double>(k));
    tail_complement += std::exp(log_coeff + k * log_p + (n - k) * log_q);
  }
  return std::max(0.0, 1.0 - std::min(1.0, tail_complement));
}

std::uint32_t max_safe_extension(std::uint32_t bits_per_line, std::uint32_t correctable,
                                 double target, const CellRetentionModel& model,
                                 std::uint32_t limit) {
  std::uint32_t best = 1;
  for (std::uint32_t ext = 2; ext <= limit; ++ext) {
    if (line_failure_probability(bits_per_line, correctable, ext, model) <= target) {
      best = ext;
    } else {
      break;  // failure probability is monotone in the extension
    }
  }
  return best;
}

double ecc_storage_overhead(std::uint32_t data_bits, std::uint32_t correctable) {
  if (data_bits == 0) throw std::invalid_argument("ecc: empty line");
  if (correctable == 0) return 0.0;
  const double check_bits =
      correctable * std::ceil(std::log2(static_cast<double>(data_bits)) + 1.0);
  return check_bits / static_cast<double>(data_bits);
}

EccRefreshPolicy::EccRefreshPolicy(cycle_t nominal_retention_cycles,
                                   std::uint32_t extension)
    : nominal_retention_(nominal_retention_cycles),
      extension_(extension),
      next_boundary_(nominal_retention_cycles * extension) {
  if (nominal_retention_ == 0) throw std::invalid_argument("ecc policy: zero retention");
  if (extension_ == 0) throw std::invalid_argument("ecc policy: zero extension");
}

std::uint64_t EccRefreshPolicy::advance(cycle_t now) {
  std::uint64_t refreshed = 0;
  const cycle_t period = nominal_retention_ * extension_;
  while (now >= next_boundary_) {
    refreshed += valid_;
    next_boundary_ += period;
  }
  return refreshed;
}

double EccRefreshPolicy::refresh_lines_per_period() const {
  // Demand normalized to the *nominal* retention period (what the bank load
  // expects): the extension divides it.
  return static_cast<double>(valid_) / extension_;
}

}  // namespace esteem::edram

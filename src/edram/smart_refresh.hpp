// Smart-Refresh policy (Ghosh & Lee, MICRO 2007 — paper §2 related work):
// skip refreshing lines that were read or written within the current
// retention window, using a per-line timestamp instead of Refrint's coarse
// phase tags.
//
// Compared to Refrint RPV (P phases), Smart-Refresh is the P -> infinity
// limit: a line is refreshed exactly when its age reaches the retention
// period, so it never performs the up-to-one-phase-early refreshes RPV
// does. We schedule the due-checks at phase granularity too (configurable
// check period) because hardware scans row groups periodically; with a
// fine check period the policy strictly lower-bounds RPV's refresh count.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "edram/refresh_policy.hpp"

namespace esteem::edram {

class SmartRefreshPolicy final : public RefreshPolicy {
 public:
  /// `check_period_cycles` is how often the refresh controller scans for
  /// due lines (must be <= retention; smaller = closer to ideal).
  SmartRefreshPolicy(std::uint32_t sets, std::uint32_t ways, cycle_t retention_cycles,
                     cycle_t check_period_cycles);

  std::uint64_t advance(cycle_t now) override;
  double refresh_lines_per_period() const override;
  const char* name() const override { return "smart-refresh"; }

  void on_fill(std::uint32_t set, std::uint32_t way, block_t blk, cycle_t now) override;
  void on_touch(std::uint32_t set, std::uint32_t way, cycle_t now) override;
  void on_invalidate(std::uint32_t set, std::uint32_t way, bool dirty,
                     cycle_t now) override;

  std::uint64_t valid_lines() const noexcept { return valid_; }

 private:
  std::size_t idx(std::uint32_t set, std::uint32_t way) const noexcept {
    return static_cast<std::size_t>(set) * ways_ + way;
  }

  std::uint32_t sets_;
  std::uint32_t ways_;
  cycle_t retention_;
  cycle_t check_period_;
  cycle_t next_check_;

  std::vector<std::uint8_t> live_;
  std::vector<cycle_t> last_touch_;  ///< Last access *or refresh* per slot.
  std::uint64_t valid_ = 0;

  // Rolling refresh count over the last retention period, for bank load.
  std::vector<std::uint64_t> recent_;
  std::size_t recent_pos_ = 0;
};

}  // namespace esteem::edram

#include "edram/decay.hpp"

#include <stdexcept>

namespace esteem::edram {

CacheDecayPolicy::CacheDecayPolicy(cache::SetAssocCache& cache, cycle_t retention_cycles,
                                   cycle_t decay_interval_cycles,
                                   cycle_t check_period_cycles)
    : cache_(cache),
      sets_(cache.sets()),
      ways_(cache.ways()),
      retention_(retention_cycles),
      decay_interval_(decay_interval_cycles),
      check_period_(check_period_cycles),
      next_check_(check_period_cycles),
      next_refresh_(retention_cycles) {
  if (retention_ == 0) throw std::invalid_argument("CacheDecay: zero retention");
  if (decay_interval_ == 0) throw std::invalid_argument("CacheDecay: zero decay interval");
  if (check_period_ == 0) throw std::invalid_argument("CacheDecay: zero check period");
  const std::size_t slots = static_cast<std::size_t>(sets_) * ways_;
  live_.assign(slots, 0);
  powered_.assign(slots, 1);
  last_touch_.assign(slots, 0);
  powered_count_ = slots;
}

std::uint64_t CacheDecayPolicy::advance(cycle_t now) {
  std::uint64_t refreshed = 0;
  // Interleave decay checks and refresh boundaries in time order.
  while (next_check_ <= now || next_refresh_ <= now) {
    if (next_check_ <= std::min(now, next_refresh_)) {
      const cycle_t t = next_check_;
      in_decay_sweep_ = true;
      for (std::uint32_t s = 0; s < sets_; ++s) {
        for (std::uint32_t w = 0; w < ways_; ++w) {
          const std::size_t i = idx(s, w);
          if (!live_[i] || t - last_touch_[i] < decay_interval_) continue;
          // The cache's eviction path fires on_invalidate back into us.
          const bool dirty = cache_.invalidate_slot(s, w, t);
          if (dirty) ++decay_writebacks_;
          powered_[i] = 0;
          --powered_count_;
          ++transitions_;  // gate off
          ++decayed_;
        }
      }
      in_decay_sweep_ = false;
      next_check_ += check_period_;
    } else {
      refreshed += valid_;
      next_refresh_ += retention_;
    }
  }
  return refreshed;
}

void CacheDecayPolicy::on_fill(std::uint32_t set, std::uint32_t way, block_t /*blk*/,
                               cycle_t now) {
  const std::size_t i = idx(set, way);
  if (!powered_[i]) {
    powered_[i] = 1;
    ++powered_count_;
    ++transitions_;  // gate back on for the new occupant
  }
  live_[i] = 1;
  last_touch_[i] = now;
  ++valid_;
}

void CacheDecayPolicy::on_touch(std::uint32_t set, std::uint32_t way, cycle_t now) {
  last_touch_[idx(set, way)] = now;
}

void CacheDecayPolicy::on_invalidate(std::uint32_t set, std::uint32_t way,
                                     bool /*dirty*/, cycle_t /*now*/) {
  const std::size_t i = idx(set, way);
  live_[i] = 0;
  --valid_;
  (void)in_decay_sweep_;  // state change shared by decay and normal eviction
}

double CacheDecayPolicy::active_fraction() const noexcept {
  return static_cast<double>(powered_count_) /
         static_cast<double>(static_cast<std::size_t>(sets_) * ways_);
}

}  // namespace esteem::edram

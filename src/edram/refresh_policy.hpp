// Refresh policies for an eDRAM cache.
//
// A policy is a LineListener (it tracks line lifecycle) plus a lazy clock:
// advance(now) processes all refresh events scheduled up to `now` and
// returns how many line refreshes they performed. The L2 system calls
// advance() before every access and at interval boundaries, so the lazy
// processing is exact with respect to line state.
//
// Policies implemented here:
//  * PeriodicAllPolicy   — the paper's baseline: every line (valid or not)
//                          is refreshed once per retention period.
//  * PeriodicValidPolicy — refreshes only valid lines each period. This is
//                          both Refrint's "periodic-valid" policy and the
//                          refresh behaviour of the active portion of an
//                          ESTEEM cache (§3.1: "only valid blocks are
//                          refreshed").
// The Refrint polyphase policies (RPV/RPD) live in src/refrint.
#pragma once

#include <cstdint>

#include "cache/cache.hpp"
#include "common/types.hpp"

namespace esteem::edram {

class RefreshPolicy : public cache::LineListener {
 public:
  /// Processes refresh events scheduled in (last_advance, now]; returns the
  /// number of line refreshes performed by those events.
  virtual std::uint64_t advance(cycle_t now) = 0;

  /// Current refresh demand in lines per retention period — the timing-side
  /// load handed to the bank model.
  virtual double refresh_lines_per_period() const = 0;

  virtual const char* name() const = 0;
};

/// Baseline: refresh all S*A lines every retention period (§6.4).
class PeriodicAllPolicy final : public RefreshPolicy {
 public:
  PeriodicAllPolicy(std::uint64_t total_lines, cycle_t retention_cycles);

  std::uint64_t advance(cycle_t now) override;
  double refresh_lines_per_period() const override {
    return static_cast<double>(total_lines_);
  }
  const char* name() const override { return "periodic-all"; }

  void on_fill(std::uint32_t, std::uint32_t, block_t, cycle_t) override {}
  void on_touch(std::uint32_t, std::uint32_t, cycle_t) override {}
  void on_invalidate(std::uint32_t, std::uint32_t, bool, cycle_t) override {}
  bool wants_touch() const noexcept override { return false; }  // stateless hits

 private:
  std::uint64_t total_lines_;
  cycle_t retention_;
  cycle_t next_boundary_;
};

/// Refresh only valid lines at each retention-period boundary.
class PeriodicValidPolicy final : public RefreshPolicy {
 public:
  explicit PeriodicValidPolicy(cycle_t retention_cycles);

  std::uint64_t advance(cycle_t now) override;
  double refresh_lines_per_period() const override {
    return static_cast<double>(valid_);
  }
  const char* name() const override { return "periodic-valid"; }

  void on_fill(std::uint32_t, std::uint32_t, block_t, cycle_t) override { ++valid_; }
  void on_touch(std::uint32_t, std::uint32_t, cycle_t) override {}
  void on_invalidate(std::uint32_t, std::uint32_t, bool, cycle_t) override { --valid_; }
  bool wants_touch() const noexcept override { return false; }  // stateless hits

  std::uint64_t valid_lines() const noexcept { return valid_; }

 private:
  cycle_t retention_;
  cycle_t next_boundary_;
  std::uint64_t valid_ = 0;
};

}  // namespace esteem::edram

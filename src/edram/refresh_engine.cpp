#include "edram/refresh_engine.hpp"

#include <stdexcept>

namespace esteem::edram {

RefreshEngine::RefreshEngine(RefreshPolicy& policy, cache::BankGroup* banks,
                             double retention_cycles)
    : policy_(policy), banks_(banks), retention_cycles_(retention_cycles) {
  if (retention_cycles_ <= 0.0) {
    throw std::invalid_argument("RefreshEngine: retention must be positive");
  }
}

void RefreshEngine::advance(cycle_t now) {
  const std::uint64_t n = policy_.advance(now);
  window_ += n;
  total_ += n;
}

void RefreshEngine::sync_bank_load(cycle_t now) {
  if (banks_ == nullptr) return;
  banks_->set_refresh_load(policy_.refresh_lines_per_period(), retention_cycles_, now);
}

}  // namespace esteem::edram

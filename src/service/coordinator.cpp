#include "service/coordinator.hpp"

#include <chrono>
#include <cstdio>
#include <optional>
#include <thread>

#include "resilience/shutdown.hpp"
#include "service/observer.hpp"
#include "sim/report.hpp"
#include "sim/sweep_journal.hpp"

namespace esteem::service {

namespace {

void poll_sleep(std::uint32_t poll_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(poll_ms == 0 ? 100 : poll_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (resilience::shutdown_requested()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

}  // namespace

bool plan_service(const std::string& dir, const sim::SweepSpec& spec, std::string& error) {
  LeaseTable table;
  if (!table.create(dir, spec, "planner")) {
    error = table.last_error();
    return false;
  }
  return true;
}

sim::SweepResult aggregate_rows(const LeaseTable& table, const TableState& state) {
  const sim::SweepSpec& spec = table.spec();
  const std::size_t n_tech = spec.techniques.size();

  sim::SweepResult result;
  result.techniques = spec.techniques;
  result.rows.resize(spec.workloads.size());

  for (std::size_t wi = 0; wi < spec.workloads.size(); ++wi) {
    sim::WorkloadRow& row = result.rows[wi];
    row.workload = spec.workloads[wi].name;
    row.comparisons.assign(n_tech, sim::TechniqueComparison{});

    bool all_done = true;
    for (std::size_t ti = 0; ti < n_tech; ++ti) {
      const RowState& cell = state.rows[wi * n_tech + ti];
      if (!cell.done) {
        all_done = false;
        continue;
      }
      std::vector<sim::TechniqueComparison> decoded;
      if (!sim::decode_comparisons(cell.data, 1, decoded)) {
        all_done = false;  // Undecodable despite a valid CRC: binary skew.
        continue;
      }
      row.comparisons[ti] = decoded.front();
    }
    if (all_done) {
      row.completed = true;
      continue;
    }

    // Mirror run_sweep's deterministic error report: one entry per failed
    // workload, the baseline phase outranking techniques, techniques in
    // spec order. (A baseline failure fails every cell of the workload with
    // technique "baseline", so any such cell represents it.)
    std::optional<sim::RunError> first;
    for (std::size_t ti = 0; !first && ti < n_tech; ++ti) {
      const RowState& cell = state.rows[wi * n_tech + ti];
      if (cell.failed && cell.error.technique == "baseline") first = cell.error;
    }
    for (std::size_t ti = 0; !first && ti < n_tech; ++ti) {
      const RowState& cell = state.rows[wi * n_tech + ti];
      if (cell.failed) first = cell.error;
    }
    if (first) {
      result.errors.push_back(std::move(*first));
    } else {
      row.skipped = true;  // Unresolved cells (partial collect): resumable.
    }
  }
  return result;
}

CollectResult wait_and_collect(const CoordinatorOptions& opts) {
  CollectResult out;
  LeaseTable table;
  if (!table.open(opts.dir, "coordinator")) {
    out.error = table.last_error();
    return out;
  }
  const std::uint32_t poll_ms = table.spec().config.service.poll_ms;
  const auto t0 = std::chrono::steady_clock::now();

  std::size_t last_resolved = static_cast<std::size_t>(-1);
  TableState st;
  while (true) {
    st = table.load_state();
    if (!st.ok) {
      out.error = st.error;
      return out;
    }
    if (st.conflict) {
      out.integrity_error = true;
      out.error = "integrity conflict: a row holds success cells with differing "
                  "digests (mismatched worker binaries?)";
      return out;
    }
    const std::size_t resolved = st.completed + st.failed;
    if (!opts.quiet && resolved != last_resolved) {
      // The same fleet line --status and esteem_cli --serve print: one
      // source of truth (collect_fleet_status), so the surfaces cannot skew.
      const FleetStatus fs = collect_fleet_status(table, st, LeaseTable::wall_ms());
      std::fprintf(stderr, "%s\n", progress_line(fs).c_str());
      last_resolved = resolved;
    }
    if (st.resolved()) break;
    if (resilience::shutdown_requested()) {
      out.interrupted = true;
      out.error = "interrupted while waiting for workers";
      return out;
    }
    if (opts.timeout_ms != 0 &&
        std::chrono::steady_clock::now() - t0 > std::chrono::milliseconds(opts.timeout_ms)) {
      out.timed_out = true;
      out.error = "timed out waiting for workers (" + std::to_string(resolved) + "/" +
                  std::to_string(st.rows.size()) + " rows resolved)";
      return out;
    }
    poll_sleep(poll_ms);
  }

  out.result = aggregate_rows(table, st);
  if (!opts.csv_path.empty()) sim::write_csv(out.result, opts.csv_path);

  // Post-run fleet metrics: flag wins, else the planned sweep's
  // [observability] metrics_path. Best-effort and stderr-only — the stdout
  // report stays byte-identical to the in-process sweep.
  const std::string metrics = !opts.metrics_path.empty()
                                  ? opts.metrics_path
                                  : table.spec().config.observability.metrics_path;
  if (!metrics.empty()) {
    std::string merr;
    if (write_fleet_metrics(opts.dir, metrics, merr)) {
      if (!opts.quiet) {
        std::fprintf(stderr, "[coordinator] metrics written to %s\n", metrics.c_str());
      }
    } else {
      std::fprintf(stderr, "[coordinator] metrics not written: %s\n", merr.c_str());
    }
  }
  out.ok = true;
  return out;
}

int report_collect(const CollectResult& collected, const CoordinatorOptions& opts) {
  if (!collected.ok) {
    std::fprintf(stderr, "error: %s\n", collected.error.c_str());
    if (collected.integrity_error) return kExitIntegrity;
    if (collected.interrupted) return resilience::kExitInterrupted;
    if (collected.timed_out) return kExitTimeout;
    return 2;
  }
  const sim::SweepResult& result = collected.result;
  std::printf("%s", sim::figure_report(result, "sweep").c_str());
  if (!opts.csv_path.empty()) {
    std::printf("csv written to %s\n", opts.csv_path.c_str());
  }
  if (!result.errors.empty()) {
    std::fprintf(stderr, "\nsweep errors (%zu of %zu workloads failed):\n",
                 result.errors.size(), result.rows.size());
    for (const sim::RunError& e : result.errors) {
      if (e.phase == "run") {
        std::fprintf(stderr, "  workload %-16s technique %-14s %s\n", e.workload.c_str(),
                     e.technique.c_str(), e.what.c_str());
      } else {
        std::fprintf(stderr, "  workload %-16s technique %-14s [%s] %s\n",
                     e.workload.c_str(), e.technique.c_str(), e.phase.c_str(),
                     e.what.c_str());
      }
    }
  }
  return result.errors.empty() ? 0 : 3;
}

}  // namespace esteem::service

// Canonical byte codec for shipping a SweepSpec through the service
// journal, so N worker processes reconstruct the coordinator's sweep
// bit-exactly (INI round-trips truncate floats; this codec is f64-exact).
//
// Only result-determining fields plus the execution-policy sections
// ([resilience], [service], [observability]) are encoded; the journal/resume
// pointers and the thread count are deliberately excluded — they never
// change a row's bytes.
//
// Skew guard: the service header stores both these bytes and the sweep's
// fingerprint hash. A worker recomputes the hash from the *decoded* spec and
// refuses to start when they disagree, so a codec that silently drops a
// field (e.g. after SystemConfig grows) fails loudly instead of computing
// subtly different rows.
#pragma once

#include <cstdint>
#include <string>

#include "sim/runner.hpp"

namespace esteem::service {

/// Bump when the encoding changes; a mismatched journal is refused.
/// v2: [observability] joined the execution-policy sections.
/// v3: [sampling] joined the config.
/// v4: resilience.max_consecutive_errors and service.lock_mode.
inline constexpr std::uint32_t kWireVersion = 4;

std::string encode_sweep_spec(const sim::SweepSpec& spec);

/// Inverse of encode_sweep_spec into a default-constructed spec; false on
/// truncation, trailing bytes, or a version mismatch.
bool decode_sweep_spec(const std::string& bytes, sim::SweepSpec& out);

}  // namespace esteem::service

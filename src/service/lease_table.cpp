#include "service/lease_table.hpp"

#include <chrono>
#include <filesystem>
#include <utility>

#include "common/bytes.hpp"
#include "resilience/lock_file.hpp"
#include "service/wire.hpp"
#include "sim/run_cache.hpp"
#include "sim/sweep_journal.hpp"
#include "telemetry/telemetry.hpp"

namespace esteem::service {

namespace {

constexpr char kJournalName[] = "service.journal";

void tick(const char* name, std::uint64_t n = 1) {
  if (n > 0 && telemetry::active()) telemetry::registry().counter(name).add(n);
}

std::string dec(std::uint64_t v) { return std::to_string(v); }

bool parse_dec_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s.size() > 20) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

/// Journal field values may not contain '"' or '\' (resilience contract);
/// owner strings come from hostnames/CLI flags, so scrub rather than trust.
std::string sanitize_owner(const std::string& owner) {
  std::string out = owner.empty() ? std::string("anon") : owner;
  for (char& c : out) {
    if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) c = '_';
  }
  return out;
}

/// FNV-1a over a byte string, continuing from `h`.
std::uint64_t fnv1a(std::uint64_t h, const std::string& bytes) {
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::string LeaseTable::journal_path(const std::string& dir) {
  return (std::filesystem::path(dir) / kJournalName).string();
}

std::int64_t LeaseTable::wall_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::size_t LeaseTable::n_rows() const noexcept {
  return spec_.workloads.size() * spec_.techniques.size();
}

const trace::Workload& LeaseTable::row_workload(std::size_t row) const {
  return spec_.workloads[row / n_techniques()];
}

sim::Technique LeaseTable::row_technique(std::size_t row) const {
  return spec_.techniques[row % n_techniques()];
}

std::string LeaseTable::last_error() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return last_error_;
}

bool LeaseTable::locked_append(const resilience::JournalRecord& rec) {
  if (spec_.config.service.lock_mode != "lockfile") return file_.append(rec);
  // Lock-file serialization (ROADMAP's NFS/SMB caveat): O_APPEND does not
  // give concurrent appenders a total byte order there, so take an advisory
  // exclusive lock around each record. The lease TTL already bounds "how
  // long may a holder go dark", so it doubles as the stale-lock horizon.
  const std::uint32_t ttl = spec_.config.service.lease_ttl_ms;
  resilience::LockFile lock;
  if (!lock.acquire(journal_path(dir_) + ".lock", owner_, ttl,
                    /*timeout_ms=*/ttl * 2 + 2000)) {
    const std::lock_guard<std::mutex> lock_err(mutex_);
    last_error_ = lock.last_error();
    return false;
  }
  return file_.append(rec);
}

bool LeaseTable::write_header() {
  const std::string bytes = encode_sweep_spec(spec_);
  resilience::JournalRecord rec;
  rec.kind = "svc";
  rec.fields = {{"hash", hex_u64(sweep_hash_)},
                {"wire", dec(kWireVersion)},
                {"nwl", dec(spec_.workloads.size())},
                {"ntech", dec(spec_.techniques.size())},
                {"t", dec(static_cast<std::uint64_t>(wall_ms()))},
                {"spec", to_hex(bytes)}};
  if (!locked_append(rec)) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (last_error_.empty()) {
      last_error_ = "service journal append failed: " + file_.last_error();
    }
    return false;
  }
  return true;
}

bool LeaseTable::create(const std::string& dir, const sim::SweepSpec& spec,
                        const std::string& owner) {
  dir_ = dir;
  owner_ = sanitize_owner(owner);
  spec_ = spec;
  // The journal/resume/thread plumbing belongs to the process that built the
  // spec, not to the sweep's identity; rows are computed one lease at a time.
  spec_.journal = nullptr;
  spec_.resume = nullptr;
  spec_.threads = 1;
  sweep_hash_ = sim::sweep_fingerprint_hash(spec_);

  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  const std::string path = journal_path(dir_);
  const std::string spec_hex = to_hex(encode_sweep_spec(spec_));

  bool have_header = false;
  const auto loaded = resilience::JournalFile::load(path);
  for (const auto& rec : loaded.records) {
    if (rec.kind != "svc") continue;
    // Idempotent re-plan requires the *byte-identical* spec: the sweep hash
    // alone excludes the workload list, and a different workload list means
    // a different row manifest.
    if (rec.field("spec") != spec_hex) {
      const std::lock_guard<std::mutex> lock(mutex_);
      last_error_ = "service dir " + dir_ + " already holds a different sweep";
      return false;
    }
    have_header = true;
  }

  file_.set_domain("lease");
  if (!file_.open(path, /*truncate=*/false)) {
    const std::lock_guard<std::mutex> lock(mutex_);
    last_error_ = "cannot open " + path + ": " + file_.last_error();
    return false;
  }
  return have_header || write_header();
}

bool LeaseTable::open(const std::string& dir, const std::string& owner) {
  dir_ = dir;
  owner_ = sanitize_owner(owner);
  const std::string path = journal_path(dir_);

  const auto loaded = resilience::JournalFile::load(path);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!loaded.exists) {
    last_error_ = "service journal missing: " + path + " (run --plan first)";
    return false;
  }
  const resilience::JournalRecord* header = nullptr;
  for (const auto& rec : loaded.records) {
    if (rec.kind == "svc") {
      header = &rec;
      break;
    }
  }
  if (header == nullptr) {
    last_error_ = "service journal has no svc header: " + path;
    return false;
  }
  const auto bytes = from_hex(header->field("spec"));
  if (!bytes || !decode_sweep_spec(*bytes, spec_)) {
    last_error_ = "service journal spec is undecodable (wire version " +
                  std::to_string(kWireVersion) + " expected): " + path;
    return false;
  }
  std::uint64_t stored_hash = 0;
  sweep_hash_ = sim::sweep_fingerprint_hash(spec_);
  if (!parse_hex_u64(header->field("hash"), stored_hash) || stored_hash != sweep_hash_) {
    // The decoded spec does not hash to what the planner recorded: either
    // the codec dropped a field or the binaries disagree about the
    // fingerprint. Running would compute subtly different rows — refuse.
    last_error_ = "sweep hash mismatch after spec decode (codec/binary skew): " + path;
    return false;
  }
  file_.set_domain("lease");
  if (!file_.open(path, /*truncate=*/false)) {
    last_error_ = "cannot open " + path + ": " + file_.last_error();
    return false;
  }
  return true;
}

TableState LeaseTable::load_state() const {
  TableState st;
  if (spec_.workloads.empty() || spec_.techniques.empty()) {
    st.error = "lease table not opened";
    return st;
  }
  const auto loaded = resilience::JournalFile::load(journal_path(dir_));
  if (!loaded.exists) {
    st.error = "service journal missing: " + journal_path(dir_);
    return st;
  }
  st.damaged_lines = loaded.corrupt_lines;
  st.rows.assign(n_rows(), RowState{});

  bool saw_header = false;
  for (const auto& rec : loaded.records) {
    if (rec.kind == "svc") {
      std::uint64_t h = 0;
      if (!parse_hex_u64(rec.field("hash"), h) || h != sweep_hash_) {
        st = TableState{};
        st.error = "service journal mixes sweeps (foreign svc header)";
        return st;
      }
      saw_header = true;
      continue;
    }

    std::uint64_t row = 0;
    if (!parse_dec_u64(rec.field("row"), row) || row >= st.rows.size()) continue;
    RowState& r = st.rows[row];

    if (rec.kind == "lease") {
      std::uint64_t id = 0, gen = 0, ttl = 0, t = 0;
      if (!parse_hex_u64(rec.field("id"), id) || !parse_dec_u64(rec.field("gen"), gen) ||
          !parse_dec_u64(rec.field("ttl"), ttl) || !parse_dec_u64(rec.field("t"), t)) {
        continue;
      }
      r.lease_id = id;
      r.generation = gen;
      r.owner = rec.field("owner");
      r.lease_ttl_ms = static_cast<std::int64_t>(ttl);
      r.lease_expires_ms = static_cast<std::int64_t>(t + ttl);
    } else if (rec.kind == "hb") {
      std::uint64_t id = 0, t = 0;
      if (!parse_hex_u64(rec.field("id"), id) || !parse_dec_u64(rec.field("t"), t)) continue;
      // A heartbeat from a superseded lease must not resurrect it.
      if (id == r.lease_id && r.lease_id != 0) {
        r.lease_expires_ms = static_cast<std::int64_t>(t) + r.lease_ttl_ms;
      }
    } else if (rec.kind == "cell") {
      std::uint64_t digest = 0;
      const auto data = from_hex(rec.field("data"));
      if (!parse_hex_u64(rec.field("digest"), digest) || !data) continue;
      if (!r.done) {
        r.done = true;
        r.failed = false;  // A later success supersedes an earlier error.
        r.digest = digest;
        r.data = *data;
        r.owner = rec.field("owner");
      } else if (r.digest != digest) {
        r.conflict = true;
      }
    } else if (rec.kind == "err") {
      if (r.resolved()) continue;  // First terminal record wins.
      const auto what = from_hex(rec.field("what"));
      r.failed = true;
      if (!rec.field("owner").empty()) r.owner = rec.field("owner");
      r.error.workload = rec.field("workload");
      r.error.technique = rec.field("technique");
      r.error.phase = rec.field("phase");
      r.error.what = what ? *what : std::string("(unrecorded error)");
    }
  }

  if (!saw_header) {
    st = TableState{};
    st.error = "service journal has no svc header";
    return st;
  }
  for (const RowState& r : st.rows) {
    if (r.done) ++st.completed;
    else if (r.failed) ++st.failed;
    if (r.conflict) st.conflict = true;
  }
  st.ok = true;
  return st;
}

std::uint64_t LeaseTable::next_lease_id(std::int64_t now_ms) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t h = 14695981039346656037ULL;
  h = fnv1a(h, owner_);
  h = fnv1a(h, dec(static_cast<std::uint64_t>(now_ms)));
  h = fnv1a(h, dec(++lease_counter_));
  return h == 0 ? 1 : h;
}

std::optional<LeaseClaim> LeaseTable::claim(std::int64_t now_ms) {
  // Optimistic append-then-verify; a lost race costs one retry on the next
  // candidate row. Four attempts bound the worst case under heavy contention
  // (the caller polls again anyway).
  for (int attempt = 0; attempt < 4; ++attempt) {
    const TableState st = load_state();
    if (!st.ok) {
      const std::lock_guard<std::mutex> lock(mutex_);
      last_error_ = st.error;
      return std::nullopt;
    }
    std::size_t row = st.rows.size();
    bool stolen = false;
    for (std::size_t i = 0; i < st.rows.size(); ++i) {
      if (!st.rows[i].resolved() && !st.rows[i].leased(now_ms)) {
        row = i;
        stolen = st.rows[i].lease_id != 0;
        break;
      }
    }
    if (row == st.rows.size()) return std::nullopt;  // Resolved or all leased.

    LeaseClaim c;
    c.row = row;
    c.lease_id = next_lease_id(now_ms);
    c.generation = st.rows[row].generation + 1;
    c.stolen = stolen;

    resilience::JournalRecord rec;
    rec.kind = "lease";
    rec.fields = {{"row", dec(row)},
                  {"id", hex_u64(c.lease_id)},
                  {"gen", dec(c.generation)},
                  {"owner", owner_},
                  {"ttl", dec(spec_.config.service.lease_ttl_ms)},
                  {"t", dec(static_cast<std::uint64_t>(now_ms))}};
    if (!locked_append(rec)) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (last_error_.empty()) {
        last_error_ = "lease append failed: " + file_.last_error();
      }
      return std::nullopt;
    }

    const TableState after = load_state();
    if (after.ok && after.rows[row].lease_id == c.lease_id) {
      tick("service.leases_claimed");
      if (stolen) {
        tick("service.leases_expired");
        tick("service.rows_stolen");
      }
      return c;
    }
    tick("service.lease_races");  // Another writer's lease landed after ours.
  }
  return std::nullopt;
}

bool LeaseTable::renew(const LeaseClaim& claim, std::int64_t now_ms) {
  const TableState st = load_state();
  if (!st.ok || claim.row >= st.rows.size()) return false;
  if (st.rows[claim.row].lease_id != claim.lease_id) return false;  // Lost it.
  resilience::JournalRecord rec;
  rec.kind = "hb";
  rec.fields = {{"row", dec(claim.row)},
                {"id", hex_u64(claim.lease_id)},
                {"t", dec(static_cast<std::uint64_t>(now_ms))}};
  if (!locked_append(rec)) return false;
  tick("service.heartbeats");
  return true;
}

AppendStatus LeaseTable::complete(const LeaseClaim& claim,
                                  const sim::TechniqueComparison& comparison) {
  const std::string data = sim::encode_comparisons({comparison});
  const std::uint64_t digest = sim::fingerprint_hash(data);

  const TableState st = load_state();
  if (!st.ok || claim.row >= st.rows.size()) {
    const std::lock_guard<std::mutex> lock(mutex_);
    last_error_ = st.ok ? "row index out of range" : st.error;
    return AppendStatus::kError;
  }
  const RowState& r = st.rows[claim.row];
  if (r.done && r.digest == digest) {
    tick("service.duplicate_cells");
    return AppendStatus::kDuplicate;
  }
  if (r.lease_id != claim.lease_id) {
    // Zombie fence: our lease expired and the row was re-leased (or is being
    // re-run); writing now could race the thief, so write nothing. If the
    // thief already landed the same digest we'd have deduplicated above.
    tick("service.fenced_appends");
    return AppendStatus::kFenced;
  }

  resilience::JournalRecord rec;
  rec.kind = "cell";
  rec.fields = {{"row", dec(claim.row)},
                {"id", hex_u64(claim.lease_id)},
                {"gen", dec(claim.generation)},
                {"digest", hex_u64(digest)},
                {"owner", owner_},
                {"t", dec(static_cast<std::uint64_t>(wall_ms()))},
                {"data", to_hex(data)}};
  if (!locked_append(rec)) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (last_error_.empty()) {
      last_error_ = "cell append failed: " + file_.last_error();
    }
    return AppendStatus::kError;
  }
  // Done with a different digest while we still own the lease: the journal
  // now holds both cells and load_state flags the row conflicted — a hard
  // integrity error (deterministic sims cannot legitimately disagree).
  return r.done ? AppendStatus::kConflict : AppendStatus::kOk;
}

AppendStatus LeaseTable::fail(const LeaseClaim& claim, const sim::RunError& error) {
  const TableState st = load_state();
  if (!st.ok || claim.row >= st.rows.size()) {
    const std::lock_guard<std::mutex> lock(mutex_);
    last_error_ = st.ok ? "row index out of range" : st.error;
    return AppendStatus::kError;
  }
  const RowState& r = st.rows[claim.row];
  if (r.resolved()) {
    tick("service.duplicate_cells");
    return AppendStatus::kDuplicate;
  }
  if (r.lease_id != claim.lease_id) {
    tick("service.fenced_appends");
    return AppendStatus::kFenced;
  }
  resilience::JournalRecord rec;
  rec.kind = "err";
  rec.fields = {{"row", dec(claim.row)},
                {"id", hex_u64(claim.lease_id)},
                {"gen", dec(claim.generation)},
                {"owner", owner_},
                {"t", dec(static_cast<std::uint64_t>(wall_ms()))},
                {"workload", error.workload},
                {"technique", error.technique},
                {"phase", error.phase},
                {"what", to_hex(error.what)}};
  if (!locked_append(rec)) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (last_error_.empty()) {
      last_error_ = "err append failed: " + file_.last_error();
    }
    return AppendStatus::kError;
  }
  return AppendStatus::kOk;
}

}  // namespace esteem::service

// Lease-based work distribution over the shared service journal
// (DESIGN.md §12).
//
// The unit of work is one *row* — a (workload x technique) cell of the
// sweep, indexed `workload_index * n_techniques + technique_index`. The row
// manifest is implicit in the sweep spec carried by the `svc` header record,
// so the journal only stores state transitions:
//
//   {"v":1,"kind":"svc","hash":...,"wire":"1","spec":"<hex>","crc":...}
//   {"v":1,"kind":"lease","row":"7","id":...,"gen":"2","owner":"host:412",
//    "ttl":"30000","t":"<ms>","crc":...}
//   {"v":1,"kind":"hb","row":"7","id":...,"t":"<ms>","crc":...}
//   {"v":1,"kind":"cell","row":"7","id":...,"gen":"2","digest":...,
//    "owner":...,"t":"<ms>","data":"<hex>","crc":...}
//   {"v":1,"kind":"err","row":"7","id":...,"owner":...,"t":"<ms>",
//    "workload":"mcf","technique":"esteem","phase":"run","what":"<hex>",
//    "crc":...}
//
// The `t` wall-clock stamps on svc/cell/err (alongside lease/hb's) exist for
// the observability plane: claim->resolution durations feed the --status ETA
// and the merged trace (src/service/observer.hpp). Loaders treat them as
// optional, so journals written before the field existed still replay.
//
// Claiming is optimistic: a worker appends a `lease` line and re-reads the
// journal; the *last* lease line for a row wins (O_APPEND gives all writers
// a total file order), so the loser of a race simply observes a foreign
// lease id and moves to another row. A lease is live until `t + ttl` in
// journal-recorded wall-clock; `hb` heartbeats extend it, and an expired
// lease is claimable by anyone (the generation number increments on every
// re-lease, making steals auditable).
//
// Fencing: complete()/fail() re-read the journal first and refuse to append
// when the row's current lease is no longer the caller's — a worker that
// stalled past its TTL (zombie) cannot journal over the thief's result. The
// residual append/append race between two live-looking writers is resolved
// at read time: the simulator is deterministic, so double `cell` records
// must carry identical digests and are deduplicated; differing digests mark
// the row *conflicted*, which the coordinator reports as a hard integrity
// error (journals from mismatched binaries must never silently merge).
//
// Clocks are caller-provided (wall_ms() is the production source) so tests
// can force expiry without sleeping.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "resilience/journal_file.hpp"
#include "sim/runner.hpp"

namespace esteem::service {

/// Derived state of one row after replaying the journal.
struct RowState {
  std::uint64_t lease_id = 0;  ///< 0 = never leased.
  std::uint64_t generation = 0;
  std::string owner;
  std::int64_t lease_expires_ms = 0;  ///< Live while now < this.
  std::int64_t lease_ttl_ms = 0;      ///< TTL of the current lease.
  bool done = false;    ///< A success `cell` record exists.
  bool failed = false;  ///< Terminal `err` and no success (run_guarded already retried).
  bool conflict = false;  ///< Two success cells with differing digests.
  std::uint64_t digest = 0;
  std::string data;  ///< Canonical comparison bytes (done rows only).
  sim::RunError error;  ///< Meaningful when failed.

  bool resolved() const noexcept { return done || failed; }
  bool leased(std::int64_t now_ms) const noexcept {
    return lease_id != 0 && now_ms < lease_expires_ms;
  }
};

struct TableState {
  bool ok = false;
  std::string error;  ///< Set when !ok (missing/foreign journal, bad spec).
  std::vector<RowState> rows;
  std::size_t completed = 0;  ///< Rows with a success cell.
  std::size_t failed = 0;     ///< Terminally errored rows.
  bool conflict = false;      ///< Any row conflicted (integrity error).
  std::size_t damaged_lines = 0;

  /// Every row reached a terminal state (success or error).
  bool resolved() const noexcept { return ok && completed + failed == rows.size(); }
};

/// A successfully claimed row; the token complete()/fail() are fenced by.
struct LeaseClaim {
  std::size_t row = 0;
  std::uint64_t lease_id = 0;
  std::uint64_t generation = 0;
  bool stolen = false;  ///< Re-leased over an expired foreign lease.
};

enum class AppendStatus {
  kOk,
  kDuplicate,  ///< Row already resolved with the same digest; nothing written.
  kFenced,     ///< Our lease was superseded; nothing written.
  kConflict,   ///< Row already done with a DIFFERENT digest (integrity error).
  kError,      ///< Journal I/O failed (see last_error()).
};

class LeaseTable {
 public:
  static std::string journal_path(const std::string& dir);
  /// Wall clock in milliseconds since the Unix epoch — the production `now`.
  static std::int64_t wall_ms();

  /// Plans a sweep in `dir`: creates the directory and the service journal,
  /// and writes the `svc` header (spec bytes + sweep hash). Re-planning the
  /// *same* sweep is idempotent (resume); a dir already holding a different
  /// sweep is refused.
  bool create(const std::string& dir, const sim::SweepSpec& spec, const std::string& owner);

  /// Attaches to a planned dir: decodes the spec from the `svc` header and
  /// verifies it by recomputing the sweep hash (codec/binary-skew guard).
  bool open(const std::string& dir, const std::string& owner);

  const sim::SweepSpec& spec() const noexcept { return spec_; }
  std::uint64_t sweep_hash() const noexcept { return sweep_hash_; }
  std::size_t n_rows() const noexcept;
  std::size_t n_techniques() const noexcept { return spec_.techniques.size(); }
  const trace::Workload& row_workload(std::size_t row) const;
  sim::Technique row_technique(std::size_t row) const;
  const std::string& owner() const noexcept { return owner_; }
  const std::string& dir() const noexcept { return dir_; }
  /// By value: may be set from the heartbeat thread while the run loop reads.
  std::string last_error() const;

  /// Replays the journal into per-row state. Damaged interior lines are
  /// skipped and counted, never fatal.
  TableState load_state() const;

  /// Claims the first unresolved row whose lease is absent or expired at
  /// `now_ms` (append lease, re-read, verify we won). nullopt when nothing
  /// is claimable right now — which means "all resolved", "everything
  /// leased", or an I/O error (last_error() distinguishes the latter).
  std::optional<LeaseClaim> claim(std::int64_t now_ms);

  /// Heartbeat: extends `claim`'s lease to now + ttl. False when the lease
  /// was lost (expired and stolen) — the caller should abandon the row.
  bool renew(const LeaseClaim& claim, std::int64_t now_ms);

  /// Journals the row's result. Fenced (nothing written) when the lease is
  /// no longer ours; deduplicated when an identical result already landed.
  AppendStatus complete(const LeaseClaim& claim, const sim::TechniqueComparison& comparison);
  AppendStatus fail(const LeaseClaim& claim, const sim::RunError& error);

 private:
  bool write_header();
  std::uint64_t next_lease_id(std::int64_t now_ms);
  /// Appends through the configured serialization: straight O_APPEND
  /// ([service] lock_mode=append) or wrapped in an advisory lock file
  /// (lock_mode=lockfile, for filesystems without atomic append).
  bool locked_append(const resilience::JournalRecord& rec);

  resilience::JournalFile file_;
  std::string dir_;
  std::string owner_;
  sim::SweepSpec spec_;
  std::uint64_t sweep_hash_ = 0;
  std::uint64_t lease_counter_ = 0;
  mutable std::mutex mutex_;  ///< Guards lease_counter_/last_error_ (heartbeat thread).
  mutable std::string last_error_;
};

}  // namespace esteem::service

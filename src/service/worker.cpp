#include "service/worker.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <optional>
#include <thread>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "common/env.hpp"
#include "resilience/shutdown.hpp"
#include "service/lease_table.hpp"
#include "service/observer.hpp"
#include "sim/run_cache.hpp"
#include "sim/runner.hpp"
#include "telemetry/telemetry.hpp"

namespace esteem::service {

namespace {

/// Renews one claim's lease every `period_ms` until destroyed. Stops early
/// when the lease is observed lost (stolen after a stall) — the row's result
/// will be fenced anyway, so there is nothing left to keep alive.
///
/// The observability plane piggybacks here: when an Observer is attached the
/// thread wakes at min(heartbeat_ms, flush_ms) and asks the observer to
/// flush a due snapshot on every wake, while leases are still renewed only
/// on the heartbeat cadence. One background thread serves both duties — a
/// worker stuck inside a long simulation keeps publishing telemetry exactly
/// as long as it keeps its lease alive.
class Heartbeat {
 public:
  Heartbeat(LeaseTable& table, const LeaseClaim& claim, std::uint32_t period_ms,
            Observer* observer = nullptr)
      : table_(table), claim_(claim), renew_ms_(period_ms == 0 ? 1000 : period_ms),
        observer_(observer != nullptr && observer->enabled() ? observer : nullptr),
        thread_([this] { loop(); }) {}

  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

  ~Heartbeat() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  bool lost() const noexcept { return lost_.load(std::memory_order_relaxed); }

 private:
  std::uint32_t wake_ms(std::uint32_t flush_ms) const noexcept {
    return observer_ != nullptr && flush_ms != 0 ? std::min(renew_ms_, flush_ms)
                                                 : renew_ms_;
  }

  void loop() {
    const std::uint32_t period =
        wake_ms(observer_ != nullptr ? flush_period_ms() : 0);
    auto last_renew = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lock(mutex_);
    while (!cv_.wait_for(lock, std::chrono::milliseconds(period),
                         [this] { return stop_; })) {
      lock.unlock();
      if (observer_ != nullptr) observer_->flush_due();
      const auto now = std::chrono::steady_clock::now();
      bool renewed = true;
      if (now - last_renew >= std::chrono::milliseconds(renew_ms_)) {
        renewed = table_.renew(claim_, LeaseTable::wall_ms());
        last_renew = now;
      }
      lock.lock();
      if (!renewed) {
        lost_.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }

  std::uint32_t flush_period_ms() const {
    return table_.spec().config.observability.flush_ms;
  }

  LeaseTable& table_;
  const LeaseClaim claim_;
  const std::uint32_t renew_ms_;
  Observer* const observer_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<bool> lost_{false};
  std::thread thread_;
};

/// Shutdown-aware idle sleep in small slices.
void poll_sleep(std::uint32_t poll_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(poll_ms == 0 ? 100 : poll_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (resilience::shutdown_requested()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

[[noreturn]] void chaos_die(const std::string& owner, std::size_t rows_done) {
  std::fprintf(stderr, "[esteem_workerd] chaos: %s self-SIGKILLs after %zu rows (mid-lease)\n",
               owner.c_str(), rows_done);
  std::fflush(stderr);
#if !defined(_WIN32)
  ::kill(::getpid(), SIGKILL);
#endif
  std::abort();  // Unreachable on POSIX; keeps [[noreturn]] honest elsewhere.
}

}  // namespace

std::string default_owner() {
#if defined(_WIN32)
  return "host:0";
#else
  char host[256] = {0};
  if (::gethostname(host, sizeof(host) - 1) != 0) host[0] = '\0';
  return std::string(host[0] != '\0' ? host : "host") + ":" + std::to_string(::getpid());
#endif
}

std::uint32_t resolve_crash_after_rows(const SystemConfig& config) {
  if (env_str("ESTEEM_CHAOS", "").empty()) return 0;
  return static_cast<std::uint32_t>(
      env_u64("ESTEEM_CRASH_AFTER_ROWS", config.service.crash_after_rows));
}

WorkerReport run_worker(const WorkerOptions& opts) {
  WorkerReport rep;
  const std::string owner = opts.owner.empty() ? default_owner() : opts.owner;

  LeaseTable table;
  if (!table.open(opts.dir, owner)) {
    rep.error = table.last_error();
    return rep;
  }
  const sim::SweepSpec& spec = table.spec();
  const ServiceConfig& sc = spec.config.service;
  const ObservabilityConfig& oc = spec.config.observability;

  // Observability plane (off unless the planned sweep set [observability]
  // flush_ms). Registry collection is enabled without any file outputs of
  // its own; the sidecar is the only thing written, and a sidecar that
  // cannot be opened degrades to running blind — never a fatal error.
  Observer observer;
  if (oc.flush_ms != 0) {
    if (!telemetry::active()) {
      telemetry::TelemetryConfig tc;
      tc.counters = true;
      telemetry::Telemetry::instance().configure(tc);
    }
    if (!observer.open(opts.dir, owner, oc)) {
      std::fprintf(stderr, "[%s] observability disabled: %s\n", owner.c_str(),
                   observer.last_error().c_str());
    }
    observer.event("info", "worker started");
  }

  // Share simulations (the baseline above all: every technique row of a
  // workload needs it) across workers through the service-local memo
  // directory, unless the operator already pointed the cache elsewhere.
  if (sim::RunCache::instance().disk_dir().empty()) {
    sim::RunCache::instance().set_disk_dir(
        (std::filesystem::path(opts.dir) / "memo").string());
  }

  // Explicit option wins (tests inject it directly); otherwise the env-gated
  // [service] crash_after_rows from the planned sweep applies.
  const std::uint32_t crash_after = opts.crash_after_rows != 0
                                        ? opts.crash_after_rows
                                        : resolve_crash_after_rows(spec.config);

  // End-of-row bookkeeping for the sidecar: worker.* gauges mirror the
  // report so the fleet status can show per-worker progress live, and a
  // snapshot is flushed at every row boundary (the heartbeat thread covers
  // the long stretches inside a run).
  auto publish = [&rep, &observer]() {
    if (!observer.enabled() || !telemetry::active()) return;
    auto& reg = telemetry::registry();
    reg.gauge("worker.rows_completed").set(static_cast<double>(rep.rows_completed));
    reg.gauge("worker.rows_failed").set(static_cast<double>(rep.rows_failed));
    reg.gauge("worker.rows_stolen").set(static_cast<double>(rep.rows_stolen));
    observer.flush_snapshot();
  };

  std::size_t resolved_by_me = 0;
  while (true) {
    if (resilience::shutdown_requested()) {
      rep.interrupted = true;
      observer.event("warn", "interrupted (shutdown requested)");
      break;
    }

    const std::optional<LeaseClaim> claim = table.claim(LeaseTable::wall_ms());
    if (!claim) {
      const TableState st = table.load_state();
      if (!st.ok) {
        rep.error = st.error;
        break;
      }
      if (st.conflict) {
        rep.error = "integrity conflict: double-completed row with differing digests";
        break;
      }
      if (st.resolved()) break;  // Sweep finished (possibly by other workers).
      poll_sleep(sc.poll_ms);    // Everything claimable is leased right now.
      continue;
    }

    if (crash_after != 0 && resolved_by_me >= crash_after) {
      chaos_die(owner, resolved_by_me);  // Dies holding the fresh lease.
    }

    rep.rows_stolen += claim->stolen ? 1 : 0;
    const trace::Workload& wl = table.row_workload(claim->row);
    const sim::Technique technique = table.row_technique(claim->row);
    const std::string tech_name{to_string(technique)};
    if (!opts.quiet) {
      std::fprintf(stderr, "[%s] row %zu: %s/%s%s\n", owner.c_str(), claim->row,
                   wl.name.c_str(), tech_name.c_str(), claim->stolen ? " (stolen)" : "");
    }
    observer.event("info",
                   "claimed " + wl.name + "/" + tech_name +
                       (claim->stolen ? " (stolen from an expired lease)" : ""),
                   claim->lease_id, claim->row);

    Heartbeat heartbeat(table, *claim, sc.heartbeat_ms, &observer);
    std::optional<sim::TechniqueComparison> comparison;
    sim::RunError error;
    std::string phase_label = "baseline";
    try {
      const auto base = sim::run_guarded(
          sim::sweep_run_spec(spec, wl, sim::Technique::BaselinePeriodicAll),
          "baseline:" + wl.name, nullptr);
      phase_label = tech_name;
      const auto tech = sim::run_guarded(sim::sweep_run_spec(spec, wl, technique),
                                         tech_name + ":" + wl.name, nullptr);
      comparison = sim::compare(wl.name, technique, *base, *tech);
    } catch (...) {
      error = sim::current_exception_to_run_error(wl.name, phase_label);
    }

    const AppendStatus status =
        comparison ? table.complete(*claim, *comparison) : table.fail(*claim, error);
    switch (status) {
      case AppendStatus::kOk:
        ++resolved_by_me;
        if (comparison) {
          ++rep.rows_completed;
          observer.event("info", "completed " + wl.name + "/" + tech_name,
                         claim->lease_id, claim->row);
        } else {
          ++rep.rows_failed;
          observer.event("error",
                         "failed " + wl.name + "/" + tech_name + ": " + error.what,
                         claim->lease_id, claim->row);
        }
        break;
      case AppendStatus::kDuplicate:
        ++resolved_by_me;  // Row is resolved either way; chaos still advances.
        break;
      case AppendStatus::kFenced:
        ++rep.fenced;  // Stalled past TTL; the thief owns the row now.
        observer.event("warn", "result fenced (lease lost past TTL)",
                       claim->lease_id, claim->row);
        break;
      case AppendStatus::kConflict:
        rep.error = "integrity conflict on row " + std::to_string(claim->row) +
                    " (" + wl.name + "/" + tech_name + "): differing digests";
        observer.event("error", rep.error, claim->lease_id, claim->row);
        publish();
        return rep;
      case AppendStatus::kError:
        rep.error = table.last_error();
        observer.event("error", rep.error, claim->lease_id, claim->row);
        publish();
        return rep;
    }
    publish();
  }
  observer.event("info", "worker exiting (" + std::to_string(rep.rows_completed) +
                             " completed, " + std::to_string(rep.rows_failed) +
                             " failed)");
  publish();
  return rep;
}

}  // namespace esteem::service

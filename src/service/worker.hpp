// Sweep-service worker: the lease->run->journal loop one `esteem_workerd
// --worker` process executes (DESIGN.md §12).
//
// Each iteration claims one (workload x technique) row from the shared
// LeaseTable, evaluates it through the same sweep_run_spec/run_guarded path
// the in-process scheduler uses (watchdog deadline, retries, RunCache memo
// — workers on one machine share baselines through the service-local memo
// directory), journals the result, and moves on. A background heartbeat
// renews the row's lease every [service] heartbeat_ms while the simulation
// runs, so only a worker that actually died goes silent for a full TTL and
// has its row stolen.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/config.hpp"

namespace esteem::service {

struct WorkerOptions {
  std::string dir;    ///< Planned service directory.
  std::string owner;  ///< Worker identity; "" = default_owner().
  /// Chaos: self-SIGKILL right after claiming the next row once this many
  /// rows were resolved by this process. 0 = defer to the env-gated
  /// resolve_crash_after_rows() of the planned sweep's config; nonzero
  /// forces the crash (tests).
  std::uint32_t crash_after_rows = 0;
  bool quiet = false;  ///< Suppress per-row stderr progress lines.
};

struct WorkerReport {
  std::size_t rows_completed = 0;  ///< Success cells journaled by this worker.
  std::size_t rows_failed = 0;     ///< Error records journaled by this worker.
  std::size_t rows_stolen = 0;     ///< Claims that re-leased an expired lease.
  std::size_t fenced = 0;          ///< Results dropped by the zombie fence.
  bool interrupted = false;        ///< SIGINT/SIGTERM drained the loop.
  std::string error;               ///< Fatal service error ("" = clean exit).

  bool ok() const noexcept { return error.empty(); }
};

/// "<hostname>:<pid>" — unique per worker process on a shared filesystem.
std::string default_owner();

/// The effective chaos row count for this process: 0 unless the ESTEEM_CHAOS
/// environment variable is set (a stray config file must never kill
/// production workers); when armed, ESTEEM_CRASH_AFTER_ROWS overrides the
/// sweep's [service] crash_after_rows so a drill can crash specific workers.
std::uint32_t resolve_crash_after_rows(const SystemConfig& config);

/// Blocking worker loop. Returns when every row is resolved, shutdown is
/// requested, or a fatal service error occurs (see WorkerReport::error).
WorkerReport run_worker(const WorkerOptions& opts);

}  // namespace esteem::service

#include "service/observer.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>

#include "common/bytes.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_emitter.hpp"

namespace esteem::service {

namespace {

void tick(const char* name, std::uint64_t n = 1) {
  if (n > 0 && telemetry::active()) telemetry::registry().counter(name).add(n);
}

std::string dec(std::uint64_t v) { return std::to_string(v); }

bool parse_dec_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s.size() > 20) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

constexpr char kSidecarSuffix[] = ".sidecar.jsonl";

std::string json_str(const std::string& s) {
  return '"' + telemetry::TraceEmitter::json_escape(s) + '"';
}

/// Row index rendered for JSON: kNoRow becomes -1.
std::int64_t json_row(std::uint64_t row) {
  return row == resilience::EventRecord::kNoRow ? -1
                                                : static_cast<std::int64_t>(row);
}

}  // namespace

std::string telemetry_dir(const std::string& dir) {
  return (std::filesystem::path(dir) / "telemetry").string();
}

std::string sidecar_path(const std::string& dir, const std::string& owner) {
  return (std::filesystem::path(telemetry_dir(dir)) /
          (telemetry::sanitize_label(owner) + kSidecarSuffix))
      .string();
}

bool Observer::open(const std::string& dir, const std::string& owner,
                    const ObservabilityConfig& cfg) {
  const std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = false;
  owner_ = owner;
  cfg_ = cfg;
  std::error_code ec;
  std::filesystem::create_directories(telemetry_dir(dir), ec);
  if (ec) {
    last_error_ = "cannot create " + telemetry_dir(dir) + ": " + ec.message();
    return false;
  }
  file_.set_domain("sidecar");
  if (!file_.open(sidecar_path(dir, owner), /*truncate=*/false)) {
    last_error_ = file_.last_error();
    return false;
  }
  enabled_ = true;
  last_error_.clear();
  return true;
}

void Observer::event(const std::string& severity, const std::string& message,
                     std::uint64_t lease_id, std::uint64_t row) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_) return;
  if (events_written_ >= cfg_.events_max) {
    tick("observer.events_dropped");
    return;
  }
  resilience::EventRecord ev;
  ev.t_ms = LeaseTable::wall_ms();
  ev.severity = severity;
  ev.source = owner_;
  ev.message = message;
  ev.lease_id = lease_id;
  ev.row = row;
  if (file_.append(ev.to_journal())) {
    ++events_written_;
  } else {
    note_write_error_locked();
  }
}

void Observer::flush_snapshot() {
  std::unique_lock<std::mutex> lock(mutex_);
  flush_locked(lock);
}

void Observer::flush_due() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!enabled_) return;
  const std::int64_t now = LeaseTable::wall_ms();
  if (now - last_flush_ms_ < static_cast<std::int64_t>(cfg_.flush_ms)) return;
  flush_locked(lock);
}

void Observer::flush_locked(std::unique_lock<std::mutex>&) {
  if (!enabled_) return;
  const std::int64_t now = LeaseTable::wall_ms();
  const telemetry::Snapshot snap =
      telemetry::take_snapshot(telemetry::registry(), now, owner_);
  resilience::JournalRecord rec;
  rec.kind = "snap";
  rec.fields = {{"t", dec(static_cast<std::uint64_t>(now))},
                {"seq", dec(++seq_)},
                {"data", to_hex(telemetry::encode_snapshot_jsonl(snap))}};
  // One append = one fsync'd line: a worker dying mid-snapshot tears at most
  // this record, which load_worker_telemetry skips and counts — the previous
  // snapshot stands.
  if (!file_.append(rec)) note_write_error_locked();
  // Advance the flush clock even on failure: a dead disk must cost one
  // failed append per flush period, not one per heartbeat.
  last_flush_ms_ = now;
}

std::size_t Observer::write_errors() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return write_errors_;
}

void Observer::note_write_error_locked() {
  ++write_errors_;
  tick("observer.write_errors");
}

std::vector<WorkerTelemetry> load_worker_telemetry(const std::string& dir) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(telemetry_dir(dir), ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > sizeof kSidecarSuffix - 1 &&
        name.compare(name.size() - (sizeof kSidecarSuffix - 1),
                     sizeof kSidecarSuffix - 1, kSidecarSuffix) == 0) {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<WorkerTelemetry> out;
  for (const std::string& path : paths) {
    const auto loaded = resilience::JournalFile::load(path);
    if (!loaded.exists) continue;
    WorkerTelemetry wt;
    wt.damaged_lines = loaded.corrupt_lines;
    for (const auto& rec : loaded.records) {
      if (rec.kind == "snap") {
        const auto bytes = from_hex(rec.field("data"));
        telemetry::Snapshot snap;
        if (!bytes || !telemetry::decode_snapshot_jsonl(*bytes, snap)) {
          ++wt.damaged_lines;
          continue;
        }
        if (wt.owner.empty()) wt.owner = snap.source;
        wt.snapshots.push_back(std::move(snap));
      } else if (rec.kind == "evt") {
        resilience::EventRecord ev;
        if (!resilience::EventRecord::from_journal(rec, ev)) {
          ++wt.damaged_lines;
          continue;
        }
        if (wt.owner.empty()) wt.owner = ev.source;
        wt.events.push_back(std::move(ev));
      }
    }
    if (wt.owner.empty()) {
      // Sidecar holds no decodable record naming its owner: fall back to the
      // (sanitized) file stem so the damage is still attributed somewhere.
      std::string stem = std::filesystem::path(path).filename().string();
      stem.resize(stem.size() - (sizeof kSidecarSuffix - 1));
      wt.owner = stem;
    }
    out.push_back(std::move(wt));
  }
  std::sort(out.begin(), out.end(),
            [](const WorkerTelemetry& a, const WorkerTelemetry& b) {
              return a.owner < b.owner;
            });
  return out;
}

FleetStatus collect_fleet_status(const LeaseTable& table, const TableState& state,
                                 std::int64_t now_ms) {
  FleetStatus fs;
  fs.sweep_hash = table.sweep_hash();
  fs.now_ms = now_ms;
  fs.rows = state.rows.size();
  fs.completed = state.completed;
  fs.failed = state.failed;
  fs.conflict = state.conflict;
  fs.damaged_lines = state.damaged_lines;
  for (const RowState& r : state.rows) {
    if (!r.resolved() && r.leased(now_ms)) ++fs.leased;
  }

  // Journal replay for per-worker attribution and row timing. The lease-id
  // -> owner map attributes heartbeats (hb records carry no owner).
  std::map<std::string, WorkerHealth> by_owner;
  std::map<std::uint64_t, std::string> lease_owner;
  struct RowTiming {
    std::int64_t claim_ms = -1;    ///< Latest lease append.
    std::int64_t resolve_ms = -1;  ///< First success/terminal-error append.
    bool counted = false;          ///< First terminal record already attributed.
  };
  std::vector<RowTiming> timing(fs.rows);
  const auto loaded =
      resilience::JournalFile::load(LeaseTable::journal_path(table.dir()));
  for (const auto& rec : loaded.records) {
    std::uint64_t row = 0, t = 0;
    const bool has_row = parse_dec_u64(rec.field("row"), row) && row < fs.rows;
    const bool has_t = parse_dec_u64(rec.field("t"), t);
    if (rec.kind == "lease" && has_row && has_t) {
      std::uint64_t id = 0, gen = 0;
      if (!parse_hex_u64(rec.field("id"), id) ||
          !parse_dec_u64(rec.field("gen"), gen)) {
        continue;
      }
      const std::string& owner = rec.field("owner");
      lease_owner[id] = owner;
      WorkerHealth& h = by_owner[owner];
      h.last_seen_ms = std::max(h.last_seen_ms, static_cast<std::int64_t>(t));
      if (gen > 1) ++h.rows_stolen;
      timing[row].claim_ms = static_cast<std::int64_t>(t);
    } else if (rec.kind == "hb" && has_t) {
      std::uint64_t id = 0;
      if (!parse_hex_u64(rec.field("id"), id)) continue;
      const auto it = lease_owner.find(id);
      if (it == lease_owner.end()) continue;
      WorkerHealth& h = by_owner[it->second];
      h.last_seen_ms = std::max(h.last_seen_ms, static_cast<std::int64_t>(t));
    } else if ((rec.kind == "cell" || rec.kind == "err") && has_row) {
      const std::string& owner = rec.field("owner");
      if (!owner.empty()) {
        WorkerHealth& h = by_owner[owner];
        if (has_t) h.last_seen_ms = std::max(h.last_seen_ms, static_cast<std::int64_t>(t));
        if (!timing[row].counted) {
          if (rec.kind == "cell") ++h.rows_done;
          else ++h.rows_failed;
        }
      }
      if (!timing[row].counted) {
        timing[row].counted = true;
        if (has_t) timing[row].resolve_ms = static_cast<std::int64_t>(t);
      }
    }
  }

  // Sidecars: memo hit rate from each worker's latest snapshot + event feed.
  for (WorkerTelemetry& wt : load_worker_telemetry(table.dir())) {
    WorkerHealth& h = by_owner[wt.owner];
    h.events = wt.events.size();
    h.sidecar_damaged = wt.damaged_lines;
    fs.damaged_lines += wt.damaged_lines;
    if (!wt.snapshots.empty()) {
      const telemetry::Snapshot& latest = wt.snapshots.back();
      h.last_seen_ms = std::max(h.last_seen_ms, latest.t_ms);
      std::uint64_t hits = 0, misses = 0;
      for (const telemetry::MetricSample& m : latest.metrics) {
        if (m.name == "memo.hits") hits = m.raw;
        else if (m.name == "memo.misses") misses = m.raw;
      }
      if (hits + misses > 0) {
        h.memo_hit_rate = static_cast<double>(hits) / static_cast<double>(hits + misses);
      }
    }
    for (resilience::EventRecord& ev : wt.events) {
      fs.recent_events.push_back(std::move(ev));
    }
  }
  std::stable_sort(fs.recent_events.begin(), fs.recent_events.end(),
                   [](const resilience::EventRecord& a, const resilience::EventRecord& b) {
                     return a.t_ms < b.t_ms;
                   });
  if (fs.recent_events.size() > kStatusEventCap) {
    fs.recent_events.erase(fs.recent_events.begin(),
                           fs.recent_events.end() - kStatusEventCap);
  }

  const std::int64_t ttl = table.spec().config.service.lease_ttl_ms;
  for (auto& [owner, h] : by_owner) {
    h.owner = owner;
    if (h.last_seen_ms > 0) {
      h.heartbeat_age_ms = std::max<std::int64_t>(0, now_ms - h.last_seen_ms);
      h.alive = h.heartbeat_age_ms < ttl;
    }
    fs.workers.push_back(std::move(h));  // std::map iterates owner-sorted.
  }

  // ETA: remaining rows at the mean observed claim->resolution duration,
  // spread over the workers currently alive.
  const std::size_t remaining = fs.rows - fs.completed - fs.failed;
  if (remaining == 0) {
    fs.eta_ms = 0;
  } else {
    std::int64_t total = 0, n = 0;
    for (const RowTiming& rt : timing) {
      if (rt.claim_ms >= 0 && rt.resolve_ms >= rt.claim_ms) {
        total += rt.resolve_ms - rt.claim_ms;
        ++n;
      }
    }
    std::size_t alive = 0;
    for (const WorkerHealth& h : fs.workers) {
      if (h.alive) ++alive;
    }
    if (n > 0 && alive > 0) {
      fs.eta_ms = static_cast<std::int64_t>(remaining) * (total / n) /
                  static_cast<std::int64_t>(alive);
    }
  }
  return fs;
}

std::string status_json(const FleetStatus& fs) {
  // Versioned, single-line, keys in this fixed order — the machine contract
  // shared by `esteem_workerd --status --json` and `esteem_cli --serve`.
  std::string out = "{\"v\":1";
  out += ",\"sweep\":\"" + hex_u64(fs.sweep_hash) + '"';
  out += ",\"now_ms\":" + std::to_string(fs.now_ms);
  out += ",\"rows\":" + std::to_string(fs.rows);
  out += ",\"completed\":" + std::to_string(fs.completed);
  out += ",\"failed\":" + std::to_string(fs.failed);
  out += ",\"pending\":" + std::to_string(fs.rows - fs.completed - fs.failed);
  out += ",\"leased\":" + std::to_string(fs.leased);
  out += ",\"conflict\":" + std::string(fs.conflict ? "true" : "false");
  out += ",\"damaged_lines\":" + std::to_string(fs.damaged_lines);
  out += ",\"eta_ms\":" + std::to_string(fs.eta_ms);
  out += ",\"workers\":[";
  for (std::size_t i = 0; i < fs.workers.size(); ++i) {
    const WorkerHealth& h = fs.workers[i];
    out += i ? "," : "";
    out += "{\"owner\":" + json_str(h.owner);
    out += ",\"alive\":" + std::string(h.alive ? "true" : "false");
    out += ",\"heartbeat_age_ms\":" + std::to_string(h.heartbeat_age_ms);
    out += ",\"done\":" + std::to_string(h.rows_done);
    out += ",\"failed\":" + std::to_string(h.rows_failed);
    out += ",\"stolen\":" + std::to_string(h.rows_stolen);
    char rate[32];
    std::snprintf(rate, sizeof rate, "%.4f", h.memo_hit_rate);
    out += ",\"memo_hit_rate\":" + std::string(h.memo_hit_rate < 0 ? "-1" : rate);
    out += ",\"events\":" + std::to_string(h.events) + '}';
  }
  out += "],\"events\":[";
  for (std::size_t i = 0; i < fs.recent_events.size(); ++i) {
    const resilience::EventRecord& ev = fs.recent_events[i];
    out += i ? "," : "";
    out += "{\"t\":" + std::to_string(ev.t_ms);
    out += ",\"sev\":" + json_str(ev.severity);
    out += ",\"src\":" + json_str(ev.source);
    out += ",\"lease\":\"" + hex_u64(ev.lease_id) + '"';
    out += ",\"row\":" + std::to_string(json_row(ev.row));
    out += ",\"msg\":" + json_str(ev.message) + '}';
  }
  out += "]}";
  return out;
}

std::string progress_line(const FleetStatus& fs) {
  std::size_t alive = 0;
  for (const WorkerHealth& h : fs.workers) {
    if (h.alive) ++alive;
  }
  char eta[48];
  if (fs.eta_ms < 0) std::snprintf(eta, sizeof eta, "eta unknown");
  else if (fs.eta_ms == 0) std::snprintf(eta, sizeof eta, "resolved");
  else std::snprintf(eta, sizeof eta, "eta ~%.1fs", static_cast<double>(fs.eta_ms) / 1000.0);
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "[fleet] %zu/%zu rows resolved (%zu failed, %zu leased) | "
                "workers %zu/%zu alive | %s%s%s",
                fs.completed + fs.failed, fs.rows, fs.failed, fs.leased, alive,
                fs.workers.size(), eta,
                fs.conflict ? " | INTEGRITY CONFLICT" : "",
                fs.damaged_lines != 0 ? " | damaged lines skipped" : "");
  return buf;
}

bool write_fleet_metrics(const std::string& dir, const std::string& path,
                         std::string& error) {
  std::vector<telemetry::Snapshot> latest;
  for (const WorkerTelemetry& wt : load_worker_telemetry(dir)) {
    if (!wt.snapshots.empty()) latest.push_back(wt.snapshots.back());
  }
  if (latest.empty()) {
    error = "no worker snapshots under " + telemetry_dir(dir) +
            " (is [observability] flush_ms set?)";
    return false;
  }
  std::string text;
  try {
    text = telemetry::to_openmetrics(telemetry::merge_snapshots(latest));
  } catch (const std::exception& e) {
    error = e.what();
    return false;
  }
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out.good()) {
    error = "cannot write " + path;
    return false;
  }
  out << text;
  out.flush();
  if (!out.good()) {
    error = "short write to " + path;
    return false;
  }
  error.clear();
  return true;
}

bool write_merged_trace(const std::string& dir, const std::string& out_path,
                        std::string& error) {
  LeaseTable table;
  if (!table.open(dir, "trace")) {
    error = table.last_error();
    return false;
  }

  struct LeaseEv {
    std::int64_t t_ms;
    std::string owner;
    std::uint64_t gen;
  };
  struct Resolution {
    std::int64_t t_ms = -1;
    bool done = false;
    bool seen = false;
  };
  const std::size_t n_rows = table.n_rows();
  std::vector<std::vector<LeaseEv>> leases(n_rows);
  std::vector<Resolution> res(n_rows);
  std::int64_t plan_ms = -1, min_t = -1, max_t = -1;
  auto widen = [&](std::int64_t t) {
    if (min_t < 0 || t < min_t) min_t = t;
    if (t > max_t) max_t = t;
  };

  const auto loaded = resilience::JournalFile::load(LeaseTable::journal_path(dir));
  std::set<std::string> owners;
  for (const auto& rec : loaded.records) {
    std::uint64_t row = 0, t = 0;
    const bool has_row = parse_dec_u64(rec.field("row"), row) && row < n_rows;
    const bool has_t = parse_dec_u64(rec.field("t"), t);
    if (has_t) widen(static_cast<std::int64_t>(t));
    if (rec.kind == "svc" && has_t && plan_ms < 0) {
      plan_ms = static_cast<std::int64_t>(t);
    } else if (rec.kind == "lease" && has_row && has_t) {
      std::uint64_t gen = 0;
      parse_dec_u64(rec.field("gen"), gen);
      owners.insert(rec.field("owner"));
      leases[row].push_back(
          LeaseEv{static_cast<std::int64_t>(t), rec.field("owner"), gen});
    } else if ((rec.kind == "cell" || rec.kind == "err") && has_row) {
      if (!rec.field("owner").empty()) owners.insert(rec.field("owner"));
      if (!res[row].seen) {
        res[row].seen = true;
        res[row].done = rec.kind == "cell";
        if (has_t) res[row].t_ms = static_cast<std::int64_t>(t);
      }
    }
  }

  const std::vector<WorkerTelemetry> sidecars = load_worker_telemetry(dir);
  for (const WorkerTelemetry& wt : sidecars) {
    owners.insert(wt.owner);
    for (const telemetry::Snapshot& s : wt.snapshots) widen(s.t_ms);
    for (const resilience::EventRecord& ev : wt.events) widen(ev.t_ms);
  }
  if (min_t < 0) min_t = max_t = 0;
  const std::int64_t epoch = min_t;
  auto ts_us = [epoch](std::int64_t t) {
    return static_cast<double>(t - epoch) * 1000.0;
  };

  // pid 0 = coordinator, pid i+1 = worker i (owner-sorted): every process in
  // the fleet gets a disjoint pid, which is what makes the merged timeline
  // readable in Perfetto.
  telemetry::TraceEmitter em;
  em.set_process_name(0, "coordinator (fleet)");
  em.set_thread_name(0, 1, "sweep");
  std::map<std::string, std::uint32_t> pid_of;
  for (const std::string& owner : owners) {
    const auto pid = static_cast<std::uint32_t>(pid_of.size() + 1);
    pid_of[owner] = pid;
    em.set_process_name(pid, owner);
    em.set_thread_name(pid, 1, "rows");
    em.set_thread_name(pid, 2, "events");
  }

  em.instant(0, 1, "plan", ts_us(plan_ms >= 0 ? plan_ms : epoch));
  std::vector<std::int64_t> resolved_at;
  for (const Resolution& r : res) {
    if (r.seen && r.t_ms >= 0) resolved_at.push_back(r.t_ms);
  }
  std::sort(resolved_at.begin(), resolved_at.end());
  for (std::size_t i = 0; i < resolved_at.size(); ++i) {
    em.counter(0, "rows_resolved", ts_us(resolved_at[i]),
               static_cast<double>(i + 1));
  }

  for (std::size_t row = 0; row < n_rows; ++row) {
    const std::string name = table.row_workload(row).name + "/" +
                             std::string(to_string(table.row_technique(row)));
    for (std::size_t i = 0; i < leases[row].size(); ++i) {
      const LeaseEv& lv = leases[row][i];
      const auto it = pid_of.find(lv.owner);
      if (it == pid_of.end()) continue;
      const bool last = i + 1 == leases[row].size();
      std::int64_t end;
      const char* outcome;
      if (!last) {
        end = leases[row][i + 1].t_ms;  // Superseded: the next lease stole it.
        outcome = "lost";
      } else if (res[row].seen && res[row].t_ms >= lv.t_ms) {
        end = res[row].t_ms;
        outcome = res[row].done ? "done" : "failed";
      } else {
        end = max_t;  // Still in flight (or resolution untimed): open-ended.
        outcome = "open";
      }
      char args[160];
      std::snprintf(args, sizeof args,
                    "{\"row\":%zu,\"gen\":%llu,\"stolen\":%s,\"outcome\":\"%s\"}",
                    row, static_cast<unsigned long long>(lv.gen),
                    lv.gen > 1 ? "true" : "false", outcome);
      em.complete(it->second, 1, name, ts_us(lv.t_ms),
                  static_cast<double>(std::max<std::int64_t>(end - lv.t_ms, 0)) * 1000.0,
                  args);
      if (lv.gen > 1) em.instant(it->second, 1, "steal", ts_us(lv.t_ms));
    }
  }

  for (const WorkerTelemetry& wt : sidecars) {
    const std::uint32_t pid = pid_of[wt.owner];
    for (const resilience::EventRecord& ev : wt.events) {
      em.instant(pid, 2, ev.message, ts_us(ev.t_ms),
                 "{\"sev\":" + json_str(ev.severity) +
                     ",\"row\":" + std::to_string(json_row(ev.row)) + "}");
    }
    for (const telemetry::Snapshot& s : wt.snapshots) {
      for (const telemetry::MetricSample& m : s.metrics) {
        if (m.name == "worker.rows_completed") {
          em.counter(pid, "rows_done", ts_us(s.t_ms), m.value);
        }
      }
    }
  }

  if (!em.write_file(out_path)) {
    error = "cannot write " + out_path;
    return false;
  }
  error.clear();
  return true;
}

}  // namespace esteem::service

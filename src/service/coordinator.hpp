// Sweep-service coordinator: plans a sweep into a service directory, waits
// for cooperating workers to resolve every (workload x technique) row, and
// aggregates the journaled cells into the same SweepResult a single-process
// run_sweep would return — same CSV bytes, same report, same error list
// (DESIGN.md §12).
#pragma once

#include <cstdint>
#include <string>

#include "service/lease_table.hpp"

namespace esteem::service {

/// Exit codes extending the sweep protocol (0 = ok, 3 = run errors,
/// 5 = interrupted, 2 = usage/open failure — see tools/esteem_cli.cpp).
inline constexpr int kExitIntegrity = 6;  ///< Conflicting cell digests.
inline constexpr int kExitTimeout = 7;    ///< --timeout-ms elapsed unresolved.

struct CoordinatorOptions {
  std::string dir;       ///< Planned service directory.
  std::string csv_path;  ///< "" = no CSV.
  /// Merged OpenMetrics exposition written after a successful collect; ""
  /// falls back to the planned sweep's [observability] metrics_path (and ""
  /// there means none). Stderr-only notice — stdout report bytes are pinned.
  std::string metrics_path;
  std::uint32_t timeout_ms = 0;  ///< Give up waiting after this long; 0 = never.
  bool quiet = false;            ///< Suppress progress lines on stderr.
};

struct CollectResult {
  bool ok = false;  ///< Opened, fully resolved, no integrity conflict.
  bool interrupted = false;
  bool timed_out = false;
  bool integrity_error = false;
  std::string error;        ///< Human-readable reason when !ok.
  sim::SweepResult result;  ///< Aggregated rows (valid when ok).
};

/// Plans `spec` into `dir`: creates the directory and writes the service
/// journal header (spec bytes + sweep hash = the implicit row manifest).
/// Idempotent for the same sweep; refuses a dir holding a different one.
bool plan_service(const std::string& dir, const sim::SweepSpec& spec, std::string& error);

/// Pure aggregation of a table state into run_sweep's result shape: rows in
/// workload order, one deterministic RunError per failed workload (baseline
/// outranks techniques, techniques in spec order). Exposed for tests.
sim::SweepResult aggregate_rows(const LeaseTable& table, const TableState& state);

/// Blocks until every row is resolved (polling [service] poll_ms), then
/// aggregates and writes opts.csv_path. Returns early on shutdown, timeout,
/// an unreadable journal, or an integrity conflict.
CollectResult wait_and_collect(const CoordinatorOptions& opts);

/// Prints the figure report + error list for a collected sweep (mirroring
/// esteem_cli's sweep output) and returns the process exit code:
/// 0 ok, 3 run errors, 5 interrupted, 6 integrity, 7 timeout, 2 otherwise.
int report_collect(const CollectResult& collected, const CoordinatorOptions& opts);

}  // namespace esteem::service

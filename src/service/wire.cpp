#include "service/wire.hpp"

#include <stdexcept>

#include "common/bytes.hpp"

namespace esteem::service {

namespace {

void put_config(ByteWriter& w, const SystemConfig& c) {
  w.u32(c.ncores);
  w.f64(c.freq_ghz);
  w.u64(c.l1.geom.size_bytes);
  w.u32(c.l1.geom.ways);
  w.u32(c.l1.geom.line_bytes);
  w.u32(c.l1.latency_cycles);
  w.u64(c.l2.geom.size_bytes);
  w.u32(c.l2.geom.ways);
  w.u32(c.l2.geom.line_bytes);
  w.u32(c.l2.latency_cycles);
  w.u32(c.l2.banks);
  w.u32(c.l2.access_occupancy_cycles);
  w.f64(c.l2.refresh_occupancy_cycles);
  w.f64(c.l2.queue_pressure);
  w.u32(c.mem.latency_cycles);
  w.f64(c.mem.bandwidth_gbps);
  w.f64(c.edram.retention_us);
  w.u32(c.edram.rpv_phases);
  w.u32(c.edram.ecc_correctable);
  w.f64(c.edram.ecc_target_line_failure);
  w.f64(c.edram.decay_interval_retentions);
  w.f64(c.energy.refresh_scale);
  w.f64(c.energy.dyn_scale);
  w.f64(c.energy.leak_scale);
  w.f64(c.esteem.alpha);
  w.u32(c.esteem.a_min);
  w.u32(c.esteem.modules);
  w.u64(c.esteem.interval_cycles);
  w.u32(c.esteem.sampling_ratio);
  w.u8(c.esteem.nonlru_guard ? 1 : 0);
  w.u64(c.esteem.min_leader_samples);
  w.f64(c.esteem.history_weight);
  w.u32(c.esteem.max_way_delta);
  w.u32(c.esteem.hysteresis_intervals);
  w.u32(c.esteem.shrink_confirm_intervals);
  w.u8(c.faults.enabled ? 1 : 0);
  w.u64(c.faults.seed);
  w.f64(c.faults.median_multiple);
  w.f64(c.faults.sigma);
  w.u32(c.faults.correction_latency_cycles);
  w.u32(c.faults.disable_threshold);
  w.u32(c.faults.max_tracked_extension);
  w.u8(c.sampling.enabled ? 1 : 0);
  w.u64(c.sampling.window_instr);
  w.u64(c.sampling.detail_warm_instr);
  w.u64(c.sampling.ff_warm_instr);
  w.u64(c.sampling.cold_warm_instr);
  w.u64(c.sampling.period_instr);
  w.u32(c.resilience.run_deadline_ms);
  w.u32(c.resilience.max_retries);
  w.u32(c.resilience.backoff_ms);
  w.u32(c.resilience.max_consecutive_errors);
  w.u32(c.service.lease_ttl_ms);
  w.u32(c.service.heartbeat_ms);
  w.u32(c.service.poll_ms);
  w.u32(c.service.crash_after_rows);
  w.str(c.service.lock_mode);
  w.u32(c.observability.flush_ms);
  w.u32(c.observability.events_max);
  w.str(c.observability.metrics_path);
}

bool get_bool(ByteReader& r, bool& v) {
  std::uint8_t b = 0;
  if (!r.u8(b) || b > 1) return false;
  v = b != 0;
  return true;
}

bool get_config(ByteReader& r, SystemConfig& c) {
  return r.u32(c.ncores) && r.f64(c.freq_ghz) && r.u64(c.l1.geom.size_bytes) &&
         r.u32(c.l1.geom.ways) && r.u32(c.l1.geom.line_bytes) && r.u32(c.l1.latency_cycles) &&
         r.u64(c.l2.geom.size_bytes) && r.u32(c.l2.geom.ways) && r.u32(c.l2.geom.line_bytes) &&
         r.u32(c.l2.latency_cycles) && r.u32(c.l2.banks) && r.u32(c.l2.access_occupancy_cycles) &&
         r.f64(c.l2.refresh_occupancy_cycles) && r.f64(c.l2.queue_pressure) &&
         r.u32(c.mem.latency_cycles) && r.f64(c.mem.bandwidth_gbps) &&
         r.f64(c.edram.retention_us) && r.u32(c.edram.rpv_phases) &&
         r.u32(c.edram.ecc_correctable) && r.f64(c.edram.ecc_target_line_failure) &&
         r.f64(c.edram.decay_interval_retentions) && r.f64(c.energy.refresh_scale) &&
         r.f64(c.energy.dyn_scale) && r.f64(c.energy.leak_scale) && r.f64(c.esteem.alpha) &&
         r.u32(c.esteem.a_min) && r.u32(c.esteem.modules) && r.u64(c.esteem.interval_cycles) &&
         r.u32(c.esteem.sampling_ratio) && get_bool(r, c.esteem.nonlru_guard) &&
         r.u64(c.esteem.min_leader_samples) && r.f64(c.esteem.history_weight) &&
         r.u32(c.esteem.max_way_delta) && r.u32(c.esteem.hysteresis_intervals) &&
         r.u32(c.esteem.shrink_confirm_intervals) && get_bool(r, c.faults.enabled) &&
         r.u64(c.faults.seed) && r.f64(c.faults.median_multiple) && r.f64(c.faults.sigma) &&
         r.u32(c.faults.correction_latency_cycles) && r.u32(c.faults.disable_threshold) &&
         r.u32(c.faults.max_tracked_extension) && get_bool(r, c.sampling.enabled) &&
         r.u64(c.sampling.window_instr) && r.u64(c.sampling.detail_warm_instr) &&
         r.u64(c.sampling.ff_warm_instr) && r.u64(c.sampling.cold_warm_instr) &&
         r.u64(c.sampling.period_instr) && r.u32(c.resilience.run_deadline_ms) &&
         r.u32(c.resilience.max_retries) && r.u32(c.resilience.backoff_ms) &&
         r.u32(c.resilience.max_consecutive_errors) &&
         r.u32(c.service.lease_ttl_ms) && r.u32(c.service.heartbeat_ms) &&
         r.u32(c.service.poll_ms) && r.u32(c.service.crash_after_rows) &&
         r.str(c.service.lock_mode) &&
         r.u32(c.observability.flush_ms) && r.u32(c.observability.events_max) &&
         r.str(c.observability.metrics_path);
}

}  // namespace

std::string encode_sweep_spec(const sim::SweepSpec& spec) {
  ByteWriter w;
  w.u32(kWireVersion);
  put_config(w, spec.config);
  w.u64(spec.workloads.size());
  for (const auto& wl : spec.workloads) {
    w.str(wl.name);
    w.u64(wl.benchmarks.size());
    for (const auto& b : wl.benchmarks) w.str(b);
  }
  w.u64(spec.techniques.size());
  for (const auto t : spec.techniques) w.str(std::string(to_string(t)));
  w.u64(spec.seed);
  w.u64(spec.instr_per_core);
  w.u64(spec.warmup_instr_per_core);
  return w.take();
}

bool decode_sweep_spec(const std::string& bytes, sim::SweepSpec& out) {
  ByteReader r(bytes);
  std::uint32_t version = 0;
  if (!r.u32(version) || version != kWireVersion) return false;
  out = sim::SweepSpec{};
  if (!get_config(r, out.config)) return false;
  // Enum-like string fields must hold a known value, or a later
  // SystemConfig::validate() would throw on bytes decode() accepted.
  if (out.config.service.lock_mode != "append" &&
      out.config.service.lock_mode != "lockfile") {
    return false;
  }
  std::uint64_t n_workloads = 0;
  if (!r.u64(n_workloads)) return false;
  out.workloads.clear();
  // Counts come off the wire unvalidated; every element below costs at
  // least one byte, so a count larger than the remaining payload is
  // already garbage. Checking here keeps a flipped length byte from
  // turning reserve() into a multi-gigabyte allocation (totality pinned
  // by the wire fuzz test).
  if (n_workloads > bytes.size()) return false;
  out.workloads.reserve(n_workloads);
  for (std::uint64_t i = 0; i < n_workloads; ++i) {
    trace::Workload wl;
    std::uint64_t n_bench = 0;
    if (!r.str(wl.name) || !r.u64(n_bench)) return false;
    if (n_bench > bytes.size()) return false;
    wl.benchmarks.reserve(n_bench);
    for (std::uint64_t j = 0; j < n_bench; ++j) {
      std::string b;
      if (!r.str(b)) return false;
      wl.benchmarks.push_back(std::move(b));
    }
    out.workloads.push_back(std::move(wl));
  }
  std::uint64_t n_tech = 0;
  if (!r.u64(n_tech)) return false;
  out.techniques.clear();
  if (n_tech > bytes.size()) return false;
  out.techniques.reserve(n_tech);
  for (std::uint64_t i = 0; i < n_tech; ++i) {
    std::string label;
    if (!r.str(label)) return false;
    try {
      out.techniques.push_back(sim::parse_technique(label));
    } catch (const std::invalid_argument&) {
      return false;
    }
  }
  if (!r.u64(out.seed) || !r.u64(out.instr_per_core) || !r.u64(out.warmup_instr_per_core)) {
    return false;
  }
  // Workers evaluate one leased cell at a time; the coordinator's thread
  // count is not part of the sweep's identity.
  out.threads = 1;
  return r.done();
}

}  // namespace esteem::service

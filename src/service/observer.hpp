// Fleet observability plane over the sweep service (DESIGN.md §13).
//
// Two halves:
//
//   Observer (writer)  — owned by a worker. Appends to a per-owner *sidecar*
//     journal <dir>/telemetry/<owner>.sidecar.jsonl, never to the shared
//     service journal: CounterRegistry snapshots (kind "snap", the JSONL
//     codec of telemetry/export.hpp hex-wrapped into one record so a crash
//     tears at most the snapshot being written — the previous one stands)
//     and structured events (the shared "evt" record of
//     resilience/journal_file.hpp), capped at [observability] events_max.
//     Snapshot cadence is [observability] flush_ms, piggybacked on the
//     heartbeat thread via flush_due(); flush_ms = 0 keeps the whole plane
//     off. Everything is best-effort: an unwritable sidecar degrades to
//     running blind, it never fails the row.
//
//   Fleet aggregation (reader) — collect_fleet_status() replays the service
//     journal for per-worker attribution (heartbeat ages via lease-id ->
//     owner, rows done/failed/stolen) and folds in the sidecars (memo hit
//     rate, event feed), deriving a sweep ETA from observed row durations.
//     Rendered three ways that share one source of truth: progress_line()
//     (the coordinator's and `esteem_cli --serve`'s stderr heartbeat),
//     status_json() (versioned, stable key order — the `--status --json`
//     contract), and the human `--status` table. write_fleet_metrics()
//     merges every worker's latest snapshot under the exact semantics of
//     merge_snapshots() and writes the OpenMetrics exposition;
//     write_merged_trace() stitches the journal + sidecars into one
//     Perfetto-loadable Chrome trace (coordinator as pid 0, one pid per
//     worker).
//
// Observer-effect contract: nothing here touches the result path — sidecars
// are separate files, progress goes to stderr, and the service sweep's
// CSV/report bytes are pinned identical with the plane on and off.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "resilience/journal_file.hpp"
#include "service/lease_table.hpp"
#include "telemetry/export.hpp"

namespace esteem::service {

/// Sidecar directory of a service dir: <dir>/telemetry.
std::string telemetry_dir(const std::string& dir);

/// Sidecar journal path for one worker owner (owner is sanitized into a
/// file name the same way run labels are).
std::string sidecar_path(const std::string& dir, const std::string& owner);

/// Per-worker sidecar writer. Thread-safe: the worker loop appends events
/// and end-of-row snapshots while the heartbeat thread drives flush_due().
class Observer {
 public:
  /// Opens (creating the telemetry dir if needed) this owner's sidecar for
  /// appending. False with the reason in last_error() — callers warn and
  /// continue without observability.
  bool open(const std::string& dir, const std::string& owner,
            const ObservabilityConfig& cfg);

  bool enabled() const noexcept { return enabled_; }
  const std::string& last_error() const noexcept { return last_error_; }

  /// Appends one structured event (severity "info" | "warn" | "error").
  /// Silently dropped once events_max records were written (the drop count
  /// is visible as the observer.events_dropped counter).
  void event(const std::string& severity, const std::string& message,
             std::uint64_t lease_id = 0,
             std::uint64_t row = resilience::EventRecord::kNoRow);

  /// Snapshots the global CounterRegistry into one "snap" record now.
  void flush_snapshot();

  /// Heartbeat piggyback: flush_snapshot() when flush_ms elapsed since the
  /// last snapshot, else a no-op.
  void flush_due();

  /// Event/snapshot appends that failed (disk full, I/O error). Telemetry
  /// is best-effort: a full disk degrades to this count (and the
  /// observer.write_errors counter), never to a dead worker.
  std::size_t write_errors() const;

 private:
  void flush_locked(std::unique_lock<std::mutex>& lock);
  void note_write_error_locked();

  mutable std::mutex mutex_;
  resilience::JournalFile file_;
  std::string owner_;
  ObservabilityConfig cfg_;
  bool enabled_ = false;
  std::string last_error_;
  std::uint64_t seq_ = 0;
  std::size_t events_written_ = 0;
  std::size_t write_errors_ = 0;
  std::int64_t last_flush_ms_ = 0;
};

/// One worker's decoded sidecar.
struct WorkerTelemetry {
  std::string owner;
  std::vector<telemetry::Snapshot> snapshots;       ///< File (= seq) order.
  std::vector<resilience::EventRecord> events;      ///< File order.
  std::size_t damaged_lines = 0;                    ///< Torn/garbled records skipped.
};

/// Loads every sidecar under <dir>/telemetry, owner-sorted. Torn tails and
/// damaged interior lines are skipped and counted (and tick the shared
/// journal.damaged_lines counter), never fatal.
std::vector<WorkerTelemetry> load_worker_telemetry(const std::string& dir);

/// Health of one worker as seen from the journal + its sidecar.
struct WorkerHealth {
  std::string owner;
  std::int64_t last_seen_ms = 0;       ///< Latest journal/sidecar timestamp; 0 = never.
  std::int64_t heartbeat_age_ms = -1;  ///< now - last_seen; -1 = never seen.
  bool alive = false;                  ///< heartbeat age < lease TTL.
  std::size_t rows_done = 0;
  std::size_t rows_failed = 0;
  std::size_t rows_stolen = 0;         ///< Re-leases of expired foreign leases.
  double memo_hit_rate = -1.0;         ///< From the latest snapshot; -1 = unknown.
  std::size_t events = 0;              ///< Sidecar event records.
  std::size_t sidecar_damaged = 0;
};

/// The fleet view `--status`, `--status --json`, and the coordinator's
/// progress line all render from.
struct FleetStatus {
  std::uint64_t sweep_hash = 0;
  std::int64_t now_ms = 0;
  std::size_t rows = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t leased = 0;  ///< Unresolved rows under a live lease.
  bool conflict = false;
  std::size_t damaged_lines = 0;  ///< Service journal + all sidecars.
  /// Milliseconds to resolution at the observed per-row duration spread over
  /// live workers; -1 = unknown (no finished row yet, or nobody alive),
  /// 0 = already resolved.
  std::int64_t eta_ms = -1;
  std::vector<WorkerHealth> workers;  ///< Owner-sorted.
  /// Merged sidecar event feed, time-sorted, newest kept (capped).
  std::vector<resilience::EventRecord> recent_events;
};

/// Cap on FleetStatus::recent_events (and the events array of status_json).
inline constexpr std::size_t kStatusEventCap = 50;

/// Aggregates an already-loaded table state with a journal replay and the
/// sidecars into the fleet view. `now_ms` is caller-provided so tests can
/// pin heartbeat ages and ETAs.
FleetStatus collect_fleet_status(const LeaseTable& table, const TableState& state,
                                 std::int64_t now_ms);

/// Machine-readable fleet status: single line, versioned ("v":1), keys in a
/// fixed documented order so downstream parsers (and the CI drill) cannot
/// skew between esteem_workerd --status --json and esteem_cli --serve.
std::string status_json(const FleetStatus& fs);

/// One-line human progress summary (no trailing newline) — the shared
/// stderr heartbeat of the coordinator, --serve, and --status headers.
std::string progress_line(const FleetStatus& fs);

/// Merges every worker's latest snapshot (exact merge semantics of
/// telemetry/export.hpp) and writes the OpenMetrics exposition to `path`.
/// False with `error` set when no worker wrote a snapshot yet or the file
/// cannot be written.
bool write_fleet_metrics(const std::string& dir, const std::string& path,
                         std::string& error);

/// Stitches the service journal and all sidecars into one Chrome trace:
/// pid 0 is the coordinator (plan instant + rows_resolved counter), pid i+1
/// is worker i (owner-sorted); per worker, tid 1 carries lease->resolution
/// row spans ("workload/technique", lost leases marked), tid 2 carries
/// event instants, and a rows_done counter tracks its snapshots. Timestamps
/// are wall milliseconds rebased to the earliest journal record. False with
/// `error` set when the journal is unreadable or the file cannot be written.
bool write_merged_trace(const std::string& dir, const std::string& out_path,
                        std::string& error);

}  // namespace esteem::service

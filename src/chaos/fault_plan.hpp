// Deterministic fault-injection plans for the durable-I/O seam (DESIGN.md
// §15). Every piece of durable I/O in the repo — journal appends, memo-cache
// stores, lease-table writes, observer sidecar flushes, lock files — passes
// through a named *injection point* (see file_ops.hpp). When a FaultPlan is
// installed, each point consults the plan and may receive an Injection:
// an errno to fake, a short (torn) write, a rename that lies about failing,
// or an immediate SIGKILL at a named crashpoint.
//
// Plans are deterministic by construction so every failure an explorer or CI
// job finds is replayable from a single (schedule, seed) pair:
//
//   - ScheduleFaultPlan: parsed from "point@hit=action;..." — the exact
//     occurrence of the exact point misbehaves, everything else is clean.
//   - RandomFaultPlan: a seeded counter-based RNG decides per consultation,
//     capped at a fixed injection budget so a run can always finish.
//
// When no plan is installed the seam is disarmed: armed() is a single
// relaxed atomic load and every px_* wrapper falls straight through to the
// real syscall (pinned byte-identical by test_chaos).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace esteem::chaos {

/// What a seam operation at an injection point does normally.
enum class OpKind { kOpen, kWrite, kFsync, kRename, kCrash };

/// One registered injection point: a stable name the explorer enumerates
/// and a one-line summary for --list-points and the DESIGN.md table.
struct PointInfo {
  const char* name;
  OpKind kind;
  const char* summary;
};

/// Central registry of every injection point the seam consults. The
/// esteem_chaos explorer derives its one-fault-per-point schedule set from
/// this table, so adding a seam call site means adding a row here.
const std::vector<PointInfo>& injection_points();

/// The verdict a plan hands back for one consultation.
struct Injection {
  enum class Action {
    kNone,            ///< Behave normally.
    kErrno,           ///< Fail the operation with `err` (no side effect).
    kShortWrite,      ///< Physically write `bytes` bytes, then fail with EIO.
    kRenameDuplicate, ///< Perform the rename, then report it as failed (EIO).
    kCrash,           ///< raise(SIGKILL) at this point.
  };
  Action action = Action::kNone;
  int err = 0;
  std::size_t bytes = 0;

  bool none() const noexcept { return action == Action::kNone; }
};

/// A deterministic oracle mapping (point, occurrence) -> Injection.
/// Implementations must be thread-safe: journals append from worker and
/// heartbeat threads concurrently.
class FaultPlan {
 public:
  virtual ~FaultPlan();
  virtual Injection at(const std::string& point) = 0;
};

/// True when a plan is installed; one relaxed load, safe on hot paths.
bool armed() noexcept;

/// Installs `plan` process-wide (replacing any previous plan); nullptr
/// disarms. Not meant for concurrent install/uninstall with in-flight I/O —
/// tests and the explorer install before the workload starts.
void install_plan(std::unique_ptr<FaultPlan> plan);
void disarm();

/// Consults the installed plan; kNone when disarmed. Counts non-kNone
/// verdicts in injection_count().
Injection consult(const std::string& point);

/// Total injections delivered since the last install; the explorer uses
/// this to detect schedules that never reached their point (vacuous
/// coverage).
std::uint64_t injection_count() noexcept;

/// Deterministic single/multi-fault schedule:
///   schedule := entry (';' entry)*
///   entry    := point '@' hit '=' action | point '=' action
///   hit      := decimal occurrence index (0-based) | '*' (every occurrence)
///   action   := enospc | eio | short:<bytes> | fail | dup | crash
/// "fail" fakes EIO; "dup" performs a rename but reports failure. An entry
/// without '@hit' means hit 0.
class ScheduleFaultPlan final : public FaultPlan {
 public:
  struct Entry {
    std::string point;
    std::uint64_t hit = 0;
    bool every_hit = false;
    Injection injection;
  };

  /// Parses `schedule`; returns nullptr and fills `error` on bad syntax.
  static std::unique_ptr<ScheduleFaultPlan> parse(const std::string& schedule,
                                                  std::string& error);

  Injection at(const std::string& point) override;

 private:
  explicit ScheduleFaultPlan(std::vector<Entry> entries);
  std::vector<Entry> entries_;
  std::mutex mutex_;
  std::map<std::string, std::uint64_t> hits_;  ///< Consultations per point.
};

/// Seeded multi-fault plan: each consultation draws from a counter-based
/// splitmix64 stream over (seed, sequence) and misbehaves with probability
/// `rate_percent`/100, choosing an action appropriate to the point's OpKind.
/// Never crashes (crash schedules come from ScheduleFaultPlan so the
/// explorer can fork for them deliberately) and stops injecting after
/// `max_injections` faults so runs always terminate.
class RandomFaultPlan final : public FaultPlan {
 public:
  RandomFaultPlan(std::uint64_t seed, unsigned rate_percent,
                  unsigned max_injections);
  Injection at(const std::string& point) override;

 private:
  std::uint64_t seed_;
  unsigned rate_percent_;
  std::mutex mutex_;
  std::uint64_t sequence_ = 0;
  unsigned budget_;
};

/// Installs a plan from the environment, for injecting into unmodified CLI
/// runs: ESTEEM_CHAOS_SCHEDULE takes a schedule string; otherwise
/// ESTEEM_CHAOS_RANDOM_SEED (with optional ESTEEM_CHAOS_RATE percent,
/// default 3, and ESTEEM_CHAOS_MAX, default 6) arms a RandomFaultPlan.
/// Returns true when a plan was installed; prints to stderr and returns
/// false on a malformed schedule.
bool install_from_env();

}  // namespace esteem::chaos

// The durable-I/O seam (DESIGN.md §15): thin wrappers around the syscalls
// the journal/memo/service stack uses for persistence. Each wrapper names
// its call site (an injection point from fault_plan.hpp's registry); with
// no fault plan installed the wrappers cost one relaxed atomic load and
// fall straight through to the real call — chaos-off behavior is pinned
// byte-identical by test_chaos. With a plan installed, the point consults
// it and may fake an errno, tear a write short, lie about a rename, or die
// on the spot.
#pragma once

#include <filesystem>
#include <string>
#include <system_error>

#include "chaos/fault_plan.hpp"

#if !defined(_WIN32)
#include <sys/types.h>
#include <unistd.h>
#endif

namespace esteem::chaos {

#if !defined(_WIN32)

namespace detail {
int chaos_open(const std::string& point, const char* path, int flags,
               unsigned mode);
ssize_t chaos_write(const std::string& point, int fd, const void* buf,
                    std::size_t count);
int chaos_fsync(const std::string& point, int fd);
void chaos_rename(const std::string& point, const std::filesystem::path& from,
                  const std::filesystem::path& to, std::error_code& ec);
void chaos_crashpoint(const std::string& point);
}  // namespace detail

/// open(2); kErrno injections fail without touching the filesystem.
int px_open(const std::string& point, const char* path, int flags,
            unsigned mode);

/// write(2); kShortWrite injections physically write the first N bytes and
/// then fail with the injected errno — exactly the torn record a crash
/// mid-write leaves behind.
inline ssize_t px_write(const std::string& point, int fd, const void* buf,
                        std::size_t count) {
  if (!armed()) return ::write(fd, buf, count);
  return detail::chaos_write(point, fd, buf, count);
}

/// fsync(2); kErrno injections report failure after the data already hit the
/// page cache, the classic "fsync failed but the bytes may still land" case.
inline int px_fsync(const std::string& point, int fd) {
  if (!armed()) return ::fsync(fd);
  return detail::chaos_fsync(point, fd);
}

/// std::filesystem::rename; kRenameDuplicate performs the rename and then
/// reports failure, modeling a retried rename whose first attempt's reply
/// was lost.
inline void px_rename(const std::string& point,
                      const std::filesystem::path& from,
                      const std::filesystem::path& to, std::error_code& ec) {
  if (!armed()) {
    std::filesystem::rename(from, to, ec);
    return;
  }
  detail::chaos_rename(point, from, to, ec);
}

/// Named crashpoint: no-op unless an installed plan says kCrash here, in
/// which case the process raises SIGKILL (no atexit, no flush — the honest
/// power-loss model).
inline void crashpoint(const std::string& point) {
  if (!armed()) return;
  detail::chaos_crashpoint(point);
}

#else  // defined(_WIN32)

// Non-POSIX fallbacks: the chaos layer targets the POSIX builds CI runs;
// elsewhere the filesystem-level wrappers pass straight through.
inline void px_rename(const std::string&, const std::filesystem::path& from,
                      const std::filesystem::path& to, std::error_code& ec) {
  std::filesystem::rename(from, to, ec);
}

inline void crashpoint(const std::string&) {}

#endif  // !defined(_WIN32)

}  // namespace esteem::chaos

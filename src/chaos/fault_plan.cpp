#include "chaos/fault_plan.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace esteem::chaos {

namespace {

// The installed plan. A raw pointer behind an atomic keeps armed() to one
// relaxed load; the unique_ptr below owns the object so install/disarm are
// leak-free. Plans are installed before the faulted workload starts and
// uninstalled after it ends, so no reader can hold a stale pointer across a
// swap in practice (tests and the explorer respect this contract).
std::atomic<FaultPlan*> g_plan{nullptr};
std::unique_ptr<FaultPlan> g_owner;
std::atomic<std::uint64_t> g_injections{0};

}  // namespace

const std::vector<PointInfo>& injection_points() {
  // One row per seam call site. Domains: "sweep" = the sweep journal the CLI
  // resumes from, "lease" = the service lease table, "sidecar" = observer
  // per-worker telemetry journals, "memo" = the run-memo cache store path,
  // "lock" = the lock-file lease fallback. A plain JournalFile outside those
  // subsystems uses the default "journal" domain, which is deliberately not
  // registered (nothing durable ships with it).
  static const std::vector<PointInfo> kPoints = {
      {"sweep.open", OpKind::kOpen, "open/create the sweep journal"},
      {"sweep.append.write", OpKind::kWrite, "append a sweep journal record"},
      {"sweep.append.fsync", OpKind::kFsync, "fsync after a sweep append"},
      {"sweep.crash.before_append", OpKind::kCrash,
       "die before a sweep record is written"},
      {"sweep.crash.after_append", OpKind::kCrash,
       "die after a sweep record is durable"},
      {"lease.open", OpKind::kOpen, "open/create the service lease journal"},
      {"lease.append.write", OpKind::kWrite, "append a lease-table record"},
      {"lease.append.fsync", OpKind::kFsync, "fsync after a lease append"},
      {"lease.crash.before_append", OpKind::kCrash,
       "die before a lease record is written"},
      {"lease.crash.after_append", OpKind::kCrash,
       "die after a lease record is durable"},
      {"sidecar.open", OpKind::kOpen, "open/create an observer sidecar"},
      {"sidecar.append.write", OpKind::kWrite,
       "append an observer event/snapshot"},
      {"sidecar.append.fsync", OpKind::kFsync, "fsync after a sidecar append"},
      {"sidecar.crash.before_append", OpKind::kCrash,
       "die before a sidecar record is written"},
      {"sidecar.crash.after_append", OpKind::kCrash,
       "die after a sidecar record is durable"},
      {"memo.tmp.write", OpKind::kWrite, "write the memo-cache temp file"},
      {"memo.tmp.fsync", OpKind::kFsync, "fsync the memo temp file"},
      {"memo.rename", OpKind::kRename, "publish the memo file via rename"},
      {"memo.crash.before_rename", OpKind::kCrash,
       "die with only the memo temp file on disk"},
      {"memo.crash.after_rename", OpKind::kCrash,
       "die right after the memo file is published"},
      {"lock.open", OpKind::kOpen, "create the lease lock file (O_EXCL)"},
      {"lock.crash.held", OpKind::kCrash, "die while holding the lock file"},
  };
  return kPoints;
}

FaultPlan::~FaultPlan() = default;

bool armed() noexcept {
  return g_plan.load(std::memory_order_relaxed) != nullptr;
}

void install_plan(std::unique_ptr<FaultPlan> plan) {
  g_plan.store(nullptr, std::memory_order_release);
  g_owner = std::move(plan);
  g_injections.store(0, std::memory_order_relaxed);
  g_plan.store(g_owner.get(), std::memory_order_release);
}

void disarm() { install_plan(nullptr); }

Injection consult(const std::string& point) {
  FaultPlan* plan = g_plan.load(std::memory_order_acquire);
  if (plan == nullptr) return {};
  Injection inj = plan->at(point);
  if (!inj.none()) g_injections.fetch_add(1, std::memory_order_relaxed);
  return inj;
}

std::uint64_t injection_count() noexcept {
  return g_injections.load(std::memory_order_relaxed);
}

namespace {

bool parse_action(const std::string& text, Injection& out, std::string& error) {
  using Action = Injection::Action;
  if (text == "enospc") {
    out.action = Action::kErrno;
    out.err = ENOSPC;
  } else if (text == "eio" || text == "fail") {
    out.action = Action::kErrno;
    out.err = EIO;
  } else if (text.rfind("short:", 0) == 0) {
    char* end = nullptr;
    const unsigned long long n = std::strtoull(text.c_str() + 6, &end, 10);
    if (end == text.c_str() + 6 || *end != '\0') {
      error = "bad short-write byte count in '" + text + "'";
      return false;
    }
    out.action = Action::kShortWrite;
    out.err = EIO;
    out.bytes = static_cast<std::size_t>(n);
  } else if (text == "dup") {
    out.action = Action::kRenameDuplicate;
    out.err = EIO;
  } else if (text == "crash") {
    out.action = Action::kCrash;
  } else {
    error = "unknown action '" + text +
            "' (want enospc|eio|short:<bytes>|fail|dup|crash)";
    return false;
  }
  return true;
}

}  // namespace

ScheduleFaultPlan::ScheduleFaultPlan(std::vector<Entry> entries)
    : entries_(std::move(entries)) {}

std::unique_ptr<ScheduleFaultPlan> ScheduleFaultPlan::parse(
    const std::string& schedule, std::string& error) {
  std::vector<Entry> entries;
  std::size_t pos = 0;
  while (pos <= schedule.size()) {
    std::size_t end = schedule.find(';', pos);
    if (end == std::string::npos) end = schedule.size();
    const std::string item = schedule.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) {
      if (pos > schedule.size()) break;
      error = "empty schedule entry";
      return nullptr;
    }
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= item.size()) {
      error = "schedule entry '" + item + "' is not point[@hit]=action";
      return nullptr;
    }
    Entry entry;
    std::string point = item.substr(0, eq);
    const std::size_t at = point.find('@');
    if (at != std::string::npos) {
      const std::string hit = point.substr(at + 1);
      point.resize(at);
      if (hit == "*") {
        entry.every_hit = true;
      } else {
        char* endp = nullptr;
        entry.hit = std::strtoull(hit.c_str(), &endp, 10);
        if (hit.empty() || endp != hit.c_str() + hit.size()) {
          error = "bad hit index in '" + item + "'";
          return nullptr;
        }
      }
    }
    if (point.empty()) {
      error = "empty point name in '" + item + "'";
      return nullptr;
    }
    entry.point = std::move(point);
    if (!parse_action(item.substr(eq + 1), entry.injection, error)) {
      return nullptr;
    }
    entries.push_back(std::move(entry));
    if (end == schedule.size()) break;
  }
  if (entries.empty()) {
    error = "empty schedule";
    return nullptr;
  }
  return std::unique_ptr<ScheduleFaultPlan>(
      new ScheduleFaultPlan(std::move(entries)));
}

Injection ScheduleFaultPlan::at(const std::string& point) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t hit = hits_[point]++;
  for (const Entry& entry : entries_) {
    if (entry.point != point) continue;
    if (entry.every_hit || entry.hit == hit) return entry.injection;
  }
  return {};
}

RandomFaultPlan::RandomFaultPlan(std::uint64_t seed, unsigned rate_percent,
                                 unsigned max_injections)
    : seed_(seed), rate_percent_(rate_percent), budget_(max_injections) {}

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

OpKind point_kind(const std::string& point) {
  for (const PointInfo& info : injection_points()) {
    if (point == info.name) return info.kind;
  }
  // Unregistered domains (plain "journal.*") behave like their suffix says.
  if (point.find(".fsync") != std::string::npos) return OpKind::kFsync;
  if (point.find(".rename") != std::string::npos) return OpKind::kRename;
  if (point.find(".open") != std::string::npos) return OpKind::kOpen;
  if (point.find(".crash.") != std::string::npos) return OpKind::kCrash;
  return OpKind::kWrite;
}

}  // namespace

Injection RandomFaultPlan::at(const std::string& point) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t draw = splitmix64(seed_ ^ splitmix64(sequence_++));
  if (budget_ == 0) return {};
  const OpKind kind = point_kind(point);
  if (kind == OpKind::kCrash) return {};  // Crashes need a forked harness.
  if (draw % 100 >= rate_percent_) return {};
  --budget_;
  Injection inj;
  const std::uint64_t pick = splitmix64(draw);
  switch (kind) {
    case OpKind::kWrite:
      if (pick % 3 == 0) {
        inj.action = Injection::Action::kShortWrite;
        inj.err = EIO;
        inj.bytes = static_cast<std::size_t>(pick / 3 % 24);
      } else {
        inj.action = Injection::Action::kErrno;
        inj.err = (pick % 3 == 1) ? ENOSPC : EIO;
      }
      break;
    case OpKind::kRename:
      inj.action = (pick % 2 == 0) ? Injection::Action::kRenameDuplicate
                                   : Injection::Action::kErrno;
      inj.err = EIO;
      break;
    case OpKind::kOpen:
    case OpKind::kFsync:
      inj.action = Injection::Action::kErrno;
      inj.err = (pick % 2 == 0) ? ENOSPC : EIO;
      break;
    case OpKind::kCrash:
      break;
  }
  return inj;
}

bool install_from_env() {
  const char* schedule = std::getenv("ESTEEM_CHAOS_SCHEDULE");
  if (schedule != nullptr && *schedule != '\0') {
    std::string error;
    auto plan = ScheduleFaultPlan::parse(schedule, error);
    if (plan == nullptr) {
      std::fprintf(stderr, "chaos: bad ESTEEM_CHAOS_SCHEDULE: %s\n",
                   error.c_str());
      return false;
    }
    install_plan(std::move(plan));
    return true;
  }
  const char* seed_text = std::getenv("ESTEEM_CHAOS_RANDOM_SEED");
  if (seed_text != nullptr && *seed_text != '\0') {
    char* end = nullptr;
    const std::uint64_t seed = std::strtoull(seed_text, &end, 10);
    if (end == seed_text || *end != '\0') {
      std::fprintf(stderr, "chaos: bad ESTEEM_CHAOS_RANDOM_SEED '%s'\n",
                   seed_text);
      return false;
    }
    unsigned rate = 3;
    unsigned max_inj = 6;
    if (const char* r = std::getenv("ESTEEM_CHAOS_RATE")) {
      rate = static_cast<unsigned>(std::strtoul(r, nullptr, 10));
    }
    if (const char* m = std::getenv("ESTEEM_CHAOS_MAX")) {
      max_inj = static_cast<unsigned>(std::strtoul(m, nullptr, 10));
    }
    install_plan(std::make_unique<RandomFaultPlan>(seed, rate, max_inj));
    return true;
  }
  return false;
}

}  // namespace esteem::chaos

#include "chaos/file_ops.hpp"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace esteem::chaos {

#if !defined(_WIN32)

namespace detail {

namespace {

[[noreturn]] void die(const std::string& point) {
  std::fprintf(stderr, "[chaos] crash at %s\n", point.c_str());
  std::fflush(nullptr);
  ::raise(SIGKILL);
  std::abort();  // Unreachable unless SIGKILL is somehow ignored.
}

}  // namespace

void chaos_crashpoint(const std::string& point) {
  const Injection inj = consult(point);
  if (inj.action == Injection::Action::kCrash) die(point);
}

int chaos_open(const std::string& point, const char* path, int flags,
               unsigned mode) {
  const Injection inj = consult(point);
  switch (inj.action) {
    case Injection::Action::kCrash:
      die(point);
    case Injection::Action::kErrno:
    case Injection::Action::kShortWrite:
    case Injection::Action::kRenameDuplicate:
      errno = inj.err != 0 ? inj.err : EIO;
      return -1;
    case Injection::Action::kNone:
      break;
  }
  return ::open(path, flags, static_cast<mode_t>(mode));
}

ssize_t chaos_write(const std::string& point, int fd, const void* buf,
                    std::size_t count) {
  const Injection inj = consult(point);
  switch (inj.action) {
    case Injection::Action::kCrash:
      die(point);
    case Injection::Action::kShortWrite: {
      // Physically land the first `bytes` bytes, then fail: the on-disk
      // state is the torn prefix a crash mid-write leaves behind.
      std::size_t torn = inj.bytes < count ? inj.bytes : count;
      std::size_t off = 0;
      while (off < torn) {
        const ssize_t n = ::write(fd, static_cast<const char*>(buf) + off,
                                  torn - off);
        if (n < 0) {
          if (errno == EINTR) continue;
          break;
        }
        off += static_cast<std::size_t>(n);
      }
      errno = inj.err != 0 ? inj.err : EIO;
      return -1;
    }
    case Injection::Action::kErrno:
    case Injection::Action::kRenameDuplicate:
      errno = inj.err != 0 ? inj.err : EIO;
      return -1;
    case Injection::Action::kNone:
      break;
  }
  return ::write(fd, buf, count);
}

int chaos_fsync(const std::string& point, int fd) {
  const Injection inj = consult(point);
  switch (inj.action) {
    case Injection::Action::kCrash:
      die(point);
    case Injection::Action::kErrno:
    case Injection::Action::kShortWrite:
    case Injection::Action::kRenameDuplicate:
      errno = inj.err != 0 ? inj.err : EIO;
      return -1;
    case Injection::Action::kNone:
      break;
  }
  return ::fsync(fd);
}

void chaos_rename(const std::string& point, const std::filesystem::path& from,
                  const std::filesystem::path& to, std::error_code& ec) {
  const Injection inj = consult(point);
  switch (inj.action) {
    case Injection::Action::kCrash:
      die(point);
    case Injection::Action::kRenameDuplicate:
      // The rename happens, then its success report is lost.
      std::filesystem::rename(from, to, ec);
      if (!ec) ec = std::error_code(inj.err != 0 ? inj.err : EIO,
                                    std::generic_category());
      return;
    case Injection::Action::kErrno:
    case Injection::Action::kShortWrite:
      ec = std::error_code(inj.err != 0 ? inj.err : EIO,
                           std::generic_category());
      return;
    case Injection::Action::kNone:
      break;
  }
  std::filesystem::rename(from, to, ec);
}

}  // namespace detail

int px_open(const std::string& point, const char* path, int flags,
            unsigned mode) {
  if (!armed()) return ::open(path, flags, static_cast<mode_t>(mode));
  return detail::chaos_open(point, path, flags, mode);
}

#endif  // !defined(_WIN32)

}  // namespace esteem::chaos

#include "cpu/system.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"
#include "trace/file_trace.hpp"
#include "trace/spec_profiles.hpp"

namespace esteem::cpu {

System::System(const SystemConfig& cfg, Technique technique,
               const std::vector<std::string>& benchmarks, std::uint64_t seed)
    : cfg_(cfg), mem_(cfg, technique) {
  if (benchmarks.size() != cfg.ncores) {
    throw std::invalid_argument("System: need one benchmark per core");
  }
  const trace::GeneratorContext ctx{cfg.l2.geom.sets(), cfg.l2.geom.line_bytes};
  std::uint64_t seed_state = seed;
  cores_.reserve(cfg.ncores);
  for (std::uint32_t c = 0; c < cfg.ncores; ++c) {
    // "trace:<path>" replays an external trace file; anything else is a
    // Table 1 benchmark name or acronym.
    std::unique_ptr<trace::AccessGenerator> gen;
    if (benchmarks[c].rfind("trace:", 0) == 0) {
      gen = std::make_unique<trace::FileTraceGenerator>(benchmarks[c].substr(6));
      (void)splitmix64(seed_state);  // keep per-core seed stream aligned
    } else {
      const auto& profile = trace::profile_by_name(benchmarks[c]);
      gen = trace::make_generator(profile, ctx, splitmix64(seed_state));
    }
    // Disjoint per-core address spaces for multiprogrammed workloads.
    cores_.emplace_back(c, std::move(gen), static_cast<block_t>(c) << 44);
  }
}

RawRunResult System::run(const RunOptions& options) {
  const cycle_t interval = cfg_.esteem.interval_cycles;

  // Warm-up: fill the caches at full associativity, then zero all counters
  // (the paper fast-forwards before measuring, §6.4).
  const instr_t warmup = options.warmup_instr_per_core;
  if (warmup > 0) {
    std::size_t cold = cores_.size();
    std::vector<bool> warm(cores_.size(), false);
    while (cold > 0) {
      std::size_t next = 0;
      for (std::size_t c = 1; c < cores_.size(); ++c) {
        if (!warm[c] && (warm[next] || cores_[c].cycles() < cores_[next].cycles())) {
          next = c;
        }
      }
      cores_[next].step(mem_);
      if (!warm[next] && cores_[next].instret() >= warmup) {
        warm[next] = true;
        --cold;
      }
    }
  }
  cycle_t measure_start = cores_[0].cycles();
  for (std::size_t c = 1; c < cores_.size(); ++c) {
    measure_start = std::min(measure_start, cores_[c].cycles());
  }
  mem_.reset_measurement(measure_start);
  if (options.telemetry != nullptr) {
    // Attached after the measurement reset so interval deltas and trace
    // timestamps cover exactly the measured window.
    mem_.set_telemetry(options.telemetry, measure_start);
  }

  const instr_t target = warmup + options.instr_per_core;
  std::vector<instr_t> base_instr(cores_.size());
  std::vector<cycle_t> base_cycles(cores_.size());
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    base_instr[c] = cores_[c].instret();
    base_cycles[c] = cores_[c].cycles();
  }

  RawRunResult result;
  result.instr_per_core = options.instr_per_core;
  result.ipc.assign(cores_.size(), 0.0);
  std::vector<bool> recorded(cores_.size(), false);
  std::size_t unfinished = cores_.size();

  cycle_t next_interval = measure_start + interval;
  while (unfinished > 0) {
    // Step the core with the smallest local clock for causal consistency.
    std::size_t next = 0;
    for (std::size_t c = 1; c < cores_.size(); ++c) {
      if (cores_[c].cycles() < cores_[next].cycles()) next = c;
    }
    Core& core = cores_[next];
    core.step(mem_);

    if (!recorded[next] && core.instret() >= target) {
      recorded[next] = true;
      result.ipc[next] =
          static_cast<double>(core.instret() - base_instr[next]) /
          static_cast<double>(core.cycles() - base_cycles[next]);
      --unfinished;
    }

    // Wall clock = slowest core's position; interval boundaries fire when
    // every core has passed them.
    cycle_t wall = cores_[0].cycles();
    for (std::size_t c = 1; c < cores_.size(); ++c) {
      wall = std::min(wall, cores_[c].cycles());
    }
    while (wall >= next_interval) {
      mem_.tick_interval(next_interval);
      if (options.record_timeline) {
        result.timeline.push_back(IntervalSample{
            next_interval, mem_.active_fraction(), mem_.module_active_ways()});
      }
      next_interval += interval;
    }
  }

  cycle_t wall_end = 0;
  for (const Core& core : cores_) wall_end = std::max(wall_end, core.cycles());
  mem_.finish(wall_end);

  result.wall_cycles = wall_end - measure_start;
  result.total_instructions = options.instr_per_core * cores_.size();
  result.counters = mem_.energy_counters(wall_end);
  result.mem_stats = mem_.stats();
  result.refreshes = mem_.refreshes();
  result.demand_misses = mem_.stats().demand_l2_misses;
  result.faults = mem_.fault_counters();
  result.disabled_slots = mem_.disabled_slots();
  result.avg_active_ratio =
      result.counters.seconds > 0.0 ? result.counters.fa_seconds / result.counters.seconds
                                    : 1.0;
  return result;
}

}  // namespace esteem::cpu

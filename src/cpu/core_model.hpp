// In-order core model with non-memory-instruction batching.
//
// Every non-memory instruction retires in one cycle; memory operations pay
// the hierarchy latency returned by MemorySystem. Trace generators emit
// (gap, memory-op) pairs, so the simulator's cost per retired instruction is
// amortized to O(1) over the gap.
#pragma once

#include <cstdint>
#include <memory>

#include "common/types.hpp"
#include "cpu/memory_system.hpp"
#include "trace/access.hpp"

namespace esteem::cpu {

class Core {
 public:
  /// `block_offset` isolates this core's address space in multiprogrammed
  /// runs (each Table 1 pair runs two independent benchmarks).
  Core(std::uint32_t id, std::unique_ptr<trace::AccessGenerator> generator,
       block_t block_offset);

  /// Executes the next (gap, memory-op) batch; advances the local clock.
  void step(MemorySystem& mem);

  std::uint32_t id() const noexcept { return id_; }
  cycle_t cycles() const noexcept { return cycles_; }
  instr_t instret() const noexcept { return instret_; }

 private:
  std::uint32_t id_;
  std::unique_ptr<trace::AccessGenerator> generator_;
  block_t block_offset_;
  cycle_t cycles_ = 0;
  instr_t instret_ = 0;
};

}  // namespace esteem::cpu

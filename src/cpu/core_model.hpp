// In-order core model with non-memory-instruction batching.
//
// Every non-memory instruction retires in one cycle; memory operations pay
// the hierarchy latency returned by MemorySystem. Trace generators emit
// (gap, memory-op) pairs, so the simulator's cost per retired instruction is
// amortized to O(1) over the gap.
#pragma once

#include <cstdint>
#include <memory>

#include "common/types.hpp"
#include "cpu/memory_system.hpp"
#include "trace/access.hpp"

namespace esteem::cpu {

class Core {
 public:
  /// `block_offset` isolates this core's address space in multiprogrammed
  /// runs (each Table 1 pair runs two independent benchmarks).
  Core(std::uint32_t id, std::unique_ptr<trace::AccessGenerator> generator,
       block_t block_offset);

  /// Executes the next (gap, memory-op) batch; advances the local clock.
  void step(MemorySystem& mem);

  /// Sampling fast-forward: advances the generator past `n` instructions
  /// analytically (no memory accesses reach the hierarchy) and moves the
  /// local clock at `cpi` cycles per instruction — the executor's running
  /// CPI estimate, so interval-based machinery downstream of the clock
  /// (refresh epochs, ESTEEM intervals) stays aligned with real time.
  void skip(instr_t n, double cpi);

  /// Sampling functional warming: executes the next batch against the
  /// hierarchy so cache/refresh/profiler state updates, but charges the
  /// estimated `cpi` instead of the measured latency (timing is not being
  /// measured in this segment, and warming-mode latencies are nominal).
  void step_warm(MemorySystem& mem, double cpi);

  /// Sampling clock re-alignment: idles the core forward to `t` without
  /// retiring instructions or consuming references. Multicore sampling
  /// aligns core clocks at segment boundaries — per-core CPI estimates
  /// differ, so analytic advances skew the cores apart in time, and the
  /// shared bank/channel model would charge that skew to the lagging
  /// core's next access as queueing delay.
  void idle_until(cycle_t t) noexcept {
    if (t > cycles_) cycles_ = t;
  }

  std::uint32_t id() const noexcept { return id_; }
  cycle_t cycles() const noexcept { return cycles_; }
  instr_t instret() const noexcept { return instret_; }

 private:
  void advance_clock(instr_t n, double cpi);

  std::uint32_t id_;
  std::unique_ptr<trace::AccessGenerator> generator_;
  block_t block_offset_;
  cycle_t cycles_ = 0;
  instr_t instret_ = 0;
  double clock_carry_ = 0.0;  ///< Fractional cycles owed by CPI-scaled advances.
};

}  // namespace esteem::cpu

// Multi-core system: cores + shared memory hierarchy + the interval clock.
//
// Cores advance in lockstep order of their local clocks (the core with the
// smallest cycle count steps next), so contention on the shared L2 banks and
// the memory channel is causally consistent. Interval boundaries are driven
// by the wall clock (the minimum core cycle), matching the paper's
// methodology: each benchmark runs a fixed instruction count, a finished
// core keeps running (and contending) until all cores finish, but its IPC is
// recorded at its own target crossing (§6.4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "cpu/core_model.hpp"
#include "cpu/memory_system.hpp"
#include "cpu/technique.hpp"
#include "energy/energy_model.hpp"

namespace esteem::cpu {

/// One Figure 2 timeline sample, captured at an interval boundary.
struct IntervalSample {
  cycle_t cycle = 0;
  double active_ratio = 1.0;
  std::vector<std::uint32_t> module_ways;
};

struct RawRunResult {
  std::vector<double> ipc;             ///< Per-core IPC at its target crossing.
  instr_t instr_per_core = 0;
  instr_t total_instructions = 0;      ///< Sum of per-core targets.
  cycle_t wall_cycles = 0;             ///< Cycle at which the last core finished.
  energy::EnergyCounters counters;     ///< Energy-model inputs over the run.
  MemorySystemStats mem_stats;
  std::uint64_t refreshes = 0;         ///< N_R over the run.
  std::uint64_t demand_misses = 0;     ///< L2 demand misses over the run.
  double avg_active_ratio = 1.0;       ///< Time-weighted F_A.
  edram::FaultCounters faults;         ///< Fault-injection events (zero when off).
  std::uint64_t disabled_slots = 0;    ///< L2 slots retired by faults (state).
  std::vector<IntervalSample> timeline;
};

struct RunOptions {
  instr_t instr_per_core = 8'000'000;
  /// Instructions each core executes before measurement begins (the paper
  /// fast-forwards 10B instructions, §6.4). Warm-up fills the caches at full
  /// associativity; no reconfiguration intervals fire and no counters
  /// accumulate during it.
  instr_t warmup_instr_per_core = 0;
  bool record_timeline = false;
  std::uint64_t seed = 42;
  /// Optional per-run telemetry sink (interval time-series + sim-time trace
  /// lanes); must outlive run(). Null = telemetry off.
  telemetry::RunSink* telemetry = nullptr;
};

class System {
 public:
  /// `benchmarks` has one benchmark name per core (cfg.ncores entries).
  System(const SystemConfig& cfg, Technique technique,
         const std::vector<std::string>& benchmarks, std::uint64_t seed);

  RawRunResult run(const RunOptions& options);

  MemorySystem& memory() noexcept { return mem_; }
  std::vector<Core>& cores() noexcept { return cores_; }
  const SystemConfig& config() const noexcept { return cfg_; }

 private:
  SystemConfig cfg_;
  MemorySystem mem_;
  std::vector<Core> cores_;
};

}  // namespace esteem::cpu

#include "cpu/memory_system.hpp"

#include <stdexcept>
#include <string>

#include "edram/ecc.hpp"
#include "edram/smart_refresh.hpp"
#include "refrint/rpv.hpp"

namespace esteem::cpu {

namespace {

cache::CacheParams l1_params(const SystemConfig& cfg) {
  return {cfg.l1.geom.sets(), cfg.l1.geom.ways};
}

cache::CacheParams l2_params(const SystemConfig& cfg) {
  return {cfg.l2.geom.sets(), cfg.l2.geom.ways};
}

}  // namespace

MemorySystem::MemorySystem(const SystemConfig& cfg, Technique technique)
    : cfg_(cfg),
      technique_(technique),
      l2_(l2_params(cfg), "L2"),
      banks_(cfg.l2.banks, cfg.l2.geom.sets(), cfg.l2.refresh_occupancy_cycles,
             cfg.l2.access_occupancy_cycles, cfg.l2.queue_pressure),
      modules_(cfg.l2.geom.sets(), cfg.esteem.modules),
      mm_({cfg.mem.latency_cycles, cfg.mem_service_cycles()}) {
  cfg_.validate();

  l1_.reserve(cfg.ncores);
  for (std::uint32_t c = 0; c < cfg.ncores; ++c) {
    l1_.emplace_back(l1_params(cfg), "L1-" + std::to_string(c));
  }

  const cycle_t retention = cfg.retention_cycles();
  switch (technique_) {
    case Technique::BaselinePeriodicAll:
      policy_ = std::make_unique<edram::PeriodicAllPolicy>(cfg.l2.geom.lines(), retention);
      break;
    case Technique::PeriodicValid:
      policy_ = std::make_unique<edram::PeriodicValidPolicy>(retention);
      break;
    case Technique::RefrintRPV:
      policy_ = std::make_unique<refrint::PolyphaseValidPolicy>(
          l2_.sets(), l2_.ways(), cfg.edram.rpv_phases, retention);
      break;
    case Technique::RefrintRPD:
      policy_ = std::make_unique<refrint::PolyphaseDirtyPolicy>(
          l2_, cfg.edram.rpv_phases, retention);
      break;
    case Technique::SmartRefresh:
      policy_ = std::make_unique<edram::SmartRefreshPolicy>(
          l2_.sets(), l2_.ways(), retention,
          std::max<cycle_t>(1, retention / cfg.edram.rpv_phases));
      break;
    case Technique::EccExtended: {
      edram::CellRetentionModel model;
      if (cfg.faults.enabled) {
        // The extension must be chosen against the same cell population the
        // injector samples from, or the safety target is meaningless.
        model.median_multiple = cfg.faults.median_multiple;
        model.sigma = cfg.faults.sigma;
      }
      const std::uint32_t ext = edram::max_safe_extension(
          /*bits_per_line=*/cfg.l2.geom.line_bytes * 8, cfg.edram.ecc_correctable,
          cfg.edram.ecc_target_line_failure, model);
      policy_ = std::make_unique<edram::EccRefreshPolicy>(retention, ext);
      break;
    }
    case Technique::CacheDecay: {
      auto decay = std::make_unique<edram::CacheDecayPolicy>(
          l2_, retention,
          static_cast<cycle_t>(cfg.edram.decay_interval_retentions *
                               static_cast<double>(retention)),
          /*check_period=*/retention);
      decay_ = decay.get();
      policy_ = std::move(decay);
      break;
    }
    case Technique::Esteem:
      // ESTEEM refreshes only the valid blocks of the active portion (§3.1);
      // valid lines exist only in active ways, so periodic-valid counting is
      // exact. The saving beyond that comes from the controller shrinking
      // the valid footprint and F_A.
      policy_ = std::make_unique<edram::PeriodicValidPolicy>(retention);
      leaders_ = std::make_unique<profiler::LeaderSets>(
          l2_.sets(), cfg.esteem.sampling_ratio, modules_);
      profiler_ = std::make_unique<profiler::ModuleProfiler>(modules_, l2_.ways(),
                                                             *leaders_);
      controller_ = std::make_unique<core::EsteemController>(
          l2_, modules_, *leaders_, *profiler_, cfg.esteem);
      break;
  }
  l2_.set_listener(policy_.get());
  // Fast lane: the O(ways) per-hit LRU-position scan feeds only the ESTEEM
  // leader-set profiler; every other configuration skips it. The L1s have
  // no consumer ever.
  l2_.set_lru_tracking(profiler_ != nullptr);
  for (auto& l1 : l1_) l1.set_lru_tracking(false);
  engine_ = std::make_unique<edram::RefreshEngine>(
      *policy_, &banks_, static_cast<double>(cfg.retention_cycles()));
  engine_->sync_bank_load(0);

  if (cfg_.faults.enabled) {
    edram::CellRetentionModel model;
    model.median_multiple = cfg_.faults.median_multiple;
    model.sigma = cfg_.faults.sigma;
    if (technique_ == Technique::EccExtended) {
      auto* ecc = static_cast<edram::EccRefreshPolicy*>(policy_.get());
      fault_extension_ = ecc->extension();
      fault_correctable_ = cfg_.edram.ecc_correctable;
    }
    faults_ = std::make_unique<edram::FaultInjector>(
        cfg_.faults, l2_.sets(), l2_.ways(), cfg_.l2.geom.line_bytes * 8, model);
    fault_epoch_cycles_ = retention * fault_extension_;
    fault_next_epoch_ = fault_epoch_cycles_;
  }
}

void MemorySystem::pump_faults(cycle_t now) {
  if (!faults_) return;
  while (now >= fault_next_epoch_) {
    const cycle_t boundary = fault_next_epoch_;
    faults_->on_refresh_epoch(
        l2_, fault_extension_, fault_correctable_, boundary,
        [&](block_t blk, bool) {
          // Inclusion: a line dropped from L2 must leave the L1s too. A
          // dirty L1 copy means the freshest data is lost with it.
          bool upper_dirty = false;
          for (auto& l1 : l1_) upper_dirty |= l1.invalidate(blk, boundary);
          return upper_dirty;
        });
    fault_next_epoch_ += fault_epoch_cycles_;
  }
}

cycle_t MemorySystem::l2_access(block_t block, bool is_store, cycle_t now, bool demand) {
  engine_->advance(now);
  pump_faults(now);
  const std::uint32_t set = l2_.set_index_of(block);
  if (profiler_) profiler_->record_access(set);
  const cycle_t bank_wait = warming_ ? 0 : banks_.access(set, now);

  const cache::AccessOutcome out = l2_.access(block, is_store, now);
  cycle_t latency = cfg_.l2.latency_cycles + bank_wait;

  if (out.hit) {
    // Leader-set hits feed the ATD histograms. Writeback accesses are
    // profiled too: they carry the same recency information and enrich the
    // per-interval sample count.
    if (profiler_) profiler_->record_hit(set, out.lru_pos);
    if (demand) ++stats_.demand_l2_hits;
    if (faults_ && faults_->corrected_hit(set, out.way)) {
      // Reading a line with decayed-but-correctable bits goes through the
      // ECC decoder's correction path.
      latency += cfg_.faults.correction_latency_cycles;
    }
  } else {
    if (demand) {
      ++stats_.demand_l2_misses;
      // The fill is fetched from main memory after the L2 lookup resolves.
      // Warming mode charges the unloaded latency without occupying the
      // channel: the fill still happens functionally (the allocate above),
      // but its timing must not leak into the next measured window.
      latency += warming_ ? cfg_.mem.latency_cycles : mm_.read(now + latency);
    }
    // A writeback that misses L2 allocates without a memory fetch: the whole
    // line is being written.
    if (faults_ && out.way != cache::kNoWay) faults_->on_fill_slot(set, out.way);
  }

  if (out.victim != kInvalidBlock) {
    // Evicted L2 lines: dirty ones are written back to memory; all are
    // back-invalidated from the L1s to preserve inclusion.
    if (out.victim_dirty) {
      if (!warming_) mm_.write(now + latency);
      ++stats_.mm_writebacks;
    }
    for (auto& l1 : l1_) l1.invalidate(out.victim, now);
  }
  return latency;
}

cycle_t MemorySystem::access(std::uint32_t core, block_t block, bool is_store,
                             cycle_t now) {
  ++accesses_since_tick_;
  cache::SetAssocCache& l1 = l1_[core];
  const cache::AccessOutcome out = l1.access(block, is_store, now);
  cycle_t latency = cfg_.l1.latency_cycles;
  if (!out.hit) {
    // Demand fill from L2 (loads and store-allocates alike read the line;
    // dirtiness lives in L1 until the line is evicted).
    latency += l2_access(block, /*is_store=*/false, now + latency, /*demand=*/true);
    if (out.victim != kInvalidBlock && out.victim_dirty) {
      // Posted writeback of the L1 victim into L2; does not stall the core.
      ++stats_.l2_writeback_accesses;
      (void)l2_access(out.victim, /*is_store=*/true, now + latency, /*demand=*/false);
    }
  }
  return latency;
}

void MemorySystem::tick_interval(cycle_t now) {
  engine_->advance(now);
  pump_faults(now);

  // Close the F_A integral over the elapsed window at the old value.
  fa_cycles_ += fa_current_ * static_cast<double>(now - fa_last_update_);
  fa_last_update_ = now;

  // In a sampled run, an interval that saw no hierarchy accesses at all fell
  // entirely inside a fast-forward skip: the controller must not read that
  // measurement gap as idleness (decaying its history and over-shrinking),
  // so its decision is held. Live intervals — even ones whose leader sets
  // sampled nothing — decide normally, matching exhaustive behaviour.
  const bool skip_gap = sampled_mode_ && accesses_since_tick_ == 0;
  accesses_since_tick_ = 0;

  if (controller_ && !skip_gap) {
    const core::ReconfigResult r =
        controller_->run_interval(now, [&](block_t) { mm_.write(now); });
    stats_.reconfig_transitions += r.transitions;
    stats_.reconfig_writebacks += r.writebacks;
    stats_.mm_writebacks += r.writebacks;
    fa_current_ = controller_->active_fraction();
  } else if (decay_ != nullptr) {
    // Reconcile decay's power gating with the energy counters: dirty lines
    // it flushed become posted memory writes, its gate toggles are N_L, and
    // F_A follows the powered fraction of the array.
    const std::uint64_t wb = decay_->decay_writebacks();
    for (std::uint64_t i = decay_wb_seen_; i < wb; ++i) mm_.write(now);
    stats_.mm_writebacks += wb - decay_wb_seen_;
    stats_.reconfig_writebacks += wb - decay_wb_seen_;
    decay_wb_seen_ = wb;
    const std::uint64_t trans = decay_->transitions();
    stats_.reconfig_transitions += trans - decay_trans_seen_;
    decay_trans_seen_ = trans;
    fa_current_ = decay_->active_fraction();
  }

  // Valid/active footprint changed: re-derive the bank refresh load.
  engine_->sync_bank_load(now);

  if (telemetry_ != nullptr) sample_interval(now);
}

void MemorySystem::set_telemetry(telemetry::RunSink* sink, cycle_t now) {
  telemetry_ = sink;
  tel_last_ = {};  // measurement counters were just reset
  tel_last_cycle_ = now;
  tel_last_ways_ = module_active_ways();
}

void MemorySystem::sample_interval(cycle_t now) {
  telemetry::RunSink& sink = *telemetry_;
  const std::uint64_t hits = stats_.demand_l2_hits;
  const std::uint64_t misses = stats_.demand_l2_misses;
  const std::uint64_t refr = refreshes();
  const std::uint64_t trans = stats_.reconfig_transitions;
  const std::uint64_t rwb = stats_.reconfig_writebacks;
  const edram::FaultCounters fc = fault_counters();
  const std::uint64_t corrected = fc.corrected_reads;
  const std::uint64_t uncorrectable = fc.uncorrectable();
  const std::vector<std::uint32_t> ways = module_active_ways();

  if (sink.recorder) {
    // Count columns are per-interval deltas; active_ratio and the per-module
    // way counts are the state applied at this boundary (the same value the
    // Figure 2 timeline records). Order must match telemetry::interval_columns.
    std::vector<double> row{
        active_fraction(),
        static_cast<double>(hits - tel_last_.demand_hits),
        static_cast<double>(misses - tel_last_.demand_misses),
        static_cast<double>(refr - tel_last_.refreshes),
        static_cast<double>(trans - tel_last_.transitions),
        static_cast<double>(rwb - tel_last_.reconfig_writebacks),
        static_cast<double>(corrected - tel_last_.corrected_reads),
        static_cast<double>(uncorrectable - tel_last_.uncorrectable)};
    for (std::uint32_t w : ways) row.push_back(static_cast<double>(w));
    sink.recorder->record(now, row);
  }

  if (sink.trace != nullptr) {
    using telemetry::TraceEmitter;
    const double t0 = sink.sim_us(tel_last_cycle_);
    const double t1 = sink.sim_us(now);
    // Run lane: one span per interval with the headline deltas.
    sink.trace->complete(
        TraceEmitter::kSimPid, sink.sim_tid, "interval", t0, t1 - t0,
        "{\"hits\":" + std::to_string(hits - tel_last_.demand_hits) +
            ",\"misses\":" + std::to_string(misses - tel_last_.demand_misses) +
            ",\"refreshes\":" + std::to_string(refr - tel_last_.refreshes) + "}");
    // Module lanes: the way decision *in effect* during the elapsed window
    // (the decision taken at `now` governs the next span).
    for (std::size_t m = 0; m < tel_last_ways_.size(); ++m) {
      sink.trace->complete(
          TraceEmitter::kSimPid, sink.sim_tid + 1 + static_cast<std::uint32_t>(m),
          "ways=" + std::to_string(tel_last_ways_[m]), t0, t1 - t0,
          "{\"ways\":" + std::to_string(tel_last_ways_[m]) + "}");
    }
    if (trans > tel_last_.transitions) {
      sink.trace->instant(
          TraceEmitter::kSimPid, sink.sim_tid, "reconfig", t1,
          "{\"transitions\":" + std::to_string(trans - tel_last_.transitions) +
              ",\"writebacks\":" +
              std::to_string(rwb - tel_last_.reconfig_writebacks) + "}");
    }
    if (uncorrectable > tel_last_.uncorrectable) {
      sink.trace->instant(
          TraceEmitter::kSimPid, sink.sim_tid, "fault.uncorrectable", t1,
          "{\"events\":" + std::to_string(uncorrectable - tel_last_.uncorrectable) +
              "}");
    }
    sink.trace->counter(TraceEmitter::kSimPid, sink.label + ".active_ratio", t1,
                        active_fraction());
    sink.trace->counter(TraceEmitter::kSimPid, sink.label + ".refreshes_per_interval",
                        t1, static_cast<double>(refr - tel_last_.refreshes));
  }

  tel_last_ = {hits, misses, refr, trans, rwb, corrected, uncorrectable};
  tel_last_cycle_ = now;
  tel_last_ways_ = ways;
}

void MemorySystem::reset_measurement(cycle_t now) {
  engine_->advance(now);
  pump_faults(now);
  if (faults_) faults_->reset_counters();
  l2_.reset_stats();
  for (auto& l1 : l1_) l1.reset_stats();
  mm_.reset_stats();
  stats_ = {};
  refresh_baseline_ = engine_->total_refreshes();
  engine_->reset_window();
  fa_cycles_ = 0.0;
  fa_last_update_ = now;
  measure_start_ = now;
  if (profiler_) profiler_->clear();
  if (decay_ != nullptr) {
    // Consume warm-up decay events so they are not charged to measurement.
    decay_wb_seen_ = decay_->decay_writebacks();
    decay_trans_seen_ = decay_->transitions();
    fa_current_ = decay_->active_fraction();
  }
}

void MemorySystem::finish(cycle_t now) {
  engine_->advance(now);
  pump_faults(now);
  fa_cycles_ += fa_current_ * static_cast<double>(now - fa_last_update_);
  fa_last_update_ = now;
}

energy::EnergyCounters MemorySystem::energy_counters(cycle_t now) const {
  const double to_seconds = 1.0 / (cfg_.freq_ghz * 1e9);
  energy::EnergyCounters c;
  c.seconds = static_cast<double>(now - measure_start_) * to_seconds;
  // F_A integral: closed portion plus the still-open window at the current value.
  c.fa_seconds = (fa_cycles_ + fa_current_ * static_cast<double>(now - fa_last_update_)) *
                 to_seconds;
  c.l2_hits = l2_.stats().hits;
  c.l2_misses = l2_.stats().misses;
  c.refreshes = refreshes();
  c.mm_accesses = mm_.stats().reads + mm_.stats().writes;
  c.transitions = stats_.reconfig_transitions;
  if (faults_) c.ecc_corrections = faults_->counters().corrected_reads;
  return c;
}

FlowSnapshot MemorySystem::flow_snapshot(cycle_t now) const {
  FlowSnapshot s;
  s.l2_hits = l2_.stats().hits;
  s.l2_misses = l2_.stats().misses;
  s.demand_hits = stats_.demand_l2_hits;
  s.demand_misses = stats_.demand_l2_misses;
  s.l2_writeback_accesses = stats_.l2_writeback_accesses;
  s.mm_reads = mm_.stats().reads;
  s.mm_writes = mm_.stats().writes;
  s.mm_writebacks = stats_.mm_writebacks;
  s.reconfig_writebacks = stats_.reconfig_writebacks;
  s.corrected_reads = faults_ ? faults_->counters().corrected_reads : 0;
  s.refreshes = refreshes();
  s.fa_cycles =
      fa_cycles_ + fa_current_ * static_cast<double>(now - fa_last_update_);
  return s;
}

double MemorySystem::active_fraction() const noexcept {
  if (controller_) return controller_->active_fraction();
  if (decay_ != nullptr) return decay_->active_fraction();
  return 1.0;
}

std::vector<std::uint32_t> MemorySystem::module_active_ways() const {
  return controller_ ? controller_->module_active_ways() : std::vector<std::uint32_t>{};
}

}  // namespace esteem::cpu

#include "cpu/core_model.hpp"

#include <stdexcept>

namespace esteem::cpu {

Core::Core(std::uint32_t id, std::unique_ptr<trace::AccessGenerator> generator,
           block_t block_offset)
    : id_(id), generator_(std::move(generator)), block_offset_(block_offset) {
  if (!generator_) throw std::invalid_argument("Core: null generator");
}

void Core::step(MemorySystem& mem) {
  const trace::MemRef ref = generator_->next();
  cycles_ += ref.gap;  // one cycle per non-memory instruction
  instret_ += ref.gap;
  const cycle_t latency = mem.access(id_, ref.block + block_offset_, ref.is_store, cycles_);
  cycles_ += latency;
  ++instret_;
}

}  // namespace esteem::cpu

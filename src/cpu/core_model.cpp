#include "cpu/core_model.hpp"

#include <stdexcept>

namespace esteem::cpu {

Core::Core(std::uint32_t id, std::unique_ptr<trace::AccessGenerator> generator,
           block_t block_offset)
    : id_(id), generator_(std::move(generator)), block_offset_(block_offset) {
  if (!generator_) throw std::invalid_argument("Core: null generator");
}

void Core::step(MemorySystem& mem) {
  const trace::MemRef ref = generator_->next();
  cycles_ += ref.gap;  // one cycle per non-memory instruction
  instret_ += ref.gap;
  const cycle_t latency = mem.access(id_, ref.block + block_offset_, ref.is_store, cycles_);
  cycles_ += latency;
  ++instret_;
}

void Core::advance_clock(instr_t n, double cpi) {
  const double due = static_cast<double>(n) * cpi + clock_carry_;
  const auto whole = static_cast<cycle_t>(due);
  clock_carry_ = due - static_cast<double>(whole);
  cycles_ += whole;
}

void Core::skip(instr_t n, double cpi) {
  generator_->skip(n);
  instret_ += n;
  advance_clock(n, cpi);
}

void Core::step_warm(MemorySystem& mem, double cpi) {
  const trace::MemRef ref = generator_->next();
  const instr_t retired = static_cast<instr_t>(ref.gap) + 1;
  instret_ += retired;
  advance_clock(retired, cpi);
  // The access mutates cache/refresh/profiler state; its latency is a
  // warming-mode nominal value and deliberately not charged to the clock.
  (void)mem.access(id_, ref.block + block_offset_, ref.is_store, cycles_);
}

}  // namespace esteem::cpu

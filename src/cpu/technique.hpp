// The refresh/energy-management techniques the simulator can run.
#pragma once

#include <string_view>

namespace esteem::cpu {

enum class Technique {
  /// Paper baseline: refresh every line each retention period; cache fully on.
  BaselinePeriodicAll,
  /// Refrint "periodic-valid": refresh only valid lines (extension; the
  /// paper cites it as inferior to RPV and does not evaluate it).
  PeriodicValid,
  /// Refrint polyphase-valid — the paper's comparison technique (§6.2).
  RefrintRPV,
  /// Refrint polyphase-dirty (extension; evaluated in the ablation bench).
  RefrintRPD,
  /// Smart-Refresh: per-line timestamps skip refreshes of recently touched
  /// lines (paper §2 related work; extension).
  SmartRefresh,
  /// ECC-assisted refresh-interval extension (paper §2 related work;
  /// extension). The ECC storage overhead is charged in the energy model.
  EccExtended,
  /// Cache Decay: per-line idle counters power-gate dead lines (paper §2
  /// related work [22]; extension). Block-granularity alternative to
  /// ESTEEM's way-granularity reconfiguration.
  CacheDecay,
  /// ESTEEM: dynamic selective-ways reconfiguration + valid-only refresh.
  Esteem,
};

constexpr std::string_view to_string(Technique t) {
  switch (t) {
    case Technique::BaselinePeriodicAll: return "baseline";
    case Technique::PeriodicValid: return "periodic-valid";
    case Technique::RefrintRPV: return "rpv";
    case Technique::RefrintRPD: return "rpd";
    case Technique::SmartRefresh: return "smart-refresh";
    case Technique::EccExtended: return "ecc-extended";
    case Technique::CacheDecay: return "cache-decay";
    case Technique::Esteem: return "esteem";
  }
  return "?";
}

}  // namespace esteem::cpu

// The full memory hierarchy: private L1s, the shared banked eDRAM L2 with a
// pluggable refresh technique, and main memory. This is the component the
// in-order cores issue loads/stores against.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cache/bank.hpp"
#include "cache/cache.hpp"
#include "cache/module_map.hpp"
#include "common/config.hpp"
#include "common/types.hpp"
#include "core/controller.hpp"
#include "cpu/technique.hpp"
#include "edram/decay.hpp"
#include "edram/fault_injection.hpp"
#include "edram/refresh_engine.hpp"
#include "edram/refresh_policy.hpp"
#include "energy/energy_model.hpp"
#include "mem/main_memory.hpp"
#include "profiler/atd.hpp"
#include "profiler/leader_sets.hpp"
#include "telemetry/telemetry.hpp"

namespace esteem::cpu {

struct MemorySystemStats {
  std::uint64_t demand_l2_hits = 0;
  std::uint64_t demand_l2_misses = 0;
  std::uint64_t l2_writeback_accesses = 0;  ///< L1 dirty victims written to L2.
  std::uint64_t mm_writebacks = 0;          ///< L2 dirty victims + flushes.
  std::uint64_t reconfig_transitions = 0;   ///< N_L
  std::uint64_t reconfig_writebacks = 0;
};

/// Cumulative flow-counter snapshot the sampling executor takes around each
/// measured window; per-window deltas of these become the ratio-estimator
/// inputs (docs/SAMPLING.md). All values are since reset_measurement.
struct FlowSnapshot {
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t demand_hits = 0;
  std::uint64_t demand_misses = 0;
  std::uint64_t l2_writeback_accesses = 0;
  std::uint64_t mm_reads = 0;
  std::uint64_t mm_writes = 0;
  std::uint64_t mm_writebacks = 0;
  /// Tick-driven flush writebacks (reconfiguration/decay). A window's delta
  /// of these is subtracted from its mm flow: an interval boundary landing
  /// inside a window would otherwise inject one flush's worth of writes into
  /// a 40k-instruction rate sample and be amplified by the whole-run scale.
  std::uint64_t reconfig_writebacks = 0;
  std::uint64_t corrected_reads = 0;
  std::uint64_t refreshes = 0;
  double fa_cycles = 0.0;  ///< F_A integral (closed + open window), in cycles.
};

class MemorySystem {
 public:
  MemorySystem(const SystemConfig& cfg, Technique technique);

  /// One load/store by `core`; returns its latency in cycles.
  cycle_t access(std::uint32_t core, block_t block, bool is_store, cycle_t now);

  /// Interval boundary: pump refresh, run ESTEEM's algorithm, re-derive the
  /// bank refresh load, and integrate F_A over the elapsed window.
  void tick_interval(cycle_t now);

  /// Final bookkeeping at end of simulation (closes the F_A integral and
  /// pumps refresh events up to `now`).
  void finish(cycle_t now);

  /// Ends the warm-up phase: zeroes every measurement counter (cache/memory
  /// stats, refresh totals, F_A integral, reconfiguration counts) while
  /// keeping the warmed cache contents and timing state. Mirrors the
  /// paper's fast-forward-then-measure methodology (§6.4).
  void reset_measurement(cycle_t now);

  /// Energy counters accumulated so far (Eq. 2-8 inputs). `freq_ghz` is
  /// needed to convert cycles to seconds.
  energy::EnergyCounters energy_counters(cycle_t now) const;

  /// Sampling warming mode. While on, accesses update all functional state
  /// (cache tags/LRU/dirty bits, refresh and fault epochs, ESTEEM profiler
  /// histograms) exactly as in detailed mode, but timing side-effects are
  /// nominal: bank contention is not consulted (zero wait) and main-memory
  /// transfers neither occupy the channel nor count as memory traffic —
  /// fills are charged the unloaded latency. Detailed windows must run with
  /// warming off so their deltas carry real timing.
  void set_warming(bool on) noexcept { warming_ = on; }
  bool warming() const noexcept { return warming_; }

  /// Run-scoped sampled-execution mode (set once by the sampling executor,
  /// independent of the per-segment warming toggle): an interval boundary
  /// that saw zero hierarchy accesses fell entirely inside a fast-forward
  /// skip — a measurement gap, not workload idleness — so the controller
  /// decision (and its history decay) is held for that interval. Intervals
  /// that overlapped any executed segment decide normally, even if their
  /// leader sets happened to sample nothing: empty leader histograms on a
  /// live interval are real information the exhaustive controller also acts
  /// on. Off by default; exhaustive runs are bit-identical.
  void set_sampled_mode(bool on) noexcept { sampled_mode_ = on; }

  /// Flow counters since reset_measurement (see FlowSnapshot).
  FlowSnapshot flow_snapshot(cycle_t now) const;

  const MemorySystemStats& stats() const noexcept { return stats_; }
  const mem::MainMemoryStats& mm_stats() const noexcept { return mm_.stats(); }
  const cache::CacheStats& l2_stats() const noexcept { return l2_.stats(); }

  std::uint64_t refreshes() const noexcept {
    return engine_->total_refreshes() - refresh_baseline_;
  }

  /// Current F_A (1.0 for non-ESTEEM techniques).
  double active_fraction() const noexcept;

  /// Fault-injection event counters for the measurement window (all zero
  /// when [faults] is disabled).
  edram::FaultCounters fault_counters() const noexcept {
    return faults_ ? faults_->counters() : edram::FaultCounters{};
  }

  /// Slots retired by repeated uncorrectable failures (cumulative state).
  std::uint64_t disabled_slots() const noexcept { return l2_.disabled_slots(); }

  /// Per-module active way counts (for the Figure 2 timeline); empty for
  /// non-ESTEEM techniques.
  std::vector<std::uint32_t> module_active_ways() const;

  Technique technique() const noexcept { return technique_; }
  cache::SetAssocCache& l2() noexcept { return l2_; }

  /// Attaches a per-run telemetry sink (null detaches). Interval rows and
  /// simulated-time trace events are emitted at every tick_interval from
  /// `now` on; delta baselines start at the current (just-reset) counters.
  /// The sink must outlive the run. No-op cost when never attached.
  void set_telemetry(telemetry::RunSink* sink, cycle_t now);

 private:
  cycle_t l2_access(block_t block, bool is_store, cycle_t now, bool demand);

  /// Emits one interval telemetry sample (recorder row + trace events).
  void sample_interval(cycle_t now);

  /// Processes fault-injection refresh epochs scheduled up to `now`.
  void pump_faults(cycle_t now);

  SystemConfig cfg_;
  Technique technique_;

  std::vector<cache::SetAssocCache> l1_;
  cache::SetAssocCache l2_;
  cache::BankGroup banks_;
  cache::ModuleMap modules_;
  mem::MainMemory mm_;

  std::unique_ptr<edram::RefreshPolicy> policy_;
  std::unique_ptr<edram::RefreshEngine> engine_;

  // Fault injection (null when [faults] is disabled).
  std::unique_ptr<edram::FaultInjector> faults_;
  std::uint32_t fault_extension_ = 1;   ///< Effective refresh-interval extension.
  std::uint32_t fault_correctable_ = 0; ///< ECC strength seen by the injector.
  cycle_t fault_epoch_cycles_ = 0;
  cycle_t fault_next_epoch_ = 0;

  // CacheDecay-only bookkeeping (view into policy_ when active).
  edram::CacheDecayPolicy* decay_ = nullptr;
  std::uint64_t decay_wb_seen_ = 0;
  std::uint64_t decay_trans_seen_ = 0;

  // ESTEEM-only machinery.
  std::unique_ptr<profiler::LeaderSets> leaders_;
  std::unique_ptr<profiler::ModuleProfiler> profiler_;
  std::unique_ptr<core::EsteemController> controller_;

  MemorySystemStats stats_;
  bool warming_ = false;       ///< Sampling warming mode (see set_warming).
  bool sampled_mode_ = false;  ///< Sampled run (see set_sampled_mode).
  std::uint64_t accesses_since_tick_ = 0;  ///< Detects skip-only intervals.

  // Per-run telemetry sink (null = telemetry off, the default). Baselines
  // hold the previous interval's cumulative counters so samples are deltas.
  telemetry::RunSink* telemetry_ = nullptr;
  struct TelemetryBaseline {
    std::uint64_t demand_hits = 0;
    std::uint64_t demand_misses = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t transitions = 0;
    std::uint64_t reconfig_writebacks = 0;
    std::uint64_t corrected_reads = 0;
    std::uint64_t uncorrectable = 0;
  } tel_last_;
  cycle_t tel_last_cycle_ = 0;
  std::vector<std::uint32_t> tel_last_ways_;  ///< Ways in effect last window.

  // Time-weighted F_A integral (in cycles).
  double fa_cycles_ = 0.0;
  cycle_t fa_last_update_ = 0;
  double fa_current_ = 1.0;
  cycle_t measure_start_ = 0;  ///< Cycle at which measurement began.
  std::uint64_t refresh_baseline_ = 0;  ///< Refreshes before measurement.
};

}  // namespace esteem::cpu

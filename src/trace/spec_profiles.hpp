// Synthetic proxies for the paper's 34 workloads (Table 1): 29 SPEC CPU2006
// benchmarks plus 5 HPC mini-apps (amg2013, comd, lulesh, nekbone, xsbench).
//
// We do not have SPEC inputs or the authors' Sniper traces, so each
// benchmark is modelled by a profile capturing its published LLC behaviour
// class: working-set size relative to a 4 MB LLC, memory-operation density,
// store fraction, streaming/pointer-chase content, phased behaviour, and
// whether its hit pattern is non-LRU (omnetpp, xalancbmk). See DESIGN.md §1
// for the substitution rationale.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "trace/access.hpp"

namespace esteem::trace {

struct BenchmarkProfile {
  std::string_view name;
  std::string_view acronym;   ///< Table 1 two-letter code.
  double mem_ratio;           ///< Memory ops per instruction.
  double store_ratio;         ///< Stores as a fraction of memory ops.
  double ws_kb;               ///< Dominant working-set size (KB).
  double hot_frac;            ///< Hot-subset size as a fraction of ws.
  double hot_prob;            ///< Probability an access goes to the hot subset.
  double streaming_frac;      ///< Mixture weight of the streaming component.
  double chase_frac;          ///< Mixture weight of the pointer-chase component.
  bool non_lru;               ///< Multi-modal (non-LRU) reuse pattern.
  std::uint32_t phases;       ///< >1: working set alternates between phases.
  bool hpc;                   ///< One of the 5 HPC mini-apps.
};

/// All 34 profiles in Table 1 order.
std::span<const BenchmarkProfile> all_profiles();

/// Lookup by full name ("h264ref") or acronym ("H2").
/// Throws std::out_of_range when unknown.
const BenchmarkProfile& profile_by_name(std::string_view name);

/// Builds the seeded access generator for a profile.
std::unique_ptr<AccessGenerator> make_generator(const BenchmarkProfile& profile,
                                                const GeneratorContext& ctx,
                                                std::uint64_t seed);

}  // namespace esteem::trace

#include "trace/spec_profiles.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "trace/patterns.hpp"

namespace esteem::trace {

namespace {

constexpr double kMB = 1024.0;  // profiles list ws in KB; helper for MB values

// {name, acronym, mem_ratio, store_ratio, ws_kb, hot_frac, hot_prob,
//  streaming_frac, chase_frac, non_lru, phases, hpc}
//
// Working-set classes follow the paper's own observations plus well-known
// SPEC2006 characterizations: gamess/povray/tonto/namd are cache-resident;
// libquantum/milc/lbm/bwaves/leslie3d/GemsFDTD stream with ~100% LLC miss;
// mcf/soplex have working sets far exceeding 4 MB (paper §7.2 notes their
// slight loss); omnetpp/xalancbmk are non-LRU (§3.1); h264ref/gcc are phased.
constexpr std::array<BenchmarkProfile, 34> kProfiles{{
    {"astar",      "As", 0.35, 0.20, 3.0 * kMB,   0.12, 0.55, 0.05, 0.30, false, 1, false},
    {"bwaves",     "Bw", 0.45, 0.25, 24.0 * kMB,  0.05, 0.20, 0.80, 0.00, false, 1, false},
    {"bzip2",      "Bz", 0.30, 0.25, 2.5 * kMB,   0.15, 0.60, 0.20, 0.00, false, 1, false},
    {"cactusADM",  "Cd", 0.40, 0.30, 12.0 * kMB,  0.06, 0.40, 0.40, 0.00, false, 1, false},
    {"calculix",   "Ca", 0.30, 0.20, 0.8 * kMB,   0.25, 0.65, 0.10, 0.00, false, 1, false},
    {"dealII",     "Dl", 0.35, 0.25, 1.5 * kMB,   0.20, 0.60, 0.10, 0.05, false, 1, false},
    {"gamess",     "Ga", 0.25, 0.20, 0.15 * kMB,  0.40, 0.70, 0.00, 0.00, false, 1, false},
    {"gcc",        "Gc", 0.35, 0.30, 2.0 * kMB,   0.15, 0.55, 0.10, 0.05, false, 3, false},
    {"gemsFDTD",   "Gm", 0.45, 0.25, 20.0 * kMB,  0.05, 0.20, 0.70, 0.00, false, 1, false},
    {"gobmk",      "Gk", 0.30, 0.25, 0.6 * kMB,   0.25, 0.65, 0.05, 0.00, false, 1, false},
    {"gromacs",    "Gr", 0.30, 0.25, 0.5 * kMB,   0.25, 0.65, 0.10, 0.00, false, 1, false},
    {"h264ref",    "H2", 0.30, 0.25, 1.2 * kMB,   0.20, 0.60, 0.15, 0.00, false, 4, false},
    {"hmmer",      "Hm", 0.40, 0.30, 0.3 * kMB,   0.30, 0.70, 0.05, 0.00, false, 1, false},
    {"lbm",        "Lb", 0.45, 0.45, 24.0 * kMB,  0.05, 0.15, 0.90, 0.00, false, 1, false},
    {"leslie3d",   "Ls", 0.40, 0.25, 15.0 * kMB,  0.05, 0.20, 0.70, 0.00, false, 1, false},
    {"libquantum", "Lq", 0.25, 0.25, 30.0 * kMB,  0.02, 0.05, 1.00, 0.00, false, 1, false},
    {"mcf",        "Mc", 0.45, 0.20, 30.0 * kMB,  0.05, 0.30, 0.05, 0.60, false, 1, false},
    {"milc",       "Mi", 0.40, 0.30, 20.0 * kMB,  0.03, 0.10, 0.85, 0.00, false, 1, false},
    {"namd",       "Nd", 0.30, 0.20, 0.4 * kMB,   0.30, 0.70, 0.05, 0.00, false, 1, false},
    {"omnetpp",    "Om", 0.35, 0.30, 8.0 * kMB,   0.10, 0.35, 0.00, 0.15, true,  1, false},
    {"perlbench",  "Pe", 0.35, 0.30, 1.0 * kMB,   0.20, 0.60, 0.05, 0.05, false, 2, false},
    {"povray",     "Po", 0.30, 0.20, 0.2 * kMB,   0.35, 0.70, 0.00, 0.00, false, 1, false},
    {"sjeng",      "Si", 0.30, 0.25, 1.8 * kMB,   0.15, 0.55, 0.05, 0.05, false, 1, false},
    {"soplex",     "So", 0.40, 0.25, 18.0 * kMB,  0.06, 0.30, 0.20, 0.20, false, 1, false},
    {"sphinx",     "Sp", 0.35, 0.15, 10.0 * kMB,  0.06, 0.50, 0.30, 0.00, false, 1, false},
    {"tonto",      "To", 0.30, 0.25, 0.4 * kMB,   0.30, 0.70, 0.05, 0.00, false, 1, false},
    {"wrf",        "Wr", 0.35, 0.25, 20.0 * kMB,  0.04, 0.45, 0.40, 0.00, false, 1, false},
    {"xalancbmk",  "Xa", 0.35, 0.25, 6.0 * kMB,   0.10, 0.35, 0.00, 0.10, true,  1, false},
    {"zeusmp",     "Ze", 0.40, 0.30, 8.0 * kMB,   0.08, 0.35, 0.50, 0.00, false, 1, false},
    {"amg2013",    "Am", 0.40, 0.25, 12.0 * kMB,  0.08, 0.30, 0.60, 0.00, false, 1, true},
    {"comd",       "Co", 0.30, 0.25, 1.5 * kMB,   0.20, 0.60, 0.05, 0.00, false, 1, true},
    {"lulesh",     "Lu", 0.35, 0.30, 8.0 * kMB,   0.08, 0.40, 0.50, 0.00, false, 1, true},
    {"nekbone",    "Ne", 0.35, 0.25, 0.5 * kMB,   0.25, 0.65, 0.15, 0.00, false, 1, true},
    {"xsbench",    "Xb", 0.45, 0.10, 25.0 * kMB,  0.04, 0.35, 0.00, 0.10, false, 1, true},
}};

// Each mixture component draws from its own disjoint gigablock region so the
// hot subset of one component cannot alias the streamed region of another.
constexpr block_t kComponentSpan = block_t{1} << 30;

std::uint64_t blocks_from_kb(double kb, std::uint32_t line_bytes) {
  const double blocks = kb * 1024.0 / static_cast<double>(line_bytes);
  return blocks < 1.0 ? 1 : static_cast<std::uint64_t>(blocks);
}

// Builds the (non-phased) mixture for a working set of `ws_blocks` blocks.
std::unique_ptr<BlockPattern> make_mixture(const BenchmarkProfile& p,
                                           std::uint64_t ws_blocks,
                                           const GeneratorContext& ctx,
                                           std::uint64_t& seed_state,
                                           block_t base) {
  std::vector<std::unique_ptr<BlockPattern>> children;
  std::vector<double> weights;

  const double scan_frac = p.non_lru ? 0.55 : 0.0;
  const double random_frac =
      std::max(0.0, 1.0 - p.streaming_frac - p.chase_frac - scan_frac);

  if (random_frac > 0.0) {
    // Nested levels span [ws .. innermost]; the innermost level is sized to
    // be L1-resident (as real hot data is), so the L2 sees the medium-reuse
    // rings. The weight ratio concentrates hot_prob of the traffic toward
    // the inner levels, yielding the smooth decaying stack-distance curve of
    // real applications.
    constexpr std::uint32_t kLevels = 6;
    const std::uint64_t innermost =
        std::clamp<std::uint64_t>(ws_blocks / 16, 32, 384);
    const double size_ratio = std::clamp(
        std::pow(static_cast<double>(innermost) / static_cast<double>(ws_blocks),
                 1.0 / (kLevels - 1)),
        0.05, 0.95);
    const double weight_ratio = 1.0 / (1.0 - std::clamp(p.hot_prob, 0.1, 0.85));
    children.push_back(std::make_unique<NestedWorkingSetPattern>(
        base + 0 * kComponentSpan, ws_blocks, kLevels, size_ratio, weight_ratio,
        splitmix64(seed_state)));
    weights.push_back(random_frac);
  }
  if (p.streaming_frac > 0.0) {
    children.push_back(std::make_unique<StreamingPattern>(
        base + 1 * kComponentSpan, ws_blocks));
    weights.push_back(p.streaming_frac);
  }
  if (p.chase_frac > 0.0) {
    children.push_back(std::make_unique<PointerChasePattern>(
        base + 2 * kComponentSpan, ws_blocks, splitmix64(seed_state)));
    weights.push_back(p.chase_frac);
  }
  if (scan_frac > 0.0) {
    // Depths chosen to land hits at several distinct LRU stack positions of a
    // 16-way cache, producing >= A/4 monotonicity anomalies (Algorithm 1).
    // The narrow set span keeps individual sweeps short enough that all
    // depths alternate within one profiling interval.
    children.push_back(std::make_unique<MultiScanPattern>(
        base + 3 * kComponentSpan, std::vector<std::uint32_t>{4, 7, 10, 13}, ctx,
        /*sweeps_per_depth=*/1, /*sets_span=*/std::max(32u, ctx.l2_sets / 8)));
    weights.push_back(scan_frac);
  }

  if (children.size() == 1) return std::move(children.front());
  return std::make_unique<MixturePattern>(std::move(children), std::move(weights),
                                          splitmix64(seed_state));
}

}  // namespace

std::span<const BenchmarkProfile> all_profiles() { return kProfiles; }

const BenchmarkProfile& profile_by_name(std::string_view name) {
  for (const auto& p : kProfiles) {
    if (p.name == name || p.acronym == name) return p;
  }
  throw std::out_of_range("unknown benchmark: " + std::string(name));
}

std::unique_ptr<AccessGenerator> make_generator(const BenchmarkProfile& profile,
                                                const GeneratorContext& ctx,
                                                std::uint64_t seed) {
  std::uint64_t seed_state = seed ^ 0xE57EE57EE57EE57EULL;
  const std::uint64_t ws_blocks = blocks_from_kb(profile.ws_kb, ctx.line_bytes);

  std::unique_ptr<BlockPattern> pattern;
  if (profile.phases <= 1) {
    pattern = make_mixture(profile, ws_blocks, ctx, seed_state, 0);
  } else {
    // Phase working sets cycle through these scale factors so the cache
    // demand visibly rises and falls over intervals (paper Figure 2).
    constexpr std::array<double, 4> kScales{1.0, 0.3, 0.65, 1.4};
    std::vector<std::unique_ptr<BlockPattern>> phases;
    for (std::uint32_t i = 0; i < profile.phases; ++i) {
      const double scale = kScales[i % kScales.size()];
      const auto scaled = static_cast<std::uint64_t>(
          std::max(1.0, scale * static_cast<double>(ws_blocks)));
      phases.push_back(make_mixture(profile, scaled, ctx, seed_state,
                                    block_t{i} * 8 * kComponentSpan));
    }
    constexpr std::uint64_t kRefsPerPhase = 150'000;
    pattern = std::make_unique<PhasedPattern>(std::move(phases), kRefsPerPhase);
  }

  // Short-term temporal locality (absorbed by the L1): streaming and
  // pointer-chasing codes re-touch recent lines less than cache-resident
  // ones, mirroring SPEC L1D hit-rate spreads.
  const double reuse_prob = std::clamp(
      0.965 - 0.15 * profile.streaming_frac - 0.08 * profile.chase_frac, 0.6, 0.97);
  pattern = std::make_unique<TemporalReusePattern>(std::move(pattern), reuse_prob,
                                                   /*window=*/96,
                                                   splitmix64(seed_state));

  return std::make_unique<InstructionMixer>(std::move(pattern), profile.mem_ratio,
                                            profile.store_ratio, splitmix64(seed_state));
}

}  // namespace esteem::trace

// Trace file I/O: record synthetic streams to disk and replay external
// traces through the simulator. This is the adoption path for users who
// have real application traces (e.g. from a PIN tool) instead of our
// synthetic SPEC proxies.
//
// Format (text, one record per line, '#' comments allowed):
//   ESTEEM-TRACE v1
//   <gap> <L|S> <block-hex>
// where gap is the number of non-memory instructions preceding the memory
// operation, L/S marks a load/store, and block-hex is the cache-block
// number in hexadecimal.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/access.hpp"

namespace esteem::trace {

/// Streams MemRefs to a trace file. Throws std::runtime_error on I/O error.
class TraceFileWriter {
 public:
  explicit TraceFileWriter(const std::string& path);

  void write(const MemRef& ref);
  std::uint64_t records_written() const noexcept { return records_; }
  void close();

 private:
  std::ofstream out_;
  std::uint64_t records_ = 0;
};

/// Replays a trace file as an AccessGenerator. The trace loops when
/// exhausted (simulations often need more references than the trace holds);
/// loop_count() reports how many times it wrapped.
class FileTraceGenerator final : public AccessGenerator {
 public:
  explicit FileTraceGenerator(const std::string& path);

  MemRef next() override;

  std::uint64_t records() const noexcept { return refs_.size(); }
  std::uint64_t loop_count() const noexcept { return loops_; }

 private:
  std::vector<MemRef> refs_;
  std::size_t pos_ = 0;
  std::uint64_t loops_ = 0;
};

/// Convenience: record `count` references of a generator to a file.
void record_trace(AccessGenerator& generator, const std::string& path,
                  std::uint64_t count);

}  // namespace esteem::trace

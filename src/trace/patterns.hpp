// Synthetic address patterns. Each pattern shapes the L2-set-level reuse
// distance distribution differently, which is what ESTEEM's LRU-position
// profiling observes (paper §3.1).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "trace/access.hpp"

namespace esteem::trace {

/// Sequential sweep over a region of `region_blocks` blocks starting at
/// `base`. Models streaming benchmarks (lbm, libquantum, milc, ...): per-set
/// reuse distance equals region_blocks / sets, so regions much larger than
/// the cache produce ~100% misses.
class StreamingPattern final : public BlockPattern {
 public:
  StreamingPattern(block_t base, std::uint64_t region_blocks, std::uint64_t stride = 1);
  block_t next_block() override;
  void skip(std::uint64_t n) override;  ///< Exact: closed-form cycle jump.

 private:
  block_t base_;
  std::uint64_t region_;
  std::uint64_t stride_;
  std::uint64_t pos_ = 0;
};

/// Uniform random accesses over a working set, with an optional hot subset
/// accessed with higher probability. Produces the classic monotonically
/// decaying LRU-position hit histogram.
class RandomWorkingSetPattern final : public BlockPattern {
 public:
  RandomWorkingSetPattern(block_t base, std::uint64_t ws_blocks,
                          std::uint64_t hot_blocks, double hot_prob,
                          std::uint64_t seed);
  block_t next_block() override;
  /// Draws are iid, so skipping them is a statistical no-op; leaving the RNG
  /// untouched keeps sampled runs deterministic for a given seed.
  void skip(std::uint64_t) override {}

 private:
  block_t base_;
  std::uint64_t ws_;
  std::uint64_t hot_;
  double hot_prob_;
  Rng rng_;
};

/// Uniform random accesses over nested working-set levels: level i spans the
/// innermost `ws * size_ratio^i` blocks and is chosen with probability
/// proportional to `weight_ratio^i`. This produces the smooth, monotonically
/// decaying LRU stack-distance curve real applications exhibit (hot data
/// reused often, colder rings progressively less), which is what makes
/// alpha-coverage way selection stable (paper §3.1).
class NestedWorkingSetPattern final : public BlockPattern {
 public:
  NestedWorkingSetPattern(block_t base, std::uint64_t ws_blocks, std::uint32_t levels,
                          double size_ratio, double weight_ratio, std::uint64_t seed);
  block_t next_block() override;
  void skip(std::uint64_t) override {}  ///< iid draws — see RandomWorkingSetPattern.

 private:
  block_t base_;
  std::vector<std::uint64_t> level_size_;
  std::vector<double> cumulative_;
  Rng rng_;
};

/// Dependent-chain walk through a pseudo-random permutation of a power-of-two
/// working set (full-cycle LCG, Hull-Dobell). Models pointer-chasing codes
/// (mcf): every access has reuse distance == ws, defeating the LRU stack.
class PointerChasePattern final : public BlockPattern {
 public:
  PointerChasePattern(block_t base, std::uint64_t ws_blocks, std::uint64_t seed);
  block_t next_block() override;
  void skip(std::uint64_t n) override;  ///< Exact: LCG jump-ahead in O(log n).

 private:
  block_t base_;
  std::uint64_t ws_pow2_;
  std::uint64_t mult_;
  std::uint64_t inc_;
  std::uint64_t cur_;
};

/// Cyclic sweeps whose footprint is `depth` lines per L2 set: after warm-up,
/// every access hits at LRU stack position depth-1. Interleaving several
/// depths yields a multi-modal (non-monotonic) histogram — the "non-LRU"
/// behaviour the paper attributes to omnetpp/xalancbmk (§3.1).
class MultiScanPattern final : public BlockPattern {
 public:
  /// `sets_span` limits the scan footprint to the first `sets_span` cache
  /// sets (0 = all sets). A narrower span makes each sweep short enough
  /// that several depths alternate within one profiling interval.
  MultiScanPattern(block_t base, std::vector<std::uint32_t> depths,
                   const GeneratorContext& ctx, std::uint64_t sweeps_per_depth = 2,
                   std::uint32_t sets_span = 0);
  block_t next_block() override;
  void skip(std::uint64_t n) override;  ///< Exact: modular walk over depth sweeps.

 private:
  block_t base_;
  std::vector<std::uint32_t> depths_;
  std::uint32_t total_sets_;
  std::uint32_t span_;
  std::uint64_t sweeps_per_depth_;
  std::size_t depth_idx_ = 0;
  std::uint64_t pos_ = 0;
  std::uint64_t sweep_ = 0;
};

/// Weighted per-access mixture of child patterns.
class MixturePattern final : public BlockPattern {
 public:
  MixturePattern(std::vector<std::unique_ptr<BlockPattern>> children,
                 std::vector<double> weights, std::uint64_t seed);
  block_t next_block() override;
  /// Statistical: routes `n * weight_i` skips (with a fractional carry) to
  /// each child without drawing from the RNG, so the selector stream is
  /// unperturbed and the expected per-child consumption matches.
  void skip(std::uint64_t n) override;

 private:
  std::vector<std::unique_ptr<BlockPattern>> children_;
  std::vector<double> cumulative_;
  std::vector<double> skip_carry_;
  Rng rng_;
};

/// Round-robin phase switcher: runs each child for `refs_per_phase` memory
/// references before moving to the next. Models phased benchmarks (h264ref,
/// gcc) whose working set changes over time, exercising ESTEEM's dynamic
/// reconfiguration (Figure 2).
class PhasedPattern final : public BlockPattern {
 public:
  PhasedPattern(std::vector<std::unique_ptr<BlockPattern>> children,
                std::uint64_t refs_per_phase);
  block_t next_block() override;
  void skip(std::uint64_t n) override;  ///< Exact: per-phase routing arithmetic.

 private:
  std::vector<std::unique_ptr<BlockPattern>> children_;
  std::uint64_t refs_per_phase_;
  std::uint64_t pos_ = 0;
  std::size_t active_ = 0;
};

/// Short-term temporal locality wrapper: with probability `reuse_prob` the
/// next access re-references one of the last `window` distinct blocks
/// (geometrically biased toward the most recent); otherwise it pulls a new
/// block from the child pattern. Real programs re-touch the same lines many
/// times within a few hundred instructions — this is what gives the L1 its
/// ~90% hit rate and leaves the L2 only the medium-distance reuse stream.
class TemporalReusePattern final : public BlockPattern {
 public:
  TemporalReusePattern(std::unique_ptr<BlockPattern> child, double reuse_prob,
                       std::uint32_t window, std::uint64_t seed);
  block_t next_block() override;
  /// Statistical: the child advances by the expected fresh-pull count
  /// `n * (1 - reuse_prob)` (fractional carry), and the recency ring is
  /// re-warmed with the tail of those pulls so post-skip reuses reference
  /// genuinely recent blocks. The RNG is untouched.
  void skip(std::uint64_t n) override;

 private:
  std::unique_ptr<BlockPattern> child_;
  double reuse_prob_;
  std::vector<block_t> ring_;
  std::uint32_t head_ = 0;
  std::uint32_t filled_ = 0;
  double skip_carry_ = 0.0;
  Rng rng_;
};

/// Layers instruction gaps (geometric, mean = 1/mem_ratio - 1) and store
/// flags (Bernoulli store_ratio) onto a block pattern.
class InstructionMixer final : public AccessGenerator {
 public:
  InstructionMixer(std::unique_ptr<BlockPattern> pattern, double mem_ratio,
                   double store_ratio, std::uint64_t seed);
  MemRef next() override;
  /// Statistical: forwards the expected memory-op count `n_instr * mem_ratio`
  /// (fractional carry) to the block pattern; gap/store draws are iid so the
  /// RNG is untouched.
  void skip(std::uint64_t n_instr) override;

 private:
  std::unique_ptr<BlockPattern> pattern_;
  double mem_ratio_;
  double store_ratio_;
  double skip_carry_ = 0.0;
  Rng rng_;
};

}  // namespace esteem::trace

// The paper's workload lists (Table 1): 34 single-core benchmarks and 17
// dual-core multiprogrammed pairs (each benchmark used exactly once).
#pragma once

#include <string>
#include <vector>

namespace esteem::trace {

struct Workload {
  std::string name;                     ///< Paper acronym, e.g. "GkNe".
  std::vector<std::string> benchmarks;  ///< One benchmark name per core.
};

/// All 34 single-core workloads in Table 1 order.
std::vector<Workload> single_core_workloads();

/// The 17 dual-core pairs from Table 1.
std::vector<Workload> dual_core_workloads();

}  // namespace esteem::trace

#include "trace/file_trace.hpp"

#include <sstream>
#include <stdexcept>

namespace esteem::trace {

namespace {
constexpr const char* kMagic = "ESTEEM-TRACE v1";
}  // namespace

TraceFileWriter::TraceFileWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("TraceFileWriter: cannot open " + path);
  out_ << kMagic << '\n';
}

void TraceFileWriter::write(const MemRef& ref) {
  out_ << ref.gap << ' ' << (ref.is_store ? 'S' : 'L') << ' ' << std::hex
       << ref.block << std::dec << '\n';
  if (!out_) throw std::runtime_error("TraceFileWriter: write failed");
  ++records_;
}

void TraceFileWriter::close() {
  if (out_.is_open()) out_.close();
}

FileTraceGenerator::FileTraceGenerator(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("FileTraceGenerator: cannot open " + path);

  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    throw std::runtime_error("FileTraceGenerator: bad magic in " + path);
  }

  std::uint64_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    MemRef ref;
    char kind = 0;
    std::uint64_t gap = 0;
    if (!(is >> gap >> kind >> std::hex >> ref.block) || (kind != 'L' && kind != 'S')) {
      throw std::runtime_error("FileTraceGenerator: parse error at " + path + ":" +
                               std::to_string(line_no));
    }
    ref.gap = static_cast<std::uint32_t>(gap);
    ref.is_store = (kind == 'S');
    refs_.push_back(ref);
  }
  if (refs_.empty()) {
    throw std::runtime_error("FileTraceGenerator: empty trace " + path);
  }
}

MemRef FileTraceGenerator::next() {
  const MemRef ref = refs_[pos_];
  if (++pos_ >= refs_.size()) {
    pos_ = 0;
    ++loops_;
  }
  return ref;
}

void record_trace(AccessGenerator& generator, const std::string& path,
                  std::uint64_t count) {
  TraceFileWriter writer(path);
  for (std::uint64_t i = 0; i < count; ++i) writer.write(generator.next());
  writer.close();
}

}  // namespace esteem::trace

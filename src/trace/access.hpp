// Memory-reference record produced by the synthetic trace generators.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace esteem::trace {

/// One memory operation, preceded by `gap` non-memory instructions.
/// Batching the non-memory instructions into a single count keeps the
/// simulator's cost proportional to memory operations only.
struct MemRef {
  block_t block = 0;        ///< Cache-block number (line granularity).
  std::uint32_t gap = 0;    ///< Non-memory instructions retired before this op.
  bool is_store = false;
};

/// Geometry hints generators need to shape set-level reuse distances.
struct GeneratorContext {
  std::uint32_t l2_sets = 4096;
  std::uint32_t line_bytes = 64;
};

/// Abstract pull-based stream of block numbers (no gaps/stores; those are
/// layered on by InstructionMixer).
class BlockPattern {
 public:
  virtual ~BlockPattern() = default;
  virtual block_t next_block() = 0;
};

/// Abstract pull-based stream of memory references.
class AccessGenerator {
 public:
  virtual ~AccessGenerator() = default;
  virtual MemRef next() = 0;
};

}  // namespace esteem::trace

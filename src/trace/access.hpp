// Memory-reference record produced by the synthetic trace generators.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace esteem::trace {

/// One memory operation, preceded by `gap` non-memory instructions.
/// Batching the non-memory instructions into a single count keeps the
/// simulator's cost proportional to memory operations only.
struct MemRef {
  block_t block = 0;        ///< Cache-block number (line granularity).
  std::uint32_t gap = 0;    ///< Non-memory instructions retired before this op.
  bool is_store = false;
};

/// Geometry hints generators need to shape set-level reuse distances.
struct GeneratorContext {
  std::uint32_t l2_sets = 4096;
  std::uint32_t line_bytes = 64;
};

/// Abstract pull-based stream of block numbers (no gaps/stores; those are
/// layered on by InstructionMixer).
class BlockPattern {
 public:
  virtual ~BlockPattern() = default;
  virtual block_t next_block() = 0;

  /// Advance the stream past `n` blocks without materialising them. The
  /// sampling executor uses this to fast-forward between detailed windows.
  /// Deterministic patterns override with closed-form jumps; stochastic
  /// patterns whose draws are iid may leave the stream untouched (skipping
  /// iid draws is statistically a no-op). The default pulls and discards,
  /// which is always correct but linear-time.
  virtual void skip(std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) next_block();
  }
};

/// Abstract pull-based stream of memory references.
class AccessGenerator {
 public:
  virtual ~AccessGenerator() = default;
  virtual MemRef next() = 0;

  /// Advance the stream past ~`n_instr` retired instructions (each MemRef
  /// covers gap+1 of them) without materialising references. Default pulls
  /// and discards; InstructionMixer overrides with an expected-count jump.
  virtual void skip(std::uint64_t n_instr) {
    std::uint64_t done = 0;
    while (done < n_instr) {
      const MemRef r = next();
      done += static_cast<std::uint64_t>(r.gap) + 1;
    }
  }
};

}  // namespace esteem::trace

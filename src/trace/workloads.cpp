#include "trace/workloads.hpp"

#include "trace/spec_profiles.hpp"

namespace esteem::trace {

std::vector<Workload> single_core_workloads() {
  std::vector<Workload> out;
  for (const auto& p : all_profiles()) {
    out.push_back({std::string(p.acronym), {std::string(p.name)}});
  }
  return out;
}

std::vector<Workload> dual_core_workloads() {
  // Exactly the 17 pairs listed in Table 1.
  return {
      {"GmDl", {"gemsFDTD", "dealII"}},
      {"AsXb", {"astar", "xsbench"}},
      {"GcGa", {"gcc", "gamess"}},
      {"BzXa", {"bzip2", "xalancbmk"}},
      {"LsLb", {"leslie3d", "lbm"}},
      {"GkNe", {"gobmk", "nekbone"}},
      {"OmGr", {"omnetpp", "gromacs"}},
      {"NdCd", {"namd", "cactusADM"}},
      {"CaTo", {"calculix", "tonto"}},
      {"SpBw", {"sphinx", "bwaves"}},
      {"LqPo", {"libquantum", "povray"}},
      {"SjWr", {"sjeng", "wrf"}},
      {"PeZe", {"perlbench", "zeusmp"}},
      {"HmH2", {"hmmer", "h264ref"}},
      {"SoMi", {"soplex", "milc"}},
      {"McLu", {"mcf", "lulesh"}},
      {"CoAm", {"comd", "amg2013"}},
  };
}

}  // namespace esteem::trace

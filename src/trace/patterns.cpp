#include "trace/patterns.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace esteem::trace {

StreamingPattern::StreamingPattern(block_t base, std::uint64_t region_blocks,
                                   std::uint64_t stride)
    : base_(base), region_(std::max<std::uint64_t>(1, region_blocks)), stride_(stride) {
  if (stride_ == 0) throw std::invalid_argument("StreamingPattern: stride must be nonzero");
}

block_t StreamingPattern::next_block() {
  const block_t b = base_ + pos_;
  pos_ += stride_;
  if (pos_ >= region_) pos_ = 0;
  return b;
}

void StreamingPattern::skip(std::uint64_t n) {
  // pos_ only ever holds multiples of stride_ below region_, so the walk is
  // a cycle of length ceil(region/stride) over grid indices.
  const std::uint64_t cycle = (region_ + stride_ - 1) / stride_;
  const std::uint64_t idx = (pos_ / stride_ + n) % cycle;
  pos_ = idx * stride_;
}

RandomWorkingSetPattern::RandomWorkingSetPattern(block_t base, std::uint64_t ws_blocks,
                                                 std::uint64_t hot_blocks, double hot_prob,
                                                 std::uint64_t seed)
    : base_(base),
      ws_(std::max<std::uint64_t>(1, ws_blocks)),
      hot_(std::clamp<std::uint64_t>(hot_blocks, 1, ws_)),
      hot_prob_(hot_prob),
      rng_(seed) {}

block_t RandomWorkingSetPattern::next_block() {
  const std::uint64_t span = rng_.chance(hot_prob_) ? hot_ : ws_;
  return base_ + rng_.below(span);
}

NestedWorkingSetPattern::NestedWorkingSetPattern(block_t base, std::uint64_t ws_blocks,
                                                 std::uint32_t levels, double size_ratio,
                                                 double weight_ratio, std::uint64_t seed)
    : base_(base), rng_(seed) {
  if (levels == 0) throw std::invalid_argument("NestedWorkingSet: levels must be >= 1");
  if (size_ratio <= 0.0 || size_ratio >= 1.0) {
    throw std::invalid_argument("NestedWorkingSet: size_ratio must be in (0,1)");
  }
  if (weight_ratio <= 0.0) {
    throw std::invalid_argument("NestedWorkingSet: weight_ratio must be positive");
  }
  double size = static_cast<double>(std::max<std::uint64_t>(1, ws_blocks));
  double weight = 1.0;
  double acc = 0.0;
  for (std::uint32_t i = 0; i < levels; ++i) {
    level_size_.push_back(std::max<std::uint64_t>(1, static_cast<std::uint64_t>(size)));
    acc += weight;
    cumulative_.push_back(acc);
    size *= size_ratio;
    weight *= weight_ratio;
  }
  for (double& c : cumulative_) c /= acc;
  cumulative_.back() = 1.0;
}

block_t NestedWorkingSetPattern::next_block() {
  const double u = rng_.uniform();
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  const std::size_t lvl = std::min<std::size_t>(
      static_cast<std::size_t>(it - cumulative_.begin()), level_size_.size() - 1);
  return base_ + rng_.below(level_size_[lvl]);
}

namespace {
std::uint64_t ceil_pow2(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

PointerChasePattern::PointerChasePattern(block_t base, std::uint64_t ws_blocks,
                                         std::uint64_t seed)
    : base_(base), ws_pow2_(ceil_pow2(std::max<std::uint64_t>(2, ws_blocks))) {
  // Hull-Dobell for modulus 2^k: increment odd, multiplier = 1 (mod 4).
  std::uint64_t sm = seed;
  mult_ = (splitmix64(sm) & ~std::uint64_t{3}) | 1;  // = 1 (mod 4)
  inc_ = splitmix64(sm) | 1;                         // odd
  cur_ = splitmix64(sm) & (ws_pow2_ - 1);
}

block_t PointerChasePattern::next_block() {
  cur_ = (mult_ * cur_ + inc_) & (ws_pow2_ - 1);
  return base_ + cur_;
}

void PointerChasePattern::skip(std::uint64_t n) {
  // Compose x -> mult*x + inc with itself n times by repeated squaring; all
  // arithmetic mod 2^64 (a multiple of ws_pow2_, so the mask commutes).
  std::uint64_t a = mult_, c = inc_;
  std::uint64_t acc_a = 1, acc_c = 0;
  while (n != 0) {
    if (n & 1) {
      acc_a *= a;
      acc_c = acc_c * a + c;
    }
    c *= a + 1;
    a *= a;
    n >>= 1;
  }
  cur_ = (acc_a * cur_ + acc_c) & (ws_pow2_ - 1);
}

MultiScanPattern::MultiScanPattern(block_t base, std::vector<std::uint32_t> depths,
                                   const GeneratorContext& ctx,
                                   std::uint64_t sweeps_per_depth,
                                   std::uint32_t sets_span)
    : base_(base),
      depths_(std::move(depths)),
      total_sets_(ctx.l2_sets),
      span_(sets_span == 0 ? ctx.l2_sets : std::min(sets_span, ctx.l2_sets)),
      sweeps_per_depth_(std::max<std::uint64_t>(1, sweeps_per_depth)) {
  if (depths_.empty()) throw std::invalid_argument("MultiScanPattern: need >= 1 depth");
  for (auto d : depths_) {
    if (d == 0) throw std::invalid_argument("MultiScanPattern: depth must be >= 1");
  }
}

block_t MultiScanPattern::next_block() {
  // Walk row-major over a footprint of `depth` lines per set across the
  // first `span_` sets: block layout keeps the set index = pos % span_ while
  // distinct rows land in distinct cache lines of the same set.
  const std::uint64_t region = static_cast<std::uint64_t>(depths_[depth_idx_]) * span_;
  const block_t b =
      base_ + (pos_ / span_) * total_sets_ + (pos_ % span_);
  if (++pos_ >= region) {
    pos_ = 0;
    if (++sweep_ >= sweeps_per_depth_) {
      sweep_ = 0;
      depth_idx_ = (depth_idx_ + 1) % depths_.size();
    }
  }
  return b;
}

void MultiScanPattern::skip(std::uint64_t n) {
  std::uint64_t full = 0;
  for (std::uint32_t d : depths_) {
    full += static_cast<std::uint64_t>(d) * span_ * sweeps_per_depth_;
  }
  n %= full;
  while (n > 0) {
    const std::uint64_t region = static_cast<std::uint64_t>(depths_[depth_idx_]) * span_;
    const std::uint64_t left = region * (sweeps_per_depth_ - sweep_) - pos_;
    if (n < left) {
      const std::uint64_t adv = pos_ + n;
      sweep_ += adv / region;
      pos_ = adv % region;
      return;
    }
    n -= left;
    pos_ = 0;
    sweep_ = 0;
    depth_idx_ = (depth_idx_ + 1) % depths_.size();
  }
}

MixturePattern::MixturePattern(std::vector<std::unique_ptr<BlockPattern>> children,
                               std::vector<double> weights, std::uint64_t seed)
    : children_(std::move(children)), rng_(seed) {
  if (children_.empty() || children_.size() != weights.size()) {
    throw std::invalid_argument("MixturePattern: children/weights size mismatch");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("MixturePattern: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("MixturePattern: zero total weight");
  double acc = 0.0;
  for (double w : weights) {
    acc += w / total;
    cumulative_.push_back(acc);
  }
  cumulative_.back() = 1.0;  // guard against FP drift
  skip_carry_.assign(children_.size(), 0.0);
}

block_t MixturePattern::next_block() {
  const double u = rng_.uniform();
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  const std::size_t idx =
      std::min<std::size_t>(static_cast<std::size_t>(it - cumulative_.begin()),
                            children_.size() - 1);
  return children_[idx]->next_block();
}

void MixturePattern::skip(std::uint64_t n) {
  double prev = 0.0;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    const double weight = cumulative_[i] - prev;
    prev = cumulative_[i];
    const double due = static_cast<double>(n) * weight + skip_carry_[i];
    const auto whole = static_cast<std::uint64_t>(due);
    skip_carry_[i] = due - static_cast<double>(whole);
    if (whole > 0) children_[i]->skip(whole);
  }
}

PhasedPattern::PhasedPattern(std::vector<std::unique_ptr<BlockPattern>> children,
                             std::uint64_t refs_per_phase)
    : children_(std::move(children)),
      refs_per_phase_(std::max<std::uint64_t>(1, refs_per_phase)) {
  if (children_.empty()) throw std::invalid_argument("PhasedPattern: need >= 1 child");
}

block_t PhasedPattern::next_block() {
  const block_t b = children_[active_]->next_block();
  if (++pos_ >= refs_per_phase_) {
    pos_ = 0;
    active_ = (active_ + 1) % children_.size();
  }
  return b;
}

void PhasedPattern::skip(std::uint64_t n) {
  if (n == 0) return;
  std::vector<std::uint64_t> take(children_.size(), 0);
  std::size_t idx = active_;
  // Finish the current phase first.
  const std::uint64_t head = std::min(n, refs_per_phase_ - pos_);
  take[idx] += head;
  n -= head;
  pos_ += head;
  if (pos_ >= refs_per_phase_) {
    pos_ = 0;
    idx = (idx + 1) % children_.size();
  }
  // n > 0 here implies the head completed its phase, so pos_ == 0.
  const std::uint64_t phases = n / refs_per_phase_;
  const std::uint64_t per_child = phases / children_.size();
  if (per_child > 0) {
    for (std::uint64_t& t : take) t += per_child * refs_per_phase_;
  }
  for (std::uint64_t p = 0; p < phases % children_.size(); ++p) {
    take[(idx + p) % children_.size()] += refs_per_phase_;
  }
  idx = (idx + phases) % children_.size();
  n -= phases * refs_per_phase_;
  take[idx] += n;
  pos_ += n;
  active_ = idx;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (take[i] > 0) children_[i]->skip(take[i]);
  }
}

TemporalReusePattern::TemporalReusePattern(std::unique_ptr<BlockPattern> child,
                                           double reuse_prob, std::uint32_t window,
                                           std::uint64_t seed)
    : child_(std::move(child)), reuse_prob_(reuse_prob), ring_(window), rng_(seed) {
  if (!child_) throw std::invalid_argument("TemporalReuse: null child");
  if (window == 0) throw std::invalid_argument("TemporalReuse: window must be >= 1");
  if (reuse_prob_ < 0.0 || reuse_prob_ >= 1.0) {
    throw std::invalid_argument("TemporalReuse: reuse_prob must be in [0,1)");
  }
}

block_t TemporalReusePattern::next_block() {
  if (filled_ > 0 && rng_.chance(reuse_prob_)) {
    // Geometric recency bias: halve the candidate range per coin flip.
    std::uint32_t span = filled_;
    while (span > 1 && rng_.chance(0.5)) span = (span + 1) / 2;
    const std::uint32_t back = static_cast<std::uint32_t>(rng_.below(span));
    const std::uint32_t idx = (head_ + ring_.size() - 1 - back) %
                              static_cast<std::uint32_t>(ring_.size());
    return ring_[idx];
  }
  const block_t b = child_->next_block();
  ring_[head_] = b;
  head_ = (head_ + 1) % static_cast<std::uint32_t>(ring_.size());
  filled_ = std::min<std::uint32_t>(filled_ + 1, static_cast<std::uint32_t>(ring_.size()));
  return b;
}

void TemporalReusePattern::skip(std::uint64_t n) {
  const double due = static_cast<double>(n) * (1.0 - reuse_prob_) + skip_carry_;
  const auto fresh = static_cast<std::uint64_t>(due);
  skip_carry_ = due - static_cast<double>(fresh);
  // Skip the bulk, then pull the tail through the ring so the recency window
  // holds the blocks a continuous run would have ended on.
  const std::uint64_t warm = std::min<std::uint64_t>(fresh, ring_.size());
  child_->skip(fresh - warm);
  for (std::uint64_t i = 0; i < warm; ++i) {
    ring_[head_] = child_->next_block();
    head_ = (head_ + 1) % static_cast<std::uint32_t>(ring_.size());
    filled_ = std::min<std::uint32_t>(filled_ + 1,
                                      static_cast<std::uint32_t>(ring_.size()));
  }
}

InstructionMixer::InstructionMixer(std::unique_ptr<BlockPattern> pattern, double mem_ratio,
                                   double store_ratio, std::uint64_t seed)
    : pattern_(std::move(pattern)),
      mem_ratio_(mem_ratio),
      store_ratio_(store_ratio),
      rng_(seed) {
  if (!pattern_) throw std::invalid_argument("InstructionMixer: null pattern");
  if (mem_ratio_ <= 0.0 || mem_ratio_ > 1.0) {
    throw std::invalid_argument("InstructionMixer: mem_ratio must be in (0,1]");
  }
  if (store_ratio_ < 0.0 || store_ratio_ > 1.0) {
    throw std::invalid_argument("InstructionMixer: store_ratio must be in [0,1]");
  }
}

MemRef InstructionMixer::next() {
  MemRef ref;
  ref.block = pattern_->next_block();
  ref.is_store = rng_.chance(store_ratio_);
  // Geometric gap with mean 1/mem_ratio - 1 (inversion method). Capped so a
  // single op can never skip more than a few intervals' worth of work.
  if (mem_ratio_ < 1.0) {
    const double u = std::max(rng_.uniform(), 1e-12);
    const double g = std::floor(std::log(u) / std::log(1.0 - mem_ratio_));
    ref.gap = static_cast<std::uint32_t>(std::min(g, 1e6));
  }
  return ref;
}

void InstructionMixer::skip(std::uint64_t n_instr) {
  const double due = static_cast<double>(n_instr) * mem_ratio_ + skip_carry_;
  const auto refs = static_cast<std::uint64_t>(due);
  skip_carry_ = due - static_cast<double>(refs);
  if (refs > 0) pattern_->skip(refs);
}

}  // namespace esteem::trace

// Set -> module mapping (paper §3.1): the cache sets are logically divided
// into M contiguous, equally sized modules; reconfiguration decisions are
// made per module.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace esteem::cache {

class ModuleMap {
 public:
  ModuleMap() = default;

  /// Precondition: modules divides sets evenly.
  ModuleMap(std::uint32_t sets, std::uint32_t modules);

  std::uint32_t modules() const noexcept { return modules_; }
  std::uint32_t sets_per_module() const noexcept { return sets_per_module_; }

  std::uint32_t module_of(std::uint32_t set) const noexcept {
    return set / sets_per_module_;
  }
  std::uint32_t first_set(std::uint32_t module) const noexcept {
    return module * sets_per_module_;
  }

 private:
  std::uint32_t modules_ = 1;
  std::uint32_t sets_per_module_ = 1;
};

}  // namespace esteem::cache

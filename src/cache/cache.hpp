// Set-associative cache with true-LRU replacement, per-set active-way
// masking (selective-ways reconfiguration, paper §3.1/§5), dirty bits, and a
// line-lifecycle listener hook that the eDRAM refresh policies subscribe to.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace esteem::cache {

struct CacheParams {
  std::uint32_t sets = 1;
  std::uint32_t ways = 1;
};

/// Observer of line lifecycle events. All callbacks identify the line by its
/// (set, way) slot so policies can keep flat per-slot state.
class LineListener {
 public:
  virtual ~LineListener() = default;
  virtual void on_fill(std::uint32_t set, std::uint32_t way, block_t blk, cycle_t now) = 0;
  virtual void on_touch(std::uint32_t set, std::uint32_t way, cycle_t now) = 0;
  virtual void on_invalidate(std::uint32_t set, std::uint32_t way, bool dirty,
                             cycle_t now) = 0;

  /// Fast-lane opt-out: a listener with no per-touch state (empty on_touch)
  /// returns false and the cache skips the virtual dispatch on every hit —
  /// the hottest call site in the simulator. Queried once, at
  /// set_listener() time.
  virtual bool wants_touch() const noexcept { return true; }
};

/// Sentinel way index: the access neither hit nor allocated a slot (every
/// usable way of the set was disabled).
inline constexpr std::uint32_t kNoWay = ~std::uint32_t{0};

struct AccessOutcome {
  bool hit = false;
  /// Way of the slot the block occupies after the access (hit or fill);
  /// kNoWay when the access could not allocate.
  std::uint32_t way = kNoWay;
  /// On a hit, when LRU-position tracking is enabled (the default): recency
  /// position of the line among valid lines in its set (0 = MRU). Undefined
  /// on a miss or with tracking disabled (set_lru_tracking(false)).
  std::uint32_t lru_pos = 0;
  /// On a miss that evicted a victim: the victim block, else kInvalidBlock.
  block_t victim = kInvalidBlock;
  bool victim_dirty = false;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_evictions = 0;

  std::uint64_t accesses() const noexcept { return hits + misses; }
};

/// The storage/replacement core shared by L1, L2, and (implicitly, via the
/// never-reconfigured leader sets) the embedded ATD.
///
/// Invariant: valid lines live only in physical ways [0, active_ways(set)).
class SetAssocCache {
 public:
  SetAssocCache(const CacheParams& params, std::string name = "cache");

  std::uint32_t sets() const noexcept { return sets_; }
  std::uint32_t ways() const noexcept { return ways_; }
  const std::string& name() const noexcept { return name_; }

  /// Lookup + allocate-on-miss. Victim selection prefers an invalid slot,
  /// else the LRU valid line, among the set's active ways.
  AccessOutcome access(block_t blk, bool is_store, cycle_t now);

  /// Probe without side effects.
  bool contains(block_t blk) const noexcept;

  /// Invalidate a block if present (used for back-invalidation). Returns
  /// true if the line was present and dirty.
  bool invalidate(block_t blk, cycle_t now);

  /// Invalidate a specific slot (used by Refrint RPD's eager invalidation).
  /// No-op on an already-invalid slot. Returns true if the line was dirty.
  bool invalidate_slot(std::uint32_t set, std::uint32_t way, cycle_t now);

  /// Changes a set's active way count at cycle `now`. When shrinking, lines
  /// in deactivated ways are invalidated and reported through
  /// `on_evict(block, dirty)` (the paper: clean lines are discarded, dirty
  /// lines written back, §5); the listener sees the invalidations stamped
  /// with `now`, the actual reconfiguration cycle.
  void resize_set(std::uint32_t set, std::uint32_t new_active, cycle_t now,
                  const std::function<void(block_t, bool)>& on_evict);

  std::uint32_t active_ways(std::uint32_t set) const noexcept { return active_[set]; }

  /// Permanently retires a slot (fault-induced capacity degradation): any
  /// resident line is invalidated (listener notified) and the slot is never
  /// allocated again. Returns false if the slot was already disabled.
  bool disable_slot(std::uint32_t set, std::uint32_t way, cycle_t now);

  bool slot_disabled(std::uint32_t set, std::uint32_t way) const noexcept {
    return disabled_[idx(set, way)] != 0;
  }

  /// Number of slots retired by disable_slot().
  std::uint64_t disabled_slots() const noexcept { return disabled_count_; }

  /// Number of currently valid lines (maintained incrementally).
  std::uint64_t valid_lines() const noexcept { return valid_count_; }

  std::uint32_t set_index_of(block_t blk) const noexcept {
    return static_cast<std::uint32_t>(blk & (sets_ - 1));
  }

  const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  /// At most one listener (the refresh policy); may be null. The listener's
  /// wants_touch() is sampled here: per-touch notification is skipped
  /// entirely for listeners without per-touch state.
  void set_listener(LineListener* listener) noexcept {
    listener_ = listener;
    touch_listener_ = (listener != nullptr && listener->wants_touch()) ? listener : nullptr;
  }

  /// Enables/disables hit LRU-position computation (AccessOutcome::lru_pos).
  /// The position costs an O(ways) stamp scan per hit; the memory system
  /// turns it on only when a consumer (the ESTEEM leader-set profiler) reads
  /// it. On by default for API compatibility.
  void set_lru_tracking(bool enabled) noexcept { track_lru_ = enabled; }
  bool lru_tracking() const noexcept { return track_lru_; }

  /// True if the slot currently holds a valid line.
  bool slot_valid(std::uint32_t set, std::uint32_t way) const noexcept {
    return valid_[idx(set, way)] != 0;
  }
  bool slot_dirty(std::uint32_t set, std::uint32_t way) const noexcept {
    return dirty_[idx(set, way)] != 0;
  }
  block_t slot_block(std::uint32_t set, std::uint32_t way) const noexcept {
    return blocks_[idx(set, way)];
  }

 private:
  std::size_t idx(std::uint32_t set, std::uint32_t way) const noexcept {
    return static_cast<std::size_t>(set) * ways_ + way;
  }

  std::uint32_t sets_;
  std::uint32_t ways_;
  std::string name_;

  // Struct-of-arrays layout: one entry per (set, way) slot.
  std::vector<block_t> blocks_;
  std::vector<std::uint8_t> valid_;
  std::vector<std::uint8_t> dirty_;
  std::vector<std::uint8_t> disabled_;
  std::vector<std::uint64_t> stamp_;   // recency: larger = more recent
  std::vector<std::uint32_t> active_;  // active way count per set

  std::uint64_t stamp_counter_ = 0;
  std::uint64_t valid_count_ = 0;
  std::uint64_t disabled_count_ = 0;
  CacheStats stats_;
  LineListener* listener_ = nullptr;
  LineListener* touch_listener_ = nullptr;  ///< listener_ iff it wants_touch().
  bool track_lru_ = true;
};

}  // namespace esteem::cache

#include "cache/cache.hpp"

#include <stdexcept>

namespace esteem::cache {

SetAssocCache::SetAssocCache(const CacheParams& params, std::string name)
    : sets_(params.sets), ways_(params.ways), name_(std::move(name)) {
  if (sets_ == 0 || ways_ == 0) {
    throw std::invalid_argument("SetAssocCache: sets and ways must be >= 1");
  }
  if (!is_pow2(sets_)) {
    throw std::invalid_argument("SetAssocCache: set count must be a power of two");
  }
  const std::size_t slots = static_cast<std::size_t>(sets_) * ways_;
  blocks_.assign(slots, kInvalidBlock);
  valid_.assign(slots, 0);
  dirty_.assign(slots, 0);
  disabled_.assign(slots, 0);
  stamp_.assign(slots, 0);
  active_.assign(sets_, ways_);
}

AccessOutcome SetAssocCache::access(block_t blk, bool is_store, cycle_t now) {
  AccessOutcome out;
  const std::uint32_t set = set_index_of(blk);
  const std::uint32_t active = active_[set];
  const std::size_t base = idx(set, 0);

  // Lookup among active ways (the invariant keeps valid lines there).
  for (std::uint32_t w = 0; w < active; ++w) {
    if (valid_[base + w] && blocks_[base + w] == blk) {
      // Recency position: count valid lines touched more recently.
      std::uint32_t pos = 0;
      for (std::uint32_t v = 0; v < active; ++v) {
        if (v != w && valid_[base + v] && stamp_[base + v] > stamp_[base + w]) ++pos;
      }
      out.hit = true;
      out.way = w;
      out.lru_pos = pos;
      stamp_[base + w] = ++stamp_counter_;
      if (is_store) dirty_[base + w] = 1;
      ++stats_.hits;
      if (listener_ != nullptr) listener_->on_touch(set, w, now);
      return out;
    }
  }

  // Miss: pick an invalid usable active slot, else the LRU valid line.
  // Disabled (fault-retired) slots are never allocated.
  ++stats_.misses;
  std::uint32_t victim_way = kNoWay;
  std::uint64_t oldest = ~std::uint64_t{0};
  for (std::uint32_t w = 0; w < active; ++w) {
    if (disabled_[base + w]) continue;
    if (!valid_[base + w]) {
      victim_way = w;
      break;
    }
    if (stamp_[base + w] < oldest) {
      oldest = stamp_[base + w];
      victim_way = w;
    }
  }
  if (victim_way == kNoWay) return out;  // every usable way disabled: bypass

  if (valid_[base + victim_way]) {
    out.victim = blocks_[base + victim_way];
    out.victim_dirty = dirty_[base + victim_way] != 0;
    ++stats_.evictions;
    if (out.victim_dirty) ++stats_.dirty_evictions;
    --valid_count_;
    if (listener_ != nullptr) {
      listener_->on_invalidate(set, victim_way, out.victim_dirty, now);
    }
  }

  blocks_[base + victim_way] = blk;
  valid_[base + victim_way] = 1;
  dirty_[base + victim_way] = is_store ? 1 : 0;
  stamp_[base + victim_way] = ++stamp_counter_;
  ++valid_count_;
  out.way = victim_way;
  if (listener_ != nullptr) listener_->on_fill(set, victim_way, blk, now);
  return out;
}

bool SetAssocCache::contains(block_t blk) const noexcept {
  const std::uint32_t set = set_index_of(blk);
  const std::size_t base = idx(set, 0);
  for (std::uint32_t w = 0; w < active_[set]; ++w) {
    if (valid_[base + w] && blocks_[base + w] == blk) return true;
  }
  return false;
}

bool SetAssocCache::invalidate(block_t blk, cycle_t now) {
  const std::uint32_t set = set_index_of(blk);
  const std::size_t base = idx(set, 0);
  for (std::uint32_t w = 0; w < active_[set]; ++w) {
    if (valid_[base + w] && blocks_[base + w] == blk) {
      const bool was_dirty = dirty_[base + w] != 0;
      valid_[base + w] = 0;
      dirty_[base + w] = 0;
      --valid_count_;
      if (listener_ != nullptr) listener_->on_invalidate(set, w, was_dirty, now);
      return was_dirty;
    }
  }
  return false;
}

bool SetAssocCache::invalidate_slot(std::uint32_t set, std::uint32_t way, cycle_t now) {
  if (set >= sets_ || way >= ways_) {
    throw std::out_of_range("invalidate_slot: bad slot");
  }
  const std::size_t i = idx(set, way);
  if (!valid_[i]) return false;
  const bool was_dirty = dirty_[i] != 0;
  valid_[i] = 0;
  dirty_[i] = 0;
  --valid_count_;
  if (listener_ != nullptr) listener_->on_invalidate(set, way, was_dirty, now);
  return was_dirty;
}

bool SetAssocCache::disable_slot(std::uint32_t set, std::uint32_t way, cycle_t now) {
  if (set >= sets_ || way >= ways_) {
    throw std::out_of_range("disable_slot: bad slot");
  }
  const std::size_t i = idx(set, way);
  if (disabled_[i]) return false;
  invalidate_slot(set, way, now);
  disabled_[i] = 1;
  ++disabled_count_;
  return true;
}

void SetAssocCache::resize_set(std::uint32_t set, std::uint32_t new_active,
                               const std::function<void(block_t, bool)>& on_evict) {
  if (set >= sets_) throw std::out_of_range("resize_set: bad set index");
  if (new_active == 0 || new_active > ways_) {
    throw std::invalid_argument("resize_set: active count must be in [1, ways]");
  }
  const std::size_t base = idx(set, 0);
  // Shrinking: flush lines in the deactivated ways. The reconfiguration
  // happens off the critical access path (paper §5).
  for (std::uint32_t w = new_active; w < active_[set]; ++w) {
    if (valid_[base + w]) {
      const bool was_dirty = dirty_[base + w] != 0;
      if (on_evict) on_evict(blocks_[base + w], was_dirty);
      valid_[base + w] = 0;
      dirty_[base + w] = 0;
      --valid_count_;
      ++stats_.evictions;
      if (was_dirty) ++stats_.dirty_evictions;
      if (listener_ != nullptr) listener_->on_invalidate(set, w, was_dirty, 0);
    }
  }
  active_[set] = new_active;
}

}  // namespace esteem::cache

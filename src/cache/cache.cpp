#include "cache/cache.hpp"

#include <stdexcept>

namespace esteem::cache {

SetAssocCache::SetAssocCache(const CacheParams& params, std::string name)
    : sets_(params.sets), ways_(params.ways), name_(std::move(name)) {
  if (sets_ == 0 || ways_ == 0) {
    throw std::invalid_argument("SetAssocCache: sets and ways must be >= 1");
  }
  if (!is_pow2(sets_)) {
    throw std::invalid_argument("SetAssocCache: set count must be a power of two");
  }
  const std::size_t slots = static_cast<std::size_t>(sets_) * ways_;
  blocks_.assign(slots, kInvalidBlock);
  valid_.assign(slots, 0);
  dirty_.assign(slots, 0);
  disabled_.assign(slots, 0);
  stamp_.assign(slots, 0);
  active_.assign(sets_, ways_);
}

AccessOutcome SetAssocCache::access(block_t blk, bool is_store, cycle_t now) {
  AccessOutcome out;
  const std::uint32_t set = set_index_of(blk);
  const std::uint32_t active = active_[set];
  const std::size_t base = idx(set, 0);

  // Fused lookup + victim selection: one pass over the active ways finds the
  // hit way and, in the same sweep, the miss victim (first invalid usable
  // slot, else the LRU valid line — disabled slots are never allocated; a
  // valid line can never sit in a disabled slot, so only invalid slots need
  // the check). A hit abandons the victim scan early; a miss never rescans.
  std::uint32_t hit_way = kNoWay;
  std::uint32_t victim_way = kNoWay;
  std::uint64_t oldest = ~std::uint64_t{0};
  bool found_invalid = false;
  for (std::uint32_t w = 0; w < active; ++w) {
    const std::size_t i = base + w;
    if (valid_[i]) {
      if (blocks_[i] == blk) {
        hit_way = w;
        break;
      }
      if (!found_invalid && stamp_[i] < oldest) {
        oldest = stamp_[i];
        victim_way = w;
      }
    } else if (!found_invalid && !disabled_[i]) {
      found_invalid = true;
      victim_way = w;
    }
  }

  if (hit_way != kNoWay) {
    out.hit = true;
    out.way = hit_way;
    if (track_lru_) {
      // Recency position: count valid lines touched more recently. Computed
      // only when a consumer (the ESTEEM leader-set profiler) asked for it.
      std::uint32_t pos = 0;
      const std::uint64_t my_stamp = stamp_[base + hit_way];
      for (std::uint32_t v = 0; v < active; ++v) {
        if (v != hit_way && valid_[base + v] && stamp_[base + v] > my_stamp) ++pos;
      }
      out.lru_pos = pos;
    }
    stamp_[base + hit_way] = ++stamp_counter_;
    if (is_store) dirty_[base + hit_way] = 1;
    ++stats_.hits;
    if (touch_listener_ != nullptr) touch_listener_->on_touch(set, hit_way, now);
    return out;
  }

  ++stats_.misses;
  if (victim_way == kNoWay) return out;  // every usable way disabled: bypass

  if (valid_[base + victim_way]) {
    out.victim = blocks_[base + victim_way];
    out.victim_dirty = dirty_[base + victim_way] != 0;
    ++stats_.evictions;
    if (out.victim_dirty) ++stats_.dirty_evictions;
    --valid_count_;
    if (listener_ != nullptr) {
      listener_->on_invalidate(set, victim_way, out.victim_dirty, now);
    }
  }

  blocks_[base + victim_way] = blk;
  valid_[base + victim_way] = 1;
  dirty_[base + victim_way] = is_store ? 1 : 0;
  stamp_[base + victim_way] = ++stamp_counter_;
  ++valid_count_;
  out.way = victim_way;
  if (listener_ != nullptr) listener_->on_fill(set, victim_way, blk, now);
  return out;
}

bool SetAssocCache::contains(block_t blk) const noexcept {
  const std::uint32_t set = set_index_of(blk);
  const std::size_t base = idx(set, 0);
  for (std::uint32_t w = 0; w < active_[set]; ++w) {
    if (valid_[base + w] && blocks_[base + w] == blk) return true;
  }
  return false;
}

bool SetAssocCache::invalidate(block_t blk, cycle_t now) {
  const std::uint32_t set = set_index_of(blk);
  const std::size_t base = idx(set, 0);
  for (std::uint32_t w = 0; w < active_[set]; ++w) {
    if (valid_[base + w] && blocks_[base + w] == blk) {
      const bool was_dirty = dirty_[base + w] != 0;
      valid_[base + w] = 0;
      dirty_[base + w] = 0;
      --valid_count_;
      if (listener_ != nullptr) listener_->on_invalidate(set, w, was_dirty, now);
      return was_dirty;
    }
  }
  return false;
}

bool SetAssocCache::invalidate_slot(std::uint32_t set, std::uint32_t way, cycle_t now) {
  if (set >= sets_ || way >= ways_) {
    throw std::out_of_range("invalidate_slot: bad slot");
  }
  const std::size_t i = idx(set, way);
  if (!valid_[i]) return false;
  const bool was_dirty = dirty_[i] != 0;
  valid_[i] = 0;
  dirty_[i] = 0;
  --valid_count_;
  if (listener_ != nullptr) listener_->on_invalidate(set, way, was_dirty, now);
  return was_dirty;
}

bool SetAssocCache::disable_slot(std::uint32_t set, std::uint32_t way, cycle_t now) {
  if (set >= sets_ || way >= ways_) {
    throw std::out_of_range("disable_slot: bad slot");
  }
  const std::size_t i = idx(set, way);
  if (disabled_[i]) return false;
  invalidate_slot(set, way, now);
  disabled_[i] = 1;
  ++disabled_count_;
  return true;
}

void SetAssocCache::resize_set(std::uint32_t set, std::uint32_t new_active, cycle_t now,
                               const std::function<void(block_t, bool)>& on_evict) {
  if (set >= sets_) throw std::out_of_range("resize_set: bad set index");
  if (new_active == 0 || new_active > ways_) {
    throw std::invalid_argument("resize_set: active count must be in [1, ways]");
  }
  const std::size_t base = idx(set, 0);
  // Shrinking: flush lines in the deactivated ways. The reconfiguration
  // happens off the critical access path (paper §5), but the listener still
  // sees the true reconfiguration cycle so timestamp-keeping refresh
  // policies stay consistent.
  for (std::uint32_t w = new_active; w < active_[set]; ++w) {
    if (valid_[base + w]) {
      const bool was_dirty = dirty_[base + w] != 0;
      if (on_evict) on_evict(blocks_[base + w], was_dirty);
      valid_[base + w] = 0;
      dirty_[base + w] = 0;
      --valid_count_;
      ++stats_.evictions;
      if (was_dirty) ++stats_.dirty_evictions;
      if (listener_ != nullptr) listener_->on_invalidate(set, w, was_dirty, now);
    }
  }
  active_[set] = new_active;
}

}  // namespace esteem::cache

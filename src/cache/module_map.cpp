#include "cache/module_map.hpp"

namespace esteem::cache {

ModuleMap::ModuleMap(std::uint32_t sets, std::uint32_t modules) : modules_(modules) {
  if (modules == 0 || sets == 0 || sets % modules != 0) {
    throw std::invalid_argument("ModuleMap: modules must divide sets");
  }
  sets_per_module_ = sets / modules;
}

}  // namespace esteem::cache

#include "cache/bank.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace esteem::cache {

BankTimer::BankTimer(double refresh_occupancy_cycles,
                     std::uint32_t access_occupancy_cycles, double queue_pressure)
    : refresh_occ_(refresh_occupancy_cycles),
      refresh_occ_eff_(refresh_occupancy_cycles),
      access_occ_(access_occupancy_cycles),
      queue_pressure_(queue_pressure) {
  if (!(refresh_occupancy_cycles > 0.0) || access_occupancy_cycles == 0) {
    throw std::invalid_argument("BankTimer: occupancies must be positive");
  }
  if (queue_pressure < 0.0) {
    throw std::invalid_argument("BankTimer: queue pressure must be >= 0");
  }
}

double BankTimer::analytic_delay() const noexcept {
  if (queue_pressure_ <= 0.0) return 0.0;
  const double r = refresh_share();
  const double rho = std::min(0.97, r + demand_share_);
  if (rho <= 0.0) return 0.0;
  // Utilization-weighted mean service time of the contending traffic.
  const double s_mix = (r * refresh_occ_eff_ + demand_share_ * access_occ_) / rho;
  return queue_pressure_ * 0.5 * s_mix * rho / (1.0 - rho);
}

void BankTimer::set_refresh_spacing(double cycles_between_refreshes, cycle_t now) {
  drain_refreshes(static_cast<double>(now));
  spacing_ = cycles_between_refreshes;
  if (!(spacing_ > 0.0)) {
    throw std::invalid_argument("BankTimer: refresh spacing must be positive");
  }
  refresh_occ_eff_ = std::min(refresh_occ_, kMaxRefreshShare * spacing_);
  next_slot_ = std::isinf(spacing_) ? kInf : static_cast<double>(now) + spacing_;
}

void BankTimer::drain_refreshes(double now) {
  if (next_slot_ > now) return;
  // Slots t_1..t_n <= now with t_j = next_slot_ + (j-1)*spacing_. Serving
  // them in order gives the closed form below (each slot starts at
  // max(previous finish, its own time) and occupies refresh_occ_ cycles).
  const double n = std::floor((now - next_slot_) / spacing_) + 1.0;
  const double t1 = next_slot_;
  const double tn = t1 + (n - 1.0) * spacing_;
  free_at_ = std::max({free_at_ + n * refresh_occ_eff_, t1 + n * refresh_occ_eff_,
                       tn + refresh_occ_eff_});
  next_slot_ = t1 + n * spacing_;
  slots_ += static_cast<std::uint64_t>(n);
}

cycle_t BankTimer::access(cycle_t now) {
  const double t = static_cast<double>(now);
  drain_refreshes(t);
  free_at_ = std::min(free_at_, t + kMaxBacklogCycles);  // bounded saturation
  const double wait = std::max(0.0, free_at_ - t) + analytic_delay();
  free_at_ = std::max(free_at_, t) + access_occ_;

  // Roll the demand-utilization window.
  if (t - window_start_ >= kDemandWindowCycles) {
    demand_share_ = std::min(1.0, window_busy_ / (t - window_start_));
    window_start_ = t;
    window_busy_ = 0.0;
  }
  window_busy_ += access_occ_;
  return static_cast<cycle_t>(wait);
}

BankGroup::BankGroup(std::uint32_t banks, std::uint32_t sets,
                     double refresh_occupancy_cycles,
                     std::uint32_t access_occupancy_cycles, double queue_pressure) {
  if (banks == 0 || (banks & (banks - 1)) != 0) {
    throw std::invalid_argument("BankGroup: bank count must be a power of two");
  }
  if (sets < banks) throw std::invalid_argument("BankGroup: more banks than sets");
  timers_.reserve(banks);
  for (std::uint32_t b = 0; b < banks; ++b) {
    timers_.emplace_back(refresh_occupancy_cycles, access_occupancy_cycles,
                         queue_pressure);
  }
}

void BankGroup::set_refresh_load(double lines_per_period, double period_cycles,
                                 cycle_t now) {
  const double per_bank = lines_per_period / static_cast<double>(timers_.size());
  const double spacing = per_bank > 0.0
                             ? period_cycles / per_bank
                             : std::numeric_limits<double>::infinity();
  for (auto& t : timers_) t.set_refresh_spacing(spacing, now);
}

cycle_t BankGroup::access(std::uint32_t set, cycle_t now) {
  return timers_[bank_of(set)].access(now);
}

std::uint64_t BankGroup::total_refresh_slots() const noexcept {
  std::uint64_t total = 0;
  for (const auto& t : timers_) total += t.refresh_slots();
  return total;
}

}  // namespace esteem::cache

// Per-bank busy-window timing model coupling refresh load to demand access
// latency.
//
// Refresh requests are injected as evenly spaced slots at a configurable
// rate (lines to refresh per retention period / retention cycles). Demand
// accesses queue behind pending refresh slots and earlier accesses; the
// extra wait is the performance cost of refresh (paper §7.2: "refresh
// operations also make the cache unavailable, leading to performance
// loss"). Pending slots are drained with an O(1) closed form, so the model
// costs constant time per access regardless of how long the bank was idle.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/types.hpp"

namespace esteem::cache {

class BankTimer {
 public:
  /// `queue_pressure` scales an analytic M/G/1-style delay term,
  /// 0.5 * s * rho / (1 - rho), added on top of the explicit busy-window
  /// wait. The explicit window is deterministic (evenly spaced refresh), so
  /// by itself it underestimates the queueing of real, jittery arrivals at
  /// mid utilizations; the analytic term restores that cost smoothly.
  /// 0 disables the term (pure busy-window model).
  BankTimer(double refresh_occupancy_cycles, std::uint32_t access_occupancy_cycles,
            double queue_pressure = 0.0);

  /// Sets the spacing between refresh slots in cycles; infinity disables
  /// refresh injection. Takes effect from `now` onward.
  void set_refresh_spacing(double cycles_between_refreshes, cycle_t now);

  /// Serves one demand access arriving at `now`; returns the queue wait in
  /// cycles experienced before service starts.
  cycle_t access(cycle_t now);

  /// Refresh slots processed so far (timing-side count; energy-side refresh
  /// counting lives in the refresh policies).
  std::uint64_t refresh_slots() const noexcept { return slots_; }

  double refresh_spacing() const noexcept { return spacing_; }

 private:
  void drain_refreshes(double now);

  static constexpr double kInf = std::numeric_limits<double>::infinity();

  /// A real pipelined refresh engine can always sustain its schedule; the
  /// configured occupancy is *interference*, so it is clamped to 90% of the
  /// slot spacing (refresh alone never over-subscribes a bank).
  static constexpr double kMaxRefreshShare = 0.9;

  /// Upper bound on how far a bank may fall behind. When demand + refresh
  /// transiently exceed capacity this caps the queueing penalty (a real
  /// controller would throttle or drop requests long before this), keeping
  /// saturated configurations painful but finite.
  static constexpr double kMaxBacklogCycles = 1000.0;

  /// Bank utilization consumed by the refresh schedule.
  double refresh_share() const noexcept {
    return std::isinf(spacing_) ? 0.0 : refresh_occ_eff_ / spacing_;
  }
  double analytic_delay() const noexcept;

  double refresh_occ_;       ///< Configured interference per refresh.
  double refresh_occ_eff_;   ///< Clamped to kMaxRefreshShare * spacing.
  double access_occ_;
  double queue_pressure_;
  double spacing_ = kInf;
  double next_slot_ = kInf;
  double free_at_ = 0.0;
  std::uint64_t slots_ = 0;

  // Demand-utilization sampling window for the analytic delay term.
  static constexpr double kDemandWindowCycles = 4096.0;
  double window_start_ = 0.0;
  double window_busy_ = 0.0;
  double demand_share_ = 0.0;
};

/// Bank group: maps a set index to one of `banks` BankTimers and spreads the
/// aggregate refresh load evenly across them.
class BankGroup {
 public:
  BankGroup(std::uint32_t banks, std::uint32_t sets, double refresh_occupancy_cycles,
            std::uint32_t access_occupancy_cycles, double queue_pressure = 0.0);

  std::uint32_t banks() const noexcept { return static_cast<std::uint32_t>(timers_.size()); }

  /// Distributes `lines_per_period / period_cycles` of refresh work evenly
  /// over the banks. lines_per_period == 0 disables refresh injection.
  void set_refresh_load(double lines_per_period, double period_cycles, cycle_t now);

  /// Serves an access to `set`; returns the bank queue wait.
  cycle_t access(std::uint32_t set, cycle_t now);

  std::uint64_t total_refresh_slots() const noexcept;

 private:
  std::uint32_t bank_of(std::uint32_t set) const noexcept {
    return set & (static_cast<std::uint32_t>(timers_.size()) - 1);
  }

  std::vector<BankTimer> timers_;
};

}  // namespace esteem::cache

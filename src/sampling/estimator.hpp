// Point estimates with Student-t confidence intervals for the SMARTS-style
// systematic-sampling executor (docs/SAMPLING.md). Per-window observations
// accumulate into a SampleSeries; the series turns into an Estimate by
// scaling the window mean up to the full run and attaching a 95% half-CI
// derived from the standard error of the mean.
#pragma once

#include <cstddef>

namespace esteem::sampling {

/// A point estimate with a symmetric 95% confidence half-interval:
/// the true (exhaustive) value is claimed to lie in [value - half_ci,
/// value + half_ci] with 95% confidence (plus the non-sampling bias
/// allowance documented in docs/SAMPLING.md).
struct Estimate {
  double value = 0.0;
  double half_ci = 0.0;

  /// half_ci as a fraction of the point value (0 when value == 0).
  double relative() const noexcept;
};

/// Two-sided 97.5% Student-t quantile for `dof` degrees of freedom — the
/// multiplier turning a standard error into a 95% confidence half-interval.
/// Exact table for small dof, 1.96 asymptote for large.
double student_t_975(std::size_t dof);

/// Streaming accumulator of per-window observations (Welford's algorithm,
/// so long series stay numerically stable).
class SampleSeries {
 public:
  void add(double x) noexcept;

  std::size_t n() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  double stddev() const noexcept;

  /// `scale * mean` with half-CI `scale * t_{n-1} * s / sqrt(n)`. With n < 2
  /// the CI is 0 (callers enforce >= 2 windows before trusting one).
  Estimate estimate(double scale = 1.0) const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace esteem::sampling

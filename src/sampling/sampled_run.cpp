#include "sampling/sampled_run.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace esteem::sampling {

namespace {

constexpr cycle_t kNever = std::numeric_limits<cycle_t>::max();

/// Drives the shared interval clock exactly as cpu::System::run does:
/// boundaries fire once every core has passed them (wall = min core clock).
/// Armed only for the measured region; `next = kNever` during warm-up.
struct IntervalClock {
  cpu::MemorySystem& mem;
  std::vector<cpu::Core>& cores;
  cpu::RawRunResult& result;
  bool record_timeline;
  cycle_t interval;
  cycle_t next = kNever;

  cycle_t wall() const {
    cycle_t w = cores[0].cycles();
    for (std::size_t c = 1; c < cores.size(); ++c) {
      w = std::min(w, cores[c].cycles());
    }
    return w;
  }

  void pump() {
    if (next == kNever) return;
    const cycle_t w = wall();
    while (w >= next) {
      mem.tick_interval(next);
      if (record_timeline) {
        result.timeline.push_back(cpu::IntervalSample{
            next, mem.active_fraction(), mem.module_active_ways()});
      }
      next += interval;
    }
  }
};

/// Lockstep-steps cores (smallest local clock first, as in System::run)
/// until each has retired at least `targets[c]` instructions. Unlike the
/// exhaustive end-of-run rule, a core stops at its segment boundary so the
/// instruction-space segment schedule stays aligned across cores — the
/// resulting loss of tail contention inside windows is a documented bias.
template <typename StepFn>
void run_segment(std::vector<cpu::Core>& cores,
                 const std::vector<instr_t>& targets, IntervalClock& clock,
                 StepFn&& step) {
  std::vector<bool> done(cores.size());
  std::size_t remaining = 0;
  for (std::size_t c = 0; c < cores.size(); ++c) {
    done[c] = cores[c].instret() >= targets[c];
    if (!done[c]) ++remaining;
  }
  while (remaining > 0) {
    std::size_t next = cores.size();
    for (std::size_t c = 0; c < cores.size(); ++c) {
      if (done[c]) continue;
      if (next == cores.size() || cores[c].cycles() < cores[next].cycles()) {
        next = c;
      }
    }
    step(next);
    if (cores[next].instret() >= targets[next]) {
      done[next] = true;
      --remaining;
    }
    clock.pump();
  }
}

/// Re-aligns multicore clocks at segment boundaries by idling every core to
/// the max. Analytic segments advance each core at its own CPI estimate, so
/// the clocks skew apart in time; the shared bank/channel model would charge
/// that skew to the lagging core's next access as queueing delay (the ahead
/// core's reservations sit millions of cycles in its future), which inflates
/// its window CPI, which widens the next skip's skew — a divergent feedback
/// loop. Idling the fast core at the boundary is the time-domain face of the
/// instruction-space schedule bias documented in docs/SAMPLING.md §5.
void align_clocks(std::vector<cpu::Core>& cores) {
  if (cores.size() < 2) return;
  cycle_t m = 0;
  for (const cpu::Core& core : cores) m = std::max(m, core.cycles());
  for (cpu::Core& core : cores) core.idle_until(m);
}

std::uint64_t rounded(double v) {
  return v > 0.0 ? static_cast<std::uint64_t>(v + 0.5) : 0;
}

}  // namespace

SampledRunResult run_sampled(cpu::System& sys, const cpu::RunOptions& options,
                             const SamplingConfig& sc) {
  cpu::MemorySystem& mem = sys.memory();
  std::vector<cpu::Core>& cores = sys.cores();
  const std::size_t ncores = cores.size();

  const instr_t period = sc.period_instr;
  const instr_t window = sc.window_instr;
  const instr_t dwarm = sc.detail_warm_instr;
  const instr_t ffwarm = sc.ff_warm_instr;
  const instr_t pre_skip = period - window - dwarm - ffwarm;  // validated > 0
  const std::uint64_t nwindows = options.instr_per_core / period;
  if (nwindows < 2) {
    throw std::invalid_argument(
        "sampling: instr_per_core must cover >= 2 periods (got " +
        std::to_string(options.instr_per_core) + " instructions at period " +
        std::to_string(period) + ")");
  }

  SampledRunResult out;
  cpu::RawRunResult& result = out.raw;
  result.instr_per_core = options.instr_per_core;
  result.ipc.assign(ncores, 0.0);
  mem.set_sampled_mode(true);

  IntervalClock clock{mem, cores, result, options.record_timeline,
                      sys.config().esteem.interval_cycles};

  // --- Warm-up: analytic skip, then a functional-warming tail that rebuilds
  // cache/refresh/profiler state before measurement (the refresh engine
  // catches up to the skipped time on the first warming access). The clock
  // advances at CPI 1 here; warm-up timing is never measured.
  std::vector<double> cpi(ncores, 1.0);
  const instr_t warm_tail =
      std::min(options.warmup_instr_per_core, sc.cold_warm_instr);
  const instr_t warm_skip = options.warmup_instr_per_core - warm_tail;
  if (warm_skip > 0) {
    for (cpu::Core& core : cores) core.skip(warm_skip, 1.0);
  }
  if (warm_tail > 0) {
    mem.set_warming(true);
    std::vector<instr_t> warm_target(ncores, options.warmup_instr_per_core);
    run_segment(cores, warm_target, clock,
                [&](std::size_t c) { cores[c].step_warm(mem, cpi[c]); });
    mem.set_warming(false);
  }
  align_clocks(cores);

  cycle_t measure_start = cores[0].cycles();
  for (std::size_t c = 1; c < ncores; ++c) {
    measure_start = std::min(measure_start, cores[c].cycles());
  }
  mem.reset_measurement(measure_start);
  if (options.telemetry != nullptr) {
    mem.set_telemetry(options.telemetry, measure_start);
  }
  clock.next = measure_start + clock.interval;

  std::vector<instr_t> base_instr(ncores);
  for (std::size_t c = 0; c < ncores; ++c) base_instr[c] = cores[c].instret();

  // Per-window observation series. Flow counters are recorded as
  // per-instruction rates over the window's aggregate retired instructions.
  std::vector<SampleSeries> ipc_series(ncores), cpi_series(ncores);
  SampleSeries s_l2_hits, s_l2_misses, s_demand_hits, s_demand_misses;
  SampleSeries s_wb_accesses, s_mm, s_mm_writebacks, s_corrected;

  std::vector<instr_t> seg_target(ncores);
  std::vector<instr_t> w_i0(ncores);
  std::vector<cycle_t> w_c0(ncores);

  for (std::uint64_t k = 0; k < nwindows; ++k) {
    // SKIP: analytic fast-forward at the running CPI estimate.
    for (std::size_t c = 0; c < ncores; ++c) {
      seg_target[c] = base_instr[c] + k * period + pre_skip;
      if (cores[c].instret() < seg_target[c]) {
        cores[c].skip(seg_target[c] - cores[c].instret(), cpi[c]);
      }
    }
    align_clocks(cores);
    clock.pump();

    // FF_WARM: functional warming re-establishes microarchitectural state.
    mem.set_warming(true);
    for (std::size_t c = 0; c < ncores; ++c) seg_target[c] += ffwarm;
    run_segment(cores, seg_target, clock,
                [&](std::size_t c) { cores[c].step_warm(mem, cpi[c]); });
    mem.set_warming(false);
    align_clocks(cores);

    // DETAIL_WARM: detailed execution, unmeasured — drains the warming-mode
    // timing transient (cold banks, unloaded memory channel) before the
    // window opens.
    for (std::size_t c = 0; c < ncores; ++c) seg_target[c] += dwarm;
    run_segment(cores, seg_target, clock,
                [&](std::size_t c) { cores[c].step(mem); });

    // WINDOW: detailed and measured.
    const cpu::FlowSnapshot before = mem.flow_snapshot(clock.wall());
    for (std::size_t c = 0; c < ncores; ++c) {
      w_i0[c] = cores[c].instret();
      w_c0[c] = cores[c].cycles();
      seg_target[c] += window;
    }
    run_segment(cores, seg_target, clock,
                [&](std::size_t c) { cores[c].step(mem); });
    const cpu::FlowSnapshot after = mem.flow_snapshot(clock.wall());

    double w_instr = 0.0;
    for (std::size_t c = 0; c < ncores; ++c) {
      const double di = static_cast<double>(cores[c].instret() - w_i0[c]);
      const double dc = static_cast<double>(cores[c].cycles() - w_c0[c]);
      ipc_series[c].add(di / dc);
      cpi_series[c].add(dc / di);
      cpi[c] = cpi_series[c].mean();  // refine the fast-forward clock rate
      w_instr += di;
    }
    const auto rate = [w_instr](std::uint64_t hi, std::uint64_t lo) {
      return static_cast<double>(hi - lo) / w_instr;
    };
    // Reconfiguration/decay flushes are tick-driven, not flow: an interval
    // boundary inside the window would inject one flush's worth of memory
    // writes into this 40k-instruction rate sample and get amplified by the
    // whole-run scale. They are excluded here and accounted once, globally.
    const std::uint64_t d_flush =
        after.reconfig_writebacks - before.reconfig_writebacks;
    s_l2_hits.add(rate(after.l2_hits, before.l2_hits));
    s_l2_misses.add(rate(after.l2_misses, before.l2_misses));
    s_demand_hits.add(rate(after.demand_hits, before.demand_hits));
    s_demand_misses.add(rate(after.demand_misses, before.demand_misses));
    s_wb_accesses.add(
        rate(after.l2_writeback_accesses, before.l2_writeback_accesses));
    s_mm.add(rate(after.mm_reads + after.mm_writes,
                  before.mm_reads + before.mm_writes + d_flush));
    s_mm_writebacks.add(
        rate(after.mm_writebacks, before.mm_writebacks + d_flush));
    s_corrected.add(rate(after.corrected_reads, before.corrected_reads));
  }

  // Tail: skip the residual past the last window so the run covers exactly
  // instr_per_core instructions of simulated time.
  for (std::size_t c = 0; c < ncores; ++c) {
    const instr_t final_target = base_instr[c] + options.instr_per_core;
    if (cores[c].instret() < final_target) {
      cores[c].skip(final_target - cores[c].instret(), cpi[c]);
    }
  }
  clock.pump();

  cycle_t wall_end = 0;
  for (const cpu::Core& core : cores) {
    wall_end = std::max(wall_end, core.cycles());
  }
  mem.finish(wall_end);

  // --- Assemble estimates and the exhaustive-shaped point result. ---
  const double total_instr =
      static_cast<double>(options.instr_per_core) * static_cast<double>(ncores);

  SamplingEstimates& est = out.estimates;
  est.enabled = true;
  est.windows = nwindows;
  est.window_instr = window;
  est.detailed_instr = nwindows * (dwarm + window);

  est.ipc.resize(ncores);
  for (std::size_t c = 0; c < ncores; ++c) {
    est.ipc[c] = ipc_series[c].estimate();
    result.ipc[c] = est.ipc[c].value;
  }

  result.total_instructions = options.instr_per_core * ncores;
  result.wall_cycles = wall_end - measure_start;
  {
    // The internal clock already advanced every skip at the measured CPI, so
    // it IS the wall estimate; its CI comes from the slowest core's CPI
    // spread scaled to its full instruction count.
    std::size_t slow = 0;
    for (std::size_t c = 1; c < ncores; ++c) {
      if (cpi_series[c].mean() > cpi_series[slow].mean()) slow = c;
    }
    const Estimate slow_wall = cpi_series[slow].estimate(
        static_cast<double>(options.instr_per_core));
    est.wall_cycles =
        Estimate{static_cast<double>(result.wall_cycles), slow_wall.half_ci};
  }

  est.l2_hits = s_l2_hits.estimate(total_instr);
  est.l2_misses = s_l2_misses.estimate(total_instr);
  est.demand_hits = s_demand_hits.estimate(total_instr);
  est.demand_misses = s_demand_misses.estimate(total_instr);
  est.l2_writeback_accesses = s_wb_accesses.estimate(total_instr);
  est.mm_writebacks = s_mm_writebacks.estimate(total_instr);
  est.corrected_reads = s_corrected.estimate(total_instr);
  // Demand memory traffic is window-sampled; reconfiguration/decay flush
  // writebacks are tick-driven and ran continuously, so add them globally.
  est.mm_accesses = s_mm.estimate(total_instr);
  est.mm_accesses.value +=
      static_cast<double>(mem.stats().reconfig_writebacks);

  // Refreshes accrued continuously on the estimated clock; their only
  // sampling uncertainty is the clock's.
  const double refr = static_cast<double>(mem.refreshes());
  const double wall_rel = est.wall_cycles.relative();
  est.refreshes = Estimate{refr, refr * wall_rel};

  result.counters = mem.energy_counters(wall_end);
  est.fa_fraction = result.counters.seconds > 0.0
                        ? result.counters.fa_seconds / result.counters.seconds
                        : 1.0;

  // Overwrite the flow counters the hierarchy accumulated (contaminated by
  // warming, missing the skips) with the window estimates; time-accruing
  // fields (seconds, fa_seconds, refreshes, transitions) stay as measured.
  result.counters.l2_hits = rounded(est.l2_hits.value);
  result.counters.l2_misses = rounded(est.l2_misses.value);
  result.counters.mm_accesses = rounded(est.mm_accesses.value);
  result.counters.ecc_corrections = rounded(est.corrected_reads.value);

  result.mem_stats = mem.stats();
  result.mem_stats.demand_l2_hits = rounded(est.demand_hits.value);
  result.mem_stats.demand_l2_misses = rounded(est.demand_misses.value);
  result.mem_stats.l2_writeback_accesses =
      rounded(est.l2_writeback_accesses.value);
  result.mem_stats.mm_writebacks =
      rounded(est.mm_writebacks.value +
              static_cast<double>(mem.stats().reconfig_writebacks));

  result.refreshes = mem.refreshes();
  result.demand_misses = rounded(est.demand_misses.value);
  result.avg_active_ratio = est.fa_fraction;
  result.faults = mem.fault_counters();
  result.faults.corrected_reads = rounded(est.corrected_reads.value);
  result.disabled_slots = mem.disabled_slots();
  return out;
}

}  // namespace esteem::sampling

// The statistical side of a sampled run: every flow metric as a point
// estimate with a 95% confidence half-interval. RawRunResult keeps carrying
// the point values (rounded) so everything downstream of an exhaustive run
// works unchanged; this struct rides alongside for CI-aware consumers
// (sweep CSV, figure report, telemetry).
#pragma once

#include <cstdint>
#include <vector>

#include "sampling/estimator.hpp"

namespace esteem::sampling {

struct SamplingEstimates {
  bool enabled = false;          ///< False for exhaustive runs (all fields unset).
  std::uint64_t windows = 0;     ///< Number of measured detailed windows.
  std::uint64_t window_instr = 0;        ///< Instructions per window per core.
  std::uint64_t detailed_instr = 0;      ///< Detailed instructions per core
                                         ///< (windows + detailed warm-up).

  // Timing. wall_cycles.value is the executor's internal clock (skips advance
  // it at the running CPI estimate); its CI derives from the slowest core's
  // window-CPI spread. ipc has one entry per core.
  Estimate wall_cycles;
  std::vector<Estimate> ipc;

  // Flow counters, scaled from per-instruction window rates to run totals
  // (ratio estimator, docs/SAMPLING.md).
  Estimate l2_hits;
  Estimate l2_misses;
  Estimate demand_hits;
  Estimate demand_misses;
  Estimate l2_writeback_accesses;
  Estimate mm_accesses;
  Estimate mm_writebacks;
  Estimate corrected_reads;

  // Time-accruing counters are taken from the continuously running refresh/
  // fault machinery (they accrue through skips), so their point value is
  // exact given the clock; the CI is the clock's relative CI.
  Estimate refreshes;
  double fa_fraction = 1.0;  ///< Time-weighted F_A over the measured region.

  // Filled by the experiment layer (needs the energy model): total energy
  // with a CI from propagating each counter's half-CI through Eq. 2-8.
  Estimate energy_j;
};

}  // namespace esteem::sampling

// SMARTS-style systematic-sampling executor (Wunderlich et al., ISCA'03,
// adapted to this simulator — see docs/SAMPLING.md).
//
// Instead of simulating every instruction in detail, the run is divided into
// fixed periods; each period ends in a short detailed measurement window and
// the rest is covered by an analytic generator skip plus a functional-warming
// ramp that keeps cache tags/LRU/dirty bits, refresh and fault epochs, and
// the ESTEEM profiler warm. Only timing/energy accounting is sampled: the
// per-window deltas become ratio estimates with Student-t confidence
// intervals, while time-accruing machinery (refresh engine, fault epochs,
// the reconfiguration controller) runs continuously on a clock advanced at
// the measured CPI.
#pragma once

#include "common/config.hpp"
#include "cpu/system.hpp"
#include "sampling/estimates.hpp"

namespace esteem::sampling {

struct SampledRunResult {
  cpu::RawRunResult raw;       ///< Point values, shaped like an exhaustive run.
  SamplingEstimates estimates; ///< The same metrics with confidence intervals.
};

/// Runs `sys` under systematic sampling. `options` carries the same targets
/// as cpu::System::run; `sc.enabled` must be true and the run must cover at
/// least two full periods (throws std::invalid_argument otherwise — one
/// window has no variance to build a CI from).
SampledRunResult run_sampled(cpu::System& sys, const cpu::RunOptions& options,
                             const SamplingConfig& sc);

}  // namespace esteem::sampling

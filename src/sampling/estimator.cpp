#include "sampling/estimator.hpp"

#include <array>
#include <cmath>

namespace esteem::sampling {

double Estimate::relative() const noexcept {
  return value != 0.0 ? std::abs(half_ci / value) : 0.0;
}

double student_t_975(std::size_t dof) {
  // Standard two-sided 95% table (Abramowitz & Stegun 26.7). Entry i holds
  // the quantile for dof = i + 1.
  static constexpr std::array<double, 30> kTable = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (dof == 0) return kTable.front();  // degenerate; callers require n >= 2
  if (dof <= kTable.size()) return kTable[dof - 1];
  if (dof <= 40) return 2.021;
  if (dof <= 60) return 2.000;
  if (dof <= 120) return 1.980;
  return 1.960;
}

void SampleSeries::add(double x) noexcept {
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double SampleSeries::stddev() const noexcept {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

Estimate SampleSeries::estimate(double scale) const noexcept {
  Estimate e;
  e.value = scale * mean_;
  if (n_ >= 2) {
    const double se = stddev() / std::sqrt(static_cast<double>(n_));
    e.half_ci = std::abs(scale) * student_t_975(n_ - 1) * se;
  }
  return e;
}

}  // namespace esteem::sampling

// Small statistics helpers used by the metrics/reporting layers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace esteem {

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> xs) noexcept;

/// Geometric mean; precondition: all xs > 0. Returns 0 for an empty span.
/// The paper averages (weighted/fair) speedups geometrically (§6.4).
double geomean(std::span<const double> xs) noexcept;

/// Population standard deviation; returns 0 for fewer than 2 samples.
double stddev(std::span<const double> xs) noexcept;

double min_of(std::span<const double> xs) noexcept;
double max_of(std::span<const double> xs) noexcept;

/// Streaming accumulator for mean / min / max without storing samples.
class RunningStat {
 public:
  void add(double x) noexcept;
  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double sum() const noexcept { return sum_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket integer histogram (e.g. hits per LRU stack position).
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::size_t buckets) : counts_(buckets, 0) {}

  void resize(std::size_t buckets) { counts_.assign(buckets, 0); }
  void add(std::size_t bucket, std::uint64_t n = 1) noexcept {
    if (bucket < counts_.size()) counts_[bucket] += n;
  }
  void clear() noexcept { for (auto& c : counts_) c = 0; }

  std::size_t buckets() const noexcept { return counts_.size(); }
  std::uint64_t at(std::size_t bucket) const noexcept {
    return bucket < counts_.size() ? counts_[bucket] : 0;
  }
  std::uint64_t total() const noexcept;
  std::span<const std::uint64_t> counts() const noexcept { return counts_; }

 private:
  std::vector<std::uint64_t> counts_;
};

}  // namespace esteem

#include "common/env.hpp"

#include <cstdlib>

namespace esteem {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<std::uint64_t>(parsed);
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::string{v} : fallback;
}

}  // namespace esteem

// Canonical little-endian byte codec shared by every subsystem that
// serializes binary records (the RunOutcome memo cache, the sweep journal).
// One encoding means a fingerprint computed by one layer and a payload
// written by another can never disagree about field layout.
//
// ByteWriter appends fields to a growing buffer; ByteReader is the
// bounds-checked inverse — every getter reports truncation instead of
// reading past the end, which is what lets the loaders treat a torn file as
// a recoverable miss rather than undefined behaviour.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace esteem {

/// Append-only byte writer with a fixed little-endian field encoding.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { u64(v); }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u64(s.size());
    buf_.append(s);
  }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked reader over a serialized payload.
class ByteReader {
 public:
  explicit ByteReader(const std::string& buf) : buf_(buf) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > buf_.size()) return false;
    v = static_cast<std::uint8_t>(buf_[pos_++]);
    return true;
  }
  bool u32(std::uint32_t& v) {
    std::uint64_t wide = 0;
    if (!u64(wide)) return false;
    v = static_cast<std::uint32_t>(wide);
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos_ + 8 > buf_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    v = std::bit_cast<double>(bits);
    return true;
  }
  bool str(std::string& s) {
    std::uint64_t n = 0;
    if (!u64(n) || pos_ + n > buf_.size()) return false;
    s.assign(buf_, pos_, n);
    pos_ += n;
    return true;
  }
  bool done() const noexcept { return pos_ == buf_.size(); }
  std::size_t pos() const noexcept { return pos_; }

 private:
  const std::string& buf_;
  std::size_t pos_ = 0;
};

/// Lowercase hex encoding of arbitrary bytes (journal payloads are hex so a
/// binary record survives inside a line-oriented text file).
inline std::string to_hex(const std::string& bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

/// Fixed-width (16 digit) lowercase hex of a u64 — the journal's canonical
/// rendering for hashes, digests, and lease ids.
inline std::string hex_u64(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

/// Inverse of hex_u64; false unless `s` is exactly 16 lowercase hex digits.
inline bool parse_hex_u64(const std::string& s, std::uint64_t& out) {
  if (s.size() != 16) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    std::uint64_t nib = 0;
    if (c >= '0' && c <= '9') nib = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') nib = static_cast<std::uint64_t>(c - 'a' + 10);
    else return false;
    v = (v << 4) | nib;
  }
  out = v;
  return true;
}

/// Inverse of to_hex; nullopt on odd length or a non-hex character.
inline std::optional<std::string> from_hex(const std::string& hex) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  if (hex.size() % 2 != 0) return std::nullopt;
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

}  // namespace esteem

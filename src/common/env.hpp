// Environment-variable knobs used by the bench harness to scale run length.
#pragma once

#include <cstdint>
#include <string>

namespace esteem {

/// Reads an integer environment variable; returns `fallback` if unset/bad.
std::uint64_t env_u64(const char* name, std::uint64_t fallback);

/// Reads a string environment variable; returns `fallback` if unset.
std::string env_str(const char* name, const std::string& fallback);

}  // namespace esteem

// Minimal ASCII table printer for the paper-style bench reports.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace esteem {

/// Column-aligned text table. Numeric-looking cells are right-aligned.
class TextTable {
 public:
  /// Sets the header row; resets nothing else.
  void set_header(std::vector<std::string> cells);
  void add_row(std::vector<std::string> cells);
  /// Inserts a horizontal separator before the next added row.
  void add_separator();

  std::size_t rows() const noexcept { return rows_.size(); }
  std::string to_string() const;
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> separators_;  // row indices preceded by a rule
};

/// Formats a double with `digits` decimal places.
std::string fmt(double v, int digits = 2);

/// Formats e.g. 4194304 -> "4MB", 32768 -> "32KB".
std::string fmt_bytes(std::uint64_t bytes);

}  // namespace esteem

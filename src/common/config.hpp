// System configuration mirroring the paper's experimental setup (§6.1, §7).
//
// Defaults are the paper's defaults: 2 GHz cores; 32 KB / 4-way / 2-cycle
// private L1s; shared 16-way / 12-cycle / 4-bank eDRAM L2 (4 MB single-core,
// 8 MB dual-core); 220-cycle main memory at 10 GB/s (single) / 15 GB/s
// (dual); 50 us retention; ESTEEM with alpha = 0.97, A_min = 3, R_s = 64,
// 10 M-cycle intervals, 8 (single) / 16 (dual) modules.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace esteem {

/// Size/shape of a set-associative cache.
struct CacheGeometry {
  std::uint64_t size_bytes = 4ULL * 1024 * 1024;
  std::uint32_t ways = 16;
  std::uint32_t line_bytes = 64;

  std::uint32_t sets() const noexcept {
    return static_cast<std::uint32_t>(size_bytes / (static_cast<std::uint64_t>(ways) * line_bytes));
  }
  std::uint64_t lines() const noexcept { return size_bytes / line_bytes; }
};

struct L1Config {
  CacheGeometry geom{32ULL * 1024, 4, 64};
  std::uint32_t latency_cycles = 2;
};

struct L2Config {
  CacheGeometry geom{4ULL * 1024 * 1024, 16, 64};
  std::uint32_t latency_cycles = 12;
  std::uint32_t banks = 4;
  /// Cycles a demand access occupies its bank (partially pipelined bank
  /// service; smaller than the 12-cycle access latency).
  std::uint32_t access_occupancy_cycles = 4;
  /// Effective bank-interference cycles per refreshed line (may be
  /// fractional). §6.3 assumes refreshing a line costs the time of an
  /// access; we default to 4 cycles of effective interference (calibration
  /// knob — see DESIGN.md) so baseline refresh pressure scales with cache
  /// size and retention the way the paper's results do: moderate at
  /// 4 MB/50 us, near bank saturation at 8-16 MB or 40 us. The bank model
  /// clamps the interference so refresh alone never over-subscribes a bank.
  double refresh_occupancy_cycles = 4.0;
  /// Scale of the analytic queueing-delay term added on top of the explicit
  /// bank busy window (see cache::BankTimer). 0 disables it.
  double queue_pressure = 2.0;
};

struct EdramConfig {
  /// Retention period: how long a cell holds data without refresh. The paper
  /// uses 50 us (60 C operating point) by default and 40 us in §7.3.
  double retention_us = 50.0;
  /// Number of Refrint polyphase phases (the paper evaluates RPV with 4).
  std::uint32_t rpv_phases = 4;
  /// Correctable bits per line for the EccExtended technique.
  std::uint32_t ecc_correctable = 4;
  /// Residual per-line failure-probability budget for choosing the ECC
  /// refresh-interval extension.
  double ecc_target_line_failure = 1e-9;
  /// Idle time after which the CacheDecay technique gates a line off, as a
  /// multiple of the retention period (Kaxiras-style decay interval).
  double decay_interval_retentions = 8.0;
};

struct MemoryConfig {
  std::uint32_t latency_cycles = 220;
  double bandwidth_gbps = 10.0;
};

/// Multiplicative calibration scales applied on top of the Table 2 energy
/// values (all 1.0 = paper-exact). Primarily a calibration/what-if surface:
/// the validation layer perturbs these to prove the golden-drift gate
/// notices energy-model changes (see DESIGN.md §9), and they allow matching
/// a different technology point without editing the CACTI table.
struct EnergyScaleConfig {
  /// Scales the per-line refresh energy (RE_L2, Eq. 6).
  double refresh_scale = 1.0;
  /// Scales the dynamic access energy (DE_L2, Eq. 5).
  double dyn_scale = 1.0;
  /// Scales the L2 leakage power (LE_L2, Eq. 4).
  double leak_scale = 1.0;
};

/// Retention-fault injection (off by default). When enabled, a deterministic
/// per-line weak-cell map is sampled from the lognormal cell-retention
/// distribution and real decay events are threaded through the cache: lines
/// with few failed bits are ECC-corrected (latency + energy penalty), clean
/// uncorrectable lines are silently invalidated and re-fetched, dirty
/// uncorrectable lines count as data loss, and repeat offenders are disabled
/// (way-level capacity degradation).
struct FaultConfig {
  bool enabled = false;
  /// Seed of the weak-cell map (independent of the workload seed so the
  /// same physical cache can be reused across workloads).
  std::uint64_t seed = 0xEDAC;
  /// Median cell retention as a multiple of the nominal period (see
  /// edram::CellRetentionModel).
  double median_multiple = 32.0;
  /// Sigma of ln(retention).
  double sigma = 0.35;
  /// Extra cycles an L2 hit pays when the line holds ECC-corrected bits.
  std::uint32_t correction_latency_cycles = 3;
  /// Uncorrectable events on the same line before it is disabled.
  std::uint32_t disable_threshold = 3;
  /// Largest refresh-interval extension the weak-cell map resolves.
  std::uint32_t max_tracked_extension = 16;
};

/// SMARTS-style systematic sampling (src/sampling; docs/SAMPLING.md). Off by
/// default: an exhaustive run walks its whole trace and is bit-identical to
/// pre-sampling builds. When enabled, only short detailed windows are
/// measured (one per `period_instr` instructions per core) and every flow
/// metric becomes a point estimate with a confidence interval; the gaps are
/// crossed with an analytic fast-forward plus a functional-warming segment
/// that keeps cache tag/LRU, refresh, fault and profiler state hot. Unlike
/// the execution-policy sections below, these knobs change *what a run
/// computes*, so they are part of memo fingerprints and sweep hashes.
struct SamplingConfig {
  bool enabled = false;
  /// Detailed, measured window length in instructions per core.
  instr_t window_instr = 40'000;
  /// Detailed but unmeasured run-up immediately before each window: drains
  /// cold bank/channel timing state so the window starts in steady state.
  instr_t detail_warm_instr = 10'000;
  /// Functional-warming segment before the detailed run-up: cache, refresh
  /// and profiler state advance at full fidelity while timing is carried at
  /// the estimated CPI.
  instr_t ff_warm_instr = 200'000;
  /// Functional warming after the *initial* fast-forward (the pre-measurement
  /// warm-up skip), which starts from a cold cache and needs a longer ramp.
  instr_t cold_warm_instr = 2'000'000;
  /// Sampling period: one measured window per this many instructions per
  /// core. Choose it coprime-ish to the retention period and the
  /// reconfiguration interval (see docs/SAMPLING.md on aliasing).
  instr_t period_instr = 4'000'000;
};

/// Sweep-runner resilience knobs (src/resilience; DESIGN.md §11). These
/// govern *how* runs execute, not what they compute, so they are excluded
/// from the memo-cache fingerprint: changing a deadline never invalidates
/// cached outcomes.
struct ResilienceConfig {
  /// Wall-clock budget per (workload, technique) run in milliseconds. A run
  /// past its deadline is reported as RunError{phase="deadline"} and its
  /// late result is discarded. 0 = no deadline.
  std::uint32_t run_deadline_ms = 0;
  /// Extra attempts after a transient run failure (deadline overruns are
  /// never retried). 0 = fail on first error.
  std::uint32_t max_retries = 0;
  /// Base delay before the first retry; doubles per attempt (capped).
  std::uint32_t backoff_ms = 100;
  /// Circuit breaker: after this many *consecutive* run failures (across
  /// workloads, counted after retries are exhausted) the sweep runner stops
  /// dispatching new rows and reports the remainder as skipped, so a
  /// systemically broken config exits with code 3 early instead of burning
  /// the whole matrix through per-row watchdog retries. 0 = off.
  std::uint32_t max_consecutive_errors = 0;
};

/// Multi-process sweep-service knobs (src/service; DESIGN.md §12). Like
/// [resilience], these govern how work is distributed, never what a run
/// computes, so they are excluded from memo fingerprints and sweep hashes.
struct ServiceConfig {
  /// Lease time-to-live: a row whose lease has not been renewed for this
  /// long is considered abandoned and may be re-leased by any worker. Must
  /// comfortably exceed heartbeat_ms plus the slowest single run (or the
  /// run_deadline_ms watchdog budget, which bounds it).
  std::uint32_t lease_ttl_ms = 30'000;
  /// Heartbeat period: how often a worker renews the lease of the row it is
  /// running.
  std::uint32_t heartbeat_ms = 5'000;
  /// Idle poll period: how often a worker with nothing claimable (and the
  /// waiting coordinator) re-reads the service journal.
  std::uint32_t poll_ms = 500;
  /// Chaos hook: a worker self-SIGKILLs right after claiming its next row
  /// once it has completed this many rows — mid-lease, the way a real crash
  /// lands. 0 = off. Only armed when the ESTEEM_CHAOS environment variable
  /// is set (and ESTEEM_CRASH_AFTER_ROWS overrides the value per process),
  /// so a stray config file can never kill production workers.
  std::uint32_t crash_after_rows = 0;
  /// How lease-journal appends are serialized: "append" relies on O_APPEND
  /// write atomicity (correct on local POSIX filesystems); "lockfile" takes
  /// an advisory lock file around every append for filesystems that do not
  /// guarantee atomic appends (NFS/SMB). Stale locks older than
  /// lease_ttl_ms are broken and counted in service.locks_broken.
  std::string lock_mode = "append";
};

/// Fleet observability knobs (src/telemetry/export, src/service/observer;
/// DESIGN.md §13). Like [resilience] and [service], these govern how a sweep
/// is *watched*, never what a run computes, so they are excluded from memo
/// fingerprints and sweep hashes, and the pinned zero-observer-effect
/// guarantee holds: enabling them leaves CSV/report bytes unchanged.
struct ObservabilityConfig {
  /// Sidecar snapshot flush period in milliseconds: each service worker
  /// appends a full CounterRegistry snapshot to its per-worker sidecar
  /// journal this often (piggybacked on the heartbeat thread) plus once per
  /// resolved row. 0 = observability plane off (no sidecars, no events).
  std::uint32_t flush_ms = 0;
  /// Cap on structured event records a worker journals per process run;
  /// events beyond the cap are dropped and counted under
  /// `observer.events_dropped`.
  std::uint32_t events_max = 256;
  /// When non-empty, the coordinator writes the merged OpenMetrics
  /// exposition of every worker sidecar here after a successful collect
  /// (`esteem_workerd --metrics FILE` overrides per invocation).
  std::string metrics_path;
};

/// Parameters of the ESTEEM energy-saving algorithm (§3, §4, §7).
struct EsteemParams {
  /// Hit-coverage threshold: keep enough ways on to cover >= alpha * hits.
  double alpha = 0.97;
  /// Minimum number of ways always kept on (never 1: direct-mapped LLCs
  /// lose too much performance, §3.1).
  std::uint32_t a_min = 3;
  /// Number of logical set modules the cache is divided into.
  std::uint32_t modules = 8;
  /// Reconfiguration interval in cycles.
  cycle_t interval_cycles = 10'000'000;
  /// Set-sampling ratio R_s: one leader set per R_s sets feeds the profiler.
  std::uint32_t sampling_ratio = 64;
  /// Guard that limits turn-off to one way for modules with non-LRU hit
  /// patterns (Algorithm 1, lines 4-13). On by default per the paper;
  /// exposed so the ablation bench can disable it.
  bool nonlru_guard = true;
  /// Optional sampling-noise guard: a module whose leader sets saw fewer
  /// than this many L2 accesses (after history smoothing) keeps its current
  /// configuration. Off by default — zero traffic legitimately decides
  /// A_min, the paper's libquantum/gamess behaviour.
  std::uint64_t min_leader_samples = 0;
  /// Fraction of the previous intervals' (smoothed) histogram carried into
  /// this interval's decision: hist <- hist * history_weight + new. The
  /// paper decides from the last interval alone (weight 0), which is stable
  /// at its 10M-cycle intervals; scaled-down bench intervals collect few
  /// leader samples, so a modest exponential history suppresses
  /// noise-driven way oscillation (see DESIGN.md). 0 = paper-exact.
  double history_weight = 0.75;
  /// Extension (paper §7.2 future work): cap on |delta active ways| per
  /// module per interval. 0 disables the cap.
  std::uint32_t max_way_delta = 0;
  /// Extension (paper §7.2 future work): suppress a reconfiguration that
  /// reverses the previous interval's direction within this many intervals.
  /// 0 disables hysteresis.
  std::uint32_t hysteresis_intervals = 0;
  /// Extension (paper §7.2: "detecting and avoiding frequent
  /// reconfigurations"): apply a shrink only after the algorithm has asked
  /// to shrink for this many consecutive intervals. Growth is always
  /// immediate (it flushes nothing and protects performance). 0/1 =
  /// paper-exact immediate shrinking.
  std::uint32_t shrink_confirm_intervals = 0;
};

struct SystemConfig {
  std::uint32_t ncores = 1;
  double freq_ghz = 2.0;
  L1Config l1;
  L2Config l2;
  MemoryConfig mem;
  EdramConfig edram;
  EnergyScaleConfig energy;
  EsteemParams esteem;
  FaultConfig faults;
  SamplingConfig sampling;
  ResilienceConfig resilience;
  ServiceConfig service;
  ObservabilityConfig observability;

  cycle_t retention_cycles() const noexcept {
    return static_cast<cycle_t>(edram.retention_us * 1000.0 * freq_ghz);
  }
  /// Main-memory channel occupancy per 64 B line transfer, in cycles.
  double mem_service_cycles() const noexcept {
    return static_cast<double>(l2.geom.line_bytes) / bandwidth_bytes_per_cycle();
  }
  double bandwidth_bytes_per_cycle() const noexcept {
    return mem.bandwidth_gbps / freq_ghz;
  }

  /// Paper defaults for a single-core system (§7).
  static SystemConfig single_core();
  /// Paper defaults for a dual-core system (§7): 8 MB L2, 15 GB/s, M = 16.
  static SystemConfig dual_core();

  /// Throws std::invalid_argument on inconsistent parameters.
  void validate() const;
};

}  // namespace esteem

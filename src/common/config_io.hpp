// Textual SystemConfig serialization: a small INI dialect so the CLI tool
// and batch scripts can describe experiments without recompiling.
//
//   [system]
//   ncores = 2
//   freq_ghz = 2.0
//   [l2]
//   size_kb = 8192
//   ways = 16
//   ...
//   [esteem]
//   alpha = 0.97
//   a_min = 3
//
// Unknown sections/keys are rejected (catching typos beats ignoring them).
#pragma once

#include <iosfwd>
#include <string>

#include "common/config.hpp"

namespace esteem {

/// Parses a config from an INI stream/file. Starts from the defaults and
/// applies only the keys present, then validates. Throws
/// std::invalid_argument on syntax errors, unknown keys, or invalid values.
SystemConfig load_config(std::istream& in);
SystemConfig load_config_file(const std::string& path);

/// Writes every field in load_config's format (round-trips exactly).
void save_config(const SystemConfig& cfg, std::ostream& out);
void save_config_file(const SystemConfig& cfg, const std::string& path);

}  // namespace esteem

// Textual SystemConfig serialization: a small INI dialect so the CLI tool
// and batch scripts can describe experiments without recompiling.
//
//   [system]
//   ncores = 2
//   freq_ghz = 2.0
//   [l2]
//   size_kb = 8192
//   ways = 16
//   ...
//   [esteem]
//   alpha = 0.97
//   a_min = 3
//
// Unknown sections/keys are rejected (catching typos beats ignoring them).
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.hpp"

namespace esteem {

/// One key of the INI schema. The loader, the saver, and the generated
/// config reference (docs/CONFIG.md) all derive from this table, so the
/// three cannot drift apart.
struct ConfigKeySpec {
  std::string section;  ///< INI section, e.g. "l2".
  std::string key;      ///< Key within the section, e.g. "size_kb".
  std::string type;     ///< "int" | "float" | "bool" | "str".
  std::string doc;      ///< One-line meaning (used in docs/CONFIG.md).
  std::function<void(SystemConfig&, const std::string&, const std::string&)> set;
  std::function<std::string(const SystemConfig&)> get;  ///< Serialized value.
};

/// The full INI schema in serialization order (sections contiguous).
const std::vector<ConfigKeySpec>& config_schema();

/// True when `section` is an execution-policy section: its keys govern how
/// runs execute or are watched ([resilience], [service], [observability]),
/// never what a run computes, so they are excluded from memo fingerprints
/// and sweep hashes. Every other section is semantic — changing any of its
/// keys changes result bytes and invalidates cached outcomes. The generated
/// docs/CONFIG.md legend and the fingerprint tests both derive from this
/// single classification.
bool config_section_is_execution_policy(const std::string& section);

/// Structured INI parse failure: what() always carries the 1-based line
/// number (and the offending section.key when one was identified), and the
/// same facts are available as fields for programmatic handling. Derives
/// from std::invalid_argument so existing catch sites keep working.
class ConfigParseError : public std::invalid_argument {
 public:
  ConfigParseError(std::size_t line, std::string key, const std::string& message)
      : std::invalid_argument(message), line_(line), key_(std::move(key)) {}

  std::size_t line() const noexcept { return line_; }      ///< 1-based; 0 = n/a.
  const std::string& key() const noexcept { return key_; } ///< "section.key" or "".

 private:
  std::size_t line_;
  std::string key_;
};

/// Markdown config-key reference generated from the schema; the "default"
/// column shows each key's value in `defaults`. `esteem_cli
/// --dump-config-doc` prints this for docs/CONFIG.md.
std::string config_doc_markdown(const SystemConfig& defaults);

/// Parses a config from an INI stream/file. Starts from the defaults and
/// applies only the keys present, then validates. Throws
/// std::invalid_argument on syntax errors, unknown keys, or invalid values.
SystemConfig load_config(std::istream& in);
SystemConfig load_config_file(const std::string& path);

/// Writes every field in load_config's format (round-trips exactly).
void save_config(const SystemConfig& cfg, std::ostream& out);
void save_config_file(const SystemConfig& cfg, const std::string& path);

}  // namespace esteem

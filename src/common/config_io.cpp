#include "common/config_io.hpp"

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace esteem {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

double parse_double(const std::string& v, const std::string& key) {
  std::size_t used = 0;
  double d = 0.0;
  try {
    d = std::stod(v, &used);
  } catch (const std::exception&) {  // stod throws bare invalid_argument/out_of_range
    used = 0;
  }
  if (used != v.size()) {
    throw std::invalid_argument("config: bad number '" + v + "' for " + key);
  }
  return d;
}

std::uint64_t parse_u64(const std::string& v, const std::string& key) {
  std::size_t used = 0;
  unsigned long long u = 0;
  try {
    u = std::stoull(v, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != v.size()) {
    throw std::invalid_argument("config: bad integer '" + v + "' for " + key);
  }
  return u;
}

bool parse_bool(const std::string& v, const std::string& key) {
  if (v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  throw std::invalid_argument("config: bad boolean for " + key);
}

std::string show(double v) {
  std::ostringstream os;
  os << v;  // default stream formatting, matching the historical save format
  return os.str();
}

std::string show(std::uint64_t v) { return std::to_string(v); }
std::string show(bool v) { return v ? "true" : "false"; }

/// Schema-entry builders: each pairs a parse-and-assign setter with the
/// matching serializer so load/save/doc stay in lockstep per key.
ConfigKeySpec int_key(std::string section, std::string key, std::string doc,
                      std::function<void(SystemConfig&, std::uint64_t)> set,
                      std::function<std::uint64_t(const SystemConfig&)> get) {
  ConfigKeySpec spec;
  spec.section = std::move(section);
  spec.key = std::move(key);
  spec.type = "int";
  spec.doc = std::move(doc);
  spec.set = [set](SystemConfig& c, const std::string& v, const std::string& k) {
    set(c, parse_u64(v, k));
  };
  spec.get = [get](const SystemConfig& c) { return show(get(c)); };
  return spec;
}

ConfigKeySpec float_key(std::string section, std::string key, std::string doc,
                        std::function<void(SystemConfig&, double)> set,
                        std::function<double(const SystemConfig&)> get) {
  ConfigKeySpec spec;
  spec.section = std::move(section);
  spec.key = std::move(key);
  spec.type = "float";
  spec.doc = std::move(doc);
  spec.set = [set](SystemConfig& c, const std::string& v, const std::string& k) {
    set(c, parse_double(v, k));
  };
  spec.get = [get](const SystemConfig& c) { return show(get(c)); };
  return spec;
}

ConfigKeySpec bool_key(std::string section, std::string key, std::string doc,
                       std::function<void(SystemConfig&, bool)> set,
                       std::function<bool(const SystemConfig&)> get) {
  ConfigKeySpec spec;
  spec.section = std::move(section);
  spec.key = std::move(key);
  spec.type = "bool";
  spec.doc = std::move(doc);
  spec.set = [set](SystemConfig& c, const std::string& v, const std::string& k) {
    set(c, parse_bool(v, k));
  };
  spec.get = [get](const SystemConfig& c) { return show(get(c)); };
  return spec;
}

ConfigKeySpec str_key(std::string section, std::string key, std::string doc,
                      std::function<void(SystemConfig&, std::string)> set,
                      std::function<std::string(const SystemConfig&)> get) {
  ConfigKeySpec spec;
  spec.section = std::move(section);
  spec.key = std::move(key);
  spec.type = "str";
  spec.doc = std::move(doc);
  // Values arrive trimmed from the INI parser; no further validation — an
  // empty value is the documented "off" for every string key.
  spec.set = [set](SystemConfig& c, const std::string& v, const std::string&) { set(c, v); };
  spec.get = [get](const SystemConfig& c) { return get(c); };
  return spec;
}

std::vector<ConfigKeySpec> build_schema() {
  std::vector<ConfigKeySpec> s;
  s.push_back(int_key("system", "ncores", "Number of cores (1 or 2 in the paper)",
                      [](SystemConfig& c, std::uint64_t v) { c.ncores = static_cast<std::uint32_t>(v); },
                      [](const SystemConfig& c) -> std::uint64_t { return c.ncores; }));
  s.push_back(float_key("system", "freq_ghz", "Core clock frequency in GHz",
                        [](SystemConfig& c, double v) { c.freq_ghz = v; },
                        [](const SystemConfig& c) { return c.freq_ghz; }));

  s.push_back(int_key("l1", "size_kb", "Private L1 size per core in KB",
                      [](SystemConfig& c, std::uint64_t v) { c.l1.geom.size_bytes = v * 1024; },
                      [](const SystemConfig& c) { return c.l1.geom.size_bytes / 1024; }));
  s.push_back(int_key("l1", "ways", "L1 associativity",
                      [](SystemConfig& c, std::uint64_t v) { c.l1.geom.ways = static_cast<std::uint32_t>(v); },
                      [](const SystemConfig& c) -> std::uint64_t { return c.l1.geom.ways; }));
  s.push_back(int_key("l1", "latency", "L1 hit latency in cycles",
                      [](SystemConfig& c, std::uint64_t v) { c.l1.latency_cycles = static_cast<std::uint32_t>(v); },
                      [](const SystemConfig& c) -> std::uint64_t { return c.l1.latency_cycles; }));

  s.push_back(int_key("l2", "size_kb", "Shared eDRAM L2 size in KB",
                      [](SystemConfig& c, std::uint64_t v) { c.l2.geom.size_bytes = v * 1024; },
                      [](const SystemConfig& c) { return c.l2.geom.size_bytes / 1024; }));
  s.push_back(int_key("l2", "ways", "L2 associativity",
                      [](SystemConfig& c, std::uint64_t v) { c.l2.geom.ways = static_cast<std::uint32_t>(v); },
                      [](const SystemConfig& c) -> std::uint64_t { return c.l2.geom.ways; }));
  s.push_back(int_key("l2", "line_bytes", "Cache line size in bytes (applies to L1 and L2)",
                      [](SystemConfig& c, std::uint64_t v) {
                        c.l2.geom.line_bytes = static_cast<std::uint32_t>(v);
                        c.l1.geom.line_bytes = c.l2.geom.line_bytes;
                      },
                      [](const SystemConfig& c) -> std::uint64_t { return c.l2.geom.line_bytes; }));
  s.push_back(int_key("l2", "latency", "L2 hit latency in cycles",
                      [](SystemConfig& c, std::uint64_t v) { c.l2.latency_cycles = static_cast<std::uint32_t>(v); },
                      [](const SystemConfig& c) -> std::uint64_t { return c.l2.latency_cycles; }));
  s.push_back(int_key("l2", "banks", "Number of L2 banks (power of two)",
                      [](SystemConfig& c, std::uint64_t v) { c.l2.banks = static_cast<std::uint32_t>(v); },
                      [](const SystemConfig& c) -> std::uint64_t { return c.l2.banks; }));
  s.push_back(int_key("l2", "access_occupancy", "Cycles a demand access occupies its bank",
                      [](SystemConfig& c, std::uint64_t v) { c.l2.access_occupancy_cycles = static_cast<std::uint32_t>(v); },
                      [](const SystemConfig& c) -> std::uint64_t { return c.l2.access_occupancy_cycles; }));
  s.push_back(float_key("l2", "refresh_occupancy",
                        "Effective bank-interference cycles per refreshed line (calibration knob)",
                        [](SystemConfig& c, double v) { c.l2.refresh_occupancy_cycles = v; },
                        [](const SystemConfig& c) { return c.l2.refresh_occupancy_cycles; }));
  s.push_back(float_key("l2", "queue_pressure",
                        "Scale of the analytic bank queueing-delay term (0 disables)",
                        [](SystemConfig& c, double v) { c.l2.queue_pressure = v; },
                        [](const SystemConfig& c) { return c.l2.queue_pressure; }));

  s.push_back(float_key("edram", "retention_us",
                        "eDRAM retention period in microseconds (50 default, 40 in par. 7.3)",
                        [](SystemConfig& c, double v) { c.edram.retention_us = v; },
                        [](const SystemConfig& c) { return c.edram.retention_us; }));
  s.push_back(int_key("edram", "rpv_phases", "Refrint polyphase count (paper evaluates 4)",
                      [](SystemConfig& c, std::uint64_t v) { c.edram.rpv_phases = static_cast<std::uint32_t>(v); },
                      [](const SystemConfig& c) -> std::uint64_t { return c.edram.rpv_phases; }));
  s.push_back(int_key("edram", "ecc_correctable",
                      "Correctable bits per line for the ecc-extended technique",
                      [](SystemConfig& c, std::uint64_t v) { c.edram.ecc_correctable = static_cast<std::uint32_t>(v); },
                      [](const SystemConfig& c) -> std::uint64_t { return c.edram.ecc_correctable; }));
  s.push_back(float_key("edram", "ecc_target_line_failure",
                        "Residual per-line failure-probability budget for ECC interval extension",
                        [](SystemConfig& c, double v) { c.edram.ecc_target_line_failure = v; },
                        [](const SystemConfig& c) { return c.edram.ecc_target_line_failure; }));

  s.push_back(int_key("mem", "latency", "Main-memory latency in cycles",
                      [](SystemConfig& c, std::uint64_t v) { c.mem.latency_cycles = static_cast<std::uint32_t>(v); },
                      [](const SystemConfig& c) -> std::uint64_t { return c.mem.latency_cycles; }));
  s.push_back(float_key("mem", "bandwidth_gbps", "Main-memory bandwidth in GB/s",
                        [](SystemConfig& c, double v) { c.mem.bandwidth_gbps = v; },
                        [](const SystemConfig& c) { return c.mem.bandwidth_gbps; }));

  s.push_back(float_key("energy", "refresh_scale",
                        "Multiplier on per-line refresh energy (1 = Table 2 values)",
                        [](SystemConfig& c, double v) { c.energy.refresh_scale = v; },
                        [](const SystemConfig& c) { return c.energy.refresh_scale; }));
  s.push_back(float_key("energy", "dyn_scale",
                        "Multiplier on dynamic L2 access energy (1 = Table 2 values)",
                        [](SystemConfig& c, double v) { c.energy.dyn_scale = v; },
                        [](const SystemConfig& c) { return c.energy.dyn_scale; }));
  s.push_back(float_key("energy", "leak_scale",
                        "Multiplier on L2 leakage power (1 = Table 2 values)",
                        [](SystemConfig& c, double v) { c.energy.leak_scale = v; },
                        [](const SystemConfig& c) { return c.energy.leak_scale; }));

  s.push_back(float_key("esteem", "alpha", "Hit-coverage threshold of Algorithm 1",
                        [](SystemConfig& c, double v) { c.esteem.alpha = v; },
                        [](const SystemConfig& c) { return c.esteem.alpha; }));
  s.push_back(int_key("esteem", "a_min", "Minimum number of active ways per module",
                      [](SystemConfig& c, std::uint64_t v) { c.esteem.a_min = static_cast<std::uint32_t>(v); },
                      [](const SystemConfig& c) -> std::uint64_t { return c.esteem.a_min; }));
  s.push_back(int_key("esteem", "modules", "Number of logical set modules M",
                      [](SystemConfig& c, std::uint64_t v) { c.esteem.modules = static_cast<std::uint32_t>(v); },
                      [](const SystemConfig& c) -> std::uint64_t { return c.esteem.modules; }));
  s.push_back(int_key("esteem", "interval_cycles", "Reconfiguration interval in cycles",
                      [](SystemConfig& c, std::uint64_t v) { c.esteem.interval_cycles = v; },
                      [](const SystemConfig& c) { return c.esteem.interval_cycles; }));
  s.push_back(int_key("esteem", "sampling_ratio",
                      "Set-sampling ratio R_s (one leader set per R_s sets)",
                      [](SystemConfig& c, std::uint64_t v) { c.esteem.sampling_ratio = static_cast<std::uint32_t>(v); },
                      [](const SystemConfig& c) -> std::uint64_t { return c.esteem.sampling_ratio; }));
  s.push_back(bool_key("esteem", "nonlru_guard",
                       "Limit turn-off to one way for modules with non-LRU hit patterns",
                       [](SystemConfig& c, bool v) { c.esteem.nonlru_guard = v; },
                       [](const SystemConfig& c) { return c.esteem.nonlru_guard; }));
  s.push_back(int_key("esteem", "min_leader_samples",
                      "Keep current configuration below this many leader-set samples (0 = off)",
                      [](SystemConfig& c, std::uint64_t v) { c.esteem.min_leader_samples = v; },
                      [](const SystemConfig& c) { return c.esteem.min_leader_samples; }));
  s.push_back(float_key("esteem", "history_weight",
                        "Exponential histogram smoothing across intervals (0 = paper-exact)",
                        [](SystemConfig& c, double v) { c.esteem.history_weight = v; },
                        [](const SystemConfig& c) { return c.esteem.history_weight; }));
  s.push_back(int_key("esteem", "max_way_delta",
                      "Cap on |delta active ways| per module per interval (0 = off)",
                      [](SystemConfig& c, std::uint64_t v) { c.esteem.max_way_delta = static_cast<std::uint32_t>(v); },
                      [](const SystemConfig& c) -> std::uint64_t { return c.esteem.max_way_delta; }));
  s.push_back(int_key("esteem", "hysteresis_intervals",
                      "Suppress direction reversals within this many intervals (0 = off)",
                      [](SystemConfig& c, std::uint64_t v) { c.esteem.hysteresis_intervals = static_cast<std::uint32_t>(v); },
                      [](const SystemConfig& c) -> std::uint64_t { return c.esteem.hysteresis_intervals; }));
  s.push_back(int_key("esteem", "shrink_confirm_intervals",
                      "Apply shrinks only after this many consecutive shrink requests (0/1 = immediate)",
                      [](SystemConfig& c, std::uint64_t v) { c.esteem.shrink_confirm_intervals = static_cast<std::uint32_t>(v); },
                      [](const SystemConfig& c) -> std::uint64_t { return c.esteem.shrink_confirm_intervals; }));

  s.push_back(bool_key("faults", "enabled", "Enable retention-fault injection",
                       [](SystemConfig& c, bool v) { c.faults.enabled = v; },
                       [](const SystemConfig& c) { return c.faults.enabled; }));
  s.push_back(int_key("faults", "seed", "Seed of the deterministic weak-cell map",
                      [](SystemConfig& c, std::uint64_t v) { c.faults.seed = v; },
                      [](const SystemConfig& c) { return c.faults.seed; }));
  s.push_back(float_key("faults", "median_multiple",
                        "Median cell retention as a multiple of the nominal period",
                        [](SystemConfig& c, double v) { c.faults.median_multiple = v; },
                        [](const SystemConfig& c) { return c.faults.median_multiple; }));
  s.push_back(float_key("faults", "sigma", "Sigma of ln(cell retention)",
                        [](SystemConfig& c, double v) { c.faults.sigma = v; },
                        [](const SystemConfig& c) { return c.faults.sigma; }));
  s.push_back(int_key("faults", "correction_latency",
                      "Extra hit cycles when a line holds ECC-corrected bits",
                      [](SystemConfig& c, std::uint64_t v) { c.faults.correction_latency_cycles = static_cast<std::uint32_t>(v); },
                      [](const SystemConfig& c) -> std::uint64_t { return c.faults.correction_latency_cycles; }));
  s.push_back(int_key("faults", "disable_threshold",
                      "Uncorrectable events on a line before it is disabled",
                      [](SystemConfig& c, std::uint64_t v) { c.faults.disable_threshold = static_cast<std::uint32_t>(v); },
                      [](const SystemConfig& c) -> std::uint64_t { return c.faults.disable_threshold; }));
  s.push_back(int_key("faults", "max_tracked_extension",
                      "Largest refresh-interval extension the weak-cell map resolves",
                      [](SystemConfig& c, std::uint64_t v) { c.faults.max_tracked_extension = static_cast<std::uint32_t>(v); },
                      [](const SystemConfig& c) -> std::uint64_t { return c.faults.max_tracked_extension; }));

  s.push_back(bool_key("sampling", "enabled",
                       "Enable SMARTS-style systematic sampling (estimates with confidence intervals)",
                       [](SystemConfig& c, bool v) { c.sampling.enabled = v; },
                       [](const SystemConfig& c) { return c.sampling.enabled; }));
  s.push_back(int_key("sampling", "window_instr",
                      "Detailed measured window length in instructions per core",
                      [](SystemConfig& c, std::uint64_t v) { c.sampling.window_instr = v; },
                      [](const SystemConfig& c) { return c.sampling.window_instr; }));
  s.push_back(int_key("sampling", "detail_warm_instr",
                      "Detailed but unmeasured run-up before each window (drains cold timing state)",
                      [](SystemConfig& c, std::uint64_t v) { c.sampling.detail_warm_instr = v; },
                      [](const SystemConfig& c) { return c.sampling.detail_warm_instr; }));
  s.push_back(int_key("sampling", "ff_warm_instr",
                      "Functional-warming instructions before each detailed run-up",
                      [](SystemConfig& c, std::uint64_t v) { c.sampling.ff_warm_instr = v; },
                      [](const SystemConfig& c) { return c.sampling.ff_warm_instr; }));
  s.push_back(int_key("sampling", "cold_warm_instr",
                      "Functional warming after the initial (cold-cache) fast-forward",
                      [](SystemConfig& c, std::uint64_t v) { c.sampling.cold_warm_instr = v; },
                      [](const SystemConfig& c) { return c.sampling.cold_warm_instr; }));
  s.push_back(int_key("sampling", "period_instr",
                      "Sampling period: one measured window per this many instructions per core",
                      [](SystemConfig& c, std::uint64_t v) { c.sampling.period_instr = v; },
                      [](const SystemConfig& c) { return c.sampling.period_instr; }));

  s.push_back(int_key("resilience", "run_deadline_ms",
                      "Wall-clock budget per run in ms; overruns become RunError{phase=deadline} (0 = off)",
                      [](SystemConfig& c, std::uint64_t v) { c.resilience.run_deadline_ms = static_cast<std::uint32_t>(v); },
                      [](const SystemConfig& c) -> std::uint64_t { return c.resilience.run_deadline_ms; }));
  s.push_back(int_key("resilience", "max_retries",
                      "Extra attempts after a transient run failure (deadline overruns never retry)",
                      [](SystemConfig& c, std::uint64_t v) { c.resilience.max_retries = static_cast<std::uint32_t>(v); },
                      [](const SystemConfig& c) -> std::uint64_t { return c.resilience.max_retries; }));
  s.push_back(int_key("resilience", "backoff_ms",
                      "Base retry delay in ms; doubles per attempt (capped at 2^16x)",
                      [](SystemConfig& c, std::uint64_t v) { c.resilience.backoff_ms = static_cast<std::uint32_t>(v); },
                      [](const SystemConfig& c) -> std::uint64_t { return c.resilience.backoff_ms; }));
  s.push_back(int_key("resilience", "max_consecutive_errors",
                      "Circuit breaker: stop dispatching sweep rows after N consecutive run failures (0 = off)",
                      [](SystemConfig& c, std::uint64_t v) { c.resilience.max_consecutive_errors = static_cast<std::uint32_t>(v); },
                      [](const SystemConfig& c) -> std::uint64_t { return c.resilience.max_consecutive_errors; }));

  s.push_back(int_key("service", "lease_ttl_ms",
                      "Sweep-service lease TTL in ms; an unrenewed row lease older than this may be re-leased",
                      [](SystemConfig& c, std::uint64_t v) { c.service.lease_ttl_ms = static_cast<std::uint32_t>(v); },
                      [](const SystemConfig& c) -> std::uint64_t { return c.service.lease_ttl_ms; }));
  s.push_back(int_key("service", "heartbeat_ms",
                      "Worker heartbeat period in ms (lease renewal while a row runs)",
                      [](SystemConfig& c, std::uint64_t v) { c.service.heartbeat_ms = static_cast<std::uint32_t>(v); },
                      [](const SystemConfig& c) -> std::uint64_t { return c.service.heartbeat_ms; }));
  s.push_back(int_key("service", "poll_ms",
                      "Idle poll period in ms for workers with nothing claimable and the waiting coordinator",
                      [](SystemConfig& c, std::uint64_t v) { c.service.poll_ms = static_cast<std::uint32_t>(v); },
                      [](const SystemConfig& c) -> std::uint64_t { return c.service.poll_ms; }));
  s.push_back(int_key("service", "crash_after_rows",
                      "Chaos hook: worker self-SIGKILLs mid-lease after completing N rows (0 = off; armed only with ESTEEM_CHAOS set)",
                      [](SystemConfig& c, std::uint64_t v) { c.service.crash_after_rows = static_cast<std::uint32_t>(v); },
                      [](const SystemConfig& c) -> std::uint64_t { return c.service.crash_after_rows; }));
  s.push_back(str_key("service", "lock_mode",
                      "Lease-journal append serialization: append (O_APPEND atomicity) or lockfile (advisory lock for NFS/SMB)",
                      [](SystemConfig& c, std::string v) { c.service.lock_mode = std::move(v); },
                      [](const SystemConfig& c) { return c.service.lock_mode; }));

  s.push_back(int_key("observability", "flush_ms",
                      "Sidecar snapshot flush period in ms for service workers (0 = observability plane off)",
                      [](SystemConfig& c, std::uint64_t v) { c.observability.flush_ms = static_cast<std::uint32_t>(v); },
                      [](const SystemConfig& c) -> std::uint64_t { return c.observability.flush_ms; }));
  s.push_back(int_key("observability", "events_max",
                      "Cap on structured event records a worker journals per run (overflow counted, not written)",
                      [](SystemConfig& c, std::uint64_t v) { c.observability.events_max = static_cast<std::uint32_t>(v); },
                      [](const SystemConfig& c) -> std::uint64_t { return c.observability.events_max; }));
  s.push_back(str_key("observability", "metrics_path",
                      "Coordinator writes the merged OpenMetrics exposition here after collect (empty = off)",
                      [](SystemConfig& c, std::string v) { c.observability.metrics_path = std::move(v); },
                      [](const SystemConfig& c) { return c.observability.metrics_path; }));
  return s;
}

const std::map<std::string, const ConfigKeySpec*>& schema_index() {
  static const std::map<std::string, const ConfigKeySpec*> kIndex = [] {
    std::map<std::string, const ConfigKeySpec*> idx;
    for (const ConfigKeySpec& spec : config_schema()) {
      idx.emplace(spec.section + "." + spec.key, &spec);
    }
    return idx;
  }();
  return kIndex;
}

}  // namespace

const std::vector<ConfigKeySpec>& config_schema() {
  static const std::vector<ConfigKeySpec> kSchema = build_schema();
  return kSchema;
}

bool config_section_is_execution_policy(const std::string& section) {
  return section == "resilience" || section == "service" ||
         section == "observability";
}

SystemConfig load_config(std::istream& in) {
  SystemConfig cfg;
  std::string section;
  std::string line;
  std::size_t line_no = 0;
  std::set<std::string> seen;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#' || t[0] == ';') continue;
    if (t.front() == '[') {
      if (t.back() != ']') {
        throw ConfigParseError(line_no, "",
                               "config: unterminated section header at line " +
                                   std::to_string(line_no));
      }
      section = trim(t.substr(1, t.size() - 2));
      continue;
    }
    const auto eq = t.find('=');
    if (eq == std::string::npos) {
      throw ConfigParseError(line_no, "",
                             "config: expected key=value at line " +
                                 std::to_string(line_no));
    }
    const std::string key = section + "." + trim(t.substr(0, eq));
    const std::string value = trim(t.substr(eq + 1));
    const auto it = schema_index().find(key);
    if (it == schema_index().end()) {
      throw ConfigParseError(line_no, key,
                             "config: unknown key '" + key + "' at line " +
                                 std::to_string(line_no));
    }
    if (!seen.insert(key).second) {
      throw ConfigParseError(line_no, key,
                             "config: duplicate key '" + key + "' at line " +
                                 std::to_string(line_no));
    }
    try {
      it->second->set(cfg, value, key);
    } catch (const std::exception& e) {
      // Value errors from the typed setters gain the line number here.
      throw ConfigParseError(line_no, key,
                             std::string(e.what()) + " at line " +
                                 std::to_string(line_no));
    }
  }
  cfg.validate();
  return cfg;
}

SystemConfig load_config_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("config: cannot open " + path);
  return load_config(in);
}

void save_config(const SystemConfig& cfg, std::ostream& out) {
  std::string section;
  for (const ConfigKeySpec& spec : config_schema()) {
    if (spec.section != section) {
      if (!section.empty()) out << "\n";
      section = spec.section;
      out << "[" << section << "]\n";
    }
    out << spec.key << " = " << spec.get(cfg) << "\n";
  }
}

void save_config_file(const SystemConfig& cfg, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::invalid_argument("config: cannot open " + path);
  save_config(cfg, out);
}

std::string config_doc_markdown(const SystemConfig& defaults) {
  std::ostringstream os;
  os << "# Configuration reference\n\n"
     << "<!-- Generated by `esteem_cli --dump-config-doc`; do not edit by hand.\n"
     << "     Regenerate with:  ./build/tools/esteem_cli --dump-config-doc > docs/CONFIG.md -->\n\n"
     << "Every key accepted by `esteem_cli --config FILE` (INI format; see\n"
     << "`--dump-config` for a ready-to-edit file). Unknown sections or keys are\n"
     << "rejected. Defaults below are the paper's single-core setup\n"
     << "(`SystemConfig::single_core()`); `SystemConfig::dual_core()` changes\n"
     << "`system.ncores` to 2, `l2.size_kb` to 8192, `mem.bandwidth_gbps` to 15\n"
     << "and `esteem.modules` to 16.\n\n"
     << "Each section is classified as **semantic** or **execution policy**:\n"
     << "semantic keys determine what a run computes, so they are part of the\n"
     << "memo-cache fingerprint and the sweep hash (changing one invalidates\n"
     << "cached outcomes and resume journals). Execution-policy keys only\n"
     << "govern how runs execute or are watched — deadlines, leases, telemetry\n"
     << "flushes — and are excluded from both: changing them never changes\n"
     << "result bytes. The `[sampling]` section is semantic even though it\n"
     << "only changes *accounting*: a sampled run reports estimates with\n"
     << "confidence intervals instead of exhaustive totals (see\n"
     << "[SAMPLING.md](SAMPLING.md)), which are different bytes.\n";
  std::string section;
  for (const ConfigKeySpec& spec : config_schema()) {
    if (spec.section != section) {
      section = spec.section;
      os << "\n## [" << section << "]\n\n"
         << (config_section_is_execution_policy(section)
                 ? "*Execution policy — excluded from memo fingerprints and "
                   "sweep hashes.*\n\n"
                 : "*Semantic — part of memo fingerprints and sweep hashes.*\n\n")
         << "| key | type | default | meaning |\n"
         << "|---|---|---|---|\n";
    }
    os << "| `" << spec.key << "` | " << spec.type << " | `" << spec.get(defaults)
       << "` | " << spec.doc << " |\n";
  }
  return os.str();
}

}  // namespace esteem

#include "common/config_io.hpp"

#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <stdexcept>

namespace esteem {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

double parse_double(const std::string& v, const std::string& key) {
  std::size_t used = 0;
  const double d = std::stod(v, &used);
  if (used != v.size()) throw std::invalid_argument("config: bad number for " + key);
  return d;
}

std::uint64_t parse_u64(const std::string& v, const std::string& key) {
  std::size_t used = 0;
  const unsigned long long u = std::stoull(v, &used);
  if (used != v.size()) throw std::invalid_argument("config: bad integer for " + key);
  return u;
}

bool parse_bool(const std::string& v, const std::string& key) {
  if (v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  throw std::invalid_argument("config: bad boolean for " + key);
}

using Setter = std::function<void(SystemConfig&, const std::string&, const std::string&)>;

const std::map<std::string, Setter>& setters() {
  static const std::map<std::string, Setter> kSetters = {
      {"system.ncores", [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.ncores = static_cast<std::uint32_t>(parse_u64(v, k));
       }},
      {"system.freq_ghz", [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.freq_ghz = parse_double(v, k);
       }},
      {"l1.size_kb", [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.l1.geom.size_bytes = parse_u64(v, k) * 1024;
       }},
      {"l1.ways", [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.l1.geom.ways = static_cast<std::uint32_t>(parse_u64(v, k));
       }},
      {"l1.latency", [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.l1.latency_cycles = static_cast<std::uint32_t>(parse_u64(v, k));
       }},
      {"l2.size_kb", [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.l2.geom.size_bytes = parse_u64(v, k) * 1024;
       }},
      {"l2.ways", [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.l2.geom.ways = static_cast<std::uint32_t>(parse_u64(v, k));
       }},
      {"l2.line_bytes", [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.l2.geom.line_bytes = static_cast<std::uint32_t>(parse_u64(v, k));
         c.l1.geom.line_bytes = c.l2.geom.line_bytes;
       }},
      {"l2.latency", [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.l2.latency_cycles = static_cast<std::uint32_t>(parse_u64(v, k));
       }},
      {"l2.banks", [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.l2.banks = static_cast<std::uint32_t>(parse_u64(v, k));
       }},
      {"l2.access_occupancy", [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.l2.access_occupancy_cycles = static_cast<std::uint32_t>(parse_u64(v, k));
       }},
      {"l2.refresh_occupancy", [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.l2.refresh_occupancy_cycles = parse_double(v, k);
       }},
      {"l2.queue_pressure", [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.l2.queue_pressure = parse_double(v, k);
       }},
      {"edram.retention_us", [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.edram.retention_us = parse_double(v, k);
       }},
      {"edram.rpv_phases", [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.edram.rpv_phases = static_cast<std::uint32_t>(parse_u64(v, k));
       }},
      {"edram.ecc_correctable", [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.edram.ecc_correctable = static_cast<std::uint32_t>(parse_u64(v, k));
       }},
      {"edram.ecc_target_line_failure",
       [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.edram.ecc_target_line_failure = parse_double(v, k);
       }},
      {"mem.latency", [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.mem.latency_cycles = static_cast<std::uint32_t>(parse_u64(v, k));
       }},
      {"mem.bandwidth_gbps", [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.mem.bandwidth_gbps = parse_double(v, k);
       }},
      {"esteem.alpha", [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.esteem.alpha = parse_double(v, k);
       }},
      {"esteem.a_min", [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.esteem.a_min = static_cast<std::uint32_t>(parse_u64(v, k));
       }},
      {"esteem.modules", [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.esteem.modules = static_cast<std::uint32_t>(parse_u64(v, k));
       }},
      {"esteem.interval_cycles", [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.esteem.interval_cycles = parse_u64(v, k);
       }},
      {"esteem.sampling_ratio", [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.esteem.sampling_ratio = static_cast<std::uint32_t>(parse_u64(v, k));
       }},
      {"esteem.nonlru_guard", [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.esteem.nonlru_guard = parse_bool(v, k);
       }},
      {"esteem.min_leader_samples",
       [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.esteem.min_leader_samples = parse_u64(v, k);
       }},
      {"esteem.history_weight", [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.esteem.history_weight = parse_double(v, k);
       }},
      {"esteem.max_way_delta", [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.esteem.max_way_delta = static_cast<std::uint32_t>(parse_u64(v, k));
       }},
      {"esteem.hysteresis_intervals",
       [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.esteem.hysteresis_intervals = static_cast<std::uint32_t>(parse_u64(v, k));
       }},
      {"esteem.shrink_confirm_intervals",
       [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.esteem.shrink_confirm_intervals = static_cast<std::uint32_t>(parse_u64(v, k));
       }},
      {"faults.enabled", [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.faults.enabled = parse_bool(v, k);
       }},
      {"faults.seed", [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.faults.seed = parse_u64(v, k);
       }},
      {"faults.median_multiple",
       [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.faults.median_multiple = parse_double(v, k);
       }},
      {"faults.sigma", [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.faults.sigma = parse_double(v, k);
       }},
      {"faults.correction_latency",
       [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.faults.correction_latency_cycles = static_cast<std::uint32_t>(parse_u64(v, k));
       }},
      {"faults.disable_threshold",
       [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.faults.disable_threshold = static_cast<std::uint32_t>(parse_u64(v, k));
       }},
      {"faults.max_tracked_extension",
       [](SystemConfig& c, const std::string& v, const std::string& k) {
         c.faults.max_tracked_extension = static_cast<std::uint32_t>(parse_u64(v, k));
       }},
  };
  return kSetters;
}

}  // namespace

SystemConfig load_config(std::istream& in) {
  SystemConfig cfg;
  std::string section;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#' || t[0] == ';') continue;
    if (t.front() == '[') {
      if (t.back() != ']') {
        throw std::invalid_argument("config: bad section at line " +
                                    std::to_string(line_no));
      }
      section = trim(t.substr(1, t.size() - 2));
      continue;
    }
    const auto eq = t.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("config: expected key=value at line " +
                                  std::to_string(line_no));
    }
    const std::string key = section + "." + trim(t.substr(0, eq));
    const std::string value = trim(t.substr(eq + 1));
    const auto it = setters().find(key);
    if (it == setters().end()) {
      throw std::invalid_argument("config: unknown key '" + key + "' at line " +
                                  std::to_string(line_no));
    }
    it->second(cfg, value, key);
  }
  cfg.validate();
  return cfg;
}

SystemConfig load_config_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("config: cannot open " + path);
  return load_config(in);
}

void save_config(const SystemConfig& cfg, std::ostream& out) {
  out << "[system]\n"
      << "ncores = " << cfg.ncores << "\n"
      << "freq_ghz = " << cfg.freq_ghz << "\n\n"
      << "[l1]\n"
      << "size_kb = " << cfg.l1.geom.size_bytes / 1024 << "\n"
      << "ways = " << cfg.l1.geom.ways << "\n"
      << "latency = " << cfg.l1.latency_cycles << "\n\n"
      << "[l2]\n"
      << "size_kb = " << cfg.l2.geom.size_bytes / 1024 << "\n"
      << "ways = " << cfg.l2.geom.ways << "\n"
      << "line_bytes = " << cfg.l2.geom.line_bytes << "\n"
      << "latency = " << cfg.l2.latency_cycles << "\n"
      << "banks = " << cfg.l2.banks << "\n"
      << "access_occupancy = " << cfg.l2.access_occupancy_cycles << "\n"
      << "refresh_occupancy = " << cfg.l2.refresh_occupancy_cycles << "\n"
      << "queue_pressure = " << cfg.l2.queue_pressure << "\n\n"
      << "[edram]\n"
      << "retention_us = " << cfg.edram.retention_us << "\n"
      << "rpv_phases = " << cfg.edram.rpv_phases << "\n"
      << "ecc_correctable = " << cfg.edram.ecc_correctable << "\n"
      << "ecc_target_line_failure = " << cfg.edram.ecc_target_line_failure << "\n\n"
      << "[mem]\n"
      << "latency = " << cfg.mem.latency_cycles << "\n"
      << "bandwidth_gbps = " << cfg.mem.bandwidth_gbps << "\n\n"
      << "[esteem]\n"
      << "alpha = " << cfg.esteem.alpha << "\n"
      << "a_min = " << cfg.esteem.a_min << "\n"
      << "modules = " << cfg.esteem.modules << "\n"
      << "interval_cycles = " << cfg.esteem.interval_cycles << "\n"
      << "sampling_ratio = " << cfg.esteem.sampling_ratio << "\n"
      << "nonlru_guard = " << (cfg.esteem.nonlru_guard ? "true" : "false") << "\n"
      << "min_leader_samples = " << cfg.esteem.min_leader_samples << "\n"
      << "history_weight = " << cfg.esteem.history_weight << "\n"
      << "max_way_delta = " << cfg.esteem.max_way_delta << "\n"
      << "hysteresis_intervals = " << cfg.esteem.hysteresis_intervals << "\n"
      << "shrink_confirm_intervals = " << cfg.esteem.shrink_confirm_intervals << "\n\n"
      << "[faults]\n"
      << "enabled = " << (cfg.faults.enabled ? "true" : "false") << "\n"
      << "seed = " << cfg.faults.seed << "\n"
      << "median_multiple = " << cfg.faults.median_multiple << "\n"
      << "sigma = " << cfg.faults.sigma << "\n"
      << "correction_latency = " << cfg.faults.correction_latency_cycles << "\n"
      << "disable_threshold = " << cfg.faults.disable_threshold << "\n"
      << "max_tracked_extension = " << cfg.faults.max_tracked_extension << "\n";
}

void save_config_file(const SystemConfig& cfg, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::invalid_argument("config: cannot open " + path);
  save_config(cfg, out);
}

}  // namespace esteem

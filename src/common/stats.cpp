#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace esteem {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size()));
}

double min_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
}

std::uint64_t Histogram::total() const noexcept {
  std::uint64_t t = 0;
  for (auto c : counts_) t += c;
  return t;
}

}  // namespace esteem

#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <ostream>
#include <sstream>

namespace esteem {

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '.' && c != '-' &&
        c != '+' && c != '%' && c != 'x' && c != 'e') {
      return false;
    }
  }
  return true;
}
}  // namespace

void TextTable::set_header(std::vector<std::string> cells) { header_ = std::move(cells); }

void TextTable::add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

void TextTable::add_separator() { separators_.push_back(rows_.size()); }

std::string TextTable::to_string() const {
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  auto rule = [&] {
    for (std::size_t c = 0; c < ncols; ++c) {
      os << '+' << std::string(width[c] + 2, '-');
    }
    os << "+\n";
  };
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string cell = c < r.size() ? r[c] : "";
      os << "| ";
      if (looks_numeric(cell)) {
        os << std::string(width[c] - cell.size(), ' ') << cell;
      } else {
        os << cell << std::string(width[c] - cell.size(), ' ');
      }
      os << ' ';
    }
    os << "|\n";
  };

  rule();
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (std::find(separators_.begin(), separators_.end(), i) != separators_.end()) rule();
    emit(rows_[i]);
  }
  rule();
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << to_string(); }

std::string fmt(double v, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << v;
  return os.str();
}

std::string fmt_bytes(std::uint64_t bytes) {
  constexpr std::uint64_t kMB = 1024ULL * 1024;
  constexpr std::uint64_t kKB = 1024ULL;
  std::ostringstream os;
  if (bytes >= kMB && bytes % kMB == 0) {
    os << bytes / kMB << "MB";
  } else if (bytes >= kKB && bytes % kKB == 0) {
    os << bytes / kKB << "KB";
  } else {
    os << bytes << "B";
  }
  return os.str();
}

}  // namespace esteem

// CSV writer so bench output can be post-processed/plotted.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace esteem {

/// Writes rows of cells as RFC-4180-ish CSV (quotes cells containing
/// commas/quotes/newlines). Throws std::runtime_error if the file cannot
/// be opened.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& cells);
  /// Flushes and closes; called by the destructor as well.
  void close();

 private:
  static std::string escape(const std::string& cell);
  std::ofstream out_;
};

}  // namespace esteem

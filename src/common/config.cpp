#include "common/config.hpp"

#include <stdexcept>
#include <string>

namespace esteem {

SystemConfig SystemConfig::single_core() {
  SystemConfig cfg;  // struct defaults are the single-core paper setup
  return cfg;
}

SystemConfig SystemConfig::dual_core() {
  SystemConfig cfg;
  cfg.ncores = 2;
  cfg.l2.geom.size_bytes = 8ULL * 1024 * 1024;
  cfg.mem.bandwidth_gbps = 15.0;
  cfg.esteem.modules = 16;
  return cfg;
}

namespace {
void require(bool ok, const std::string& what) {
  if (!ok) throw std::invalid_argument("SystemConfig: " + what);
}
}  // namespace

void SystemConfig::validate() const {
  require(ncores >= 1, "ncores must be >= 1");
  require(freq_ghz > 0.0, "frequency must be positive");

  require(l1.geom.line_bytes == l2.geom.line_bytes,
          "L1 and L2 must share a line size");
  for (const CacheGeometry& g : {l1.geom, l2.geom}) {
    require(g.line_bytes > 0 && is_pow2(g.line_bytes), "line size must be a power of two");
    require(g.ways >= 1, "associativity must be >= 1");
    require(g.size_bytes % (static_cast<std::uint64_t>(g.ways) * g.line_bytes) == 0,
            "cache size must be a multiple of ways*line");
    require(g.sets() >= 1, "cache must have at least one set");
    require(is_pow2(g.sets()), "set count must be a power of two");
  }

  require(l2.banks >= 1 && is_pow2(l2.banks), "bank count must be a power of two >= 1");
  require(l2.geom.sets() >= l2.banks, "more banks than sets");
  require(l2.access_occupancy_cycles >= 1, "access occupancy must be >= 1");
  require(l2.refresh_occupancy_cycles > 0.0, "refresh occupancy must be positive");
  require(l2.queue_pressure >= 0.0, "queue pressure must be >= 0");

  require(edram.retention_us > 0.0, "retention period must be positive");
  require(edram.rpv_phases >= 1, "RPV needs at least one phase");
  require(retention_cycles() >= edram.rpv_phases,
          "retention must span at least one cycle per phase");

  require(mem.latency_cycles > 0, "memory latency must be positive");
  require(mem.bandwidth_gbps > 0.0, "memory bandwidth must be positive");

  require(energy.refresh_scale > 0.0, "energy refresh scale must be positive");
  require(energy.dyn_scale > 0.0, "energy dyn scale must be positive");
  require(energy.leak_scale > 0.0, "energy leak scale must be positive");

  require(esteem.alpha > 0.0 && esteem.alpha <= 1.0, "alpha must be in (0,1]");
  require(esteem.a_min >= 1, "A_min must be >= 1");
  require(esteem.a_min <= l2.geom.ways, "A_min must not exceed associativity");
  require(esteem.modules >= 1, "module count must be >= 1");
  require(l2.geom.sets() % esteem.modules == 0,
          "module count must divide the set count");
  require(esteem.interval_cycles > 0, "interval must be positive");
  require(esteem.sampling_ratio >= 1, "sampling ratio must be >= 1");
  require(esteem.history_weight >= 0.0 && esteem.history_weight < 1.0,
          "history weight must be in [0,1)");

  if (sampling.enabled) {
    require(sampling.window_instr >= 1, "sampling window must be >= 1 instruction");
    require(sampling.period_instr > sampling.window_instr +
                                        sampling.detail_warm_instr +
                                        sampling.ff_warm_instr,
            "sampling period must exceed window + warm segments");
  }

  require(service.lock_mode == "append" || service.lock_mode == "lockfile",
          "service lock_mode must be 'append' or 'lockfile'");

  require(faults.median_multiple > 0.0, "fault median multiple must be positive");
  require(faults.sigma > 0.0, "fault sigma must be positive");
  require(faults.disable_threshold >= 1, "fault disable threshold must be >= 1");
  require(faults.max_tracked_extension >= 1,
          "fault max tracked extension must be >= 1");
}

}  // namespace esteem

#include "common/rng.hpp"

// Header-only; this TU exists so the target has a compiled artifact and the
// header is syntax-checked even when nothing else includes it yet.
namespace esteem {
namespace {
[[maybe_unused]] void anchor() { Rng rng{1}; (void)rng(); }
}  // namespace
}  // namespace esteem

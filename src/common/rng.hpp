// Deterministic, seedable PRNG used by the synthetic trace generators.
//
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64. We avoid
// std::mt19937_64 because trace generation is on the simulator's hot path
// and xoshiro is both faster and trivially reproducible across platforms.
#pragma once

#include <array>
#include <cstdint>

namespace esteem {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Precondition: bound != 0.
  /// Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) noexcept {
    __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>((*this)()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace esteem

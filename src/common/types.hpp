// Fundamental scalar types shared by every subsystem.
#pragma once

#include <cstdint>

namespace esteem {

/// Byte address in the simulated physical address space.
using addr_t = std::uint64_t;

/// Cache-block (line) number: `addr >> log2(line_bytes)`.
using block_t = std::uint64_t;

/// Simulated processor cycle count.
using cycle_t = std::uint64_t;

/// Retired-instruction count.
using instr_t = std::uint64_t;

/// Sentinel for "no block".
inline constexpr block_t kInvalidBlock = ~block_t{0};

/// Returns true iff `v` is a power of two (and nonzero).
constexpr bool is_pow2(std::uint64_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

/// Floor of log2; precondition: v != 0.
constexpr unsigned log2_floor(std::uint64_t v) noexcept {
  unsigned r = 0;
  while (v >>= 1) ++r;
  return r;
}

}  // namespace esteem

#include "energy/energy_model.hpp"

namespace esteem::energy {

EnergyCounters& EnergyCounters::operator+=(const EnergyCounters& o) {
  seconds += o.seconds;
  fa_seconds += o.fa_seconds;
  l2_hits += o.l2_hits;
  l2_misses += o.l2_misses;
  refreshes += o.refreshes;
  mm_accesses += o.mm_accesses;
  transitions += o.transitions;
  ecc_corrections += o.ecc_corrections;
  return *this;
}

EnergyBreakdown compute_energy(const EnergyModelParams& params,
                               const EnergyCounters& c) {
  constexpr double kNj = 1e-9;
  EnergyBreakdown e;
  e.leak_l2_j = params.l2.p_leak_watts * c.fa_seconds;                        // (4)
  e.dyn_l2_j = params.dyn_scale * params.l2.e_dyn_nj_per_access * kNj *
               (2.0 * static_cast<double>(c.l2_misses) + static_cast<double>(c.l2_hits));  // (5)
  e.refresh_l2_j = static_cast<double>(c.refreshes) * params.refresh_scale *
                   params.l2.e_dyn_nj_per_access * kNj;                       // (6)
  e.ecc_l2_j = static_cast<double>(c.ecc_corrections) *
               params.l2.e_dyn_nj_per_access * kNj;  // correction pass
  e.mm_j = params.mm_leak_w * c.seconds +
           params.mm_dyn_nj * kNj * static_cast<double>(c.mm_accesses);       // (7)
  e.algo_j = params.e_chi_nj * kNj * static_cast<double>(c.transitions);      // (8)
  return e;
}

double percent_energy_saving(const EnergyBreakdown& baseline,
                             const EnergyBreakdown& technique) {
  const double base = baseline.total_j();
  if (base <= 0.0) return 0.0;
  return 100.0 * (base - technique.total_j()) / base;
}

}  // namespace esteem::energy

// eDRAM L2 energy parameters (paper Table 2, obtained by the authors from
// CACTI 5.3 at 32 nm for a 16-way eDRAM cache), plus log-space interpolation
// for cache sizes between/outside the tabulated points.
#pragma once

#include <cstdint>

namespace esteem::energy {

struct L2EnergyParams {
  double e_dyn_nj_per_access = 0.0;  ///< E_dyn^L2 (nJ/access)
  double p_leak_watts = 0.0;         ///< P_leak^L2 (W)
};

/// Returns Table 2 values for the given cache size. Exact at the tabulated
/// sizes {2,4,8,16,32} MB; geometric interpolation/extrapolation in
/// log2(size) elsewhere. Throws std::invalid_argument for size 0.
L2EnergyParams l2_energy_params(std::uint64_t cache_size_bytes);

/// Constants from §6.3 (refs [23,29,46] and [29,30]).
inline constexpr double kMmDynNjPerAccess = 70.0;  ///< E_dyn^MM
inline constexpr double kMmLeakWatts = 0.18;       ///< P_leak^MM
inline constexpr double kEChiNj = 0.002;           ///< E_chi = 2 pJ per block transition

}  // namespace esteem::energy

// Memory-subsystem energy model: paper §6.3, equations (2)-(8).
//
//   E      = E_L2 + E_MM + E_Algo                                   (2)
//   E_L2   = LE_L2 + DE_L2 + RE_L2                                  (3)
//   LE_L2  = P_L2^leak * F_A * T                                    (4)
//   DE_L2  = E_L2^dyn * (2*M_L2 + H_L2)                             (5)
//   RE_L2  = N_R * E_L2^dyn                                         (6)
//   E_MM   = P_MM^leak * T + E_MM^dyn * A_MM                        (7)
//   E_Algo = E_chi * N_L                                            (8)
//
// An L2 miss consumes twice the dynamic energy of a hit; L2 leakage scales
// with the active fraction of the cache; refreshing a line costs the same
// energy as accessing it.
#pragma once

#include <cstdint>

#include "energy/cacti_table.hpp"

namespace esteem::energy {

/// Counter snapshot for one measurement window (an interval or a whole run).
struct EnergyCounters {
  double seconds = 0.0;            ///< T: wall-clock span of the window.
  double fa_seconds = 0.0;         ///< Integral of F_A over the window
                                   ///< (== seconds when the cache is fully on).
  std::uint64_t l2_hits = 0;       ///< H_L2
  std::uint64_t l2_misses = 0;     ///< M_L2
  std::uint64_t refreshes = 0;     ///< N_R (lines refreshed)
  std::uint64_t mm_accesses = 0;   ///< A_MM (fills + writebacks)
  std::uint64_t transitions = 0;   ///< N_L (blocks power-gated on/off)
  std::uint64_t ecc_corrections = 0;  ///< Reads that exercised ECC correction
                                      ///< (fault injection; 0 otherwise).

  EnergyCounters& operator+=(const EnergyCounters& o);
};

struct EnergyBreakdown {
  double leak_l2_j = 0.0;
  double dyn_l2_j = 0.0;
  double refresh_l2_j = 0.0;
  double ecc_l2_j = 0.0;  ///< ECC correction passes (decode + rewrite),
                          ///< charged one dynamic access each.
  double mm_j = 0.0;
  double algo_j = 0.0;

  double l2_j() const noexcept {
    return leak_l2_j + dyn_l2_j + refresh_l2_j + ecc_l2_j;
  }
  double total_j() const noexcept { return l2_j() + mm_j + algo_j; }
};

struct EnergyModelParams {
  L2EnergyParams l2;
  double mm_dyn_nj = kMmDynNjPerAccess;
  double mm_leak_w = kMmLeakWatts;
  double e_chi_nj = kEChiNj;
  /// Calibration multipliers (EnergyScaleConfig): per-line refresh energy
  /// and dynamic access energy relative to the Table 2 values. Leakage
  /// scaling is folded into `l2.p_leak_watts` by the caller.
  double refresh_scale = 1.0;
  double dyn_scale = 1.0;
};

/// Evaluates equations (2)-(8) over one counter window.
EnergyBreakdown compute_energy(const EnergyModelParams& params,
                               const EnergyCounters& counters);

/// Percentage energy saved by `technique` relative to `baseline` (metric 1,
/// §6.4). Positive = saving.
double percent_energy_saving(const EnergyBreakdown& baseline,
                             const EnergyBreakdown& technique);

}  // namespace esteem::energy

#include "energy/cacti_table.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

namespace esteem::energy {

namespace {

struct Row {
  double size_mb;
  double e_dyn_nj;
  double p_leak_w;
};

// Paper Table 2 (16-way eDRAM cache, CACTI 5.3, 32 nm).
constexpr std::array<Row, 5> kTable{{
    {2.0, 0.186, 0.096},
    {4.0, 0.212, 0.116},
    {8.0, 0.282, 0.280},
    {16.0, 0.370, 0.456},
    {32.0, 0.467, 1.056},
}};

}  // namespace

L2EnergyParams l2_energy_params(std::uint64_t cache_size_bytes) {
  if (cache_size_bytes == 0) {
    throw std::invalid_argument("l2_energy_params: zero cache size");
  }
  const double size_mb = static_cast<double>(cache_size_bytes) / (1024.0 * 1024.0);

  // Exact table hit.
  for (const Row& r : kTable) {
    if (size_mb == r.size_mb) return {r.e_dyn_nj, r.p_leak_w};
  }

  // Geometric interpolation in log2(size): both quantities grow smoothly
  // and multiplicatively with size in the table.
  const double x = std::log2(size_mb);
  auto lerp_log = [x](const Row& a, const Row& b, double Row::*field) {
    const double xa = std::log2(a.size_mb);
    const double xb = std::log2(b.size_mb);
    const double t = (x - xa) / (xb - xa);
    return std::exp2(std::lerp(std::log2(a.*field), std::log2(b.*field), t));
  };

  const Row* lo = &kTable.front();
  const Row* hi = &kTable.back();
  for (std::size_t i = 0; i + 1 < kTable.size(); ++i) {
    if (size_mb >= kTable[i].size_mb && size_mb <= kTable[i + 1].size_mb) {
      lo = &kTable[i];
      hi = &kTable[i + 1];
      break;
    }
  }
  if (size_mb < kTable.front().size_mb) {
    lo = &kTable[0];
    hi = &kTable[1];
  } else if (size_mb > kTable.back().size_mb) {
    lo = &kTable[kTable.size() - 2];
    hi = &kTable[kTable.size() - 1];
  }
  return {lerp_log(*lo, *hi, &Row::e_dyn_nj), lerp_log(*lo, *hi, &Row::p_leak_w)};
}

}  // namespace esteem::energy

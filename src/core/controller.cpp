#include "core/controller.hpp"

#include <algorithm>

namespace esteem::core {

EsteemController::EsteemController(cache::SetAssocCache& l2,
                                   const cache::ModuleMap& modules,
                                   const profiler::LeaderSets& leaders,
                                   profiler::ModuleProfiler& profiler,
                                   const EsteemParams& params)
    : l2_(l2), modules_(modules), leaders_(leaders), profiler_(profiler), params_(params) {
  algo_cfg_.alpha = params.alpha;
  algo_cfg_.a_min = params.a_min;
  algo_cfg_.nonlru_guard = params.nonlru_guard;
  active_.assign(modules.modules(), l2.ways());
  last_direction_.assign(modules.modules(), 0);
  last_change_.assign(modules.modules(), 0);
  smoothed_hits_.assign(modules.modules(), std::vector<double>(l2.ways(), 0.0));
  smoothed_accesses_.assign(modules.modules(), 0.0);
  shrink_streak_.assign(modules.modules(), 0);
}

std::uint32_t EsteemController::clamp_extensions(std::uint32_t module,
                                                 std::uint32_t target) {
  const std::uint32_t current = active_[module];

  if (params_.max_way_delta > 0) {
    const std::uint32_t lo =
        current > params_.max_way_delta ? current - params_.max_way_delta : 1;
    const std::uint32_t hi = current + params_.max_way_delta;
    target = std::clamp(target, lo, hi);
  }

  if (params_.hysteresis_intervals > 0 && target != current) {
    const std::int8_t dir = target > current ? std::int8_t{1} : std::int8_t{-1};
    const bool reversal = last_direction_[module] != 0 && dir != last_direction_[module];
    const bool recent =
        intervals_ - last_change_[module] <= params_.hysteresis_intervals;
    if (reversal && recent) return current;  // suppress thrashing
  }
  return target;
}

ReconfigResult EsteemController::run_interval(
    cycle_t now, const std::function<void(block_t)>& on_writeback) {
  ++intervals_;
  ReconfigResult result;

  // Fold this interval's leader samples into the exponentially smoothed
  // profiling state and decide from it (history_weight = 0 reduces to the
  // paper's last-interval-only decision).
  const double hw = params_.history_weight;
  std::vector<Histogram> hists;
  hists.reserve(modules_.modules());
  for (std::uint32_t m = 0; m < modules_.modules(); ++m) {
    smoothed_accesses_[m] =
        smoothed_accesses_[m] * hw + static_cast<double>(profiler_.accesses(m));
    Histogram h(l2_.ways());
    for (std::uint32_t i = 0; i < l2_.ways(); ++i) {
      smoothed_hits_[m][i] =
          smoothed_hits_[m][i] * hw + static_cast<double>(profiler_.hits(m).at(i));
      h.add(i, static_cast<std::uint64_t>(smoothed_hits_[m][i] + 0.5));
    }
    hists.push_back(std::move(h));
  }
  const std::vector<ModuleDecision> decisions =
      esteem_decide(hists, l2_.ways(), algo_cfg_);

  for (std::uint32_t m = 0; m < modules_.modules(); ++m) {
    // Optional guard: too few leader accesses to trust a decision.
    if (smoothed_accesses_[m] < static_cast<double>(params_.min_leader_samples)) {
      continue;
    }
    std::uint32_t target = clamp_extensions(m, decisions[m].active_ways);
    const std::uint32_t current = active_[m];

    // Shrink debouncing: a shrink must be requested for K consecutive
    // intervals before lines are actually flushed. Growth stays immediate.
    if (target < current) {
      ++shrink_streak_[m];
      if (params_.shrink_confirm_intervals > 1 &&
          shrink_streak_[m] < params_.shrink_confirm_intervals) {
        target = current;
      }
    } else {
      shrink_streak_[m] = 0;
    }
    if (target == current) continue;

    last_direction_[m] = target > current ? std::int8_t{1} : std::int8_t{-1};
    last_change_[m] = intervals_;

    const std::uint32_t delta =
        target > current ? target - current : current - target;
    const std::uint32_t first = modules_.first_set(m);
    const std::uint32_t last = first + modules_.sets_per_module();
    for (std::uint32_t set = first; set < last; ++set) {
      if (leaders_.is_leader(set)) continue;  // leaders never reconfigure
      result.transitions += delta;            // N_L counts on->off and off->on
      if (target < current) {
        // The flush is stamped with the interval boundary's cycle so
        // refresh policies observing the invalidations see real timestamps.
        l2_.resize_set(set, target, now, [&](block_t blk, bool dirty) {
          if (dirty) {
            ++result.writebacks;
            if (on_writeback) on_writeback(blk);
          } else {
            ++result.clean_discards;
          }
        });
      } else {
        l2_.resize_set(set, target, now, nullptr);
      }
    }
    active_[m] = target;
  }

  profiler_.clear();
  return result;
}

double EsteemController::active_fraction() const noexcept {
  const double ways = l2_.ways();
  double active_way_sets = 0.0;
  for (std::uint32_t m = 0; m < modules_.modules(); ++m) {
    const double leaders = leaders_.leaders_in_module(m);
    const double followers = modules_.sets_per_module() - leaders;
    active_way_sets += leaders * ways + followers * active_[m];
  }
  const double total = static_cast<double>(l2_.sets()) * ways;
  return active_way_sets / total;
}

}  // namespace esteem::core

// Storage-overhead assessment for ESTEEM's counters (paper §5, Eq. 1):
//
//   Overhead% = ((2A + 1) * M * 40) / (S * A * (B + G)) * 100
//
// nL2Hit and Accumulated_L2Hit need 2*M*A counters, nActiveWay needs M,
// each counter 40 bits; B = 512-bit lines, G = 40-bit tags.
#pragma once

#include <cstdint>

namespace esteem::core {

struct OverheadInputs {
  std::uint64_t sets = 4096;         ///< S
  std::uint32_t ways = 16;           ///< A
  std::uint32_t modules = 16;        ///< M
  std::uint32_t block_bits = 512;    ///< B (64-byte line)
  std::uint32_t tag_bits = 40;       ///< G
  std::uint32_t counter_bits = 40;
};

/// Total counter storage in bits: (2A + 1) * M * counter_bits.
std::uint64_t counter_storage_bits(const OverheadInputs& in);

/// Equation (1): counter storage as a percentage of L2 storage.
double overhead_percent(const OverheadInputs& in);

}  // namespace esteem::core

#include "core/overhead.hpp"

#include <stdexcept>

namespace esteem::core {

std::uint64_t counter_storage_bits(const OverheadInputs& in) {
  return (2ULL * in.ways + 1ULL) * in.modules * in.counter_bits;
}

double overhead_percent(const OverheadInputs& in) {
  const auto l2_bits = static_cast<double>(in.sets) * in.ways * (in.block_bits + in.tag_bits);
  if (l2_bits <= 0.0) throw std::invalid_argument("overhead_percent: empty cache");
  return 100.0 * static_cast<double>(counter_storage_bits(in)) / l2_bits;
}

}  // namespace esteem::core

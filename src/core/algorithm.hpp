// ESTEEM's energy-saving algorithm (paper Algorithm 1).
//
// Input: per-module histograms of hits at each LRU recency position over the
// last interval. Output: the number of ways to keep active in each module.
//
// Per module:
//   1. Non-LRU detection — count positions i where hits[i] < hits[i+1];
//      >= A/4 anomalies marks the module non-LRU.
//   2. Way selection — keep the smallest X such that the accumulated hits in
//      the X most-recent positions cover at least alpha of all hits, floored
//      at A_min; for non-LRU modules at most one way may be turned off
//      (floor A-1) so reconfiguration aggressiveness is reduced (§3.1).
//
// Note on the paper's pseudocode: isModuleNonLRU is never reset inside the
// module loop as printed; we reset it per module, which is clearly the
// intent (otherwise one non-LRU module would pin every later module).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/stats.hpp"

namespace esteem::core {

struct AlgorithmConfig {
  double alpha = 0.97;
  std::uint32_t a_min = 3;
  /// Disable for the ablation bench: non-LRU modules are then treated like
  /// any other module.
  bool nonlru_guard = true;
};

struct ModuleDecision {
  std::uint32_t active_ways = 0;
  bool non_lru = false;
};

/// Detects the non-LRU hit pattern for a single module (Algorithm 1, l.4-13).
bool is_non_lru(std::span<const std::uint64_t> hits);

/// Way selection for a single module (Algorithm 1, l.14-26). `ways` is A.
ModuleDecision decide_module(std::span<const std::uint64_t> hits, std::uint32_t ways,
                             const AlgorithmConfig& cfg);

/// Full Algorithm 1 over all modules.
std::vector<ModuleDecision> esteem_decide(std::span<const Histogram> module_hits,
                                          std::uint32_t ways, const AlgorithmConfig& cfg);

}  // namespace esteem::core

// ESTEEM reconfiguration controller: runs Algorithm 1 at every interval
// boundary and applies the per-module way decisions to the cache.
//
// Leader sets never reconfigure (they are the embedded ATD); follower sets
// take the module's decision. When shrinking, clean lines are discarded and
// dirty lines written back (§5); the controller reports both so the memory
// system can charge writeback traffic and the energy model can charge
// E_chi * N_L for the power-gating transitions.
//
// Two optional extensions implement the paper's stated future work (§7.2):
// a cap on the per-interval way delta, and hysteresis that suppresses
// direction reversals within a configurable number of intervals.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.hpp"
#include "cache/module_map.hpp"
#include "common/config.hpp"
#include "common/types.hpp"
#include "core/algorithm.hpp"
#include "profiler/atd.hpp"
#include "profiler/leader_sets.hpp"

namespace esteem::core {

struct ReconfigResult {
  std::uint64_t transitions = 0;     ///< N_L: blocks power-gated on or off.
  std::uint64_t writebacks = 0;      ///< Dirty lines flushed to memory.
  std::uint64_t clean_discards = 0;  ///< Clean lines simply invalidated.
};

class EsteemController {
 public:
  EsteemController(cache::SetAssocCache& l2, const cache::ModuleMap& modules,
                   const profiler::LeaderSets& leaders, profiler::ModuleProfiler& profiler,
                   const EsteemParams& params);

  /// Executes Algorithm 1 on the last interval's histograms, applies the
  /// decisions, and clears the histograms for the next interval.
  /// `on_writeback` is invoked once per flushed dirty line.
  ReconfigResult run_interval(cycle_t now,
                              const std::function<void(block_t)>& on_writeback);

  /// F_A: active fraction of the cache, counting leader sets as fully on.
  double active_fraction() const noexcept;

  /// Current per-module decision (followers' active way count).
  const std::vector<std::uint32_t>& module_active_ways() const noexcept {
    return active_;
  }

  std::uint64_t intervals_run() const noexcept { return intervals_; }

 private:
  std::uint32_t clamp_extensions(std::uint32_t module, std::uint32_t target);

  cache::SetAssocCache& l2_;
  const cache::ModuleMap& modules_;
  const profiler::LeaderSets& leaders_;
  profiler::ModuleProfiler& profiler_;
  EsteemParams params_;
  AlgorithmConfig algo_cfg_;

  std::vector<std::uint32_t> active_;         // per-module follower way count
  std::vector<std::int8_t> last_direction_;   // -1 shrink, +1 grow, 0 none
  std::vector<std::uint64_t> last_change_;    // interval index of last change
  std::uint64_t intervals_ = 0;

  // Exponentially smoothed profiling state (history_weight > 0); decisions
  // are made from these rather than the raw last-interval histograms.
  std::vector<std::vector<double>> smoothed_hits_;   // [module][lru position]
  std::vector<double> smoothed_accesses_;            // [module]

  // Shrink debouncing (shrink_confirm_intervals > 1).
  std::vector<std::uint32_t> shrink_streak_;         // consecutive shrink asks
};

}  // namespace esteem::core

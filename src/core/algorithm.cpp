#include "core/algorithm.hpp"

#include <algorithm>
#include <stdexcept>

namespace esteem::core {

bool is_non_lru(std::span<const std::uint64_t> hits) {
  if (hits.size() < 2) return false;
  std::uint32_t anomalies = 0;
  for (std::size_t i = 0; i + 1 < hits.size(); ++i) {
    if (hits[i] < hits[i + 1]) ++anomalies;
  }
  // nLRUAnomaly >= A/4 marks the module non-LRU.
  return anomalies * 4 >= hits.size();
}

ModuleDecision decide_module(std::span<const std::uint64_t> hits, std::uint32_t ways,
                             const AlgorithmConfig& cfg) {
  if (hits.size() != ways) {
    throw std::invalid_argument("decide_module: histogram size != associativity");
  }
  if (cfg.a_min == 0 || cfg.a_min > ways) {
    throw std::invalid_argument("decide_module: A_min out of range");
  }

  ModuleDecision d;
  d.non_lru = cfg.nonlru_guard && is_non_lru(hits);

  std::uint64_t total = 0;
  for (auto h : hits) total += h;

  std::uint64_t accumulated = 0;
  for (std::uint32_t i = 0; i < ways; ++i) {
    accumulated += hits[i];
    // Integer-exact form of: accumulated >= alpha * total.
    if (static_cast<double>(accumulated) >= cfg.alpha * static_cast<double>(total)) {
      d.active_ways = std::max(cfg.a_min, i + 1);
      if (d.non_lru) d.active_ways = std::max(ways - 1, i + 1);
      return d;
    }
  }
  // Unreachable when alpha <= 1 (accumulated == total at i = A-1), but keep
  // a safe fallback for alpha == 1 with total == 0 edge handling above.
  d.active_ways = ways;
  return d;
}

std::vector<ModuleDecision> esteem_decide(std::span<const Histogram> module_hits,
                                          std::uint32_t ways, const AlgorithmConfig& cfg) {
  std::vector<ModuleDecision> out;
  out.reserve(module_hits.size());
  for (const Histogram& h : module_hits) {
    out.push_back(decide_module(h.counts(), ways, cfg));
  }
  return out;
}

}  // namespace esteem::core

// Crash-safe record log: append-only, fsync'd, per-line-checksummed JSONL.
//
// Each record is one line of flat JSON whose values are plain strings (the
// caller hex-encodes anything binary), closed by a CRC-32 of everything
// before the crc field:
//
//   {"v":1,"kind":"row","workload":"mcf","payload":"9a3f...","crc":"8d21c4f0"}
//
// Durability contract: append() writes the whole line with a single write(2)
// to an O_APPEND descriptor and fsyncs before returning, so once append()
// returns the record survives SIGKILL and power loss. A crash *during*
// append leaves at most one torn tail line, which load() detects via the
// CRC (or the missing newline) and reports as corrupt instead of returning
// garbage — everything before the tear is still usable.
//
// Multi-writer contract: several processes may append to the same path
// through their own JournalFile instances; O_APPEND makes each record write
// atomic with respect to the others. A writer that dies mid-append can
// therefore leave a short record in the *middle* of the file (the next
// writer's line lands after the tear). load() skips and counts such damaged
// interior lines (`journal.damaged_lines` telemetry counter) — and salvages
// an intact record that a missing newline glued onto a torn fragment —
// instead of refusing the journal.
//
// This layer knows nothing about sweeps; sim/sweep_journal.hpp gives the
// records their meaning.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace esteem::resilience {

/// One journal record: a kind tag plus ordered (key, value) string fields.
/// Values must not contain '"' or '\\' — the writer does not escape (callers
/// hex-encode arbitrary data); a value that breaks this renders only its own
/// line unparseable, which the loader treats as corruption.
struct JournalRecord {
  std::string kind;
  std::vector<std::pair<std::string, std::string>> fields;

  /// First value stored under `key`; "" when absent.
  const std::string& field(const std::string& key) const;
};

/// Structured observability event — the shared `evt` record kind of the
/// journal schema (DESIGN.md §13). Every journal/sidecar writer that wants
/// to log "something happened" uses this shape, so loaders across the
/// service can decode each other's events: a severity, both clock domains
/// (wall milliseconds always; simulated microseconds when the event came
/// from inside a run, else negative), the emitting source, an optional
/// lease/row context, and a free-form message (hex-encoded on the wire —
/// journal values may not contain quotes or backslashes).
struct EventRecord {
  /// `row` value meaning "no row context".
  static constexpr std::uint64_t kNoRow = ~0ULL;

  std::int64_t t_ms = 0;        ///< Wall clock, ms since the Unix epoch.
  double sim_us = -1.0;         ///< Simulated time; < 0 = not applicable.
  std::string severity;         ///< "info" | "warn" | "error".
  std::string source;           ///< Emitting owner/component.
  std::string message;          ///< Free-form text (any bytes).
  std::uint64_t lease_id = 0;   ///< 0 = no lease context.
  std::uint64_t row = kNoRow;

  /// Renders as an `evt` JournalRecord (field order fixed by the schema).
  JournalRecord to_journal() const;
  /// Inverse of to_journal(); false when `rec` is not a decodable event.
  static bool from_journal(const JournalRecord& rec, EventRecord& out);
};

struct JournalLoadResult {
  std::vector<JournalRecord> records;  ///< CRC-verified records, file order.
  std::size_t corrupt_lines = 0;       ///< Torn/garbled lines skipped.
  bool exists = false;                 ///< File was present and readable.
};

class JournalFile {
 public:
  JournalFile() = default;
  ~JournalFile();
  JournalFile(const JournalFile&) = delete;
  JournalFile& operator=(const JournalFile&) = delete;

  /// Names this journal's chaos-injection points (DESIGN.md §15): domain
  /// `d` consults `d.open`, `d.append.write`, `d.append.fsync`,
  /// `d.crash.before_append`, `d.crash.after_append`. Call before open();
  /// the default domain is "journal" (unregistered — fault plans target the
  /// registered domains: "sweep", "lease", "sidecar").
  void set_domain(const std::string& domain);

  /// Opens `path` for appending. `truncate` starts a fresh journal;
  /// otherwise existing records are preserved and appends go after them.
  /// Returns false (with the reason in last_error()) when the file cannot
  /// be opened.
  bool open(const std::string& path, bool truncate);

  /// Appends one checksummed record line and fsyncs. Thread-safe. Returns
  /// false if the journal is closed or the write/fsync failed.
  bool append(const JournalRecord& record);

  void close();
  bool is_open() const noexcept { return fd_ >= 0; }
  const std::string& path() const noexcept { return path_; }
  const std::string& last_error() const noexcept { return last_error_; }

  /// Parses a journal from disk, CRC-verifying every line. Never throws:
  /// unreadable file -> exists=false; damaged lines are counted and skipped.
  static JournalLoadResult load(const std::string& path);

  /// Renders a record as its line (without trailing newline) — the exact
  /// bytes append() writes. Exposed for tests.
  static std::string encode(const JournalRecord& record);

  /// Inverse of encode(); false when the line is torn, garbled, or fails
  /// its CRC.
  static bool decode(const std::string& line, JournalRecord& out);

 private:
  std::mutex mutex_;
  int fd_ = -1;
  std::string path_;
  std::string last_error_;
  // Chaos point names, precomputed so the disarmed fast path never builds
  // strings (see set_domain()).
  std::string pt_open_ = "journal.open";
  std::string pt_write_ = "journal.append.write";
  std::string pt_fsync_ = "journal.append.fsync";
  std::string pt_crash_before_ = "journal.crash.before_append";
  std::string pt_crash_after_ = "journal.crash.after_append";
};

}  // namespace esteem::resilience

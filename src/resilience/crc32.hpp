// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) — the integrity checksum used
// by the sweep journal (per record line) and the disk memo cache (per file
// payload). A CRC is enough here: the threat model is torn writes, truncated
// files and bit rot, not an adversary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace esteem::resilience {

/// Incremental update: feed `crc32(data, len, prev)` the previous return
/// value to checksum a stream in pieces. Seed with 0.
std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed = 0) noexcept;

inline std::uint32_t crc32(const std::string& bytes, std::uint32_t seed = 0) noexcept {
  return crc32(bytes.data(), bytes.size(), seed);
}

}  // namespace esteem::resilience

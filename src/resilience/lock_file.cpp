#include "resilience/lock_file.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <thread>

#include "chaos/file_ops.hpp"
#include "telemetry/telemetry.hpp"

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace esteem::resilience {

namespace fs = std::filesystem;

LockFile::~LockFile() { release(); }

bool LockFile::acquire(const std::string& path, const std::string& owner,
                       std::uint32_t stale_ms, std::uint32_t timeout_ms) {
#if defined(_WIN32)
  (void)path;
  (void)owner;
  (void)stale_ms;
  (void)timeout_ms;
  last_error_ = "lockfile: unsupported platform";
  return false;
#else
  if (held_) {
    last_error_ = "lockfile: already held";
    return false;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd = chaos::px_open("lock.open", path.c_str(),
                                  O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd >= 0) {
      // Best-effort owner tag; losing it costs only debuggability.
      (void)!::write(fd, owner.data(), owner.size());
      ::close(fd);
      path_ = path;
      held_ = true;
      last_error_.clear();
      chaos::crashpoint("lock.crash.held");
      return true;
    }
    if (errno == EEXIST) {
      // Held by someone — or by a corpse. Break locks older than stale_ms;
      // unlink races with other breakers are benign (ENOENT = someone else
      // broke it first) and with the holder's own release (same effect).
      std::error_code ec;
      const auto mtime = fs::last_write_time(path, ec);
      if (!ec) {
        const auto age = fs::file_time_type::clock::now() - mtime;
        if (age > std::chrono::milliseconds(stale_ms)) {
          fs::remove(path, ec);
          if (!ec && telemetry::active()) {
            telemetry::registry().counter("service.locks_broken").add(1);
          }
          continue;
        }
      }
    }
    // Transient error (EEXIST with a fresh lock, injected ENOSPC/EIO, a
    // racing unlink): retry until the deadline.
    if (std::chrono::steady_clock::now() >= deadline) {
      if (telemetry::active()) {
        telemetry::registry().counter("service.lock_timeouts").add(1);
      }
      last_error_ = "lockfile: timeout acquiring " + path + " (last errno: " +
                    std::strerror(errno) + ")";
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
#endif
}

void LockFile::release() {
  if (!held_) return;
  std::error_code ec;
  fs::remove(path_, ec);
  held_ = false;
  path_.clear();
}

}  // namespace esteem::resilience

#include "resilience/shutdown.hpp"

#include <atomic>
#include <csignal>

namespace esteem::resilience {

namespace {

// Two flags on purpose: the sig_atomic_t is the only thing the handler
// touches (async-signal-safe); the atomic mirrors it for cross-thread
// visibility from request_shutdown()/worker polls.
volatile std::sig_atomic_t g_signal_flag = 0;
std::atomic<bool> g_requested{false};

extern "C" void esteem_shutdown_handler(int sig) {
  g_signal_flag = 1;
  // Re-arm to default so a second signal terminates immediately instead of
  // being swallowed while the pool drains. std::signal is async-signal-safe
  // for this use.
  std::signal(sig, SIG_DFL);
}

}  // namespace

void install_signal_handlers() {
  std::signal(SIGINT, esteem_shutdown_handler);
  std::signal(SIGTERM, esteem_shutdown_handler);
}

bool shutdown_requested() noexcept {
  return g_signal_flag != 0 || g_requested.load(std::memory_order_relaxed);
}

void request_shutdown() noexcept { g_requested.store(true, std::memory_order_relaxed); }

void clear_shutdown() noexcept {
  g_requested.store(false, std::memory_order_relaxed);
  g_signal_flag = 0;
}

}  // namespace esteem::resilience

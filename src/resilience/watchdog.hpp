// Run watchdog + retry policy for long-running work units.
//
// Watchdog state machine (per registered run):
//
//     add() ──► ACTIVE ──(monitor: now >= deadline)──► EXPIRED
//                  │                                      │
//                  └──────────── remove() ◄───────────────┘
//
// A WatchdogGuard registers the run on construction and deregisters on
// destruction; remove() reports whether the run overshot its deadline —
// either because the monitor thread marked it mid-flight or because the
// elapsed time exceeds the deadline at completion. The watchdog is
// *cooperative*: it cannot preempt a hung simulation thread (killing a
// thread that holds locks would corrupt the process), so its job is
// (a) making the hang observable immediately — `resilience.deadline_exceeded`
// ticks in the telemetry CounterRegistry and a line goes to stderr the
// moment the deadline passes, while the run is still stuck — and
// (b) discarding the result if the run eventually finishes late, so a
// deadline overrun surfaces deterministically as RunError{phase="deadline"}
// instead of silently polluting the sweep.
//
// The monitor thread is started lazily on the first registration with a
// nonzero deadline and wakes exactly when the earliest active deadline is
// due (no fixed polling period), so an idle watchdog costs nothing.
//
// RetryPolicy/with_retries implement transient-failure retry with capped
// exponential backoff; deadline overruns are deliberately *not* retried
// (a run that blows its budget once will blow it again).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

namespace esteem::resilience {

/// Thrown (by the caller, via WatchdogGuard::expired()) when a run exceeded
/// its wall-clock deadline. Carries the label and budget for the error
/// report; converted to RunError{phase="deadline"} by the sweep runner.
class DeadlineExceeded : public std::runtime_error {
 public:
  DeadlineExceeded(const std::string& label, std::uint32_t deadline_ms);
};

class Watchdog {
 public:
  /// Process-wide instance (monitor thread joined at exit).
  static Watchdog& instance();

  Watchdog() = default;
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Registers a run with a wall-clock budget. Returns a nonzero id.
  std::uint64_t add(std::string label, std::uint32_t deadline_ms);

  /// Deregisters; true when the run overshot its deadline (marked by the
  /// monitor mid-flight, or detected now at completion).
  bool remove(std::uint64_t id);

  /// Active registrations (tests).
  std::size_t active() const;

 private:
  struct Entry {
    std::string label;
    std::chrono::steady_clock::time_point deadline;
    bool expired = false;
  };

  void monitor_loop();
  void mark_expired_locked(Entry& entry);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::uint64_t, Entry> entries_;
  std::uint64_t next_id_ = 1;
  bool stop_ = false;
  bool thread_running_ = false;
  std::thread monitor_;
};

/// RAII registration; inert when deadline_ms == 0.
class WatchdogGuard {
 public:
  WatchdogGuard(std::string label, std::uint32_t deadline_ms)
      : deadline_ms_(deadline_ms),
        id_(deadline_ms == 0 ? 0 : Watchdog::instance().add(std::move(label), deadline_ms)) {}
  ~WatchdogGuard() {
    if (id_ != 0) Watchdog::instance().remove(id_);
  }
  WatchdogGuard(const WatchdogGuard&) = delete;
  WatchdogGuard& operator=(const WatchdogGuard&) = delete;

  /// Deregisters and reports deadline overrun. Call once, after the guarded
  /// work completes; the destructor handles the not-called (exception) path.
  bool expired() {
    if (id_ == 0) return false;
    const bool late = Watchdog::instance().remove(id_);
    id_ = 0;
    return late;
  }
  std::uint32_t deadline_ms() const noexcept { return deadline_ms_; }

 private:
  std::uint32_t deadline_ms_;
  std::uint64_t id_;
};

/// Transient-failure retry policy ([resilience] config section).
struct RetryPolicy {
  std::uint32_t max_retries = 0;  ///< Extra attempts after the first failure.
  std::uint32_t backoff_ms = 100; ///< Base delay; doubles per retry.
};

/// Exponential backoff with a 2^16 cap on the multiplier (keeps the shift
/// defined and the wait bounded): base * 2^attempt.
std::uint64_t next_backoff_ms(std::uint32_t attempt, std::uint32_t backoff_ms) noexcept;

/// Runs `fn`, retrying transient failures per `policy` with exponential
/// backoff. DeadlineExceeded is never retried. `on_retry(attempt, delay_ms)`
/// (optional) observes each retry — the sweep runner uses it to tick the
/// `resilience.retries` counter. The final failure propagates.
template <typename Fn, typename OnRetry>
auto with_retries(const RetryPolicy& policy, Fn&& fn, OnRetry&& on_retry)
    -> decltype(fn()) {
  for (std::uint32_t attempt = 0;; ++attempt) {
    try {
      return fn();
    } catch (const DeadlineExceeded&) {
      throw;  // a blown budget is not transient
    } catch (...) {
      if (attempt >= policy.max_retries) throw;
      const std::uint64_t delay = next_backoff_ms(attempt, policy.backoff_ms);
      on_retry(attempt, delay);
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      }
    }
  }
}

}  // namespace esteem::resilience

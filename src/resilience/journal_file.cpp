#include "resilience/journal_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "chaos/file_ops.hpp"
#include "common/bytes.hpp"
#include "resilience/crc32.hpp"
#include "telemetry/telemetry.hpp"

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace esteem::resilience {

namespace {

const std::string kEmpty;

/// Hex render of a CRC value, fixed width so lines are self-delimiting.
std::string crc_hex(std::uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08x", crc);
  return buf;
}

/// Scans `"key":"value"` at `pos` (expects it to start exactly there);
/// advances pos past the pair. Values are raw (no escape handling, matching
/// the writer's contract).
bool scan_pair(const std::string& s, std::size_t& pos, std::string& key,
               std::string& value) {
  if (pos >= s.size() || s[pos] != '"') return false;
  const std::size_t key_end = s.find('"', pos + 1);
  if (key_end == std::string::npos) return false;
  key = s.substr(pos + 1, key_end - pos - 1);
  if (s.compare(key_end, 3, "\":\"") != 0) return false;
  const std::size_t val_begin = key_end + 3;
  const std::size_t val_end = s.find('"', val_begin);
  if (val_end == std::string::npos) return false;
  value = s.substr(val_begin, val_end - val_begin);
  pos = val_end + 1;
  return true;
}

/// Journal field values may not contain '"', '\\', or control bytes; labels
/// (severity/source) come from code and CLI flags, so scrub rather than
/// trust.
std::string scrub_label(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) c = '_';
  }
  return out;
}

}  // namespace

JournalRecord EventRecord::to_journal() const {
  char sim[32];
  std::snprintf(sim, sizeof sim, "%.3f", sim_us);
  JournalRecord rec;
  rec.kind = "evt";
  rec.fields = {{"t", std::to_string(t_ms)},
                {"sim", sim},
                {"sev", scrub_label(severity)},
                {"src", scrub_label(source)},
                {"lease", hex_u64(lease_id)},
                {"row", std::to_string(row)},
                {"msg", to_hex(message)}};
  return rec;
}

bool EventRecord::from_journal(const JournalRecord& rec, EventRecord& out) {
  if (rec.kind != "evt") return false;
  EventRecord ev;
  {
    const std::string& t = rec.field("t");
    char* end = nullptr;
    ev.t_ms = std::strtoll(t.c_str(), &end, 10);
    if (t.empty() || end != t.c_str() + t.size()) return false;
  }
  {
    const std::string& sim = rec.field("sim");
    char* end = nullptr;
    ev.sim_us = std::strtod(sim.c_str(), &end);
    if (sim.empty() || end != sim.c_str() + sim.size()) return false;
  }
  ev.severity = rec.field("sev");
  ev.source = rec.field("src");
  if (!parse_hex_u64(rec.field("lease"), ev.lease_id)) return false;
  {
    const std::string& row = rec.field("row");
    char* end = nullptr;
    ev.row = std::strtoull(row.c_str(), &end, 10);
    if (row.empty() || end != row.c_str() + row.size()) return false;
  }
  const auto msg = from_hex(rec.field("msg"));
  if (!msg) return false;
  ev.message = *msg;
  out = std::move(ev);
  return true;
}

const std::string& JournalRecord::field(const std::string& key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return v;
  }
  return kEmpty;
}

std::string JournalFile::encode(const JournalRecord& record) {
  std::ostringstream os;
  os << "{\"v\":1,\"kind\":\"" << record.kind << '"';
  for (const auto& [k, v] : record.fields) {
    os << ",\"" << k << "\":\"" << v << '"';
  }
  std::string body = os.str();
  const std::uint32_t crc = crc32(body);
  body += ",\"crc\":\"";
  body += crc_hex(crc);
  body += "\"}";
  return body;
}

bool JournalFile::decode(const std::string& line, JournalRecord& out) {
  // Layout check: {"v":1,...,"crc":"xxxxxxxx"}
  static const std::string kPrefix = "{\"v\":1,\"kind\":\"";
  static const std::string kCrcKey = ",\"crc\":\"";
  if (line.compare(0, kPrefix.size(), kPrefix) != 0) return false;
  const std::size_t crc_pos = line.rfind(kCrcKey);
  if (crc_pos == std::string::npos) return false;
  const std::size_t crc_val = crc_pos + kCrcKey.size();
  if (line.size() != crc_val + 8 + 2 || line.compare(crc_val + 8, 2, "\"}") != 0) {
    return false;
  }
  std::uint32_t stored = 0;
  for (std::size_t i = crc_val; i < crc_val + 8; ++i) {
    const char c = line[i];
    std::uint32_t nib = 0;
    if (c >= '0' && c <= '9') nib = static_cast<std::uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f') nib = static_cast<std::uint32_t>(c - 'a' + 10);
    else return false;
    stored = (stored << 4) | nib;
  }
  if (crc32(line.data(), crc_pos) != stored) return false;

  // Body parse: kind, then remaining "key":"value" pairs.
  JournalRecord rec;
  std::size_t pos = std::string("{\"v\":1,").size();
  std::string key, value;
  while (pos < crc_pos) {
    if (!scan_pair(line, pos, key, value)) return false;
    if (key == "kind") {
      rec.kind = value;
    } else {
      rec.fields.emplace_back(std::move(key), std::move(value));
    }
    if (pos < crc_pos) {
      if (line[pos] != ',') return false;
      ++pos;
    }
  }
  if (rec.kind.empty()) return false;
  out = std::move(rec);
  return true;
}

JournalFile::~JournalFile() { close(); }

void JournalFile::set_domain(const std::string& domain) {
  const std::lock_guard<std::mutex> lock(mutex_);
  pt_open_ = domain + ".open";
  pt_write_ = domain + ".append.write";
  pt_fsync_ = domain + ".append.fsync";
  pt_crash_before_ = domain + ".crash.before_append";
  pt_crash_after_ = domain + ".crash.after_append";
}

bool JournalFile::open(const std::string& path, bool truncate) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
#if !defined(_WIN32)
    ::close(fd_);
#endif
    fd_ = -1;
  }
#if defined(_WIN32)
  last_error_ = "journal: unsupported platform";
  return false;
#else
  int flags = O_WRONLY | O_CREAT | O_APPEND;
  if (truncate) flags |= O_TRUNC;
  const int fd = chaos::px_open(pt_open_, path.c_str(), flags, 0644);
  if (fd < 0) {
    last_error_ = "journal: cannot open " + path + ": " + std::strerror(errno);
    return false;
  }
  fd_ = fd;
  path_ = path;
  last_error_.clear();
  return true;
#endif
}

bool JournalFile::append(const JournalRecord& record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) {
    last_error_ = "journal: not open";
    return false;
  }
#if defined(_WIN32)
  return false;
#else
  const std::string line = encode(record) + "\n";
  chaos::crashpoint(pt_crash_before_);
  // One write(2) per record: with O_APPEND the kernel appends the whole
  // buffer at the current end atomically w.r.t. other appenders, so a crash
  // tears at most the final line.
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n =
        chaos::px_write(pt_write_, fd_, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      last_error_ = std::string("journal: write failed: ") + std::strerror(errno);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  if (chaos::px_fsync(pt_fsync_, fd_) != 0) {
    last_error_ = std::string("journal: fsync failed: ") + std::strerror(errno);
    return false;
  }
  chaos::crashpoint(pt_crash_after_);
  return true;
#endif
}

void JournalFile::close() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
#if !defined(_WIN32)
    ::fsync(fd_);
    ::close(fd_);
#endif
    fd_ = -1;
  }
}

JournalLoadResult JournalFile::load(const std::string& path) {
  JournalLoadResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return result;
  result.exists = true;
  static const std::string kRecordStart = "{\"v\":1,\"kind\":\"";
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    JournalRecord rec;
    if (decode(line, rec)) {
      result.records.push_back(std::move(rec));
      continue;
    }
    // Damaged line. With several processes appending, a crash mid-write can
    // leave a *mid-file* short record whose missing newline glued it to the
    // next writer's (intact) line. Refusing the whole journal for that would
    // throw away every good record, so instead salvage: scan for a later
    // record start inside the line, decode the suffix, and count only the
    // torn fragment as damage. The CRC on the salvaged suffix keeps this
    // honest — a false record-start match simply fails to decode.
    ++result.corrupt_lines;
    std::size_t pos = line.find(kRecordStart, 1);
    while (pos != std::string::npos) {
      if (decode(line.substr(pos), rec)) {
        result.records.push_back(std::move(rec));
        break;
      }
      pos = line.find(kRecordStart, pos + 1);
    }
  }
  // A file whose last byte is not '\n' ends in a torn append; getline already
  // delivered that fragment and decode() rejected it via the CRC.
  if (result.corrupt_lines > 0 && telemetry::active()) {
    telemetry::registry().counter("journal.damaged_lines")
        .add(result.corrupt_lines);
  }
  return result;
}

}  // namespace esteem::resilience

// Graceful-shutdown flag shared by the signal handlers and the sweep
// scheduler.
//
// Signal flow: install_signal_handlers() routes SIGINT/SIGTERM to a handler
// that only sets a std::sig_atomic_t flag (the one async-signal-safe action
// we need) and then re-arms the signal to its default disposition, so a
// *second* Ctrl-C force-kills a process that is stuck draining. The sweep
// scheduler polls shutdown_requested() at every task boundary: queued tasks
// drain without executing, in-flight simulations finish, the journal and
// telemetry are flushed, and the caller exits with kExitInterrupted.
//
// request_shutdown()/clear_shutdown() expose the same flag to tests and to
// embedding code that wants cooperative cancellation without signals.
#pragma once

namespace esteem::resilience {

/// Process exit code for a sweep that was interrupted and drained cleanly
/// (0 = ok, 3 = run errors — see tools/esteem_cli.cpp).
inline constexpr int kExitInterrupted = 5;

/// Installs SIGINT/SIGTERM handlers that set the shutdown flag. Idempotent.
void install_signal_handlers();

/// True once a signal arrived or request_shutdown() was called.
bool shutdown_requested() noexcept;

/// Sets the flag as if a signal had arrived (tests, embedders).
void request_shutdown() noexcept;

/// Clears the flag (tests; a resumed run starts fresh).
void clear_shutdown() noexcept;

}  // namespace esteem::resilience

#include "resilience/watchdog.hpp"

#include <cstdio>

#include "telemetry/telemetry.hpp"

namespace esteem::resilience {

DeadlineExceeded::DeadlineExceeded(const std::string& label, std::uint32_t deadline_ms)
    : std::runtime_error("run '" + label + "' exceeded its " +
                         std::to_string(deadline_ms) + " ms deadline") {}

Watchdog& Watchdog::instance() {
  static Watchdog dog;
  return dog;
}

Watchdog::~Watchdog() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
}

std::uint64_t Watchdog::add(std::string label, std::uint32_t deadline_ms) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = next_id_++;
  Entry entry;
  entry.label = std::move(label);
  entry.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(deadline_ms);
  entries_.emplace(id, std::move(entry));
  if (!thread_running_) {
    thread_running_ = true;
    monitor_ = std::thread([this] { monitor_loop(); });
  }
  cv_.notify_all();  // re-evaluate the earliest deadline
  return id;
}

bool Watchdog::remove(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  bool late = it->second.expired;
  if (!late && std::chrono::steady_clock::now() >= it->second.deadline) {
    // The run finished past its budget before the monitor woke: same
    // verdict, counted once here instead.
    mark_expired_locked(it->second);
    late = true;
  }
  entries_.erase(it);
  return late;
}

std::size_t Watchdog::active() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void Watchdog::mark_expired_locked(Entry& entry) {
  entry.expired = true;
  if (telemetry::active()) {
    telemetry::registry().counter("resilience.deadline_exceeded").add();
  }
  std::fprintf(stderr, "watchdog: run '%s' exceeded its deadline\n",
               entry.label.c_str());
}

void Watchdog::monitor_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    // Earliest pending deadline decides the wake-up; no entries -> sleep
    // until the next add() notifies.
    bool have_pending = false;
    auto next = std::chrono::steady_clock::time_point::max();
    const auto now = std::chrono::steady_clock::now();
    for (auto& [id, entry] : entries_) {
      if (entry.expired) continue;
      if (now >= entry.deadline) {
        mark_expired_locked(entry);
      } else {
        have_pending = true;
        if (entry.deadline < next) next = entry.deadline;
      }
    }
    if (have_pending) {
      cv_.wait_until(lock, next);
    } else {
      cv_.wait(lock);
    }
  }
}

std::uint64_t next_backoff_ms(std::uint32_t attempt, std::uint32_t backoff_ms) noexcept {
  const std::uint32_t shift = attempt > 16 ? 16u : attempt;
  return static_cast<std::uint64_t>(backoff_ms) << shift;
}

}  // namespace esteem::resilience

// Advisory exclusive lock file for filesystems without atomic O_APPEND
// (NFS/SMB — the caveat ROADMAP flags for the lease table). Acquisition is
// open(O_CREAT|O_EXCL): exactly one creator wins, everyone else retries
// until `timeout_ms`. A holder that died without releasing is detected by
// the lock file's age — older than `stale_ms` and it is broken (unlinked)
// and re-contested, with the break counted in `service.locks_broken`.
//
// `stale_ms` must comfortably exceed the longest critical section (here:
// one journal append + fsync, milliseconds) — the lease TTL, which already
// encodes "how long may a worker go dark", is the natural choice and is
// what LeaseTable passes.
#pragma once

#include <cstdint>
#include <string>

namespace esteem::resilience {

class LockFile {
 public:
  LockFile() = default;
  ~LockFile();
  LockFile(const LockFile&) = delete;
  LockFile& operator=(const LockFile&) = delete;

  /// Blocks up to `timeout_ms` trying to create `path` exclusively,
  /// breaking locks older than `stale_ms`. `owner` is written into the
  /// lock file for post-mortem debugging. False on timeout or I/O error
  /// (reason in last_error()).
  bool acquire(const std::string& path, const std::string& owner,
               std::uint32_t stale_ms, std::uint32_t timeout_ms);

  /// Unlinks the lock file; no-op when not held.
  void release();

  bool held() const noexcept { return held_; }
  const std::string& last_error() const noexcept { return last_error_; }

 private:
  std::string path_;
  bool held_ = false;
  std::string last_error_;
};

}  // namespace esteem::resilience

#include "telemetry/profile.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace esteem::telemetry {

void PhaseProfiler::add(const std::string& phase, double seconds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Bucket& b = phases_[phase];
  b.seconds += seconds;
  ++b.count;
}

std::vector<PhaseProfiler::Phase> PhaseProfiler::rollup() const {
  std::vector<Phase> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(phases_.size());
    for (const auto& [name, b] : phases_) out.push_back(Phase{name, b.seconds, b.count});
  }
  std::sort(out.begin(), out.end(),
            [](const Phase& a, const Phase& b) { return a.name < b.name; });
  return out;
}

double PhaseProfiler::seconds(const std::string& phase) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = phases_.find(phase);
  return it == phases_.end() ? 0.0 : it->second.seconds;
}

void PhaseProfiler::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  phases_.clear();
}

std::string PhaseProfiler::to_json() const {
  std::ostringstream os;
  os << '[';
  bool first = true;
  char buf[32];
  for (const Phase& p : rollup()) {
    if (!first) os << ',';
    first = false;
    std::snprintf(buf, sizeof buf, "%.6f", p.seconds);
    os << "{\"name\":\"" << p.name << "\",\"seconds\":" << buf
       << ",\"count\":" << p.count << '}';
  }
  os << ']';
  return os.str();
}

std::string PhaseProfiler::to_line() const {
  std::ostringstream os;
  bool first = true;
  char buf[32];
  for (const Phase& p : rollup()) {
    if (!first) os << " | ";
    first = false;
    std::snprintf(buf, sizeof buf, "%.3f", p.seconds);
    os << p.name << ' ' << buf << 's';
    if (p.count > 1) os << " x" << p.count;
  }
  return os.str();
}

double ScopedTimer::stop() {
  if (profiler_ == nullptr) return 0.0;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  profiler_->add(phase_, elapsed);
  profiler_ = nullptr;
  return elapsed;
}

}  // namespace esteem::telemetry

// Hierarchical counter registry: the process-wide name space every subsystem
// publishes instrumentation into (`l2.demand_misses`, `memo.hits`,
// `sweep.tasks`, ...). Names are dotted paths; the registry itself is flat —
// hierarchy is a naming convention consumed by sinks (snapshot() returns
// name-sorted samples, so children follow their parent).
//
// Three metric kinds:
//   Counter   — monotonically increasing uint64 (add).
//   Gauge     — last-write-wins double (set).
//   Histogram — power-of-two bucketed uint64 samples (observe), plus exact
//               count and sum.
//
// Concurrency: registration (name -> id) takes a mutex; the hot path does
// not. Counter/histogram updates go to one of kShards per-worker shards
// (picked by a thread-local shard index) as relaxed atomic adds, so writers
// on different threads almost never touch the same cache line; snapshot()
// merges the shards. The merged value is exact regardless of interleaving —
// addition commutes — which is what the shard-merge determinism test pins.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace esteem::telemetry {

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

/// Converts the kind to its lowercase name ("counter" | "gauge" | "histogram").
const char* to_string(MetricKind kind) noexcept;

class CounterRegistry;

/// Cheap value-type handle: register once, bump forever. A default-constructed
/// handle is inert (add/set/observe are no-ops), so call sites can hold one
/// unconditionally and only bind it when telemetry is enabled.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t v = 1) noexcept;
  bool bound() const noexcept { return reg_ != nullptr; }

 private:
  friend class CounterRegistry;
  Counter(CounterRegistry* reg, std::uint32_t slot) : reg_(reg), slot_(slot) {}
  CounterRegistry* reg_ = nullptr;
  std::uint32_t slot_ = 0;
};

class Gauge {
 public:
  Gauge() = default;
  void set(double v) noexcept;
  bool bound() const noexcept { return reg_ != nullptr; }

 private:
  friend class CounterRegistry;
  Gauge(CounterRegistry* reg, std::uint32_t slot) : reg_(reg), slot_(slot) {}
  CounterRegistry* reg_ = nullptr;
  std::uint32_t slot_ = 0;
};

class Histogram {
 public:
  Histogram() = default;
  void observe(std::uint64_t v) noexcept;
  bool bound() const noexcept { return reg_ != nullptr; }

 private:
  friend class CounterRegistry;
  Histogram(CounterRegistry* reg, std::uint32_t slot) : reg_(reg), slot_(slot) {}
  CounterRegistry* reg_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// One merged metric as returned by snapshot().
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  /// Counter: total. Gauge: last set value. Histogram: sum of samples.
  double value = 0.0;
  /// Counter: exact integer total; Histogram: exact integer sum. `value` is
  /// the double cast of this (lossy past 2^53); the snapshot codec
  /// (telemetry/export) serializes `raw` so cross-process merges stay exact.
  std::uint64_t raw = 0;
  /// Histogram only: number of samples.
  std::uint64_t count = 0;
  /// Histogram only: bucket b counts samples with bit_width(v) == b
  /// (i.e. 2^(b-1) <= v < 2^b; bucket 0 is v == 0). Trailing empty buckets
  /// are trimmed.
  std::vector<std::uint64_t> buckets;
};

class CounterRegistry {
 public:
  /// Number of per-worker shards counters/histograms are striped over.
  static constexpr std::size_t kShards = 16;
  /// Histogram bucket count (values clamp into the last bucket).
  static constexpr std::size_t kHistBuckets = 40;

  CounterRegistry() = default;
  ~CounterRegistry();
  CounterRegistry(const CounterRegistry&) = delete;
  CounterRegistry& operator=(const CounterRegistry&) = delete;

  /// Registers (or re-fetches) a metric. Re-registering an existing name with
  /// the same kind returns the same handle; a kind mismatch throws
  /// std::invalid_argument — `l2.miss` cannot be a counter in one subsystem
  /// and a gauge in another.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name);

  /// All metrics merged across shards, sorted by name.
  std::vector<MetricSample> snapshot() const;

  /// Merged value of one metric (counter total / gauge value / histogram
  /// sum); 0 when the name is unknown.
  double value(const std::string& name) const;

  std::size_t size() const;

  /// Zeroes every cell; handles stay valid.
  void reset();

  /// Folds one decoded sample into this registry (registering the metric on
  /// first sight): counters add `raw`, gauges set `value` (a fresh write, so
  /// it wins the last-write-wins order), histograms add buckets/count/sum
  /// cell-wise. This is the registry half of the snapshot codec's exact
  /// merge semantics; a kind mismatch with an existing metric throws
  /// std::invalid_argument like the handle accessors do.
  void absorb(const MetricSample& sample);

  /// snapshot() rendered as a JSON object keyed by metric name.
  std::string to_json() const;

 private:
  // Cell layout per metric:
  //   Counter:   1 slot  (uint64 sum, sharded)
  //   Gauge:     2 slots (double bits + write sequence, written to the
  //              caller's shard; the shard merge takes the pair with the
  //              highest sequence, pinning last-write-wins by timestamp)
  //   Histogram: kHistBuckets + 2 slots (buckets, count, sum; sharded)
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  struct Shard {
    // Fixed capacity so the hot path never observes a reallocation.
    std::atomic<Cell*> cells{nullptr};
  };
  struct Meta {
    std::string name;
    MetricKind kind;
    std::uint32_t slot;
  };

  static constexpr std::uint32_t kSlotCapacity = 4096;

  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  Cell* shard_cells(std::size_t shard) noexcept;
  static std::size_t this_shard() noexcept;
  std::uint32_t register_metric(const std::string& name, MetricKind kind,
                                std::uint32_t slots);
  std::uint64_t merged_u64(std::uint32_t slot) const;
  double merged_value(const Meta& m) const;

  void bump(std::uint32_t slot, std::uint64_t v) noexcept;
  void gauge_store(std::uint32_t slot, std::uint64_t bits) noexcept;

  mutable std::mutex mutex_;  ///< Guards registration and name lookup only.
  std::unordered_map<std::string, std::uint32_t> index_;  // name -> metas_ idx
  std::vector<Meta> metas_;
  std::atomic<std::uint32_t> next_slot_{0};
  /// Registry-wide gauge write order: each set() takes the next sequence
  /// number, so concurrent writers from different shards have a defined
  /// winner at merge time (the literally-last write).
  std::atomic<std::uint64_t> gauge_seq_{0};
  mutable std::array<Shard, kShards> shards_;
};

}  // namespace esteem::telemetry

#include "telemetry/interval_recorder.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace esteem::telemetry {

namespace {

void append_number(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

/// Advances past `expected` or throws; whitespace is not tolerated because
/// only our own writer output is accepted.
void expect(const std::string& line, std::size_t& pos, char expected) {
  if (pos >= line.size() || line[pos] != expected) {
    throw std::runtime_error("interval jsonl: expected '" + std::string(1, expected) +
                             "' at column " + std::to_string(pos));
  }
  ++pos;
}

std::string parse_key(const std::string& line, std::size_t& pos) {
  expect(line, pos, '"');
  const std::size_t end = line.find('"', pos);
  if (end == std::string::npos) throw std::runtime_error("interval jsonl: unterminated key");
  std::string key = line.substr(pos, end - pos);
  pos = end + 1;
  expect(line, pos, ':');
  return key;
}

double parse_number(const std::string& line, std::size_t& pos) {
  const char* start = line.c_str() + pos;
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) throw std::runtime_error("interval jsonl: expected a number");
  pos += static_cast<std::size_t>(end - start);
  return v;
}

}  // namespace

IntervalRecorder::IntervalRecorder(std::vector<std::string> columns)
    : columns_(std::move(columns)), series_(columns_.size()) {}

void IntervalRecorder::record(std::uint64_t cycle, const std::vector<double>& values) {
  if (values.size() != columns_.size()) {
    throw std::invalid_argument("IntervalRecorder: row has " +
                                std::to_string(values.size()) + " values, expected " +
                                std::to_string(columns_.size()));
  }
  cycles_.push_back(cycle);
  for (std::size_t c = 0; c < values.size(); ++c) series_[c].push_back(values[c]);
}

const std::vector<double>& IntervalRecorder::series(const std::string& column) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c] == column) return series_[c];
  }
  throw std::out_of_range("IntervalRecorder: no column '" + column + "'");
}

void IntervalRecorder::write_jsonl(std::ostream& os) const {
  std::string line;
  for (std::size_t r = 0; r < rows(); ++r) {
    line.clear();
    line += "{\"cycle\":";
    line += std::to_string(cycles_[r]);
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      line += ",\"";
      line += columns_[c];
      line += "\":";
      append_number(line, series_[c][r]);
    }
    line += "}\n";
    os << line;
  }
}

void IntervalRecorder::write_csv(std::ostream& os) const {
  std::string line = "cycle";
  for (const std::string& c : columns_) {
    line += ',';
    line += c;
  }
  os << line << '\n';
  for (std::size_t r = 0; r < rows(); ++r) {
    line = std::to_string(cycles_[r]);
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      line += ',';
      append_number(line, series_[c][r]);
    }
    os << line << '\n';
  }
}

bool IntervalRecorder::write_jsonl_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) return false;
  write_jsonl(out);
  return out.good();
}

IntervalRecorder IntervalRecorder::read_jsonl(std::istream& is) {
  std::vector<std::string> columns;
  std::vector<std::uint64_t> cycles;
  std::vector<std::vector<double>> values;  // [row][column]

  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::size_t pos = 0;
    expect(line, pos, '{');
    bool first = true;
    std::vector<std::string> keys;
    std::vector<double> row;
    std::uint64_t cycle = 0;
    bool have_cycle = false;
    while (pos < line.size() && line[pos] != '}') {
      if (!first) expect(line, pos, ',');
      first = false;
      const std::string key = parse_key(line, pos);
      const double v = parse_number(line, pos);
      if (key == "cycle") {
        cycle = static_cast<std::uint64_t>(v);
        have_cycle = true;
      } else {
        keys.push_back(key);
        row.push_back(v);
      }
    }
    expect(line, pos, '}');
    if (!have_cycle) throw std::runtime_error("interval jsonl: row without \"cycle\"");
    if (columns.empty() && cycles.empty()) {
      columns = keys;
    } else if (keys != columns) {
      throw std::runtime_error("interval jsonl: inconsistent columns across rows");
    }
    cycles.push_back(cycle);
    values.push_back(std::move(row));
  }

  IntervalRecorder rec(std::move(columns));
  for (std::size_t r = 0; r < cycles.size(); ++r) rec.record(cycles[r], values[r]);
  return rec;
}

}  // namespace esteem::telemetry

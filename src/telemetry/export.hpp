// Serializable CounterRegistry snapshots: the cross-process half of the
// observability plane (DESIGN.md §13).
//
// A Snapshot is one process's registry at one wall-clock instant, rendered
// sortable and mergeable. Two codecs:
//
//   JSONL          — one header line plus one line per metric, carrying the
//                    *exact* integer totals (MetricSample::raw), so
//                    encode -> decode -> absorb -> snapshot -> encode is
//                    byte-identical (the round-trip test pins this).
//   OpenMetrics    — the text exposition format scrapeable by Prometheus
//                    and friends; counters gain the mandated `_total`
//                    suffix, histograms become cumulative `le` buckets.
//
// Merge semantics are exact and commutative where the math allows:
//   counters    — integer sum
//   gauges      — last-write-wins by snapshot timestamp (ties: later
//                 merge-order operand wins, mirroring file order)
//   histograms  — bucket-wise integer add (plus count and sum)
// A name carrying different kinds across snapshots throws
// std::invalid_argument — the same contract CounterRegistry enforces
// in-process.
//
// Layering: this file knows nothing about services or journals; the service
// observer (src/service/observer) wraps encoded snapshots into sidecar
// journal records.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/counter_registry.hpp"

namespace esteem::telemetry {

/// One process's registry snapshot, stamped with wall time and origin.
struct Snapshot {
  std::int64_t t_ms = 0;  ///< Wall clock (ms since the Unix epoch) when taken.
  std::string source;     ///< Emitting owner ("merged" after a merge).
  std::vector<MetricSample> metrics;  ///< Name-sorted (snapshot() order).
};

/// Snapshots `reg` into the codec's shape. `source` is scrubbed of bytes
/// the line format cannot carry ('"', '\\', control characters).
Snapshot take_snapshot(const CounterRegistry& reg, std::int64_t t_ms,
                       const std::string& source);

/// Canonical JSONL: a header line
///   {"v":1,"kind":"snapshot","t":<ms>,"source":"...","n":<metrics>}
/// followed by one line per metric in name order, each newline-terminated.
std::string encode_snapshot_jsonl(const Snapshot& snap);

/// Inverse of encode_snapshot_jsonl. Strict: any unknown field, kind, or
/// count mismatch fails. Returns false leaving `out` untouched.
bool decode_snapshot_jsonl(const std::string& text, Snapshot& out);

/// Exact merge under the pinned semantics (see file header). Result metrics
/// are name-sorted; t_ms is the max operand timestamp; source is "merged".
/// Throws std::invalid_argument on a cross-snapshot kind mismatch.
Snapshot merge_snapshots(const std::vector<Snapshot>& snaps);

/// OpenMetrics text exposition of a snapshot, terminated by "# EOF\n".
/// Metric names are mangled to `esteem_` + dotted name with every
/// non-alphanumeric byte as '_'.
std::string to_openmetrics(const Snapshot& snap);

/// Strict OpenMetrics checker used by tests and CI: verifies the framing
/// (one TYPE per family, samples grouped under their family, trailing
/// "# EOF"), the sample grammar, and histogram invariants (cumulative
/// non-decreasing buckets ending in le="+Inf" equal to _count). Returns
/// true when `text` passes; otherwise false with a line-numbered reason in
/// `error`.
bool check_openmetrics(const std::string& text, std::string& error);

}  // namespace esteem::telemetry

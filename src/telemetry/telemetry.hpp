// Process-wide telemetry hub: owns the global CounterRegistry, the optional
// Chrome TraceEmitter, the PhaseProfiler, and per-run interval sinks.
//
// Everything is gated off by default: until configure() enables a feature,
// active() is false, trace_sink() is null, and no run sink is created — the
// simulator's hot paths check a null pointer at most, so tier-1 output and
// perf are untouched (the observer-effect test pins byte-identical sweep
// CSV with telemetry on and off).
//
// Layering: telemetry sits just above esteem_common. The cpu/sim layers
// depend on it, never the reverse — the hub knows nothing about RunSpec or
// SweepSpec; run labels and column sets are built by the caller.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/counter_registry.hpp"
#include "telemetry/interval_recorder.hpp"
#include "telemetry/profile.hpp"
#include "telemetry/trace_emitter.hpp"

namespace esteem::telemetry {

struct TelemetryConfig {
  /// Record per-interval counter rows into <dir>/<label>.intervals.jsonl.
  bool interval_stats = false;
  /// Output directory for interval series and the counters.json dump
  /// ("" = current directory).
  std::string dir;
  /// Chrome trace output path; non-empty enables the TraceEmitter.
  std::string trace_path;
  /// Enable counter collection alone, with no file outputs of its own — the
  /// service observability plane uses this so workers populate the registry
  /// for sidecar snapshots without writing counters.json or traces.
  bool counters = false;

  /// A bare dir still counts: it enables counter collection and the
  /// counters.json dump even without interval stats or tracing.
  bool any() const noexcept {
    return interval_stats || counters || !trace_path.empty() || !dir.empty();
  }
};

/// Per-run sink handed down to System/MemorySystem. Created by
/// Telemetry::begin_run, consumed by Telemetry::end_run, which writes the
/// interval series (if any) to disk.
struct RunSink {
  std::string label;           ///< Sanitized "<workload>.<technique>.sN".
  double cycles_per_us = 1.0;  ///< freq_ghz * 1000; converts cycles to sim us.
  std::unique_ptr<IntervalRecorder> recorder;  ///< Null unless interval_stats.
  TraceEmitter* trace = nullptr;               ///< Null unless tracing.
  std::uint32_t sim_tid = 0;  ///< First simulated-time lane of this run.

  double sim_us(std::uint64_t cycle) const noexcept {
    return static_cast<double>(cycle) / cycles_per_us;
  }
};

class Telemetry {
 public:
  /// Process-wide instance (never destroyed, like RunCache).
  static Telemetry& instance();

  Telemetry() = default;
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Replaces the configuration. Enabling tracing creates a fresh (empty)
  /// TraceEmitter; configure({}) disables everything.
  void configure(const TelemetryConfig& cfg);
  TelemetryConfig config() const;

  /// True when any telemetry feature is enabled.
  bool active() const noexcept { return active_.load(std::memory_order_relaxed); }
  bool interval_stats_enabled() const noexcept {
    return interval_stats_.load(std::memory_order_relaxed);
  }

  CounterRegistry& registry() noexcept { return registry_; }
  PhaseProfiler& profiler() noexcept { return profiler_; }
  /// Null unless a trace path is configured.
  TraceEmitter* trace() noexcept { return trace_.get(); }

  /// Creates a per-run sink (null when nothing is enabled). `columns` is the
  /// interval-series column set (ignored unless interval stats are on);
  /// `sim_lanes` is the number of simulated-time trace lanes to reserve
  /// (run lane + one per module).
  std::unique_ptr<RunSink> begin_run(const std::string& label, double freq_ghz,
                                     std::vector<std::string> columns,
                                     std::uint32_t sim_lanes);

  /// Finishes a run: writes the interval series into the configured dir.
  /// Returns the written path ("" when nothing was written).
  std::string end_run(RunSink& sink);

  /// Interval-series file path for a run label under the current config.
  std::string interval_series_path(const std::string& label) const;

  /// Paths written by end_run since the last drain (for CLI reporting).
  std::vector<std::string> drain_written();

  struct FlushResult {
    std::string trace_path;     ///< "" when tracing is off or the write failed.
    std::size_t trace_events = 0;
    std::string counters_path;  ///< "" unless a dir is configured.
  };
  /// Writes the trace file and (when a dir is configured) counters.json.
  FlushResult flush();

 private:
  mutable std::mutex mutex_;
  TelemetryConfig config_;
  std::atomic<bool> active_{false};
  std::atomic<bool> interval_stats_{false};
  std::atomic<std::uint32_t> next_sim_tid_{1};
  CounterRegistry registry_;
  PhaseProfiler profiler_;
  std::unique_ptr<TraceEmitter> trace_;
  std::vector<std::string> written_;
};

/// Shorthand accessors for instrumentation sites.
inline bool active() noexcept { return Telemetry::instance().active(); }
inline CounterRegistry& registry() noexcept { return Telemetry::instance().registry(); }
inline PhaseProfiler& profiler() noexcept { return Telemetry::instance().profiler(); }
inline TraceEmitter* trace_sink() noexcept { return Telemetry::instance().trace(); }

/// Replaces anything outside [A-Za-z0-9._+-] with '_' (run labels become
/// file names).
std::string sanitize_label(const std::string& label);

/// Canonical interval-series column set recorded by the memory system at
/// every tick_interval. `module_ways` appends one `moduleK_active_ways`
/// column per ESTEEM module; MemorySystem fills values in exactly this
/// order — keep the two in sync.
std::vector<std::string> interval_columns(std::uint32_t module_ways);

}  // namespace esteem::telemetry

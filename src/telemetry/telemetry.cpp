#include "telemetry/telemetry.hpp"

#include <filesystem>
#include <fstream>

namespace esteem::telemetry {

Telemetry& Telemetry::instance() {
  static Telemetry* hub = new Telemetry();
  return *hub;
}

void Telemetry::configure(const TelemetryConfig& cfg) {
  const std::lock_guard<std::mutex> lock(mutex_);
  config_ = cfg;
  if (!cfg.trace_path.empty()) {
    trace_ = std::make_unique<TraceEmitter>();
    trace_->set_process_name(TraceEmitter::kSimPid, "simulated time");
    trace_->set_process_name(TraceEmitter::kWallPid, "wall clock");
  } else {
    trace_.reset();
  }
  written_.clear();
  interval_stats_.store(cfg.interval_stats, std::memory_order_relaxed);
  active_.store(cfg.any(), std::memory_order_relaxed);
}

TelemetryConfig Telemetry::config() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return config_;
}

std::unique_ptr<RunSink> Telemetry::begin_run(const std::string& label,
                                              double freq_ghz,
                                              std::vector<std::string> columns,
                                              std::uint32_t sim_lanes) {
  if (!interval_stats_enabled() && trace() == nullptr) return nullptr;
  auto sink = std::make_unique<RunSink>();
  sink->label = sanitize_label(label);
  sink->cycles_per_us = freq_ghz * 1e3;
  if (interval_stats_enabled()) {
    sink->recorder = std::make_unique<IntervalRecorder>(std::move(columns));
  }
  sink->trace = trace();
  if (sink->trace != nullptr && sim_lanes > 0) {
    sink->sim_tid = next_sim_tid_.fetch_add(sim_lanes, std::memory_order_relaxed);
    sink->trace->set_thread_name(TraceEmitter::kSimPid, sink->sim_tid, sink->label);
    for (std::uint32_t m = 1; m < sim_lanes; ++m) {
      sink->trace->set_thread_name(TraceEmitter::kSimPid, sink->sim_tid + m,
                                   sink->label + " module " + std::to_string(m - 1));
    }
  }
  return sink;
}

std::string Telemetry::interval_series_path(const std::string& label) const {
  std::string dir;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    dir = config_.dir;
  }
  const std::filesystem::path p(dir.empty() ? "." : dir);
  return (p / (sanitize_label(label) + ".intervals.jsonl")).string();
}

std::string Telemetry::end_run(RunSink& sink) {
  if (!sink.recorder) return {};
  std::string dir;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    dir = config_.dir;
  }
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) return {};
  }
  const std::string path = interval_series_path(sink.label);
  if (!sink.recorder->write_jsonl_file(path)) return {};
  const std::lock_guard<std::mutex> lock(mutex_);
  written_.push_back(path);
  return path;
}

std::vector<std::string> Telemetry::drain_written() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out = std::move(written_);
  written_.clear();
  return out;
}

Telemetry::FlushResult Telemetry::flush() {
  FlushResult r;
  TelemetryConfig cfg = config();
  if (trace_ != nullptr && !cfg.trace_path.empty()) {
    r.trace_events = trace_->events();
    if (trace_->write_file(cfg.trace_path)) r.trace_path = cfg.trace_path;
  }
  if (active() && !cfg.dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cfg.dir, ec);
    if (!ec) {
      const std::string path =
          (std::filesystem::path(cfg.dir) / "counters.json").string();
      std::ofstream out(path, std::ios::trunc);
      if (out.good()) {
        out << registry_.to_json() << '\n';
        if (out.good()) r.counters_path = path;
      }
    }
  }
  return r;
}

std::string sanitize_label(const std::string& label) {
  std::string out;
  out.reserve(label.size());
  for (char c : label) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '+' ||
                    c == '-';
    out += ok ? c : '_';
  }
  return out;
}

std::vector<std::string> interval_columns(std::uint32_t module_ways) {
  std::vector<std::string> cols{
      "active_ratio",        "demand_hits",        "demand_misses",
      "refreshes",           "reconfig_transitions", "reconfig_writebacks",
      "ecc_corrected_reads", "fault_uncorrectable"};
  for (std::uint32_t m = 0; m < module_ways; ++m) {
    cols.push_back("module" + std::to_string(m) + "_active_ways");
  }
  return cols;
}

}  // namespace esteem::telemetry

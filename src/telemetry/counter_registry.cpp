#include "telemetry/counter_registry.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace esteem::telemetry {

CounterRegistry::~CounterRegistry() {
  for (Shard& shard : shards_) {
    delete[] shard.cells.load(std::memory_order_acquire);
  }
}

const char* to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "?";
}

void Counter::add(std::uint64_t v) noexcept {
  if (reg_ != nullptr) reg_->bump(slot_, v);
}

void Gauge::set(double v) noexcept {
  if (reg_ != nullptr) reg_->gauge_store(slot_, std::bit_cast<std::uint64_t>(v));
}

void Histogram::observe(std::uint64_t v) noexcept {
  if (reg_ == nullptr) return;
  const std::uint32_t width = v == 0 ? 0u : static_cast<std::uint32_t>(std::bit_width(v));
  const std::uint32_t bucket =
      std::min<std::uint32_t>(width, CounterRegistry::kHistBuckets - 1);
  reg_->bump(slot_ + bucket, 1);
  reg_->bump(slot_ + CounterRegistry::kHistBuckets, 1);      // count
  reg_->bump(slot_ + CounterRegistry::kHistBuckets + 1, v);  // sum
}

CounterRegistry::Cell* CounterRegistry::shard_cells(std::size_t shard) noexcept {
  Cell* cells = shards_[shard].cells.load(std::memory_order_acquire);
  if (cells != nullptr) return cells;
  // First touch of this shard: publish a zeroed fixed-capacity array. The
  // loser of the race frees its copy; cells are never reallocated after
  // publication, so writers can cache the pointer.
  Cell* fresh = new Cell[kSlotCapacity];
  if (shards_[shard].cells.compare_exchange_strong(cells, fresh,
                                                   std::memory_order_acq_rel)) {
    return fresh;
  }
  delete[] fresh;
  return cells;
}

std::size_t CounterRegistry::this_shard() noexcept {
  // Sequential per-thread ids striped over the shards: up to kShards workers
  // never collide; beyond that, collisions stay correct via the atomic adds.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id % kShards;
}

void CounterRegistry::bump(std::uint32_t slot, std::uint64_t v) noexcept {
  shard_cells(this_shard())[slot].v.fetch_add(v, std::memory_order_relaxed);
}

void CounterRegistry::gauge_store(std::uint32_t slot, std::uint64_t bits) noexcept {
  // Last-write-wins with a defined winner: each write takes a registry-wide
  // sequence number and lands (value, seq) in the caller's own shard, so
  // concurrent setters never contend on a cache line and the merge picks the
  // pair with the highest sequence. The value is published before the
  // sequence (release/acquire), so a reader that sees a sequence sees its
  // value.
  Cell* cells = shard_cells(this_shard());
  const std::uint64_t seq = gauge_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  cells[slot].v.store(bits, std::memory_order_relaxed);
  cells[slot + 1].v.store(seq, std::memory_order_release);
}

std::uint32_t CounterRegistry::register_metric(const std::string& name,
                                               MetricKind kind,
                                               std::uint32_t slots) {
  if (name.empty()) throw std::invalid_argument("telemetry: empty metric name");
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(name);
  if (it != index_.end()) {
    const Meta& m = metas_[it->second];
    if (m.kind != kind) {
      throw std::invalid_argument("telemetry: metric '" + name + "' already registered as " +
                                  to_string(m.kind) + ", requested " + to_string(kind));
    }
    return m.slot;
  }
  const std::uint32_t slot = next_slot_.fetch_add(slots, std::memory_order_relaxed);
  if (slot + slots > kSlotCapacity) {
    throw std::length_error("telemetry: metric slot capacity exhausted");
  }
  index_.emplace(name, static_cast<std::uint32_t>(metas_.size()));
  metas_.push_back(Meta{name, kind, slot});
  return slot;
}

Counter CounterRegistry::counter(const std::string& name) {
  return Counter(this, register_metric(name, MetricKind::Counter, 1));
}

Gauge CounterRegistry::gauge(const std::string& name) {
  return Gauge(this, register_metric(name, MetricKind::Gauge, 2));
}

Histogram CounterRegistry::histogram(const std::string& name) {
  return Histogram(this, register_metric(name, MetricKind::Histogram, kHistBuckets + 2));
}

std::uint64_t CounterRegistry::merged_u64(std::uint32_t slot) const {
  std::uint64_t sum = 0;
  for (const Shard& shard : shards_) {
    const Cell* cells = shard.cells.load(std::memory_order_acquire);
    if (cells != nullptr) sum += cells[slot].v.load(std::memory_order_relaxed);
  }
  return sum;
}

double CounterRegistry::merged_value(const Meta& m) const {
  switch (m.kind) {
    case MetricKind::Counter:
      return static_cast<double>(merged_u64(m.slot));
    case MetricKind::Gauge: {
      // Scan every shard's (value, seq) pair and take the highest sequence:
      // sequences are unique (atomic increment), so the winner is the
      // literally-last set() regardless of which thread issued it.
      std::uint64_t best_bits = 0;
      std::uint64_t best_seq = 0;
      for (const Shard& shard : shards_) {
        const Cell* cells = shard.cells.load(std::memory_order_acquire);
        if (cells == nullptr) continue;
        const std::uint64_t seq = cells[m.slot + 1].v.load(std::memory_order_acquire);
        if (seq > best_seq) {
          best_seq = seq;
          best_bits = cells[m.slot].v.load(std::memory_order_relaxed);
        }
      }
      return std::bit_cast<double>(best_bits);
    }
    case MetricKind::Histogram:
      return static_cast<double>(merged_u64(m.slot + kHistBuckets + 1));
  }
  return 0.0;
}

std::vector<MetricSample> CounterRegistry::snapshot() const {
  std::vector<Meta> metas;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    metas = metas_;
  }
  std::sort(metas.begin(), metas.end(),
            [](const Meta& a, const Meta& b) { return a.name < b.name; });

  std::vector<MetricSample> out;
  out.reserve(metas.size());
  for (const Meta& m : metas) {
    MetricSample s;
    s.name = m.name;
    s.kind = m.kind;
    s.value = merged_value(m);
    if (m.kind == MetricKind::Counter) {
      s.raw = merged_u64(m.slot);
    } else if (m.kind == MetricKind::Histogram) {
      s.raw = merged_u64(m.slot + kHistBuckets + 1);
      s.count = merged_u64(m.slot + kHistBuckets);
      s.buckets.resize(kHistBuckets);
      for (std::size_t b = 0; b < kHistBuckets; ++b) {
        s.buckets[b] = merged_u64(m.slot + static_cast<std::uint32_t>(b));
      }
      while (!s.buckets.empty() && s.buckets.back() == 0) s.buckets.pop_back();
    }
    out.push_back(std::move(s));
  }
  return out;
}

double CounterRegistry::value(const std::string& name) const {
  Meta meta;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(name);
    if (it == index_.end()) return 0.0;
    meta = metas_[it->second];
  }
  return merged_value(meta);
}

std::size_t CounterRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return metas_.size();
}

void CounterRegistry::absorb(const MetricSample& sample) {
  switch (sample.kind) {
    case MetricKind::Counter: {
      const std::uint32_t slot = register_metric(sample.name, MetricKind::Counter, 1);
      bump(slot, sample.raw);
      break;
    }
    case MetricKind::Gauge: {
      const std::uint32_t slot = register_metric(sample.name, MetricKind::Gauge, 2);
      gauge_store(slot, std::bit_cast<std::uint64_t>(sample.value));
      break;
    }
    case MetricKind::Histogram: {
      const std::uint32_t slot =
          register_metric(sample.name, MetricKind::Histogram, kHistBuckets + 2);
      const std::size_t n = std::min(sample.buckets.size(), kHistBuckets);
      for (std::size_t b = 0; b < n; ++b) {
        bump(slot + static_cast<std::uint32_t>(b), sample.buckets[b]);
      }
      bump(slot + kHistBuckets, sample.count);
      bump(slot + kHistBuckets + 1, sample.raw);
      break;
    }
  }
}

void CounterRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Shard& shard : shards_) {
    Cell* cells = shard.cells.load(std::memory_order_acquire);
    if (cells == nullptr) continue;
    for (std::uint32_t i = 0; i < kSlotCapacity; ++i) {
      cells[i].v.store(0, std::memory_order_relaxed);
    }
  }
}

std::string CounterRegistry::to_json() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  char buf[64];
  for (const MetricSample& s : snapshot()) {
    if (!first) os << ',';
    first = false;
    os << '"' << s.name << "\":{\"kind\":\"" << to_string(s.kind) << '"';
    std::snprintf(buf, sizeof buf, "%.17g", s.value);
    os << ",\"value\":" << buf;
    if (s.kind == MetricKind::Histogram) {
      os << ",\"count\":" << s.count << ",\"buckets\":[";
      for (std::size_t b = 0; b < s.buckets.size(); ++b) {
        os << (b ? "," : "") << s.buckets[b];
      }
      os << ']';
    }
    os << '}';
  }
  os << '}';
  return os.str();
}

}  // namespace esteem::telemetry

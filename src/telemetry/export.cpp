#include "telemetry/export.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>

namespace esteem::telemetry {

namespace {

/// The line formats carry values raw (no escape handling), so bytes that
/// would break a line are scrubbed, mirroring the journal-field contract.
std::string scrub(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) c = '_';
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Strict cursor over one encoded line.
struct Scan {
  const std::string& s;
  std::size_t pos = 0;

  bool lit(const char* l) {
    const std::size_t n = std::char_traits<char>::length(l);
    if (s.compare(pos, n, l) != 0) return false;
    pos += n;
    return true;
  }
  /// Scans up to the next '"' (values are scrubbed, so no escapes exist).
  bool quoted(std::string& out) {
    const std::size_t end = s.find('"', pos);
    if (end == std::string::npos) return false;
    out = s.substr(pos, end - pos);
    pos = end + 1;
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos >= s.size() || s[pos] < '0' || s[pos] > '9') return false;
    v = 0;
    std::size_t digits = 0;
    while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
      if (++digits > 20) return false;
      v = v * 10 + static_cast<std::uint64_t>(s[pos] - '0');
      ++pos;
    }
    return true;
  }
  bool i64(std::int64_t& v) {
    const bool neg = pos < s.size() && s[pos] == '-';
    if (neg) ++pos;
    std::uint64_t u = 0;
    if (!u64(u)) return false;
    v = neg ? -static_cast<std::int64_t>(u) : static_cast<std::int64_t>(u);
    return true;
  }
  /// Floating token: everything up to the next ',' or '}' through strtod.
  bool num(double& v) {
    const std::size_t end = s.find_first_of(",}", pos);
    if (end == std::string::npos || end == pos) return false;
    const std::string token = s.substr(pos, end - pos);
    char* stop = nullptr;
    v = std::strtod(token.c_str(), &stop);
    if (stop != token.c_str() + token.size()) return false;
    pos = end;
    return true;
  }
  bool done() const { return pos == s.size(); }
};

bool decode_metric_line(const std::string& line, MetricSample& out) {
  // quoted() consumes the value's closing quote, so the literals that follow
  // a quoted field start at the comma.
  Scan sc{line};
  MetricSample m;
  std::string kind;
  if (!sc.lit("{\"name\":\"") || !sc.quoted(m.name) || !sc.lit(",\"kind\":\"") ||
      !sc.quoted(kind)) {
    return false;
  }
  if (kind == "counter") {
    m.kind = MetricKind::Counter;
    if (!sc.lit(",\"total\":") || !sc.u64(m.raw) || !sc.lit("}") || !sc.done()) return false;
    m.value = static_cast<double>(m.raw);
  } else if (kind == "gauge") {
    m.kind = MetricKind::Gauge;
    if (!sc.lit(",\"value\":") || !sc.num(m.value) || !sc.lit("}") || !sc.done()) return false;
  } else if (kind == "histogram") {
    m.kind = MetricKind::Histogram;
    if (!sc.lit(",\"count\":") || !sc.u64(m.count) || !sc.lit(",\"sum\":") ||
        !sc.u64(m.raw) || !sc.lit(",\"buckets\":[")) {
      return false;
    }
    if (!sc.lit("]")) {  // Non-empty bucket list.
      while (true) {
        std::uint64_t b = 0;
        if (!sc.u64(b)) return false;
        if (m.buckets.size() >= CounterRegistry::kHistBuckets) return false;
        m.buckets.push_back(b);
        if (sc.lit("]")) break;
        if (!sc.lit(",")) return false;
      }
    }
    if (!sc.lit("}") || !sc.done()) return false;
    m.value = static_cast<double>(m.raw);
  } else {
    return false;
  }
  out = std::move(m);
  return true;
}

/// `esteem_` + the dotted name with every non-alphanumeric byte as '_'.
std::string om_name(const std::string& name) {
  std::string out = "esteem_";
  for (const char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  }
  return out;
}

/// Upper bound of histogram bucket b as its `le` label: bucket 0 holds
/// v == 0, bucket b holds bit_width(v) == b, i.e. v <= 2^b - 1.
std::string bucket_le(std::size_t b) {
  if (b == 0) return "0";
  return std::to_string((1ULL << b) - 1);
}

}  // namespace

Snapshot take_snapshot(const CounterRegistry& reg, std::int64_t t_ms,
                       const std::string& source) {
  Snapshot snap;
  snap.t_ms = t_ms;
  snap.source = scrub(source);
  snap.metrics = reg.snapshot();
  for (MetricSample& m : snap.metrics) m.name = scrub(m.name);
  return snap;
}

std::string encode_snapshot_jsonl(const Snapshot& snap) {
  std::ostringstream os;
  os << "{\"v\":1,\"kind\":\"snapshot\",\"t\":" << snap.t_ms << ",\"source\":\""
     << scrub(snap.source) << "\",\"n\":" << snap.metrics.size() << "}\n";
  for (const MetricSample& m : snap.metrics) {
    os << "{\"name\":\"" << scrub(m.name) << "\",\"kind\":\"" << to_string(m.kind) << '"';
    switch (m.kind) {
      case MetricKind::Counter:
        os << ",\"total\":" << m.raw;
        break;
      case MetricKind::Gauge:
        os << ",\"value\":" << fmt_double(m.value);
        break;
      case MetricKind::Histogram:
        os << ",\"count\":" << m.count << ",\"sum\":" << m.raw << ",\"buckets\":[";
        for (std::size_t b = 0; b < m.buckets.size(); ++b) {
          os << (b ? "," : "") << m.buckets[b];
        }
        os << ']';
        break;
    }
    os << "}\n";
  }
  return os.str();
}

bool decode_snapshot_jsonl(const std::string& text, Snapshot& out) {
  Snapshot snap;
  std::uint64_t n = 0;
  std::size_t begin = 0;
  bool saw_header = false;
  while (begin < text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();  // Tolerate a missing final newline.
    const std::string line = text.substr(begin, end - begin);
    begin = end + 1;
    if (line.empty()) return false;
    if (!saw_header) {
      Scan sc{line};
      if (!sc.lit("{\"v\":1,\"kind\":\"snapshot\",\"t\":") || !sc.i64(snap.t_ms) ||
          !sc.lit(",\"source\":\"") || !sc.quoted(snap.source) || !sc.lit(",\"n\":") ||
          !sc.u64(n) || !sc.lit("}") || !sc.done()) {
        return false;
      }
      saw_header = true;
      continue;
    }
    MetricSample m;
    if (!decode_metric_line(line, m)) return false;
    snap.metrics.push_back(std::move(m));
  }
  if (!saw_header || snap.metrics.size() != n) return false;
  out = std::move(snap);
  return true;
}

Snapshot merge_snapshots(const std::vector<Snapshot>& snaps) {
  // std::map keeps the merged set name-sorted, matching snapshot() order.
  std::map<std::string, MetricSample> merged;
  struct GaugeWin {
    std::int64_t t_ms;
    std::size_t idx;
  };
  std::map<std::string, GaugeWin> gauge_wins;

  Snapshot out;
  out.source = "merged";
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    const Snapshot& snap = snaps[i];
    out.t_ms = std::max(out.t_ms, snap.t_ms);
    for (const MetricSample& m : snap.metrics) {
      auto [it, fresh] = merged.try_emplace(m.name, m);
      if (fresh) {
        if (m.kind == MetricKind::Gauge) gauge_wins[m.name] = {snap.t_ms, i};
        continue;
      }
      MetricSample& acc = it->second;
      if (acc.kind != m.kind) {
        throw std::invalid_argument("telemetry: merge kind mismatch for '" + m.name +
                                    "': " + to_string(acc.kind) + " vs " + to_string(m.kind));
      }
      switch (m.kind) {
        case MetricKind::Counter:
          acc.raw += m.raw;
          acc.value = static_cast<double>(acc.raw);
          break;
        case MetricKind::Gauge: {
          // Last write wins by snapshot timestamp; equal timestamps resolve
          // to the later merge operand (file order), never "whichever shard
          // the scan hit first".
          GaugeWin& win = gauge_wins[m.name];
          if (snap.t_ms >= win.t_ms) {
            win = {snap.t_ms, i};
            acc.value = m.value;
          }
          break;
        }
        case MetricKind::Histogram: {
          if (m.buckets.size() > acc.buckets.size()) acc.buckets.resize(m.buckets.size(), 0);
          for (std::size_t b = 0; b < m.buckets.size(); ++b) acc.buckets[b] += m.buckets[b];
          acc.count += m.count;
          acc.raw += m.raw;
          acc.value = static_cast<double>(acc.raw);
          break;
        }
      }
    }
  }
  out.metrics.reserve(merged.size());
  for (auto& [name, m] : merged) out.metrics.push_back(std::move(m));
  return out;
}

std::string to_openmetrics(const Snapshot& snap) {
  std::ostringstream os;
  for (const MetricSample& m : snap.metrics) {
    const std::string fam = om_name(m.name);
    os << "# TYPE " << fam << ' ' << to_string(m.kind) << '\n';
    switch (m.kind) {
      case MetricKind::Counter:
        os << fam << "_total " << m.raw << '\n';
        break;
      case MetricKind::Gauge:
        os << fam << ' ' << fmt_double(m.value) << '\n';
        break;
      case MetricKind::Histogram: {
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < m.buckets.size(); ++b) {
          cum += m.buckets[b];
          os << fam << "_bucket{le=\"" << bucket_le(b) << "\"} " << cum << '\n';
        }
        os << fam << "_bucket{le=\"+Inf\"} " << m.count << '\n';
        os << fam << "_sum " << m.raw << '\n';
        os << fam << "_count " << m.count << '\n';
        break;
      }
    }
  }
  os << "# EOF\n";
  return os.str();
}

namespace {

bool valid_metric_name(const std::string& s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  if (!head(s[0])) return false;
  for (const char c : s) {
    if (!head(c) && !std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool parse_om_number(const std::string& s, double& v) {
  if (s.empty()) return false;
  char* end = nullptr;
  v = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

}  // namespace

bool check_openmetrics(const std::string& text, std::string& error) {
  auto fail = [&error](std::size_t line_no, const std::string& why) {
    error = "openmetrics: line " + std::to_string(line_no) + ": " + why;
    return false;
  };
  if (text.empty() || text.back() != '\n') {
    error = "openmetrics: exposition must end with a newline";
    return false;
  }

  std::vector<std::string> lines;
  for (std::size_t begin = 0; begin < text.size();) {
    const std::size_t end = text.find('\n', begin);
    lines.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  if (lines.empty() || lines.back() != "# EOF") {
    error = "openmetrics: missing trailing '# EOF'";
    return false;
  }
  lines.pop_back();

  // Per-family state machine. `stage` tracks the histogram sample order we
  // emit (finite buckets -> +Inf bucket -> _sum -> _count).
  std::string fam, fam_type;
  std::size_t fam_line = 0, fam_samples = 0;
  int stage = 0;
  double last_le = -1.0, last_cum = -1.0, inf_value = -1.0;
  std::vector<std::string> seen_families;

  auto close_family = [&](std::size_t line_no) {
    if (fam.empty()) return true;
    if (fam_samples == 0) return fail(fam_line, "family '" + fam + "' has no samples");
    if (fam_type == "histogram" && stage != 3) {
      return fail(line_no, "histogram '" + fam + "' missing +Inf bucket, _sum or _count");
    }
    return true;
  };

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::size_t line_no = i + 1;
    const std::string& line = lines[i];
    if (line == "# EOF") return fail(line_no, "'# EOF' before the end of the exposition");
    if (line.compare(0, 7, "# TYPE ") == 0) {
      const std::size_t sp = line.find(' ', 7);
      if (sp == std::string::npos) return fail(line_no, "malformed TYPE line");
      const std::string name = line.substr(7, sp - 7);
      const std::string type = line.substr(sp + 1);
      if (!valid_metric_name(name)) return fail(line_no, "invalid family name '" + name + "'");
      if (type != "counter" && type != "gauge" && type != "histogram") {
        return fail(line_no, "unknown family type '" + type + "'");
      }
      if (std::find(seen_families.begin(), seen_families.end(), name) != seen_families.end()) {
        return fail(line_no, "family '" + name + "' declared twice");
      }
      if (!close_family(line_no)) return false;
      seen_families.push_back(name);
      fam = name;
      fam_type = type;
      fam_line = line_no;
      fam_samples = 0;
      stage = 0;
      last_le = last_cum = inf_value = -1.0;
      continue;
    }
    if (!line.empty() && line[0] == '#') return fail(line_no, "unexpected comment line");

    // Sample line: <name>[{le="..."}] <value>
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0) return fail(line_no, "malformed sample line");
    std::string name = line.substr(0, sp);
    const std::string value_str = line.substr(sp + 1);
    double value = 0.0;
    if (!parse_om_number(value_str, value)) {
      return fail(line_no, "unparseable value '" + value_str + "'");
    }
    if (fam.empty()) return fail(line_no, "sample before any TYPE line");

    std::string le;
    const std::size_t brace = name.find('{');
    if (brace != std::string::npos) {
      static const std::string kLe = "{le=\"";
      if (name.compare(brace, kLe.size(), kLe) != 0 || name.size() < brace + kLe.size() + 2 ||
          name.compare(name.size() - 2, 2, "\"}") != 0) {
        return fail(line_no, "unsupported label set in '" + name + "'");
      }
      le = name.substr(brace + kLe.size(), name.size() - 2 - brace - kLe.size());
      name = name.substr(0, brace);
    }

    if (fam_type == "counter") {
      if (name != fam + "_total" || !le.empty()) {
        return fail(line_no, "counter sample must be '" + fam + "_total' without labels");
      }
      if (value < 0.0) return fail(line_no, "negative counter total");
    } else if (fam_type == "gauge") {
      if (name != fam || !le.empty()) {
        return fail(line_no, "gauge sample must be bare '" + fam + "'");
      }
    } else {  // histogram
      if (name == fam + "_bucket") {
        if (le.empty()) return fail(line_no, "histogram bucket without an le label");
        if (stage > 1) return fail(line_no, "bucket after _sum/_count");
        if (le == "+Inf") {
          if (value < last_cum) return fail(line_no, "+Inf bucket below the cumulative count");
          inf_value = value;
          stage = 1;
        } else {
          double bound = 0.0;
          if (stage == 1) return fail(line_no, "finite bucket after the +Inf bucket");
          if (!parse_om_number(le, bound)) return fail(line_no, "unparseable le '" + le + "'");
          if (bound <= last_le && last_cum >= 0.0) {
            return fail(line_no, "bucket le values must increase");
          }
          if (value < last_cum) return fail(line_no, "bucket counts must be cumulative");
          last_le = bound;
          last_cum = value;
        }
      } else if (name == fam + "_sum") {
        if (stage != 1) return fail(line_no, "_sum must follow the +Inf bucket");
        stage = 2;
      } else if (name == fam + "_count") {
        if (stage != 2) return fail(line_no, "_count must follow _sum");
        if (value != inf_value) return fail(line_no, "_count differs from the +Inf bucket");
        stage = 3;
      } else {
        return fail(line_no, "unknown histogram sample '" + name + "'");
      }
    }
    ++fam_samples;
  }
  if (!close_family(lines.size())) return false;
  if (seen_families.empty()) {
    error = "openmetrics: no metric families";
    return false;
  }
  error.clear();
  return true;
}

}  // namespace esteem::telemetry

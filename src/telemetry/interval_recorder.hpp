// Per-run interval time-series: one row per algorithm interval, one column
// per selected metric, stored column-major so exports stream without
// per-row allocation. The memory system records a row at every
// tick_interval() when a run sink is attached (gated off by default);
// exports are JSONL (one object per interval, self-describing keys) and
// CSV. read_jsonl() parses exactly what write_jsonl() emits — values are
// printed with %.17g so the round-trip is bit-exact.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace esteem::telemetry {

class IntervalRecorder {
 public:
  explicit IntervalRecorder(std::vector<std::string> columns);

  const std::vector<std::string>& columns() const noexcept { return columns_; }
  std::size_t rows() const noexcept { return cycles_.size(); }

  /// Appends one interval snapshot; `values` must have one entry per column.
  void record(std::uint64_t cycle, const std::vector<double>& values);

  std::uint64_t cycle(std::size_t row) const { return cycles_.at(row); }
  double value(std::size_t row, std::size_t col) const {
    return series_.at(col).at(row);
  }
  /// Whole column by name; throws std::out_of_range for unknown names.
  const std::vector<double>& series(const std::string& column) const;

  /// One JSON object per line: {"cycle":N,"col":v,...} in column order.
  void write_jsonl(std::ostream& os) const;
  /// "cycle,col,..." header plus one row per interval.
  void write_csv(std::ostream& os) const;
  /// write_jsonl to `path`; returns false if the file cannot be opened.
  bool write_jsonl_file(const std::string& path) const;

  /// Parses a stream produced by write_jsonl (column set taken from the
  /// first line; every line must carry the same keys). Throws
  /// std::runtime_error on malformed input.
  static IntervalRecorder read_jsonl(std::istream& is);

 private:
  std::vector<std::string> columns_;
  std::vector<std::uint64_t> cycles_;
  std::vector<std::vector<double>> series_;  // [column][row]
};

}  // namespace esteem::telemetry

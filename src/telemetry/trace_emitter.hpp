// Chrome trace_event JSON emitter, viewable in chrome://tracing or Perfetto.
//
// The timeline spans two clock domains, modelled as two trace "processes":
//   pid kSimPid  — simulated time. ts is simulated microseconds
//                  (cycles / freq); rows (tids) are per-run lanes: one lane
//                  per run plus one per ESTEEM module, carrying
//                  reconfiguration spans ("ways=N"), refresh/fault instants
//                  and active-ratio counter tracks.
//   pid kWallPid — wall-clock time. ts is microseconds of std::steady_clock
//                  since process start; rows are OS threads (sweep task-pool
//                  workers), carrying task begin/end spans, memo-cache
//                  hit/miss instants and run-phase spans.
//
// Events are buffered in memory under a mutex (emission happens at interval /
// task granularity, so contention is negligible) and serialized once by
// write_json(); the output is the standard {"traceEvents":[...]} envelope
// with process/thread-name metadata events.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace esteem::telemetry {

class TraceEmitter {
 public:
  static constexpr std::uint32_t kSimPid = 1;   ///< Simulated-time process.
  static constexpr std::uint32_t kWallPid = 2;  ///< Wall-clock process.

  TraceEmitter();

  /// Metadata: names shown in the Perfetto track headers.
  void set_process_name(std::uint32_t pid, std::string_view name);
  void set_thread_name(std::uint32_t pid, std::uint32_t tid, std::string_view name);

  /// Complete event (ph "X"): a span of `dur_us` starting at `ts_us`.
  /// `args_json` is a raw JSON object ("{...}") or empty.
  void complete(std::uint32_t pid, std::uint32_t tid, std::string_view name,
                double ts_us, double dur_us, std::string args_json = {});

  /// Instant event (ph "i", thread scope).
  void instant(std::uint32_t pid, std::uint32_t tid, std::string_view name,
               double ts_us, std::string args_json = {});

  /// Counter event (ph "C"): one series named `name` with value `value`.
  void counter(std::uint32_t pid, std::string_view name, double ts_us, double value);

  std::size_t events() const;
  void clear();

  void write_json(std::ostream& os) const;
  /// write_json to `path`; returns false if the file cannot be opened.
  bool write_file(const std::string& path) const;

  /// Stable small integer id for the calling OS thread (wall-clock tids).
  static std::uint32_t wall_tid() noexcept;
  /// Microseconds of steady_clock since process start (wall-clock ts).
  static double wall_now_us() noexcept;

  /// Escapes a string for embedding inside JSON quotes.
  static std::string json_escape(std::string_view s);

 private:
  struct Event {
    char ph;  // 'X' | 'i' | 'C' | 'M'
    std::uint32_t pid;
    std::uint32_t tid;
    double ts_us;
    double dur_us;  // ph == 'X' only
    std::string name;
    std::string args_json;  // raw object or empty
  };

  void push(Event e);

  mutable std::mutex mutex_;
  std::vector<Event> events_;
};

}  // namespace esteem::telemetry

// Simulator self-profiling: named wall-time phases accumulated across the
// process (`run.simulate`, `run.energy`, `bench.sweep`, ...). ScopedTimer
// measures a lexical scope; the rollup lands in the esteem_bench JSON and in
// the sweep summary printed by esteem_cli. Always on — the cost is two clock
// reads plus one mutex-guarded map update per phase instance, which is
// invisible at run granularity.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace esteem::telemetry {

class PhaseProfiler {
 public:
  struct Phase {
    std::string name;
    double seconds = 0.0;
    std::uint64_t count = 0;
  };

  /// Adds one finished phase instance.
  void add(const std::string& phase, double seconds);

  /// All phases sorted by name; empty when nothing was recorded.
  std::vector<Phase> rollup() const;

  /// Total seconds recorded under `phase` (0 when unknown).
  double seconds(const std::string& phase) const;

  void reset();

  /// rollup() as a JSON array: [{"name":...,"seconds":...,"count":N},...].
  std::string to_json() const;
  /// rollup() as a one-line human summary: "a 1.23s x4 | b 0.01s".
  std::string to_line() const;

 private:
  struct Bucket {
    double seconds = 0.0;
    std::uint64_t count = 0;
  };
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Bucket> phases_;
};

/// RAII phase timer; records into the given profiler at destruction (or at
/// an explicit stop()).
class ScopedTimer {
 public:
  ScopedTimer(PhaseProfiler& profiler, std::string phase)
      : profiler_(&profiler),
        phase_(std::move(phase)),
        start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { stop(); }

  /// Records now instead of at scope exit; returns the elapsed seconds.
  /// Subsequent calls are no-ops returning 0.
  double stop();

 private:
  PhaseProfiler* profiler_;
  std::string phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace esteem::telemetry

#include "telemetry/trace_emitter.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace esteem::telemetry {

namespace {

std::chrono::steady_clock::time_point process_start() noexcept {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return start;
}

void append_ts(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  out += buf;
}

}  // namespace

TraceEmitter::TraceEmitter() {
  // Pin the wall-clock epoch to emitter construction at the latest, so
  // wall_now_us() deltas taken after construction are always positive.
  (void)process_start();
}

std::uint32_t TraceEmitter::wall_tid() noexcept {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

double TraceEmitter::wall_now_us() noexcept {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   process_start())
      .count();
}

std::string TraceEmitter::json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void TraceEmitter::push(Event e) {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(e));
}

void TraceEmitter::set_process_name(std::uint32_t pid, std::string_view name) {
  push(Event{'M', pid, 0, 0.0, 0.0, "process_name",
             "{\"name\":\"" + json_escape(name) + "\"}"});
}

void TraceEmitter::set_thread_name(std::uint32_t pid, std::uint32_t tid,
                                   std::string_view name) {
  push(Event{'M', pid, tid, 0.0, 0.0, "thread_name",
             "{\"name\":\"" + json_escape(name) + "\"}"});
}

void TraceEmitter::complete(std::uint32_t pid, std::uint32_t tid, std::string_view name,
                            double ts_us, double dur_us, std::string args_json) {
  push(Event{'X', pid, tid, ts_us, dur_us, std::string(name), std::move(args_json)});
}

void TraceEmitter::instant(std::uint32_t pid, std::uint32_t tid, std::string_view name,
                           double ts_us, std::string args_json) {
  push(Event{'i', pid, tid, ts_us, 0.0, std::string(name), std::move(args_json)});
}

void TraceEmitter::counter(std::uint32_t pid, std::string_view name, double ts_us,
                           double value) {
  std::string args = "{\"value\":";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  args += buf;
  args += '}';
  push(Event{'C', pid, 0, ts_us, 0.0, std::string(name), std::move(args)});
}

std::size_t TraceEmitter::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void TraceEmitter::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

void TraceEmitter::write_json(std::ostream& os) const {
  std::vector<Event> events;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    events = events_;
  }
  os << "{\"traceEvents\":[\n";
  std::string line;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    line.clear();
    line += "{\"ph\":\"";
    line += e.ph;
    line += "\",\"pid\":";
    line += std::to_string(e.pid);
    line += ",\"tid\":";
    line += std::to_string(e.tid);
    line += ",\"name\":\"";
    line += json_escape(e.name);
    line += '"';
    if (e.ph != 'M') {
      line += ",\"ts\":";
      append_ts(line, e.ts_us);
    }
    if (e.ph == 'X') {
      line += ",\"dur\":";
      append_ts(line, e.dur_us);
    }
    if (e.ph == 'i') line += ",\"s\":\"t\"";
    if (!e.args_json.empty()) {
      line += ",\"args\":";
      line += e.args_json;
    }
    line += (i + 1 < events.size()) ? "},\n" : "}\n";
    os << line;
  }
  os << "]}\n";
}

bool TraceEmitter::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) return false;
  write_json(out);
  return out.good();
}

}  // namespace esteem::telemetry

// Leader-set selection for set-sampled profiling (paper §3.2).
//
// One set per R_s sets is a "leader": it never undergoes reconfiguration and
// its hits feed the per-module LRU-position histograms (the ATD embedded in
// the L2's main tag directory). Leaders are staggered across set-index
// space, and every module is guaranteed at least one leader so Algorithm 1
// always has data for each module.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/module_map.hpp"

namespace esteem::profiler {

class LeaderSets {
 public:
  LeaderSets(std::uint32_t sets, std::uint32_t sampling_ratio,
             const cache::ModuleMap& modules);

  bool is_leader(std::uint32_t set) const noexcept { return leader_[set] != 0; }
  std::uint32_t count() const noexcept { return count_; }
  std::uint32_t sampling_ratio() const noexcept { return ratio_; }
  std::uint32_t leaders_in_module(std::uint32_t m) const { return per_module_[m]; }

 private:
  std::uint32_t ratio_;
  std::uint32_t count_ = 0;
  std::vector<std::uint8_t> leader_;
  std::vector<std::uint32_t> per_module_;
};

}  // namespace esteem::profiler

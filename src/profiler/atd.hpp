// Per-module LRU-position hit histograms — the dynamic profiling data that
// drives ESTEEM's Algorithm 1 (nL2Hit[0:M-1][0:A-1] in the paper).
//
// The auxiliary tag directory (ATD) is embedded in the main tag directory:
// leader sets keep full associativity forever, so their hit positions are
// exactly what a standalone ATD with the same replacement policy would see.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/module_map.hpp"
#include "common/stats.hpp"
#include "profiler/leader_sets.hpp"

namespace esteem::profiler {

class ModuleProfiler {
 public:
  ModuleProfiler(const cache::ModuleMap& modules, std::uint32_t ways,
                 const LeaderSets& leaders);

  /// Records a hit observed at `lru_pos` in `set`; ignored unless the set is
  /// a leader. Statistics from a leader count toward its module (§3.2).
  void record_hit(std::uint32_t set, std::uint32_t lru_pos);

  /// Records any L2 access (hit or miss) to a leader set. The per-module
  /// access counts let the controller distinguish "no reuse despite traffic"
  /// (shrink confidently) from "no samples at all" (keep configuration).
  void record_access(std::uint32_t set);

  /// Leader accesses observed in `module` this interval.
  std::uint64_t accesses(std::uint32_t module) const { return accesses_[module]; }

  /// nL2Hit[m][:] for the current interval.
  const Histogram& hits(std::uint32_t module) const { return hist_[module]; }
  std::uint32_t modules() const noexcept { return static_cast<std::uint32_t>(hist_.size()); }
  std::uint32_t ways() const noexcept { return ways_; }

  /// Clears all histograms (called at each interval boundary).
  void clear();

  std::uint64_t total_recorded() const noexcept { return recorded_; }

 private:
  const cache::ModuleMap& modules_;
  const LeaderSets& leaders_;
  std::uint32_t ways_;
  std::vector<Histogram> hist_;
  std::vector<std::uint64_t> accesses_;
  std::uint64_t recorded_ = 0;
};

}  // namespace esteem::profiler

#include "profiler/atd.hpp"

namespace esteem::profiler {

ModuleProfiler::ModuleProfiler(const cache::ModuleMap& modules, std::uint32_t ways,
                               const LeaderSets& leaders)
    : modules_(modules), leaders_(leaders), ways_(ways) {
  hist_.reserve(modules.modules());
  for (std::uint32_t m = 0; m < modules.modules(); ++m) hist_.emplace_back(ways_);
  accesses_.assign(modules.modules(), 0);
}

void ModuleProfiler::record_access(std::uint32_t set) {
  if (!leaders_.is_leader(set)) return;
  ++accesses_[modules_.module_of(set)];
}

void ModuleProfiler::record_hit(std::uint32_t set, std::uint32_t lru_pos) {
  if (!leaders_.is_leader(set)) return;
  hist_[modules_.module_of(set)].add(lru_pos);
  ++recorded_;
}

void ModuleProfiler::clear() {
  for (auto& h : hist_) h.clear();
  for (auto& a : accesses_) a = 0;
}

}  // namespace esteem::profiler

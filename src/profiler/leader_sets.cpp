#include "profiler/leader_sets.hpp"

#include <stdexcept>

namespace esteem::profiler {

LeaderSets::LeaderSets(std::uint32_t sets, std::uint32_t sampling_ratio,
                       const cache::ModuleMap& modules)
    : ratio_(sampling_ratio) {
  if (sets == 0 || sampling_ratio == 0) {
    throw std::invalid_argument("LeaderSets: sets and ratio must be >= 1");
  }
  leader_.assign(sets, 0);
  per_module_.assign(modules.modules(), 0);

  // Staggered diagonal: within the r-th group of R_s sets, pick offset
  // (r * 7) % R_s. The odd stride decorrelates leaders from power-of-two
  // address strides.
  for (std::uint32_t set = 0; set < sets; ++set) {
    const std::uint32_t group = set / ratio_;
    const std::uint32_t offset = (group * 7u) % ratio_;
    if (set % ratio_ == offset) {
      leader_[set] = 1;
      ++count_;
      ++per_module_[modules.module_of(set)];
    }
  }

  // Guarantee >= 1 leader per module (possible gap when sets/module < R_s).
  for (std::uint32_t m = 0; m < modules.modules(); ++m) {
    if (per_module_[m] == 0) {
      const std::uint32_t set = modules.first_set(m);
      leader_[set] = 1;
      ++count_;
      ++per_module_[m];
    }
  }
}

}  // namespace esteem::profiler

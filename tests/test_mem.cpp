// Tests for the main-memory latency/bandwidth/queue model.
#include <gtest/gtest.h>

#include "mem/main_memory.hpp"

namespace esteem::mem {
namespace {

TEST(MainMemory, BaseLatencyWhenIdle) {
  MainMemory mm({220, 12.8});
  EXPECT_EQ(mm.read(1000), 220u);
  EXPECT_EQ(mm.stats().reads, 1u);
  EXPECT_EQ(mm.stats().queue_wait_cycles, 0u);
}

TEST(MainMemory, QueueContentionAccumulates) {
  MainMemory mm({220, 10.0});
  EXPECT_EQ(mm.read(0), 220u);        // channel busy until 10
  EXPECT_EQ(mm.read(0), 230u);        // waits 10
  EXPECT_EQ(mm.read(0), 240u);        // waits 20
  EXPECT_EQ(mm.stats().queue_wait_cycles, 30u);
}

TEST(MainMemory, WritesOccupyBandwidthWithoutStalling) {
  MainMemory mm({220, 10.0});
  mm.write(0);  // channel busy until 10
  mm.write(0);  // until 20
  EXPECT_EQ(mm.stats().writes, 2u);
  // A read right after the writes queues behind them.
  EXPECT_EQ(mm.read(0), 240u);
}

TEST(MainMemory, ChannelDrainsOverTime) {
  MainMemory mm({100, 50.0});
  EXPECT_EQ(mm.read(0), 100u);
  // At t=100 the channel (busy until 50) is long free again.
  EXPECT_EQ(mm.read(100), 100u);
}

TEST(MainMemory, FractionalServiceAccumulates) {
  MainMemory mm({0, 0.5});
  // Two accesses at t=0: the second waits 0.5 cycles, truncated to 0; the
  // fourth has accumulated 1.5 cycles -> reported wait 1.
  EXPECT_EQ(mm.read(0), 0u);
  EXPECT_EQ(mm.read(0), 0u);
  EXPECT_EQ(mm.read(0), 1u);
  EXPECT_EQ(mm.read(0), 1u);
  EXPECT_EQ(mm.read(0), 2u);
}

TEST(MainMemory, StatsReset) {
  MainMemory mm({220, 10.0});
  (void)mm.read(0);
  mm.write(0);
  EXPECT_EQ(mm.stats().accesses(), 2u);
  mm.reset_stats();
  EXPECT_EQ(mm.stats().accesses(), 0u);
}

}  // namespace
}  // namespace esteem::mem

// Tests for the telemetry subsystem: counter registry (sharded merge
// exactness, duplicate-name rejection), interval recorder (row accounting,
// JSONL round-trip), trace emitter, phase profiler, and the hub's
// integration with the experiment layer — including the observer-effect
// guard (telemetry on vs. off must not change simulation results).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/run_cache.hpp"
#include "sim/runner.hpp"
#include "telemetry/counter_registry.hpp"
#include "telemetry/export.hpp"
#include "telemetry/interval_recorder.hpp"
#include "telemetry/profile.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_emitter.hpp"

namespace esteem::telemetry {
namespace {

// ---------------------------------------------------------------------------
// CounterRegistry

TEST(CounterRegistry, ConcurrentShardMergeIsExact) {
  CounterRegistry reg;
  Counter hits = reg.counter("merge.hits");
  Histogram lat = reg.histogram("merge.latency");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kIters = 20'000;

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kIters; ++i) {
        hits.add();
        lat.observe(i % 1000);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  // Addition commutes, so the merged totals are exact regardless of how the
  // threads' updates were striped over the shards.
  EXPECT_EQ(reg.value("merge.hits"), static_cast<double>(kThreads * kIters));
  double expect_sum = 0;
  for (std::uint64_t i = 0; i < kIters; ++i) expect_sum += static_cast<double>(i % 1000);
  expect_sum *= kThreads;
  for (const MetricSample& s : reg.snapshot()) {
    if (s.name != "merge.latency") continue;
    EXPECT_EQ(s.count, kThreads * kIters);
    EXPECT_EQ(s.value, expect_sum);
  }
}

TEST(CounterRegistry, DuplicateNameKindMismatchThrows) {
  CounterRegistry reg;
  Counter a = reg.counter("l2.miss");
  EXPECT_TRUE(a.bound());
  // Same name, same kind: idempotent — the second handle hits the same cell.
  Counter b = reg.counter("l2.miss");
  a.add(2);
  b.add(3);
  EXPECT_EQ(reg.value("l2.miss"), 5.0);
  EXPECT_EQ(reg.size(), 1u);
  // Same name, different kind: rejected.
  EXPECT_THROW((void)reg.gauge("l2.miss"), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("l2.miss"), std::invalid_argument);
}

TEST(CounterRegistry, GaugeLastWriteWinsAndReset) {
  CounterRegistry reg;
  Gauge g = reg.gauge("esteem.module0.active_ways");
  g.set(16.0);
  g.set(3.0);
  EXPECT_EQ(reg.value("esteem.module0.active_ways"), 3.0);
  reg.reset();
  EXPECT_EQ(reg.value("esteem.module0.active_ways"), 0.0);
  g.set(7.5);  // handles survive reset
  EXPECT_EQ(reg.value("esteem.module0.active_ways"), 7.5);
}

TEST(CounterRegistry, HistogramBucketsByBitWidth) {
  CounterRegistry reg;
  Histogram h = reg.histogram("run.cycles");
  h.observe(0);     // bucket 0
  h.observe(1);     // bucket 1
  h.observe(2);     // bucket 2
  h.observe(3);     // bucket 2
  h.observe(1024);  // bit_width = 11
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  const MetricSample& s = snap[0];
  EXPECT_EQ(s.kind, MetricKind::Histogram);
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.value, 1030.0);
  ASSERT_EQ(s.buckets.size(), 12u);  // trailing empties trimmed
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 2u);
  EXPECT_EQ(s.buckets[11], 1u);
}

TEST(CounterRegistry, SnapshotIsNameSortedAndUnknownIsZero) {
  CounterRegistry reg;
  reg.counter("b.second").add(1);
  reg.counter("a.first").add(1);
  reg.counter("c.third").add(1);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.first");
  EXPECT_EQ(snap[1].name, "b.second");
  EXPECT_EQ(snap[2].name, "c.third");
  EXPECT_EQ(reg.value("no.such.metric"), 0.0);
}

TEST(CounterRegistry, DefaultHandlesAreInert) {
  Counter c;
  Gauge g;
  Histogram h;
  EXPECT_FALSE(c.bound());
  c.add(5);     // must not crash
  g.set(1.0);   // must not crash
  h.observe(9); // must not crash
}

TEST(CounterRegistry, GaugeLastWriteWinsAcrossThreads) {
  // Threads stripe over different shards, so "latest" cannot be read off any
  // single shard: the registry-wide write sequence decides. Writes are
  // serialized by join() here — only the shard placement varies.
  CounterRegistry reg;
  Gauge g = reg.gauge("fleet.phase");
  std::thread([&] { g.set(10.0); }).join();
  std::thread([&] { g.set(20.0); }).join();
  EXPECT_EQ(reg.value("fleet.phase"), 20.0);
  std::thread([&] { g.set(5.0); }).join();
  g.set(7.0);  // main thread last: its shard's write has the newest sequence
  EXPECT_EQ(reg.value("fleet.phase"), 7.0);
}

// ---------------------------------------------------------------------------
// Snapshot export codec (telemetry/export)

TEST(SnapshotExport, JsonlRoundTripIsByteIdentical) {
  CounterRegistry reg;
  // A counter total past 2^53 would be mangled by a double round-trip — the
  // codec must carry the exact integer (MetricSample::raw).
  reg.counter("svc.rows").add(0x8000000000000001ULL);
  reg.gauge("worker.rows_completed").set(1.0 / 3.0);
  Histogram h = reg.histogram("row.duration_ms");
  h.observe(0);
  h.observe(7);
  h.observe(123456);

  const Snapshot snap = take_snapshot(reg, 1722988800123, "w-1");
  EXPECT_EQ(snap.source, "w-1");
  ASSERT_EQ(snap.metrics.size(), 3u);

  const std::string text = encode_snapshot_jsonl(snap);
  Snapshot back;
  ASSERT_TRUE(decode_snapshot_jsonl(text, back));
  EXPECT_EQ(back.t_ms, snap.t_ms);
  EXPECT_EQ(back.source, snap.source);
  ASSERT_EQ(back.metrics.size(), snap.metrics.size());
  for (std::size_t i = 0; i < snap.metrics.size(); ++i) {
    EXPECT_EQ(back.metrics[i].name, snap.metrics[i].name);
    EXPECT_EQ(back.metrics[i].kind, snap.metrics[i].kind);
    EXPECT_EQ(back.metrics[i].raw, snap.metrics[i].raw);       // exact u64
    EXPECT_EQ(back.metrics[i].value, snap.metrics[i].value);   // %.17g exact
    EXPECT_EQ(back.metrics[i].count, snap.metrics[i].count);
    EXPECT_EQ(back.metrics[i].buckets, snap.metrics[i].buckets);
  }
  // The byte-identity pin: decode followed by encode reproduces the wire.
  EXPECT_EQ(encode_snapshot_jsonl(back), text);
}

TEST(SnapshotExport, DecodeRejectsMalformedInput) {
  CounterRegistry reg;
  reg.counter("a").add(1);
  reg.counter("b").add(2);
  const std::string text = encode_snapshot_jsonl(take_snapshot(reg, 50, "w"));
  Snapshot out;
  ASSERT_TRUE(decode_snapshot_jsonl(text, out));

  EXPECT_FALSE(decode_snapshot_jsonl("", out));
  // Drop the last metric line: header count no longer matches.
  const std::size_t cut = text.rfind("{\"name\"");
  ASSERT_NE(cut, std::string::npos);
  EXPECT_FALSE(decode_snapshot_jsonl(text.substr(0, cut), out));
  // Trailing garbage after the declared metric count.
  EXPECT_FALSE(decode_snapshot_jsonl(text + "{\"name\":\"x\"}\n", out));
  // Foreign header kind.
  std::string wrong = text;
  wrong.replace(wrong.find("snapshot"), 8, "snapshut");
  EXPECT_FALSE(decode_snapshot_jsonl(wrong, out));
}

TEST(SnapshotExport, MergeSumsCountersAddsHistogramsLwwGauges) {
  CounterRegistry r1, r2;
  r1.counter("hits").add(5);
  r2.counter("hits").add(7);
  r1.gauge("ways").set(4.0);
  r2.gauge("ways").set(9.0);
  Histogram h1 = r1.histogram("lat");
  Histogram h2 = r2.histogram("lat");
  h1.observe(1);
  h2.observe(300);
  r2.counter("only.in.two").add(1);

  const Snapshot s1 = take_snapshot(r1, 100, "w1");
  const Snapshot s2 = take_snapshot(r2, 200, "w2");

  auto metric = [](const Snapshot& s, const std::string& name) {
    for (const MetricSample& m : s.metrics) {
      if (m.name == name) return m;
    }
    ADD_FAILURE() << "missing metric " << name;
    return MetricSample{};
  };

  const Snapshot m = merge_snapshots({s1, s2});
  EXPECT_EQ(m.source, "merged");
  EXPECT_EQ(m.t_ms, 200);
  EXPECT_EQ(metric(m, "hits").raw, 12u);                // counters sum
  EXPECT_EQ(metric(m, "ways").value, 9.0);              // newer snapshot wins
  EXPECT_EQ(metric(m, "lat").count, 2u);                // histograms add
  EXPECT_EQ(metric(m, "lat").raw, 301u);
  EXPECT_EQ(metric(m, "only.in.two").raw, 1u);          // union of names

  // LWW is by timestamp, not operand order: reversing the merge changes
  // nothing except nothing.
  const Snapshot rev = merge_snapshots({s2, s1});
  EXPECT_EQ(metric(rev, "ways").value, 9.0);
  EXPECT_EQ(encode_snapshot_jsonl(rev), encode_snapshot_jsonl(m));

  // Equal timestamps: the later operand wins (mirrors file order).
  CounterRegistry r3;
  r3.gauge("ways").set(1.5);
  const Snapshot s3 = take_snapshot(r3, 200, "w3");
  EXPECT_EQ(metric(merge_snapshots({s2, s3}), "ways").value, 1.5);
  EXPECT_EQ(metric(merge_snapshots({s3, s2}), "ways").value, 9.0);
}

TEST(SnapshotExport, MergeKindMismatchThrows) {
  CounterRegistry r1, r2;
  r1.counter("hits").add(1);
  r2.gauge("hits").set(2.0);
  const Snapshot s1 = take_snapshot(r1, 100, "w1");
  const Snapshot s2 = take_snapshot(r2, 200, "w2");
  EXPECT_THROW((void)merge_snapshots({s1, s2}), std::invalid_argument);
}

TEST(SnapshotExport, OpenMetricsExpositionPassesChecker) {
  CounterRegistry reg;
  reg.counter("memo.hits").add(12);
  reg.gauge("worker.rows_completed").set(3.0);
  Histogram h = reg.histogram("row.duration_ms");
  h.observe(0);
  h.observe(900);

  const std::string text = to_openmetrics(take_snapshot(reg, 77, "w"));
  std::string error;
  EXPECT_TRUE(check_openmetrics(text, error)) << error;

  // Name mangling and the mandated shapes.
  EXPECT_NE(text.find("# TYPE esteem_memo_hits counter"), std::string::npos);
  EXPECT_NE(text.find("esteem_memo_hits_total 12"), std::string::npos);
  EXPECT_NE(text.find("# TYPE esteem_worker_rows_completed gauge"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("esteem_row_duration_ms_count 2"), std::string::npos);
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);
}

TEST(SnapshotExport, OpenMetricsCheckerRejectsMalformed) {
  CounterRegistry reg;
  reg.counter("a").add(1);
  Histogram h = reg.histogram("lat");
  h.observe(1);
  h.observe(2);
  const std::string good = to_openmetrics(take_snapshot(reg, 1, "w"));
  std::string error;
  ASSERT_TRUE(check_openmetrics(good, error)) << error;

  // Missing terminal # EOF.
  EXPECT_FALSE(check_openmetrics(good.substr(0, good.size() - 6), error));
  EXPECT_FALSE(error.empty());

  // Re-declared family: duplicate TYPE blocks are an error.
  const std::string body = good.substr(0, good.size() - 6);
  EXPECT_FALSE(check_openmetrics(body + body + "# EOF\n", error));

  // _count disagreeing with the +Inf bucket breaks the histogram invariant.
  std::string torn = good;
  const std::size_t pos = torn.find("esteem_lat_count 2");
  ASSERT_NE(pos, std::string::npos);
  torn.replace(pos, 18, "esteem_lat_count 3");
  EXPECT_FALSE(check_openmetrics(torn, error));
}

// ---------------------------------------------------------------------------
// IntervalRecorder

TEST(IntervalRecorder, RowCountMatchesRecordedIntervals) {
  IntervalRecorder rec({"active_ratio", "demand_misses"});
  for (std::uint64_t i = 0; i < 37; ++i) {
    rec.record((i + 1) * 1000, {1.0 / static_cast<double>(i + 1), static_cast<double>(i)});
  }
  EXPECT_EQ(rec.rows(), 37u);
  EXPECT_EQ(rec.cycle(36), 37'000u);
  EXPECT_EQ(rec.series("demand_misses").size(), 37u);
  EXPECT_THROW((void)rec.series("bogus"), std::out_of_range);
  EXPECT_THROW(rec.record(99, {1.0}), std::invalid_argument);  // width mismatch
}

TEST(IntervalRecorder, JsonlRoundTripIsBitExact) {
  IntervalRecorder rec({"ratio", "huge", "tiny"});
  rec.record(100, {1.0 / 3.0, 1.2345678901234567e18, -7.02e-17});
  rec.record(200, {0.1, 0.0, 123456789.123456789});
  std::ostringstream out;
  rec.write_jsonl(out);

  std::istringstream in(out.str());
  const IntervalRecorder back = IntervalRecorder::read_jsonl(in);
  ASSERT_EQ(back.columns(), rec.columns());
  ASSERT_EQ(back.rows(), rec.rows());
  for (std::size_t r = 0; r < rec.rows(); ++r) {
    EXPECT_EQ(back.cycle(r), rec.cycle(r));
    for (std::size_t c = 0; c < rec.columns().size(); ++c) {
      // %.17g printing makes the round-trip exact, not approximate.
      EXPECT_EQ(back.value(r, c), rec.value(r, c));
    }
  }
}

TEST(IntervalRecorder, ReadJsonlRejectsMalformedInput) {
  std::istringstream missing_cycle(R"({"a":1})");
  EXPECT_THROW((void)IntervalRecorder::read_jsonl(missing_cycle), std::runtime_error);
  std::istringstream ragged(
      "{\"cycle\":1,\"a\":1}\n{\"cycle\":2,\"b\":1}\n");
  EXPECT_THROW((void)IntervalRecorder::read_jsonl(ragged), std::runtime_error);
}

TEST(IntervalRecorder, CsvHasHeaderAndRows) {
  IntervalRecorder rec({"x"});
  rec.record(10, {1.5});
  rec.record(20, {2.5});
  std::ostringstream out;
  rec.write_csv(out);
  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "cycle,x");
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 2);
}

// ---------------------------------------------------------------------------
// TraceEmitter / PhaseProfiler

TEST(TraceEmitter, EmitsChromeTraceEvents) {
  TraceEmitter tr;
  tr.set_process_name(TraceEmitter::kSimPid, "simulated time");
  tr.set_thread_name(TraceEmitter::kSimPid, 1, "mcf.esteem.s42");
  tr.complete(TraceEmitter::kSimPid, 1, "interval", 10.0, 5.0, "{\"hits\":12}");
  tr.instant(TraceEmitter::kSimPid, 1, "reconfig", 12.0);
  tr.counter(TraceEmitter::kSimPid, "active_ratio", 14.0, 0.25);
  EXPECT_EQ(tr.events(), 5u);

  std::ostringstream out;
  tr.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":5"), std::string::npos);
  EXPECT_NE(json.find("\"hits\":12"), std::string::npos);
  EXPECT_NE(json.find("mcf.esteem.s42"), std::string::npos);

  // Quotes, backslashes and control characters must be escaped for embedding.
  EXPECT_EQ(TraceEmitter::json_escape("a\\b\"c\n"), "a\\\\b\\\"c\\n");
}

TEST(PhaseProfiler, ScopedTimerAccumulates) {
  PhaseProfiler prof;
  for (int i = 0; i < 3; ++i) {
    ScopedTimer t(prof, "phase.a");
  }
  {
    ScopedTimer t(prof, "phase.b");
    t.stop();
    t.stop();  // idempotent
  }
  const auto rollup = prof.rollup();
  ASSERT_EQ(rollup.size(), 2u);
  EXPECT_EQ(rollup[0].name, "phase.a");
  EXPECT_EQ(rollup[0].count, 3u);
  EXPECT_GE(rollup[0].seconds, 0.0);
  EXPECT_EQ(rollup[1].name, "phase.b");
  EXPECT_EQ(rollup[1].count, 1u);
  EXPECT_NE(prof.to_json().find("phase.a"), std::string::npos);
  prof.reset();
  EXPECT_TRUE(prof.rollup().empty());
}

// ---------------------------------------------------------------------------
// Hub + experiment integration

SystemConfig tiny() {
  SystemConfig cfg = SystemConfig::single_core();
  cfg.l1.geom = CacheGeometry{8ULL * 1024, 4, 64};
  cfg.l2.geom = CacheGeometry{512ULL * 1024, 8, 64};
  cfg.edram.retention_us = 5.0;
  cfg.esteem.modules = 8;
  cfg.esteem.interval_cycles = 50'000;
  cfg.esteem.sampling_ratio = 32;
  cfg.esteem.a_min = 2;
  return cfg;
}

trace::Workload wl(const std::string& name) { return {name, {name}}; }

// RAII guard: whatever a test configures, the process-global hub is off
// again afterwards so later tests see the default (disabled) state.
struct TelemetryGuard {
  ~TelemetryGuard() { Telemetry::instance().configure({}); }
};

TEST(TelemetryHub, DisabledByDefaultCreatesNoSink) {
  TelemetryGuard guard;
  Telemetry::instance().configure({});
  EXPECT_FALSE(active());
  EXPECT_EQ(trace_sink(), nullptr);
  auto sink = Telemetry::instance().begin_run("x", 2.0, interval_columns(0), 1);
  EXPECT_EQ(sink, nullptr);
}

TEST(TelemetryHub, SanitizeLabelAndColumns) {
  EXPECT_EQ(sanitize_label("mcf/esteem s42"), "mcf_esteem_s42");
  const auto cols = interval_columns(2);
  ASSERT_EQ(cols.size(), 10u);
  EXPECT_EQ(cols[0], "active_ratio");
  EXPECT_EQ(cols[8], "module0_active_ways");
  EXPECT_EQ(cols[9], "module1_active_ways");
}

// Acceptance criterion: a telemetry-enabled ESTEEM run writes a per-interval
// JSONL whose active-ways series matches the algorithm's own decisions (the
// RawRunResult timeline the paper's Figure 2 is drawn from).
TEST(TelemetryHub, IntervalSeriesMatchesAlgorithmTimeline) {
  TelemetryGuard guard;
  const std::string dir = "test_telemetry_out";
  std::filesystem::remove_all(dir);
  TelemetryConfig cfg;
  cfg.interval_stats = true;
  cfg.dir = dir;
  Telemetry::instance().configure(cfg);

  sim::RunSpec spec;
  spec.config = tiny();
  spec.technique = sim::Technique::Esteem;
  spec.workload = wl("mcf");
  spec.instr_per_core = 300'000;
  spec.warmup_instr_per_core = 50'000;
  spec.record_timeline = true;
  const sim::RunOutcome outcome = sim::run_experiment(spec);
  ASSERT_FALSE(outcome.raw.timeline.empty());

  const std::string path =
      Telemetry::instance().interval_series_path(sim::run_label(spec));
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  const IntervalRecorder rec = IntervalRecorder::read_jsonl(in);

  // One JSONL row per algorithm interval, at the same cycle boundaries.
  ASSERT_EQ(rec.rows(), outcome.raw.timeline.size());
  const std::uint32_t modules = spec.config.esteem.modules;
  for (std::size_t i = 0; i < rec.rows(); ++i) {
    const cpu::IntervalSample& s = outcome.raw.timeline[i];
    EXPECT_EQ(rec.cycle(i), s.cycle);
    EXPECT_EQ(rec.series("active_ratio")[i], s.active_ratio);
    ASSERT_EQ(s.module_ways.size(), modules);
    for (std::uint32_t m = 0; m < modules; ++m) {
      EXPECT_EQ(rec.series("module" + std::to_string(m) + "_active_ways")[i],
                static_cast<double>(s.module_ways[m]))
          << "interval " << i << " module " << m;
    }
  }
  std::filesystem::remove_all(dir);
}

// Observer-effect guard: running the same sweep with full telemetry enabled
// must produce a byte-identical CSV. Telemetry reads simulator state; it
// never perturbs it.
TEST(TelemetryHub, SweepCsvIsByteIdenticalWithTelemetryOn) {
  TelemetryGuard guard;
  const std::string dir = "test_telemetry_observer";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  sim::SweepSpec spec;
  spec.config = tiny();
  spec.workloads = {wl("gamess"), wl("gobmk")};
  spec.techniques = {sim::Technique::Esteem, sim::Technique::RefrintRPV};
  spec.instr_per_core = 100'000;
  spec.warmup_instr_per_core = 20'000;
  spec.threads = 2;

  auto sweep_to_csv = [&](const std::string& name) {
    // Clear the memo cache so both passes genuinely simulate.
    sim::RunCache::instance().clear();
    const sim::SweepResult result = sim::run_sweep(spec);
    EXPECT_TRUE(result.ok());
    const std::string path = dir + "/" + name;
    sim::write_csv(result, path);
    std::ifstream in(path, std::ios::binary);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    return bytes.str();
  };

  Telemetry::instance().configure({});
  const std::string off = sweep_to_csv("off.csv");

  TelemetryConfig cfg;
  cfg.interval_stats = true;
  cfg.dir = dir;
  cfg.trace_path = dir + "/trace.json";
  Telemetry::instance().configure(cfg);
  const std::string on = sweep_to_csv("on.csv");

  ASSERT_FALSE(off.empty());
  EXPECT_EQ(off, on);

  Telemetry::instance().configure({});
  sim::RunCache::instance().clear();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace esteem::telemetry

// End-to-end tests of the multi-core system simulator.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cpu/system.hpp"
#include "trace/spec_profiles.hpp"

namespace esteem::cpu {
namespace {

// Scaled-down configuration for fast tests: 512 KB 8-way L2 (1024 sets),
// 8 KB L1s, 5 us retention (10k cycles), 100k-cycle intervals.
SystemConfig tiny(std::uint32_t ncores = 1) {
  SystemConfig cfg = SystemConfig::single_core();
  cfg.ncores = ncores;
  cfg.l1.geom = CacheGeometry{8ULL * 1024, 4, 64};
  cfg.l2.geom = CacheGeometry{512ULL * 1024, 8, 64};
  cfg.edram.retention_us = 5.0;
  cfg.esteem.modules = 8;
  cfg.esteem.interval_cycles = 100'000;
  cfg.esteem.sampling_ratio = 32;
  cfg.esteem.a_min = 2;
  cfg.validate();
  return cfg;
}

RawRunResult run_one(const SystemConfig& cfg, Technique tech,
                     const std::vector<std::string>& benchmarks,
                     instr_t instr = 200'000, bool timeline = false,
                     std::uint64_t seed = 42) {
  System system(cfg, tech, benchmarks, seed);
  RunOptions opt;
  opt.instr_per_core = instr;
  opt.record_timeline = timeline;
  return system.run(opt);
}

TEST(System, BaselineRunsToTarget) {
  const RawRunResult r = run_one(tiny(), Technique::BaselinePeriodicAll, {"gamess"});
  ASSERT_EQ(r.ipc.size(), 1u);
  EXPECT_GT(r.ipc[0], 0.0);
  EXPECT_LE(r.ipc[0], 1.0);  // in-order, 1-wide
  EXPECT_GE(r.wall_cycles, 200'000u);
  EXPECT_GT(r.refreshes, 0u);
  // Baseline never reconfigures: F_A is exactly 1.
  EXPECT_DOUBLE_EQ(r.avg_active_ratio, 1.0);
  EXPECT_DOUBLE_EQ(r.counters.fa_seconds, r.counters.seconds);
  EXPECT_EQ(r.counters.transitions, 0u);
}

TEST(System, BaselineRefreshCountMatchesGeometry) {
  const SystemConfig cfg = tiny();
  const RawRunResult r = run_one(cfg, Technique::BaselinePeriodicAll, {"gamess"});
  // All 4096 lines refreshed once per 10k-cycle period.
  const std::uint64_t periods = r.wall_cycles / cfg.retention_cycles();
  const std::uint64_t lines = cfg.l2.geom.lines();
  EXPECT_GE(r.refreshes, periods * lines);
  EXPECT_LE(r.refreshes, (periods + 1) * lines);
}

TEST(System, EsteemShrinksCacheForCacheFriendlyWorkload) {
  const RawRunResult r = run_one(tiny(), Technique::Esteem, {"gamess"}, 400'000);
  EXPECT_LT(r.avg_active_ratio, 0.95);
  EXPECT_GT(r.avg_active_ratio, 0.1);
  EXPECT_GT(r.counters.transitions, 0u);
}

TEST(System, EsteemRefreshesLessThanBaseline) {
  const RawRunResult base =
      run_one(tiny(), Technique::BaselinePeriodicAll, {"gamess"}, 400'000);
  const RawRunResult est = run_one(tiny(), Technique::Esteem, {"gamess"}, 400'000);
  EXPECT_LT(est.refreshes, base.refreshes);
}

TEST(System, RpvRefreshesLessThanBaseline) {
  const RawRunResult base =
      run_one(tiny(), Technique::BaselinePeriodicAll, {"gamess"}, 400'000);
  const RawRunResult rpv = run_one(tiny(), Technique::RefrintRPV, {"gamess"}, 400'000);
  EXPECT_LT(rpv.refreshes, base.refreshes);
  // RPV never turns the cache off (§6.4).
  EXPECT_DOUBLE_EQ(rpv.avg_active_ratio, 1.0);
  EXPECT_EQ(rpv.counters.transitions, 0u);
}

TEST(System, PeriodicValidBetweenBaselineAndRpv) {
  const RawRunResult base =
      run_one(tiny(), Technique::BaselinePeriodicAll, {"bzip2"}, 300'000);
  const RawRunResult pv = run_one(tiny(), Technique::PeriodicValid, {"bzip2"}, 300'000);
  const RawRunResult rpv = run_one(tiny(), Technique::RefrintRPV, {"bzip2"}, 300'000);
  // Valid-only refresh saves vs. all-lines; polyphase additionally skips
  // recently-touched lines (Refrint's result).
  EXPECT_LE(pv.refreshes, base.refreshes);
  EXPECT_LE(rpv.refreshes, pv.refreshes);
}

TEST(System, DeterministicForSameSeed) {
  const RawRunResult a = run_one(tiny(), Technique::Esteem, {"gcc"}, 150'000, false, 7);
  const RawRunResult b = run_one(tiny(), Technique::Esteem, {"gcc"}, 150'000, false, 7);
  EXPECT_EQ(a.wall_cycles, b.wall_cycles);
  EXPECT_EQ(a.refreshes, b.refreshes);
  EXPECT_EQ(a.demand_misses, b.demand_misses);
  EXPECT_DOUBLE_EQ(a.ipc[0], b.ipc[0]);
  EXPECT_DOUBLE_EQ(a.avg_active_ratio, b.avg_active_ratio);
}

TEST(System, SeedChangesRun) {
  const RawRunResult a = run_one(tiny(), Technique::Esteem, {"gcc"}, 150'000, false, 7);
  const RawRunResult b = run_one(tiny(), Technique::Esteem, {"gcc"}, 150'000, false, 8);
  EXPECT_NE(a.wall_cycles, b.wall_cycles);
}

TEST(System, DualCoreRunsBothBenchmarks) {
  const RawRunResult r =
      run_one(tiny(2), Technique::Esteem, {"gobmk", "nekbone"}, 150'000);
  ASSERT_EQ(r.ipc.size(), 2u);
  EXPECT_GT(r.ipc[0], 0.0);
  EXPECT_GT(r.ipc[1], 0.0);
  EXPECT_EQ(r.total_instructions, 300'000u);
}

TEST(System, DualCoreSharedCacheContends) {
  // A streaming co-runner should hurt the cache-friendly benchmark compared
  // to running with another small-footprint benchmark.
  const RawRunResult friendly =
      run_one(tiny(2), Technique::BaselinePeriodicAll, {"gobmk", "nekbone"}, 150'000);
  const RawRunResult hostile =
      run_one(tiny(2), Technique::BaselinePeriodicAll, {"gobmk", "lbm"}, 150'000);
  EXPECT_LT(hostile.ipc[0], friendly.ipc[0]);
}

TEST(System, TimelineRecordsModuleWays) {
  const SystemConfig cfg = tiny();
  const RawRunResult r = run_one(cfg, Technique::Esteem, {"h264ref"}, 400'000, true);
  ASSERT_FALSE(r.timeline.empty());
  for (const IntervalSample& s : r.timeline) {
    EXPECT_EQ(s.module_ways.size(), cfg.esteem.modules);
    EXPECT_GT(s.active_ratio, 0.0);
    EXPECT_LE(s.active_ratio, 1.0);
    for (std::uint32_t w : s.module_ways) {
      EXPECT_GE(w, cfg.esteem.a_min);
      EXPECT_LE(w, cfg.l2.geom.ways);
    }
  }
}

TEST(System, RejectsBenchmarkCountMismatch) {
  EXPECT_THROW(System(tiny(2), Technique::Esteem, {"gcc"}, 1), std::invalid_argument);
}

TEST(System, RefreshCountOrderingAcrossTechniques) {
  // For one workload: ecc-extended < smart-refresh <= rpv <= periodic-valid
  // <= baseline. (Smart-Refresh is polyphase's fine-grained limit; ECC
  // extends the interval itself.)
  const SystemConfig cfg = tiny();
  const auto base = run_one(cfg, Technique::BaselinePeriodicAll, {"bzip2"}, 300'000);
  const auto pv = run_one(cfg, Technique::PeriodicValid, {"bzip2"}, 300'000);
  const auto rpv = run_one(cfg, Technique::RefrintRPV, {"bzip2"}, 300'000);
  const auto smart = run_one(cfg, Technique::SmartRefresh, {"bzip2"}, 300'000);
  const auto ecc = run_one(cfg, Technique::EccExtended, {"bzip2"}, 300'000);
  EXPECT_LE(pv.refreshes, base.refreshes);
  EXPECT_LE(rpv.refreshes, pv.refreshes);
  EXPECT_LE(smart.refreshes, rpv.refreshes);
  EXPECT_LT(ecc.refreshes, pv.refreshes);
  EXPECT_GT(ecc.refreshes, 0u);
}

TEST(System, DirtyWorkloadsWriteBackToMemory) {
  // lbm stores ~45% of its accesses and streams far beyond the L2: dirty
  // lines must reach main memory as posted writes.
  const auto r = run_one(tiny(), Technique::BaselinePeriodicAll, {"lbm"}, 200'000);
  EXPECT_GT(r.mem_stats.mm_writebacks, 1000u);
  EXPECT_GT(r.mem_stats.l2_writeback_accesses, 1000u);
}

TEST(System, WarmupExcludedFromMeasurement) {
  const SystemConfig cfg = tiny();
  System warm(cfg, Technique::BaselinePeriodicAll, {"gamess"}, 42);
  RunOptions opt;
  opt.instr_per_core = 150'000;
  opt.warmup_instr_per_core = 150'000;
  const RawRunResult with_warm = warm.run(opt);

  // Warmed run: the measured window has far fewer (cold) misses per
  // instruction than a cold run of the same length.
  const RawRunResult cold =
      run_one(cfg, Technique::BaselinePeriodicAll, {"gamess"}, 150'000);
  EXPECT_LT(with_warm.demand_misses, cold.demand_misses);
  EXPECT_EQ(with_warm.total_instructions, 150'000u);
  EXPECT_GT(with_warm.ipc[0], 0.0);
}

TEST(System, StreamingWorkloadMissesHard) {
  const RawRunResult r =
      run_one(tiny(), Technique::BaselinePeriodicAll, {"libquantum"}, 200'000);
  // libquantum streams a region far larger than the L2: most demand L2
  // accesses must miss.
  const double miss_rate =
      static_cast<double>(r.mem_stats.demand_l2_misses) /
      static_cast<double>(r.mem_stats.demand_l2_hits + r.mem_stats.demand_l2_misses);
  EXPECT_GT(miss_rate, 0.85);
}

// Smoke sweep: every Table 1 benchmark profile runs end-to-end under ESTEEM
// and produces sane metrics.
class ProfileSmoke : public ::testing::TestWithParam<std::string> {};

TEST_P(ProfileSmoke, RunsUnderEsteem) {
  const RawRunResult r = run_one(tiny(), Technique::Esteem, {GetParam()}, 60'000);
  EXPECT_GT(r.ipc[0], 0.0);
  EXPECT_LE(r.ipc[0], 1.0);
  EXPECT_GT(r.refreshes, 0u);
  EXPECT_GT(r.avg_active_ratio, 0.0);
  EXPECT_LE(r.avg_active_ratio, 1.0);
  EXPECT_EQ(r.total_instructions, 60'000u);
}

std::vector<std::string> all_benchmark_names() {
  std::vector<std::string> names;
  for (const auto& p : trace::all_profiles()) names.emplace_back(p.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ProfileSmoke,
                         ::testing::ValuesIn(all_benchmark_names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace esteem::cpu

// Direct unit tests of the memory hierarchy (MemorySystem), below the
// System run loop: latency composition, writeback paths, inclusion,
// interval bookkeeping, and measurement reset.
#include <gtest/gtest.h>

#include "cpu/memory_system.hpp"

namespace esteem::cpu {
namespace {

SystemConfig tiny() {
  SystemConfig cfg = SystemConfig::single_core();
  cfg.l1.geom = CacheGeometry{4ULL * 1024, 2, 64};    // 32 sets
  cfg.l2.geom = CacheGeometry{128ULL * 1024, 8, 64};  // 256 sets
  cfg.edram.retention_us = 5.0;
  cfg.esteem.modules = 8;
  cfg.esteem.interval_cycles = 50'000;
  cfg.esteem.sampling_ratio = 16;
  cfg.l2.queue_pressure = 0.0;  // deterministic latencies for these tests
  cfg.validate();
  return cfg;
}

TEST(MemorySystem, L1HitLatency) {
  const SystemConfig cfg = tiny();
  MemorySystem mem(cfg, Technique::BaselinePeriodicAll);
  (void)mem.access(0, 0x10, false, 0);              // cold miss
  const cycle_t lat = mem.access(0, 0x10, false, 100);
  EXPECT_EQ(lat, cfg.l1.latency_cycles);
}

TEST(MemorySystem, MissLatencyComposition) {
  const SystemConfig cfg = tiny();
  MemorySystem mem(cfg, Technique::BaselinePeriodicAll);
  const cycle_t lat = mem.access(0, 0x10, false, 0);
  // L1 (2) + L2 lookup (12, no bank wait at t=0) + memory (220).
  EXPECT_EQ(lat, cfg.l1.latency_cycles + cfg.l2.latency_cycles + cfg.mem.latency_cycles);
  EXPECT_EQ(mem.stats().demand_l2_misses, 1u);
  EXPECT_EQ(mem.mm_stats().reads, 1u);
}

TEST(MemorySystem, L2HitAfterL1Eviction) {
  const SystemConfig cfg = tiny();
  MemorySystem mem(cfg, Technique::BaselinePeriodicAll);
  // Fill block, then evict it from the 2-way L1 set with two conflicting
  // blocks (same L1 set: stride 32 sets).
  (void)mem.access(0, 0x0, false, 0);
  (void)mem.access(0, 0x20, false, 1000);
  (void)mem.access(0, 0x40, false, 2000);
  const cycle_t lat = mem.access(0, 0x0, false, 3000);
  EXPECT_EQ(lat, cfg.l1.latency_cycles + cfg.l2.latency_cycles);
  EXPECT_EQ(mem.stats().demand_l2_hits, 1u);
}

TEST(MemorySystem, DirtyL1VictimWritesBackToL2) {
  const SystemConfig cfg = tiny();
  MemorySystem mem(cfg, Technique::BaselinePeriodicAll);
  (void)mem.access(0, 0x0, true, 0);  // store: dirty in L1
  (void)mem.access(0, 0x20, false, 1000);
  (void)mem.access(0, 0x40, false, 2000);  // evicts dirty 0x0
  EXPECT_EQ(mem.stats().l2_writeback_accesses, 1u);
}

TEST(MemorySystem, L2EvictionBackInvalidatesL1) {
  const SystemConfig cfg = tiny();
  MemorySystem mem(cfg, Technique::BaselinePeriodicAll);
  // Fill block 0, then thrash its 8-way L2 set (stride = 256 sets).
  (void)mem.access(0, 0x0, false, 0);
  for (block_t i = 1; i <= 8; ++i) {
    (void)mem.access(0, i * 256, false, 1000 * i);
  }
  // Block 0 was evicted from L2 and must be gone from the L1 too: the next
  // access misses all the way to memory (inclusion).
  const cycle_t lat = mem.access(0, 0x0, false, 100'000);
  EXPECT_GE(lat, cfg.mem.latency_cycles);
}

TEST(MemorySystem, DirtyL2VictimReachesMemory) {
  const SystemConfig cfg = tiny();
  MemorySystem mem(cfg, Technique::BaselinePeriodicAll);
  (void)mem.access(0, 0x0, true, 0);
  // Evict 0x0 from L1 first so its dirtiness reaches the L2...
  (void)mem.access(0, 0x20, false, 1000);
  (void)mem.access(0, 0x40, false, 2000);
  const auto writes_before = mem.mm_stats().writes;
  // ...then thrash the L2 set so the dirty line goes to memory.
  for (block_t i = 1; i <= 8; ++i) {
    (void)mem.access(0, i * 256, false, 10'000 * i);
  }
  EXPECT_GT(mem.mm_stats().writes, writes_before);
  EXPECT_GT(mem.stats().mm_writebacks, 0u);
}

TEST(MemorySystem, IntervalTickIntegratesActiveFraction) {
  const SystemConfig cfg = tiny();
  MemorySystem mem(cfg, Technique::Esteem);
  // Touch a single hot block so the algorithm shrinks everything to A_min.
  for (cycle_t t = 0; t < 50'000; t += 50) (void)mem.access(0, 0x7, false, t);
  mem.tick_interval(50'000);
  EXPECT_LT(mem.active_fraction(), 1.0);
  const auto counters = mem.energy_counters(100'000);
  EXPECT_LT(counters.fa_seconds, counters.seconds);
  EXPECT_GT(counters.transitions, 0u);
}

TEST(MemorySystem, ResetMeasurementZeroesCounters) {
  const SystemConfig cfg = tiny();
  MemorySystem mem(cfg, Technique::BaselinePeriodicAll);
  // Spread accesses past several 10k-cycle retention boundaries.
  for (block_t b = 0; b < 100; ++b) (void)mem.access(0, b, b % 3 == 0, b * 300);
  EXPECT_GT(mem.refreshes(), 0u);
  EXPECT_GT(mem.l2_stats().accesses(), 0u);

  mem.reset_measurement(10'000'000);
  EXPECT_EQ(mem.refreshes(), 0u);
  EXPECT_EQ(mem.l2_stats().accesses(), 0u);
  EXPECT_EQ(mem.mm_stats().accesses(), 0u);
  const auto counters = mem.energy_counters(10'000'000);
  EXPECT_DOUBLE_EQ(counters.seconds, 0.0);
  // State survives: the warmed lines still hit.
  const cycle_t lat = mem.access(0, 1, false, 10'000'001);
  EXPECT_LE(lat, cfg.l1.latency_cycles + cfg.l2.latency_cycles + 50);
}

TEST(MemorySystem, ModuleWaysExposedOnlyForEsteem) {
  const SystemConfig cfg = tiny();
  MemorySystem baseline(cfg, Technique::BaselinePeriodicAll);
  EXPECT_TRUE(baseline.module_active_ways().empty());
  MemorySystem esteem(cfg, Technique::Esteem);
  EXPECT_EQ(esteem.module_active_ways().size(), cfg.esteem.modules);
}

TEST(MemorySystem, PerCorePrivateL1s) {
  SystemConfig cfg = tiny();
  cfg.ncores = 2;
  MemorySystem mem(cfg, Technique::BaselinePeriodicAll);
  (void)mem.access(0, 0x10, false, 0);
  // Core 1 misses its own L1 but hits the shared L2.
  const cycle_t lat = mem.access(1, 0x10, false, 1000);
  EXPECT_EQ(lat, cfg.l1.latency_cycles + cfg.l2.latency_cycles);
}

}  // namespace
}  // namespace esteem::cpu

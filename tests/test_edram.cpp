// Tests for retention model, baseline refresh policies, and the engine.
#include <gtest/gtest.h>

#include "cache/bank.hpp"
#include "edram/refresh_engine.hpp"
#include "edram/refresh_policy.hpp"
#include "edram/retention.hpp"

namespace esteem::edram {
namespace {

TEST(Retention, MatchesPaperCalibrationPoints) {
  // 50 us at 60 C (paper default) and 40 us at 105 C (Barth et al.).
  EXPECT_NEAR(retention_us_at(60.0), 50.0, 1e-9);
  EXPECT_NEAR(retention_us_at(105.0), 40.0, 1e-9);
}

TEST(Retention, DecreasesWithTemperature) {
  double prev = retention_us_at(0.0);
  for (double t = 10.0; t <= 120.0; t += 10.0) {
    const double r = retention_us_at(t);
    EXPECT_LT(r, prev);
    EXPECT_GT(r, 0.0);
    prev = r;
  }
}

TEST(PeriodicAll, RefreshesEveryLineEveryPeriod) {
  PeriodicAllPolicy p(1000, 100);
  EXPECT_EQ(p.advance(99), 0u);
  EXPECT_EQ(p.advance(100), 1000u);   // first boundary
  EXPECT_EQ(p.advance(150), 0u);
  EXPECT_EQ(p.advance(350), 2000u);   // boundaries at 200 and 300
  EXPECT_DOUBLE_EQ(p.refresh_lines_per_period(), 1000.0);
}

TEST(PeriodicAll, CountsInvalidLinesToo) {
  PeriodicAllPolicy p(64, 10);
  // The baseline refreshes all lines regardless of validity (§6.4): no
  // listener interaction changes the count.
  p.on_fill(0, 0, 1, 0);
  p.on_invalidate(0, 0, false, 1);
  EXPECT_EQ(p.advance(10), 64u);
}

TEST(PeriodicValid, RefreshesOnlyValidLines) {
  PeriodicValidPolicy p(100);
  p.on_fill(0, 0, 10, 5);
  p.on_fill(0, 1, 11, 6);
  EXPECT_EQ(p.advance(100), 2u);
  p.on_invalidate(0, 0, false, 110);
  EXPECT_EQ(p.advance(200), 1u);
  EXPECT_EQ(p.valid_lines(), 1u);
  EXPECT_DOUBLE_EQ(p.refresh_lines_per_period(), 1.0);
}

TEST(PeriodicValid, EmptyCacheRefreshesNothing) {
  PeriodicValidPolicy p(50);
  EXPECT_EQ(p.advance(1000), 0u);
}

TEST(Policies, RejectZeroRetention) {
  EXPECT_THROW(PeriodicAllPolicy(10, 0), std::invalid_argument);
  EXPECT_THROW(PeriodicValidPolicy(0), std::invalid_argument);
}

TEST(RefreshEngine, AccumulatesWindowAndTotal) {
  PeriodicAllPolicy p(100, 10);
  RefreshEngine engine(p, nullptr, 10.0);
  engine.advance(10);
  engine.advance(20);
  EXPECT_EQ(engine.window_refreshes(), 200u);
  engine.reset_window();
  EXPECT_EQ(engine.window_refreshes(), 0u);
  engine.advance(30);
  EXPECT_EQ(engine.window_refreshes(), 100u);
  EXPECT_EQ(engine.total_refreshes(), 300u);
}

TEST(RefreshEngine, SyncsBankLoadFromPolicyDemand) {
  PeriodicValidPolicy p(100);
  for (std::uint32_t w = 0; w < 8; ++w) p.on_fill(0, w, w, 0);
  cache::BankGroup banks(2, 8, 1, 1);
  RefreshEngine engine(p, &banks, 100.0);
  engine.sync_bank_load(0);
  // 8 valid lines per 100 cycles over 2 banks -> one slot per 25 cycles.
  (void)banks.access(0, 1000);
  (void)banks.access(1, 1000);
  EXPECT_NEAR(static_cast<double>(banks.total_refresh_slots()), 2.0 * 1000.0 / 25.0,
              4.0);
}

TEST(RefreshEngine, RejectsNonPositiveRetention) {
  PeriodicValidPolicy p(10);
  EXPECT_THROW(RefreshEngine(p, nullptr, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace esteem::edram

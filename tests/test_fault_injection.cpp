// Tests for the retention-fault injection subsystem: deterministic weak-cell
// map, per-epoch line classification, graceful slot retirement, and the
// end-to-end guarantees (bit-identical baseline at nominal refresh, seeded
// reproducibility of corrections under ECC-extended refresh).
#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "edram/fault_injection.hpp"
#include "sim/experiment.hpp"

namespace esteem {
namespace {

using cache::SetAssocCache;
using edram::CellRetentionModel;
using edram::FaultInjector;

/// Model so weak that at extension 16 nearly every cell decays: Phi(ln 16 -
/// ln 2) ~ 0.98. Lets the classification tests exercise every path with a
/// handful of lines.
FaultConfig aggressive() {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.median_multiple = 2.0;
  cfg.sigma = 1.0;
  return cfg;
}

CellRetentionModel model_of(const FaultConfig& cfg) {
  return CellRetentionModel{cfg.median_multiple, cfg.sigma};
}

TEST(FaultInjector, NominalExtensionHasNoWeakCells) {
  // Default model: the weak tail at extension 1 sits ~10 sigma below the
  // median, so the sampled map must be empty. This is what makes an enabled
  // injector metric-identical to a disabled one at nominal refresh.
  const FaultConfig cfg;
  const FaultInjector inj(cfg, 64, 8, 512, model_of(cfg));
  EXPECT_EQ(inj.total_weak_cells(1), 0u);
}

TEST(FaultInjector, MapIsSeedDeterministic) {
  const FaultConfig cfg = aggressive();
  const FaultInjector a(cfg, 16, 4, 512, model_of(cfg));
  const FaultInjector b(cfg, 16, 4, 512, model_of(cfg));
  for (std::uint32_t set = 0; set < 16; ++set) {
    for (std::uint32_t way = 0; way < 4; ++way) {
      for (std::uint32_t ext = 1; ext <= a.max_tracked_extension(); ++ext) {
        ASSERT_EQ(a.failed_bits(set, way, ext), b.failed_bits(set, way, ext));
      }
    }
  }
  EXPECT_GT(a.total_weak_cells(1), 0u);  // p(1) ~ 0.24: map is populated

  FaultConfig other = cfg;
  other.seed = cfg.seed + 1;
  const FaultInjector c(other, 16, 4, 512, model_of(other));
  bool differs = false;
  for (std::uint32_t set = 0; set < 16 && !differs; ++set) {
    for (std::uint32_t way = 0; way < 4 && !differs; ++way) {
      differs = c.failed_bits(set, way, 16) != a.failed_bits(set, way, 16);
    }
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjector, FailedBitsMonotoneInExtension) {
  const FaultConfig cfg = aggressive();
  const FaultInjector inj(cfg, 16, 4, 512, model_of(cfg));
  for (std::uint32_t set = 0; set < 16; ++set) {
    for (std::uint32_t way = 0; way < 4; ++way) {
      for (std::uint32_t ext = 2; ext <= inj.max_tracked_extension(); ++ext) {
        ASSERT_GE(inj.failed_bits(set, way, ext), inj.failed_bits(set, way, ext - 1));
      }
      // Beyond the tracked range the count clamps instead of growing.
      EXPECT_EQ(inj.failed_bits(set, way, 100),
                inj.failed_bits(set, way, inj.max_tracked_extension()));
    }
  }
}

TEST(FaultInjector, CorrectedLinesPayPenaltyUntilRefill) {
  const FaultConfig cfg = aggressive();
  SetAssocCache l2({4, 2}, "l2");
  FaultInjector inj(cfg, 4, 2, 512, model_of(cfg));

  const auto out = l2.access(/*blk=*/0, /*is_store=*/false, /*now=*/0);
  ASSERT_FALSE(out.hit);
  ASSERT_NE(out.way, cache::kNoWay);
  const std::uint32_t set = l2.set_index_of(0);

  // With ~502 of 512 cells weak at extension 16, correctable = 512 turns
  // every failure into a correction: nothing is invalidated.
  inj.on_refresh_epoch(l2, /*extension=*/16, /*correctable=*/512, 1, nullptr);
  EXPECT_EQ(inj.counters().scans, 1u);
  EXPECT_EQ(inj.counters().corrected_lines, 1u);
  EXPECT_EQ(inj.counters().uncorrectable(), 0u);
  EXPECT_TRUE(l2.slot_valid(set, out.way));

  // Every hit on the corrected line pays the decode penalty...
  EXPECT_TRUE(inj.corrected_hit(set, out.way));
  EXPECT_TRUE(inj.corrected_hit(set, out.way));
  EXPECT_EQ(inj.counters().corrected_reads, 2u);
  // ...until fresh data is filled, which restores full charge.
  inj.on_fill_slot(set, out.way);
  EXPECT_FALSE(inj.corrected_hit(set, out.way));
  EXPECT_EQ(inj.counters().corrected_reads, 2u);
}

TEST(FaultInjector, UncorrectableCleanVsDirtyAndUpperCopies) {
  const FaultConfig cfg = aggressive();
  SetAssocCache l2({4, 2}, "l2");
  FaultInjector inj(cfg, 4, 2, 512, model_of(cfg));

  l2.access(/*blk=*/0, /*is_store=*/false, 0);  // clean line, set 0
  l2.access(/*blk=*/1, /*is_store=*/true, 0);   // dirty line, set 1

  // correctable = 0: every weak line is detected-uncorrectable.
  std::uint64_t drops = 0;
  inj.on_refresh_epoch(l2, 16, 0, 1, [&](block_t, bool) {
    ++drops;
    return false;  // no dirty upper-level copy
  });
  EXPECT_EQ(inj.counters().refetches, 1u);         // clean line re-fetchable
  EXPECT_EQ(inj.counters().data_loss_events, 1u);  // dirty line is lost
  EXPECT_EQ(drops, 2u);                            // inclusion hook ran per drop
  EXPECT_EQ(l2.valid_lines(), 0u);                 // both invalidated

  // A clean L2 line whose upper-level copy is dirty is still data loss.
  l2.access(/*blk=*/0, /*is_store=*/false, 2);
  inj.on_refresh_epoch(l2, 16, 0, 3, [](block_t, bool) { return true; });
  EXPECT_EQ(inj.counters().data_loss_events, 2u);
  EXPECT_EQ(inj.counters().refetches, 1u);
}

TEST(FaultInjector, RepeatOffendersAreDisabled) {
  FaultConfig cfg = aggressive();
  cfg.disable_threshold = 3;
  SetAssocCache l2({4, 2}, "l2");
  FaultInjector inj(cfg, 4, 2, 512, model_of(cfg));

  // The slot fails each epoch it holds data; after `disable_threshold`
  // consecutive uncorrectable epochs it is retired.
  for (std::uint32_t epoch = 1; epoch <= cfg.disable_threshold; ++epoch) {
    const auto out = l2.access(/*blk=*/0, false, epoch);
    ASSERT_NE(out.way, cache::kNoWay);
    inj.on_refresh_epoch(l2, 16, 0, epoch, nullptr);
  }
  EXPECT_EQ(inj.counters().disabled_lines, 1u);
  EXPECT_EQ(l2.disabled_slots(), 1u);
  EXPECT_TRUE(l2.slot_disabled(l2.set_index_of(0), 0));

  // Disabled slots are skipped by allocation: the block lands elsewhere.
  const auto refill = l2.access(/*blk=*/0, false, 100);
  EXPECT_FALSE(refill.hit);
  EXPECT_NE(refill.way, 0u);
}

TEST(FaultInjector, DisabledSetDegradesToBypass) {
  FaultConfig cfg = aggressive();
  cfg.disable_threshold = 1;
  SetAssocCache l2({4, 2}, "l2");
  FaultInjector inj(cfg, 4, 2, 512, model_of(cfg));

  // Retire both ways of set 0.
  for (int round = 0; round < 2; ++round) {
    l2.access(/*blk=*/0, false, round);
    inj.on_refresh_epoch(l2, 16, 0, round, nullptr);
  }
  EXPECT_EQ(l2.disabled_slots(), 2u);

  // With every way retired, accesses to the set miss without allocating
  // instead of crashing or evicting a disabled slot.
  const auto out = l2.access(/*blk=*/0, false, 10);
  EXPECT_FALSE(out.hit);
  EXPECT_EQ(out.way, cache::kNoWay);
  EXPECT_EQ(l2.valid_lines(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end guarantees through System/run_experiment.

SystemConfig tiny() {
  SystemConfig cfg = SystemConfig::single_core();
  cfg.l1.geom = CacheGeometry{8ULL * 1024, 4, 64};
  cfg.l2.geom = CacheGeometry{512ULL * 1024, 8, 64};
  cfg.edram.retention_us = 5.0;
  cfg.esteem.interval_cycles = 100'000;
  return cfg;
}

sim::RunOutcome run(const SystemConfig& cfg, cpu::Technique t, instr_t instr) {
  sim::RunSpec spec;
  spec.config = cfg;
  spec.technique = t;
  spec.workload = {"gamess", {"gamess"}};
  spec.instr_per_core = instr;
  return sim::run_experiment(spec);
}

TEST(FaultIntegration, NominalBaselineBitIdentical) {
  SystemConfig off = tiny();
  SystemConfig on = tiny();
  on.faults.enabled = true;

  const sim::RunOutcome a = run(off, cpu::Technique::BaselinePeriodicAll, 120'000);
  const sim::RunOutcome b = run(on, cpu::Technique::BaselinePeriodicAll, 120'000);

  // At nominal refresh the weak-cell map is empty: the injector must be
  // metrically invisible, down to the last bit.
  EXPECT_EQ(b.raw.faults.uncorrectable(), 0u);
  EXPECT_EQ(b.raw.faults.corrected_lines, 0u);
  EXPECT_GT(b.raw.faults.scans, 0u);  // ...but it did scan
  EXPECT_EQ(a.raw.wall_cycles, b.raw.wall_cycles);
  ASSERT_EQ(a.raw.ipc.size(), b.raw.ipc.size());
  for (std::size_t i = 0; i < a.raw.ipc.size(); ++i) {
    EXPECT_EQ(a.raw.ipc[i], b.raw.ipc[i]);
  }
  EXPECT_EQ(a.raw.refreshes, b.raw.refreshes);
  EXPECT_EQ(a.raw.demand_misses, b.raw.demand_misses);
  EXPECT_EQ(a.energy.total_j(), b.energy.total_j());
  EXPECT_EQ(b.raw.disabled_slots, 0u);
}

TEST(FaultIntegration, EccExtendedCorrectionsAreSeededAndReproducible) {
  SystemConfig cfg = tiny();
  cfg.faults.enabled = true;
  cfg.faults.sigma = 0.5;  // max_safe_extension picks 4 -> weak tail is live

  const sim::RunOutcome a = run(cfg, cpu::Technique::EccExtended, 300'000);
  const sim::RunOutcome b = run(cfg, cpu::Technique::EccExtended, 300'000);

  // Seeded run reproducibly observes corrections, and the ECC strength was
  // provisioned so they stay correctable: no data loss at the chosen
  // extension.
  EXPECT_GT(a.raw.faults.corrected_lines, 0u);
  EXPECT_GT(a.raw.faults.corrected_reads, 0u);
  EXPECT_EQ(a.raw.faults.data_loss_events, 0u);
  EXPECT_EQ(a.raw.faults.corrected_lines, b.raw.faults.corrected_lines);
  EXPECT_EQ(a.raw.faults.corrected_reads, b.raw.faults.corrected_reads);
  EXPECT_EQ(a.raw.wall_cycles, b.raw.wall_cycles);

  // Corrections are visible in time and energy: corrected reads stall the
  // core (compare against a zero-latency decode with the same weak-cell map)
  // and charge an extra decode access each.
  SystemConfig free_decode = cfg;
  free_decode.faults.correction_latency_cycles = 0;
  const sim::RunOutcome c = run(free_decode, cpu::Technique::EccExtended, 300'000);
  EXPECT_GT(c.raw.faults.corrected_reads, 0u);
  EXPECT_GT(a.raw.wall_cycles, c.raw.wall_cycles);
  EXPECT_GT(a.energy.ecc_l2_j, 0.0);
}

}  // namespace
}  // namespace esteem

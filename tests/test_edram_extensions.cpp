// Tests for the extension refresh policies: Smart-Refresh (per-line
// timestamps) and ECC-assisted refresh-interval extension.

#include <cmath>
#include <gtest/gtest.h>

#include "edram/ecc.hpp"
#include "edram/smart_refresh.hpp"
#include "refrint/rpv.hpp"

namespace esteem::edram {
namespace {

// ---- Smart-Refresh ----------------------------------------------------

TEST(SmartRefresh, UntouchedLineRefreshedOncePerRetention) {
  SmartRefreshPolicy p(4, 4, /*retention=*/100, /*check=*/25);
  p.on_fill(0, 0, 7, 0);
  // Refreshed at the last check where its age is still within retention:
  // the check at t=100 sees that age would reach 125 > 100 by the next
  // check, so it refreshes there (age exactly 100 is still safe).
  EXPECT_EQ(p.advance(75), 0u);
  EXPECT_EQ(p.advance(100), 1u);
  // Refresh resets the clock: next due check is t=200.
  EXPECT_EQ(p.advance(175), 0u);
  EXPECT_EQ(p.advance(200), 1u);
}

TEST(SmartRefresh, TouchedLineSkipsRefresh) {
  SmartRefreshPolicy p(4, 4, 100, 25);
  p.on_fill(0, 0, 7, 0);
  std::uint64_t refreshed = 0;
  for (cycle_t t = 20; t <= 2000; t += 20) {
    refreshed += p.advance(t);
    p.on_touch(0, 0, t);  // touched every 20 cycles: never ages past 100
  }
  EXPECT_EQ(refreshed, 0u);
}

TEST(SmartRefresh, InvalidLinesIgnored) {
  SmartRefreshPolicy p(2, 2, 100, 25);
  p.on_fill(0, 0, 1, 0);
  p.on_fill(0, 1, 2, 0);
  p.on_invalidate(0, 1, false, 10);
  EXPECT_EQ(p.valid_lines(), 1u);
  EXPECT_EQ(p.advance(100), 1u);  // only the surviving line
}

TEST(SmartRefresh, NeverRefreshesMoreThanRpv) {
  // Same access pattern driven through both policies: Smart-Refresh is the
  // fine-grained limit of polyphase and must not exceed RPV's count.
  SmartRefreshPolicy smart(8, 4, 100, 25);
  refrint::PolyphaseValidPolicy rpv(8, 4, 4, 100);
  std::uint64_t s_total = 0, r_total = 0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    smart.on_fill(i, 0, i, i * 7);
    rpv.on_fill(i, 0, i, i * 7);
  }
  for (cycle_t t = 40; t <= 4000; t += 40) {
    s_total += smart.advance(t);
    r_total += rpv.advance(t);
    const std::uint32_t victim = static_cast<std::uint32_t>(t / 40 % 8);
    if (victim < 4) {  // half the lines are hot
      smart.on_touch(victim, 0, t);
      rpv.on_touch(victim, 0, t);
    }
  }
  EXPECT_LE(s_total, r_total);
  EXPECT_GT(r_total, 0u);
}

TEST(SmartRefresh, Validation) {
  EXPECT_THROW(SmartRefreshPolicy(2, 2, 0, 1), std::invalid_argument);
  EXPECT_THROW(SmartRefreshPolicy(2, 2, 100, 0), std::invalid_argument);
  EXPECT_THROW(SmartRefreshPolicy(2, 2, 100, 101), std::invalid_argument);
}

// ---- ECC refresh extension ---------------------------------------------

TEST(Ecc, CellFailureMonotoneInExtension) {
  const CellRetentionModel model;
  double prev = 0.0;
  for (double ext : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    const double p = cell_failure_probability(ext, model);
    EXPECT_GE(p, prev);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
  // At the nominal period (guard-banded worst case) failures are negligible;
  // at the median multiple they are 50%.
  EXPECT_LT(cell_failure_probability(1.0, model), 1e-15);
  EXPECT_NEAR(cell_failure_probability(model.median_multiple, model), 0.5, 1e-9);
}

TEST(Ecc, StrongerCodeToleratesLongerExtension) {
  const CellRetentionModel model;
  const std::uint32_t weak = max_safe_extension(512, 1, 1e-9, model);
  const std::uint32_t strong = max_safe_extension(512, 8, 1e-9, model);
  EXPECT_GE(strong, weak);
  EXPECT_GE(weak, 1u);
  // With the default model, a 4-bit-correcting code buys a useful extension.
  EXPECT_GT(max_safe_extension(512, 4, 1e-9, model), 2u);
}

TEST(Ecc, LineFailureBinomialTail) {
  const CellRetentionModel model;
  // No correction: line fails if any bit fails.
  const double p_cell = cell_failure_probability(8.0, model);
  const double p_line = line_failure_probability(512, 0, 8.0, model);
  EXPECT_NEAR(p_line, 1.0 - std::pow(1.0 - p_cell, 512.0), 1e-9);
  // Correction strictly reduces the failure probability.
  EXPECT_LT(line_failure_probability(512, 2, 8.0, model), p_line);
}

TEST(Ecc, LineFailureEdgeCases) {
  const CellRetentionModel model;
  // A code at least as strong as the line can never lose it — including the
  // degenerate correctable > bits case, which previously drove the binomial
  // coefficient negative and returned NaN.
  EXPECT_DOUBLE_EQ(line_failure_probability(512, 512, 16.0, model), 0.0);
  EXPECT_DOUBLE_EQ(line_failure_probability(512, 600, 16.0, model), 0.0);
  EXPECT_DOUBLE_EQ(line_failure_probability(1, 1, 1e6, model), 0.0);
  // At the nominal interval the cell probability underflows to ~0.
  EXPECT_DOUBLE_EQ(line_failure_probability(512, 0, 1.0, model), 0.0);

  // Extreme spreads stay finite and ordered. A tight distribution
  // (sigma -> 0) snaps to a step at the median; a wide one leaks failures
  // even at short extensions.
  const CellRetentionModel tight{32.0, 0.01};
  const CellRetentionModel wide{32.0, 5.0};
  for (const auto& m : {tight, wide}) {
    for (double ext : {1.0, 2.0, 31.0, 32.0, 33.0, 1024.0}) {
      const double p = line_failure_probability(512, 4, ext, m);
      EXPECT_TRUE(std::isfinite(p));
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
  EXPECT_LT(line_failure_probability(512, 4, 16.0, tight), 1e-12);
  EXPECT_GT(line_failure_probability(512, 4, 16.0, wide), 0.1);
  EXPECT_NEAR(cell_failure_probability(32.0, tight), 0.5, 1e-9);
  EXPECT_NEAR(cell_failure_probability(32.0, wide), 0.5, 1e-9);
}

TEST(Ecc, MaxSafeExtensionMonotoneInStrength) {
  const CellRetentionModel model;
  std::uint32_t prev = 0;
  for (std::uint32_t t : {0u, 1u, 2u, 4u, 8u, 16u, 64u, 512u}) {
    const std::uint32_t ext = max_safe_extension(512, t, 1e-9, model);
    EXPECT_GE(ext, prev) << "t=" << t;
    EXPECT_GE(ext, 1u);
    prev = ext;
  }
  // correctable >= bits: every extension is safe, so the limit is returned.
  EXPECT_EQ(max_safe_extension(512, 512, 1e-9, model, 64), 64u);
}

TEST(Ecc, StorageOverhead) {
  EXPECT_DOUBLE_EQ(ecc_storage_overhead(512, 0), 0.0);
  // t=4 on 512 data bits: 4 * ceil(log2(512)+1) = 40 check bits.
  EXPECT_NEAR(ecc_storage_overhead(512, 4), 40.0 / 512.0, 1e-12);
  EXPECT_GT(ecc_storage_overhead(512, 8), ecc_storage_overhead(512, 4));
}

TEST(EccPolicy, RefreshesAtExtendedInterval) {
  EccRefreshPolicy p(100, 4);  // refresh every 400 cycles
  p.on_fill(0, 0, 1, 0);
  p.on_fill(0, 1, 2, 0);
  EXPECT_EQ(p.advance(399), 0u);
  EXPECT_EQ(p.advance(400), 2u);
  EXPECT_EQ(p.advance(799), 0u);
  EXPECT_EQ(p.advance(800), 2u);
  // Bank-load demand is normalized to the nominal period.
  EXPECT_DOUBLE_EQ(p.refresh_lines_per_period(), 0.5);
}

TEST(EccPolicy, Validation) {
  EXPECT_THROW(EccRefreshPolicy(0, 2), std::invalid_argument);
  EXPECT_THROW(EccRefreshPolicy(100, 0), std::invalid_argument);
}

}  // namespace
}  // namespace esteem::edram

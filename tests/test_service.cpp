// Tests for the multi-process sweep service: spec wire codec, lease
// claim/renew/expiry/steal with injected clocks, zombie fencing, duplicate
// dedupe, digest-conflict detection, and in-process worker/coordinator
// byte-identity against run_sweep.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "resilience/journal_file.hpp"
#include "resilience/shutdown.hpp"
#include "service/coordinator.hpp"
#include "service/lease_table.hpp"
#include "service/observer.hpp"
#include "service/wire.hpp"
#include "service/worker.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "sim/report.hpp"
#include "sim/run_cache.hpp"
#include "sim/runner.hpp"
#include "sim/sweep_journal.hpp"

namespace esteem::service {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() / ("esteem-service-" + tag)) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

SystemConfig tiny() {
  SystemConfig cfg = SystemConfig::single_core();
  cfg.l1.geom = CacheGeometry{8ULL * 1024, 4, 64};
  cfg.l2.geom = CacheGeometry{512ULL * 1024, 8, 64};
  cfg.edram.retention_us = 5.0;
  cfg.esteem.modules = 8;
  cfg.esteem.interval_cycles = 100'000;
  cfg.esteem.sampling_ratio = 32;
  cfg.esteem.a_min = 2;
  return cfg;
}

sim::SweepSpec tiny_sweep(std::vector<std::string> workloads,
                          std::vector<sim::Technique> techniques) {
  sim::SweepSpec spec;
  spec.config = tiny();
  for (const std::string& w : workloads) spec.workloads.push_back({w, {w}});
  spec.techniques = std::move(techniques);
  spec.instr_per_core = 100'000;
  spec.warmup_instr_per_core = 20'000;
  spec.threads = 1;
  return spec;
}

sim::TechniqueComparison sample_comparison(double salt) {
  sim::TechniqueComparison c;
  c.workload = "mcf";
  c.technique = sim::Technique::RefrintRPV;
  c.energy_saving_pct = 12.25 + salt;
  c.weighted_speedup = 1.0625;
  c.rpki_base = 400.5;
  c.rpki_tech = 100.125;
  c.active_ratio_pct = 87.5;
  return c;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// ---------------------------------------------------------------- wire codec

TEST(ServiceWire, RoundTripIsExact) {
  sim::SweepSpec spec = tiny_sweep({"mcf", "gobmk+namd"},
                                   {sim::Technique::Esteem, sim::Technique::RefrintRPV});
  spec.workloads[1].benchmarks = {"gobmk", "namd"};  // multi-program workload
  // Values 6-significant-digit INI formatting would mangle — the codec must
  // carry f64 bits, not text.
  spec.config.esteem.alpha = 1.0 / 3.0;
  spec.config.l2.refresh_occupancy_cycles = 4.000000123456789;
  spec.config.service.lease_ttl_ms = 1234;
  spec.config.observability.flush_ms = 250;
  spec.config.observability.events_max = 99;
  spec.config.observability.metrics_path = "out/metrics.om";
  spec.seed = 0xDEADBEEFCAFEF00DULL;

  sim::SweepSpec out;
  ASSERT_TRUE(decode_sweep_spec(encode_sweep_spec(spec), out));
  EXPECT_EQ(out.config.esteem.alpha, spec.config.esteem.alpha);
  EXPECT_EQ(out.config.l2.refresh_occupancy_cycles, spec.config.l2.refresh_occupancy_cycles);
  EXPECT_EQ(out.config.service.lease_ttl_ms, 1234u);
  EXPECT_EQ(out.config.observability.flush_ms, 250u);
  EXPECT_EQ(out.config.observability.events_max, 99u);
  EXPECT_EQ(out.config.observability.metrics_path, "out/metrics.om");
  EXPECT_EQ(out.seed, spec.seed);
  EXPECT_EQ(out.instr_per_core, spec.instr_per_core);
  ASSERT_EQ(out.workloads.size(), 2u);
  EXPECT_EQ(out.workloads[1].name, "gobmk+namd");
  ASSERT_EQ(out.workloads[1].benchmarks.size(), 2u);
  EXPECT_EQ(out.workloads[1].benchmarks[1], "namd");
  ASSERT_EQ(out.techniques.size(), 2u);
  EXPECT_EQ(out.techniques[0], sim::Technique::Esteem);
  // Decoded specs must hash identically — the service header's skew guard.
  EXPECT_EQ(sim::sweep_fingerprint_hash(out), sim::sweep_fingerprint_hash(spec));
}

TEST(ServiceWire, RejectsTruncationTrailingBytesAndForeignVersion) {
  const sim::SweepSpec spec = tiny_sweep({"mcf"}, {sim::Technique::Esteem});
  const std::string bytes = encode_sweep_spec(spec);
  sim::SweepSpec out;
  for (const std::size_t cut : {bytes.size() / 4, bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_FALSE(decode_sweep_spec(bytes.substr(0, cut), out)) << "cut=" << cut;
  }
  EXPECT_FALSE(decode_sweep_spec(bytes + "x", out));
  std::string wrong_version = bytes;
  wrong_version[0] = static_cast<char>(kWireVersion + 1);
  EXPECT_FALSE(decode_sweep_spec(wrong_version, out));
}

TEST(ServiceWire, V4PolicyFieldsRoundTripAndBadLockModeRejected) {
  sim::SweepSpec spec = tiny_sweep({"mcf"}, {sim::Technique::Esteem});
  spec.config.resilience.max_consecutive_errors = 7;
  spec.config.service.lock_mode = "lockfile";

  const std::string bytes = encode_sweep_spec(spec);
  sim::SweepSpec out;
  ASSERT_TRUE(decode_sweep_spec(bytes, out));
  EXPECT_EQ(out.config.resilience.max_consecutive_errors, 7u);
  EXPECT_EQ(out.config.service.lock_mode, "lockfile");

  // A corrupted enum string must be refused at decode time, not left for a
  // later validate() to throw on.
  const std::size_t pos = bytes.find("lockfile");
  ASSERT_NE(pos, std::string::npos);
  std::string corrupt = bytes;
  corrupt[pos] = 'x';
  EXPECT_FALSE(decode_sweep_spec(corrupt, out));

  // Same for a spec that was encoded with an unknown mode outright.
  spec.config.service.lock_mode = "flock";
  EXPECT_FALSE(decode_sweep_spec(encode_sweep_spec(spec), out));
}

// Totality fuzz: decode_sweep_spec must never crash, over-allocate, or hang
// on hostile bytes, and anything it accepts must be self-consistent (its
// re-encoding is a fixed point of encode∘decode). Deterministic seed — a
// failure here reproduces exactly.
TEST(ServiceWireFuzz, DecodeIsTotalAndAcceptedSpecsAreSelfConsistent) {
  sim::SweepSpec spec = tiny_sweep({"mcf", "gobmk+namd"},
                                   {sim::Technique::Esteem, sim::Technique::RefrintRPV});
  spec.workloads[1].benchmarks = {"gobmk", "namd"};
  spec.config.service.lock_mode = "lockfile";
  spec.config.resilience.max_consecutive_errors = 3;
  spec.config.observability.metrics_path = "m.om";
  const std::string bytes = encode_sweep_spec(spec);

  const auto check = [](const std::string& mutated) {
    sim::SweepSpec out;
    if (!decode_sweep_spec(mutated, out)) return;
    // Accepted: the decoded spec must survive its own round trip exactly.
    const std::string enc = encode_sweep_spec(out);
    sim::SweepSpec again;
    ASSERT_TRUE(decode_sweep_spec(enc, again));
    EXPECT_EQ(encode_sweep_spec(again), enc);
  };

  // Every prefix (covers all truncation points, including mid-field).
  sim::SweepSpec out;
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_FALSE(decode_sweep_spec(bytes.substr(0, n), out)) << "prefix " << n;
  }

  std::uint64_t state = 0x243F6A8885A308D3ULL;  // deterministic xorshift64
  const auto rng = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < 700; ++i) {  // single-byte flips
    std::string m = bytes;
    m[rng() % m.size()] = static_cast<char>(rng());
    check(m);
  }
  for (int i = 0; i < 700; ++i) {  // flip then truncate
    std::string m = bytes;
    m[rng() % m.size()] = static_cast<char>(rng());
    check(m.substr(0, rng() % (m.size() + 1)));
  }
  for (int i = 0; i < 700; ++i) {  // insert junk at a random offset
    std::string m = bytes;
    m.insert(rng() % (m.size() + 1), 1, static_cast<char>(rng()));
    check(m);
  }
  // Length-prefix bombs: blast each plausible count field with huge values.
  // A flipped length byte must fail cleanly, not reserve() gigabytes.
  for (int i = 0; i < 200; ++i) {
    std::string m = bytes;
    const std::size_t at = rng() % (m.size() - 8);
    for (int b = 0; b < 8; ++b) m[at + b] = static_cast<char>(0xFF);
    check(m);
  }
}

// ---------------------------------------------------------------- lease table

TEST(LeaseTable, PlanOpenRoundTripAndForeignSweepRefused) {
  const TempDir dir("plan");
  const sim::SweepSpec spec = tiny_sweep({"mcf", "gobmk"}, {sim::Technique::RefrintRPV});

  LeaseTable planner;
  ASSERT_TRUE(planner.create(dir.str(), spec, "planner")) << planner.last_error();
  ASSERT_TRUE(planner.create(dir.str(), spec, "planner"));  // idempotent re-plan

  LeaseTable worker;
  ASSERT_TRUE(worker.open(dir.str(), "w1")) << worker.last_error();
  EXPECT_EQ(worker.n_rows(), 2u);
  EXPECT_EQ(worker.sweep_hash(), planner.sweep_hash());
  EXPECT_EQ(worker.spec().config.l2.geom.size_bytes, 512ULL * 1024);
  EXPECT_EQ(worker.row_workload(1).name, "gobmk");
  EXPECT_EQ(worker.row_technique(0), sim::Technique::RefrintRPV);

  // Same dir, different sweep (seed changed): must be refused, both ways.
  sim::SweepSpec other = spec;
  other.seed += 1;
  LeaseTable clash;
  EXPECT_FALSE(clash.create(dir.str(), other, "planner"));
  EXPECT_NE(clash.last_error().find("different sweep"), std::string::npos);

  const TableState st = worker.load_state();
  ASSERT_TRUE(st.ok) << st.error;
  EXPECT_EQ(st.rows.size(), 2u);
  EXPECT_FALSE(st.resolved());
}

TEST(LeaseTable, ClaimRenewExpiryAndSteal) {
  const TempDir dir("lease");
  // 1 workload x 2 techniques = 2 rows; default TTL 30 s, injected clocks.
  const sim::SweepSpec spec =
      tiny_sweep({"mcf"}, {sim::Technique::Esteem, sim::Technique::RefrintRPV});
  LeaseTable a, b;
  ASSERT_TRUE(a.create(dir.str(), spec, "worker-a"));
  ASSERT_TRUE(b.open(dir.str(), "worker-b"));

  const std::int64_t t0 = 1'000'000;
  const auto ca = a.claim(t0);
  ASSERT_TRUE(ca.has_value()) << a.last_error();
  EXPECT_EQ(ca->row, 0u);
  EXPECT_EQ(ca->generation, 1u);
  EXPECT_FALSE(ca->stolen);

  const auto cb = b.claim(t0);
  ASSERT_TRUE(cb.has_value()) << b.last_error();
  EXPECT_EQ(cb->row, 1u);  // Row 0 is leased; the claim moves on.
  EXPECT_NE(cb->lease_id, ca->lease_id);

  EXPECT_FALSE(b.claim(t0).has_value());  // Everything is leased and live.

  // A heartbeat at t0+25s extends row 0 to t0+55s...
  EXPECT_TRUE(a.renew(*ca, t0 + 25'000));
  // ...so at t0+40s the lease is still live and cannot be stolen (row 1's
  // un-renewed lease expired at t0+30s and is re-leased instead).
  const auto cb2 = b.claim(t0 + 40'000);
  ASSERT_TRUE(cb2.has_value());
  EXPECT_EQ(cb2->row, 1u);
  EXPECT_TRUE(cb2->stolen);
  EXPECT_EQ(cb2->generation, 2u);

  // At t0+60s row 0's renewed lease has lapsed too: stolen, generation 2.
  const auto steal = b.claim(t0 + 60'000);
  ASSERT_TRUE(steal.has_value());
  EXPECT_EQ(steal->row, 0u);
  EXPECT_TRUE(steal->stolen);
  EXPECT_EQ(steal->generation, 2u);

  // The original holder's renewal now fails — its lease is gone.
  EXPECT_FALSE(a.renew(*ca, t0 + 61'000));
}

TEST(LeaseTable, ZombieWriterIsFencedAndDuplicatesDedupe) {
  const TempDir dir("fence");
  const sim::SweepSpec spec = tiny_sweep({"mcf"}, {sim::Technique::RefrintRPV});
  LeaseTable a, b;
  ASSERT_TRUE(a.create(dir.str(), spec, "worker-a"));
  ASSERT_TRUE(b.open(dir.str(), "worker-b"));

  const std::int64_t t0 = 5'000'000;
  const auto ca = a.claim(t0);
  ASSERT_TRUE(ca.has_value());

  // A stalls past its TTL; B steals the row and completes it.
  const auto cb = b.claim(t0 + 31'000);
  ASSERT_TRUE(cb.has_value());
  EXPECT_EQ(cb->row, ca->row);
  EXPECT_EQ(b.complete(*cb, sample_comparison(0.0)), AppendStatus::kOk);

  // The zombie wakes up with a *different* result: the stale lease fences
  // the append — the journal must not gain a conflicting cell.
  EXPECT_EQ(a.complete(*ca, sample_comparison(99.0)), AppendStatus::kFenced);
  // With the *identical* result the row digest matches: deduplicated, and
  // also nothing written.
  EXPECT_EQ(a.complete(*ca, sample_comparison(0.0)), AppendStatus::kDuplicate);
  EXPECT_EQ(a.fail(*ca, sim::RunError{"mcf", "rpv", "late", "run"}),
            AppendStatus::kDuplicate);

  const TableState st = b.load_state();
  ASSERT_TRUE(st.ok);
  EXPECT_TRUE(st.resolved());
  EXPECT_EQ(st.completed, 1u);
  EXPECT_FALSE(st.conflict);
  EXPECT_EQ(st.rows[0].owner, "worker-b");
  std::size_t cells = 0;
  for (const auto& rec : resilience::JournalFile::load(LeaseTable::journal_path(dir.str()))
                             .records) {
    cells += rec.kind == "cell" ? 1 : 0;
  }
  EXPECT_EQ(cells, 1u);  // B's append only; the zombie never journaled.
}

TEST(LeaseTable, ConflictingDigestsAreAHardIntegrityError) {
  const TempDir dir("conflict");
  const sim::SweepSpec spec = tiny_sweep({"mcf"}, {sim::Technique::RefrintRPV});
  LeaseTable a;
  ASSERT_TRUE(a.create(dir.str(), spec, "worker-a"));
  const auto ca = a.claim(1000);
  ASSERT_TRUE(ca.has_value());
  ASSERT_EQ(a.complete(*ca, sample_comparison(0.0)), AppendStatus::kOk);

  // Forge what a mismatched binary would do: a second success cell for the
  // same row with a different digest (the append/append race the fence
  // cannot close is resolved at read time).
  const std::string data = sim::encode_comparisons({sample_comparison(99.0)});
  resilience::JournalFile raw;
  ASSERT_TRUE(raw.open(LeaseTable::journal_path(dir.str()), /*truncate=*/false));
  resilience::JournalRecord rec;
  rec.kind = "cell";
  rec.fields = {{"row", "0"},
                {"id", hex_u64(ca->lease_id)},
                {"gen", "1"},
                {"digest", hex_u64(sim::fingerprint_hash(data))},
                {"owner", "evil-twin"},
                {"data", to_hex(data)}};
  ASSERT_TRUE(raw.append(rec));
  raw.close();

  const TableState st = a.load_state();
  ASSERT_TRUE(st.ok);
  EXPECT_TRUE(st.conflict);

  CoordinatorOptions opts;
  opts.dir = dir.str();
  opts.quiet = true;
  const CollectResult collected = wait_and_collect(opts);
  EXPECT_FALSE(collected.ok);
  EXPECT_TRUE(collected.integrity_error);
  EXPECT_EQ(report_collect(collected, opts), kExitIntegrity);
}

TEST(LeaseTable, DamagedInteriorJournalLinesAreSkippedNotFatal) {
  const TempDir dir("damage");
  const sim::SweepSpec spec = tiny_sweep({"mcf"}, {sim::Technique::RefrintRPV});
  LeaseTable a;
  ASSERT_TRUE(a.create(dir.str(), spec, "worker-a"));
  const auto ca = a.claim(1000);
  ASSERT_TRUE(ca.has_value());

  // A crashed writer's torn fragment lands mid-file (no trailing newline
  // would glue it to the next line; here it sits on its own line).
  {
    std::ofstream out(LeaseTable::journal_path(dir.str()), std::ios::app | std::ios::binary);
    out << "{\"v\":1,\"kind\":\"cell\",\"row\":\"0\",\"dig\n";
  }
  ASSERT_EQ(a.complete(*ca, sample_comparison(0.0)), AppendStatus::kOk);

  const TableState st = a.load_state();
  ASSERT_TRUE(st.ok) << st.error;
  EXPECT_EQ(st.damaged_lines, 1u);
  EXPECT_TRUE(st.resolved());
  EXPECT_EQ(st.completed, 1u);
}

// ------------------------------------------------------- worker + coordinator

TEST(ServiceEndToEnd, WorkerResolvesSweepByteIdenticalToRunSweep) {
  const TempDir dir("e2e");
  const sim::SweepSpec spec = tiny_sweep({"gamess", "gobmk"}, {sim::Technique::RefrintRPV});

  std::string plan_error;
  ASSERT_TRUE(plan_service(dir.str(), spec, plan_error)) << plan_error;

  resilience::clear_shutdown();
  const std::string saved_memo = sim::RunCache::instance().disk_dir();
  WorkerOptions wopts;
  wopts.dir = dir.str();
  wopts.owner = "inproc";
  wopts.quiet = true;
  const WorkerReport rep = run_worker(wopts);
  sim::RunCache::instance().set_disk_dir(saved_memo);
  ASSERT_TRUE(rep.ok()) << rep.error;
  EXPECT_EQ(rep.rows_completed, 2u);
  EXPECT_FALSE(rep.interrupted);

  CoordinatorOptions copts;
  copts.dir = dir.str();
  copts.csv_path = (dir.path / "service.csv").string();
  copts.quiet = true;
  const CollectResult collected = wait_and_collect(copts);
  ASSERT_TRUE(collected.ok) << collected.error;

  sim::RunCache::instance().clear();
  const sim::SweepResult direct = sim::run_sweep(spec);
  const std::string direct_csv = (dir.path / "direct.csv").string();
  sim::write_csv(direct, direct_csv);

  EXPECT_EQ(read_file(copts.csv_path), read_file(direct_csv));
  EXPECT_EQ(sim::figure_report(collected.result, "sweep"),
            sim::figure_report(direct, "sweep"));
  EXPECT_EQ(report_collect(collected, CoordinatorOptions{}), 0);
}

// lock_mode=lockfile routes every journal append through the O_EXCL lock
// file (the NFS-safe fallback). Same sweep, same bytes — and no lock file
// left behind once the worker exits.
TEST(ServiceEndToEnd, LockfileModeResolvesByteIdenticalToRunSweep) {
  const TempDir dir("lockfile-e2e");
  sim::SweepSpec spec = tiny_sweep({"gamess", "gobmk"}, {sim::Technique::RefrintRPV});
  spec.config.service.lock_mode = "lockfile";

  std::string plan_error;
  ASSERT_TRUE(plan_service(dir.str(), spec, plan_error)) << plan_error;

  resilience::clear_shutdown();
  const std::string saved_memo = sim::RunCache::instance().disk_dir();
  WorkerOptions wopts;
  wopts.dir = dir.str();
  wopts.owner = "inproc-lockfile";
  wopts.quiet = true;
  const WorkerReport rep = run_worker(wopts);
  sim::RunCache::instance().set_disk_dir(saved_memo);
  ASSERT_TRUE(rep.ok()) << rep.error;
  EXPECT_EQ(rep.rows_completed, 2u);
  EXPECT_FALSE(fs::exists(LeaseTable::journal_path(dir.str()) + ".lock"));

  CoordinatorOptions copts;
  copts.dir = dir.str();
  copts.csv_path = (dir.path / "service.csv").string();
  copts.quiet = true;
  const CollectResult collected = wait_and_collect(copts);
  ASSERT_TRUE(collected.ok) << collected.error;

  sim::RunCache::instance().clear();
  const sim::SweepResult direct = sim::run_sweep(spec);
  const std::string direct_csv = (dir.path / "direct.csv").string();
  sim::write_csv(direct, direct_csv);
  EXPECT_EQ(read_file(copts.csv_path), read_file(direct_csv));
}

TEST(ServiceEndToEnd, FailedWorkloadsMirrorRunSweepErrors) {
  const TempDir dir("errors");
  const sim::SweepSpec spec =
      tiny_sweep({"gamess", "no-such-benchmark"}, {sim::Technique::RefrintRPV});

  std::string plan_error;
  ASSERT_TRUE(plan_service(dir.str(), spec, plan_error)) << plan_error;

  resilience::clear_shutdown();
  const std::string saved_memo = sim::RunCache::instance().disk_dir();
  WorkerOptions wopts;
  wopts.dir = dir.str();
  wopts.owner = "inproc";
  wopts.quiet = true;
  const WorkerReport rep = run_worker(wopts);
  sim::RunCache::instance().set_disk_dir(saved_memo);
  ASSERT_TRUE(rep.ok()) << rep.error;
  EXPECT_EQ(rep.rows_completed, 1u);
  EXPECT_EQ(rep.rows_failed, 1u);

  CoordinatorOptions copts;
  copts.dir = dir.str();
  copts.quiet = true;
  const CollectResult collected = wait_and_collect(copts);
  ASSERT_TRUE(collected.ok) << collected.error;

  sim::RunCache::instance().clear();
  const sim::SweepResult direct = sim::run_sweep(spec);
  ASSERT_EQ(collected.result.errors.size(), direct.errors.size());
  ASSERT_EQ(collected.result.errors.size(), 1u);
  EXPECT_EQ(collected.result.errors[0].workload, direct.errors[0].workload);
  EXPECT_EQ(collected.result.errors[0].technique, direct.errors[0].technique);
  EXPECT_EQ(collected.result.errors[0].what, direct.errors[0].what);
  EXPECT_EQ(collected.result.errors[0].phase, direct.errors[0].phase);
  EXPECT_EQ(sim::figure_report(collected.result, "sweep"),
            sim::figure_report(direct, "sweep"));
  EXPECT_EQ(report_collect(collected, CoordinatorOptions{}), 3);
}

// --------------------------------------------------------- observability plane

// RAII guard: the hub is process-global; leave it off for later tests.
struct TelemetryGuard {
  ~TelemetryGuard() { telemetry::Telemetry::instance().configure({}); }
};

TEST(Observer, SidecarWriteLoadRoundTripAndEventCap) {
  const TempDir dir("observer");
  TelemetryGuard guard;
  telemetry::TelemetryConfig tcfg;
  tcfg.counters = true;
  telemetry::Telemetry::instance().configure(tcfg);
  // Private metric names: the registry is process-global and other tests in
  // this binary tick memo.* themselves.
  telemetry::registry().counter("obs.test.hits").add(3);
  telemetry::registry().counter("obs.test.misses").add(1);

  ObservabilityConfig ocfg;
  ocfg.flush_ms = 1;
  ocfg.events_max = 4;
  Observer obs;
  ASSERT_TRUE(obs.open(dir.str(), "w one", ocfg)) << obs.last_error();
  EXPECT_TRUE(obs.enabled());

  const double dropped_before = telemetry::registry().value("observer.events_dropped");
  obs.event("info", "worker started");
  obs.flush_snapshot();
  telemetry::registry().counter("obs.test.hits").add(5);
  obs.flush_snapshot();
  obs.event("warn", "spooky", 0xAB, 2);
  obs.event("info", "third");
  obs.event("info", "fourth (last under the cap)");
  obs.event("info", "fifth: dropped");  // events_max = 4

  const auto fleet = load_worker_telemetry(dir.str());
  ASSERT_EQ(fleet.size(), 1u);
  const WorkerTelemetry& wt = fleet[0];
  EXPECT_EQ(wt.owner, "w one");  // from the snap source, not the sanitized file name
  EXPECT_EQ(wt.damaged_lines, 0u);
  ASSERT_EQ(wt.snapshots.size(), 2u);
  ASSERT_EQ(wt.events.size(), 4u);
  EXPECT_EQ(wt.events[1].severity, "warn");
  EXPECT_EQ(wt.events[1].lease_id, 0xABu);
  EXPECT_EQ(wt.events[1].row, 2u);
  EXPECT_EQ(telemetry::registry().value("observer.events_dropped"), dropped_before + 1.0);

  // Snapshots carry the registry as it was at each flush, exactly.
  auto raw_of = [](const telemetry::Snapshot& s,
                   const std::string& name) -> std::uint64_t {
    for (const auto& m : s.metrics) {
      if (m.name == name) return m.raw;
    }
    return ~0ULL;
  };
  EXPECT_EQ(raw_of(wt.snapshots[0], "obs.test.hits"), 3u);
  EXPECT_EQ(raw_of(wt.snapshots[1], "obs.test.hits"), 8u);
  EXPECT_EQ(raw_of(wt.snapshots[1], "obs.test.misses"), 1u);
}

TEST(Observer, TornSidecarRecordsAreSkippedAndCounted) {
  const TempDir dir("torn-sidecar");
  TelemetryGuard guard;
  telemetry::TelemetryConfig tcfg;
  tcfg.counters = true;
  telemetry::Telemetry::instance().configure(tcfg);
  telemetry::registry().counter("svc.rows").add(1);

  const std::string path = sidecar_path(dir.str(), "w2");
  {
    ObservabilityConfig ocfg;
    ocfg.flush_ms = 1;
    Observer obs;
    ASSERT_TRUE(obs.open(dir.str(), "w2", ocfg)) << obs.last_error();
    obs.flush_snapshot();
    // A crashed neighbour's fragment lands mid-file on its own line...
    {
      std::ofstream raw(path, std::ios::app | std::ios::binary);
      raw << "{\"v\":1,\"kind\":\"snap\",\"t\":\"1\",\"da\n";
    }
    obs.flush_snapshot();
  }
  auto fleet = load_worker_telemetry(dir.str());
  ASSERT_EQ(fleet.size(), 1u);
  EXPECT_EQ(fleet[0].snapshots.size(), 2u);
  EXPECT_EQ(fleet[0].damaged_lines, 1u);

  // ...and the worker dying mid-snapshot tears the tail: the torn record is
  // skipped and counted, the previous snapshot stands.
  fs::resize_file(path, fs::file_size(path) - 9);
  fleet = load_worker_telemetry(dir.str());
  ASSERT_EQ(fleet.size(), 1u);
  EXPECT_EQ(fleet[0].snapshots.size(), 1u);
  EXPECT_EQ(fleet[0].damaged_lines, 2u);
}

TEST(FleetStatusView, StatusJsonHasVersionedFixedKeyOrder) {
  // The exact machine contract of `--status --json` (and --serve): one line,
  // versioned, keys in this order. Changing it is a schema change — bump "v".
  FleetStatus fs;
  fs.sweep_hash = 0xABC;
  fs.now_ms = 5000;
  fs.rows = 4;
  fs.completed = 2;
  fs.failed = 1;
  fs.leased = 1;
  fs.conflict = false;
  fs.damaged_lines = 0;
  fs.eta_ms = 1500;
  WorkerHealth h;
  h.owner = "w-1";
  h.alive = true;
  h.heartbeat_age_ms = 120;
  h.rows_done = 2;
  h.rows_failed = 1;
  h.rows_stolen = 1;
  h.memo_hit_rate = 0.5;
  h.events = 3;
  fs.workers.push_back(h);
  resilience::EventRecord ev;
  ev.t_ms = 4000;
  ev.severity = "warn";
  ev.source = "w-1";
  ev.message = "restart \"now\"";
  ev.lease_id = 0x1F;
  fs.recent_events.push_back(ev);

  EXPECT_EQ(
      status_json(fs),
      "{\"v\":1,\"sweep\":\"0000000000000abc\",\"now_ms\":5000,\"rows\":4,"
      "\"completed\":2,\"failed\":1,\"pending\":1,\"leased\":1,\"conflict\":false,"
      "\"damaged_lines\":0,\"eta_ms\":1500,\"workers\":[{\"owner\":\"w-1\","
      "\"alive\":true,\"heartbeat_age_ms\":120,\"done\":2,\"failed\":1,"
      "\"stolen\":1,\"memo_hit_rate\":0.5000,\"events\":3}],\"events\":["
      "{\"t\":4000,\"sev\":\"warn\",\"src\":\"w-1\",\"lease\":\"000000000000001f\","
      "\"row\":-1,\"msg\":\"restart \\\"now\\\"\"}]}");

  // Unknown rate and unknown ETA keep their -1 sentinels.
  fs.workers[0].memo_hit_rate = -1.0;
  fs.eta_ms = -1;
  const std::string js = status_json(fs);
  EXPECT_NE(js.find("\"memo_hit_rate\":-1"), std::string::npos);
  EXPECT_NE(js.find("\"eta_ms\":-1"), std::string::npos);
}

TEST(FleetStatusView, EtaAndLivenessFollowTheJournal) {
  const TempDir dir("eta");
  const sim::SweepSpec spec =
      tiny_sweep({"mcf"}, {sim::Technique::Esteem, sim::Technique::RefrintRPV});
  LeaseTable a;
  ASSERT_TRUE(a.create(dir.str(), spec, "w-a"));
  const std::int64_t t0 = LeaseTable::wall_ms();
  const auto ca = a.claim(t0);
  ASSERT_TRUE(ca.has_value());
  ASSERT_EQ(a.complete(*ca, sample_comparison(0.0)), AppendStatus::kOk);
  const TableState st = a.load_state();

  // Seen recently: alive, and one timed row yields a finite ETA estimate.
  const FleetStatus live = collect_fleet_status(a, st, LeaseTable::wall_ms());
  EXPECT_EQ(live.rows, 2u);
  EXPECT_EQ(live.completed, 1u);
  ASSERT_EQ(live.workers.size(), 1u);
  EXPECT_EQ(live.workers[0].owner, "w-a");
  EXPECT_TRUE(live.workers[0].alive);
  EXPECT_EQ(live.workers[0].rows_done, 1u);
  EXPECT_GE(live.eta_ms, 0);

  // Past the TTL with a row still pending: nobody alive, ETA unknown.
  const std::int64_t ttl = spec.config.service.lease_ttl_ms;
  const FleetStatus stale = collect_fleet_status(a, st, LeaseTable::wall_ms() + ttl + 60'000);
  ASSERT_EQ(stale.workers.size(), 1u);
  EXPECT_FALSE(stale.workers[0].alive);
  EXPECT_GE(stale.workers[0].heartbeat_age_ms, ttl);
  EXPECT_EQ(stale.eta_ms, -1);
  EXPECT_NE(progress_line(stale).find("eta unknown"), std::string::npos);
}

TEST(ServiceEndToEnd, FleetStatusAndMergedOutputsFromObservedRun) {
  const TempDir dir("fleet");
  TelemetryGuard guard;
  sim::SweepSpec spec = tiny_sweep({"gamess", "gobmk"}, {sim::Technique::RefrintRPV});
  spec.config.observability.flush_ms = 10;

  std::string plan_error;
  ASSERT_TRUE(plan_service(dir.str(), spec, plan_error)) << plan_error;

  resilience::clear_shutdown();
  const std::string saved_memo = sim::RunCache::instance().disk_dir();
  WorkerOptions wopts;
  wopts.dir = dir.str();
  wopts.owner = "inproc-obs";
  wopts.quiet = true;
  const WorkerReport rep = run_worker(wopts);
  sim::RunCache::instance().set_disk_dir(saved_memo);
  ASSERT_TRUE(rep.ok()) << rep.error;
  EXPECT_EQ(rep.rows_completed, 2u);

  LeaseTable table;
  ASSERT_TRUE(table.open(dir.str(), "status"));
  const TableState st = table.load_state();
  ASSERT_TRUE(st.ok) << st.error;
  const FleetStatus fleet = collect_fleet_status(table, st, LeaseTable::wall_ms());
  EXPECT_EQ(fleet.rows, 2u);
  EXPECT_EQ(fleet.completed, 2u);
  EXPECT_EQ(fleet.eta_ms, 0);  // resolved
  EXPECT_EQ(fleet.damaged_lines, 0u);
  ASSERT_EQ(fleet.workers.size(), 1u);
  const WorkerHealth& wh = fleet.workers[0];
  EXPECT_EQ(wh.owner, "inproc-obs");
  EXPECT_TRUE(wh.alive);
  EXPECT_EQ(wh.rows_done, 2u);
  EXPECT_EQ(wh.rows_failed, 0u);
  EXPECT_EQ(wh.rows_stolen, 0u);
  EXPECT_GE(wh.memo_hit_rate, 0.0);  // sidecar snapshots carried memo counters
  EXPECT_GE(wh.events, 4u);          // started, claimed/completed x2, exiting
  EXPECT_FALSE(fleet.recent_events.empty());

  const std::string js = status_json(fleet);
  EXPECT_EQ(js.rfind("{\"v\":1,\"sweep\":\"", 0), 0u);
  EXPECT_NE(js.find("\"workers\":[{\"owner\":\"inproc-obs\""), std::string::npos);
  EXPECT_NE(progress_line(fleet).find("[fleet] 2/2 rows resolved"), std::string::npos);

  // Merged OpenMetrics from the sidecars passes the strict checker.
  const std::string metrics_path = (dir.path / "metrics.om").string();
  std::string error;
  ASSERT_TRUE(write_fleet_metrics(dir.str(), metrics_path, error)) << error;
  const std::string exposition = read_file(metrics_path);
  EXPECT_TRUE(telemetry::check_openmetrics(exposition, error)) << error;
  EXPECT_NE(exposition.find("esteem_worker_rows_completed"), std::string::npos);

  // Merged trace: coordinator is pid 0, the single worker pid 1, no pid 2,
  // and every row span resolved "done".
  const std::string trace_path = (dir.path / "trace.merged.json").string();
  ASSERT_TRUE(write_merged_trace(dir.str(), trace_path, error)) << error;
  const std::string trace = read_file(trace_path);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(trace.find("\"pid\":1"), std::string::npos);
  EXPECT_EQ(trace.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(trace.find("coordinator (fleet)"), std::string::npos);
  EXPECT_NE(trace.find("inproc-obs"), std::string::npos);
  EXPECT_NE(trace.find("rows_resolved"), std::string::npos);
  EXPECT_NE(trace.find("\"outcome\":\"done\""), std::string::npos);
  EXPECT_EQ(trace.find("\"outcome\":\"lost\""), std::string::npos);
}

TEST(FleetStatusView, MetricsWriterExplainsMissingSidecars) {
  const TempDir dir("no-sidecars");
  const sim::SweepSpec spec = tiny_sweep({"mcf"}, {sim::Technique::Esteem});
  std::string plan_error;
  ASSERT_TRUE(plan_service(dir.str(), spec, plan_error)) << plan_error;
  std::string error;
  EXPECT_FALSE(write_fleet_metrics(dir.str(), (dir.path / "m.om").string(), error));
  EXPECT_NE(error.find("flush_ms"), std::string::npos);
}

// ----------------------------------------------------------------- chaos gate

TEST(ServiceChaos, CrashKnobIsEnvGated) {
  SystemConfig cfg = tiny();
  cfg.service.crash_after_rows = 7;
  ::unsetenv("ESTEEM_CHAOS");
  ::unsetenv("ESTEEM_CRASH_AFTER_ROWS");
  EXPECT_EQ(resolve_crash_after_rows(cfg), 0u);  // config alone never arms it

  ::setenv("ESTEEM_CHAOS", "1", 1);
  EXPECT_EQ(resolve_crash_after_rows(cfg), 7u);
  ::setenv("ESTEEM_CRASH_AFTER_ROWS", "2", 1);
  EXPECT_EQ(resolve_crash_after_rows(cfg), 2u);
  ::unsetenv("ESTEEM_CHAOS");
  ::unsetenv("ESTEEM_CRASH_AFTER_ROWS");
}

}  // namespace
}  // namespace esteem::service

// Unit tests for src/trace: patterns, benchmark profiles, workload lists.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "trace/patterns.hpp"
#include "trace/spec_profiles.hpp"
#include "trace/workloads.hpp"

namespace esteem::trace {
namespace {

const GeneratorContext kCtx{4096, 64};

TEST(Streaming, SequentialAndWraps) {
  StreamingPattern p(100, 4);
  EXPECT_EQ(p.next_block(), 100u);
  EXPECT_EQ(p.next_block(), 101u);
  EXPECT_EQ(p.next_block(), 102u);
  EXPECT_EQ(p.next_block(), 103u);
  EXPECT_EQ(p.next_block(), 100u);  // wrapped
}

TEST(Streaming, StrideRespected) {
  StreamingPattern p(0, 8, 2);
  EXPECT_EQ(p.next_block(), 0u);
  EXPECT_EQ(p.next_block(), 2u);
  EXPECT_EQ(p.next_block(), 4u);
  EXPECT_EQ(p.next_block(), 6u);
  EXPECT_EQ(p.next_block(), 0u);
}

TEST(Streaming, RejectsZeroStride) {
  EXPECT_THROW(StreamingPattern(0, 8, 0), std::invalid_argument);
}

TEST(RandomWorkingSet, StaysInBounds) {
  RandomWorkingSetPattern p(1000, 64, 8, 0.5, 42);
  for (int i = 0; i < 5000; ++i) {
    const block_t b = p.next_block();
    EXPECT_GE(b, 1000u);
    EXPECT_LT(b, 1064u);
  }
}

TEST(RandomWorkingSet, HotSubsetIsHot) {
  RandomWorkingSetPattern p(0, 1000, 10, 0.8, 42);
  int hot = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hot += (p.next_block() < 10);
  // P(block < 10) = 0.8 + 0.2 * 10/1000 = 0.802.
  EXPECT_NEAR(static_cast<double>(hot) / n, 0.802, 0.02);
}

TEST(PointerChase, FullCyclePermutation) {
  PointerChasePattern p(0, 64, 7);
  std::set<block_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(p.next_block());
  EXPECT_EQ(seen.size(), 64u);  // Hull-Dobell LCG visits every block once
  EXPECT_LT(*seen.rbegin(), 64u);
}

TEST(PointerChase, DeterministicPerSeed) {
  PointerChasePattern a(0, 128, 3), b(0, 128, 3), c(0, 128, 4);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const block_t x = a.next_block();
    EXPECT_EQ(x, b.next_block());
    any_diff |= (x != c.next_block());
  }
  EXPECT_TRUE(any_diff);
}

TEST(MultiScan, SweepsEachDepthRegion) {
  const GeneratorContext ctx{16, 64};
  MultiScanPattern p(0, {2, 3}, ctx, 1);
  // Depth 2: region of 32 blocks, then depth 3: region of 48 blocks.
  for (block_t i = 0; i < 32; ++i) EXPECT_EQ(p.next_block(), i);
  for (block_t i = 0; i < 48; ++i) EXPECT_EQ(p.next_block(), i);
  // Back to depth 2.
  EXPECT_EQ(p.next_block(), 0u);
}

TEST(MultiScan, RejectsBadDepths) {
  EXPECT_THROW(MultiScanPattern(0, {}, kCtx), std::invalid_argument);
  EXPECT_THROW(MultiScanPattern(0, {0}, kCtx), std::invalid_argument);
}

TEST(Mixture, RespectsWeights) {
  std::vector<std::unique_ptr<BlockPattern>> kids;
  kids.push_back(std::make_unique<StreamingPattern>(0, 1));      // always block 0
  kids.push_back(std::make_unique<StreamingPattern>(1000, 1));   // always block 1000
  MixturePattern p(std::move(kids), {0.9, 0.1}, 42);
  int first = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) first += (p.next_block() == 0);
  EXPECT_NEAR(static_cast<double>(first) / n, 0.9, 0.02);
}

TEST(Mixture, ValidatesInput) {
  std::vector<std::unique_ptr<BlockPattern>> kids;
  kids.push_back(std::make_unique<StreamingPattern>(0, 1));
  EXPECT_THROW(MixturePattern(std::move(kids), {0.5, 0.5}, 1), std::invalid_argument);
  std::vector<std::unique_ptr<BlockPattern>> kids2;
  kids2.push_back(std::make_unique<StreamingPattern>(0, 1));
  EXPECT_THROW(MixturePattern(std::move(kids2), {0.0}, 1), std::invalid_argument);
}

TEST(Phased, SwitchesChildren) {
  std::vector<std::unique_ptr<BlockPattern>> kids;
  kids.push_back(std::make_unique<StreamingPattern>(0, 1));
  kids.push_back(std::make_unique<StreamingPattern>(7, 1));
  PhasedPattern p(std::move(kids), 3);
  EXPECT_EQ(p.next_block(), 0u);
  EXPECT_EQ(p.next_block(), 0u);
  EXPECT_EQ(p.next_block(), 0u);
  EXPECT_EQ(p.next_block(), 7u);
  EXPECT_EQ(p.next_block(), 7u);
  EXPECT_EQ(p.next_block(), 7u);
  EXPECT_EQ(p.next_block(), 0u);  // round-robin back
}

TEST(NestedWorkingSet, LevelsAreNestedAndInnerHot) {
  // ws 1024, 3 levels at size ratio 0.25: levels of 1024, 256, 64 blocks.
  NestedWorkingSetPattern p(0, 1024, 3, 0.25, 3.0, 42);
  std::uint64_t inner = 0, mid = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const block_t b = p.next_block();
    ASSERT_LT(b, 1024u);
    inner += (b < 64);
    mid += (b < 256);
  }
  // Weights 1 : 3 : 9 -> inner level picked ~9/13 of the time, plus the
  // fraction of outer-level draws landing inside it.
  EXPECT_GT(static_cast<double>(inner) / n, 0.6);
  EXPECT_GT(mid, inner);
}

TEST(NestedWorkingSet, Validation) {
  EXPECT_THROW(NestedWorkingSetPattern(0, 64, 0, 0.5, 2.0, 1), std::invalid_argument);
  EXPECT_THROW(NestedWorkingSetPattern(0, 64, 3, 1.5, 2.0, 1), std::invalid_argument);
  EXPECT_THROW(NestedWorkingSetPattern(0, 64, 3, 0.5, 0.0, 1), std::invalid_argument);
}

TEST(TemporalReuse, ReusesRecentBlocks) {
  // Child streams fresh blocks; with reuse_prob 0.9 about 90% of accesses
  // must revisit one of the last 8 distinct blocks.
  auto child = std::make_unique<StreamingPattern>(0, 1'000'000);
  TemporalReusePattern p(std::move(child), 0.9, 8, 42);
  block_t max_seen = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) max_seen = std::max(max_seen, p.next_block());
  // Fresh draws happen ~10% of the time, so the stream advanced ~n/10.
  EXPECT_NEAR(static_cast<double>(max_seen), n * 0.1, n * 0.02);
}

TEST(TemporalReuse, ReusedBlocksComeFromWindow) {
  auto child = std::make_unique<StreamingPattern>(0, 1'000'000);
  TemporalReusePattern p(std::move(child), 0.7, 16, 7);
  block_t newest = 0;
  for (int i = 0; i < 20000; ++i) {
    const block_t b = p.next_block();
    if (b > newest) {
      newest = b;  // fresh block from the stream
    } else {
      // Reuse: must be one of the 16 most recent distinct blocks.
      EXPECT_GE(b + 16, newest);
    }
  }
}

TEST(TemporalReuse, ZeroProbPassesThrough) {
  auto child = std::make_unique<StreamingPattern>(0, 100);
  TemporalReusePattern p(std::move(child), 0.0, 4, 1);
  for (block_t i = 0; i < 100; ++i) EXPECT_EQ(p.next_block(), i);
}

TEST(TemporalReuse, Validation) {
  EXPECT_THROW(TemporalReusePattern(nullptr, 0.5, 4, 1), std::invalid_argument);
  EXPECT_THROW(
      TemporalReusePattern(std::make_unique<StreamingPattern>(0, 4), 1.0, 4, 1),
      std::invalid_argument);
  EXPECT_THROW(
      TemporalReusePattern(std::make_unique<StreamingPattern>(0, 4), 0.5, 0, 1),
      std::invalid_argument);
}

TEST(MultiScan, NarrowSpanConfinesSets) {
  // Span of 4 sets in a 16-set cache: every generated block maps to sets 0-3.
  const GeneratorContext ctx{16, 64};
  MultiScanPattern p(0, {2, 3}, ctx, 1, 4);
  for (int i = 0; i < 200; ++i) {
    const block_t b = p.next_block();
    EXPECT_LT(b % 16, 4u) << "block " << b;
  }
}

TEST(InstructionMixer, GapMeanMatchesMemRatio) {
  auto pat = std::make_unique<StreamingPattern>(0, 1024);
  InstructionMixer mixer(std::move(pat), 0.25, 0.3, 42);
  double gaps = 0.0;
  int stores = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const MemRef r = mixer.next();
    gaps += r.gap;
    stores += r.is_store;
  }
  EXPECT_NEAR(gaps / n, 3.0, 0.15);  // mean gap = 1/0.25 - 1
  EXPECT_NEAR(static_cast<double>(stores) / n, 0.3, 0.02);
}

TEST(InstructionMixer, FullMemRatioHasZeroGaps) {
  auto pat = std::make_unique<StreamingPattern>(0, 16);
  InstructionMixer mixer(std::move(pat), 1.0, 0.0, 1);
  for (int i = 0; i < 100; ++i) {
    const MemRef r = mixer.next();
    EXPECT_EQ(r.gap, 0u);
    EXPECT_FALSE(r.is_store);
  }
}

TEST(InstructionMixer, ValidatesRatios) {
  EXPECT_THROW(
      InstructionMixer(std::make_unique<StreamingPattern>(0, 1), 0.0, 0.0, 1),
      std::invalid_argument);
  EXPECT_THROW(
      InstructionMixer(std::make_unique<StreamingPattern>(0, 1), 0.5, 1.5, 1),
      std::invalid_argument);
  EXPECT_THROW(InstructionMixer(nullptr, 0.5, 0.5, 1), std::invalid_argument);
}

TEST(Profiles, ThirtyFourUniqueBenchmarks) {
  const auto profiles = all_profiles();
  EXPECT_EQ(profiles.size(), 34u);
  std::unordered_set<std::string_view> names, acronyms;
  int hpc = 0, non_lru = 0, phased = 0;
  for (const auto& p : profiles) {
    EXPECT_TRUE(names.insert(p.name).second) << p.name;
    EXPECT_TRUE(acronyms.insert(p.acronym).second) << p.acronym;
    EXPECT_GT(p.mem_ratio, 0.0);
    EXPECT_LE(p.mem_ratio, 1.0);
    EXPECT_GE(p.store_ratio, 0.0);
    EXPECT_LE(p.store_ratio, 1.0);
    EXPECT_GT(p.ws_kb, 0.0);
    EXPECT_GE(p.phases, 1u);
    hpc += p.hpc;
    non_lru += p.non_lru;
    phased += (p.phases > 1);
  }
  EXPECT_EQ(hpc, 5);       // amg2013, comd, lulesh, nekbone, xsbench
  EXPECT_GE(non_lru, 2);   // omnetpp, xalancbmk (paper §3.1)
  EXPECT_GE(phased, 2);    // h264ref, gcc
}

TEST(Profiles, LookupByNameAndAcronym) {
  EXPECT_EQ(profile_by_name("h264ref").acronym, "H2");
  EXPECT_EQ(profile_by_name("H2").name, "h264ref");
  EXPECT_TRUE(profile_by_name("omnetpp").non_lru);
  EXPECT_TRUE(profile_by_name("xalancbmk").non_lru);
  EXPECT_THROW(profile_by_name("quake3"), std::out_of_range);
}

TEST(Profiles, GeneratorsBuildAndAreDeterministic) {
  for (const auto& p : all_profiles()) {
    auto a = make_generator(p, kCtx, 99);
    auto b = make_generator(p, kCtx, 99);
    ASSERT_NE(a, nullptr) << p.name;
    for (int i = 0; i < 200; ++i) {
      const MemRef ra = a->next();
      const MemRef rb = b->next();
      EXPECT_EQ(ra.block, rb.block) << p.name;
      EXPECT_EQ(ra.gap, rb.gap) << p.name;
      EXPECT_EQ(ra.is_store, rb.is_store) << p.name;
    }
  }
}

TEST(Workloads, Table1Lists) {
  const auto singles = single_core_workloads();
  const auto duals = dual_core_workloads();
  EXPECT_EQ(singles.size(), 34u);
  EXPECT_EQ(duals.size(), 17u);

  // Every dual-core pair uses valid benchmarks, and each of the 34
  // benchmarks appears exactly once across the pairs (Table 1).
  std::unordered_set<std::string> used;
  for (const auto& w : duals) {
    ASSERT_EQ(w.benchmarks.size(), 2u) << w.name;
    for (const auto& b : w.benchmarks) {
      EXPECT_NO_THROW(profile_by_name(b));
      EXPECT_TRUE(used.insert(b).second) << b << " reused";
    }
  }
  EXPECT_EQ(used.size(), 34u);
}

TEST(Workloads, PairNamesMatchPaper) {
  const auto duals = dual_core_workloads();
  EXPECT_EQ(duals.front().name, "GmDl");
  EXPECT_EQ(duals.back().name, "CoAm");
  bool has_gkne = false;
  for (const auto& w : duals) has_gkne |= (w.name == "GkNe");
  EXPECT_TRUE(has_gkne);
}

}  // namespace
}  // namespace esteem::trace

// Tests for the ESTEEM reconfiguration controller.
#include <gtest/gtest.h>

#include <vector>

#include "cache/cache.hpp"
#include "cache/module_map.hpp"
#include "common/config.hpp"
#include "core/controller.hpp"
#include "profiler/atd.hpp"
#include "profiler/leader_sets.hpp"

namespace esteem::core {
namespace {

constexpr std::uint32_t kSets = 64;
constexpr std::uint32_t kWays = 8;
constexpr std::uint32_t kModules = 4;   // 16 sets per module
constexpr std::uint32_t kRs = 16;       // exactly one leader per module

struct Fixture {
  cache::SetAssocCache l2{{kSets, kWays}, "L2"};
  cache::ModuleMap modules{kSets, kModules};
  profiler::LeaderSets leaders{kSets, kRs, modules};
  profiler::ModuleProfiler prof{modules, kWays, leaders};
  EsteemParams params;

  Fixture() {
    params.alpha = 0.97;
    params.a_min = 2;
    params.modules = kModules;
    params.sampling_ratio = kRs;
    params.min_leader_samples = 0;  // paper-exact decisions in unit tests
    params.history_weight = 0.0;    // last-interval-only, as in Algorithm 1
  }

  std::uint32_t leader_of(std::uint32_t module) const {
    for (std::uint32_t s = modules.first_set(module);
         s < modules.first_set(module) + modules.sets_per_module(); ++s) {
      if (leaders.is_leader(s)) return s;
    }
    ADD_FAILURE() << "no leader in module " << module;
    return 0;
  }

  // Concentrates this module's profiled hits at the given LRU position.
  void hits_at(std::uint32_t module, std::uint32_t pos, int count = 100) {
    const std::uint32_t s = leader_of(module);
    for (int i = 0; i < count; ++i) prof.record_hit(s, pos);
  }
};

TEST(Controller, ShrinksFollowersOnlyToAmin) {
  Fixture f;
  EsteemController ctl(f.l2, f.modules, f.leaders, f.prof, f.params);
  f.hits_at(0, 0);  // all hits MRU: shrink module 0 to A_min
  // Deep-position hits keep the other modules fully on, isolating module 0.
  for (std::uint32_t m = 1; m < kModules; ++m) f.hits_at(m, kWays - 1);

  const ReconfigResult r = ctl.run_interval(1000, nullptr);
  EXPECT_EQ(ctl.module_active_ways()[0], f.params.a_min);
  for (std::uint32_t s = 0; s < kSets; ++s) {
    if (f.modules.module_of(s) != 0) continue;
    if (f.leaders.is_leader(s)) {
      EXPECT_EQ(f.l2.active_ways(s), kWays) << "leader " << s << " reconfigured";
    } else {
      EXPECT_EQ(f.l2.active_ways(s), f.params.a_min);
    }
  }
  // N_L: 6 ways toggled in each of the 15 follower sets of module 0.
  EXPECT_EQ(r.transitions, 6u * 15u);
}

TEST(Controller, ModulesWithoutHitsAlsoShrink) {
  Fixture f;
  EsteemController ctl(f.l2, f.modules, f.leaders, f.prof, f.params);
  ctl.run_interval(1000, nullptr);
  // No profiled hits anywhere: every module drops to A_min.
  for (std::uint32_t m = 0; m < kModules; ++m) {
    EXPECT_EQ(ctl.module_active_ways()[m], f.params.a_min);
  }
}

TEST(Controller, DirtyLinesWrittenBackOnShrink) {
  Fixture f;
  EsteemController ctl(f.l2, f.modules, f.leaders, f.prof, f.params);

  // Fill one follower set of module 0 with 8 dirty lines.
  std::uint32_t victim_set = f.modules.first_set(0);
  while (f.leaders.is_leader(victim_set)) ++victim_set;
  for (std::uint32_t w = 0; w < kWays; ++w) {
    f.l2.access(victim_set + w * kSets, /*is_store=*/true, w);
  }

  std::vector<block_t> written;
  f.hits_at(0, 0);
  const ReconfigResult r =
      ctl.run_interval(1000, [&](block_t b) { written.push_back(b); });
  // 6 ways deactivated in that set, all dirty.
  EXPECT_GE(r.writebacks, 6u);
  EXPECT_EQ(written.size(), r.writebacks);
  EXPECT_EQ(r.clean_discards + r.writebacks, 6u);  // only that set held lines
}

TEST(Controller, GrowthTurnsWaysBackOn) {
  Fixture f;
  EsteemController ctl(f.l2, f.modules, f.leaders, f.prof, f.params);
  f.hits_at(0, 0);
  ctl.run_interval(1000, nullptr);
  ASSERT_EQ(ctl.module_active_ways()[0], 2u);

  // Next interval: hits spread to the deepest position -> need all ways.
  f.hits_at(0, kWays - 1);
  const ReconfigResult r = ctl.run_interval(2000, nullptr);
  EXPECT_EQ(ctl.module_active_ways()[0], kWays);
  EXPECT_EQ(r.writebacks, 0u);  // growing flushes nothing
  EXPECT_GT(r.transitions, 0u);
}

TEST(Controller, ActiveFractionAccountsForLeaders) {
  Fixture f;
  EsteemController ctl(f.l2, f.modules, f.leaders, f.prof, f.params);
  EXPECT_DOUBLE_EQ(ctl.active_fraction(), 1.0);

  ctl.run_interval(1000, nullptr);  // all modules -> A_min = 2
  // 4 leader sets fully on + 60 follower sets at 2/8.
  const double expected = (4.0 * 8 + 60.0 * 2) / (64.0 * 8);
  EXPECT_DOUBLE_EQ(ctl.active_fraction(), expected);
}

TEST(Controller, MaxWayDeltaLimitsStep) {
  Fixture f;
  f.params.max_way_delta = 2;
  EsteemController ctl(f.l2, f.modules, f.leaders, f.prof, f.params);
  f.hits_at(0, 0);
  ctl.run_interval(1000, nullptr);
  // Wanted 2, but may only move 2 ways per interval: 8 -> 6.
  EXPECT_EQ(ctl.module_active_ways()[0], 6u);
  f.hits_at(0, 0);
  ctl.run_interval(2000, nullptr);
  EXPECT_EQ(ctl.module_active_ways()[0], 4u);
}

TEST(Controller, HysteresisSuppressesReversal) {
  Fixture f;
  f.params.hysteresis_intervals = 2;
  EsteemController ctl(f.l2, f.modules, f.leaders, f.prof, f.params);

  f.hits_at(0, 0);
  ctl.run_interval(1000, nullptr);  // shrink to 2
  ASSERT_EQ(ctl.module_active_ways()[0], 2u);

  // Immediate reversal (grow) is suppressed...
  f.hits_at(0, kWays - 1);
  ctl.run_interval(2000, nullptr);
  EXPECT_EQ(ctl.module_active_ways()[0], 2u);

  // ...but after the hysteresis window expires, the growth goes through.
  f.hits_at(0, kWays - 1);
  ctl.run_interval(3000, nullptr);
  f.hits_at(0, kWays - 1);
  ctl.run_interval(4000, nullptr);
  EXPECT_EQ(ctl.module_active_ways()[0], kWays);
}

TEST(Controller, HistorySmoothingDampsOscillation) {
  Fixture f;
  f.params.history_weight = 0.75;
  EsteemController ctl(f.l2, f.modules, f.leaders, f.prof, f.params);

  // Build up a strong MRU-concentrated history...
  for (int k = 0; k < 4; ++k) {
    f.hits_at(0, 0, 400);
    ctl.run_interval(1000 * (k + 1), nullptr);
  }
  ASSERT_EQ(ctl.module_active_ways()[0], f.params.a_min);

  // ...one noisy interval with a handful of deep hits no longer swings the
  // decision (without smoothing it would jump to 8 ways).
  f.hits_at(0, kWays - 1, 5);
  ctl.run_interval(5000, nullptr);
  EXPECT_EQ(ctl.module_active_ways()[0], f.params.a_min);
}

TEST(Controller, SampleGuardKeepsCurrentConfiguration) {
  Fixture f;
  f.params.min_leader_samples = 50;
  EsteemController ctl(f.l2, f.modules, f.leaders, f.prof, f.params);

  // Module 0: plenty of leader accesses -> decided. Module 1: below the
  // threshold -> keeps its current (fully on) configuration. Module 2:
  // plenty of accesses but zero hits -> evidence of no reuse, shrinks.
  for (int i = 0; i < 100; ++i) f.prof.record_access(f.leader_of(0));
  f.hits_at(0, 0, /*count=*/100);
  for (int i = 0; i < 10; ++i) f.prof.record_access(f.leader_of(1));
  f.hits_at(1, 0, /*count=*/10);
  for (int i = 0; i < 100; ++i) f.prof.record_access(f.leader_of(2));
  ctl.run_interval(1000, nullptr);
  EXPECT_EQ(ctl.module_active_ways()[0], f.params.a_min);
  EXPECT_EQ(ctl.module_active_ways()[1], kWays);
  EXPECT_EQ(ctl.module_active_ways()[2], f.params.a_min);
}

TEST(Controller, ProfilerClearedEachInterval) {
  Fixture f;
  EsteemController ctl(f.l2, f.modules, f.leaders, f.prof, f.params);
  f.hits_at(0, kWays - 1);
  ctl.run_interval(1000, nullptr);
  EXPECT_EQ(f.prof.hits(0).total(), 0u);
  EXPECT_EQ(ctl.intervals_run(), 1u);
}

}  // namespace
}  // namespace esteem::core

// Tests for Table 2 values and the §6.3 energy equations.
#include <gtest/gtest.h>

#include "energy/cacti_table.hpp"
#include "energy/energy_model.hpp"

namespace esteem::energy {
namespace {

constexpr std::uint64_t MB = 1024ULL * 1024;

TEST(CactiTable, ExactPaperValues) {
  // Paper Table 2, verbatim.
  EXPECT_DOUBLE_EQ(l2_energy_params(2 * MB).e_dyn_nj_per_access, 0.186);
  EXPECT_DOUBLE_EQ(l2_energy_params(2 * MB).p_leak_watts, 0.096);
  EXPECT_DOUBLE_EQ(l2_energy_params(4 * MB).e_dyn_nj_per_access, 0.212);
  EXPECT_DOUBLE_EQ(l2_energy_params(4 * MB).p_leak_watts, 0.116);
  EXPECT_DOUBLE_EQ(l2_energy_params(8 * MB).e_dyn_nj_per_access, 0.282);
  EXPECT_DOUBLE_EQ(l2_energy_params(8 * MB).p_leak_watts, 0.280);
  EXPECT_DOUBLE_EQ(l2_energy_params(16 * MB).e_dyn_nj_per_access, 0.370);
  EXPECT_DOUBLE_EQ(l2_energy_params(16 * MB).p_leak_watts, 0.456);
  EXPECT_DOUBLE_EQ(l2_energy_params(32 * MB).e_dyn_nj_per_access, 0.467);
  EXPECT_DOUBLE_EQ(l2_energy_params(32 * MB).p_leak_watts, 1.056);
}

TEST(CactiTable, InterpolationIsMonotoneAndBracketed) {
  const auto lo = l2_energy_params(4 * MB);
  const auto mid = l2_energy_params(6 * MB);
  const auto hi = l2_energy_params(8 * MB);
  EXPECT_GT(mid.e_dyn_nj_per_access, lo.e_dyn_nj_per_access);
  EXPECT_LT(mid.e_dyn_nj_per_access, hi.e_dyn_nj_per_access);
  EXPECT_GT(mid.p_leak_watts, lo.p_leak_watts);
  EXPECT_LT(mid.p_leak_watts, hi.p_leak_watts);
}

TEST(CactiTable, ExtrapolatesOutsideTable) {
  EXPECT_LT(l2_energy_params(1 * MB).p_leak_watts, 0.096);
  EXPECT_GT(l2_energy_params(64 * MB).p_leak_watts, 1.056);
  EXPECT_GT(l2_energy_params(1 * MB).p_leak_watts, 0.0);
  EXPECT_THROW(l2_energy_params(0), std::invalid_argument);
}

TEST(EnergyModel, EquationsByHand) {
  EnergyModelParams params;
  params.l2 = {0.2, 0.1};  // 0.2 nJ/access, 0.1 W leak
  params.mm_dyn_nj = 70.0;
  params.mm_leak_w = 0.18;
  params.e_chi_nj = 0.002;

  EnergyCounters c;
  c.seconds = 2.0;
  c.fa_seconds = 1.0;        // cache half-on on average
  c.l2_hits = 1000;
  c.l2_misses = 250;
  c.refreshes = 5000;
  c.mm_accesses = 300;
  c.transitions = 4000;

  const EnergyBreakdown e = compute_energy(params, c);
  EXPECT_DOUBLE_EQ(e.leak_l2_j, 0.1 * 1.0);                        // (4)
  EXPECT_DOUBLE_EQ(e.dyn_l2_j, 0.2e-9 * (2.0 * 250 + 1000));       // (5)
  EXPECT_DOUBLE_EQ(e.refresh_l2_j, 5000 * 0.2e-9);                 // (6)
  EXPECT_DOUBLE_EQ(e.mm_j, 0.18 * 2.0 + 70e-9 * 300);              // (7)
  EXPECT_DOUBLE_EQ(e.algo_j, 0.002e-9 * 4000);                     // (8)
  EXPECT_DOUBLE_EQ(e.total_j(),
                   e.leak_l2_j + e.dyn_l2_j + e.refresh_l2_j + e.mm_j + e.algo_j);
}

TEST(EnergyModel, RefreshDominatesBaselineEdramL2) {
  // Paper §1: refresh is ~70% of total eDRAM LLC energy, leakage most of the
  // rest. Check with the paper's own numbers: 4 MB cache, 50 us retention,
  // all 65536 lines refreshed each period, idle otherwise, over 1 second.
  EnergyModelParams params;
  params.l2 = l2_energy_params(4 * MB);

  EnergyCounters c;
  c.seconds = 1.0;
  c.fa_seconds = 1.0;
  c.refreshes = static_cast<std::uint64_t>(65536.0 / 50e-6);  // lines/period / s

  const EnergyBreakdown e = compute_energy(params, c);
  const double l2_total = e.l2_j();
  EXPECT_NEAR(e.refresh_l2_j / l2_total, 0.70, 0.05);
  EXPECT_NEAR(e.leak_l2_j / l2_total, 0.30, 0.05);
}

TEST(EnergyModel, PercentSaving) {
  EnergyBreakdown base;
  base.mm_j = 2.0;
  EnergyBreakdown tech;
  tech.mm_j = 1.5;
  EXPECT_DOUBLE_EQ(percent_energy_saving(base, tech), 25.0);
  EXPECT_DOUBLE_EQ(percent_energy_saving(EnergyBreakdown{}, tech), 0.0);
  // Negative saving (loss) is representable.
  EXPECT_LT(percent_energy_saving(tech, base), 0.0);
}

TEST(EnergyModel, CountersAccumulate) {
  EnergyCounters a;
  a.seconds = 1.0;
  a.l2_hits = 10;
  EnergyCounters b;
  b.seconds = 2.0;
  b.l2_hits = 5;
  b.refreshes = 7;
  a += b;
  EXPECT_DOUBLE_EQ(a.seconds, 3.0);
  EXPECT_EQ(a.l2_hits, 15u);
  EXPECT_EQ(a.refreshes, 7u);
}

}  // namespace
}  // namespace esteem::energy

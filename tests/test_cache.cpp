// Unit + property tests for the set-associative cache and module map.
#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "cache/cache.hpp"
#include "cache/module_map.hpp"
#include "common/rng.hpp"

namespace esteem::cache {
namespace {

// Records every listener callback for verification.
struct RecordingListener final : LineListener {
  struct Event {
    char kind;  // 'F' fill, 'T' touch, 'I' invalidate
    std::uint32_t set;
    std::uint32_t way;
    bool dirty = false;
    cycle_t now = 0;
  };
  std::vector<Event> events;

  void on_fill(std::uint32_t set, std::uint32_t way, block_t, cycle_t now) override {
    events.push_back({'F', set, way, false, now});
  }
  void on_touch(std::uint32_t set, std::uint32_t way, cycle_t now) override {
    events.push_back({'T', set, way, false, now});
  }
  void on_invalidate(std::uint32_t set, std::uint32_t way, bool dirty,
                     cycle_t now) override {
    events.push_back({'I', set, way, dirty, now});
  }
};

/// RecordingListener that opts out of per-touch notification (fast lane).
struct TouchlessListener final : LineListener {
  int fills = 0, touches = 0, invalidates = 0;
  void on_fill(std::uint32_t, std::uint32_t, block_t, cycle_t) override { ++fills; }
  void on_touch(std::uint32_t, std::uint32_t, cycle_t) override { ++touches; }
  void on_invalidate(std::uint32_t, std::uint32_t, bool, cycle_t) override {
    ++invalidates;
  }
  bool wants_touch() const noexcept override { return false; }
};

TEST(Cache, HitAfterFill) {
  SetAssocCache c({4, 2});
  EXPECT_FALSE(c.access(0, false, 0).hit);
  EXPECT_TRUE(c.access(0, false, 1).hit);
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(4));  // same set, different block
}

TEST(Cache, LruEvictionOrder) {
  SetAssocCache c({1, 2});  // single set, 2 ways
  c.access(0, false, 0);
  c.access(1, false, 1);
  c.access(0, false, 2);  // 0 now MRU, 1 LRU
  const AccessOutcome out = c.access(2, false, 3);
  EXPECT_FALSE(out.hit);
  EXPECT_EQ(out.victim, 1u);  // LRU block evicted
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(1));
}

TEST(Cache, LruPositionSemantics) {
  SetAssocCache c({1, 4});
  for (block_t b = 0; b < 4; ++b) c.access(b, false, b);
  // Recency order (MRU..LRU): 3,2,1,0.
  EXPECT_EQ(c.access(3, false, 10).lru_pos, 0u);  // MRU
  EXPECT_EQ(c.access(0, false, 11).lru_pos, 3u);  // was LRU
  // After touching 0 it is MRU; 3 is now position 1.
  EXPECT_EQ(c.access(3, false, 12).lru_pos, 1u);
}

TEST(Cache, DirtyVictimReported) {
  SetAssocCache c({1, 1});
  c.access(0, true, 0);  // store: dirty
  const AccessOutcome out = c.access(1, false, 1);
  EXPECT_EQ(out.victim, 0u);
  EXPECT_TRUE(out.victim_dirty);
  EXPECT_EQ(c.stats().dirty_evictions, 1u);
}

TEST(Cache, StoreHitMarksDirty) {
  SetAssocCache c({1, 2});
  c.access(0, false, 0);  // clean fill
  c.access(0, true, 1);   // store hit dirties it
  const AccessOutcome out1 = c.access(1, false, 2);
  EXPECT_FALSE(out1.hit);
  const AccessOutcome out2 = c.access(2, false, 3);  // evicts block 0 (LRU)
  EXPECT_EQ(out2.victim, 0u);
  EXPECT_TRUE(out2.victim_dirty);
}

TEST(Cache, ValidLinesTracked) {
  SetAssocCache c({4, 2});
  EXPECT_EQ(c.valid_lines(), 0u);
  for (block_t b = 0; b < 8; ++b) c.access(b, false, b);
  EXPECT_EQ(c.valid_lines(), 8u);
  c.access(8, false, 100);  // evicts one
  EXPECT_EQ(c.valid_lines(), 8u);
  c.invalidate(8, 101);
  EXPECT_EQ(c.valid_lines(), 7u);
}

TEST(Cache, InvalidateReturnsDirtiness) {
  SetAssocCache c({2, 2});
  c.access(0, true, 0);
  c.access(1, false, 1);
  EXPECT_TRUE(c.invalidate(0, 2));
  EXPECT_FALSE(c.invalidate(1, 3));
  EXPECT_FALSE(c.invalidate(1, 4));  // already gone
  EXPECT_FALSE(c.contains(0));
}

TEST(Cache, InvalidateSlot) {
  SetAssocCache c({1, 2});
  c.access(0, true, 0);
  EXPECT_TRUE(c.slot_valid(0, 0));
  EXPECT_TRUE(c.invalidate_slot(0, 0, 1));   // dirty
  EXPECT_FALSE(c.invalidate_slot(0, 0, 2));  // no-op now
  EXPECT_THROW(c.invalidate_slot(5, 0, 0), std::out_of_range);
}

TEST(Cache, ResizeSetFlushesDeactivatedWays) {
  SetAssocCache c({1, 4});
  c.access(0, true, 0);   // dirty
  c.access(1, false, 1);  // clean
  c.access(2, false, 2);
  c.access(3, false, 3);
  std::vector<std::pair<block_t, bool>> evicted;
  c.resize_set(0, 2, 4, [&](block_t b, bool d) { evicted.emplace_back(b, d); });
  EXPECT_EQ(c.active_ways(0), 2u);
  EXPECT_EQ(evicted.size(), 2u);
  EXPECT_EQ(c.valid_lines(), 2u);
  // Lines in ways [0,2) survive: blocks 0 and 1 were filled there.
  EXPECT_TRUE(c.contains(0));
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
  EXPECT_FALSE(c.contains(3));
}

TEST(Cache, ShrunkSetUsesOnlyActiveWays) {
  SetAssocCache c({1, 4});
  c.resize_set(0, 2, 0, nullptr);
  for (block_t b = 0; b < 10; ++b) c.access(b, false, b);
  EXPECT_EQ(c.valid_lines(), 2u);  // only 2 ways available
  // Re-grow: capacity returns.
  c.resize_set(0, 4, 11, nullptr);
  for (block_t b = 0; b < 4; ++b) c.access(100 + b, false, 100 + b);
  EXPECT_EQ(c.valid_lines(), 4u);
}

TEST(Cache, ResizeValidation) {
  SetAssocCache c({2, 2});
  EXPECT_THROW(c.resize_set(0, 0, 0, nullptr), std::invalid_argument);
  EXPECT_THROW(c.resize_set(0, 3, 0, nullptr), std::invalid_argument);
  EXPECT_THROW(c.resize_set(9, 1, 0, nullptr), std::out_of_range);
}

TEST(Cache, ListenerSeesLifecycle) {
  SetAssocCache c({1, 1});
  RecordingListener listener;
  c.set_listener(&listener);
  c.access(0, true, 0);   // fill
  c.access(0, false, 1);  // touch
  c.access(1, false, 2);  // invalidate (dirty victim) + fill
  ASSERT_EQ(listener.events.size(), 4u);
  EXPECT_EQ(listener.events[0].kind, 'F');
  EXPECT_EQ(listener.events[1].kind, 'T');
  EXPECT_EQ(listener.events[2].kind, 'I');
  EXPECT_TRUE(listener.events[2].dirty);
  EXPECT_EQ(listener.events[3].kind, 'F');
}

TEST(Cache, TouchlessListenerSkipsPerHitDispatch) {
  SetAssocCache c({1, 2});
  TouchlessListener listener;
  c.set_listener(&listener);
  c.access(0, false, 0);  // fill
  c.access(0, false, 1);  // hit: on_touch must be skipped
  c.access(0, false, 2);
  c.access(1, false, 3);  // fill
  c.access(2, false, 4);  // evict + fill
  EXPECT_EQ(listener.fills, 3);
  EXPECT_EQ(listener.touches, 0);
  EXPECT_EQ(listener.invalidates, 1);
}

TEST(Cache, LruTrackingToggleAffectsOnlyLruPos) {
  SetAssocCache tracked({1, 4});
  SetAssocCache untracked({1, 4});
  untracked.set_lru_tracking(false);
  EXPECT_TRUE(tracked.lru_tracking());
  EXPECT_FALSE(untracked.lru_tracking());

  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const block_t blk = rng.below(12);
    const AccessOutcome a = tracked.access(blk, false, i);
    const AccessOutcome b = untracked.access(blk, false, i);
    // Identical behaviour in everything but the lru_pos computation.
    ASSERT_EQ(a.hit, b.hit);
    ASSERT_EQ(a.way, b.way);
    ASSERT_EQ(a.victim, b.victim);
    ASSERT_EQ(a.victim_dirty, b.victim_dirty);
  }
  EXPECT_EQ(tracked.stats().hits, untracked.stats().hits);
  EXPECT_EQ(tracked.stats().evictions, untracked.stats().evictions);
}

TEST(Cache, ResizeSetStampsListenerWithActualCycle) {
  SetAssocCache c({1, 4});
  RecordingListener listener;
  c.set_listener(&listener);
  for (block_t b = 0; b < 4; ++b) c.access(b, false, b);
  listener.events.clear();
  c.resize_set(0, 2, 777, nullptr);
  ASSERT_EQ(listener.events.size(), 2u);
  for (const auto& e : listener.events) {
    EXPECT_EQ(e.kind, 'I');
    EXPECT_EQ(e.now, 777u);  // the reconfiguration cycle, not 0
  }
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(SetAssocCache({0, 4}), std::invalid_argument);
  EXPECT_THROW(SetAssocCache({4, 0}), std::invalid_argument);
  EXPECT_THROW(SetAssocCache({3, 4}), std::invalid_argument);  // non-pow2 sets
}

// Property test: the cache agrees with a reference model (map from block to
// dirty bit with capacity bookkeeping) under random traffic.
class CacheProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CacheProperty, MatchesReferenceOccupancy) {
  const std::uint32_t ways = GetParam();
  const std::uint32_t sets = 16;
  SetAssocCache c({sets, ways});
  std::unordered_map<block_t, bool> resident;  // block -> dirty
  Rng rng(ways * 977 + 1);

  for (int i = 0; i < 20000; ++i) {
    const block_t blk = rng.below(sets * ways * 4);
    const bool store = rng.chance(0.3);
    const bool expected_hit = resident.count(blk) > 0;
    const AccessOutcome out = c.access(blk, store, i);
    ASSERT_EQ(out.hit, expected_hit) << "block " << blk << " iter " << i;
    if (out.victim != kInvalidBlock) {
      ASSERT_TRUE(resident.count(out.victim));
      ASSERT_EQ(resident[out.victim], out.victim_dirty);
      resident.erase(out.victim);
    }
    resident[blk] = resident.count(blk) ? (resident[blk] || store) : store;
    ASSERT_LE(c.valid_lines(), static_cast<std::uint64_t>(sets) * ways);
    ASSERT_EQ(c.valid_lines(), resident.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Associativities, CacheProperty,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

// LRU stack-inclusion property: running the same stream against a cache
// with k active ways hits exactly the accesses whose recency position in
// the fully-associative run is < k. This is the property that makes
// ESTEEM's LRU-position histogram an exact predictor of hit loss (§3.1).
class StackInclusion : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(StackInclusion, ShrunkCacheHitsMatchShallowPositions) {
  const std::uint32_t active = GetParam();
  constexpr std::uint32_t kSets = 8;
  constexpr std::uint32_t kWays = 8;

  SetAssocCache full({kSets, kWays});
  SetAssocCache shrunk({kSets, kWays});
  for (std::uint32_t s = 0; s < kSets; ++s) shrunk.resize_set(s, active, 0, nullptr);

  Rng rng(active * 1009 + 13);
  std::uint64_t shallow_hits = 0;
  std::uint64_t shrunk_hits = 0;
  for (int i = 0; i < 30000; ++i) {
    const block_t blk = rng.below(kSets * kWays * 3);
    const AccessOutcome f = full.access(blk, false, i);
    const AccessOutcome s = shrunk.access(blk, false, i);
    const bool expect_hit = f.hit && f.lru_pos < active;
    ASSERT_EQ(s.hit, expect_hit) << "block " << blk << " iter " << i;
    shallow_hits += expect_hit;
    shrunk_hits += s.hit;
  }
  EXPECT_EQ(shrunk_hits, shallow_hits);
  EXPECT_GT(shrunk_hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(ActiveWays, StackInclusion,
                         ::testing::Values(1u, 2u, 3u, 5u, 7u, 8u));

TEST(ModuleMap, PartitionsSets) {
  ModuleMap m(4096, 8);
  EXPECT_EQ(m.modules(), 8u);
  EXPECT_EQ(m.sets_per_module(), 512u);
  EXPECT_EQ(m.module_of(0), 0u);
  EXPECT_EQ(m.module_of(511), 0u);
  EXPECT_EQ(m.module_of(512), 1u);
  EXPECT_EQ(m.module_of(4095), 7u);
  EXPECT_EQ(m.first_set(3), 1536u);
}

TEST(ModuleMap, RejectsNonDivisors) {
  EXPECT_THROW(ModuleMap(4096, 3), std::invalid_argument);
  EXPECT_THROW(ModuleMap(0, 1), std::invalid_argument);
  EXPECT_THROW(ModuleMap(8, 0), std::invalid_argument);
}

}  // namespace
}  // namespace esteem::cache

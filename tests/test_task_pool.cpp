// Tests for the work-stealing task pool backing the sweep runner.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "sim/task_pool.hpp"

namespace esteem::sim {
namespace {

TEST(TaskPool, ResolveThreads) {
  EXPECT_GE(TaskPool::resolve_threads(0), 1u);
  EXPECT_EQ(TaskPool::resolve_threads(1), 1u);
  EXPECT_EQ(TaskPool::resolve_threads(3), 3u);
}

TEST(TaskPool, InlineModeExecutesRecursivelyInSubmissionOrder) {
  TaskPool pool(1);
  EXPECT_TRUE(pool.inline_mode());
  EXPECT_EQ(pool.workers(), 0u);

  std::vector<int> order;
  pool.submit([&] {
    order.push_back(0);
    pool.submit([&] { order.push_back(1); });  // runs before the outer returns
    order.push_back(2);
  });
  pool.submit([&] { order.push_back(3); });
  pool.wait_idle();  // no-op in inline mode; must not hang
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(TaskPool, ThreadedRunsEveryTask) {
  TaskPool pool(4);
  EXPECT_FALSE(pool.inline_mode());
  EXPECT_EQ(pool.workers(), 4u);

  std::atomic<int> count{0};
  for (int i = 0; i < 500; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 500);
}

TEST(TaskPool, WorkersCanSubmitMoreWork) {
  TaskPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&pool, &count] {
      count.fetch_add(1, std::memory_order_relaxed);
      // The sweep scheduler submits technique continuations from inside the
      // baseline task exactly like this.
      for (int j = 0; j < 4; ++j) {
        pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 32 * 5);
}

TEST(TaskPool, AsyncCarriesResultsAndExceptions) {
  TaskPool pool(2);
  auto ok = pool.async([] { return 6 * 7; });
  auto bad = pool.async([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(ok.get(), 42);
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(TaskPool, AsyncWorksInInlineMode) {
  TaskPool pool(1);
  EXPECT_EQ(pool.async([] { return 7; }).get(), 7);
}

TEST(TaskPool, WaitIdleWithNoTasksReturnsImmediately) {
  TaskPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

}  // namespace
}  // namespace esteem::sim

// Tests for the crash-safe sweep journal: row byte codec, sweep identity
// hashing, journal-then-resume bit-identity, shutdown draining, and the
// refuse-foreign-journal rule.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "resilience/shutdown.hpp"
#include "sim/report.hpp"
#include "sim/run_cache.hpp"
#include "sim/runner.hpp"
#include "sim/sweep_journal.hpp"

namespace esteem::sim {
namespace {

namespace fs = std::filesystem;

SystemConfig tiny() {
  SystemConfig cfg = SystemConfig::single_core();
  cfg.l1.geom = CacheGeometry{8ULL * 1024, 4, 64};
  cfg.l2.geom = CacheGeometry{512ULL * 1024, 8, 64};
  cfg.edram.retention_us = 5.0;
  cfg.esteem.modules = 8;
  cfg.esteem.interval_cycles = 100'000;
  cfg.esteem.sampling_ratio = 32;
  cfg.esteem.a_min = 2;
  return cfg;
}

trace::Workload wl(const std::string& name) { return {name, {name}}; }

SweepSpec tiny_sweep(std::vector<std::string> workloads) {
  SweepSpec spec;
  spec.config = tiny();
  for (const std::string& w : workloads) spec.workloads.push_back(wl(w));
  spec.techniques = {Technique::Esteem, Technique::RefrintRPV};
  spec.instr_per_core = 100'000;
  spec.warmup_instr_per_core = 20'000;
  spec.threads = 1;
  return spec;
}

TechniqueComparison sample_comparison(double salt) {
  TechniqueComparison c;
  c.workload = "mcf";
  c.technique = Technique::RefrintRPV;
  c.energy_saving_pct = 12.25 + salt;
  c.weighted_speedup = 1.0625;
  c.fair_speedup = 1.03125;
  c.rpki_base = 400.5;
  c.rpki_tech = 100.125;
  c.rpki_decrease = 300.375;
  c.mpki_base = 2.5;
  c.mpki_tech = 2.75;
  c.mpki_increase = 0.25;
  c.active_ratio_pct = 87.5;
  c.ecc_corrected_reads = 11;
  c.fault_refetches = 22;
  c.fault_data_loss = 33;
  c.fault_disabled_lines = 44;
  c.correction_rpki = 0.0078125;
  return c;
}

void expect_same_comparison(const TechniqueComparison& a,
                            const TechniqueComparison& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.technique, b.technique);
  // Exact double equality on purpose: the journal promises bit-identical
  // restoration.
  EXPECT_EQ(a.energy_saving_pct, b.energy_saving_pct);
  EXPECT_EQ(a.weighted_speedup, b.weighted_speedup);
  EXPECT_EQ(a.fair_speedup, b.fair_speedup);
  EXPECT_EQ(a.rpki_base, b.rpki_base);
  EXPECT_EQ(a.rpki_tech, b.rpki_tech);
  EXPECT_EQ(a.rpki_decrease, b.rpki_decrease);
  EXPECT_EQ(a.mpki_base, b.mpki_base);
  EXPECT_EQ(a.mpki_tech, b.mpki_tech);
  EXPECT_EQ(a.mpki_increase, b.mpki_increase);
  EXPECT_EQ(a.active_ratio_pct, b.active_ratio_pct);
  EXPECT_EQ(a.ecc_corrected_reads, b.ecc_corrected_reads);
  EXPECT_EQ(a.fault_refetches, b.fault_refetches);
  EXPECT_EQ(a.fault_data_loss, b.fault_data_loss);
  EXPECT_EQ(a.fault_disabled_lines, b.fault_disabled_lines);
  EXPECT_EQ(a.correction_rpki, b.correction_rpki);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(SweepJournalCodec, ComparisonsRoundTripBitExactly) {
  const std::vector<TechniqueComparison> original{sample_comparison(0.0),
                                                  sample_comparison(1.0)};
  const std::string bytes = encode_comparisons(original);
  std::vector<TechniqueComparison> decoded;
  ASSERT_TRUE(decode_comparisons(bytes, 2, decoded));
  ASSERT_EQ(decoded.size(), 2u);
  expect_same_comparison(decoded[0], original[0]);
  expect_same_comparison(decoded[1], original[1]);
}

TEST(SweepJournalCodec, RejectsWrongArityAndTruncation) {
  const std::vector<TechniqueComparison> original{sample_comparison(0.0),
                                                  sample_comparison(1.0)};
  const std::string bytes = encode_comparisons(original);
  std::vector<TechniqueComparison> decoded;
  EXPECT_FALSE(decode_comparisons(bytes, 3, decoded));
  EXPECT_FALSE(decode_comparisons(bytes.substr(0, bytes.size() / 2), 2, decoded));
  EXPECT_FALSE(decode_comparisons("", 1, decoded));
}

TEST(SweepJournalHash, IgnoresWorkloadListOnly) {
  const SweepSpec base = tiny_sweep({"gamess", "gobmk"});
  const std::uint64_t h = sweep_fingerprint_hash(base);

  // Sweeping a different workload subset is the SAME sweep: a journal from
  // a partial run must be able to seed a superset resume.
  EXPECT_EQ(sweep_fingerprint_hash(tiny_sweep({"gamess"})), h);
  EXPECT_EQ(sweep_fingerprint_hash(tiny_sweep({"libquantum", "omnetpp"})), h);

  // Everything that changes a row's bytes changes the hash.
  SweepSpec s = tiny_sweep({"gamess", "gobmk"});
  s.seed = 43;
  EXPECT_NE(sweep_fingerprint_hash(s), h);

  s = tiny_sweep({"gamess", "gobmk"});
  s.instr_per_core += 1;
  EXPECT_NE(sweep_fingerprint_hash(s), h);

  s = tiny_sweep({"gamess", "gobmk"});
  s.techniques = {Technique::RefrintRPV};
  EXPECT_NE(sweep_fingerprint_hash(s), h);

  s = tiny_sweep({"gamess", "gobmk"});
  s.techniques = {Technique::RefrintRPV, Technique::Esteem};  // order matters
  EXPECT_NE(sweep_fingerprint_hash(s), h);

  s = tiny_sweep({"gamess", "gobmk"});
  s.config.edram.retention_us += 1.0;
  EXPECT_NE(sweep_fingerprint_hash(s), h);

  // Thread count does NOT change row bytes (the runner promises
  // schedule-independence), so it must not poison a resume.
  s = tiny_sweep({"gamess", "gobmk"});
  s.threads = 8;
  EXPECT_EQ(sweep_fingerprint_hash(s), h);
}

TEST(SweepJournal, JournaledSweepRestoresRowsBitExactly) {
  const fs::path path = fs::temp_directory_path() / "esteem-sweep-journal-1.jsonl";
  fs::remove(path);

  SweepSpec spec = tiny_sweep({"gamess", "gobmk"});
  SweepJournal journal;
  ASSERT_TRUE(journal.open(path.string(), spec));
  spec.journal = &journal;
  const SweepResult result = run_sweep(spec);
  journal.close();
  ASSERT_TRUE(result.ok());

  const ResumeLoad resume = load_resume_state(path.string(), spec);
  ASSERT_TRUE(resume.ok) << resume.error;
  EXPECT_EQ(resume.state.sweep_hash, sweep_fingerprint_hash(spec));
  EXPECT_EQ(resume.state.n_techniques, 2u);
  EXPECT_EQ(resume.state.corrupt_lines, 0u);
  ASSERT_EQ(resume.state.rows.size(), 2u);
  for (const WorkloadRow& row : result.rows) {
    const std::vector<TechniqueComparison>* restored =
        resume.state.find(row.workload);
    ASSERT_NE(restored, nullptr) << row.workload;
    ASSERT_EQ(restored->size(), row.comparisons.size());
    for (std::size_t t = 0; t < restored->size(); ++t) {
      expect_same_comparison((*restored)[t], row.comparisons[t]);
    }
  }
  EXPECT_EQ(resume.state.find("no-such-workload"), nullptr);
  fs::remove(path);
}

TEST(SweepJournal, ResumeRefusesForeignJournalAndMissingFile) {
  const fs::path path = fs::temp_directory_path() / "esteem-sweep-journal-2.jsonl";
  fs::remove(path);

  EXPECT_FALSE(load_resume_state(path.string(), tiny_sweep({"gamess"})).ok);

  SweepSpec spec = tiny_sweep({"gamess"});
  SweepJournal journal;
  ASSERT_TRUE(journal.open(path.string(), spec));
  journal.close();

  // Same file, different sweep identity: results from another configuration
  // must never leak into a resume.
  SweepSpec other = tiny_sweep({"gamess"});
  other.seed = 99;
  const ResumeLoad load = load_resume_state(path.string(), other);
  EXPECT_FALSE(load.ok);
  EXPECT_NE(load.error.find("different sweep"), std::string::npos);

  // The matching sweep is accepted (header only, no rows yet).
  EXPECT_TRUE(load_resume_state(path.string(), spec).ok);
  fs::remove(path);
}

// The acceptance property: a sweep interrupted after a subset of rows and
// then resumed over the full workload list produces a byte-identical CSV to
// one uninterrupted run.
TEST(SweepJournal, InterruptedThenResumedCsvIsByteIdentical) {
  const fs::path dir = fs::temp_directory_path() / "esteem-sweep-resume-test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string journal_path = (dir / "sweep.journal").string();

  const std::vector<std::string> all{"gamess", "gobmk", "libquantum"};

  // Reference: the uninterrupted sweep.
  RunCache::instance().clear();
  const SweepResult reference = run_sweep(tiny_sweep(all));
  ASSERT_TRUE(reference.ok());

  // "Interrupted" leg: only the first workload completed before the crash —
  // exactly what the journal of a killed process would hold.
  {
    SweepSpec partial = tiny_sweep({"gamess"});
    SweepJournal journal;
    ASSERT_TRUE(journal.open(journal_path, partial));
    partial.journal = &journal;
    ASSERT_TRUE(run_sweep(partial).ok());
    journal.close();
  }

  // Resume over the full list; drop the memo cache so the restored row
  // provably comes from the journal bytes, not recomputation.
  RunCache::instance().clear();
  SweepSpec full = tiny_sweep(all);
  const ResumeLoad resume = load_resume_state(journal_path, full);
  ASSERT_TRUE(resume.ok) << resume.error;
  ASSERT_EQ(resume.state.rows.size(), 1u);
  full.resume = &resume.state;

  SweepJournal journal;
  ASSERT_TRUE(journal.open(journal_path, full));
  full.journal = &journal;
  const SweepResult resumed = run_sweep(full);
  journal.close();
  ASSERT_TRUE(resumed.ok());

  ASSERT_EQ(resumed.rows.size(), reference.rows.size());
  EXPECT_TRUE(resumed.rows[0].resumed);
  EXPECT_FALSE(resumed.rows[1].resumed);
  for (std::size_t w = 0; w < reference.rows.size(); ++w) {
    EXPECT_EQ(resumed.rows[w].workload, reference.rows[w].workload);
    EXPECT_TRUE(resumed.rows[w].completed);
    ASSERT_EQ(resumed.rows[w].comparisons.size(),
              reference.rows[w].comparisons.size());
    for (std::size_t t = 0; t < reference.rows[w].comparisons.size(); ++t) {
      expect_same_comparison(resumed.rows[w].comparisons[t],
                             reference.rows[w].comparisons[t]);
    }
  }

  const std::string ref_csv = (dir / "reference.csv").string();
  const std::string res_csv = (dir / "resumed.csv").string();
  write_csv(reference, ref_csv);
  write_csv(resumed, res_csv);
  EXPECT_EQ(read_file(ref_csv), read_file(res_csv));

  // The extended journal now covers every workload: a second resume would
  // re-run nothing.
  const ResumeLoad again = load_resume_state(journal_path, full);
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_EQ(again.state.rows.size(), all.size());
  fs::remove_all(dir);
}

TEST(SweepJournal, ShutdownRequestDrainsWithoutRunning) {
  const fs::path path = fs::temp_directory_path() / "esteem-sweep-journal-3.jsonl";
  fs::remove(path);

  SweepSpec spec = tiny_sweep({"gamess", "gobmk"});
  SweepJournal journal;
  ASSERT_TRUE(journal.open(path.string(), spec));
  spec.journal = &journal;

  resilience::request_shutdown();
  const SweepResult result = run_sweep(spec);
  resilience::clear_shutdown();
  journal.close();

  EXPECT_TRUE(result.interrupted);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.errors.empty());  // skipped, not failed
  ASSERT_EQ(result.rows.size(), 2u);
  for (const WorkloadRow& row : result.rows) {
    EXPECT_TRUE(row.skipped);
    EXPECT_FALSE(row.completed);
  }
  // Nothing ran, so nothing beyond the header may have been journaled.
  EXPECT_TRUE(load_resume_state(path.string(), spec).state.rows.empty());
  fs::remove(path);
}

TEST(SweepJournal, CorruptRowLineIsSkippedAndCounted) {
  const fs::path path = fs::temp_directory_path() / "esteem-sweep-journal-4.jsonl";
  fs::remove(path);

  SweepSpec spec = tiny_sweep({"gamess"});
  SweepJournal journal;
  ASSERT_TRUE(journal.open(path.string(), spec));
  spec.journal = &journal;
  ASSERT_TRUE(run_sweep(spec).ok());
  journal.close();

  {
    std::ofstream tail(path, std::ios::app | std::ios::binary);
    tail << "{\"v\":1,\"kind\":\"row\",\"workload\":\"torn-tail";
  }
  const ResumeLoad load = load_resume_state(path.string(), spec);
  ASSERT_TRUE(load.ok) << load.error;
  EXPECT_EQ(load.state.rows.size(), 1u);
  EXPECT_EQ(load.state.corrupt_lines, 1u);
  fs::remove(path);
}

}  // namespace
}  // namespace esteem::sim

// Tests for leader-set selection and the per-module LRU-position profiler.
#include <gtest/gtest.h>

#include "cache/module_map.hpp"
#include "profiler/atd.hpp"
#include "profiler/leader_sets.hpp"

namespace esteem::profiler {
namespace {

TEST(LeaderSets, OnePerSamplingGroup) {
  cache::ModuleMap modules(4096, 8);
  LeaderSets leaders(4096, 64, modules);
  EXPECT_EQ(leaders.count(), 4096u / 64u);
  std::uint32_t found = 0;
  for (std::uint32_t s = 0; s < 4096; ++s) found += leaders.is_leader(s);
  EXPECT_EQ(found, leaders.count());
}

TEST(LeaderSets, EveryModuleHasALeader) {
  for (std::uint32_t mods : {2u, 4u, 8u, 16u, 32u, 64u}) {
    cache::ModuleMap modules(4096, mods);
    LeaderSets leaders(4096, 64, modules);
    for (std::uint32_t m = 0; m < mods; ++m) {
      EXPECT_GE(leaders.leaders_in_module(m), 1u) << "module " << m;
    }
  }
}

TEST(LeaderSets, ForcedLeaderWhenGroupsSpanModules) {
  // 128 sets, 64 modules (2 sets each), R_s = 64: only 2 diagonal leaders,
  // so most modules get a forced one.
  cache::ModuleMap modules(128, 64);
  LeaderSets leaders(128, 64, modules);
  for (std::uint32_t m = 0; m < 64; ++m) {
    EXPECT_GE(leaders.leaders_in_module(m), 1u);
  }
  EXPECT_GE(leaders.count(), 64u);
}

TEST(LeaderSets, StaggeredAcrossGroups) {
  cache::ModuleMap modules(4096, 8);
  LeaderSets leaders(4096, 64, modules);
  // The diagonal stagger means leaders are not all at the same offset.
  std::uint32_t first_offset = 4096;
  bool differs = false;
  for (std::uint32_t s = 0; s < 4096; ++s) {
    if (!leaders.is_leader(s)) continue;
    const std::uint32_t offset = s % 64;
    if (first_offset == 4096) {
      first_offset = offset;
    } else if (offset != first_offset) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(LeaderSets, Validation) {
  cache::ModuleMap modules(64, 4);
  EXPECT_THROW(LeaderSets(0, 64, modules), std::invalid_argument);
  EXPECT_THROW(LeaderSets(64, 0, modules), std::invalid_argument);
}

TEST(ModuleProfiler, RecordsOnlyLeaderHits) {
  cache::ModuleMap modules(64, 4);
  LeaderSets leaders(64, 16, modules);
  ModuleProfiler prof(modules, 8, leaders);

  std::uint32_t leader_set = 0, follower_set = 0;
  for (std::uint32_t s = 0; s < 64; ++s) {
    if (leaders.is_leader(s)) leader_set = s;
    else follower_set = s;
  }

  prof.record_hit(leader_set, 3);
  prof.record_hit(follower_set, 3);  // ignored
  EXPECT_EQ(prof.total_recorded(), 1u);
  EXPECT_EQ(prof.hits(modules.module_of(leader_set)).at(3), 1u);
}

TEST(ModuleProfiler, AttributesToOwningModule) {
  cache::ModuleMap modules(64, 4);
  LeaderSets leaders(64, 16, modules);
  ModuleProfiler prof(modules, 8, leaders);

  for (std::uint32_t m = 0; m < 4; ++m) {
    // Find a leader inside module m and hit it at position m.
    for (std::uint32_t s = modules.first_set(m); s < modules.first_set(m) + 16; ++s) {
      if (leaders.is_leader(s)) {
        prof.record_hit(s, m);
        break;
      }
    }
  }
  for (std::uint32_t m = 0; m < 4; ++m) {
    EXPECT_EQ(prof.hits(m).at(m), 1u) << "module " << m;
    EXPECT_EQ(prof.hits(m).total(), 1u) << "module " << m;
  }
}

TEST(ModuleProfiler, ClearResetsHistograms) {
  cache::ModuleMap modules(32, 2);
  LeaderSets leaders(32, 8, modules);
  ModuleProfiler prof(modules, 4, leaders);
  for (std::uint32_t s = 0; s < 32; ++s) {
    if (leaders.is_leader(s)) prof.record_hit(s, 1);
  }
  EXPECT_GT(prof.hits(0).total(), 0u);
  prof.clear();
  EXPECT_EQ(prof.hits(0).total(), 0u);
  EXPECT_EQ(prof.hits(1).total(), 0u);
}

}  // namespace
}  // namespace esteem::profiler

// Tests for ESTEEM's Algorithm 1, including the paper's worked example.
#include <gtest/gtest.h>

#include <vector>

#include "core/algorithm.hpp"

namespace esteem::core {
namespace {

// The example from §3.1: hits per LRU position for an 8-way cache.
const std::vector<std::uint64_t> kPaperExample{10816, 4645, 2140, 501,
                                               217,   113,  63,   11};

TEST(Algorithm, PaperExampleAlpha097) {
  AlgorithmConfig cfg;
  cfg.alpha = 0.97;
  cfg.a_min = 1;  // isolate the alpha computation
  const ModuleDecision d = decide_module(kPaperExample, 8, cfg);
  EXPECT_EQ(d.active_ways, 4u);  // "If alpha = 0.97, then we get X = 4"
  EXPECT_FALSE(d.non_lru);
}

TEST(Algorithm, PaperExampleAlpha095) {
  AlgorithmConfig cfg;
  cfg.alpha = 0.95;
  cfg.a_min = 1;
  const ModuleDecision d = decide_module(kPaperExample, 8, cfg);
  EXPECT_EQ(d.active_ways, 3u);  // "if alpha = 0.95, then X = 3"
}

TEST(Algorithm, AminFloorApplies) {
  AlgorithmConfig cfg;
  cfg.alpha = 0.5;  // alpha alone would keep a single way
  cfg.a_min = 3;
  const ModuleDecision d = decide_module(kPaperExample, 8, cfg);
  EXPECT_EQ(d.active_ways, 3u);
}

TEST(Algorithm, ZeroHitsKeepsAmin) {
  const std::vector<std::uint64_t> zero(16, 0);
  AlgorithmConfig cfg;
  cfg.alpha = 0.97;
  cfg.a_min = 3;
  const ModuleDecision d = decide_module(zero, 16, cfg);
  EXPECT_EQ(d.active_ways, 3u);
  EXPECT_FALSE(d.non_lru);  // no anomalies in an all-zero histogram
}

TEST(Algorithm, NonLruDetection) {
  // Monotone decreasing: LRU-friendly.
  EXPECT_FALSE(is_non_lru(kPaperExample));
  // Sawtooth with >= A/4 = 2 rises for 8 positions.
  const std::vector<std::uint64_t> saw{100, 50, 200, 40, 150, 30, 120, 10};
  EXPECT_TRUE(is_non_lru(saw));
  // A single rise among 8 positions: not enough anomalies.
  const std::vector<std::uint64_t> one_rise{100, 90, 80, 70, 60, 50, 40, 45};
  EXPECT_FALSE(is_non_lru(one_rise));
  // Degenerate sizes never flag.
  EXPECT_FALSE(is_non_lru(std::vector<std::uint64_t>{5}));
}

TEST(Algorithm, NonLruGuardLimitsTurnoff) {
  // Multi-modal hits concentrated at deep positions (16-way).
  std::vector<std::uint64_t> hits(16, 0);
  hits[3] = 1000;
  hits[6] = 900;
  hits[9] = 800;
  hits[12] = 700;
  AlgorithmConfig cfg;
  cfg.alpha = 0.5;
  cfg.a_min = 3;
  ASSERT_TRUE(is_non_lru(hits));
  const ModuleDecision d = decide_module(hits, 16, cfg);
  EXPECT_TRUE(d.non_lru);
  // For a non-LRU module, at most 1 way is turned off (§3.1).
  EXPECT_EQ(d.active_ways, 15u);
}

TEST(Algorithm, NonLruGuardCanBeDisabled) {
  std::vector<std::uint64_t> hits(16, 0);
  hits[3] = 1000;
  hits[6] = 900;
  hits[9] = 800;
  hits[12] = 700;
  AlgorithmConfig cfg;
  cfg.alpha = 0.5;
  cfg.a_min = 3;
  cfg.nonlru_guard = false;
  const ModuleDecision d = decide_module(hits, 16, cfg);
  EXPECT_FALSE(d.non_lru);
  EXPECT_LT(d.active_ways, 15u);
}

TEST(Algorithm, AllHitsInMruKeepsAmin) {
  std::vector<std::uint64_t> hits(16, 0);
  hits[0] = 123456;
  AlgorithmConfig cfg;
  cfg.alpha = 0.99;
  cfg.a_min = 4;
  EXPECT_EQ(decide_module(hits, 16, cfg).active_ways, 4u);
}

TEST(Algorithm, AlphaOneKeepsAllHitPositions) {
  AlgorithmConfig cfg;
  cfg.alpha = 1.0;
  cfg.a_min = 1;
  // Every position has hits, so alpha = 1 needs all 8 ways.
  EXPECT_EQ(decide_module(kPaperExample, 8, cfg).active_ways, 8u);
}

TEST(Algorithm, ValidatesInput) {
  AlgorithmConfig cfg;
  EXPECT_THROW(decide_module(kPaperExample, 16, cfg), std::invalid_argument);
  cfg.a_min = 0;
  EXPECT_THROW(decide_module(kPaperExample, 8, cfg), std::invalid_argument);
  cfg.a_min = 9;
  EXPECT_THROW(decide_module(kPaperExample, 8, cfg), std::invalid_argument);
}

TEST(Algorithm, MultiModuleDecision) {
  Histogram lru_friendly(8);
  for (std::size_t i = 0; i < 8; ++i) lru_friendly.add(i, kPaperExample[i]);
  Histogram empty(8);
  std::vector<Histogram> modules{lru_friendly, empty};

  AlgorithmConfig cfg;
  cfg.alpha = 0.97;
  cfg.a_min = 2;
  const auto decisions = esteem_decide(modules, 8, cfg);
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_EQ(decisions[0].active_ways, 4u);
  EXPECT_EQ(decisions[1].active_ways, 2u);
}

// Property: active ways are monotone non-decreasing in alpha, bounded by
// [A_min, A].
class AlphaMonotonicity : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(AlphaMonotonicity, MoreCoverageNeedsMoreWays) {
  const std::uint32_t a_min = GetParam();
  std::uint32_t prev = 0;
  for (double alpha : {0.50, 0.80, 0.90, 0.95, 0.97, 0.99, 1.0}) {
    AlgorithmConfig cfg;
    cfg.alpha = alpha;
    cfg.a_min = a_min;
    const std::uint32_t x = decide_module(kPaperExample, 8, cfg).active_ways;
    EXPECT_GE(x, a_min);
    EXPECT_LE(x, 8u);
    EXPECT_GE(x, prev) << "alpha " << alpha;
    prev = x;
  }
}

INSTANTIATE_TEST_SUITE_P(AminValues, AlphaMonotonicity, ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace esteem::core

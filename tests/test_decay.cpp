// Tests for the Cache Decay comparison technique (block-level power gating).
#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "cpu/system.hpp"
#include "edram/decay.hpp"

namespace esteem::edram {
namespace {

struct DecayFixture {
  cache::SetAssocCache cache{{4, 2}};
  // retention 100, decay after 200 idle cycles, checks every 100.
  CacheDecayPolicy policy{cache, 100, 200, 100};
  DecayFixture() { cache.set_listener(&policy); }
};

TEST(CacheDecay, IdleLineDecays) {
  DecayFixture f;
  f.cache.access(0, false, 10);
  EXPECT_EQ(f.policy.valid_lines(), 1u);
  EXPECT_DOUBLE_EQ(f.policy.active_fraction(), 1.0);

  // Check at t=100: idle 90 < 200, stays; refresh fires (1 line).
  const std::uint64_t r1 = f.policy.advance(100);
  EXPECT_EQ(r1, 1u);
  EXPECT_TRUE(f.cache.contains(0));

  // Check at t=300: idle 290 >= 200 -> gated off.
  f.policy.advance(300);
  EXPECT_FALSE(f.cache.contains(0));
  EXPECT_EQ(f.policy.valid_lines(), 0u);
  EXPECT_EQ(f.policy.decayed_lines(), 1u);
  EXPECT_LT(f.policy.active_fraction(), 1.0);
  EXPECT_EQ(f.policy.transitions(), 1u);
}

TEST(CacheDecay, TouchedLineSurvives) {
  DecayFixture f;
  f.cache.access(0, false, 10);
  std::uint64_t refreshed = 0;
  for (cycle_t t = 50; t <= 1000; t += 50) {
    refreshed += f.policy.advance(t);
    f.cache.access(0, false, t);  // keep it warm
  }
  EXPECT_TRUE(f.cache.contains(0));
  EXPECT_EQ(f.policy.decayed_lines(), 0u);
  EXPECT_GT(refreshed, 0u);  // still refreshed once per retention
}

TEST(CacheDecay, DirtyDecayCountsWriteback) {
  DecayFixture f;
  f.cache.access(0, true, 10);  // dirty
  f.policy.advance(300);
  EXPECT_EQ(f.policy.decay_writebacks(), 1u);
  EXPECT_FALSE(f.cache.contains(0));
}

TEST(CacheDecay, RefillRepowersSlot) {
  DecayFixture f;
  f.cache.access(0, false, 10);
  f.policy.advance(300);  // decayed
  const std::uint64_t trans_after_decay = f.policy.transitions();
  f.cache.access(0, false, 310);  // miss, refills the gated slot
  EXPECT_EQ(f.policy.transitions(), trans_after_decay + 1);  // gate back on
  EXPECT_DOUBLE_EQ(f.policy.active_fraction(), 1.0);
}

TEST(CacheDecay, Validation) {
  cache::SetAssocCache c{{2, 2}};
  EXPECT_THROW(CacheDecayPolicy(c, 0, 10, 10), std::invalid_argument);
  EXPECT_THROW(CacheDecayPolicy(c, 10, 0, 10), std::invalid_argument);
  EXPECT_THROW(CacheDecayPolicy(c, 10, 10, 0), std::invalid_argument);
}

TEST(CacheDecay, SystemRunSavesRefreshesAndLeakage) {
  SystemConfig cfg = SystemConfig::single_core();
  cfg.l1.geom = CacheGeometry{8ULL * 1024, 4, 64};
  cfg.l2.geom = CacheGeometry{512ULL * 1024, 8, 64};
  cfg.edram.retention_us = 5.0;
  cfg.edram.decay_interval_retentions = 4.0;
  cfg.esteem.modules = 8;
  cfg.esteem.interval_cycles = 100'000;

  cpu::System base(cfg, cpu::Technique::BaselinePeriodicAll, {"gamess"}, 42);
  cpu::System decay(cfg, cpu::Technique::CacheDecay, {"gamess"}, 42);
  cpu::RunOptions opt;
  opt.instr_per_core = 400'000;
  const auto rb = base.run(opt);
  const auto rd = decay.run(opt);

  EXPECT_LT(rd.refreshes, rb.refreshes);
  EXPECT_LT(rd.avg_active_ratio, 1.0);   // dead blocks gated off
  EXPECT_GT(rd.avg_active_ratio, 0.05);
  EXPECT_GT(rd.counters.transitions, 0u);
}

}  // namespace
}  // namespace esteem::edram

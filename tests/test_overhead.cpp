// Tests for the storage-overhead formula (paper §5, Eq. 1).
#include <gtest/gtest.h>

#include "core/overhead.hpp"

namespace esteem::core {
namespace {

TEST(Overhead, PaperHeadlineValue) {
  // "For a 4MB cache with 16 modules and 16-way set-associativity, the
  //  overhead of ESTEEM is found to be 0.06% of the L2 cache size."
  OverheadInputs in;  // defaults are exactly that configuration (S = 4096)
  EXPECT_NEAR(overhead_percent(in), 0.06, 0.005);
  EXPECT_LT(overhead_percent(in), 0.1);  // "less than 0.1%" (§1.1)
}

TEST(Overhead, CounterStorageFormula) {
  OverheadInputs in;
  in.ways = 16;
  in.modules = 16;
  in.counter_bits = 40;
  // (2A+1) * M * 40 = 33 * 16 * 40 bits.
  EXPECT_EQ(counter_storage_bits(in), 33ULL * 16 * 40);
}

TEST(Overhead, ScalesLinearlyWithModules) {
  OverheadInputs a, b;
  a.modules = 8;
  b.modules = 32;
  EXPECT_NEAR(overhead_percent(b) / overhead_percent(a), 4.0, 1e-9);
}

TEST(Overhead, LargerCachesHaveSmallerOverhead) {
  OverheadInputs small, large;
  small.sets = 2048;  // 2 MB at 16 ways, 64 B lines
  large.sets = 8192;  // 8 MB
  EXPECT_GT(overhead_percent(small), overhead_percent(large));
}

TEST(Overhead, RejectsEmptyCache) {
  OverheadInputs in;
  in.sets = 0;
  EXPECT_THROW(overhead_percent(in), std::invalid_argument);
}

}  // namespace
}  // namespace esteem::core

// Tests for the resilience layer: CRC-32, the crash-safe journal file (and
// totality fuzz over its codec/loader), the lock-file lease fallback, the
// shutdown flag, the run watchdog, and the retry policy.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "resilience/crc32.hpp"
#include "resilience/journal_file.hpp"
#include "resilience/lock_file.hpp"
#include "resilience/shutdown.hpp"
#include "resilience/watchdog.hpp"

namespace esteem::resilience {
namespace {

namespace fs = std::filesystem;

TEST(Crc32, KnownAnswer) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(std::string("")), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = crc32(data);
  const std::uint32_t head = crc32(data.data(), 10);
  EXPECT_EQ(crc32(data.data() + 10, data.size() - 10, head), whole);
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::string data = "payload";
  const std::uint32_t before = crc32(data);
  data[3] ^= 0x01;
  EXPECT_NE(crc32(data), before);
}

JournalRecord sample_record() {
  JournalRecord rec;
  rec.kind = "row";
  rec.fields = {{"workload", "mcf"}, {"data", "9a3f00ff"}};
  return rec;
}

TEST(JournalFileCodec, EncodeDecodeRoundTrip) {
  const JournalRecord rec = sample_record();
  const std::string line = JournalFile::encode(rec);
  EXPECT_EQ(line.rfind("{\"v\":1,\"kind\":\"row\"", 0), 0u);
  EXPECT_NE(line.find("\"crc\":\""), std::string::npos);

  JournalRecord out;
  ASSERT_TRUE(JournalFile::decode(line, out));
  EXPECT_EQ(out.kind, "row");
  EXPECT_EQ(out.field("workload"), "mcf");
  EXPECT_EQ(out.field("data"), "9a3f00ff");
  EXPECT_EQ(out.field("no-such-key"), "");
}

TEST(JournalFileCodec, DecodeRejectsTamperedLine) {
  std::string line = JournalFile::encode(sample_record());
  const std::size_t pos = line.find("mcf");
  ASSERT_NE(pos, std::string::npos);
  line[pos] = 'x';  // flip a payload byte; the CRC must catch it
  JournalRecord out;
  EXPECT_FALSE(JournalFile::decode(line, out));
}

TEST(JournalFileCodec, DecodeRejectsTornLine) {
  const std::string line = JournalFile::encode(sample_record());
  JournalRecord out;
  // A crash mid-append leaves a prefix of the line; every proper prefix
  // must be rejected (missing crc field or failed checksum).
  EXPECT_FALSE(JournalFile::decode(line.substr(0, line.size() / 2), out));
  EXPECT_FALSE(JournalFile::decode(line.substr(0, line.size() - 1), out));
  EXPECT_FALSE(JournalFile::decode("", out));
  EXPECT_FALSE(JournalFile::decode("not json at all", out));
}

TEST(JournalFile, AppendLoadRoundTripAndTornTail) {
  const fs::path path = fs::temp_directory_path() / "esteem-journal-test.jsonl";
  fs::remove(path);

  JournalFile journal;
  ASSERT_TRUE(journal.open(path.string(), /*truncate=*/true));
  ASSERT_TRUE(journal.is_open());
  for (int i = 0; i < 3; ++i) {
    JournalRecord rec = sample_record();
    rec.fields[0].second = "wl" + std::to_string(i);
    ASSERT_TRUE(journal.append(rec));
  }
  journal.close();
  EXPECT_FALSE(journal.is_open());

  // Simulate a crash mid-append: a torn, newline-less tail.
  {
    std::ofstream tail(path, std::ios::app | std::ios::binary);
    tail << "{\"v\":1,\"kind\":\"row\",\"workload\":\"torn";
  }

  const JournalLoadResult loaded = JournalFile::load(path.string());
  EXPECT_TRUE(loaded.exists);
  ASSERT_EQ(loaded.records.size(), 3u);
  EXPECT_EQ(loaded.records[0].field("workload"), "wl0");
  EXPECT_EQ(loaded.records[2].field("workload"), "wl2");
  EXPECT_EQ(loaded.corrupt_lines, 1u);
  fs::remove(path);
}

TEST(JournalFile, DamagedInteriorLinesAreSkippedAndCounted) {
  const fs::path path = fs::temp_directory_path() / "esteem-journal-interior.jsonl";
  fs::remove(path);

  // Hand-build a file where damage sits *between* good records — the
  // multi-writer case where one process died mid-append and others kept
  // going. The loader must keep everything after the damage.
  JournalRecord good = sample_record();
  {
    std::ofstream out(path, std::ios::binary);
    good.fields[0].second = "wl0";
    out << JournalFile::encode(good) << "\n";
    out << "{\"v\":1,\"kind\":\"row\",\"workload\":\"torn\n";  // torn, CRC-less
    out << "complete garbage, not even json\n";
    good.fields[0].second = "wl1";
    out << JournalFile::encode(good) << "\n";
  }

  const JournalLoadResult loaded = JournalFile::load(path.string());
  EXPECT_TRUE(loaded.exists);
  ASSERT_EQ(loaded.records.size(), 2u);
  EXPECT_EQ(loaded.records[0].field("workload"), "wl0");
  EXPECT_EQ(loaded.records[1].field("workload"), "wl1");
  EXPECT_EQ(loaded.corrupt_lines, 2u);
  fs::remove(path);
}

TEST(JournalFile, GluedRecordAfterTornFragmentIsSalvaged) {
  const fs::path path = fs::temp_directory_path() / "esteem-journal-glued.jsonl";
  fs::remove(path);

  // A writer crashed before its newline, so the next writer's intact record
  // landed on the *same* line. The fragment is lost (counted), but the
  // intact suffix record must be recovered — dropping it would turn one
  // crash into data loss for an innocent process.
  JournalRecord good = sample_record();
  good.fields[0].second = "glued";
  {
    std::ofstream out(path, std::ios::binary);
    out << "{\"v\":1,\"kind\":\"row\",\"workload\":\"torn"
        << JournalFile::encode(good) << "\n";
  }

  const JournalLoadResult loaded = JournalFile::load(path.string());
  EXPECT_TRUE(loaded.exists);
  ASSERT_EQ(loaded.records.size(), 1u);
  EXPECT_EQ(loaded.records[0].field("workload"), "glued");
  EXPECT_EQ(loaded.corrupt_lines, 1u);
  fs::remove(path);
}

TEST(JournalFile, LoadMissingFileReportsNotExists) {
  const JournalLoadResult loaded = JournalFile::load("/nonexistent/dir/journal");
  EXPECT_FALSE(loaded.exists);
  EXPECT_TRUE(loaded.records.empty());
}

TEST(JournalFile, OpenExtendsUnlessTruncated) {
  const fs::path path = fs::temp_directory_path() / "esteem-journal-extend.jsonl";
  fs::remove(path);

  JournalFile journal;
  ASSERT_TRUE(journal.open(path.string(), /*truncate=*/true));
  ASSERT_TRUE(journal.append(sample_record()));
  journal.close();

  ASSERT_TRUE(journal.open(path.string(), /*truncate=*/false));
  ASSERT_TRUE(journal.append(sample_record()));
  journal.close();
  EXPECT_EQ(JournalFile::load(path.string()).records.size(), 2u);

  ASSERT_TRUE(journal.open(path.string(), /*truncate=*/true));
  ASSERT_TRUE(journal.append(sample_record()));
  journal.close();
  EXPECT_EQ(JournalFile::load(path.string()).records.size(), 1u);
  fs::remove(path);
}

TEST(JournalFile, AppendOnClosedJournalFails) {
  JournalFile journal;
  EXPECT_FALSE(journal.append(sample_record()));
  EXPECT_FALSE(journal.open("/nonexistent/dir/journal", true));
  EXPECT_FALSE(journal.last_error().empty());
}

TEST(EventRecordCodec, JournalRoundTripIsTotal) {
  EventRecord ev;
  ev.t_ms = 1722988800123;
  ev.sim_us = 42.5;
  ev.severity = "warn";
  ev.source = "worker-1";
  // Hex-wrapped payload: newlines and quotes must survive the line format.
  ev.message = "claimed \"mcf/esteem\"\nsecond line";
  ev.lease_id = 0xDEADBEEFCAFEF00DULL;
  ev.row = 3;

  const JournalRecord rec = ev.to_journal();
  EXPECT_EQ(rec.kind, "evt");
  // Through the full checksummed line codec, the way sidecars carry it.
  JournalRecord decoded;
  ASSERT_TRUE(JournalFile::decode(JournalFile::encode(rec), decoded));
  EventRecord out;
  ASSERT_TRUE(EventRecord::from_journal(decoded, out));
  EXPECT_EQ(out.t_ms, ev.t_ms);
  EXPECT_EQ(out.sim_us, 42.5);
  EXPECT_EQ(out.severity, ev.severity);
  EXPECT_EQ(out.source, ev.source);
  EXPECT_EQ(out.message, ev.message);
  EXPECT_EQ(out.lease_id, ev.lease_id);
  EXPECT_EQ(out.row, 3u);

  // Defaults (no row, no lease, no sim time) round-trip too.
  EventRecord bare;
  bare.severity = "info";
  bare.source = "w";
  ASSERT_TRUE(EventRecord::from_journal(bare.to_journal(), out));
  EXPECT_EQ(out.row, EventRecord::kNoRow);
  EXPECT_EQ(out.lease_id, 0u);
  EXPECT_LT(out.sim_us, 0.0);
  EXPECT_TRUE(out.message.empty());

  // Foreign kinds and mangled fields are rejected, not misread.
  EXPECT_FALSE(EventRecord::from_journal(sample_record(), out));
  JournalRecord torn = ev.to_journal();
  for (auto& [key, value] : torn.fields) {
    if (key == "lease") value = "not-hex";
  }
  EXPECT_FALSE(EventRecord::from_journal(torn, out));
}

// Totality fuzz over the line codec: decode() must never crash and never
// mis-accept. Deterministic xorshift mutations over real encoded lines —
// an accepted mutant must re-encode to the exact bytes it decoded from
// (i.e. the only accepted inputs are genuine encodings).
TEST(JournalFileFuzz, DecodeIsTotalOverMutatedLines) {
  std::uint64_t rng = 0x9e3779b97f4a7c15ULL;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };

  JournalRecord rec = sample_record();
  for (int variant = 0; variant < 4; ++variant) {
    rec.fields[1].second = std::string(static_cast<std::size_t>(variant) * 7, 'a');
    const std::string line = JournalFile::encode(rec);

    // Every prefix and suffix (torn writes from either end).
    for (std::size_t n = 0; n <= line.size(); ++n) {
      JournalRecord out;
      if (JournalFile::decode(line.substr(0, n), out)) EXPECT_EQ(n, line.size());
      JournalRecord out2;
      if (JournalFile::decode(line.substr(n), out2)) EXPECT_EQ(n, 0u);
    }

    for (int i = 0; i < 500; ++i) {
      std::string mutated = line;
      switch (next() % 3) {
        case 0:  // flip a byte
          mutated[next() % mutated.size()] =
              static_cast<char>(next() & 0xFF);
          break;
        case 1:  // truncate
          mutated.resize(next() % (mutated.size() + 1));
          break;
        default:  // insert a byte
          mutated.insert(mutated.begin() + static_cast<std::ptrdiff_t>(
                             next() % (mutated.size() + 1)),
                         static_cast<char>(next() & 0xFF));
          break;
      }
      JournalRecord out;
      if (JournalFile::decode(mutated, out)) {
        EXPECT_EQ(JournalFile::encode(out), mutated)
            << "decode accepted bytes it cannot re-encode";
      }
    }
  }
}

// Totality fuzz over whole files: load() never crashes, and every record it
// returns is one of the lines actually written (CRC gates out mutants).
TEST(JournalFileFuzz, LoadOnlyReturnsGenuineRecords) {
  const fs::path path = fs::temp_directory_path() / "esteem-journal-fuzz.jsonl";
  std::string pristine;
  std::vector<std::string> genuine_lines;
  {
    JournalRecord rec = sample_record();
    std::ostringstream file;
    for (int i = 0; i < 6; ++i) {
      rec.fields[0].second = "wl" + std::to_string(i);
      genuine_lines.push_back(JournalFile::encode(rec));
      file << genuine_lines.back() << "\n";
    }
    pristine = file.str();
  }

  std::uint64_t rng = 0xdeadbeefcafef00dULL;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int i = 0; i < 200; ++i) {
    std::string mutated = pristine;
    const int edits = 1 + static_cast<int>(next() % 3);
    for (int e = 0; e < edits; ++e) {
      switch (next() % 3) {
        case 0:
          mutated[next() % mutated.size()] = static_cast<char>(next() & 0xFF);
          break;
        case 1:
          mutated.resize(next() % (mutated.size() + 1));
          if (mutated.empty()) mutated = "x";
          break;
        default:
          mutated.insert(mutated.begin() + static_cast<std::ptrdiff_t>(
                             next() % (mutated.size() + 1)),
                         static_cast<char>(next() & 0xFF));
          break;
      }
    }
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << mutated;
    }
    const JournalLoadResult loaded = JournalFile::load(path.string());
    EXPECT_TRUE(loaded.exists);
    for (const JournalRecord& rec : loaded.records) {
      const std::string line = JournalFile::encode(rec);
      bool known = false;
      for (const std::string& g : genuine_lines) known = known || g == line;
      EXPECT_TRUE(known) << "loader surfaced a record nobody wrote: " << line;
    }
  }
  fs::remove(path);
}

TEST(LockFileTest, SecondAcquireFailsUntilReleased) {
  const fs::path path = fs::temp_directory_path() / "esteem-lock-excl.lock";
  fs::remove(path);

  LockFile a;
  ASSERT_TRUE(a.acquire(path.string(), "owner-a", /*stale_ms=*/60'000,
                        /*timeout_ms=*/1'000));
  EXPECT_TRUE(a.held());

  LockFile b;
  EXPECT_FALSE(b.acquire(path.string(), "owner-b", 60'000, /*timeout_ms=*/60));
  EXPECT_FALSE(b.held());
  EXPECT_FALSE(b.last_error().empty());

  a.release();
  EXPECT_FALSE(a.held());
  EXPECT_TRUE(b.acquire(path.string(), "owner-b", 60'000, 1'000));
  b.release();
  fs::remove(path);
}

TEST(LockFileTest, StaleLockFromDeadHolderIsBroken) {
  const fs::path path = fs::temp_directory_path() / "esteem-lock-stale.lock";
  fs::remove(path);
  {
    std::ofstream out(path);
    out << "dead-holder";
  }
  // Age the file past the stale horizon the way a crashed holder's lock
  // looks after its TTL elapsed.
  fs::last_write_time(path,
                      fs::file_time_type::clock::now() - std::chrono::seconds(30));

  LockFile lock;
  ASSERT_TRUE(lock.acquire(path.string(), "thief", /*stale_ms=*/1'000,
                           /*timeout_ms=*/2'000));
  EXPECT_TRUE(lock.held());
  lock.release();
  EXPECT_FALSE(fs::exists(path));
}

TEST(LockFileTest, FreshForeignLockIsRespected) {
  const fs::path path = fs::temp_directory_path() / "esteem-lock-fresh.lock";
  fs::remove(path);
  {
    std::ofstream out(path);
    out << "live-holder";
  }
  LockFile lock;
  // A just-written lock is NOT stale: the acquire must time out rather
  // than steal from a live holder.
  EXPECT_FALSE(lock.acquire(path.string(), "thief", /*stale_ms=*/60'000,
                            /*timeout_ms=*/80));
  EXPECT_TRUE(fs::exists(path));
  fs::remove(path);
}

TEST(Shutdown, RequestAndClear) {
  clear_shutdown();
  EXPECT_FALSE(shutdown_requested());
  request_shutdown();
  EXPECT_TRUE(shutdown_requested());
  request_shutdown();  // idempotent
  EXPECT_TRUE(shutdown_requested());
  clear_shutdown();
  EXPECT_FALSE(shutdown_requested());
}

TEST(Shutdown, InstallHandlersIsIdempotent) {
  install_signal_handlers();
  install_signal_handlers();
  EXPECT_FALSE(shutdown_requested());
}

TEST(Backoff, DoublesPerAttemptAndCapsTheShift) {
  EXPECT_EQ(next_backoff_ms(0, 100), 100u);
  EXPECT_EQ(next_backoff_ms(1, 100), 200u);
  EXPECT_EQ(next_backoff_ms(4, 100), 1600u);
  EXPECT_EQ(next_backoff_ms(0, 0), 0u);
  // The multiplier saturates at 2^16 so huge attempt counts stay defined.
  EXPECT_EQ(next_backoff_ms(16, 1), 1u << 16);
  EXPECT_EQ(next_backoff_ms(1000, 1), 1u << 16);
}

TEST(Retry, TransientFailuresRetryThenSucceed) {
  RetryPolicy policy;
  policy.max_retries = 3;
  policy.backoff_ms = 0;
  int calls = 0;
  int retries = 0;
  const int result = with_retries(
      policy,
      [&] {
        if (++calls < 3) throw std::runtime_error("transient");
        return 7;
      },
      [&](std::uint32_t, std::uint64_t) { ++retries; });
  EXPECT_EQ(result, 7);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2);
}

TEST(Retry, ExhaustedRetriesPropagateTheFinalFailure) {
  RetryPolicy policy;
  policy.max_retries = 2;
  policy.backoff_ms = 0;
  int calls = 0;
  int retries = 0;
  EXPECT_THROW(with_retries(
                   policy,
                   [&]() -> int {
                     ++calls;
                     throw std::runtime_error("permanent");
                   },
                   [&](std::uint32_t, std::uint64_t) { ++retries; }),
               std::runtime_error);
  EXPECT_EQ(calls, 3);  // first attempt + 2 retries
  EXPECT_EQ(retries, 2);
}

TEST(Retry, DeadlineOverrunsAreNeverRetried) {
  RetryPolicy policy;
  policy.max_retries = 5;
  policy.backoff_ms = 0;
  int calls = 0;
  int retries = 0;
  EXPECT_THROW(with_retries(
                   policy,
                   [&]() -> int {
                     ++calls;
                     throw DeadlineExceeded("slow-run", 10);
                   },
                   [&](std::uint32_t, std::uint64_t) { ++retries; }),
               DeadlineExceeded);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retries, 0);
}

TEST(WatchdogTest, DeadlineExceededCarriesLabelAndBudget) {
  const DeadlineExceeded e("baseline:mcf", 250);
  const std::string what = e.what();
  EXPECT_NE(what.find("baseline:mcf"), std::string::npos);
  EXPECT_NE(what.find("250"), std::string::npos);
}

TEST(WatchdogTest, ZeroDeadlineGuardIsInert) {
  const std::size_t before = Watchdog::instance().active();
  WatchdogGuard guard("inert", 0);
  EXPECT_EQ(Watchdog::instance().active(), before);
  EXPECT_FALSE(guard.expired());
}

TEST(WatchdogTest, FastRunIsNotExpired) {
  WatchdogGuard guard("fast", 60'000);
  EXPECT_EQ(Watchdog::instance().active(), 1u);
  EXPECT_FALSE(guard.expired());
  EXPECT_EQ(Watchdog::instance().active(), 0u);
}

TEST(WatchdogTest, SlowRunExpires) {
  WatchdogGuard guard("slow", 5);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(guard.expired());
  EXPECT_EQ(Watchdog::instance().active(), 0u);
}

TEST(WatchdogTest, GuardDestructorDeregistersOnExceptionPath) {
  try {
    WatchdogGuard guard("throwing", 60'000);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(Watchdog::instance().active(), 0u);
}

}  // namespace
}  // namespace esteem::resilience

// Unit tests for src/common: rng, stats, config, table, csv, env, types.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/config.hpp"
#include "common/csv.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

namespace esteem {
namespace {

TEST(Types, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(4097));
}

TEST(Types, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(4096), 12u);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000003ULL}) {
    for (int i = 0; i < 2000; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowCoversSmallRange) {
  Rng rng(9);
  std::array<int, 4> seen{};
  for (int i = 0; i < 4000; ++i) ++seen[rng.below(4)];
  for (int count : seen) EXPECT_GT(count, 800);  // roughly uniform
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Stats, MeanGeomeanStddev) {
  const std::vector<double> xs{1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 7.0 / 3.0);
  EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt((16.0 / 9 + 1.0 / 9 + 25.0 / 9) / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 7.0);
}

TEST(Stats, RunningStat) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.add(2.0);
  s.add(4.0);
  s.add(-6.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -6.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(Stats, Histogram) {
  Histogram h(4);
  h.add(0);
  h.add(1, 5);
  h.add(3);
  h.add(99);  // out of range: ignored
  EXPECT_EQ(h.at(0), 1u);
  EXPECT_EQ(h.at(1), 5u);
  EXPECT_EQ(h.at(2), 0u);
  EXPECT_EQ(h.at(3), 1u);
  EXPECT_EQ(h.total(), 7u);
  h.clear();
  EXPECT_EQ(h.total(), 0u);
}

TEST(Config, PaperDefaultsSingleCore) {
  const SystemConfig cfg = SystemConfig::single_core();
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_EQ(cfg.ncores, 1u);
  EXPECT_EQ(cfg.l2.geom.size_bytes, 4ULL * 1024 * 1024);
  EXPECT_EQ(cfg.l2.geom.ways, 16u);
  EXPECT_EQ(cfg.l2.geom.sets(), 4096u);
  EXPECT_EQ(cfg.l2.latency_cycles, 12u);
  EXPECT_EQ(cfg.l1.geom.size_bytes, 32ULL * 1024);
  EXPECT_EQ(cfg.l1.latency_cycles, 2u);
  EXPECT_EQ(cfg.mem.latency_cycles, 220u);
  EXPECT_DOUBLE_EQ(cfg.mem.bandwidth_gbps, 10.0);
  EXPECT_DOUBLE_EQ(cfg.esteem.alpha, 0.97);
  EXPECT_EQ(cfg.esteem.a_min, 3u);
  EXPECT_EQ(cfg.esteem.modules, 8u);
  EXPECT_EQ(cfg.esteem.sampling_ratio, 64u);
  // 50 us at 2 GHz = 100k cycles.
  EXPECT_EQ(cfg.retention_cycles(), 100'000u);
}

TEST(Config, PaperDefaultsDualCore) {
  const SystemConfig cfg = SystemConfig::dual_core();
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_EQ(cfg.ncores, 2u);
  EXPECT_EQ(cfg.l2.geom.size_bytes, 8ULL * 1024 * 1024);
  EXPECT_DOUBLE_EQ(cfg.mem.bandwidth_gbps, 15.0);
  EXPECT_EQ(cfg.esteem.modules, 16u);
}

TEST(Config, MemServiceCycles) {
  const SystemConfig cfg = SystemConfig::single_core();
  // 64 B at 10 GB/s and 2 GHz: 5 bytes/cycle -> 12.8 cycles per line.
  EXPECT_NEAR(cfg.mem_service_cycles(), 12.8, 1e-12);
}

TEST(Config, ValidationRejectsBadParameters) {
  auto broken = [] { return SystemConfig::single_core(); };
  {
    auto cfg = broken();
    cfg.esteem.a_min = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    auto cfg = broken();
    cfg.esteem.a_min = cfg.l2.geom.ways + 1;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    auto cfg = broken();
    cfg.esteem.alpha = 0.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    auto cfg = broken();
    cfg.esteem.modules = 3;  // does not divide 4096
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    auto cfg = broken();
    cfg.l2.banks = 3;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    auto cfg = broken();
    cfg.edram.retention_us = 0.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    auto cfg = broken();
    cfg.l1.geom.line_bytes = 32;  // mismatched line sizes
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
}

TEST(Table, AlignsAndSeparates) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"alpha", "0.97"});
  t.add_separator();
  t.add_row({"average", "1.09"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("0.97"), std::string::npos);
  EXPECT_NE(s.find("average"), std::string::npos);
  // Header rule + separator + top/bottom rules = at least 4 rules.
  std::size_t rules = 0;
  std::istringstream is(s);
  for (std::string line; std::getline(is, line);) rules += line.starts_with('+');
  EXPECT_GE(rules, 4u);
}

TEST(Table, Fmt) {
  EXPECT_EQ(fmt(1.2345, 2), "1.23");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
  EXPECT_EQ(fmt_bytes(4ULL * 1024 * 1024), "4MB");
  EXPECT_EQ(fmt_bytes(32ULL * 1024), "32KB");
  EXPECT_EQ(fmt_bytes(100), "100B");
}

TEST(Csv, EscapesSpecialCells) {
  const std::string path = "test_csv_out.csv";
  {
    CsvWriter csv(path);
    csv.write_row({"a,b", "plain", "with \"quote\""});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "\"a,b\",plain,\"with \"\"quote\"\"\"");
  std::filesystem::remove(path);
}

TEST(Env, ReadsAndFallsBack) {
  ::setenv("ESTEEM_TEST_ENV_U64", "1234", 1);
  EXPECT_EQ(env_u64("ESTEEM_TEST_ENV_U64", 7), 1234u);
  ::unsetenv("ESTEEM_TEST_ENV_U64");
  EXPECT_EQ(env_u64("ESTEEM_TEST_ENV_U64", 7), 7u);
  ::setenv("ESTEEM_TEST_ENV_U64", "not-a-number", 1);
  EXPECT_EQ(env_u64("ESTEEM_TEST_ENV_U64", 7), 7u);
  ::unsetenv("ESTEEM_TEST_ENV_U64");
  EXPECT_EQ(env_str("ESTEEM_TEST_ENV_STR", "dflt"), "dflt");
}

}  // namespace
}  // namespace esteem

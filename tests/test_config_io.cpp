// Tests for the INI config loader/saver.
#include <gtest/gtest.h>

#include <sstream>

#include "common/config_io.hpp"

namespace esteem {
namespace {

TEST(ConfigIo, RoundTripsDefaults) {
  const SystemConfig original = SystemConfig::dual_core();
  std::stringstream ss;
  save_config(original, ss);
  const SystemConfig loaded = load_config(ss);

  EXPECT_EQ(loaded.ncores, original.ncores);
  EXPECT_EQ(loaded.l2.geom.size_bytes, original.l2.geom.size_bytes);
  EXPECT_EQ(loaded.l2.geom.ways, original.l2.geom.ways);
  EXPECT_EQ(loaded.l2.banks, original.l2.banks);
  EXPECT_DOUBLE_EQ(loaded.l2.refresh_occupancy_cycles,
                   original.l2.refresh_occupancy_cycles);
  EXPECT_DOUBLE_EQ(loaded.edram.retention_us, original.edram.retention_us);
  EXPECT_DOUBLE_EQ(loaded.mem.bandwidth_gbps, original.mem.bandwidth_gbps);
  EXPECT_DOUBLE_EQ(loaded.esteem.alpha, original.esteem.alpha);
  EXPECT_EQ(loaded.esteem.a_min, original.esteem.a_min);
  EXPECT_EQ(loaded.esteem.modules, original.esteem.modules);
  EXPECT_EQ(loaded.esteem.interval_cycles, original.esteem.interval_cycles);
  EXPECT_EQ(loaded.esteem.nonlru_guard, original.esteem.nonlru_guard);
  EXPECT_DOUBLE_EQ(loaded.esteem.history_weight, original.esteem.history_weight);
}

TEST(ConfigIo, PartialConfigKeepsDefaults) {
  std::stringstream ss("[l2]\nsize_kb = 2048\n[esteem]\nalpha = 0.95\n");
  const SystemConfig cfg = load_config(ss);
  EXPECT_EQ(cfg.l2.geom.size_bytes, 2048ULL * 1024);
  EXPECT_DOUBLE_EQ(cfg.esteem.alpha, 0.95);
  // Untouched keys stay at the paper defaults.
  EXPECT_EQ(cfg.l2.geom.ways, 16u);
  EXPECT_EQ(cfg.esteem.a_min, 3u);
}

TEST(ConfigIo, RoundTripsFaultsSection) {
  SystemConfig original;
  original.faults.enabled = true;
  original.faults.seed = 1234;
  original.faults.median_multiple = 24.0;
  original.faults.sigma = 0.5;
  original.faults.correction_latency_cycles = 7;
  original.faults.disable_threshold = 2;
  original.faults.max_tracked_extension = 12;

  std::stringstream ss;
  save_config(original, ss);
  EXPECT_NE(ss.str().find("[faults]"), std::string::npos);
  const SystemConfig loaded = load_config(ss);
  EXPECT_TRUE(loaded.faults.enabled);
  EXPECT_EQ(loaded.faults.seed, 1234u);
  EXPECT_DOUBLE_EQ(loaded.faults.median_multiple, 24.0);
  EXPECT_DOUBLE_EQ(loaded.faults.sigma, 0.5);
  EXPECT_EQ(loaded.faults.correction_latency_cycles, 7u);
  EXPECT_EQ(loaded.faults.disable_threshold, 2u);
  EXPECT_EQ(loaded.faults.max_tracked_extension, 12u);
}

TEST(ConfigIo, ValidatesFaultsSection) {
  {
    std::stringstream ss("[faults]\nsigma = 0\n");
    EXPECT_THROW(load_config(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("[faults]\nmedian_multiple = -1\n");
    EXPECT_THROW(load_config(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("[faults]\ndisable_threshold = 0\n");
    EXPECT_THROW(load_config(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("[faults]\nmax_tracked_extension = 0\n");
    EXPECT_THROW(load_config(ss), std::invalid_argument);
  }
}

TEST(ConfigIo, IgnoresCommentsAndBlankLines) {
  std::stringstream ss(
      "# a comment\n\n; another\n[esteem]\n  a_min = 2  \n# trailing\n");
  EXPECT_EQ(load_config(ss).esteem.a_min, 2u);
}

TEST(ConfigIo, RejectsUnknownKey) {
  std::stringstream ss("[esteem]\nalfa = 0.97\n");
  EXPECT_THROW(load_config(ss), std::invalid_argument);
}

TEST(ConfigIo, RejectsUnknownSection) {
  std::stringstream ss("[l3]\nsize_kb = 1024\n");
  EXPECT_THROW(load_config(ss), std::invalid_argument);
}

TEST(ConfigIo, RejectsMalformedLines) {
  {
    std::stringstream ss("[esteem\nalpha = 0.97\n");
    EXPECT_THROW(load_config(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("[esteem]\nalpha 0.97\n");
    EXPECT_THROW(load_config(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("[esteem]\nalpha = zero\n");
    EXPECT_THROW(load_config(ss), std::invalid_argument);
  }
}

TEST(ConfigIo, ValidatesLoadedValues) {
  // Parses fine but fails SystemConfig::validate (A_min > ways).
  std::stringstream ss("[esteem]\na_min = 99\n");
  EXPECT_THROW(load_config(ss), std::invalid_argument);
}

TEST(ConfigIo, ParseErrorsCarryLineNumbers) {
  {
    std::stringstream ss("[esteem\nalpha = 0.97\n");
    try {
      load_config(ss);
      FAIL() << "unterminated section header accepted";
    } catch (const ConfigParseError& e) {
      EXPECT_EQ(e.line(), 1u);
      EXPECT_EQ(e.key(), "");
      EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
    }
  }
  {
    std::stringstream ss("# banner\n[esteem]\nalpha 0.97\n");
    try {
      load_config(ss);
      FAIL() << "missing '=' accepted";
    } catch (const ConfigParseError& e) {
      EXPECT_EQ(e.line(), 3u);
      EXPECT_NE(std::string(e.what()).find("key=value"), std::string::npos);
    }
  }
  {
    std::stringstream ss("[esteem]\nalfa = 0.97\n");
    try {
      load_config(ss);
      FAIL() << "unknown key accepted";
    } catch (const ConfigParseError& e) {
      EXPECT_EQ(e.line(), 2u);
      EXPECT_EQ(e.key(), "esteem.alfa");
    }
  }
  {
    // Bad values name the key, the offending value, and the line.
    std::stringstream ss("[esteem]\n\nalpha = fast\n");
    try {
      load_config(ss);
      FAIL() << "non-numeric value accepted";
    } catch (const ConfigParseError& e) {
      EXPECT_EQ(e.line(), 3u);
      EXPECT_EQ(e.key(), "esteem.alpha");
      const std::string what = e.what();
      EXPECT_NE(what.find("'fast'"), std::string::npos);
      EXPECT_NE(what.find("line 3"), std::string::npos);
    }
  }
}

TEST(ConfigIo, RejectsDuplicateKey) {
  std::stringstream ss("[esteem]\nalpha = 0.9\nalpha = 0.95\n");
  try {
    load_config(ss);
    FAIL() << "duplicate key accepted";
  } catch (const ConfigParseError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_EQ(e.key(), "esteem.alpha");
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
  }
}

TEST(ConfigIo, ParseErrorIsAnInvalidArgument) {
  // Pre-hardening call sites catch std::invalid_argument; the richer error
  // must keep satisfying them.
  std::stringstream ss("[esteem]\nalfa = 1\n");
  EXPECT_THROW(load_config(ss), std::invalid_argument);
}

TEST(ConfigIo, RoundTripsResilienceSection) {
  SystemConfig original;
  original.resilience.run_deadline_ms = 120'000;
  original.resilience.max_retries = 3;
  original.resilience.backoff_ms = 250;

  std::stringstream ss;
  save_config(original, ss);
  EXPECT_NE(ss.str().find("[resilience]"), std::string::npos);
  const SystemConfig loaded = load_config(ss);
  EXPECT_EQ(loaded.resilience.run_deadline_ms, 120'000u);
  EXPECT_EQ(loaded.resilience.max_retries, 3u);
  EXPECT_EQ(loaded.resilience.backoff_ms, 250u);

  // Defaults: watchdog and retries off, sane backoff base.
  const SystemConfig defaults;
  EXPECT_EQ(defaults.resilience.run_deadline_ms, 0u);
  EXPECT_EQ(defaults.resilience.max_retries, 0u);
  EXPECT_EQ(defaults.resilience.backoff_ms, 100u);
}

TEST(ConfigIo, MissingFileThrows) {
  EXPECT_THROW(load_config_file("/nonexistent/esteem.ini"), std::invalid_argument);
}

TEST(ConfigIo, LineBytesAppliesToBothLevels) {
  std::stringstream ss("[l2]\nline_bytes = 128\nsize_kb = 4096\n[l1]\nsize_kb = 32\n");
  const SystemConfig cfg = load_config(ss);
  EXPECT_EQ(cfg.l1.geom.line_bytes, 128u);
  EXPECT_EQ(cfg.l2.geom.line_bytes, 128u);
}

}  // namespace
}  // namespace esteem

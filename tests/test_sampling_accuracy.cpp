// Pinned-accuracy gate for the systematic-sampling executor (ISSUE 9
// acceptance, docs/SAMPLING.md §Validation): on every figure workload the
// sampled estimate ± its reported CI (plus the documented non-sampling bias
// allowance) must bracket the exhaustive value, and the technique orderings
// must agree (Spearman >= 0.95).
//
// This runs full exhaustive simulations at bench scale (8M instructions per
// core), so it is registered under the `sampling` ctest configuration
// (`ctest -C sampling`) rather than the default tier-1 set.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/run_cache.hpp"
#include "sim/runner.hpp"

namespace esteem::sim {
namespace {

constexpr instr_t kInstr = 8'000'000;
constexpr instr_t kWarmup = 1'600'000;

/// Non-sampling bias allowance, in absolute energy-saving percentage points,
/// added to the statistical CI when bracketing (docs/SAMPLING.md: warming
/// ramps and the CPI-estimated clock contribute systematic error the
/// Student-t interval cannot see).
constexpr double kBiasAllowancePct = 2.0;

SweepSpec bench_spec(bool sampled) {
  // The CLI's paper-default policy for a single-core sweep at this length
  // (tools/sweep_cli_common.hpp): interval scaled to the shortened run.
  SystemConfig cfg = SystemConfig::single_core();
  cfg.esteem.interval_cycles = std::max<cycle_t>(
      cfg.retention_cycles(),
      static_cast<cycle_t>(10e6 * 4.0 * static_cast<double>(kInstr) / 400e6));
  cfg.esteem.hysteresis_intervals = 2;
  cfg.esteem.shrink_confirm_intervals = 2;
  if (sampled) {
    cfg.sampling.enabled = true;
    cfg.sampling.window_instr = 40'000;
    cfg.sampling.detail_warm_instr = 10'000;
    cfg.sampling.ff_warm_instr = 200'000;
    cfg.sampling.cold_warm_instr = 2'000'000;
    // 16 windows over 8M instructions: at bench scale the noisy streaming
    // workloads (soplex, milc) need this many samples for their ordering to
    // stabilise; at paper scale the default 4M period yields 100 windows.
    cfg.sampling.period_instr = 500'000;
  }

  SweepSpec spec;
  spec.config = cfg;
  // Figure workloads spanning the behaviour space: cache-resident (gamess,
  // povray), mid-size (gobmk), streaming (milc, lbm), oversized (soplex).
  for (const char* w : {"gamess", "gobmk", "povray", "milc", "soplex", "lbm"}) {
    spec.workloads.push_back({w, {w}});
  }
  spec.techniques = {Technique::Esteem, Technique::RefrintRPV};
  spec.instr_per_core = kInstr;
  spec.warmup_instr_per_core = kWarmup;
  return spec;
}

double spearman(const std::vector<double>& a, const std::vector<double>& b) {
  auto ranks = [](const std::vector<double>& v) {
    std::vector<std::size_t> idx(v.size());
    std::iota(idx.begin(), idx.end(), 0u);
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t i, std::size_t j) { return v[i] < v[j]; });
    std::vector<double> r(v.size());
    for (std::size_t pos = 0; pos < idx.size(); ++pos) {
      r[idx[pos]] = static_cast<double>(pos);
    }
    return r;
  };
  const std::vector<double> ra = ranks(a);
  const std::vector<double> rb = ranks(b);
  double d2 = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    d2 += (ra[i] - rb[i]) * (ra[i] - rb[i]);
  }
  const double n = static_cast<double>(ra.size());
  return 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
}

TEST(SamplingAccuracy, SampledBracketsExhaustiveAndOrderingsAgree) {
  const SweepResult exhaustive = run_sweep(bench_spec(/*sampled=*/false));
  ASSERT_TRUE(exhaustive.ok());
  // Different fingerprints (sampling is keyed), but clear anyway so the
  // sampled leg cannot alias anything from this process's history.
  RunCache::instance().clear();
  const SweepResult sampled = run_sweep(bench_spec(/*sampled=*/true));
  ASSERT_TRUE(sampled.ok());

  ASSERT_EQ(exhaustive.rows.size(), sampled.rows.size());
  std::vector<double> es_exh;
  std::vector<double> es_samp;
  for (std::size_t w = 0; w < exhaustive.rows.size(); ++w) {
    const WorkloadRow& re = exhaustive.rows[w];
    const WorkloadRow& rs = sampled.rows[w];
    ASSERT_EQ(re.comparisons.size(), rs.comparisons.size());
    for (std::size_t t = 0; t < re.comparisons.size(); ++t) {
      const TechniqueComparison& e = re.comparisons[t];
      const TechniqueComparison& s = rs.comparisons[t];
      ASSERT_TRUE(s.sampled);
      es_exh.push_back(e.energy_saving_pct);
      es_samp.push_back(s.energy_saving_pct);

      const double diff = std::abs(e.energy_saving_pct - s.energy_saving_pct);
      EXPECT_LE(diff, s.energy_saving_ci + kBiasAllowancePct)
          << re.workload << "/" << to_string(s.technique)
          << ": exhaustive " << e.energy_saving_pct << " vs sampled "
          << s.energy_saving_pct << " ± " << s.energy_saving_ci;

      const double sp_diff = std::abs(e.weighted_speedup - s.weighted_speedup);
      EXPECT_LE(sp_diff, s.weighted_speedup_ci + 0.05)
          << re.workload << "/" << to_string(s.technique)
          << ": exhaustive speedup " << e.weighted_speedup << " vs sampled "
          << s.weighted_speedup << " ± " << s.weighted_speedup_ci;
    }
  }
  EXPECT_GE(spearman(es_exh, es_samp), 0.95);
}

}  // namespace
}  // namespace esteem::sim

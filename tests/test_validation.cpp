// Unit tests for the paper-fidelity validation layer: fidelity statistics
// (Spearman with ties, sign agreement, tolerance bands), the golden-file
// round trip, and the scale fingerprint that keys golden entries.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "validation/fidelity.hpp"
#include "validation/figures.hpp"
#include "validation/golden.hpp"
#include "validation/scale.hpp"

namespace esteem::validation {
namespace {

// ---------------------------------------------------------------------------
// rank_with_ties / spearman
// ---------------------------------------------------------------------------

TEST(RankWithTies, DistinctValuesGetOrdinalRanks) {
  const std::vector<double> ranks = rank_with_ties({30.0, 10.0, 20.0});
  ASSERT_EQ(ranks.size(), 3u);
  EXPECT_DOUBLE_EQ(ranks[0], 3.0);
  EXPECT_DOUBLE_EQ(ranks[1], 1.0);
  EXPECT_DOUBLE_EQ(ranks[2], 2.0);
}

TEST(RankWithTies, TiesShareTheAverageRank) {
  // 5 appears at sorted positions 2 and 3 -> both rank 2.5.
  const std::vector<double> ranks = rank_with_ties({5.0, 1.0, 5.0, 9.0});
  EXPECT_DOUBLE_EQ(ranks[0], 2.5);
  EXPECT_DOUBLE_EQ(ranks[1], 1.0);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(Spearman, PerfectMonotoneAgreementIsOne) {
  // Monotone but non-linear: rank correlation sees a perfect relationship.
  EXPECT_DOUBLE_EQ(spearman({1.0, 2.0, 3.0, 4.0}, {1.0, 4.0, 9.0, 16.0}), 1.0);
}

TEST(Spearman, ReversedOrderIsMinusOne) {
  EXPECT_DOUBLE_EQ(spearman({1.0, 2.0, 3.0, 4.0}, {8.0, 6.0, 4.0, 2.0}), -1.0);
}

TEST(Spearman, TiesStillYieldPerfectCorrelationWhenOrdersMatch) {
  // Identical tie structure on both sides keeps rho at exactly 1.
  const std::vector<double> a{1.0, 2.0, 2.0, 3.0};
  const std::vector<double> b{10.0, 20.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(spearman(a, b), 1.0);
}

TEST(Spearman, UndefinedCasesReturnNaN) {
  EXPECT_TRUE(std::isnan(spearman({1.0, 2.0}, {1.0})));        // size mismatch
  EXPECT_TRUE(std::isnan(spearman({1.0}, {1.0})));             // < 2 pairs
  EXPECT_TRUE(std::isnan(spearman({3.0, 3.0}, {1.0, 2.0})));   // constant side
}

// ---------------------------------------------------------------------------
// sign_agreement / BandCheck
// ---------------------------------------------------------------------------

TEST(SignAgreement, CountsAgreeingClaims) {
  const std::vector<SignClaim> claims{
      {"a", true, true}, {"b", true, false}, {"c", false, false}};
  EXPECT_DOUBLE_EQ(sign_agreement(claims), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(sign_agreement({}), 1.0);
}

TEST(BandCheck, RelativeBand) {
  BandCheck b{"rel", 103.0, 100.0, 0.05, true};
  EXPECT_NEAR(b.error(), 0.03, 1e-12);
  EXPECT_TRUE(b.pass());
  b.measured = 106.0;
  EXPECT_FALSE(b.pass());
}

TEST(BandCheck, AbsoluteBand) {
  BandCheck b{"abs", 1.004, 1.0, 0.01, false};
  EXPECT_TRUE(b.pass());
  b.measured = 1.02;
  EXPECT_FALSE(b.pass());
}

TEST(BandCheck, NearZeroReferenceReadsAsLargeRelativeError) {
  const BandCheck b{"zero-ref", 0.5, 0.0, 0.10, true};
  EXPECT_FALSE(b.pass());
}

// ---------------------------------------------------------------------------
// Golden file round trip
// ---------------------------------------------------------------------------

GoldenFile sample_golden() {
  GoldenFile file;
  file.generator = "unit test \"quoted\"\nsecond line";
  GoldenScale scale;
  scale.fingerprint = "v1;instr=300000;warmup=60000;seed=42;ifactor=4;hyst=2;shrink=2";
  scale.label = "smoke";
  GoldenFigure fig;
  fig.id = "fig3";
  fig.esteem_energy_pct = 23.456789012345678;
  fig.rpv_energy_pct = 19.75;
  fig.esteem_ws = 1.0009765625;
  fig.rpv_ws = 0.999;
  fig.esteem_rpki_dec = 433.25;
  fig.rpv_rpki_dec = 161.5;
  fig.esteem_mpki_inc = 0.125;
  fig.esteem_active_pct = 57.3;
  fig.workloads = {"gamess", "mcf", "h264ref"};
  fig.esteem_energy_savings = {30.1, 10.2, 25.3};
  fig.rpv_energy_savings = {20.0, 8.0, 15.0};
  scale.figures.push_back(fig);
  file.scales.push_back(scale);
  return file;
}

TEST(Golden, RoundTripIsExact) {
  const GoldenFile before = sample_golden();
  const GoldenFile after = golden_from_json(golden_to_json(before));

  ASSERT_EQ(after.scales.size(), 1u);
  EXPECT_EQ(after.generator, before.generator);
  const GoldenScale& s = after.scales[0];
  EXPECT_EQ(s.fingerprint, before.scales[0].fingerprint);
  EXPECT_EQ(s.label, "smoke");
  ASSERT_EQ(s.figures.size(), 1u);
  const GoldenFigure& a = s.figures[0];
  const GoldenFigure& b = before.scales[0].figures[0];
  // %.17g serialization: doubles survive bit-exactly.
  EXPECT_EQ(a.esteem_energy_pct, b.esteem_energy_pct);
  EXPECT_EQ(a.esteem_ws, b.esteem_ws);
  EXPECT_EQ(a.workloads, b.workloads);
  EXPECT_EQ(a.esteem_energy_savings, b.esteem_energy_savings);
  EXPECT_EQ(a.rpv_energy_savings, b.rpv_energy_savings);
}

TEST(Golden, SerializationIsStable) {
  // Render -> parse -> render must be byte-identical (CI diffs the file).
  const std::string once = golden_to_json(sample_golden());
  EXPECT_EQ(golden_to_json(golden_from_json(once)), once);
}

TEST(Golden, VersionMismatchIsRejected) {
  GoldenFile file = sample_golden();
  file.version = kGoldenVersion + 1;
  const std::string json = golden_to_json(file);
  EXPECT_THROW(golden_from_json(json), std::runtime_error);
}

TEST(Golden, MalformedInputIsRejected) {
  EXPECT_THROW(golden_from_json(""), std::runtime_error);
  EXPECT_THROW(golden_from_json("{\"version\": 1"), std::runtime_error);
  EXPECT_THROW(golden_from_json("[1, 2]"), std::runtime_error);
  EXPECT_THROW(golden_from_json("{\"version\": 1, \"generator\": \"g\"}"),
               std::runtime_error);
}

TEST(Golden, FindAndUpsertScale) {
  GoldenFile file = sample_golden();
  EXPECT_NE(file.find_scale(file.scales[0].fingerprint), nullptr);
  EXPECT_EQ(file.find_scale("v1;other"), nullptr);

  GoldenScale replacement = file.scales[0];
  replacement.figures[0].esteem_energy_pct = 99.0;
  file.upsert_scale(replacement);
  ASSERT_EQ(file.scales.size(), 1u);  // replaced, not appended
  EXPECT_DOUBLE_EQ(file.scales[0].figures[0].esteem_energy_pct, 99.0);

  GoldenScale fresh;
  fresh.fingerprint = "v1;other";
  file.upsert_scale(fresh);
  EXPECT_EQ(file.scales.size(), 2u);
}

// ---------------------------------------------------------------------------
// Scale fingerprints and the figure matrix
// ---------------------------------------------------------------------------

TEST(Scale, FingerprintSeparatesScales) {
  EXPECT_NE(scale_fingerprint(smoke_scale()), scale_fingerprint(ScaleSpec{}));
  ScaleSpec a = smoke_scale();
  ScaleSpec b = smoke_scale();
  b.seed = 43;
  EXPECT_NE(scale_fingerprint(a), scale_fingerprint(b));
  b = smoke_scale();
  b.threads = 7;  // threads do not change results, so not in the fingerprint
  EXPECT_EQ(scale_fingerprint(a), scale_fingerprint(b));
}

TEST(Figures, MatrixCoversAllFourFiguresWithDistinctConfigs) {
  ASSERT_EQ(figure_matrix().size(), 4u);
  EXPECT_NE(find_figure("fig3"), nullptr);
  EXPECT_EQ(find_figure("fig9"), nullptr);

  const ScaleSpec scale = smoke_scale();
  const SystemConfig f3 = figure_config(*find_figure("fig3"), scale);
  const SystemConfig f4 = figure_config(*find_figure("fig4"), scale);
  const SystemConfig f5 = figure_config(*find_figure("fig5"), scale);
  EXPECT_EQ(f3.ncores, 1u);
  EXPECT_EQ(f4.ncores, 2u);
  EXPECT_DOUBLE_EQ(f3.edram.retention_us, 50.0);
  EXPECT_DOUBLE_EQ(f5.edram.retention_us, 40.0);
  // The scaled interval is floored at one retention period, so the 40 us
  // figure floors lower than the 50 us one at smoke scale.
  EXPECT_LE(f5.esteem.interval_cycles, f3.esteem.interval_cycles);
}

}  // namespace
}  // namespace esteem::validation

// Tests for trace file recording and replay.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "cpu/system.hpp"
#include "trace/file_trace.hpp"
#include "trace/patterns.hpp"
#include "trace/spec_profiles.hpp"

namespace esteem::trace {
namespace {

class FileTraceTest : public ::testing::Test {
 protected:
  void TearDown() override { std::filesystem::remove(path_); }
  const std::string path_ = "test_trace_tmp.etr";
};

TEST_F(FileTraceTest, RoundTripsReferences) {
  {
    TraceFileWriter writer(path_);
    writer.write({0x1234, 7, false});
    writer.write({0xABCDEF, 0, true});
    writer.write({42, 3, false});
    EXPECT_EQ(writer.records_written(), 3u);
  }
  FileTraceGenerator gen(path_);
  EXPECT_EQ(gen.records(), 3u);

  MemRef r = gen.next();
  EXPECT_EQ(r.block, 0x1234u);
  EXPECT_EQ(r.gap, 7u);
  EXPECT_FALSE(r.is_store);
  r = gen.next();
  EXPECT_EQ(r.block, 0xABCDEFu);
  EXPECT_TRUE(r.is_store);
  r = gen.next();
  EXPECT_EQ(r.block, 42u);

  // Wraps around and counts the loop.
  r = gen.next();
  EXPECT_EQ(r.block, 0x1234u);
  EXPECT_EQ(gen.loop_count(), 1u);
}

TEST_F(FileTraceTest, RecordTraceCapturesGenerator) {
  const auto& profile = profile_by_name("gobmk");
  auto gen = make_generator(profile, {4096, 64}, 7);
  record_trace(*gen, path_, 500);

  auto replay = make_generator(profile, {4096, 64}, 7);
  FileTraceGenerator from_file(path_);
  ASSERT_EQ(from_file.records(), 500u);
  for (int i = 0; i < 500; ++i) {
    const MemRef a = replay->next();
    const MemRef b = from_file.next();
    EXPECT_EQ(a.block, b.block);
    EXPECT_EQ(a.gap, b.gap);
    EXPECT_EQ(a.is_store, b.is_store);
  }
}

TEST_F(FileTraceTest, CommentsAndBadInputs) {
  {
    std::ofstream out(path_);
    out << "ESTEEM-TRACE v1\n# comment line\n3 L ff\n\n0 S 10\n";
  }
  FileTraceGenerator gen(path_);
  EXPECT_EQ(gen.records(), 2u);
  EXPECT_EQ(gen.next().block, 0xFFu);

  {
    std::ofstream out(path_);
    out << "NOT-A-TRACE\n";
  }
  EXPECT_THROW(FileTraceGenerator{path_}, std::runtime_error);

  {
    std::ofstream out(path_);
    out << "ESTEEM-TRACE v1\n1 X ff\n";  // bad kind
  }
  EXPECT_THROW(FileTraceGenerator{path_}, std::runtime_error);

  {
    std::ofstream out(path_);
    out << "ESTEEM-TRACE v1\n";  // no records
  }
  EXPECT_THROW(FileTraceGenerator{path_}, std::runtime_error);
  EXPECT_THROW(FileTraceGenerator{"/nonexistent.etr"}, std::runtime_error);
}

TEST_F(FileTraceTest, SystemReplaysTraceWorkload) {
  const auto& profile = profile_by_name("gamess");
  auto gen = make_generator(profile, {4096, 64}, 11);
  record_trace(*gen, path_, 20'000);

  SystemConfig cfg = SystemConfig::single_core();
  cfg.esteem.interval_cycles = 2 * cfg.retention_cycles();
  cpu::System system(cfg, cpu::Technique::Esteem, {"trace:" + path_}, 11);
  cpu::RunOptions opt;
  opt.instr_per_core = 100'000;
  const cpu::RawRunResult r = system.run(opt);
  EXPECT_GT(r.ipc[0], 0.0);
  EXPECT_GT(r.refreshes, 0u);
}

}  // namespace
}  // namespace esteem::trace

// Cross-module integration and invariant tests: paired baseline/technique
// runs, energy-accounting consistency, and the headline orderings the
// paper's evaluation depends on.
#include <gtest/gtest.h>

#include <cmath>

#include "energy/cacti_table.hpp"
#include "sim/experiment.hpp"
#include "sim/runner.hpp"

namespace esteem::sim {
namespace {

SystemConfig tiny() {
  SystemConfig cfg = SystemConfig::single_core();
  cfg.l1.geom = CacheGeometry{8ULL * 1024, 4, 64};
  cfg.l2.geom = CacheGeometry{512ULL * 1024, 8, 64};
  cfg.edram.retention_us = 5.0;
  cfg.esteem.modules = 8;
  cfg.esteem.interval_cycles = 100'000;
  cfg.esteem.sampling_ratio = 32;
  cfg.esteem.a_min = 2;
  return cfg;
}

RunOutcome run(const SystemConfig& cfg, Technique t, const std::string& b,
               instr_t instr = 250'000) {
  RunSpec spec;
  spec.config = cfg;
  spec.technique = t;
  spec.workload = {b, {b}};
  spec.instr_per_core = instr;
  spec.warmup_instr_per_core = instr / 5;
  return run_experiment(spec);
}

TEST(Integration, EnergyAccountingIsConsistent) {
  const RunOutcome out = run(tiny(), Technique::Esteem, "h264ref");
  const auto& c = out.raw.counters;

  // Time bookkeeping: F_A integral bounded by the measurement window.
  EXPECT_GT(c.seconds, 0.0);
  EXPECT_LE(c.fa_seconds, c.seconds + 1e-12);
  EXPECT_GT(c.fa_seconds, 0.0);

  // Hit/miss counters feed the dynamic-energy equation; refresh and
  // transitions feed theirs. All components must be non-negative and sum.
  EXPECT_GT(c.l2_hits + c.l2_misses, 0u);
  EXPECT_NEAR(out.energy.total_j(),
              out.energy.leak_l2_j + out.energy.dyn_l2_j + out.energy.refresh_l2_j +
                  out.energy.mm_j + out.energy.algo_j,
              1e-15);

  // Refresh energy == N_R * E_dyn exactly (Eq. 6).
  const auto params = energy::l2_energy_params(512ULL * 1024);
  EXPECT_NEAR(out.energy.refresh_l2_j,
              static_cast<double>(c.refreshes) * params.e_dyn_nj_per_access * 1e-9,
              1e-12);
}

TEST(Integration, MmAccessesCoverMissesAndWritebacks) {
  const RunOutcome out = run(tiny(), Technique::BaselinePeriodicAll, "lbm");
  const auto& c = out.raw.counters;
  // Every demand L2 miss is a memory read; writebacks add on top.
  EXPECT_GE(c.mm_accesses, out.raw.demand_misses);
  EXPECT_GT(out.raw.mem_stats.mm_writebacks, 0u);
  EXPECT_GE(c.mm_accesses, out.raw.demand_misses + out.raw.mem_stats.mm_writebacks);
}

TEST(Integration, PairedRunsShareBaselineBehaviour) {
  // The technique must not perturb the generator stream: paired runs retire
  // identical instruction counts and the baseline is identical when re-run.
  const RunOutcome a = run(tiny(), Technique::BaselinePeriodicAll, "gcc");
  const RunOutcome b = run(tiny(), Technique::BaselinePeriodicAll, "gcc");
  EXPECT_EQ(a.raw.wall_cycles, b.raw.wall_cycles);
  EXPECT_EQ(a.raw.refreshes, b.raw.refreshes);
  EXPECT_DOUBLE_EQ(a.energy.total_j(), b.energy.total_j());
}

TEST(Integration, EsteemBeatsRpvOnRefreshReduction) {
  // The paper's ~4x RPKI-reduction advantage (§7.2): ESTEEM cuts strictly
  // more refreshes than RPV on a streaming benchmark (milc): RPV cannot skip
  // never-retouched lines, while ESTEEM caps the valid footprint itself.
  const SystemConfig cfg = tiny();
  const RunOutcome base = run(cfg, Technique::BaselinePeriodicAll, "milc", 600'000);
  const RunOutcome rpv = run(cfg, Technique::RefrintRPV, "milc", 600'000);
  const RunOutcome est = run(cfg, Technique::Esteem, "milc", 600'000);
  EXPECT_LT(est.raw.refreshes, rpv.raw.refreshes);
  EXPECT_LT(rpv.raw.refreshes, base.raw.refreshes);
}

TEST(Integration, EccChargedForStorageOverhead) {
  // Same counters, but ECC pays inflated leakage: on an idle-ish workload
  // with extended refresh, ECC still saves vs. baseline, yet its L2 leakage
  // energy per second exceeds the baseline's.
  const SystemConfig cfg = tiny();
  const RunOutcome base = run(cfg, Technique::BaselinePeriodicAll, "gamess");
  const RunOutcome ecc = run(cfg, Technique::EccExtended, "gamess");
  const double base_leak_rate = base.energy.leak_l2_j / base.raw.counters.seconds;
  const double ecc_leak_rate = ecc.energy.leak_l2_j / ecc.raw.counters.seconds;
  EXPECT_GT(ecc_leak_rate, base_leak_rate);
  EXPECT_LT(ecc.raw.refreshes, base.raw.refreshes);
}

TEST(Integration, LowerRetentionRaisesBaselineRefreshShare) {
  // §7.3: at shorter retention the baseline spends more on refresh, so any
  // refresh-reduction technique saves more.
  SystemConfig fast = tiny();
  fast.edram.retention_us = 2.5;
  const RunOutcome slow_base = run(tiny(), Technique::BaselinePeriodicAll, "gobmk");
  const RunOutcome fast_base = run(fast, Technique::BaselinePeriodicAll, "gobmk");
  const double slow_share = slow_base.energy.refresh_l2_j / slow_base.energy.l2_j();
  const double fast_share = fast_base.energy.refresh_l2_j / fast_base.energy.l2_j();
  EXPECT_GT(fast_share, slow_share);
}

TEST(Integration, LargerCacheSavesMore) {
  // Table 3's strongest trend: doubling the LLC multiplies ESTEEM's saving.
  SystemConfig small = tiny();
  SystemConfig big = tiny();
  big.l2.geom.size_bytes = 2ULL * 1024 * 1024;  // 4x the tiny L2
  RunSpec spec;
  spec.technique = Technique::Esteem;
  spec.workload = {"gobmk", {"gobmk"}};
  spec.instr_per_core = 300'000;
  spec.warmup_instr_per_core = 60'000;
  spec.config = small;
  const TechniqueComparison s = run_and_compare(spec);
  spec.config = big;
  const TechniqueComparison b = run_and_compare(spec);
  EXPECT_GT(b.energy_saving_pct, s.energy_saving_pct);
}

TEST(Integration, FairSpeedupTracksWeightedSpeedup) {
  // §6.4: the paper reports fair speedup stays close to weighted speedup
  // (no unfairness). Check on a dual-core pair.
  SystemConfig cfg = tiny();
  cfg.ncores = 2;
  RunSpec spec;
  spec.config = cfg;
  spec.technique = Technique::Esteem;
  spec.workload = {"GkNe", {"gobmk", "nekbone"}};
  spec.instr_per_core = 250'000;
  spec.warmup_instr_per_core = 50'000;
  const TechniqueComparison c = run_and_compare(spec);
  EXPECT_NEAR(c.fair_speedup, c.weighted_speedup, 0.1);
}

}  // namespace
}  // namespace esteem::sim

// Tests for the Refrint polyphase policies (RPV and RPD).
#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "refrint/rpv.hpp"

namespace esteem::refrint {
namespace {

// 4 phases over a 100-cycle retention: phase windows [0,25), [25,50), ...;
// the boundary at time t opens phase (t/25) % 4.

TEST(RPV, UntouchedValidLineRefreshedOncePerPeriod) {
  PolyphaseValidPolicy p(4, 4, 4, 100);
  p.on_fill(0, 0, 42, 10);  // tagged phase 0
  // Phase-0 boundaries are at t = 100, 200, ... (t/25 % 4 == 0).
  EXPECT_EQ(p.advance(99), 0u);
  EXPECT_EQ(p.advance(100), 1u);
  EXPECT_EQ(p.advance(199), 0u);
  EXPECT_EQ(p.advance(200), 1u);
}

TEST(RPV, TouchMovesDueBoundary) {
  PolyphaseValidPolicy p(4, 4, 4, 100);
  p.on_fill(0, 0, 42, 10);   // phase 0
  EXPECT_EQ(p.advance(60), 0u);
  p.on_touch(0, 0, 60);      // phase 2: refresh moves to t=150
  EXPECT_EQ(p.advance(100), 0u);  // skipped at the phase-0 boundary
  EXPECT_EQ(p.advance(150), 1u);  // due at the next phase-2 boundary
}

TEST(RPV, HotLineNeverRefreshed) {
  PolyphaseValidPolicy p(4, 4, 4, 100);
  p.on_fill(0, 0, 42, 0);
  std::uint64_t refreshed = 0;
  // Touch every 10 cycles (faster than the 25-cycle phase): the tag always
  // tracks the current phase, so no boundary ever finds the line due.
  for (cycle_t t = 10; t <= 1000; t += 10) {
    refreshed += p.advance(t);
    p.on_touch(0, 0, t);
  }
  EXPECT_EQ(refreshed, 0u);
}

TEST(RPV, InvalidLinesNotRefreshed) {
  PolyphaseValidPolicy p(2, 2, 4, 100);
  p.on_fill(0, 0, 1, 0);
  p.on_fill(0, 1, 2, 0);
  p.on_invalidate(0, 0, false, 5);
  EXPECT_EQ(p.advance(100), 1u);
  EXPECT_EQ(p.valid_lines(), 1u);
}

TEST(RPV, PhaseCountsConserved) {
  PolyphaseValidPolicy p(8, 4, 4, 100);
  p.on_fill(0, 0, 1, 3);    // phase 0
  p.on_fill(1, 0, 2, 30);   // phase 1
  p.on_fill(2, 0, 3, 55);   // phase 2
  p.on_touch(1, 0, 80);     // moves to phase 3
  std::uint64_t total = 0;
  for (std::uint32_t ph = 0; ph < 4; ++ph) total += p.phase_count(ph);
  EXPECT_EQ(total, p.valid_lines());
  EXPECT_EQ(p.phase_count(0), 1u);
  EXPECT_EQ(p.phase_count(1), 0u);
  EXPECT_EQ(p.phase_count(3), 1u);
}

TEST(RPV, RefreshDemandTracksLastPeriod) {
  PolyphaseValidPolicy p(4, 4, 4, 100);
  p.on_fill(0, 0, 1, 0);
  p.on_fill(0, 1, 2, 0);
  EXPECT_DOUBLE_EQ(p.refresh_lines_per_period(), 0.0);  // nothing observed yet
  p.advance(200);
  // Both lines refreshed once per period; the rolling window holds the last
  // 4 phase boundaries = one retention period.
  EXPECT_DOUBLE_EQ(p.refresh_lines_per_period(), 2.0);
}

TEST(RPV, ValidatesConstruction) {
  EXPECT_THROW(PolyphaseValidPolicy(4, 4, 0, 100), std::invalid_argument);
  EXPECT_THROW(PolyphaseValidPolicy(4, 4, 200, 100), std::invalid_argument);
}

TEST(RPD, RefreshesDirtyInvalidatesClean) {
  cache::SetAssocCache c({4, 2});
  auto policy = std::make_unique<PolyphaseDirtyPolicy>(c, 4, 100);
  PolyphaseDirtyPolicy& p = *policy;
  c.set_listener(&p);

  c.access(0, true, 10);   // dirty, phase 0
  c.access(1, false, 10);  // clean, phase 0
  EXPECT_EQ(c.valid_lines(), 2u);

  // Phase-0 boundary at t=100: dirty line refreshed, clean line evicted.
  EXPECT_EQ(p.advance(100), 1u);
  EXPECT_EQ(c.valid_lines(), 1u);
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(1));
  EXPECT_EQ(p.valid_lines(), 1u);  // policy view stays consistent
}

TEST(RPD, TouchedCleanLineSurvivesBoundary) {
  cache::SetAssocCache c({4, 2});
  PolyphaseDirtyPolicy p(c, 4, 100);
  c.set_listener(&p);

  c.access(1, false, 10);          // clean, phase 0
  EXPECT_EQ(p.advance(99), 0u);
  c.access(1, false, 99);          // touched in phase 3
  EXPECT_EQ(p.advance(100), 0u);   // not due at phase-0 boundary anymore
  EXPECT_TRUE(c.contains(1));
  // Due at the next phase-3 boundary (t=175): clean -> invalidated then.
  EXPECT_EQ(p.advance(175), 0u);
  EXPECT_FALSE(c.contains(1));
}

}  // namespace
}  // namespace esteem::refrint

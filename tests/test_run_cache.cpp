// Tests for the RunOutcome memo cache: fingerprint stability/sensitivity,
// hit-equals-fresh-run, exception semantics, and disk persistence.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <string>

#include "sim/experiment.hpp"
#include "sim/run_cache.hpp"

namespace esteem::sim {
namespace {

SystemConfig tiny() {
  SystemConfig cfg = SystemConfig::single_core();
  cfg.l1.geom = CacheGeometry{8ULL * 1024, 4, 64};
  cfg.l2.geom = CacheGeometry{512ULL * 1024, 8, 64};
  cfg.edram.retention_us = 5.0;
  cfg.esteem.modules = 8;
  cfg.esteem.interval_cycles = 100'000;
  cfg.esteem.sampling_ratio = 32;
  cfg.esteem.a_min = 2;
  return cfg;
}

RunSpec tiny_spec(const std::string& benchmark = "gamess",
                  Technique technique = Technique::Esteem) {
  RunSpec spec;
  spec.config = tiny();
  spec.technique = technique;
  spec.workload = {benchmark, {benchmark}};
  spec.instr_per_core = 120'000;
  spec.warmup_instr_per_core = 20'000;
  return spec;
}

void expect_same_outcome(const RunOutcome& a, const RunOutcome& b) {
  // Exact comparisons on purpose: the cache promises bit-identical results.
  EXPECT_EQ(a.raw.ipc, b.raw.ipc);
  EXPECT_EQ(a.raw.instr_per_core, b.raw.instr_per_core);
  EXPECT_EQ(a.raw.total_instructions, b.raw.total_instructions);
  EXPECT_EQ(a.raw.wall_cycles, b.raw.wall_cycles);
  EXPECT_EQ(a.raw.refreshes, b.raw.refreshes);
  EXPECT_EQ(a.raw.demand_misses, b.raw.demand_misses);
  EXPECT_EQ(a.raw.avg_active_ratio, b.raw.avg_active_ratio);
  EXPECT_EQ(a.raw.disabled_slots, b.raw.disabled_slots);
  EXPECT_EQ(a.raw.timeline.size(), b.raw.timeline.size());
  EXPECT_EQ(a.energy.leak_l2_j, b.energy.leak_l2_j);
  EXPECT_EQ(a.energy.dyn_l2_j, b.energy.dyn_l2_j);
  EXPECT_EQ(a.energy.refresh_l2_j, b.energy.refresh_l2_j);
  EXPECT_EQ(a.energy.ecc_l2_j, b.energy.ecc_l2_j);
  EXPECT_EQ(a.energy.mm_j, b.energy.mm_j);
  EXPECT_EQ(a.energy.algo_j, b.energy.algo_j);
}

TEST(RunCacheFingerprint, StableForEqualSpecs) {
  const RunSpec a = tiny_spec();
  const RunSpec b = tiny_spec();
  EXPECT_EQ(run_spec_fingerprint(a), run_spec_fingerprint(b));
  EXPECT_EQ(fingerprint_hash(run_spec_fingerprint(a)),
            fingerprint_hash(run_spec_fingerprint(b)));
}

TEST(RunCacheFingerprint, SensitiveToEveryRunKnob) {
  const std::string base = run_spec_fingerprint(tiny_spec());

  RunSpec s = tiny_spec();
  s.technique = Technique::RefrintRPV;
  EXPECT_NE(run_spec_fingerprint(s), base);

  s = tiny_spec();
  s.seed = 43;
  EXPECT_NE(run_spec_fingerprint(s), base);

  s = tiny_spec();
  s.instr_per_core += 1;
  EXPECT_NE(run_spec_fingerprint(s), base);

  s = tiny_spec();
  s.warmup_instr_per_core += 1;
  EXPECT_NE(run_spec_fingerprint(s), base);

  s = tiny_spec();
  s.record_timeline = true;
  EXPECT_NE(run_spec_fingerprint(s), base);

  s = tiny_spec();
  s.workload.benchmarks[0] = "gobmk";
  EXPECT_NE(run_spec_fingerprint(s), base);

  s = tiny_spec();
  s.config.esteem.alpha += 0.01;
  EXPECT_NE(run_spec_fingerprint(s), base);

  s = tiny_spec();
  s.config.edram.retention_us += 1.0;
  EXPECT_NE(run_spec_fingerprint(s), base);

  s = tiny_spec();
  s.config.faults.enabled = !s.config.faults.enabled;
  EXPECT_NE(run_spec_fingerprint(s), base);
}

TEST(RunCache, HitIsIdenticalToFreshRun) {
  auto& cache = RunCache::instance();
  cache.set_disk_dir("");
  cache.clear();

  const RunSpec spec = tiny_spec();
  const RunOutcome fresh = run_experiment(spec);

  const auto first = run_experiment_cached(spec);
  const auto second = run_experiment_cached(spec);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), second.get());  // hit shares the same object
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.entries(), 1u);
  expect_same_outcome(*first, fresh);
}

TEST(RunCache, ExceptionsAreNotCached) {
  auto& cache = RunCache::instance();
  cache.set_disk_dir("");
  cache.clear();

  const RunSpec spec = tiny_spec("no-such-benchmark");
  EXPECT_ANY_THROW(run_experiment_cached(spec));
  EXPECT_ANY_THROW(run_experiment_cached(spec));  // retried, not poisoned
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(RunCacheDigest, StableAndSensitive) {
  const RunOutcome a = run_experiment(tiny_spec());
  const RunOutcome b = run_experiment(tiny_spec());
  EXPECT_EQ(outcome_digest(a), outcome_digest(b));  // deterministic simulator

  const RunOutcome other = run_experiment(tiny_spec("gamess", Technique::RefrintRPV));
  EXPECT_NE(outcome_digest(a), outcome_digest(other));
}

TEST(RunCache, DiskPersistenceRoundTrip) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "esteem-memo-test";
  fs::remove_all(dir);

  auto& cache = RunCache::instance();
  cache.clear();
  cache.set_disk_dir(dir.string());

  const RunSpec spec = tiny_spec("gobmk");
  const auto first = run_experiment_cached(spec);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(cache.stats().disk_stores, 1u);
  ASSERT_FALSE(fs::is_empty(dir));

  cache.clear();  // drop the in-memory map; the memo file survives
  const auto reloaded = run_experiment_cached(spec);
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  expect_same_outcome(*reloaded, *first);

  cache.set_disk_dir("");
  cache.clear();
  fs::remove_all(dir);
}

// Shared scaffolding for the self-healing tests: run once against a temp
// memo dir, hand the single memo file to `damage`, then re-run and assert
// the damaged file was quarantined and the outcome recomputed bit-exactly.
void expect_quarantine_heals(
    const std::string& scratch_name,
    const std::function<void(const std::filesystem::path&)>& damage) {
  namespace fs = std::filesystem;
  // Per-test scratch dir: ctest runs each case as its own process, possibly
  // concurrently, so a shared dir would be stomped mid-test.
  const fs::path dir = fs::temp_directory_path() / scratch_name;
  fs::remove_all(dir);

  auto& cache = RunCache::instance();
  cache.clear();
  cache.set_disk_dir(dir.string());

  const RunSpec spec = tiny_spec("libquantum");
  const auto first = run_experiment_cached(spec);
  ASSERT_NE(first, nullptr);
  ASSERT_EQ(cache.stats().disk_stores, 1u);

  fs::path memo_file;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) memo_file = entry.path();
  }
  ASSERT_FALSE(memo_file.empty());
  damage(memo_file);

  cache.clear();  // force the next lookup through the damaged file
  const auto healed = run_experiment_cached(spec);
  ASSERT_NE(healed, nullptr);
  EXPECT_EQ(cache.stats().quarantined, 1u);
  EXPECT_EQ(cache.stats().disk_hits, 0u);  // damaged file never served
  EXPECT_EQ(cache.stats().disk_stores, 1u);  // recomputed and re-spilled
  expect_same_outcome(*healed, *first);

  // The damaged file was moved aside for post-mortem, not silently deleted
  // (its original path now holds the freshly recomputed memo).
  const fs::path corrupt_dir = dir / "corrupt";
  ASSERT_TRUE(fs::exists(corrupt_dir));
  EXPECT_FALSE(fs::is_empty(corrupt_dir));

  // The healed store is valid: a third process-restart-equivalent lookup
  // hits disk cleanly.
  cache.clear();
  const auto reloaded = run_experiment_cached(spec);
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  EXPECT_EQ(cache.stats().quarantined, 0u);
  expect_same_outcome(*reloaded, *first);

  cache.set_disk_dir("");
  cache.clear();
  fs::remove_all(dir);
}

TEST(RunCacheHealing, TruncatedMemoIsQuarantinedAndRecomputed) {
  expect_quarantine_heals("esteem-memo-heal-header", [](const std::filesystem::path& file) {
    std::filesystem::resize_file(file, 10);  // tears through the header
  });
}

TEST(RunCacheHealing, TruncatedPayloadFailsCrcAndHeals) {
  expect_quarantine_heals("esteem-memo-heal-payload", [](const std::filesystem::path& file) {
    const auto size = std::filesystem::file_size(file);
    ASSERT_GT(size, 100u);
    std::filesystem::resize_file(file, size - 17);  // header intact, payload torn
  });
}

TEST(RunCacheHealing, BitFlippedMemoIsQuarantinedAndRecomputed) {
  expect_quarantine_heals("esteem-memo-heal-bitflip", [](const std::filesystem::path& file) {
    std::fstream io(file, std::ios::in | std::ios::out | std::ios::binary);
    io.seekp(200, std::ios::beg);  // deep inside the CRC-protected payload
    char byte = 0;
    io.seekg(200, std::ios::beg);
    io.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    io.seekp(200, std::ios::beg);
    io.write(&byte, 1);
  });
}

TEST(RunCacheHealing, BadMagicIsQuarantinedAndRecomputed) {
  expect_quarantine_heals("esteem-memo-heal-magic", [](const std::filesystem::path& file) {
    std::fstream io(file, std::ios::in | std::ios::out | std::ios::binary);
    const char garbage[8] = {'n', 'o', 't', 'a', 'm', 'e', 'm', 'o'};
    io.write(garbage, sizeof garbage);
  });
}

}  // namespace
}  // namespace esteem::sim

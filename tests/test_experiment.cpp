// Tests for the experiment/comparison layer, sweep runner, and reports.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>

#include "sim/experiment.hpp"
#include "sim/metrics.hpp"
#include "sim/report.hpp"
#include "sim/run_cache.hpp"
#include "sim/runner.hpp"
#include "telemetry/telemetry.hpp"

namespace esteem::sim {
namespace {

SystemConfig tiny() {
  SystemConfig cfg = SystemConfig::single_core();
  cfg.l1.geom = CacheGeometry{8ULL * 1024, 4, 64};
  cfg.l2.geom = CacheGeometry{512ULL * 1024, 8, 64};
  cfg.edram.retention_us = 5.0;
  cfg.esteem.modules = 8;
  cfg.esteem.interval_cycles = 100'000;
  cfg.esteem.sampling_ratio = 32;
  cfg.esteem.a_min = 2;
  return cfg;
}

trace::Workload wl(const std::string& name) { return {name, {name}}; }

TEST(Metrics, WeightedAndFairSpeedup) {
  const std::vector<double> base{1.0, 2.0};
  const std::vector<double> tech{1.2, 2.0};
  EXPECT_DOUBLE_EQ(weighted_speedup(base, tech), (1.2 + 1.0) / 2.0);
  EXPECT_DOUBLE_EQ(fair_speedup(base, tech), 2.0 / (1.0 / 1.2 + 1.0));
  EXPECT_DOUBLE_EQ(weighted_speedup(base, base), 1.0);
  const std::vector<double> one{1.0};
  const std::vector<double> none;
  EXPECT_THROW(weighted_speedup(base, one), std::invalid_argument);
  EXPECT_THROW(weighted_speedup(none, none), std::invalid_argument);
}

TEST(Metrics, PerKiloInstructions) {
  EXPECT_DOUBLE_EQ(per_kilo_instructions(500, 1'000'000), 0.5);
  EXPECT_DOUBLE_EQ(per_kilo_instructions(5, 0), 0.0);
}

TEST(Technique, ParseRoundTrips) {
  for (Technique t : all_techniques()) {
    EXPECT_EQ(parse_technique(to_string(t)), t);
  }
  EXPECT_THROW(parse_technique("bogus"), std::invalid_argument);
}

TEST(Experiment, RunProducesEnergy) {
  RunSpec spec;
  spec.config = tiny();
  spec.technique = Technique::BaselinePeriodicAll;
  spec.workload = wl("gamess");
  spec.instr_per_core = 150'000;
  const RunOutcome out = run_experiment(spec);
  EXPECT_GT(out.energy.total_j(), 0.0);
  EXPECT_GT(out.energy.refresh_l2_j, 0.0);
  EXPECT_GT(out.energy.leak_l2_j, 0.0);
  EXPECT_GT(out.energy.mm_j, 0.0);
  EXPECT_DOUBLE_EQ(out.energy.algo_j, 0.0);  // baseline: E_Algo = 0 (§6.3)
}

TEST(Experiment, CompareAgainstSelfIsNeutral) {
  RunSpec spec;
  spec.config = tiny();
  spec.technique = Technique::BaselinePeriodicAll;
  spec.workload = wl("bzip2");
  spec.instr_per_core = 100'000;
  const RunOutcome out = run_experiment(spec);
  const TechniqueComparison c =
      compare("bzip2", Technique::BaselinePeriodicAll, out, out);
  EXPECT_DOUBLE_EQ(c.energy_saving_pct, 0.0);
  EXPECT_DOUBLE_EQ(c.weighted_speedup, 1.0);
  EXPECT_DOUBLE_EQ(c.rpki_decrease, 0.0);
  EXPECT_DOUBLE_EQ(c.mpki_increase, 0.0);
}

TEST(Experiment, EsteemSavesEnergyOnCacheFriendlyWorkload) {
  RunSpec spec;
  spec.config = tiny();
  spec.technique = Technique::Esteem;
  spec.workload = wl("gamess");
  spec.instr_per_core = 400'000;
  const TechniqueComparison c = run_and_compare(spec);
  EXPECT_GT(c.energy_saving_pct, 0.0);
  EXPECT_GT(c.rpki_decrease, 0.0);
  EXPECT_LT(c.active_ratio_pct, 100.0);
  // Scaled-down runs exaggerate reconfiguration overhead relative to the
  // interval's useful work, so only require the slowdown stays moderate.
  EXPECT_GE(c.weighted_speedup, 0.7);
}

TEST(Sweep, RunsAllWorkloadsAndTechniques) {
  SweepSpec spec;
  spec.config = tiny();
  spec.workloads = {wl("gamess"), wl("gobmk"), wl("libquantum")};
  spec.techniques = {Technique::Esteem, Technique::RefrintRPV};
  spec.instr_per_core = 120'000;

  const SweepResult result = run_sweep(spec);
  ASSERT_EQ(result.rows.size(), 3u);
  for (const WorkloadRow& row : result.rows) {
    ASSERT_EQ(row.comparisons.size(), 2u);
    EXPECT_EQ(row.comparisons[0].technique, Technique::Esteem);
    EXPECT_EQ(row.comparisons[1].technique, Technique::RefrintRPV);
    // RPV never turns off cache; its active ratio stays 100 and MPKI delta 0.
    EXPECT_DOUBLE_EQ(row.comparisons[1].active_ratio_pct, 100.0);
    EXPECT_NEAR(row.comparisons[1].mpki_increase, 0.0, 1e-9);
  }

  const TechniqueComparison avg = result.summary(Technique::Esteem);
  double manual = 0.0;
  for (const auto& row : result.rows) manual += row.comparisons[0].energy_saving_pct;
  EXPECT_NEAR(avg.energy_saving_pct, manual / 3.0, 1e-9);
  EXPECT_THROW(result.summary(Technique::RefrintRPD), std::invalid_argument);
}

TEST(Sweep, SerialAndThreadedSchedulesAreBitIdentical) {
  SweepSpec spec;
  spec.config = tiny();
  spec.workloads = {wl("gamess"), wl("gobmk"), wl("libquantum"), wl("omnetpp")};
  spec.techniques = {Technique::Esteem, Technique::RefrintRPV};
  spec.instr_per_core = 100'000;

  // The memo cache would make the second sweep a trivial replay of the
  // first; clear it before each so both actually execute their schedule.
  spec.threads = 1;
  RunCache::instance().clear();
  const SweepResult serial = run_sweep(spec);
  spec.threads = 4;
  RunCache::instance().clear();
  const SweepResult threaded = run_sweep(spec);

  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(threaded.ok());
  ASSERT_EQ(serial.rows.size(), threaded.rows.size());
  for (std::size_t w = 0; w < serial.rows.size(); ++w) {
    const WorkloadRow& a = serial.rows[w];
    const WorkloadRow& b = threaded.rows[w];
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.completed, b.completed);
    ASSERT_EQ(a.comparisons.size(), b.comparisons.size());
    for (std::size_t t = 0; t < a.comparisons.size(); ++t) {
      const TechniqueComparison& x = a.comparisons[t];
      const TechniqueComparison& y = b.comparisons[t];
      EXPECT_EQ(x.workload, y.workload);
      EXPECT_EQ(x.technique, y.technique);
      // Exact double equality on purpose: the runner promises bit-identical
      // rows regardless of schedule.
      EXPECT_EQ(x.energy_saving_pct, y.energy_saving_pct);
      EXPECT_EQ(x.weighted_speedup, y.weighted_speedup);
      EXPECT_EQ(x.fair_speedup, y.fair_speedup);
      EXPECT_EQ(x.rpki_base, y.rpki_base);
      EXPECT_EQ(x.rpki_tech, y.rpki_tech);
      EXPECT_EQ(x.rpki_decrease, y.rpki_decrease);
      EXPECT_EQ(x.mpki_base, y.mpki_base);
      EXPECT_EQ(x.mpki_tech, y.mpki_tech);
      EXPECT_EQ(x.mpki_increase, y.mpki_increase);
      EXPECT_EQ(x.active_ratio_pct, y.active_ratio_pct);
      EXPECT_EQ(x.ecc_corrected_reads, y.ecc_corrected_reads);
      EXPECT_EQ(x.fault_refetches, y.fault_refetches);
      EXPECT_EQ(x.fault_data_loss, y.fault_data_loss);
      EXPECT_EQ(x.fault_disabled_lines, y.fault_disabled_lines);
      EXPECT_EQ(x.correction_rpki, y.correction_rpki);
    }
  }
}

TEST(Sweep, SurvivesThrowingWorkloadSerial) {
  SweepSpec spec;
  spec.config = tiny();
  spec.workloads = {wl("gamess"), wl("no-such-benchmark"), wl("gobmk")};
  spec.techniques = {Technique::RefrintRPV};
  spec.instr_per_core = 80'000;
  spec.threads = 1;

  const SweepResult result = run_sweep(spec);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_TRUE(result.rows[0].completed);
  EXPECT_FALSE(result.rows[1].completed);
  EXPECT_TRUE(result.rows[2].completed);

  // The failure is recorded, attributed, and carries the cause.
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_EQ(result.errors[0].workload, "no-such-benchmark");
  EXPECT_EQ(result.errors[0].technique, "baseline");  // threw in baseline run
  EXPECT_NE(result.errors[0].what.find("no-such-benchmark"), std::string::npos);

  // Averages skip the errored row instead of reading garbage.
  const TechniqueComparison avg = result.summary(Technique::RefrintRPV);
  double manual = 0.0;
  manual += result.rows[0].comparisons[0].energy_saving_pct;
  manual += result.rows[2].comparisons[0].energy_saving_pct;
  EXPECT_NEAR(avg.energy_saving_pct, manual / 2.0, 1e-9);
}

TEST(Sweep, SurvivesThrowingWorkloadThreaded) {
  SweepSpec spec;
  spec.config = tiny();
  spec.workloads = {wl("bogus-one"), wl("gamess"), wl("bogus-two")};
  spec.techniques = {Technique::RefrintRPV};
  spec.instr_per_core = 80'000;
  spec.threads = 3;  // exceptions must not escape worker threads

  const SweepResult result = run_sweep(spec);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.errors.size(), 2u);
  EXPECT_FALSE(result.rows[0].completed);
  EXPECT_TRUE(result.rows[1].completed);
  EXPECT_FALSE(result.rows[2].completed);
  EXPECT_NO_THROW(result.summary(Technique::RefrintRPV));
}

// Satellite of the bit-identity promise: the *failure* path is also
// schedule-independent — same rows, same errors, same attribution, same
// CSV bytes, whether the sweep ran serially or threaded.
TEST(Sweep, FailurePathSerialAndThreadedAreIdentical) {
  SweepSpec spec;
  spec.config = tiny();
  spec.workloads = {wl("gamess"), wl("no-such-benchmark"), wl("gobmk")};
  spec.techniques = {Technique::Esteem, Technique::RefrintRPV};
  spec.instr_per_core = 80'000;

  spec.threads = 1;
  RunCache::instance().clear();
  const SweepResult serial = run_sweep(spec);
  spec.threads = 4;
  RunCache::instance().clear();
  const SweepResult threaded = run_sweep(spec);

  EXPECT_FALSE(serial.ok());
  EXPECT_FALSE(threaded.ok());
  ASSERT_EQ(serial.errors.size(), threaded.errors.size());
  for (std::size_t e = 0; e < serial.errors.size(); ++e) {
    EXPECT_EQ(serial.errors[e].workload, threaded.errors[e].workload);
    EXPECT_EQ(serial.errors[e].technique, threaded.errors[e].technique);
    EXPECT_EQ(serial.errors[e].phase, threaded.errors[e].phase);
    EXPECT_EQ(serial.errors[e].what, threaded.errors[e].what);
  }

  ASSERT_EQ(serial.rows.size(), threaded.rows.size());
  for (std::size_t w = 0; w < serial.rows.size(); ++w) {
    EXPECT_EQ(serial.rows[w].completed, threaded.rows[w].completed);
    if (!serial.rows[w].completed) continue;
    ASSERT_EQ(serial.rows[w].comparisons.size(),
              threaded.rows[w].comparisons.size());
    for (std::size_t t = 0; t < serial.rows[w].comparisons.size(); ++t) {
      EXPECT_EQ(serial.rows[w].comparisons[t].energy_saving_pct,
                threaded.rows[w].comparisons[t].energy_saving_pct);
      EXPECT_EQ(serial.rows[w].comparisons[t].weighted_speedup,
                threaded.rows[w].comparisons[t].weighted_speedup);
    }
  }

  const std::string serial_csv = "test_failure_serial.csv";
  const std::string threaded_csv = "test_failure_threaded.csv";
  write_csv(serial, serial_csv);
  write_csv(threaded, threaded_csv);
  auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  EXPECT_EQ(slurp(serial_csv), slurp(threaded_csv));
  std::filesystem::remove(serial_csv);
  std::filesystem::remove(threaded_csv);
}

// A run that blows its [resilience] wall-clock budget surfaces as
// RunError{phase="deadline"} instead of polluting the sweep with a
// half-trusted row.
TEST(Sweep, DeadlineOverrunSurfacesAsDeadlineError) {
  SweepSpec spec;
  spec.config = tiny();
  spec.config.resilience.run_deadline_ms = 1;  // no simulation finishes in 1 ms
  spec.workloads = {wl("gamess")};
  spec.techniques = {Technique::RefrintRPV};
  spec.instr_per_core = 600'000;
  spec.threads = 1;
  RunCache::instance().clear();  // a memoized hit could beat the deadline

  // Overruns must also be visible as telemetry counters, not just errors.
  telemetry::TelemetryConfig tcfg;
  tcfg.dir =
      (std::filesystem::temp_directory_path() / "esteem-deadline-telemetry").string();
  telemetry::Telemetry::instance().configure(tcfg);

  const SweepResult result = run_sweep(spec);
  EXPECT_GE(telemetry::registry().value("resilience.deadline_exceeded"), 1.0);
  telemetry::Telemetry::instance().configure({});

  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_FALSE(result.rows[0].completed);
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_EQ(result.errors[0].workload, "gamess");
  EXPECT_EQ(result.errors[0].phase, "deadline");
  EXPECT_NE(result.errors[0].what.find("deadline"), std::string::npos);
  RunCache::instance().clear();
}

TEST(Sweep, SummaryThrowsWhenNothingCompleted) {
  SweepSpec spec;
  spec.config = tiny();
  spec.workloads = {wl("bogus")};
  spec.techniques = {Technique::RefrintRPV};
  const SweepResult result = run_sweep(spec);
  ASSERT_FALSE(result.ok());
  EXPECT_THROW(result.summary(Technique::RefrintRPV), std::runtime_error);
}

TEST(Report, FigureReportFlagsErroredRows) {
  SweepSpec spec;
  spec.config = tiny();
  spec.workloads = {wl("gamess"), wl("bogus")};
  spec.techniques = {Technique::RefrintRPV};
  spec.instr_per_core = 80'000;
  const SweepResult result = run_sweep(spec);
  const std::string report = figure_report(result, "Sweep");
  EXPECT_NE(report.find("ERROR"), std::string::npos);
  EXPECT_NE(report.find("errors (1):"), std::string::npos);
  EXPECT_NE(report.find("bogus [baseline]"), std::string::npos);
  EXPECT_NE(report.find("average"), std::string::npos);  // from completed rows

  // CSV emits only the completed rows.
  const std::string path = "test_report_errors.csv";
  write_csv(result, path);
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  bool mentions_bogus = false;
  while (std::getline(in, line)) {
    ++lines;
    mentions_bogus |= line.find("bogus") != std::string::npos;
  }
  EXPECT_EQ(lines, 2);  // header + gamess x rpv
  EXPECT_FALSE(mentions_bogus);
  std::filesystem::remove(path);
}

TEST(Sweep, Validation) {
  SweepSpec spec;
  spec.config = tiny();
  EXPECT_THROW(run_sweep(spec), std::invalid_argument);  // no workloads
  spec.workloads = {wl("gamess")};
  spec.techniques = {Technique::BaselinePeriodicAll};
  EXPECT_THROW(run_sweep(spec), std::invalid_argument);  // explicit baseline
}

TEST(Report, FigureReportMentionsWorkloadsAndAverage) {
  SweepSpec spec;
  spec.config = tiny();
  spec.workloads = {wl("gamess"), wl("gobmk")};
  spec.techniques = {Technique::Esteem};
  spec.instr_per_core = 100'000;
  const SweepResult result = run_sweep(spec);
  const std::string report = figure_report(result, "Figure X");
  EXPECT_NE(report.find("Figure X"), std::string::npos);
  EXPECT_NE(report.find("gamess"), std::string::npos);
  EXPECT_NE(report.find("gobmk"), std::string::npos);
  EXPECT_NE(report.find("average"), std::string::npos);
  EXPECT_NE(report.find("esteem:energy%"), std::string::npos);
}

TEST(Report, CsvWritten) {
  SweepSpec spec;
  spec.config = tiny();
  spec.workloads = {wl("gamess")};
  spec.techniques = {Technique::Esteem};
  spec.instr_per_core = 100'000;
  const SweepResult result = run_sweep(spec);
  const std::string path = "test_report_out.csv";
  write_csv(result, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 2);  // header + 1 workload x 1 technique
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace esteem::sim

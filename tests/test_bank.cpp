// Tests for the bank timing model, including a property test checking the
// O(1) closed-form refresh drain against a naive slot-by-slot reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "cache/bank.hpp"
#include "common/rng.hpp"

namespace esteem::cache {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(BankTimer, NoRefreshNoWaitWhenIdle) {
  BankTimer t(1, 2);
  EXPECT_EQ(t.access(100), 0u);
  EXPECT_EQ(t.access(200), 0u);
}

TEST(BankTimer, BackToBackAccessesQueue) {
  BankTimer t(1, 4);
  EXPECT_EQ(t.access(10), 0u);  // bank busy until 14
  EXPECT_EQ(t.access(10), 4u);  // waits for first access
  EXPECT_EQ(t.access(10), 8u);
}

TEST(BankTimer, RefreshSlotsDelayAccess) {
  BankTimer t(2, 1);
  t.set_refresh_spacing(10.0, 0);  // slots at 10, 20, 30, ...
  // Access at 10: the slot at t=10 is served first (2 cycles).
  EXPECT_EQ(t.access(10), 2u);
  EXPECT_EQ(t.refresh_slots(), 1u);
  // Access at 25: slot at 20 finished at 22 -> no wait.
  EXPECT_EQ(t.access(25), 0u);
  EXPECT_EQ(t.refresh_slots(), 2u);
}

TEST(BankTimer, RefreshInterferenceClampedToFeasibleShare) {
  // Configured interference (4 cycles) exceeds the slot spacing (1 cycle);
  // a real pipelined refresh engine can sustain its schedule, so the
  // effective interference is clamped to 90% of the spacing: the bank stays
  // ~90% refresh-busy instead of diverging.
  BankTimer t(4, 1);
  t.set_refresh_spacing(1.0, 0);
  const cycle_t wait = t.access(1000);
  EXPECT_LE(wait, 2u);  // schedule keeps up; no unbounded backlog
  EXPECT_GE(t.refresh_slots(), 999u);
}

TEST(BankTimer, DemandBacklogIsBounded) {
  // Demand alone can over-subscribe a bank; the queueing penalty is capped
  // so saturated configurations stay painful but finite.
  BankTimer t(1, 100);
  cycle_t max_wait = 0;
  for (cycle_t now = 0; now < 3000; ++now) {
    max_wait = std::max(max_wait, t.access(now));
  }
  EXPECT_GT(max_wait, 500u);
  EXPECT_LE(max_wait, 1100u);
}

TEST(BankTimer, SpacingChangeTakesEffect) {
  BankTimer t(1, 1);
  t.set_refresh_spacing(5.0, 0);
  (void)t.access(50);
  const std::uint64_t before = t.refresh_slots();
  t.set_refresh_spacing(kInf, 50);  // disable refresh
  (void)t.access(1000);
  EXPECT_EQ(t.refresh_slots(), before);
}

TEST(BankTimer, RejectsBadParameters) {
  EXPECT_THROW(BankTimer(0, 1), std::invalid_argument);
  EXPECT_THROW(BankTimer(1, 0), std::invalid_argument);
  BankTimer t(1, 1);
  EXPECT_THROW(t.set_refresh_spacing(0.0, 0), std::invalid_argument);
  EXPECT_THROW(t.set_refresh_spacing(-1.0, 0), std::invalid_argument);
}

// Naive reference: serve refresh slots one by one, mirroring the production
// model's feasibility clamp and backlog bound.
class ReferenceBank {
 public:
  ReferenceBank(double r_occ, double a_occ) : r_occ_(r_occ), a_occ_(a_occ) {}
  void set_spacing(double spacing, double now) {
    drain(now);
    spacing_ = spacing;
    eff_occ_ = std::min(r_occ_, 0.9 * spacing);
    next_slot_ = now + spacing;
  }
  std::uint64_t access(double now) {
    drain(now);
    free_at_ = std::min(free_at_, now + 1000.0);
    const double wait = std::max(0.0, free_at_ - now);
    free_at_ = std::max(free_at_, now) + a_occ_;
    return static_cast<std::uint64_t>(wait);
  }

 private:
  void drain(double now) {
    while (next_slot_ <= now) {
      free_at_ = std::max(free_at_, next_slot_) + eff_occ_;
      next_slot_ += spacing_;
    }
  }
  double r_occ_, a_occ_;
  double eff_occ_ = 0.0;
  double spacing_ = kInf, next_slot_ = kInf, free_at_ = 0.0;
};

struct BankPropertyCase {
  std::uint32_t r_occ;
  std::uint32_t a_occ;
  double spacing;
};

class BankProperty : public ::testing::TestWithParam<BankPropertyCase> {};

TEST_P(BankProperty, ClosedFormMatchesNaiveReference) {
  const auto p = GetParam();
  BankTimer fast(p.r_occ, p.a_occ);
  ReferenceBank slow(p.r_occ, p.a_occ);
  fast.set_refresh_spacing(p.spacing, 0);
  slow.set_spacing(p.spacing, 0);

  esteem::Rng rng(p.r_occ * 131 + p.a_occ * 17 + 5);
  cycle_t now = 0;
  for (int i = 0; i < 3000; ++i) {
    now += rng.below(40);  // bursty arrivals with idle gaps
    const auto got = static_cast<double>(fast.access(now));
    const auto want = static_cast<double>(slow.access(static_cast<double>(now)));
    // +-1 cycle: the closed form computes n*occ while the reference
    // accumulates occ n times; for non-representable occupancies the two
    // roundings can differ at a floor boundary.
    ASSERT_NEAR(got, want, 1.0) << "at cycle " << now;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, BankProperty,
    ::testing::Values(BankPropertyCase{1, 2, 7.5}, BankPropertyCase{1, 1, 1.5},
                      BankPropertyCase{2, 4, 3.0}, BankPropertyCase{3, 1, 10.0},
                      BankPropertyCase{4, 2, 2.0},   // overloaded refresh
                      BankPropertyCase{1, 2, 1e9})); // nearly no refresh

TEST(BankGroup, MapsSetsAcrossBanks) {
  BankGroup g(4, 64, 1, 2);
  EXPECT_EQ(g.banks(), 4u);
  // Sets 0 and 4 share bank 0; set 1 uses bank 1.
  EXPECT_EQ(g.access(0, 10), 0u);
  EXPECT_EQ(g.access(4, 10), 2u);  // queued behind set 0's access
  EXPECT_EQ(g.access(1, 10), 0u);  // different bank: no wait
}

TEST(BankGroup, RefreshLoadSplitAcrossBanks) {
  BankGroup g(4, 64, 1, 1);
  // 65536 lines per 100k cycles over 4 banks: spacing ~6.1 cycles per bank.
  g.set_refresh_load(65536.0, 100000.0, 0);
  cycle_t total_wait = 0;
  for (cycle_t t = 1000; t < 2000; t += 10) total_wait += g.access(0, t);
  EXPECT_GT(g.total_refresh_slots(), 100u);
  // Zero load disables injection.
  BankGroup quiet(4, 64, 1, 1);
  quiet.set_refresh_load(0.0, 100000.0, 0);
  for (cycle_t t = 1000; t < 2000; t += 10) EXPECT_EQ(quiet.access(0, t), 0u);
}

TEST(BankTimer, AnalyticDelayGrowsWithRefreshShare) {
  // With queue pressure enabled, a mid-utilization refresh schedule adds a
  // smooth delay even when the explicit busy window happens to be free.
  BankTimer light(4.0, 4, 1.0);
  BankTimer heavy(4.0, 4, 1.0);
  light.set_refresh_spacing(40.0, 0);  // 10% refresh share
  heavy.set_refresh_spacing(5.0, 0);   // 80% refresh share
  cycle_t light_total = 0, heavy_total = 0;
  cycle_t accesses = 0;
  for (cycle_t t = 1000; t < 40000; t += 400) {
    light_total += light.access(t);
    heavy_total += heavy.access(t);
    ++accesses;
  }
  // Heavy: 80% refresh share -> ~8-cycle analytic delay per access.
  // Light: 10% share -> well under a cycle.
  EXPECT_GT(heavy_total, 2 * light_total);
  EXPECT_GE(heavy_total / accesses, 8u);
  EXPECT_LE(light_total / accesses, 5u);
}

TEST(BankTimer, ZeroQueuePressureDisablesAnalyticDelay) {
  BankTimer t(4.0, 4, 0.0);
  t.set_refresh_spacing(5.0, 0);
  // Sparse accesses: the deterministic window is drained between accesses,
  // so with no analytic term the wait is bounded by one refresh slot.
  for (cycle_t now = 1000; now < 20000; now += 500) {
    EXPECT_LE(t.access(now), 4u);
  }
}

TEST(BankGroup, RejectsBadShape) {
  EXPECT_THROW(BankGroup(3, 64, 1, 1), std::invalid_argument);
  EXPECT_THROW(BankGroup(0, 64, 1, 1), std::invalid_argument);
  EXPECT_THROW(BankGroup(8, 4, 1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace esteem::cache

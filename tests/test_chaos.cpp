// Tests for the fault-injection layer (DESIGN.md §15): schedule parsing,
// deterministic injection, the zero-overhead seam pin (armed-but-quiet
// chaos leaves journal and sweep bytes untouched), memo-store fsync and
// lost-rename regressions, observer ENOSPC degradation, random-plan
// determinism, crashpoint death, and the [resilience] circuit breaker.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "chaos/file_ops.hpp"
#include "resilience/journal_file.hpp"
#include "service/observer.hpp"
#include "sim/report.hpp"
#include "sim/run_cache.hpp"
#include "sim/runner.hpp"

namespace esteem::chaos {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() / ("esteem-chaos-" + tag)) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

/// RAII disarm so a failing assertion never leaks a plan into later tests.
struct Disarmed {
  ~Disarmed() { disarm(); }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

SystemConfig tiny() {
  SystemConfig cfg = SystemConfig::single_core();
  cfg.l1.geom = CacheGeometry{8ULL * 1024, 4, 64};
  cfg.l2.geom = CacheGeometry{512ULL * 1024, 8, 64};
  cfg.edram.retention_us = 5.0;
  cfg.esteem.modules = 8;
  cfg.esteem.interval_cycles = 100'000;
  cfg.esteem.sampling_ratio = 32;
  cfg.esteem.a_min = 2;
  return cfg;
}

sim::RunSpec tiny_run(const std::string& workload) {
  sim::RunSpec spec;
  spec.config = tiny();
  spec.technique = sim::Technique::Esteem;
  spec.workload = {workload, {workload}};
  spec.instr_per_core = 50'000;
  spec.warmup_instr_per_core = 10'000;
  return spec;
}

TEST(SchedulePlan, ParsesEntriesHitsAndActions) {
  std::string error;
  auto plan = ScheduleFaultPlan::parse(
      "sweep.append.write@2=enospc;memo.rename=dup;lease.append.fsync@*=eio;"
      "memo.tmp.write@0=short:7", error);
  ASSERT_NE(plan, nullptr) << error;

  // hit 0 and 1 clean, hit 2 fails, hit 3 clean again.
  EXPECT_TRUE(plan->at("sweep.append.write").none());
  EXPECT_TRUE(plan->at("sweep.append.write").none());
  const Injection inj = plan->at("sweep.append.write");
  EXPECT_EQ(inj.action, Injection::Action::kErrno);
  EXPECT_EQ(inj.err, ENOSPC);
  EXPECT_TRUE(plan->at("sweep.append.write").none());

  // No '@hit' means hit 0.
  EXPECT_EQ(plan->at("memo.rename").action, Injection::Action::kRenameDuplicate);
  EXPECT_TRUE(plan->at("memo.rename").none());

  // '*' fires on every occurrence.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(plan->at("lease.append.fsync").action, Injection::Action::kErrno);
  }

  const Injection torn = plan->at("memo.tmp.write");
  EXPECT_EQ(torn.action, Injection::Action::kShortWrite);
  EXPECT_EQ(torn.bytes, 7u);

  // Unnamed points are always clean.
  EXPECT_TRUE(plan->at("sidecar.open").none());
}

TEST(SchedulePlan, RejectsMalformedSchedules) {
  std::string error;
  EXPECT_EQ(ScheduleFaultPlan::parse("", error), nullptr);
  EXPECT_EQ(ScheduleFaultPlan::parse("point-no-action", error), nullptr);
  EXPECT_EQ(ScheduleFaultPlan::parse("p@0=explode", error), nullptr);
  EXPECT_NE(error.find("unknown action"), std::string::npos);
  EXPECT_EQ(ScheduleFaultPlan::parse("p@x=eio", error), nullptr);
  EXPECT_EQ(ScheduleFaultPlan::parse("=eio", error), nullptr);
  EXPECT_EQ(ScheduleFaultPlan::parse("p@1=short:", error), nullptr);
  EXPECT_EQ(ScheduleFaultPlan::parse("p@1=eio;;q@2=eio", error), nullptr);
}

TEST(SchedulePlan, InstallArmAndCountLifecycle) {
  Disarmed cleanup;
  EXPECT_FALSE(armed());
  EXPECT_TRUE(consult("sweep.append.write").none());

  std::string error;
  install_plan(ScheduleFaultPlan::parse("sweep.append.write@0=eio", error));
  EXPECT_TRUE(armed());
  EXPECT_EQ(injection_count(), 0u);
  EXPECT_EQ(consult("sweep.append.write").action, Injection::Action::kErrno);
  EXPECT_EQ(injection_count(), 1u);
  EXPECT_TRUE(consult("sweep.append.write").none());
  EXPECT_EQ(injection_count(), 1u);

  disarm();
  EXPECT_FALSE(armed());
  EXPECT_TRUE(consult("sweep.append.write").none());
}

TEST(SchedulePlan, InstallFromEnvironment) {
  Disarmed cleanup;
  ::setenv("ESTEEM_CHAOS_SCHEDULE", "p@0=explode", 1);
  EXPECT_FALSE(install_from_env());
  EXPECT_FALSE(armed());

  ::setenv("ESTEEM_CHAOS_SCHEDULE", "sweep.append.write@0=eio", 1);
  EXPECT_TRUE(install_from_env());
  EXPECT_TRUE(armed());
  ::unsetenv("ESTEEM_CHAOS_SCHEDULE");

  disarm();
  ::setenv("ESTEEM_CHAOS_RANDOM_SEED", "17", 1);
  EXPECT_TRUE(install_from_env());
  EXPECT_TRUE(armed());
  ::unsetenv("ESTEEM_CHAOS_RANDOM_SEED");
}

TEST(RandomPlan, DeterministicPerSeedAndBudgetCapped) {
  const std::vector<std::string> points = {
      "sweep.append.write", "lease.append.fsync", "memo.rename",
      "sidecar.open",       "sweep.append.write", "memo.tmp.write"};
  auto run_plan = [&](std::uint64_t seed) {
    RandomFaultPlan plan(seed, /*rate_percent=*/60, /*max_injections=*/4);
    std::vector<Injection> out;
    for (int round = 0; round < 40; ++round) {
      for (const std::string& p : points) out.push_back(plan.at(p));
    }
    return out;
  };

  const std::vector<Injection> a = run_plan(7);
  const std::vector<Injection> b = run_plan(7);
  ASSERT_EQ(a.size(), b.size());
  unsigned fired = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].action, b[i].action) << i;
    EXPECT_EQ(a[i].err, b[i].err) << i;
    EXPECT_EQ(a[i].bytes, b[i].bytes) << i;
    EXPECT_NE(a[i].action, Injection::Action::kCrash);  // never crashes
    if (!a[i].none()) ++fired;
  }
  EXPECT_GT(fired, 0u);
  EXPECT_LE(fired, 4u);  // the budget bounds total injections

  // A different seed picks a different injection pattern.
  const std::vector<Injection> c = run_plan(8);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].action != c[i].action) differs = true;
  }
  EXPECT_TRUE(differs);
}

// The acceptance pin: an armed-but-quiet plan (every consultation returns
// kNone) must leave journal bytes exactly as the disarmed fast path writes
// them — the seam may not perturb the data it guards.
TEST(ZeroOverheadSeam, ArmedQuietPlanWritesIdenticalJournalBytes) {
  Disarmed cleanup;
  TempDir dir("seam-pin");
  auto write_journal = [&](const std::string& name) {
    resilience::JournalFile journal;
    journal.set_domain("sweep");
    const std::string path = (dir.path / name).string();
    EXPECT_TRUE(journal.open(path, /*truncate=*/true));
    for (int i = 0; i < 5; ++i) {
      resilience::JournalRecord rec;
      rec.kind = "row";
      rec.fields = {{"workload", "mcf"}, {"n", std::to_string(i)},
                    {"data", "00ff9a3f"}};
      EXPECT_TRUE(journal.append(rec));
    }
    journal.close();
    return read_file(path);
  };

  disarm();
  const std::string baseline = write_journal("disarmed.jsonl");
  ASSERT_FALSE(baseline.empty());

  std::string error;
  install_plan(ScheduleFaultPlan::parse("unrelated.point@0=eio", error));
  ASSERT_TRUE(armed());
  const std::string armed_bytes = write_journal("armed.jsonl");
  EXPECT_EQ(injection_count(), 0u);  // quiet: nothing ever fired
  EXPECT_EQ(armed_bytes, baseline);
}

// Satellite regression: a failed fsync on the memo temp file must keep the
// outcome in memory only — no file published, the failure counted — and a
// later clean store must succeed.
TEST(MemoStore, FsyncFailureIsCountedAndNothingPublished) {
  Disarmed cleanup;
  TempDir dir("memo-fsync");
  const sim::RunSpec spec = tiny_run("gamess");

  auto memo_files = [&]() {
    std::size_t n = 0;
    for (const auto& entry : fs::directory_iterator(dir.path)) {
      if (entry.path().filename().string().rfind("esteem-memo-", 0) == 0) ++n;
    }
    return n;
  };

  std::string error;
  install_plan(ScheduleFaultPlan::parse("memo.tmp.fsync@0=eio", error));
  {
    sim::RunCache cache;
    cache.set_disk_dir(dir.str());
    ASSERT_NE(cache.get_or_run(spec), nullptr);
    EXPECT_EQ(cache.stats().store_fsync_errors, 1u);
    EXPECT_EQ(cache.stats().disk_stores, 0u);
    EXPECT_EQ(memo_files(), 0u);  // neither temp nor final file survives
    // The outcome is still served from memory.
    EXPECT_NE(cache.get_or_run(spec), nullptr);
    EXPECT_EQ(cache.stats().hits, 1u);
  }

  disarm();
  {
    sim::RunCache cache;
    cache.set_disk_dir(dir.str());
    ASSERT_NE(cache.get_or_run(spec), nullptr);
    EXPECT_EQ(cache.stats().store_fsync_errors, 0u);
    EXPECT_EQ(cache.stats().disk_stores, 1u);
    EXPECT_EQ(memo_files(), 1u);
  }
  {
    // And the published file actually loads.
    sim::RunCache cache;
    cache.set_disk_dir(dir.str());
    ASSERT_NE(cache.get_or_run(spec), nullptr);
    EXPECT_EQ(cache.stats().disk_hits, 1u);
  }
}

// The lost-reply rename model: the rename lands but is reported failed (a
// retried rename on a network filesystem). The store is counted as an
// error, yet the published file must still be valid for the next process.
TEST(MemoStore, DuplicatedRenameLeavesValidFile) {
  Disarmed cleanup;
  TempDir dir("memo-dup");
  const sim::RunSpec spec = tiny_run("gamess");

  std::string error;
  install_plan(ScheduleFaultPlan::parse("memo.rename@0=dup", error));
  {
    sim::RunCache cache;
    cache.set_disk_dir(dir.str());
    ASSERT_NE(cache.get_or_run(spec), nullptr);
    EXPECT_EQ(cache.stats().store_errors, 1u);  // reported as failed
  }
  disarm();
  {
    sim::RunCache cache;
    cache.set_disk_dir(dir.str());
    ASSERT_NE(cache.get_or_run(spec), nullptr);
    EXPECT_EQ(cache.stats().disk_hits, 1u);  // ...but the file is there, intact
    EXPECT_EQ(cache.stats().quarantined, 0u);
  }
}

// A short write physically tears the journal line; the loader must count
// the damage and salvage the next intact record glued onto the torn tail.
TEST(JournalSeam, ShortWriteTearsLineAndLoaderSalvages) {
  Disarmed cleanup;
  TempDir dir("torn");
  const std::string path = (dir.path / "torn.jsonl").string();

  std::string error;
  install_plan(ScheduleFaultPlan::parse("sweep.append.write@0=short:5", error));
  resilience::JournalFile journal;
  journal.set_domain("sweep");
  ASSERT_TRUE(journal.open(path, /*truncate=*/true));
  resilience::JournalRecord rec;
  rec.kind = "row";
  rec.fields = {{"workload", "mcf"}, {"data", "00ff"}};
  EXPECT_FALSE(journal.append(rec));  // torn: 5 bytes land, append fails
  EXPECT_EQ(fs::file_size(path), 5u);
  EXPECT_TRUE(journal.append(rec));  // hit 1 is clean; glued after the tear
  journal.close();
  disarm();

  const auto loaded = resilience::JournalFile::load(path);
  EXPECT_TRUE(loaded.exists);
  EXPECT_EQ(loaded.corrupt_lines, 1u);   // the torn fragment, counted not fatal
  ASSERT_EQ(loaded.records.size(), 1u);  // the glued record is salvaged
  EXPECT_EQ(loaded.records[0].field("workload"), "mcf");
}

// Satellite: observer sidecar ENOSPC degrades to a counted write error;
// events and snapshots never throw and never fail the caller.
TEST(Observer, WriteFailuresAreCountedNotFatal) {
  Disarmed cleanup;
  TempDir dir("observer");
  ObservabilityConfig cfg;
  cfg.flush_ms = 1;
  cfg.events_max = 16;

  std::string error;
  install_plan(ScheduleFaultPlan::parse("sidecar.append.write@*=enospc", error));
  service::Observer observer;
  ASSERT_TRUE(observer.open(dir.str(), "w1", cfg));
  for (int i = 0; i < 3; ++i) observer.event("warn", "disk is gone");
  observer.flush_snapshot();
  EXPECT_EQ(observer.write_errors(), 4u);  // 3 events + 1 snapshot
  disarm();

  observer.event("info", "disk is back");
  EXPECT_EQ(observer.write_errors(), 4u);  // clean append counts nothing
}

using ChaosDeathTest = ::testing::Test;

TEST(ChaosDeathTest, CrashpointKillsWithSigkill) {
  EXPECT_EXIT(
      {
        std::string error;
        install_plan(
            ScheduleFaultPlan::parse("sweep.crash.before_append@0=crash", error));
        TempDir dir("death");
        resilience::JournalFile journal;
        journal.set_domain("sweep");
        journal.open((dir.path / "j.jsonl").string(), true);
        resilience::JournalRecord rec;
        rec.kind = "row";
        journal.append(rec);
      },
      ::testing::KilledBySignal(SIGKILL), "crash at sweep.crash.before_append");
}

// ---------------------------------------------------------------------------
// [resilience] max_consecutive_errors circuit breaker.

sim::SweepSpec breaker_sweep(std::vector<std::string> workloads,
                             std::uint32_t threshold) {
  sim::SweepSpec spec;
  spec.config = tiny();
  spec.config.resilience.max_consecutive_errors = threshold;
  for (const std::string& w : workloads) spec.workloads.push_back({w, {w}});
  spec.techniques = {sim::Technique::Esteem};
  spec.instr_per_core = 50'000;
  spec.warmup_instr_per_core = 10'000;
  spec.threads = 1;
  return spec;
}

TEST(CircuitBreaker, TripsAfterConsecutiveFailuresAndSkipsTheRest) {
  const std::vector<std::string> bad = {"no-such-1", "no-such-2", "no-such-3",
                                        "no-such-4"};
  const sim::SweepResult result = sim::run_sweep(breaker_sweep(bad, 2));
  EXPECT_TRUE(result.circuit_broken);
  EXPECT_FALSE(result.interrupted);
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.errors.empty());  // exit-3 guarantee: errors survive
  std::size_t skipped = 0;
  for (const sim::WorkloadRow& row : result.rows) {
    EXPECT_FALSE(row.completed);
    if (row.skipped) ++skipped;
  }
  EXPECT_GE(skipped, 2u);  // at least the post-trip workloads were drained
}

TEST(CircuitBreaker, OffByDefaultRunsTheWholeMatrix) {
  const std::vector<std::string> bad = {"no-such-1", "no-such-2", "no-such-3"};
  const sim::SweepResult result = sim::run_sweep(breaker_sweep(bad, 0));
  EXPECT_FALSE(result.circuit_broken);
  EXPECT_EQ(result.errors.size(), 3u);  // every workload ran and failed
  for (const sim::WorkloadRow& row : result.rows) EXPECT_FALSE(row.skipped);
}

TEST(CircuitBreaker, SuccessResetsTheConsecutiveCount) {
  // bad, good, bad, bad with threshold 2: the good run resets the streak,
  // so only the final two failures count — exactly at the threshold, the
  // breaker trips only after the last row and drains nothing.
  const std::vector<std::string> mix = {"no-such-1", "gamess", "no-such-2",
                                        "no-such-3"};
  const sim::SweepResult result = sim::run_sweep(breaker_sweep(mix, 2));
  EXPECT_EQ(result.errors.size(), 3u);
  bool good_completed = false;
  for (const sim::WorkloadRow& row : result.rows) {
    if (row.workload == "gamess") good_completed = row.completed;
  }
  EXPECT_TRUE(good_completed);
}

}  // namespace
}  // namespace esteem::chaos

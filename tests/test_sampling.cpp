// Tests for the SMARTS-style systematic-sampling executor (src/sampling):
// estimator math, generator fast-forward exactness, functional-warming
// correctness, run determinism, memo-fingerprint keying, and the exhaustive
// CSV byte-identity pin that guards the default (non-sampled) path.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <stdexcept>
#include <vector>

#include "cpu/memory_system.hpp"
#include "sampling/estimator.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/run_cache.hpp"
#include "sim/runner.hpp"
#include "trace/patterns.hpp"

namespace esteem::sampling {
namespace {

TEST(StudentT, TableAndAsymptote) {
  EXPECT_NEAR(student_t_975(1), 12.706, 0.01);
  EXPECT_NEAR(student_t_975(4), 2.776, 0.01);
  EXPECT_NEAR(student_t_975(10), 2.228, 0.01);
  EXPECT_NEAR(student_t_975(10'000), 1.96, 0.01);
}

TEST(SampleSeries, WelfordMatchesClosedForm) {
  SampleSeries s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.n(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-12);

  const Estimate e = s.estimate(10.0);
  EXPECT_DOUBLE_EQ(e.value, 30.0);
  // half_ci = scale * t_{4} * s / sqrt(n)
  EXPECT_NEAR(e.half_ci, 10.0 * student_t_975(4) * std::sqrt(2.5) / std::sqrt(5.0),
              1e-9);
  EXPECT_NEAR(e.relative(), e.half_ci / 30.0, 1e-12);
}

TEST(SampleSeries, SingleObservationHasZeroCi) {
  SampleSeries s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.estimate(2.0).value, 14.0);
  EXPECT_DOUBLE_EQ(s.estimate(2.0).half_ci, 0.0);
}

// --- Generator fast-forward: skip(n) must land exactly where n discarded
// pulls would for every deterministic pattern (the sampling executor's
// correctness rests on this).

void expect_skip_matches_discard(trace::BlockPattern& skipped,
                                 trace::BlockPattern& discarded,
                                 std::uint64_t n) {
  skipped.skip(n);
  for (std::uint64_t i = 0; i < n; ++i) (void)discarded.next_block();
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(skipped.next_block(), discarded.next_block()) << "post-skip pull " << i;
  }
}

TEST(PatternSkip, StreamingIsExact) {
  trace::StreamingPattern a(100, 12'345, 3);
  trace::StreamingPattern b(100, 12'345, 3);
  expect_skip_matches_discard(a, b, 54'321);
}

TEST(PatternSkip, PointerChaseIsExact) {
  trace::PointerChasePattern a(0, 4096, 7);
  trace::PointerChasePattern b(0, 4096, 7);
  expect_skip_matches_discard(a, b, 999'999);
}

TEST(PatternSkip, MultiScanIsExact) {
  const trace::GeneratorContext ctx{1024, 64};
  trace::MultiScanPattern a(0, {2, 5, 9}, ctx, 2, 128);
  trace::MultiScanPattern b(0, {2, 5, 9}, ctx, 2, 128);
  expect_skip_matches_discard(a, b, 77'777);
}

TEST(PatternSkip, PhasedIsExact) {
  auto mk = [] {
    std::vector<std::unique_ptr<trace::BlockPattern>> kids;
    kids.push_back(std::make_unique<trace::StreamingPattern>(0, 500, 1));
    kids.push_back(std::make_unique<trace::PointerChasePattern>(1000, 256, 11));
    return std::make_unique<trace::PhasedPattern>(std::move(kids), 333);
  };
  auto a = mk();
  auto b = mk();
  expect_skip_matches_discard(*a, *b, 10'007);
}

// --- Functional warming: with set_warming(true) the hierarchy's functional
// state (tags, LRU, demand counters, refresh epochs) must evolve exactly as
// in detailed mode — only timing side-effects (bank contention, memory
// channel occupancy/traffic) are suppressed.

TEST(Warming, FunctionalStateMatchesDetailed) {
  SystemConfig cfg = SystemConfig::single_core();
  cfg.l1.geom = CacheGeometry{8ULL * 1024, 4, 64};
  cfg.l2.geom = CacheGeometry{256ULL * 1024, 8, 64};
  cfg.edram.retention_us = 5.0;
  cfg.esteem.modules = 8;
  cfg.esteem.sampling_ratio = 32;

  cpu::MemorySystem warm(cfg, cpu::Technique::Esteem);
  cpu::MemorySystem detailed(cfg, cpu::Technique::Esteem);
  warm.set_warming(true);

  // A deterministic footprint with reuse and evictions.
  trace::PointerChasePattern pa(0, 16'384, 5);
  trace::PointerChasePattern pb(0, 16'384, 5);
  std::vector<block_t> blocks;
  cycle_t now = 0;
  for (int i = 0; i < 50'000; ++i) {
    const block_t blk = pa.next_block();
    (void)pb.next_block();
    blocks.push_back(blk);
    const bool store = (i % 7) == 0;
    now += 10;
    (void)warm.access(0, blk, store, now);
    (void)detailed.access(0, blk, store, now);
  }
  warm.set_warming(false);

  // Same lines present in both hierarchies, same demand behaviour. (Refresh
  // totals are clock-accruing, not functional: this driver ignores returned
  // latencies, so the detailed system's loaded memory-channel times advance
  // the refresh engine differently. The sampled executor drives the clock
  // itself; refresh correctness is covered by the accuracy gate.)
  for (std::size_t i = blocks.size() - 5'000; i < blocks.size(); ++i) {
    ASSERT_EQ(warm.l2().contains(blocks[i]), detailed.l2().contains(blocks[i]));
  }
  EXPECT_EQ(warm.stats().demand_l2_hits, detailed.stats().demand_l2_hits);
  EXPECT_EQ(warm.stats().demand_l2_misses, detailed.stats().demand_l2_misses);
  // ... while memory traffic was suppressed during warming.
  EXPECT_EQ(warm.mm_stats().reads, 0u);
  EXPECT_GT(detailed.mm_stats().reads, 0u);
}

}  // namespace
}  // namespace esteem::sampling

namespace esteem::sim {
namespace {

SystemConfig small_cfg() {
  SystemConfig cfg = SystemConfig::single_core();
  cfg.l1.geom = CacheGeometry{8ULL * 1024, 4, 64};
  cfg.l2.geom = CacheGeometry{512ULL * 1024, 8, 64};
  cfg.edram.retention_us = 5.0;
  cfg.esteem.modules = 8;
  cfg.esteem.interval_cycles = 100'000;
  cfg.esteem.sampling_ratio = 32;
  cfg.esteem.a_min = 2;
  return cfg;
}

SamplingConfig small_sampling() {
  SamplingConfig sc;
  sc.enabled = true;
  sc.window_instr = 2'000;
  sc.detail_warm_instr = 500;
  sc.ff_warm_instr = 5'000;
  sc.cold_warm_instr = 20'000;
  sc.period_instr = 50'000;
  return sc;
}

RunSpec sampled_spec(const std::string& benchmark = "gamess",
                     Technique technique = Technique::Esteem) {
  RunSpec spec;
  spec.config = small_cfg();
  spec.config.sampling = small_sampling();
  spec.technique = technique;
  spec.workload = {benchmark, {benchmark}};
  spec.instr_per_core = 300'000;  // 6 periods
  spec.warmup_instr_per_core = 30'000;
  return spec;
}

TEST(SampledRun, DeterministicAcrossRuns) {
  const RunOutcome a = run_experiment(sampled_spec());
  const RunOutcome b = run_experiment(sampled_spec());

  ASSERT_TRUE(a.estimates.enabled);
  EXPECT_GE(a.estimates.windows, 2u);
  // Exact comparisons: same spec must be bit-identical, run to run.
  EXPECT_EQ(a.raw.ipc, b.raw.ipc);
  EXPECT_EQ(a.raw.wall_cycles, b.raw.wall_cycles);
  EXPECT_EQ(a.raw.refreshes, b.raw.refreshes);
  EXPECT_EQ(a.raw.counters.mm_accesses, b.raw.counters.mm_accesses);
  EXPECT_EQ(a.raw.avg_active_ratio, b.raw.avg_active_ratio);
  EXPECT_EQ(a.estimates.wall_cycles.value, b.estimates.wall_cycles.value);
  EXPECT_EQ(a.estimates.wall_cycles.half_ci, b.estimates.wall_cycles.half_ci);
  EXPECT_EQ(a.estimates.mm_accesses.value, b.estimates.mm_accesses.value);
  EXPECT_EQ(a.estimates.mm_accesses.half_ci, b.estimates.mm_accesses.half_ci);
  EXPECT_EQ(a.estimates.refreshes.value, b.estimates.refreshes.value);
  EXPECT_EQ(a.energy.total_j(), b.energy.total_j());
}

TEST(SampledRun, RejectsRunsShorterThanTwoPeriods) {
  RunSpec spec = sampled_spec();
  spec.instr_per_core = spec.config.sampling.period_instr;  // one period only
  EXPECT_THROW(run_experiment(spec), std::invalid_argument);
}

TEST(SampledRun, SerialSweepEqualsThreadedSweep) {
  SweepSpec spec;
  spec.config = small_cfg();
  spec.config.sampling = small_sampling();
  spec.workloads = {{"gamess", {"gamess"}}, {"milc", {"milc"}}};
  spec.techniques = {Technique::Esteem, Technique::RefrintRPV};
  spec.instr_per_core = 300'000;
  spec.warmup_instr_per_core = 30'000;

  spec.threads = 1;
  const SweepResult serial = run_sweep(spec);
  RunCache::instance().clear();  // force the threaded sweep to recompute
  spec.threads = 4;
  const SweepResult threaded = run_sweep(spec);

  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(threaded.ok());
  ASSERT_EQ(serial.rows.size(), threaded.rows.size());
  for (std::size_t w = 0; w < serial.rows.size(); ++w) {
    ASSERT_EQ(serial.rows[w].comparisons.size(), threaded.rows[w].comparisons.size());
    for (std::size_t t = 0; t < serial.rows[w].comparisons.size(); ++t) {
      const TechniqueComparison& a = serial.rows[w].comparisons[t];
      const TechniqueComparison& b = threaded.rows[w].comparisons[t];
      EXPECT_EQ(a.sampled, b.sampled);
      EXPECT_EQ(a.energy_saving_pct, b.energy_saving_pct);
      EXPECT_EQ(a.weighted_speedup, b.weighted_speedup);
      EXPECT_EQ(a.active_ratio_pct, b.active_ratio_pct);
      EXPECT_EQ(a.energy_saving_ci, b.energy_saving_ci);
      EXPECT_EQ(a.weighted_speedup_ci, b.weighted_speedup_ci);
      EXPECT_EQ(a.active_ratio_ci, b.active_ratio_ci);
    }
  }
}

TEST(SampledRun, MulticoreClocksStayAligned) {
  // Regression: per-core CPI estimates differ, so analytic skips used to
  // skew the core clocks apart in time. The shared bank/channel model then
  // charged the skew to the lagging core's next access as queueing delay
  // (the ahead core's reservations sat millions of cycles in its future),
  // inflating its window CPI and widening the next skip — a divergent
  // feedback loop that sent dual-core wall clocks into the trillions.
  // Segment-boundary clock re-alignment bounds the sampled wall clock to
  // the same order as the exhaustive one.
  SystemConfig cfg = SystemConfig::dual_core();
  cfg.l1.geom = CacheGeometry{8ULL * 1024, 4, 64};
  cfg.l2.geom = CacheGeometry{512ULL * 1024, 8, 64};
  cfg.edram.retention_us = 5.0;
  cfg.esteem.modules = 8;
  cfg.esteem.interval_cycles = 100'000;
  cfg.esteem.sampling_ratio = 32;
  cfg.esteem.a_min = 2;

  RunSpec spec;
  spec.config = cfg;
  spec.technique = Technique::Esteem;
  // Deliberately mismatched speeds: the fast/slow CPI gap maximises the
  // per-skip clock skew the alignment must absorb.
  spec.workload = {"GmH2", {"gamess", "h264ref"}};
  spec.instr_per_core = 300'000;
  spec.warmup_instr_per_core = 30'000;
  const RunOutcome exhaustive = run_experiment(spec);

  spec.config.sampling = small_sampling();
  const RunOutcome sampled = run_experiment(spec);

  ASSERT_TRUE(sampled.estimates.enabled);
  ASSERT_GT(exhaustive.raw.wall_cycles, 0u);
  const double wall_ratio = static_cast<double>(sampled.raw.wall_cycles) /
                            static_cast<double>(exhaustive.raw.wall_cycles);
  EXPECT_GT(wall_ratio, 0.5);
  EXPECT_LT(wall_ratio, 2.0);  // the divergence blew past this by 1000x+
  ASSERT_EQ(sampled.raw.ipc.size(), exhaustive.raw.ipc.size());
  for (std::size_t c = 0; c < sampled.raw.ipc.size(); ++c) {
    EXPECT_GT(sampled.raw.ipc[c], 0.25 * exhaustive.raw.ipc[c]);
    EXPECT_LT(sampled.raw.ipc[c], 4.0 * exhaustive.raw.ipc[c]);
  }
}

// --- Memoisation: [sampling] is semantic (it decides whether a run is
// exhaustive or sampled and shapes every estimate), so every knob must be
// keyed; execution-policy sections must stay excluded.

TEST(SamplingFingerprint, EveryKnobIsKeyed) {
  RunSpec base_spec = sampled_spec();
  base_spec.config.sampling.enabled = false;
  const std::string base = run_spec_fingerprint(base_spec);

  RunSpec s = base_spec;
  s.config.sampling.enabled = true;
  const std::string enabled = run_spec_fingerprint(s);
  EXPECT_NE(enabled, base);

  s = base_spec;
  s.config.sampling.enabled = true;
  s.config.sampling.window_instr += 1;
  EXPECT_NE(run_spec_fingerprint(s), enabled);

  s = base_spec;
  s.config.sampling.enabled = true;
  s.config.sampling.detail_warm_instr += 1;
  EXPECT_NE(run_spec_fingerprint(s), enabled);

  s = base_spec;
  s.config.sampling.enabled = true;
  s.config.sampling.ff_warm_instr += 1;
  EXPECT_NE(run_spec_fingerprint(s), enabled);

  s = base_spec;
  s.config.sampling.enabled = true;
  s.config.sampling.cold_warm_instr += 1;
  EXPECT_NE(run_spec_fingerprint(s), enabled);

  s = base_spec;
  s.config.sampling.enabled = true;
  s.config.sampling.period_instr += 1;
  EXPECT_NE(run_spec_fingerprint(s), enabled);
}

TEST(SamplingFingerprint, ExecutionPolicySectionsStayExcluded) {
  const std::string base = run_spec_fingerprint(sampled_spec());

  RunSpec s = sampled_spec();
  s.config.resilience.run_deadline_ms = 12'345;
  s.config.resilience.max_retries = 3;
  EXPECT_EQ(run_spec_fingerprint(s), base);

  s = sampled_spec();
  s.config.observability.flush_ms = 777;
  EXPECT_EQ(run_spec_fingerprint(s), base);
}

// --- Exhaustive-mode regression pin: with [sampling] disabled (the default)
// the sweep CSV must stay byte-identical to the pre-sampling output. The
// expected text below was produced by `esteem_cli --sweep gamess,gobmk
// --techniques esteem,rpv --instr 200000 --warmup 40000` before the sampling
// executor landed; this test rebuilds the same SweepSpec the CLI does.

constexpr const char* kPinnedCsv =
    "workload,technique,energy_saving_pct,weighted_speedup,fair_speedup,"
    "rpki_base,rpki_tech,rpki_decrease,mpki_base,mpki_tech,mpki_increase,"
    "active_ratio_pct,ecc_corrected_reads,fault_refetches,fault_data_loss,"
    "fault_disabled_lines\n"
    "gamess,esteem,47.8491,1.0046,1.0046,983.04,3.85,979.19,0.7850,0.7850,"
    "0.0000,75.82,0,0,0,0\n"
    "gamess,rpv,43.7445,1.0046,1.0046,983.04,3.84,979.20,0.7850,0.7850,"
    "0.0000,100.00,0,0,0,0\n"
    "gobmk,esteem,40.6702,1.0196,1.0196,1310.72,14.62,1296.11,3.1300,3.1300,"
    "0.0000,59.10,0,0,0,0\n"
    "gobmk,rpv,34.8202,1.0196,1.0196,1310.72,11.09,1299.63,3.1300,3.1300,"
    "0.0000,100.00,0,0,0,0\n";

TEST(ExhaustiveCsv, ByteIdenticalToPrePaperSamplingPin) {
  constexpr instr_t kInstr = 200'000;
  // The CLI's paper-default policy for a single-core sweep: scale the
  // 10M-cycle interval to the shortened run (tools/sweep_cli_common.hpp).
  SystemConfig cfg = SystemConfig::single_core();
  cfg.esteem.interval_cycles = std::max<cycle_t>(
      cfg.retention_cycles(),
      static_cast<cycle_t>(10e6 * 4.0 * static_cast<double>(kInstr) / 400e6));
  cfg.esteem.hysteresis_intervals = 2;
  cfg.esteem.shrink_confirm_intervals = 2;

  SweepSpec spec;
  spec.config = cfg;
  spec.workloads = {{"gamess", {"gamess"}}, {"gobmk", {"gobmk"}}};
  spec.techniques = {Technique::Esteem, Technique::RefrintRPV};
  spec.instr_per_core = kInstr;
  spec.warmup_instr_per_core = 40'000;

  const SweepResult result = run_sweep(spec);
  ASSERT_TRUE(result.ok());

  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "esteem_test_pin.csv";
  write_csv(result, path.string());
  std::ifstream in(path, std::ios::binary);
  const std::string got((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  std::filesystem::remove(path);
  EXPECT_EQ(got, kPinnedCsv);
}

}  // namespace
}  // namespace esteem::sim

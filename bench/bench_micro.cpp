// Google-benchmark micro-benchmarks for the simulator's hot paths: cache
// access, bank timing, Algorithm 1, RPV bookkeeping, trace generation, and
// whole-system stepping throughput.
#include <benchmark/benchmark.h>

#include "cache/bank.hpp"
#include "cache/cache.hpp"
#include "common/rng.hpp"
#include "core/algorithm.hpp"
#include "cpu/system.hpp"
#include "refrint/rpv.hpp"
#include "trace/spec_profiles.hpp"

namespace {

using namespace esteem;

void BM_CacheHit(benchmark::State& state) {
  cache::SetAssocCache c({1024, 16});
  for (block_t b = 0; b < 1024ULL * 16; ++b) c.access(b, false, 0);
  Rng rng(1);
  cycle_t now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.access(rng.below(1024ULL * 16), false, ++now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHit);

void BM_CacheMissStream(benchmark::State& state) {
  cache::SetAssocCache c({1024, 16});
  block_t b = 0;
  cycle_t now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.access(b++, false, ++now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheMissStream);

void BM_BankTimerAccess(benchmark::State& state) {
  cache::BankTimer t(1, 2);
  t.set_refresh_spacing(6.1, 0);
  cycle_t now = 0;
  for (auto _ : state) {
    now += 13;
    benchmark::DoNotOptimize(t.access(now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BankTimerAccess);

void BM_Algorithm1(benchmark::State& state) {
  const auto modules = static_cast<std::uint32_t>(state.range(0));
  std::vector<Histogram> hists;
  Rng rng(3);
  for (std::uint32_t m = 0; m < modules; ++m) {
    Histogram h(16);
    for (std::uint32_t w = 0; w < 16; ++w) h.add(w, rng.below(10000) >> (w / 2));
    hists.push_back(std::move(h));
  }
  core::AlgorithmConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::esteem_decide(hists, 16, cfg));
  }
  state.SetItemsProcessed(state.iterations() * modules);
}
BENCHMARK(BM_Algorithm1)->Arg(8)->Arg(16)->Arg(64);

void BM_RpvTouch(benchmark::State& state) {
  refrint::PolyphaseValidPolicy p(4096, 16, 4, 100'000);
  for (std::uint32_t s = 0; s < 4096; ++s) p.on_fill(s, 0, s, 0);
  Rng rng(7);
  cycle_t now = 0;
  for (auto _ : state) {
    p.on_touch(static_cast<std::uint32_t>(rng.below(4096)), 0, now += 3);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RpvTouch);

void BM_TraceGenerator(benchmark::State& state) {
  const auto& profile = trace::profile_by_name("h264ref");
  auto gen = trace::make_generator(profile, {4096, 64}, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen->next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGenerator);

void BM_SystemThroughput(benchmark::State& state) {
  // Whole-simulator throughput in retired instructions/second.
  SystemConfig cfg = SystemConfig::single_core();
  cfg.esteem.interval_cycles = 2 * cfg.retention_cycles();
  instr_t total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    cpu::System system(cfg, cpu::Technique::Esteem, {"h264ref"}, 42);
    cpu::RunOptions opt;
    opt.instr_per_core = 500'000;
    state.ResumeTiming();
    benchmark::DoNotOptimize(system.run(opt));
    total += opt.instr_per_core;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
}
BENCHMARK(BM_SystemThroughput)->Unit(benchmark::kMillisecond);

}  // namespace

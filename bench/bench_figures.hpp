// The Figure 3-6 benches are thin mains over the validation library: the
// figure matrix (workloads, configs, paper averages, titles) lives in
// src/validation/figures.hpp, shared with tools/esteem_validate and the
// RESULTS.md renderer, so a bench binary and the fidelity gate can never
// disagree about what a figure runs.
#pragma once

#include "validation/figures.hpp"

// Shared driver for the Figure 3-6 benches: sweep all workloads with ESTEEM
// and Refrint RPV against the periodic-all baseline and print the paper-style
// per-workload report plus a summary vs. the paper's reported averages.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

namespace esteem::bench {

struct PaperAverages {
  double esteem_energy_pct;
  double rpv_energy_pct;
  double esteem_ws;
  double rpv_ws;
  double esteem_rpki_dec;
  double rpv_rpki_dec;
};

inline int run_figure(const std::string& title, SystemConfig cfg,
                      std::vector<trace::Workload> workloads,
                      const PaperAverages& paper) {
  const instr_t instr = instr_per_core();
  print_scale_banner(title.c_str(), cfg, instr);

  sim::SweepSpec spec;
  spec.config = cfg;
  spec.workloads = std::move(workloads);
  spec.techniques = {sim::Technique::Esteem, sim::Technique::RefrintRPV};
  spec.instr_per_core = instr;
  spec.warmup_instr_per_core = warmup_instr_per_core();
  spec.seed = seed();
  spec.threads = threads();

  const sim::SweepResult result = sim::run_sweep(spec);
  std::printf("%s\n", sim::figure_report(result, title).c_str());

  const sim::TechniqueComparison est = result.summary(sim::Technique::Esteem);
  const sim::TechniqueComparison rpv = result.summary(sim::Technique::RefrintRPV);

  TextTable summary;
  summary.set_header({"average metric", "paper", "measured"});
  summary.add_row({"ESTEEM energy saving %", fmt(paper.esteem_energy_pct, 2),
                   fmt(est.energy_saving_pct, 2)});
  summary.add_row({"RPV energy saving %", fmt(paper.rpv_energy_pct, 2),
                   fmt(rpv.energy_saving_pct, 2)});
  summary.add_row({"ESTEEM weighted speedup", fmt(paper.esteem_ws, 2),
                   fmt(est.weighted_speedup, 3)});
  summary.add_row({"RPV weighted speedup", fmt(paper.rpv_ws, 2),
                   fmt(rpv.weighted_speedup, 3)});
  summary.add_row({"ESTEEM RPKI decrease", fmt(paper.esteem_rpki_dec, 1),
                   fmt(est.rpki_decrease, 1)});
  summary.add_row({"RPV RPKI decrease", fmt(paper.rpv_rpki_dec, 1),
                   fmt(rpv.rpki_decrease, 1)});
  summary.add_row({"ESTEEM MPKI increase", "-", fmt(est.mpki_increase, 3)});
  summary.add_row({"ESTEEM active ratio %", "-", fmt(est.active_ratio_pct, 1)});

  std::printf("Summary vs. paper-reported averages (shape, not absolutes):\n%s\n",
              summary.to_string().c_str());
  return 0;
}

}  // namespace esteem::bench

// Figure 2: ESTEEM's reconfiguration timeline for h264ref — the active ratio
// and the per-module active-way counts over intervals, showing that modules
// are reconfigured independently and that the allocation tracks the phased
// cache demand.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace esteem;

  const instr_t instr = bench::instr_per_core();
  SystemConfig cfg = bench::scaled_single(instr);
  bench::print_scale_banner("Figure 2: ESTEEM reconfiguration timeline (h264ref)",
                            cfg, instr);

  sim::RunSpec spec;
  spec.config = cfg;
  spec.technique = sim::Technique::Esteem;
  spec.workload = {"H2", {"h264ref"}};
  spec.instr_per_core = instr;
  spec.warmup_instr_per_core = bench::warmup_instr_per_core();
  spec.seed = bench::seed();
  spec.record_timeline = true;

  const sim::RunOutcome out = sim::run_experiment(spec);

  TextTable t;
  std::vector<std::string> header{"interval", "Mcycle", "active%"};
  for (std::uint32_t m = 0; m < cfg.esteem.modules; ++m) {
    header.push_back("m" + std::to_string(m));
  }
  t.set_header(std::move(header));

  // Print at most ~40 evenly spaced samples so the table stays readable.
  const auto& timeline = out.raw.timeline;
  const std::size_t stride = timeline.empty() ? 1 : (timeline.size() + 39) / 40;
  for (std::size_t i = 0; i < timeline.size(); i += stride) {
    const auto& s = timeline[i];
    std::vector<std::string> row{std::to_string(i + 1),
                                 fmt(static_cast<double>(s.cycle) / 1e6, 2),
                                 fmt(100.0 * s.active_ratio, 1)};
    for (std::uint32_t w : s.module_ways) row.push_back(std::to_string(w));
    t.add_row(std::move(row));
  }
  std::printf("%s\n", t.to_string().c_str());

  // The two properties Figure 2 illustrates.
  bool module_diversity = false;
  bool ratio_changes = false;
  for (const auto& s : timeline) {
    for (std::uint32_t w : s.module_ways) {
      module_diversity |= (w != s.module_ways.front());
    }
    ratio_changes |= (s.active_ratio != timeline.front().active_ratio);
  }
  std::printf("modules reconfigured independently : %s\n",
              module_diversity ? "yes" : "no");
  std::printf("active ratio varies over intervals : %s\n", ratio_changes ? "yes" : "no");
  std::printf("run-average active ratio           : %.1f%%\n",
              100.0 * out.raw.avg_active_ratio);
  return 0;
}

// Figure 4: dual-core results at 50 us retention, all 17 Table 1 pairs.
#include "bench_figures.hpp"

int main() { return esteem::validation::figure_bench_main("fig4"); }

// Figure 4: dual-core results at 50 us retention, all 17 Table 1 pairs.
#include "bench_figures.hpp"
#include "trace/workloads.hpp"

int main() {
  using namespace esteem;
  // Paper §7.2: ESTEEM 32.63% / RPV 14.3% energy saving; WS 1.22 / 1.09;
  // RPKI decrease 511 / 134.
  const bench::PaperAverages paper{32.63, 14.3, 1.22, 1.09, 511.0, 134.0};
  return bench::run_figure("Figure 4: dual-core, 50us retention",
                           bench::scaled_dual(bench::instr_per_core()),
                           trace::dual_core_workloads(), paper);
}

// Equation 1 / §5: ESTEEM's counter-storage overhead as a percentage of the
// L2 cache, swept over module count, associativity, and cache size.
#include <cstdio>

#include "common/table.hpp"
#include "core/overhead.hpp"

int main() {
  using namespace esteem;

  TextTable t;
  t.set_header({"L2 size", "ways", "modules", "counter bits", "overhead %"});
  for (std::uint64_t mb : {2ULL, 4ULL, 8ULL}) {
    for (std::uint32_t ways : {8u, 16u, 32u}) {
      for (std::uint32_t modules : {8u, 16u, 32u}) {
        core::OverheadInputs in;
        in.ways = ways;
        in.modules = modules;
        in.sets = mb * 1024 * 1024 / (64ULL * ways);
        const std::uint64_t bits = core::counter_storage_bits(in);
        t.add_row({std::to_string(mb) + "MB", std::to_string(ways),
                   std::to_string(modules), std::to_string(bits),
                   fmt(core::overhead_percent(in), 4)});
      }
    }
    t.add_separator();
  }
  std::printf("Equation (1): counter storage overhead of ESTEEM\n%s\n",
              t.to_string().c_str());

  core::OverheadInputs paper_point;  // 4 MB, 16-way, 16 modules
  std::printf("Paper's reference point (4MB, 16-way, 16 modules): %.4f%%\n"
              "(paper reports 0.06%%, i.e. always < 0.1%% of the L2, §1.1/§5)\n",
              core::overhead_percent(paper_point));
  return 0;
}

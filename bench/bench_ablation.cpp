// Ablation bench for ESTEEM's design choices and the paper's stated
// extensions:
//   * the non-LRU guard (Algorithm 1, lines 4-13) on vs. off,
//   * valid-only refresh alone (periodic-valid) vs. full ESTEEM,
//   * Refrint RPD (eager clean invalidation) as a cautionary comparison,
//   * the §7.2 future-work features: per-interval way-delta cap and
//     reconfiguration hysteresis.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/run_cache.hpp"

namespace {

using namespace esteem;

struct Variant {
  std::string label;
  sim::Technique technique;
  std::function<void(SystemConfig&)> mutate;
};

}  // namespace

int main() {
  const instr_t instr = bench::instr_per_core() / 2;
  SystemConfig base_cfg = bench::scaled_single(instr);
  bench::print_scale_banner("Ablation: ESTEEM design choices and extensions",
                            base_cfg, instr);

  // gamess/gobmk: cache-friendly; h264ref: phased; omnetpp/xalancbmk:
  // non-LRU (the guard's target); libquantum: streaming; mcf: huge WS.
  const std::vector<std::string> benchmarks{
      "gamess", "gobmk", "h264ref", "omnetpp", "xalancbmk", "libquantum", "mcf"};

  auto no_damping = [](SystemConfig& c) {
    c.esteem.hysteresis_intervals = 0;
    c.esteem.shrink_confirm_intervals = 0;
  };
  const std::vector<Variant> variants{
      {"ESTEEM (bench default)", sim::Technique::Esteem, [](SystemConfig&) {}},
      {"ESTEEM, no damping (paper base)", sim::Technique::Esteem, no_damping},
      {"ESTEEM, no history smoothing", sim::Technique::Esteem,
       [](SystemConfig& c) { c.esteem.history_weight = 0.0; }},
      {"ESTEEM, no smoothing + guard off", sim::Technique::Esteem,
       [](SystemConfig& c) {
         c.esteem.history_weight = 0.0;
         c.esteem.nonlru_guard = false;
       }},
      {"ESTEEM + way-delta cap 2", sim::Technique::Esteem,
       [](SystemConfig& c) { c.esteem.max_way_delta = 2; }},
      {"ESTEEM, 1 module (uniform ways)", sim::Technique::Esteem,
       [](SystemConfig& c) { c.esteem.modules = 1; }},
      {"periodic-valid refresh only", sim::Technique::PeriodicValid,
       [](SystemConfig&) {}},
      {"Refrint RPD", sim::Technique::RefrintRPD, [](SystemConfig&) {}},
      {"Smart-Refresh", sim::Technique::SmartRefresh, [](SystemConfig&) {}},
      {"ECC-extended refresh", sim::Technique::EccExtended, [](SystemConfig&) {}},
      {"Cache Decay (block-level)", sim::Technique::CacheDecay, [](SystemConfig&) {}},
  };

  for (const std::string& b : benchmarks) {
    sim::RunSpec spec;
    spec.config = base_cfg;
    spec.technique = sim::Technique::BaselinePeriodicAll;
    spec.workload = {b, {b}};
    spec.instr_per_core = instr;
    spec.warmup_instr_per_core = instr / 5;
    spec.seed = bench::seed();
    // Cached: the per-benchmark baseline is shared with any figure bench
    // that already ran in this process (and with repeat invocations when
    // ESTEEM_MEMO_DIR is set).
    const std::shared_ptr<const sim::RunOutcome> base =
        sim::run_experiment_cached(spec);

    TextTable t;
    t.set_header({"variant", "energy-saving%", "speedup", "MPKI-inc", "active%",
                  "transitions"});
    for (const Variant& v : variants) {
      sim::RunSpec vs = spec;
      v.mutate(vs.config);
      vs.technique = v.technique;
      const auto out = sim::run_experiment_cached(vs);
      const sim::TechniqueComparison c = sim::compare(b, v.technique, *base, *out);
      t.add_row({v.label, fmt(c.energy_saving_pct, 2), fmt(c.weighted_speedup, 3),
                 fmt(c.mpki_increase, 3), fmt(c.active_ratio_pct, 1),
                 std::to_string(out->raw.counters.transitions)});
    }
    std::printf("%s:\n%s\n", b.c_str(), t.to_string().c_str());
  }

  std::printf(
      "Expected shapes: removing damping and/or history smoothing brings back\n"
      "the way-churn that scaled-down intervals suffer (more transitions and\n"
      "MPKI, especially on omnetpp/xalancbmk, where the non-LRU guard is the\n"
      "remaining protection); a single module (classic uniform selective-ways,\n"
      "§2 [5]) loses most of ESTEEM's per-module advantage on non-LRU apps;\n"
      "RPD over-invalidates read-reuse workloads (why the paper excludes it,\n"
      "§6.2); block-level Cache Decay pays per-line mispredictions that\n"
      "ESTEEM's interval-level decisions avoid.\n");
  return 0;
}

// Shared helpers for the bench binaries that regenerate the paper's tables
// and figures.
//
// The scale policy (how the paper's 400M-instruction, 10M-cycle-interval
// runs shrink to bench size) lives in src/validation/scale.hpp, shared with
// tools/esteem_validate so the fidelity gate scores exactly the runs the
// benches print. These wrappers keep the historical instruction-count-based
// bench API on top of it.
#pragma once

#include <cstdio>
#include <string>

#include "common/config.hpp"
#include "common/env.hpp"
#include "common/types.hpp"
#include "validation/scale.hpp"

namespace esteem::bench {

inline constexpr instr_t kPaperInstrPerCore = validation::kPaperInstrPerCore;
inline constexpr double kPaperIntervalCycles = validation::kPaperIntervalCycles;

/// Per-core instruction budget for bench runs (ESTEEM_INSTR).
inline instr_t instr_per_core() { return validation::bench_scale().instr_per_core; }

/// Warm-up instructions per core before measurement (ESTEEM_WARMUP;
/// default: a fifth of the measured budget). The paper fast-forwards 10B
/// instructions before its 400M-instruction measurement.
inline instr_t warmup_instr_per_core() {
  return validation::bench_scale().warmup_per_core;
}

/// Worker threads for sweeps (ESTEEM_THREADS; 0 = hardware concurrency).
inline unsigned threads() { return validation::bench_scale().threads; }

inline std::uint64_t seed() { return validation::bench_scale().seed; }

/// Scales the reconfiguration interval with the instruction budget.
/// `interval_factor` expresses Table 3's 5M/15M rows as 0.5x/1.5x of the
/// 10M-cycle default; ESTEEM_INTERVAL_FACTOR additionally lengthens the
/// scaled interval (see validation/scale.hpp).
inline cycle_t scaled_interval(const SystemConfig& cfg, instr_t instr,
                               double interval_factor = 1.0) {
  return validation::scaled_interval(
      cfg, instr, validation::bench_scale().interval_env_factor, interval_factor);
}

/// Reconfiguration-churn damping used by the bench configurations (the
/// paper's proposed hysteresis extension, §7.2 — see validation/scale.hpp).
inline constexpr std::uint32_t kBenchHysteresis = validation::kScaledHysteresis;
inline constexpr std::uint32_t kBenchShrinkConfirm =
    validation::kScaledShrinkConfirm;

/// Paper single-core configuration with the bench-scaled interval.
inline SystemConfig scaled_single(instr_t instr, double interval_factor = 1.0) {
  validation::ScaleSpec scale = validation::bench_scale();
  scale.instr_per_core = instr;
  return validation::scaled_single(scale, interval_factor);
}

/// Paper dual-core configuration with the bench-scaled interval.
inline SystemConfig scaled_dual(instr_t instr, double interval_factor = 1.0) {
  validation::ScaleSpec scale = validation::bench_scale();
  scale.instr_per_core = instr;
  return validation::scaled_dual(scale, interval_factor);
}

inline void print_scale_banner(const char* what, const SystemConfig& cfg,
                               instr_t instr) {
  std::fputs(validation::scale_banner(what, cfg, instr, threads()).c_str(),
             stdout);
}

}  // namespace esteem::bench

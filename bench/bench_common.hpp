// Shared helpers for the bench binaries that regenerate the paper's tables
// and figures.
//
// The paper fast-forwards 10B instructions and measures 400M per benchmark
// with 10M-cycle reconfiguration intervals. The bench harness scales the
// measured instruction count down (default 8M per core, override with
// ESTEEM_INSTR) and scales the interval proportionally so the run still
// spans the same ~40-80 reconfiguration intervals. Every bench prints the
// scale it used.
#pragma once

#include <cstdio>
#include <string>

#include "common/config.hpp"
#include "common/env.hpp"
#include "common/types.hpp"
#include "sim/task_pool.hpp"

namespace esteem::bench {

inline constexpr instr_t kPaperInstrPerCore = 400'000'000;
inline constexpr double kPaperIntervalCycles = 10'000'000.0;

/// Per-core instruction budget for bench runs (ESTEEM_INSTR).
inline instr_t instr_per_core() {
  return env_u64("ESTEEM_INSTR", 8'000'000);
}

/// Warm-up instructions per core before measurement (ESTEEM_WARMUP;
/// default: a fifth of the measured budget). The paper fast-forwards 10B
/// instructions before its 400M-instruction measurement.
inline instr_t warmup_instr_per_core() {
  return env_u64("ESTEEM_WARMUP", instr_per_core() / 5);
}

/// Worker threads for sweeps (ESTEEM_THREADS; 0 = hardware concurrency).
inline unsigned threads() {
  return static_cast<unsigned>(env_u64("ESTEEM_THREADS", 0));
}

inline std::uint64_t seed() { return env_u64("ESTEEM_SEED", 42); }

/// Scales the reconfiguration interval with the instruction budget.
/// `interval_factor` expresses Table 3's 5M/15M rows as 0.5x/1.5x of the
/// 10M-cycle default. ESTEEM_INTERVAL_FACTOR (default 10) additionally
/// lengthens the scaled interval: our synthetic workloads run at lower IPC
/// than the paper's, so without it each interval would hold too few
/// instructions for the leader sets to collect meaningful histograms. The
/// result is floored at one retention period so refresh accounting stays
/// sane.
inline cycle_t scaled_interval(const SystemConfig& cfg, instr_t instr,
                               double interval_factor = 1.0) {
  const double env_factor =
      static_cast<double>(env_u64("ESTEEM_INTERVAL_FACTOR", 4));
  const double scale = static_cast<double>(instr) / kPaperInstrPerCore;
  const auto cycles = static_cast<cycle_t>(kPaperIntervalCycles * scale *
                                           env_factor * interval_factor);
  return std::max<cycle_t>(cycles, cfg.retention_cycles());
}

/// Reconfiguration-churn damping used by the bench configurations. At the
/// paper's 10M-cycle intervals a one-way flush is amortized over ~10M
/// instructions; at our scaled intervals the same churn is 50x more
/// expensive, so the benches enable the paper's proposed hysteresis
/// extension (§7.2 future work) with a 2-interval window.
inline constexpr std::uint32_t kBenchHysteresis = 2;
inline constexpr std::uint32_t kBenchShrinkConfirm = 2;

/// Paper single-core configuration with the bench-scaled interval.
inline SystemConfig scaled_single(instr_t instr, double interval_factor = 1.0) {
  SystemConfig cfg = SystemConfig::single_core();
  cfg.esteem.interval_cycles = scaled_interval(cfg, instr, interval_factor);
  cfg.esteem.hysteresis_intervals = kBenchHysteresis;
  cfg.esteem.shrink_confirm_intervals = kBenchShrinkConfirm;
  return cfg;
}

/// Paper dual-core configuration with the bench-scaled interval.
inline SystemConfig scaled_dual(instr_t instr, double interval_factor = 1.0) {
  SystemConfig cfg = SystemConfig::dual_core();
  cfg.esteem.interval_cycles = scaled_interval(cfg, instr, interval_factor);
  cfg.esteem.hysteresis_intervals = kBenchHysteresis;
  cfg.esteem.shrink_confirm_intervals = kBenchShrinkConfirm;
  return cfg;
}

inline void print_scale_banner(const char* what, const SystemConfig& cfg, instr_t instr) {
  std::printf(
      "%s\n  scale: %llu instructions/core (paper: 400M), interval %llu cycles "
      "(paper: 10M), retention %.0f us, %u-core, L2 %.0f MB %u-way, %u modules, "
      "%u sweep worker thread(s)\n\n",
      what, static_cast<unsigned long long>(instr),
      static_cast<unsigned long long>(cfg.esteem.interval_cycles),
      cfg.edram.retention_us, cfg.ncores,
      static_cast<double>(cfg.l2.geom.size_bytes) / (1024.0 * 1024.0),
      cfg.l2.geom.ways, cfg.esteem.modules,
      sim::TaskPool::resolve_threads(threads()));
}

}  // namespace esteem::bench

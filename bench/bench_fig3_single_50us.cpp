// Figure 3: single-core results at 50 us retention, all 34 workloads.
#include "bench_figures.hpp"
#include "trace/workloads.hpp"

int main() {
  using namespace esteem;
  // Paper §7.2: ESTEEM 25.82% / RPV 15.93% energy saving; WS 1.09 / 1.06;
  // RPKI decrease 467 / 161.
  const bench::PaperAverages paper{25.82, 15.93, 1.09, 1.06, 467.0, 161.0};
  return bench::run_figure("Figure 3: single-core, 50us retention",
                           bench::scaled_single(bench::instr_per_core()),
                           trace::single_core_workloads(), paper);
}

// Figure 3: single-core results at 50 us retention, all 34 workloads.
#include "bench_figures.hpp"

int main() { return esteem::validation::figure_bench_main("fig3"); }

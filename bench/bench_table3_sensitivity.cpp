// Table 3: parameter-sensitivity study for ESTEEM. One row per parameter
// variation (one parameter changed from the defaults at a time), for both
// the single-core and dual-core systems, at 50 us retention.
//
// Environment knobs (this is the heaviest bench):
//   ESTEEM_TABLE3_INSTR    instructions/core per run (default ESTEEM_INSTR/2)
//   ESTEEM_TABLE3_STRIDE   use every k-th workload (default 1 = all)
//   ESTEEM_TABLE3_SECTION  "single", "dual", or "both" (default both)
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "sim/runner.hpp"
#include "trace/workloads.hpp"

namespace {

using namespace esteem;

struct Row {
  std::string label;
  std::function<void(SystemConfig&)> mutate;  // applied to the default config
  double interval_factor = 1.0;               // Table 3's 5M/15M rows
};

std::vector<Row> parameter_rows(bool dual) {
  std::vector<Row> rows;
  rows.push_back({"default", [](SystemConfig&) {}});
  rows.push_back({"Amin=2", [](SystemConfig& c) { c.esteem.a_min = 2; }});
  rows.push_back({"Amin=4", [](SystemConfig& c) { c.esteem.a_min = 4; }});
  rows.push_back({"alpha=0.95", [](SystemConfig& c) { c.esteem.alpha = 0.95; }});
  rows.push_back({"alpha=0.99", [](SystemConfig& c) { c.esteem.alpha = 0.99; }});
  // Module-count rows differ between the two systems (defaults 8 vs 16).
  const std::vector<std::uint32_t> module_counts =
      dual ? std::vector<std::uint32_t>{4, 8, 32, 64}
           : std::vector<std::uint32_t>{2, 4, 16, 32};
  for (std::uint32_t m : module_counts) {
    rows.push_back({std::to_string(m) + " modules",
                    [m](SystemConfig& c) { c.esteem.modules = m; }});
  }
  rows.push_back({"5M interval", [](SystemConfig&) {}, 0.5});
  rows.push_back({"15M interval", [](SystemConfig&) {}, 1.5});
  rows.push_back({"Rs=32", [](SystemConfig& c) { c.esteem.sampling_ratio = 32; }});
  rows.push_back({"Rs=128", [](SystemConfig& c) { c.esteem.sampling_ratio = 128; }});
  rows.push_back({"8-way L2", [](SystemConfig& c) { c.l2.geom.ways = 8; }});
  rows.push_back({"32-way L2", [](SystemConfig& c) { c.l2.geom.ways = 32; }});
  const std::uint64_t half = dual ? 4 : 2, twice = dual ? 16 : 8;
  rows.push_back({std::to_string(half) + "MB L2", [half](SystemConfig& c) {
                    c.l2.geom.size_bytes = half * 1024 * 1024;
                  }});
  rows.push_back({std::to_string(twice) + "MB L2", [twice](SystemConfig& c) {
                    c.l2.geom.size_bytes = twice * 1024 * 1024;
                  }});
  return rows;
}

std::vector<trace::Workload> strided(std::vector<trace::Workload> all,
                                     std::uint64_t stride) {
  if (stride <= 1) return all;
  std::vector<trace::Workload> out;
  for (std::size_t i = 0; i < all.size(); i += stride) out.push_back(all[i]);
  return out;
}

void run_section(bool dual, instr_t instr, std::uint64_t stride) {
  const auto workloads =
      strided(dual ? trace::dual_core_workloads() : trace::single_core_workloads(),
              stride);
  std::printf("%s-core system (%zu workloads, %llu instr/core per run)\n",
              dual ? "Two" : "Single", workloads.size(),
              static_cast<unsigned long long>(instr));

  TextTable t;
  t.set_header({"configuration", "energy-saving%", "rel-perf", "RPKI-dec",
                "MPKI-inc", "active%"});
  for (const Row& row : parameter_rows(dual)) {
    SystemConfig cfg = dual ? SystemConfig::dual_core() : SystemConfig::single_core();
    row.mutate(cfg);
    cfg.esteem.interval_cycles = bench::scaled_interval(cfg, instr, row.interval_factor);
    cfg.esteem.hysteresis_intervals = bench::kBenchHysteresis;
    cfg.esteem.shrink_confirm_intervals = bench::kBenchShrinkConfirm;
    cfg.validate();

    sim::SweepSpec spec;
    spec.config = cfg;
    spec.workloads = workloads;
    spec.techniques = {sim::Technique::Esteem};
    spec.instr_per_core = instr;
    spec.warmup_instr_per_core = instr / 5;
    spec.seed = bench::seed();
    spec.threads = bench::threads();

    const sim::SweepResult result = sim::run_sweep(spec);
    const sim::TechniqueComparison s = result.summary(sim::Technique::Esteem);
    t.add_row({row.label, fmt(s.energy_saving_pct, 2), fmt(s.weighted_speedup, 2),
               fmt(s.rpki_decrease, 1), fmt(s.mpki_increase, 2),
               fmt(s.active_ratio_pct, 2)});
  }
  std::printf("%s\n", t.to_string().c_str());
}

}  // namespace

int main() {
  const instr_t instr =
      env_u64("ESTEEM_TABLE3_INSTR", bench::instr_per_core() / 2);
  const std::uint64_t stride = env_u64("ESTEEM_TABLE3_STRIDE", 1);
  const std::string section = env_str("ESTEEM_TABLE3_SECTION", "both");

  std::printf("Table 3: ESTEEM parameter sensitivity (50us retention).\n"
              "Each row changes one parameter from the defaults.\n\n");
  if (section == "single" || section == "both") run_section(false, instr, stride);
  if (section == "dual" || section == "both") run_section(true, instr, stride);
  return 0;
}

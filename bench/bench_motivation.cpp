// Motivation data behind the paper's §1-§2 narrative (not a numbered
// figure): (a) eDRAM replaces SRAM for large LLCs because SRAM leaks ~8x
// more, but (b) refresh then dominates eDRAM energy — which is exactly the
// overhead ESTEEM attacks — and (c) retention (hence refresh cost) worsens
// with temperature.
#include <cstdio>

#include "common/table.hpp"
#include "edram/retention.hpp"
#include "energy/cacti_table.hpp"

int main() {
  using namespace esteem;
  constexpr std::uint64_t MB = 1024ULL * 1024;

  // (a)+(b): idle-power comparison, SRAM vs eDRAM LLC at 50 us retention.
  // The paper cites eDRAM leakage at ~1/8th of SRAM's (§1, ref [4]).
  TextTable power;
  power.set_header({"LLC size", "SRAM leak (W)", "eDRAM leak (W)",
                    "eDRAM refresh (W)", "eDRAM total (W)", "eDRAM/SRAM"});
  for (std::uint64_t mb : {2ULL, 4ULL, 8ULL, 16ULL, 32ULL}) {
    const auto p = energy::l2_energy_params(mb * MB);
    const double sram_leak = 8.0 * p.p_leak_watts;
    const double lines = static_cast<double>(mb * MB / 64);
    const double refresh = lines / 50e-6 * p.e_dyn_nj_per_access * 1e-9;
    const double edram_total = p.p_leak_watts + refresh;
    power.add_row({std::to_string(mb) + "MB", fmt(sram_leak, 3),
                   fmt(p.p_leak_watts, 3), fmt(refresh, 3), fmt(edram_total, 3),
                   fmt(edram_total / sram_leak, 2)});
  }
  std::printf("Idle LLC power: SRAM vs eDRAM (50us retention)\n%s\n",
              power.to_string().c_str());
  std::printf("eDRAM wins on total power, but refresh -- not leakage -- is its\n"
              "dominant component: the overhead ESTEEM eliminates for turned-off\n"
              "and invalid lines.\n\n");

  // (c): retention vs temperature (calibrated on the paper's two points).
  TextTable temp;
  temp.set_header({"temperature (C)", "retention (us)",
                   "4MB refresh power (W)", "vs 60C"});
  const auto p4 = energy::l2_energy_params(4 * MB);
  const double lines4 = 4.0 * MB / 64;
  const double base_refresh =
      lines4 / (edram::retention_us_at(60.0) * 1e-6) * p4.e_dyn_nj_per_access * 1e-9;
  for (double t : {40.0, 60.0, 80.0, 105.0, 120.0}) {
    const double ret = edram::retention_us_at(t);
    const double refresh = lines4 / (ret * 1e-6) * p4.e_dyn_nj_per_access * 1e-9;
    temp.add_row({fmt(t, 0), fmt(ret, 1), fmt(refresh, 3),
                  fmt(refresh / base_refresh, 2) + "x"});
  }
  std::printf("Retention and refresh power vs temperature (exponential model\n"
              "fit through 50us@60C and 40us@105C, paper §6.1)\n%s\n",
              temp.to_string().c_str());
  std::printf("Hotter parts refresh more often; §7.3's 40us results correspond to\n"
              "the 105C point, where ESTEEM's advantage grows further.\n");
  return 0;
}

// Figure 5: single-core results at the reduced 40 us retention (§7.3).
#include "bench_figures.hpp"
#include "trace/workloads.hpp"

int main() {
  using namespace esteem;
  SystemConfig cfg = bench::scaled_single(bench::instr_per_core());
  cfg.edram.retention_us = 40.0;
  cfg.esteem.interval_cycles =
      bench::scaled_interval(cfg, bench::instr_per_core());
  // §7.3 reports no new averages, only that both techniques improve further;
  // the paper's 50 us averages are shown for reference.
  const bench::PaperAverages paper{25.82, 15.93, 1.09, 1.06, 467.0, 161.0};
  return bench::run_figure(
      "Figure 5: single-core, 40us retention (expect larger gains than Fig 3)",
      cfg, trace::single_core_workloads(), paper);
}

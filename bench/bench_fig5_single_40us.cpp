// Figure 5: single-core results at the reduced 40 us retention (§7.3).
#include "bench_figures.hpp"

int main() { return esteem::validation::figure_bench_main("fig5"); }

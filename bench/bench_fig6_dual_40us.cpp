// Figure 6: dual-core results at the reduced 40 us retention (§7.3).
#include "bench_figures.hpp"
#include "trace/workloads.hpp"

int main() {
  using namespace esteem;
  SystemConfig cfg = bench::scaled_dual(bench::instr_per_core());
  cfg.edram.retention_us = 40.0;
  cfg.esteem.interval_cycles =
      bench::scaled_interval(cfg, bench::instr_per_core());
  const bench::PaperAverages paper{32.63, 14.3, 1.22, 1.09, 511.0, 134.0};
  return bench::run_figure(
      "Figure 6: dual-core, 40us retention (expect larger gains than Fig 4)",
      cfg, trace::dual_core_workloads(), paper);
}

// Resilience cliff for ECC-extended refresh under live fault injection.
//
// The ECC extension is provisioned analytically for the configured
// retention spread (line-failure probability <= the 1e-9 target), so at
// the chosen extension corrections should be the whole story. This bench
// widens sigma step by step and shows the transition: a clean run, then a
// growing correctable tail, then — once the analytic model and the sampled
// weak-cell population disagree badly enough — refetches, data-loss events,
// and retired (disabled) slots.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "edram/ecc.hpp"
#include "sim/experiment.hpp"

namespace {
using namespace esteem;
}  // namespace

int main() {
  const instr_t instr = bench::instr_per_core() / 4;
  SystemConfig base_cfg = bench::scaled_single(instr);
  bench::print_scale_banner("Fault injection: ECC-extended refresh resilience",
                            base_cfg, instr);

  const std::string benchmark = "h264ref";
  const std::vector<double> sigmas{0.35, 0.5, 0.65, 0.8, 1.0};

  sim::RunSpec ref_spec;
  ref_spec.config = base_cfg;
  ref_spec.technique = sim::Technique::EccExtended;
  ref_spec.workload = {benchmark, {benchmark}};
  ref_spec.instr_per_core = instr;
  ref_spec.warmup_instr_per_core = instr / 5;
  ref_spec.seed = bench::seed();
  const sim::RunOutcome ref = sim::run_experiment(ref_spec);

  TextTable t;
  t.set_header({"sigma", "ext", "line-events", "corrected", "corr-reads",
                "refetch", "data-loss", "disabled", "dE-total%", "dIPC%"});
  for (double sigma : sigmas) {
    sim::RunSpec spec = ref_spec;
    spec.config.faults.enabled = true;
    spec.config.faults.sigma = sigma;
    const sim::RunOutcome out = sim::run_experiment(spec);

    const edram::CellRetentionModel model{spec.config.faults.median_multiple,
                                          sigma};
    const std::uint32_t bits = spec.config.l2.geom.line_bytes * 8;
    const std::uint32_t ext = edram::max_safe_extension(
        bits, spec.config.edram.ecc_correctable,
        spec.config.edram.ecc_target_line_failure, model,
        spec.config.faults.max_tracked_extension);

    const double de = (out.energy.total_j() / ref.energy.total_j() - 1.0) * 100.0;
    const double dipc = (out.raw.ipc[0] / ref.raw.ipc[0] - 1.0) * 100.0;
    const edram::FaultCounters& fc = out.raw.faults;
    t.add_row({fmt(sigma, 2), std::to_string(ext),
               std::to_string(fc.corrected_lines + fc.uncorrectable()),
               std::to_string(fc.corrected_lines),
               std::to_string(fc.corrected_reads),
               std::to_string(fc.refetches),
               std::to_string(fc.data_loss_events),
               std::to_string(fc.disabled_lines), fmt(de, 3), fmt(dipc, 3)});
  }
  std::printf("%s, ECC-extended, faults on (vs. faults off):\n%s\n",
              benchmark.c_str(), t.to_string().c_str());

  std::printf(
      "Expected shape: the provisioned extension shrinks as sigma widens (a\n"
      "wider spread reaches the analytic target sooner), and once sigma is\n"
      "extreme the weak tail reaches the nominal interval itself: corrections\n"
      "appear even at extension 1. As long as the analytic target holds,\n"
      "everything the tail produces is corrected (refetch/data-loss/disabled\n"
      "all zero) at a small energy and IPC cost. Counts are seeded and\n"
      "reproducible (ESTEEM_SEED moves the workload streams; the weak-cell\n"
      "map is keyed by the [faults] seed).\n");
  return 0;
}

// Table 2: eDRAM L2 energy parameters (CACTI 5.3 at 32 nm, per the paper),
// plus the interpolation this library uses for non-tabulated sizes, and the
// implied baseline L2 power split at 50 us retention.
#include <cstdio>

#include "common/table.hpp"
#include "energy/cacti_table.hpp"

int main() {
  using namespace esteem;

  constexpr std::uint64_t MB = 1024ULL * 1024;

  TextTable t;
  t.set_header({"L2 size", "E_dyn (nJ/access)", "P_leak (W)",
                "refresh power @50us (W)", "refresh share of idle L2"});
  for (std::uint64_t mb : {2ULL, 3ULL, 4ULL, 6ULL, 8ULL, 12ULL, 16ULL, 24ULL, 32ULL}) {
    const auto p = energy::l2_energy_params(mb * MB);
    // All lines refreshed once per 50 us: lines/period / period = lines/s.
    const double lines = static_cast<double>(mb * MB / 64);
    const double refresh_w = lines / 50e-6 * p.e_dyn_nj_per_access * 1e-9;
    const double share = refresh_w / (refresh_w + p.p_leak_watts);
    const bool tabulated = (mb & (mb - 1)) == 0 || mb == 2;
    t.add_row({std::to_string(mb) + "MB" + (tabulated ? "" : " (interp)"),
               fmt(p.e_dyn_nj_per_access, 3), fmt(p.p_leak_watts, 3),
               fmt(refresh_w, 3), fmt(100.0 * share, 1) + "%"});
  }
  std::printf("Table 2: energy values for 16-way eDRAM cache (paper values at\n"
              "2/4/8/16/32 MB; log-space interpolation elsewhere)\n%s\n",
              t.to_string().c_str());
  std::printf("The refresh share column reproduces the paper's §1 claim that\n"
              "refresh is ~70%% of eDRAM LLC energy (leakage most of the rest).\n");
  return 0;
}

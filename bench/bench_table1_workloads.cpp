// Table 1: the workloads used in the paper, with the synthetic-profile
// parameters this reproduction models them with.
#include <cstdio>

#include "common/table.hpp"
#include "trace/spec_profiles.hpp"
#include "trace/workloads.hpp"

int main() {
  using namespace esteem;

  TextTable singles;
  singles.set_header({"benchmark", "acr", "mem-ratio", "store-ratio", "ws",
                      "stream", "chase", "non-LRU", "phases", "class"});
  for (const auto& p : trace::all_profiles()) {
    singles.add_row({std::string(p.name), std::string(p.acronym),
                     fmt(p.mem_ratio, 2), fmt(p.store_ratio, 2),
                     fmt(p.ws_kb / 1024.0, 2) + "MB", fmt(p.streaming_frac, 2),
                     fmt(p.chase_frac, 2), p.non_lru ? "yes" : "no",
                     std::to_string(p.phases), p.hpc ? "HPC" : "SPEC06"});
  }
  std::printf("Table 1 (upper): single-core workloads and synthetic profiles\n%s\n",
              singles.to_string().c_str());

  TextTable pairs;
  pairs.set_header({"pair", "core 0", "core 1"});
  for (const auto& w : trace::dual_core_workloads()) {
    pairs.add_row({w.name, w.benchmarks[0], w.benchmarks[1]});
  }
  std::printf("Table 1 (lower): dual-core multiprogrammed pairs\n%s",
              pairs.to_string().c_str());
  return 0;
}

// Records a synthetic benchmark to a trace file, then replays it through
// the simulator — the workflow for bringing your own traces (any tool that
// emits the ESTEEM-TRACE text format can drive the simulator).
//
//   ./trace_recording [benchmark] [refs]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/experiment.hpp"
#include "trace/file_trace.hpp"
#include "trace/spec_profiles.hpp"

int main(int argc, char** argv) {
  using namespace esteem;

  const std::string benchmark = argc > 1 ? argv[1] : "gobmk";
  const std::uint64_t refs = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 300'000;
  const std::string path = benchmark + ".etr";

  // 1. Record.
  const auto& profile = trace::profile_by_name(benchmark);
  auto generator = trace::make_generator(profile, {4096, 64}, 42);
  trace::record_trace(*generator, path, refs);
  std::printf("recorded %llu references of %s to %s\n",
              static_cast<unsigned long long>(refs), benchmark.c_str(), path.c_str());

  // 2. Replay through ESTEEM vs. the baseline.
  SystemConfig cfg = SystemConfig::single_core();
  cfg.esteem.interval_cycles = 2 * cfg.retention_cycles();

  sim::RunSpec spec;
  spec.config = cfg;
  spec.technique = sim::Technique::Esteem;
  spec.workload = {benchmark + "(trace)", {"trace:" + path}};
  spec.instr_per_core = 1'000'000;
  spec.warmup_instr_per_core = 200'000;

  const sim::TechniqueComparison c = sim::run_and_compare(spec);
  std::printf("replayed trace under ESTEEM: %.2f%% energy saving, %.3fx speedup, "
              "active ratio %.1f%%\n",
              c.energy_saving_pct, c.weighted_speedup, c.active_ratio_pct);
  std::remove(path.c_str());
  return 0;
}

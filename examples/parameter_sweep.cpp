// Sweeps ESTEEM's two main tuning knobs — the hit-coverage threshold alpha
// and the minimum active ways A_min — over a small workload set, showing
// the §7.4 trade-off: aggressiveness buys refresh/leakage savings at the
// cost of extra misses.
//
//   ./parameter_sweep [instr-per-core]
#include <cstdio>
#include <cstdlib>

#include "common/table.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace esteem;

  const instr_t instr = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2'000'000;

  std::vector<trace::Workload> workloads;
  for (const char* b : {"gobmk", "h264ref", "bzip2", "milc"}) {
    workloads.push_back({b, {b}});
  }

  TextTable t;
  t.set_header({"alpha", "A_min", "energy-saving%", "speedup", "MPKI-inc", "active%"});
  for (double alpha : {0.90, 0.95, 0.97, 0.99}) {
    for (std::uint32_t a_min : {2u, 3u, 4u}) {
      SystemConfig cfg = SystemConfig::single_core();
      cfg.esteem.alpha = alpha;
      cfg.esteem.a_min = a_min;
      cfg.esteem.interval_cycles = 2 * cfg.retention_cycles();

      sim::SweepSpec spec;
      spec.config = cfg;
      spec.workloads = workloads;
      spec.techniques = {sim::Technique::Esteem};
      spec.instr_per_core = instr;
      spec.warmup_instr_per_core = instr / 5;

      const sim::SweepResult result = sim::run_sweep(spec);
      const sim::TechniqueComparison s = result.summary(sim::Technique::Esteem);
      t.add_row({fmt(alpha, 2), std::to_string(a_min), fmt(s.energy_saving_pct, 2),
                 fmt(s.weighted_speedup, 3), fmt(s.mpki_increase, 3),
                 fmt(s.active_ratio_pct, 1)});
    }
    t.add_separator();
  }
  std::printf("ESTEEM parameter sweep (4 workloads, %llu instr each)\n%s",
              static_cast<unsigned long long>(instr), t.to_string().c_str());
  std::printf("\nLower alpha / A_min = more aggressive turn-off (lower active\n"
              "ratio, more MPKI); the energy optimum sits in the middle (§7.4).\n");
  return 0;
}

// Explores how ESTEEM's benefit grows with LLC capacity (the paper's §7.4
// cache-size sensitivity): larger eDRAM caches spend ever more energy on
// refresh, so turning unused capacity off pays off more.
//
//   ./capacity_explorer [benchmark]   (default: h264ref)
#include <cstdio>
#include <string>

#include "common/table.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace esteem;

  const std::string benchmark = argc > 1 ? argv[1] : "h264ref";
  const instr_t instructions = 2'000'000;

  TextTable table;
  table.set_header({"L2 size", "energy-saving%", "speedup", "RPKI-dec", "active%"});

  for (std::uint64_t mb : {2ULL, 4ULL, 8ULL, 16ULL}) {
    SystemConfig cfg = SystemConfig::single_core();
    cfg.l2.geom.size_bytes = mb * 1024 * 1024;
    cfg.esteem.interval_cycles = 2 * cfg.retention_cycles();

    sim::RunSpec spec;
    spec.config = cfg;
    spec.technique = sim::Technique::Esteem;
    spec.workload = {benchmark, {benchmark}};
    spec.instr_per_core = instructions;

    const sim::TechniqueComparison c = sim::run_and_compare(spec);
    table.add_row({fmt_bytes(cfg.l2.geom.size_bytes), fmt(c.energy_saving_pct, 2),
                   fmt(c.weighted_speedup, 3), fmt(c.rpki_decrease, 1),
                   fmt(c.active_ratio_pct, 1)});
  }

  std::printf("ESTEEM benefit vs. LLC capacity for %s\n", benchmark.c_str());
  std::printf("%s", table.to_string().c_str());
  std::printf("\nExpected shape (paper Table 3): larger caches -> larger saving,\n"
              "because baseline refresh energy grows with capacity while the\n"
              "application's working set stays fixed.\n");
  return 0;
}

// Compares every refresh/energy-management technique in the library —
// baseline periodic-all, periodic-valid, Refrint RPV, Refrint RPD, and
// ESTEEM — on a few representative benchmarks.
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace esteem;

  SystemConfig cfg = SystemConfig::single_core();
  const instr_t instructions = 3'000'000;
  cfg.esteem.interval_cycles = 2 * cfg.retention_cycles();

  const std::vector<std::string> benchmarks{"gamess", "h264ref", "libquantum"};
  const std::vector<sim::Technique> techniques{
      sim::Technique::PeriodicValid, sim::Technique::RefrintRPV,
      sim::Technique::RefrintRPD, sim::Technique::Esteem};

  TextTable table;
  table.set_header({"benchmark", "technique", "energy-saving%", "speedup",
                    "RPKI", "active%"});

  for (const std::string& b : benchmarks) {
    sim::RunSpec spec;
    spec.config = cfg;
    spec.workload = {b, {b}};
    spec.instr_per_core = instructions;

    spec.technique = sim::Technique::BaselinePeriodicAll;
    const sim::RunOutcome base = sim::run_experiment(spec);

    for (sim::Technique t : techniques) {
      spec.technique = t;
      const sim::RunOutcome out = sim::run_experiment(spec);
      const sim::TechniqueComparison c = sim::compare(b, t, base, out);
      table.add_row({b, std::string(sim::to_string(t)), fmt(c.energy_saving_pct, 2),
                     fmt(c.weighted_speedup, 3), fmt(c.rpki_tech, 1),
                     fmt(c.active_ratio_pct, 1)});
    }
    table.add_separator();
  }

  std::printf("Refresh-policy comparison (baseline = periodic refresh-all)\n");
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nNotes: RPD eagerly invalidates clean lines, which can hurt workloads\n"
      "with read reuse (the reason the paper does not evaluate it, §6.2).\n"
      "ESTEEM combines valid-only refresh with selective-ways power gating.\n");
  return 0;
}

// Quickstart: simulate one benchmark under the baseline eDRAM cache and
// under ESTEEM, and report the energy saving and speedup.
//
//   ./quickstart [benchmark] [instructions]
//
// Defaults: h264ref, 4M instructions.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace esteem;

  const std::string benchmark = argc > 1 ? argv[1] : "h264ref";
  const instr_t instructions = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                        : 4'000'000;

  // Paper single-core setup: 4 MB 16-way eDRAM L2, 50 us retention,
  // alpha = 0.97, A_min = 3, 8 modules, R_s = 64. We shrink the
  // reconfiguration interval in proportion to the shortened run.
  SystemConfig cfg = SystemConfig::single_core();
  cfg.esteem.interval_cycles =
      std::max<cycle_t>(cfg.retention_cycles(),
                        static_cast<cycle_t>(10e6 * instructions / 400e6));

  sim::RunSpec spec;
  spec.config = cfg;
  spec.technique = sim::Technique::Esteem;
  spec.workload = {benchmark, {benchmark}};
  spec.instr_per_core = instructions;

  std::printf("Simulating %s for %llu instructions...\n\n", benchmark.c_str(),
              static_cast<unsigned long long>(instructions));

  const sim::TechniqueComparison c = sim::run_and_compare(spec);

  std::printf("ESTEEM vs. baseline eDRAM LLC (refresh-all):\n");
  std::printf("  memory-subsystem energy saving : %6.2f %%\n", c.energy_saving_pct);
  std::printf("  speedup                        : %6.3fx\n", c.weighted_speedup);
  std::printf("  refreshes per kilo-instruction : %8.1f -> %8.1f (-%.1f)\n",
              c.rpki_base, c.rpki_tech, c.rpki_decrease);
  std::printf("  L2 MPKI                        : %8.3f -> %8.3f (+%.3f)\n",
              c.mpki_base, c.mpki_tech, c.mpki_increase);
  std::printf("  average cache active ratio     : %6.1f %%\n", c.active_ratio_pct);
  return 0;
}

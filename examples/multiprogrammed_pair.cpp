// Dual-core multiprogrammed example: runs one of the paper's Table 1 pairs
// on the shared 8 MB eDRAM L2 and reports weighted and fair speedups for
// ESTEEM and Refrint RPV.
//
//   ./multiprogrammed_pair [pair-acronym]   (default: GkNe)
#include <cstdio>
#include <string>

#include "sim/experiment.hpp"
#include "trace/workloads.hpp"

int main(int argc, char** argv) {
  using namespace esteem;

  const std::string pair_name = argc > 1 ? argv[1] : "GkNe";
  trace::Workload workload;
  for (const auto& w : trace::dual_core_workloads()) {
    if (w.name == pair_name) workload = w;
  }
  if (workload.benchmarks.empty()) {
    std::fprintf(stderr, "unknown pair '%s' (see Table 1, e.g. GkNe, McLu)\n",
                 pair_name.c_str());
    return 1;
  }

  SystemConfig cfg = SystemConfig::dual_core();
  const instr_t instructions = 3'000'000;
  cfg.esteem.interval_cycles = 2 * cfg.retention_cycles();

  sim::RunSpec spec;
  spec.config = cfg;
  spec.workload = workload;
  spec.instr_per_core = instructions;

  spec.technique = sim::Technique::BaselinePeriodicAll;
  const sim::RunOutcome base = sim::run_experiment(spec);

  std::printf("Pair %s = {%s, %s} on a shared 8 MB eDRAM L2\n\n", workload.name.c_str(),
              workload.benchmarks[0].c_str(), workload.benchmarks[1].c_str());
  std::printf("  baseline IPC: core0 %.3f, core1 %.3f\n\n", base.raw.ipc[0],
              base.raw.ipc[1]);

  for (sim::Technique t : {sim::Technique::RefrintRPV, sim::Technique::Esteem}) {
    spec.technique = t;
    const sim::RunOutcome out = sim::run_experiment(spec);
    const sim::TechniqueComparison c = sim::compare(workload.name, t, base, out);
    std::printf("%s:\n", std::string(sim::to_string(t)).c_str());
    std::printf("  energy saving    : %6.2f %%\n", c.energy_saving_pct);
    std::printf("  weighted speedup : %6.3fx\n", c.weighted_speedup);
    std::printf("  fair speedup     : %6.3fx  (close to WS => no unfairness, §6.4)\n",
                c.fair_speedup);
    std::printf("  per-core IPC     : %.3f / %.3f\n", out.raw.ipc[0], out.raw.ipc[1]);
    std::printf("  RPKI decrease    : %8.1f\n\n", c.rpki_decrease);
  }
  return 0;
}

# Asserts that the committed docs/CONFIG.md matches what `esteem_cli
# --dump-config-doc` emits from the live config schema. Invoked by the
# config_doc_up_to_date ctest with -DCLI=<binary> -DDOC=<file>.
execute_process(COMMAND ${CLI} --dump-config-doc
                OUTPUT_VARIABLE generated
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${CLI} --dump-config-doc failed (exit ${rc})")
endif()
if(NOT EXISTS ${DOC})
  message(FATAL_ERROR "${DOC} is missing; regenerate with: "
                      "${CLI} --dump-config-doc > docs/CONFIG.md")
endif()
file(READ ${DOC} committed)
if(NOT generated STREQUAL committed)
  message(FATAL_ERROR "docs/CONFIG.md is stale: the config schema changed. "
                      "Regenerate with: ${CLI} --dump-config-doc > docs/CONFIG.md")
endif()
